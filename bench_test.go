package coordsample_test

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"testing"

	"coordsample"
	"coordsample/internal/experiments"
)

// benchOpts keeps per-iteration experiment cost bounded so the full bench
// suite completes quickly; use cmd/cws-bench for full-scale regeneration.
func benchOpts() experiments.Options {
	return experiments.Options{Scale: 0.04, Runs: 3, Ks: []int{16, 48}, Seed: 17}
}

// benchExperiment runs one registered experiment per iteration and writes
// its tables to io.Discard.
func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	opts := benchOpts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.Run(opts)
		res.Write(io.Discard)
	}
}

// One benchmark per reproduced table/figure (see the experiment index in
// EXPERIMENTS.md).

func BenchmarkFig1Example(b *testing.B) { benchExperiment(b, "fig1") }
func BenchmarkFig2Example(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)        { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)        { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)        { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)        { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)        { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)        { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)       { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)       { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)       { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)       { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)       { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)       { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)       { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)       { benchExperiment(b, "fig17") }
func BenchmarkTable2(b *testing.B)      { benchExperiment(b, "table2") }
func BenchmarkTableIP2(b *testing.B)    { benchExperiment(b, "table_ip2") }
func BenchmarkTable3(b *testing.B)      { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)      { benchExperiment(b, "table4") }
func BenchmarkUnweighted(b *testing.B)  { benchExperiment(b, "unweighted") }
func BenchmarkJaccard(b *testing.B)     { benchExperiment(b, "jaccard") }

// Ablation benches (the ablation_* entries of EXPERIMENTS.md).

func BenchmarkAblationFamily(b *testing.B)  { benchExperiment(b, "ablation_family") }
func BenchmarkAblationSketch(b *testing.B)  { benchExperiment(b, "ablation_sketch") }
func BenchmarkAblationFixedK(b *testing.B)  { benchExperiment(b, "ablation_fixedk") }
func BenchmarkAblationGeneric(b *testing.B) { benchExperiment(b, "ablation_generic") }

// --- Micro-benchmarks of the public pipeline ---

func benchDataset(n, numAsg int) *coordsample.Dataset {
	rng := rand.New(rand.NewSource(1))
	names := make([]string, numAsg)
	for i := range names {
		names[i] = fmt.Sprintf("w%d", i)
	}
	bld := coordsample.NewDatasetBuilder(names...)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%06d", i)
		base := math.Exp(rng.NormFloat64() * 2)
		for a := 0; a < numAsg; a++ {
			if rng.Float64() < 0.25 {
				continue
			}
			bld.Add(a, key, base*(0.5+rng.Float64()))
		}
	}
	return bld.Build()
}

func BenchmarkDispersedSketcherOffer(b *testing.B) {
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 1, K: 1024}
	s := coordsample.NewAssignmentSketcher(cfg, 0)
	keys := make([]string, 4096)
	weights := make([]float64, 4096)
	rng := rand.New(rand.NewSource(2))
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%06d", i)
		weights[i] = math.Exp(rng.NormFloat64() * 2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(keys)
		s.Offer(keys[j], weights[j])
	}
}

func BenchmarkSummarizeDispersed(b *testing.B) {
	ds := benchDataset(20000, 2)
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 1, K: 1024}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		coordsample.SummarizeDispersed(cfg, ds)
	}
}

func BenchmarkSummarizeColocated(b *testing.B) {
	ds := benchDataset(20000, 4)
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 1, K: 512}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		coordsample.SummarizeColocated(cfg, ds)
	}
}

func BenchmarkEstimateL1(b *testing.B) {
	ds := benchDataset(20000, 2)
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 1, K: 1024}
	sum := coordsample.SummarizeDispersed(cfg, ds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum.RangeLSet(nil).Estimate(nil)
	}
}

func BenchmarkInclusiveEstimator(b *testing.B) {
	ds := benchDataset(20000, 4)
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 1, K: 512}
	sum := coordsample.SummarizeColocated(cfg, ds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum.Inclusive(coordsample.MaxOf()).Estimate(nil)
	}
}

// --- Sharded ingestion throughput (the tentpole pipeline) ---

// benchShardedOffer measures end-to-end sharded ingestion of one
// assignment: n Offers through the batched channels plus the terminal
// Sketch (flush, drain, merge). Throughput scales with workers on
// multi-core hardware; on a single core the channel overhead is the price
// of the pipeline.
func benchShardedOffer(b *testing.B, shards, workers int) {
	const n = 1 << 16
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 1, K: 1024}
	keys := make([]string, n)
	weights := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%06d", i)
		weights[i] = math.Exp(rng.NormFloat64() * 2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := coordsample.NewShardedSketcher(cfg, 0, shards, workers)
		for j := range keys {
			s.Offer(keys[j], weights[j])
		}
		s.Sketch()
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "keys/s")
}

func BenchmarkShardedOffer(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		for _, workers := range []int{1, 2, 4, 8} {
			if workers > shards {
				continue
			}
			b.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(b *testing.B) {
				benchShardedOffer(b, shards, workers)
			})
		}
	}
}

// BenchmarkShardedOfferBaseline is the single-stream reference for the
// BenchmarkShardedOffer series: same stream, same k, no pipeline.
func BenchmarkShardedOfferBaseline(b *testing.B) {
	const n = 1 << 16
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 1, K: 1024}
	keys := make([]string, n)
	weights := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%06d", i)
		weights[i] = math.Exp(rng.NormFloat64() * 2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := coordsample.NewAssignmentSketcher(cfg, 0)
		for j := range keys {
			s.Offer(keys[j], weights[j])
		}
		s.Sketch()
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "keys/s")
}

func BenchmarkSummarizeDispersedParallel(b *testing.B) {
	ds := benchDataset(20000, 2)
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 1, K: 1024}
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(i) + 1
				coordsample.SummarizeDispersedParallel(cfg, ds, shards, 0)
			}
		})
	}
}

func BenchmarkKMinsJaccard(b *testing.B) {
	ds := benchDataset(5000, 2)
	cfg := coordsample.Config{Family: coordsample.EXP, Mode: coordsample.IndependentDifferences, Seed: 1, K: 256}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		coordsample.KMinsJaccard(cfg, ds, 0, 1)
	}
}

// BenchmarkMultiSketcherOfferVector measures the hash-once vector front-end:
// one key hashed once, fanned to every assignment's threshold-pruned
// builders. Compare against numAsg × BenchmarkShardedOffer for the ×B → ×1
// hash collapse.
func BenchmarkMultiSketcherOfferVector(b *testing.B) {
	const n = 1 << 15
	for _, numAsg := range []int{2, 8} {
		b.Run(fmt.Sprintf("assignments=%d", numAsg), func(b *testing.B) {
			cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 1, K: 1024}
			keys := make([]string, n)
			vecs := make([][]float64, n)
			rng := rand.New(rand.NewSource(4))
			for i := range keys {
				keys[i] = fmt.Sprintf("key-%06d", i)
				vecs[i] = make([]float64, numAsg)
				for a := range vecs[i] {
					vecs[i][a] = math.Exp(rng.NormFloat64() * 2)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := coordsample.NewMultiSketcher(cfg, numAsg, 4, 0)
				for j := range keys {
					m.OfferVector(keys[j], vecs[j])
				}
				m.Sketches()
			}
			b.ReportMetric(float64(n)*float64(numAsg)*float64(b.N)/b.Elapsed().Seconds(), "offers/s")
		})
	}
}

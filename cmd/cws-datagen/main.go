// Command cws-datagen emits the synthetic evaluation datasets as CSV for
// inspection or for feeding cws-sketch.
//
// Usage:
//
//	cws-datagen -dataset ip1 -key destIP -weight bytes -scale 0.5 > ip1.csv
//	cws-datagen -dataset netflix > ratings.csv
//	cws-datagen -dataset stocks -attr volume > volume.csv
//
// Output format: header "key,<assignment>,<assignment>,..." followed by one
// row per key with its weight in each assignment.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"coordsample/internal/csvio"
	"coordsample/internal/datagen"
	"coordsample/internal/dataset"
)

func main() {
	name := flag.String("dataset", "ip1", "dataset: ip1, ip2, netflix, stocks")
	key := flag.String("key", "destIP", "IP datasets: destIP, srcdst, 4tuple")
	weight := flag.String("weight", "bytes", "IP datasets: bytes, packets, flows")
	attr := flag.String("attr", "high", "stocks: open, high, low, close, adj_close, volume")
	scale := flag.Float64("scale", 1.0, "dataset scale multiplier")
	seed := flag.Int64("seed", 0, "override generator seed (0 keeps the default)")
	flag.Parse()

	ds, err := build(*name, *key, *weight, *attr, *scale, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cws-datagen: %v\n", err)
		os.Exit(2)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if err := csvio.WriteDataset(w, ds); err != nil {
		fmt.Fprintf(os.Stderr, "cws-datagen: %v\n", err)
		os.Exit(1)
	}
}

func build(name, key, weight, attr string, scale float64, seed int64) (*dataset.Dataset, error) {
	switch name {
	case "ip1", "ip2":
		var cfg datagen.IPConfig
		if name == "ip1" {
			cfg = datagen.DefaultIPConfig1()
		} else {
			cfg = datagen.DefaultIPConfig2()
		}
		cfg = cfg.Scale(scale)
		if seed != 0 {
			cfg.Seed = seed
		}
		k, err := parseKey(key)
		if err != nil {
			return nil, err
		}
		w, err := parseWeight(weight)
		if err != nil {
			return nil, err
		}
		return datagen.DispersedIP(datagen.IPTrace(cfg), k, w), nil
	case "netflix":
		cfg := datagen.DefaultRatingsConfig().Scale(scale)
		if seed != 0 {
			cfg.Seed = seed
		}
		return datagen.Ratings(cfg), nil
	case "stocks":
		cfg := datagen.DefaultStocksConfig().Scale(scale)
		if seed != 0 {
			cfg.Seed = seed
		}
		a, err := parseAttr(attr)
		if err != nil {
			return nil, err
		}
		return datagen.DispersedStocks(datagen.Stocks(cfg), a), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", name)
	}
}

func parseKey(s string) (datagen.IPKey, error) {
	switch s {
	case "destIP":
		return datagen.KeyDstIP, nil
	case "srcdst":
		return datagen.KeySrcDst, nil
	case "4tuple":
		return datagen.Key4Tuple, nil
	}
	return 0, fmt.Errorf("unknown key type %q", s)
}

func parseWeight(s string) (datagen.IPWeight, error) {
	switch s {
	case "bytes":
		return datagen.WeightBytes, nil
	case "packets":
		return datagen.WeightPackets, nil
	case "flows":
		return datagen.WeightFlows, nil
	}
	return 0, fmt.Errorf("unknown weight %q", s)
}

func parseAttr(s string) (datagen.StockAttr, error) {
	for _, a := range datagen.AllStockAttrs() {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown attribute %q", s)
}

// Command cws-vet runs the coordsample analysis suite (internal/lint): the
// five analyzers that turn this repository's runtime invariants — verified
// merges, the zero-allocation hot path, atomic field discipline, frozen
// snapshots, typed boundary errors — into compile-time checks.
//
// It speaks two protocols:
//
//	go vet -vettool=$(which cws-vet) ./...
//
// drives it as a unitchecker: the go command type-checks nothing itself but
// hands cws-vet one *.cfg JSON file per package, naming the source files and
// the compiler's export data for every import. This is the CI mode — it
// shares the go command's build cache and per-package parallelism.
//
//	cws-vet [packages]
//
// is the standalone mode for local use without the vet harness: it resolves
// the package patterns with go list and type-checks everything, dependencies
// included, from source. Diagnostics print as file:line:col: message
// (analyzer); the exit status is 2 when any diagnostic fired.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"

	"coordsample/internal/lint"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && args[0] == "-V=full":
		printVersion()
	case len(args) == 1 && args[0] == "-flags":
		// No analyzer flags: the suite always runs whole.
		fmt.Println("[]")
	case len(args) == 1 && (args[0] == "-h" || args[0] == "-help" || args[0] == "--help"):
		usage()
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(unitMode(args[0]))
	default:
		os.Exit(standaloneMode(args))
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: go vet -vettool=$(which cws-vet) ./...   (unit mode)\n")
	fmt.Fprintf(os.Stderr, "       cws-vet [packages]                       (standalone mode)\n\nanalyzers:\n")
	for _, a := range lint.Analyzers {
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
	}
}

// printVersion answers `cws-vet -V=full`, which the go command uses to
// fingerprint the tool for its action cache: the reply must change whenever
// the tool's behavior could, so it embeds the executable's own hash.
func printVersion() {
	name := "cws-vet"
	exe, err := os.Executable()
	if err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			fmt.Printf("%s version devel comments-go-here buildID=%x\n", name, sha256.Sum256(data))
			return
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=unknown\n", name)
}

// vetConfig is the JSON the go command writes for each package unit — the
// same shape golang.org/x/tools/go/analysis/unitchecker reads.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fatal(fmt.Errorf("parsing %s: %w", cfgPath, err))
	}
	// The go command expects the facts output file to exist even though this
	// suite exports none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return fatal(err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			return fatal(err)
		}
		files = append(files, f)
	}

	// Imports resolve through the compiler export data the go command
	// already built, via ImportMap (as-written path -> canonical path) and
	// PackageFile (canonical path -> export data file).
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(importPath string) (io.ReadCloser, error) {
		canonical, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("no ImportMap entry for %q", importPath)
		}
		file, ok := cfg.PackageFile[canonical]
		if !ok {
			return nil, fmt.Errorf("no PackageFile entry for %q", canonical)
		}
		return os.Open(file)
	})
	conf := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			if importPath == "unsafe" {
				return types.Unsafe, nil
			}
			return compilerImporter.Import(importPath)
		}),
		GoVersion: cfg.GoVersion,
	}
	info := lint.NewInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		return fatal(err)
	}
	if n := report(fset, files, pkg, info); n > 0 {
		return 2
	}
	return 0
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// listedPackage is the subset of `go list -json` output the standalone mode
// needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Incomplete bool
}

func standaloneMode(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// One `go list` resolves the target patterns, a second maps the whole
	// dependency graph (standard library included) to source directories so
	// the loader never guesses at GOPATH layout. cgo stays off so packages
	// like net select their pure-Go files, which type-check from source.
	targets, err := goList(append([]string{"-json", "--"}, patterns...))
	if err != nil {
		return fatal(err)
	}
	deps, err := goList(append([]string{"-deps", "-json", "--"}, patterns...))
	if err != nil {
		return fatal(err)
	}
	dirs := make(map[string]string, len(deps))
	for _, p := range deps {
		if p.Dir != "" {
			dirs[p.ImportPath] = p.Dir
		}
	}
	loader := lint.NewLoader(func(path string) (string, bool) {
		if dir, ok := dirs[path]; ok {
			return dir, true
		}
		// Standard-library source spells its vendored dependencies
		// (golang.org/x/...) without the vendor/ prefix go list reports.
		dir, ok := dirs["vendor/"+path]
		return dir, ok
	})
	exit := 0
	total := 0
	for _, target := range targets {
		p, err := loader.Load(target.ImportPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
			continue
		}
		total += report(loader.Fset, p.Files, p.Pkg, p.Info)
	}
	if total > 0 && exit == 0 {
		exit = 2
	}
	return exit
}

func goList(args []string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("parsing go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// report runs the suite over one package and prints its diagnostics sorted
// by position, returning the count.
func report(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) int {
	var diags []lint.Diagnostic
	lint.RunAnalyzers(fset, files, pkg, info, func(d lint.Diagnostic) {
		diags = append(diags, d)
	})
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	return len(diags)
}

func fatal(err error) int {
	fmt.Fprintf(os.Stderr, "cws-vet: %v\n", err)
	return 1
}

package main

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"coordsample"
)

// writeCSV emits a 2-assignment dataset in the cws interchange format.
func writeCSV(t *testing.T, path string, seed int64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	sb.WriteString("key,period1,period2\n")
	for i := 0; i < n; i++ {
		w1 := math.Exp(rng.NormFloat64() * 2)
		w2 := w1 * math.Exp(0.5*rng.NormFloat64())
		fmt.Fprintf(&sb, "host-%04d,%g,%g\n", i, w1, w2)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// summarizeCSV runs the in-process dispersed pipeline over the CSV exactly
// as cws-sketch does (one Offer per positive weight).
func summarizeCSV(t *testing.T, path string, cfg coordsample.Config) *coordsample.Dispersed {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	s0 := coordsample.NewAssignmentSketcher(cfg, 0)
	s1 := coordsample.NewAssignmentSketcher(cfg, 1)
	for _, line := range lines[1:] {
		parts := strings.Split(line, ",")
		var w1, w2 float64
		fmt.Sscanf(parts[1], "%g", &w1)
		fmt.Sscanf(parts[2], "%g", &w2)
		if w1 > 0 {
			s0.Offer(parts[0], w1)
		}
		if w2 > 0 {
			s1.Offer(parts[0], w2)
		}
	}
	d, err := coordsample.CombineDispersed(cfg, []*coordsample.BottomK{s0.Sketch(), s1.Sketch()})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestSeparateProcessesBitIdentical is the acceptance criterion end to
// end, across real OS process boundaries: cws-sketch (process 1) writes
// fingerprinted sketch files, cws-merge (process 2) reads, verifies,
// merges, and queries them, and the printed estimate is bit-identical to
// the in-process pipeline over the same data. Mixing in a sketch built
// under a different seed or K fails loudly.
func TestSeparateProcessesBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	sketchBin := filepath.Join(dir, "cws-sketch")
	mergeBin := filepath.Join(dir, "cws-merge")
	for bin, pkg := range map[string]string{sketchBin: "coordsample/cmd/cws-sketch", mergeBin: "coordsample/cmd/cws-merge"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	csv := filepath.Join(dir, "data.csv")
	writeCSV(t, csv, 21, 3000)
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 1, K: 256}

	// Process 1: sketch and ship (one file per assignment, both formats).
	for _, format := range []string{"binary", "json"} {
		prefix := filepath.Join(dir, "site-"+format)
		out, err := exec.Command(sketchBin, "-in", csv, "-k", "256", "-seed", "1",
			"-out", prefix, "-format", format, "-query", "none").CombinedOutput()
		if err != nil {
			t.Fatalf("cws-sketch (%s): %v\n%s", format, err, out)
		}
		suffix := ".cws"
		if format == "json" {
			suffix = ".cws.json"
		}
		files := []string{prefix + ".0" + suffix, prefix + ".1" + suffix}

		// Process 2: merge and query the shipped files alone.
		inProcess := summarizeCSV(t, csv, cfg)
		for _, q := range []struct {
			args []string
			want float64
		}{
			{[]string{"-query", "L1"}, inProcess.RangeLSet(nil).Estimate(nil)},
			{[]string{"-query", "max"}, inProcess.Max(nil).Estimate(nil)},
			{[]string{"-query", "min"}, inProcess.MinLSet(nil).Estimate(nil)},
			{[]string{"-query", "lth", "-l", "2"}, inProcess.LthLargest(nil, 2).Estimate(nil)},
			{[]string{"-query", "sum", "-b", "0", "-prefix", "host-1"},
				inProcess.Single(0).Estimate(func(k string) bool { return strings.HasPrefix(k, "host-1") })},
		} {
			out, err := exec.Command(mergeBin, append(q.args, files...)...).CombinedOutput()
			if err != nil {
				t.Fatalf("cws-merge %v: %v\n%s", q.args, err, out)
			}
			// cws-merge prints the estimate with %v: shortest exact float64
			// representation, so string equality means bit-identity.
			if want := fmt.Sprintf("= %v ", q.want); !strings.Contains(string(out), want) {
				t.Fatalf("cws-merge %v (%s): output %q does not contain bit-identical %q",
					q.args, format, out, want)
			}
		}
	}

	// Loud-failure direction 1: a site with a different seed.
	badPrefix := filepath.Join(dir, "rogue")
	if out, err := exec.Command(sketchBin, "-in", csv, "-k", "256", "-seed", "2",
		"-out", badPrefix, "-query", "none").CombinedOutput(); err != nil {
		t.Fatalf("cws-sketch (rogue): %v\n%s", err, out)
	}
	out, err := exec.Command(mergeBin, "-query", "L1",
		filepath.Join(dir, "site-binary.0.cws"), badPrefix+".1.cws").CombinedOutput()
	if err == nil {
		t.Fatalf("cws-merge accepted sketches with different seeds:\n%s", out)
	}
	if !strings.Contains(string(out), "not coordinated") {
		t.Fatalf("mismatch error does not explain the coordination failure: %s", out)
	}

	// Loud-failure direction 2: shard sketches of one assignment with
	// different K (caught by the fingerprint in the merge).
	smallPrefix := filepath.Join(dir, "small-k")
	if out, err := exec.Command(sketchBin, "-in", csv, "-k", "128", "-seed", "1",
		"-out", smallPrefix, "-query", "none").CombinedOutput(); err != nil {
		t.Fatalf("cws-sketch (small k): %v\n%s", err, out)
	}
	out, err = exec.Command(mergeBin, "-query", "L1",
		filepath.Join(dir, "site-binary.0.cws"), smallPrefix+".0.cws",
		filepath.Join(dir, "site-binary.1.cws")).CombinedOutput()
	if err == nil {
		t.Fatalf("cws-merge accepted shard sketches with different K:\n%s", out)
	}
	if !strings.Contains(string(out), "fingerprint") {
		t.Fatalf("mismatch error does not mention the fingerprint: %s", out)
	}
}

// TestRunErrors covers the in-process error paths of the merge command.
func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil || !strings.Contains(err.Error(), "no sketch files") {
		t.Fatalf("missing-files error: %v", err)
	}
	dir := t.TempDir()
	garbage := filepath.Join(dir, "garbage.cws")
	if err := os.WriteFile(garbage, []byte("not a sketch"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{garbage}, &buf); err == nil || !strings.Contains(err.Error(), "not a sketch file") {
		t.Fatalf("garbage-file error: %v", err)
	}
	if err := run([]string{filepath.Join(dir, "missing.cws")}, &buf); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestRunQueriesDecodedFiles drives run() directly over library-written
// files, including the verbose listing.
func TestRunQueriesDecodedFiles(t *testing.T) {
	dir := t.TempDir()
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 3, K: 32}
	rng := rand.New(rand.NewSource(8))
	var files []string
	for b := 0; b < 2; b++ {
		sk := coordsample.NewAssignmentSketcher(cfg, b)
		for i := 0; i < 500; i++ {
			sk.Offer(fmt.Sprintf("k%04d", i), math.Exp(rng.NormFloat64()))
		}
		path := filepath.Join(dir, fmt.Sprintf("a%d.cws", b))
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := coordsample.EncodeSketch(f, coordsample.CodecBinary, cfg, b, sk.Sketch()); err != nil {
			t.Fatal(err)
		}
		f.Close()
		files = append(files, path)
	}
	var buf bytes.Buffer
	if err := run(append([]string{"-v", "-query", "jaccard"}, files...), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "loaded") || !strings.Contains(out, "weighted Jaccard") {
		t.Fatalf("unexpected output: %s", out)
	}
}

// writeSketchFiles builds and encodes per-assignment sketch files for a
// small deterministic dataset, returning the paths and the in-process
// summary they must reproduce.
func writeSketchFiles(t *testing.T, dir string, cfg coordsample.Config, seed int64) ([]string, *coordsample.Dispersed) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sketchers := []*coordsample.AssignmentSketcher{
		coordsample.NewAssignmentSketcher(cfg, 0),
		coordsample.NewAssignmentSketcher(cfg, 1),
	}
	for i := 0; i < 600; i++ {
		key := fmt.Sprintf("host-%04d", i)
		for b, sk := range sketchers {
			sk.Offer(key, math.Exp(rng.NormFloat64())*float64(b+1))
		}
	}
	sketches := []*coordsample.BottomK{sketchers[0].Sketch(), sketchers[1].Sketch()}
	var files []string
	for b, sk := range sketches {
		path := filepath.Join(dir, fmt.Sprintf("site.%d.cws", b))
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := coordsample.EncodeSketch(f, coordsample.CodecBinary, cfg, b, sk); err != nil {
			t.Fatal(err)
		}
		f.Close()
		files = append(files, path)
	}
	summary, err := coordsample.CombineDispersed(cfg, sketches)
	if err != nil {
		t.Fatal(err)
	}
	return files, summary
}

// TestDirectoryAndGlobArguments: a directory argument expands to the
// sketch files inside it, a glob expands to its matches, and both answer
// bit-identically to listing the files explicitly.
func TestDirectoryAndGlobArguments(t *testing.T) {
	dir := t.TempDir()
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 5, K: 128}
	_, summary := writeSketchFiles(t, dir, cfg, 31)
	// A non-sketch file in the directory must be ignored by expansion.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("= %v ", summary.RangeLSet(nil).Estimate(nil))

	for name, args := range map[string][]string{
		"directory": {"-query", "L1", dir},
		"glob":      {"-query", "L1", filepath.Join(dir, "site.*.cws")},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("%s: output %q does not contain bit-identical %q", name, buf.String(), want)
		}
	}

	var buf bytes.Buffer
	if err := run([]string{filepath.Join(dir, "none-*.cws")}, &buf); err == nil || !strings.Contains(err.Error(), "matches no files") {
		t.Fatalf("empty glob: err = %v", err)
	}
	empty := t.TempDir()
	if err := run([]string{empty}, &buf); err == nil || !strings.Contains(err.Error(), "no *.cws") {
		t.Fatalf("empty directory: err = %v", err)
	}
}

// TestFingerprintMismatchNamesTheFile: a rogue shard file (different K)
// among healthy ones must be named in the error, not just indexed.
func TestFingerprintMismatchNamesTheFile(t *testing.T) {
	dir := t.TempDir()
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 5, K: 128}
	files, _ := writeSketchFiles(t, dir, cfg, 31)

	rogueDir := t.TempDir()
	small := cfg
	small.K = 64
	rogueFiles, _ := writeSketchFiles(t, rogueDir, small, 32)

	var buf bytes.Buffer
	err := run([]string{"-query", "L1", files[0], files[1], rogueFiles[0]}, &buf)
	if err == nil {
		t.Fatal("mixed-K shard files accepted")
	}
	if !strings.Contains(err.Error(), rogueFiles[0]) {
		t.Fatalf("error does not name the offending file %s: %v", rogueFiles[0], err)
	}
	if !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("error does not mention the fingerprint: %v", err)
	}

	// A coordination mismatch (different seed) names its file too.
	otherDir := t.TempDir()
	rogueSeed := cfg
	rogueSeed.Seed = 6
	seedFiles, _ := writeSketchFiles(t, otherDir, rogueSeed, 33)
	err = run([]string{"-query", "L1", files[0], seedFiles[1]}, &buf)
	if err == nil {
		t.Fatal("mixed-seed files accepted")
	}
	if !strings.Contains(err.Error(), seedFiles[1]) {
		t.Fatalf("coordination error does not name the offending file: %v", err)
	}
}

// TestStoreQueries: -store reads a durable epoch store directly —
// cumulative by default, any retained window with -epochs — and answers
// bit-identically to the summaries the store's sketches combine to.
func TestStoreQueries(t *testing.T) {
	dir := t.TempDir()
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 9, K: 64}
	st, err := coordsample.OpenStore(coordsample.StoreConfig{Dir: dir, Retain: 8, Sample: cfg, Assignments: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	var epochSketches [][]*coordsample.BottomK
	key := 0
	for e := 0; e < 3; e++ {
		sketchers := []*coordsample.AssignmentSketcher{
			coordsample.NewAssignmentSketcher(cfg, 0),
			coordsample.NewAssignmentSketcher(cfg, 1),
		}
		for i := 0; i < 200; i++ {
			k := fmt.Sprintf("key-%05d", key)
			key++
			for _, sk := range sketchers {
				sk.Offer(k, math.Exp(rng.NormFloat64()))
			}
		}
		set := []*coordsample.BottomK{sketchers[0].Sketch(), sketchers[1].Sketch()}
		if _, err := st.AppendEpoch(set); err != nil {
			t.Fatal(err)
		}
		epochSketches = append(epochSketches, set)
	}
	st.Close()

	mergedWindow, err := coordsample.MergeSketches(epochSketches[1][0], epochSketches[2][0])
	if err != nil {
		t.Fatal(err)
	}
	mergedWindow1, err := coordsample.MergeSketches(epochSketches[1][1], epochSketches[2][1])
	if err != nil {
		t.Fatal(err)
	}
	windowSummary, err := coordsample.CombineDispersed(cfg, []*coordsample.BottomK{mergedWindow, mergedWindow1})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run([]string{"-store", dir, "-epochs", "2..3", "-query", "L1", "-v"}, &buf); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("= %v ", windowSummary.RangeLSet(nil).Estimate(nil))
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("-store -epochs output %q does not contain bit-identical %q", buf.String(), want)
	}
	if !strings.Contains(buf.String(), "opened "+dir) {
		t.Fatalf("-v did not describe the store: %q", buf.String())
	}

	// Error paths: compacted/evicted windows, files+store conflicts.
	if err := run([]string{"-store", dir, "-epochs", "2..9"}, &buf); err == nil {
		t.Fatal("out-of-range window accepted")
	}
	if err := run([]string{"-store", dir, "file.cws"}, &buf); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("store+files: err = %v", err)
	}
	if err := run([]string{"-epochs", "1..2", "x.cws"}, &buf); err == nil || !strings.Contains(err.Error(), "requires -store") {
		t.Fatalf("epochs without store: err = %v", err)
	}
	if err := run([]string{"-store", t.TempDir()}, &buf); err == nil {
		t.Fatal("empty dir accepted as store")
	}
}

// TestLiteralFileWithGlobCharacters: an existing file whose name contains
// glob metacharacters must be read literally, not glob-expanded away.
func TestLiteralFileWithGlobCharacters(t *testing.T) {
	dir := t.TempDir()
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 5, K: 64}
	files, summary := writeSketchFiles(t, dir, cfg, 44)
	weird := []string{
		filepath.Join(dir, "site[A].0.cws"),
		filepath.Join(dir, "site[A].1.cws"),
	}
	for i, f := range files {
		if err := os.Rename(f, weird[i]); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := run(append([]string{"-query", "L1"}, weird...), &buf); err != nil {
		t.Fatalf("literal file with glob chars: %v", err)
	}
	want := fmt.Sprintf("= %v ", summary.RangeLSet(nil).Estimate(nil))
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("output %q does not contain %q", buf.String(), want)
	}
}

package main

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"coordsample"
)

// TestServerSketchExportAcceptedByMerge closes the loop between the online
// and offline halves of the system: sketches exported by a live cws-serve
// process (GET /sketch) are ordinary fingerprinted wire-codec files, so
// cws-merge must verify, combine, and query them — and, because both
// binaries share the cliquery dispatch and deterministic summation, print
// answers bit-identical to the ones the server gives over HTTP.
func TestServerSketchExportAcceptedByMerge(t *testing.T) {
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 5, K: 64}
	srv, err := coordsample.NewServer(coordsample.ServerConfig{
		Sample:      cfg,
		Assignments: 2,
		Shards:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Ingest a deterministic stream and freeze (two epochs, to prove the
	// export is the cumulative merged sketch).
	rng := rand.New(rand.NewSource(17))
	for epoch := 0; epoch < 2; epoch++ {
		var sb strings.Builder
		sb.WriteString(`{"offers":[`)
		for i := 0; i < 400; i++ {
			key := fmt.Sprintf("flow-%d-%04d", epoch, i)
			for b := 0; b < 2; b++ {
				if i > 0 || b > 0 {
					sb.WriteString(",")
				}
				fmt.Fprintf(&sb, `{"assignment":%d,"key":%q,"weight":%g}`, b, key, math.Exp(rng.NormFloat64()))
			}
		}
		sb.WriteString(`]}`)
		resp, err := http.Post(ts.URL+"/offer", "application/json", strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("offer: status %d", resp.StatusCode)
		}
		resp, err = http.Post(ts.URL+"/freeze", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("freeze: status %d", resp.StatusCode)
		}
	}

	// Download both assignments' sketches, one per format.
	dir := t.TempDir()
	var files []string
	for b := 0; b < 2; b++ {
		format := []string{"binary", "json"}[b]
		resp, err := http.Get(fmt.Sprintf("%s/sketch?b=%d&format=%s", ts.URL, b, format))
		if err != nil {
			t.Fatal(err)
		}
		data := new(bytes.Buffer)
		if _, err := data.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		path := filepath.Join(dir, fmt.Sprintf("server.%d.cws", b))
		if err := os.WriteFile(path, data.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		files = append(files, path)
	}

	// The server's own HTTP answer for each query...
	serverAnswer := func(params string) string {
		resp, err := http.Get(ts.URL + "/query?" + params)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body := new(bytes.Buffer)
		body.ReadFrom(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %s: status %d: %s", params, resp.StatusCode, body)
		}
		// Extract the estimate field textually: the JSON number is the
		// shortest exact float64 representation, the same text %v prints,
		// so string comparison proves bit-identity.
		s := body.String()
		const marker = `"estimate":`
		i := strings.Index(s, marker)
		if i < 0 {
			t.Fatalf("query %s: no estimate in %s", params, s)
		}
		rest := s[i+len(marker):]
		if j := strings.IndexAny(rest, ",}"); j >= 0 {
			rest = rest[:j]
		}
		return strings.TrimSpace(rest)
	}

	// ...must appear verbatim in cws-merge's output over the exported files.
	for _, q := range []struct {
		mergeArgs []string
		params    string
	}{
		{[]string{"-query", "L1"}, "agg=L1"},
		{[]string{"-query", "max"}, "agg=max"},
		{[]string{"-query", "min"}, "agg=min"},
		{[]string{"-query", "lth", "-l", "2"}, "agg=lth&l=2"},
		{[]string{"-query", "sum", "-b", "1", "-prefix", "flow-0-"}, "agg=sum&b=1&prefix=flow-0-"},
	} {
		var buf bytes.Buffer
		if err := run(append(q.mergeArgs, files...), &buf); err != nil {
			t.Fatalf("cws-merge %v over server exports: %v", q.mergeArgs, err)
		}
		want := serverAnswer(q.params)
		if !strings.Contains(buf.String(), "= "+want+" ") {
			t.Fatalf("cws-merge %v printed %q; server answered %s (must be bit-identical)",
				q.mergeArgs, buf.String(), want)
		}
	}
}

// Command cws-merge is the paper's distributed combiner as a separate OS
// process: it reads sketch files written by cws-sketch -out (or any
// EncodeSketch caller), verifies each file's configuration fingerprint,
// merges shard sketches of the same assignment, and answers
// multiple-assignment aggregate queries from the files alone — no access
// to the original data or to the sketching sites.
//
// Because sketch files round-trip float64 values exactly and estimates are
// summed deterministically, a query answered here is bit-identical to the
// same query answered in-process at the site that held all the data.
//
// Mixing files built under different configurations (Family, Mode, Seed,
// or, for shard sketches, K) fails loudly with a typed error instead of
// silently producing corrupt estimates.
//
// Usage:
//
//	cws-sketch -in siteA.csv -k 1024 -out siteA -query none   # at site A
//	cws-sketch -in siteB.csv -k 1024 -out siteB -query none   # at site B
//	cws-merge -query L1 siteA.0.cws siteA.1.cws siteB.0.cws siteB.1.cws
//	cws-merge -query lth -l 2 -R 0,1 *.cws
//	cws-merge -query sum -b 0 -prefix "192.168." *.cws
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"coordsample"
	"coordsample/internal/cliquery"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "cws-merge: %v\n", err)
		os.Exit(1)
	}
}

// run is main with injectable arguments and output, so the end-to-end
// file-merge-query path is testable without spawning a process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cws-merge", flag.ContinueOnError)
	query := fs.String("query", "L1", "query: "+cliquery.Queries)
	b := fs.Int("b", 0, "assignment index for -query sum")
	l := fs.Int("l", 1, "ℓ for -query lth (1 = largest)")
	rFlag := fs.String("R", "", "comma-separated assignment subset (default all)")
	prefix := fs.String("prefix", "", "restrict to keys with this prefix (subpopulation)")
	verbose := fs.Bool("v", false, "describe each loaded sketch file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	if len(files) == 0 {
		return fmt.Errorf("no sketch files given (write them with cws-sketch -out)")
	}

	decoded := make([]*coordsample.DecodedSketch, len(files))
	for i, path := range files {
		d, err := readSketchFile(path)
		if err != nil {
			return err
		}
		decoded[i] = d
		if *verbose {
			fmt.Fprintf(stdout, "loaded %s: assignment %d, %v/%v/seed=%d, k=%d, %d entries, fingerprint %#016x\n",
				path, d.Meta.Assignment, d.Meta.Family, d.Meta.Mode, d.Meta.Seed,
				d.BottomK.K(), d.BottomK.Size(), d.Fingerprint())
		}
	}

	summary, err := coordsample.CombineDecoded(decoded)
	if err != nil {
		return err
	}

	R, err := cliquery.ParseR(*rFlag, summary.NumAssignments())
	if err != nil {
		return err
	}
	var pred coordsample.Pred
	if *prefix != "" {
		p := *prefix
		pred = func(key string) bool { return strings.HasPrefix(key, p) }
	}
	label, v, err := cliquery.Answer(summary, *query, *b, R, *l, pred)
	if err != nil {
		return err
	}
	// Full float64 precision: answers here are bit-identical to the
	// in-process pipeline, and the output should prove it.
	fmt.Fprintf(stdout, "%s = %v (from %d sketch files, %d assignments)\n",
		label, v, len(files), summary.NumAssignments())
	return nil
}

func readSketchFile(path string) (*coordsample.DecodedSketch, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := coordsample.DecodeSketch(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if d.BottomK == nil {
		return nil, fmt.Errorf("%s: Poisson sketch files are not supported by cws-merge (use the library's CombineDecoded)", path)
	}
	return d, nil
}

// Command cws-merge is the paper's distributed combiner as a separate OS
// process: it reads sketch files written by cws-sketch -out (or exported
// by cws-serve's GET /sketch), verifies each file's configuration
// fingerprint, merges shard sketches of the same assignment, and answers
// multiple-assignment aggregate queries from the files alone — no access
// to the original data or to the sketching sites.
//
// Because sketch files round-trip float64 values exactly and estimates are
// summed deterministically, a query answered here is bit-identical to the
// same query answered in-process at the site that held all the data.
//
// Inputs may be named as files, directories (every *.cws / *.cws.json
// inside), or shell-style globs. Alternatively, -store reads a cws-serve
// durable epoch store directory directly: the cumulative sketches by
// default, or any retained epoch window with -epochs (the same time-travel
// selector as the server's GET /query?epochs=lo..hi), so the server's
// history is queryable offline — even while the server is down.
//
// Mixing files built under different configurations (Family, Mode, Seed,
// or, for shard sketches, K) fails loudly with a typed error naming the
// offending file instead of silently producing corrupt estimates.
//
// Usage:
//
//	cws-sketch -in siteA.csv -k 1024 -out siteA -query none   # at site A
//	cws-sketch -in siteB.csv -k 1024 -out siteB -query none   # at site B
//	cws-merge -query L1 siteA.0.cws siteA.1.cws siteB.0.cws siteB.1.cws
//	cws-merge -query L1 sketchdir/                            # a directory of sketch files
//	cws-merge -query lth -l 2 -R 0,1 *.cws
//	cws-merge -query sum -b 0 -prefix "192.168." *.cws
//	cws-merge -store /var/lib/cws -query L1                   # a server's durable store
//	cws-merge -store /var/lib/cws -epochs 3..7 -query jaccard # a retained time window
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"coordsample"
	"coordsample/internal/cliquery"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "cws-merge: %v\n", err)
		os.Exit(1)
	}
}

// run is main with injectable arguments and output, so the end-to-end
// file-merge-query path is testable without spawning a process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cws-merge", flag.ContinueOnError)
	query := fs.String("query", "L1", "query: "+cliquery.Queries)
	b := fs.Int("b", 0, "assignment index for -query sum")
	l := fs.Int("l", 1, "ℓ for -query lth (1 = largest)")
	rFlag := fs.String("R", "", "comma-separated assignment subset (default all)")
	prefix := fs.String("prefix", "", "restrict to keys with this prefix (subpopulation)")
	estimator := fs.String("estimator", "aw", "estimator family: "+coordsample.EstimatorNames)
	storeDir := fs.String("store", "", "read a cws-serve durable epoch store directory instead of sketch files")
	epochsFlag := fs.String("epochs", "", "with -store: restrict to the retained epoch window lo..hi (default: all epochs)")
	verbose := fs.Bool("v", false, "describe each loaded sketch file (or the opened store)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var summary *coordsample.Dispersed
	var source string
	var err error
	if *storeDir != "" {
		if len(fs.Args()) > 0 {
			return fmt.Errorf("-store and sketch-file arguments are mutually exclusive")
		}
		summary, source, err = summarizeStore(*storeDir, *epochsFlag, *verbose, stdout)
	} else {
		if *epochsFlag != "" {
			return fmt.Errorf("-epochs requires -store (sketch files carry no epoch history)")
		}
		summary, source, err = summarizeFiles(fs.Args(), *verbose, stdout)
	}
	if err != nil {
		return err
	}

	R, err := cliquery.ParseR(*rFlag, summary.NumAssignments())
	if err != nil {
		return err
	}
	var pred coordsample.Pred
	if *prefix != "" {
		p := *prefix
		pred = func(key string) bool { return strings.HasPrefix(key, p) }
	}
	est, err := coordsample.ParseEstimator(*estimator)
	if err != nil {
		return err
	}
	label, v, stderr, err := cliquery.Answer(summary, *query, *b, R, *l, pred, est)
	if err != nil {
		return err
	}
	// Full float64 precision: answers here are bit-identical to the
	// in-process pipeline, and the output should prove it. The stderr
	// rides behind the estimate (absent for ratio queries, whose stderr
	// is undefined) without disturbing the "= <value> " answer text.
	errText := ""
	if !math.IsNaN(stderr) {
		errText = fmt.Sprintf("± %.3g, ", stderr)
	}
	fmt.Fprintf(stdout, "%s = %v (%sfrom %s, %d assignments)\n",
		label, v, errText, source, summary.NumAssignments())
	return nil
}

// summarizeStore opens a durable epoch store read-only and combines its
// cumulative sketches — or, with an epoch range, the exact merge of that
// retained time window.
func summarizeStore(dir, epochsSel string, verbose bool, stdout io.Writer) (*coordsample.Dispersed, string, error) {
	st, err := coordsample.OpenStore(coordsample.StoreConfig{Dir: dir})
	if err != nil {
		return nil, "", err
	}
	defer st.Close()
	if st.Epoch() == 0 {
		return nil, "", fmt.Errorf("%s: store holds no epochs", dir)
	}
	cfg, ok := st.SampleConfig()
	if !ok {
		return nil, "", fmt.Errorf("%s: store holds no sketches", dir)
	}
	sketches := st.Cumulative()
	source := fmt.Sprintf("store %s, epochs 1..%d", dir, st.Epoch())
	if epochsSel != "" {
		lo, hi, err := cliquery.ParseEpochRange(epochsSel)
		if err != nil {
			return nil, "", err
		}
		if sketches, err = st.Range(lo, hi); err != nil {
			return nil, "", err
		}
		source = fmt.Sprintf("store %s, epochs %d..%d", dir, lo, hi)
	}
	if verbose {
		fmt.Fprintf(stdout, "opened %s: %d epochs (%d retained from %d), %d assignments, %v/%v/seed=%d, k=%d, %d bytes on disk\n",
			dir, st.Epoch(), len(st.Retained()), st.CompactedThrough()+1, st.Assignments(),
			cfg.Family, cfg.Mode, cfg.Seed, cfg.K, st.DiskBytes())
	}
	summary, err := coordsample.CombineDispersed(cfg, sketches)
	if err != nil {
		return nil, "", err
	}
	return summary, source, nil
}

// summarizeFiles expands the arguments (files, directories, globs) into
// sketch files, decodes and verifies each, and combines them.
func summarizeFiles(args []string, verbose bool, stdout io.Writer) (*coordsample.Dispersed, string, error) {
	files, err := expandArgs(args)
	if err != nil {
		return nil, "", err
	}
	if len(files) == 0 {
		return nil, "", fmt.Errorf("no sketch files given (write them with cws-sketch -out, export them from cws-serve's GET /sketch, or pass -store)")
	}
	decoded := make([]*coordsample.DecodedSketch, len(files))
	for i, path := range files {
		d, err := readSketchFile(path)
		if err != nil {
			return nil, "", err
		}
		decoded[i] = d
		if verbose {
			fmt.Fprintf(stdout, "loaded %s: assignment %d, %v/%v/seed=%d, k=%d, %d entries, fingerprint %#016x\n",
				path, d.Meta.Assignment, d.Meta.Family, d.Meta.Mode, d.Meta.Seed,
				d.BottomK.K(), d.BottomK.Size(), d.Fingerprint())
		}
	}
	if err := checkFingerprints(files, decoded); err != nil {
		return nil, "", err
	}
	summary, err := coordsample.CombineDecoded(decoded)
	if err != nil {
		// The combiner's typed errors index the decoded inputs; translate
		// the index back to the file that caused it.
		var cm *coordsample.CoordinationMismatchError
		if errors.As(err, &cm) && cm.Index >= 0 && cm.Index < len(files) {
			return nil, "", fmt.Errorf("%s: %w", files[cm.Index], err)
		}
		return nil, "", err
	}
	return summary, fmt.Sprintf("%d sketch files", len(files)), nil
}

// checkFingerprints reports same-assignment fingerprint conflicts by file
// name before the combiner's merge reports them by position: the classic
// failure is one rogue file among dozens, and the error must say which.
func checkFingerprints(files []string, decoded []*coordsample.DecodedSketch) error {
	first := make(map[int]int) // assignment → index of first file holding it
	for i, d := range decoded {
		b := d.Meta.Assignment
		j, ok := first[b]
		if !ok {
			first[b] = i
			continue
		}
		if d.Fingerprint() != decoded[j].Fingerprint() {
			return fmt.Errorf(
				"%s: fingerprint %#016x conflicts with %s (%#016x) for assignment %d: shard sketches of one assignment must share Family, Mode, Seed, and K",
				files[i], d.Fingerprint(), files[j], decoded[j].Fingerprint(), b)
		}
	}
	return nil
}

// expandArgs resolves each argument to sketch files: a directory expands
// to every *.cws / *.cws.json inside it (sorted); a path that does not
// exist but contains glob metacharacters expands via filepath.Glob (an
// existing file always wins, even when its name contains '*', '?', or
// '['); anything else is taken as a literal file path.
func expandArgs(args []string) ([]string, error) {
	var files []string
	for _, arg := range args {
		if st, err := os.Stat(arg); err == nil {
			if !st.IsDir() {
				files = append(files, arg)
				continue
			}
			inDir, err := sketchFilesInDir(arg)
			if err != nil {
				return nil, err
			}
			if len(inDir) == 0 {
				return nil, fmt.Errorf("%s: directory contains no *.cws or *.cws.json sketch files", arg)
			}
			files = append(files, inDir...)
			continue
		}
		if strings.ContainsAny(arg, "*?[") {
			matches, err := filepath.Glob(arg)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", arg, err)
			}
			if len(matches) == 0 {
				return nil, fmt.Errorf("%s: glob matches no files", arg)
			}
			sort.Strings(matches)
			files = append(files, matches...)
			continue
		}
		files = append(files, arg)
	}
	return files, nil
}

// sketchFilesInDir lists the sketch files directly inside dir, sorted.
func sketchFilesInDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, ".cws") || strings.HasSuffix(name, ".cws.json") {
			files = append(files, filepath.Join(dir, name))
		}
	}
	sort.Strings(files)
	return files, nil
}

func readSketchFile(path string) (*coordsample.DecodedSketch, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := coordsample.DecodeSketch(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if d.BottomK == nil {
		return nil, fmt.Errorf("%s: Poisson sketch files are not supported by cws-merge (use the library's CombineDecoded)", path)
	}
	return d, nil
}

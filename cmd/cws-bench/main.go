// Command cws-bench regenerates the tables and figures of the paper's
// evaluation (Section 9) on the synthetic datasets.
//
// Usage:
//
//	cws-bench -list
//	cws-bench -run fig3 [-scale 1.0] [-runs 25] [-ks 10,100,1000] [-seed 1]
//	cws-bench -run all
//	cws-bench -run serve -json BENCH_serve.json
//	cws-bench -run ingest -json BENCH_ingest.json
//	cws-bench -run ingest -cpuprofile cpu.out -memprofile mem.out
//
// Each experiment prints plain-text tables with the same rows/series the
// paper plots; see DESIGN.md for the experiment index and EXPERIMENTS.md for
// recorded paper-vs-measured comparisons. With -json, the machine-readable
// results (tables plus the options that produced them) are additionally
// written to a file, which is how the checked-in BENCH_*.json perf records
// are produced.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"coordsample/internal/experiments"
)

// jsonReport is the -json file schema: enough provenance to rerun the
// measurement, plus the raw tables.
type jsonReport struct {
	GeneratedBy string              `json:"generated_by"`
	GoVersion   string              `json:"go_version"`
	GOMAXPROCS  int                 `json:"gomaxprocs"`
	Options     experiments.Options `json:"options"`
	Results     []jsonResult        `json:"results"`
}

type jsonResult struct {
	ID        string              `json:"id"`
	Paper     string              `json:"paper"`
	Desc      string              `json:"desc"`
	ElapsedMS int64               `json:"elapsed_ms"`
	Tables    []experiments.Table `json:"tables"`
}

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "experiment ID to run, or 'all'")
	scale := flag.Float64("scale", 1.0, "dataset scale multiplier")
	runs := flag.Int("runs", 25, "sampling repetitions per measured point")
	ks := flag.String("ks", "", "comma-separated k sweep (default per experiment)")
	seed := flag.Uint64("seed", 0xC0FFEE, "hash seed")
	shards := flag.Int("shards", 0, "shard count for the sharding/serve/ingest experiments (0 = sweep defaults)")
	workers := flag.Int("workers", 0, "cap process parallelism and per-assignment ingestion workers (0 = GOMAXPROCS)")
	conns := flag.Int("conns", 0, "client connections for the loadtest experiment (0 = sweep defaults)")
	addr := flag.String("addr", "", "target an already-running cws-serve at host:port for the loadtest experiment (default: in-process server)")
	peers := flag.Int("peers", 0, "member count for the cluster experiment (0 = 3)")
	overload := flag.Bool("overload", false, "loadtest overload mode: tiny ingest-admission bound, clients honor 429 Retry-After")
	jsonOut := flag.String("json", "", "also write results as JSON to this file (the BENCH_*.json perf records)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the experiment run to this file")
	flag.Parse()
	if *workers > 0 {
		// Bounds every worker pool in the process: the parallel sampling
		// repetitions and the sharded-ingestion drains alike.
		runtime.GOMAXPROCS(*workers)
	}

	if *list || *run == "" {
		listExperiments()
		if *run == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nuse -run <id> to execute an experiment")
			os.Exit(2)
		}
		return
	}

	stopProfiles := startProfiles(*cpuProfile, *memProfile)

	opts := experiments.Options{Scale: *scale, Runs: *runs, Seed: *seed, Shards: *shards, Workers: *workers, Conns: *conns, Addr: *addr, Peers: *peers, Overload: *overload}
	if *ks != "" {
		for _, part := range strings.Split(*ks, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || k < 1 {
				fmt.Fprintf(os.Stderr, "cws-bench: invalid k value %q\n", part)
				os.Exit(2)
			}
			opts.Ks = append(opts.Ks, k)
		}
	}

	report := jsonReport{
		GeneratedBy: "cws-bench",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Options:     opts,
	}
	if *run == "all" {
		for _, e := range experiments.Registry() {
			report.Results = append(report.Results, execute(e, opts))
		}
	} else {
		e, ok := experiments.Find(*run)
		if !ok {
			stopProfiles()
			fmt.Fprintf(os.Stderr, "cws-bench: unknown experiment %q (use -list)\n", *run)
			os.Exit(2)
		}
		report.Results = append(report.Results, execute(e, opts))
	}
	stopProfiles()
	if *jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "cws-bench: encoding -json report: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cws-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}

// startProfiles arms the optional -cpuprofile/-memprofile collection and
// returns the idempotent stop function, which finalizes both files. It is
// called explicitly (not deferred) so that profiles survive the os.Exit
// error paths after the experiments have run.
func startProfiles(cpuPath, memPath string) func() {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cws-bench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cws-bench: starting CPU profile: %v\n", err)
			os.Exit(1)
		}
		cpuFile = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cws-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects so the profile shows steady-state retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "cws-bench: writing heap profile: %v\n", err)
			}
		}
	}
}

func listExperiments() {
	fmt.Println("available experiments:")
	for _, e := range experiments.Registry() {
		fmt.Printf("  %-18s %-28s %s\n", e.ID, e.Paper, e.Desc)
	}
}

func execute(e experiments.Experiment, opts experiments.Options) jsonResult {
	fmt.Printf("=== %s (%s) ===\n%s\n\n", e.ID, e.Paper, e.Desc)
	start := time.Now()
	res := e.Run(opts)
	elapsed := time.Since(start)
	res.Write(os.Stdout)
	fmt.Printf("[%s completed in %v]\n\n", e.ID, elapsed.Round(time.Millisecond))
	return jsonResult{ID: e.ID, Paper: e.Paper, Desc: e.Desc, ElapsedMS: elapsed.Milliseconds(), Tables: res.Tables}
}

// Command cws-sketch builds coordinated bottom-k sketches from CSV data and
// answers multiple-assignment aggregate queries — the dispersed pipeline as
// a shell tool.
//
// Input: a CSV with header "key,<a1>,<a2>,..." (as produced by cws-datagen),
// one weight column per assignment. Each column is sketched independently
// through the dispersed pipeline, so the results are identical to running
// one sketcher per site.
//
// Usage:
//
//	cws-sketch -in data.csv -k 1024 -query L1          # Σ |w1 − w2| over all keys
//	cws-sketch -in data.csv -k 1024 -query min -R 0,1,2
//	cws-sketch -in data.csv -k 1024 -query sum -b 0 -prefix "192.168."
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"coordsample"
	"coordsample/internal/csvio"
)

func main() {
	in := flag.String("in", "", "input CSV (default stdin)")
	k := flag.Int("k", 1024, "sketch size per assignment")
	seed := flag.Uint64("seed", 1, "hash seed shared by all assignments")
	query := flag.String("query", "L1", "query: sum, min, max, L1, jaccard")
	b := flag.Int("b", 0, "assignment index for -query sum")
	rFlag := flag.String("R", "", "comma-separated assignment subset (default all)")
	prefix := flag.String("prefix", "", "restrict to keys with this prefix (subpopulation)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	names, sketchers, err := sketchCSV(bufio.NewReader(r), coordsample.Config{
		Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: *seed, K: *k,
	})
	if err != nil {
		fatal(err)
	}
	sketches := make([]*coordsample.BottomK, len(sketchers))
	for i, s := range sketchers {
		sketches[i] = s.Sketch()
	}
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: *seed, K: *k}
	summary := coordsample.CombineDispersed(cfg, sketches)

	R, err := parseR(*rFlag, len(names))
	if err != nil {
		fatal(err)
	}
	var pred coordsample.Pred
	if *prefix != "" {
		p := *prefix
		pred = func(key string) bool { return strings.HasPrefix(key, p) }
	}

	switch *query {
	case "sum":
		report("sum "+names[*b], summary.Single(*b).Estimate(pred))
	case "min":
		report("min-dominance", summary.MinLSet(R).Estimate(pred))
	case "max":
		report("max-dominance", summary.Max(R).Estimate(pred))
	case "L1":
		report("L1 difference", summary.RangeLSet(R).Estimate(pred))
	case "jaccard":
		mx := summary.Max(R).Estimate(pred)
		mn := summary.MinLSet(R).Estimate(pred)
		if mx == 0 {
			report("weighted Jaccard", 1)
		} else {
			report("weighted Jaccard", mn/mx)
		}
	default:
		fatal(fmt.Errorf("unknown query %q", *query))
	}
}

func sketchCSV(r io.Reader, cfg coordsample.Config) ([]string, []*coordsample.AssignmentSketcher, error) {
	cr, err := csvio.NewReader(r)
	if err != nil {
		return nil, nil, err
	}
	names := cr.AssignmentNames()
	sketchers := make([]*coordsample.AssignmentSketcher, len(names))
	for b := range sketchers {
		sketchers[b] = coordsample.NewAssignmentSketcher(cfg, b)
	}
	for {
		row, err := cr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		for b, w := range row.Weights {
			if w > 0 {
				sketchers[b].Offer(row.Key, w)
			}
		}
	}
	return names, sketchers, nil
}

func parseR(s string, n int) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var R []int
	for _, part := range strings.Split(s, ",") {
		b, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || b < 0 || b >= n {
			return nil, fmt.Errorf("invalid assignment index %q", part)
		}
		R = append(R, b)
	}
	return R, nil
}

func report(name string, v float64) {
	fmt.Printf("%s ≈ %.6g\n", name, v)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cws-sketch: %v\n", err)
	os.Exit(1)
}

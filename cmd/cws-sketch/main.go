// Command cws-sketch builds coordinated bottom-k sketches from CSV data,
// answers multiple-assignment aggregate queries, and — with -out — writes
// each assignment's sketch as a self-describing, fingerprinted sketch file
// that cws-merge in another process can verify, merge, and query.
//
// Input: a CSV with header "key,<a1>,<a2>,..." (as produced by cws-datagen),
// one weight column per assignment. Each column is sketched independently
// through the dispersed pipeline, so the results are identical to running
// one sketcher per site.
//
// Usage:
//
//	cws-sketch -in data.csv -k 1024 -query L1          # Σ |w1 − w2| over all keys
//	cws-sketch -in data.csv -k 1024 -query min -R 0,1,2
//	cws-sketch -in data.csv -k 1024 -query sum -b 0 -prefix "192.168."
//	cws-sketch -in data.csv -k 1024 -shards 8 -workers 4   # sharded concurrent ingestion
//	cws-sketch -in siteA.csv -k 1024 -out siteA -query none  # ship: siteA.0.cws, siteA.1.cws, ...
//	cws-merge -query L1 siteA.*.cws siteB.*.cws              # ...query the shipped files
//
// With -shards > 1 each assignment's stream is hash-partitioned across
// disjoint shards sketched by concurrent workers and merged; the resulting
// sketches (and therefore all query answers) are identical to the
// single-stream ones.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"coordsample"
	"coordsample/internal/cliquery"
	"coordsample/internal/csvio"
)

func main() {
	in := flag.String("in", "", "input CSV (default stdin)")
	k := flag.Int("k", 1024, "sketch size per assignment")
	seed := flag.Uint64("seed", 1, "hash seed shared by all assignments")
	query := flag.String("query", "L1", "query: "+cliquery.Queries+", or none")
	b := flag.Int("b", 0, "assignment index for -query sum")
	l := flag.Int("l", 1, "ℓ for -query lth (1 = largest)")
	rFlag := flag.String("R", "", "comma-separated assignment subset (default all)")
	prefix := flag.String("prefix", "", "restrict to keys with this prefix (subpopulation)")
	estimator := flag.String("estimator", "aw", "estimator family: "+coordsample.EstimatorNames)
	shards := flag.Int("shards", 1, "hash-partition each assignment's stream across this many shards (>1 enables concurrent ingestion)")
	workers := flag.Int("workers", 0, "ingestion workers per assignment (0 = GOMAXPROCS; only with -shards > 1)")
	out := flag.String("out", "", "write one sketch file per assignment: <out>.<b>.cws[.json]")
	format := flag.String("format", "binary", "sketch file format for -out: binary or json")
	flag.Parse()
	if *shards < 1 {
		fatal(fmt.Errorf("-shards must be ≥ 1, got %d", *shards))
	}
	codec, err := coordsample.ParseSketchCodec(*format)
	if err != nil {
		fatal(err)
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: *seed, K: *k}
	names, sketchers, err := sketchCSV(bufio.NewReader(r), cfg, *shards, *workers)
	if err != nil {
		fatal(err)
	}
	sketches := make([]*coordsample.BottomK, len(sketchers))
	for i, s := range sketchers {
		sketches[i] = s.Sketch()
	}

	if *out != "" {
		for i, s := range sketches {
			path := sketchFileName(*out, i, codec)
			if err := writeSketchFile(path, codec, cfg, i, s); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%s, assignment %d, %d entries)\n", path, names[i], i, s.Size())
		}
	}
	if *query == "none" {
		return
	}

	summary, err := coordsample.CombineDispersed(cfg, sketches)
	if err != nil {
		fatal(err)
	}
	R, err := cliquery.ParseR(*rFlag, len(names))
	if err != nil {
		fatal(err)
	}
	var pred coordsample.Pred
	if *prefix != "" {
		p := *prefix
		pred = func(key string) bool { return strings.HasPrefix(key, p) }
	}

	est, err := coordsample.ParseEstimator(*estimator)
	if err != nil {
		fatal(err)
	}
	label, v, stderr, err := cliquery.Answer(summary, *query, *b, R, *l, pred, est)
	if err != nil {
		fatal(err)
	}
	if *query == "sum" {
		label = "sum " + names[*b]
	}
	if math.IsNaN(stderr) {
		fmt.Printf("%s ≈ %.6g\n", label, v)
	} else {
		fmt.Printf("%s ≈ %.6g (± %.3g)\n", label, v, stderr)
	}
}

// sketchFileName names assignment b's sketch file under the -out prefix.
func sketchFileName(prefix string, b int, c coordsample.SketchCodec) string {
	name := fmt.Sprintf("%s.%d.cws", prefix, b)
	if c == coordsample.CodecJSON {
		name += ".json"
	}
	return name
}

func writeSketchFile(path string, c coordsample.SketchCodec, cfg coordsample.Config, b int, s *coordsample.BottomK) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := coordsample.EncodeSketch(f, c, cfg, b, s); err != nil {
		f.Close()
		return fmt.Errorf("encoding %s: %w", path, err)
	}
	return f.Close()
}

// ingestor is the common stream interface of the single-stream and sharded
// sketchers; both freeze to the bit-identical bottom-k sketch.
type ingestor interface {
	Offer(key string, weight float64)
	Sketch() *coordsample.BottomK
}

func sketchCSV(r io.Reader, cfg coordsample.Config, shards, workers int) ([]string, []ingestor, error) {
	cr, err := csvio.NewReader(r)
	if err != nil {
		return nil, nil, err
	}
	names := cr.AssignmentNames()
	sketchers := make([]ingestor, len(names))
	for b := range sketchers {
		if shards > 1 {
			sketchers[b] = coordsample.NewShardedSketcher(cfg, b, shards, workers)
		} else {
			sketchers[b] = coordsample.NewAssignmentSketcher(cfg, b)
		}
	}
	for {
		row, err := cr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		for b, w := range row.Weights {
			if w > 0 {
				sketchers[b].Offer(row.Key, w)
			}
		}
	}
	return names, sketchers, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cws-sketch: %v\n", err)
	os.Exit(1)
}

// Command cws-sketch builds coordinated bottom-k sketches from CSV data and
// answers multiple-assignment aggregate queries — the dispersed pipeline as
// a shell tool.
//
// Input: a CSV with header "key,<a1>,<a2>,..." (as produced by cws-datagen),
// one weight column per assignment. Each column is sketched independently
// through the dispersed pipeline, so the results are identical to running
// one sketcher per site.
//
// Usage:
//
//	cws-sketch -in data.csv -k 1024 -query L1          # Σ |w1 − w2| over all keys
//	cws-sketch -in data.csv -k 1024 -query min -R 0,1,2
//	cws-sketch -in data.csv -k 1024 -query sum -b 0 -prefix "192.168."
//	cws-sketch -in data.csv -k 1024 -shards 8 -workers 4   # sharded concurrent ingestion
//
// With -shards > 1 each assignment's stream is hash-partitioned across
// disjoint shards sketched by concurrent workers and merged; the resulting
// sketches (and therefore all query answers) are identical to the
// single-stream ones.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"coordsample"
	"coordsample/internal/csvio"
)

func main() {
	in := flag.String("in", "", "input CSV (default stdin)")
	k := flag.Int("k", 1024, "sketch size per assignment")
	seed := flag.Uint64("seed", 1, "hash seed shared by all assignments")
	query := flag.String("query", "L1", "query: sum, min, max, L1, jaccard")
	b := flag.Int("b", 0, "assignment index for -query sum")
	rFlag := flag.String("R", "", "comma-separated assignment subset (default all)")
	prefix := flag.String("prefix", "", "restrict to keys with this prefix (subpopulation)")
	shards := flag.Int("shards", 1, "hash-partition each assignment's stream across this many shards (>1 enables concurrent ingestion)")
	workers := flag.Int("workers", 0, "ingestion workers per assignment (0 = GOMAXPROCS; only with -shards > 1)")
	flag.Parse()
	if *shards < 1 {
		fatal(fmt.Errorf("-shards must be ≥ 1, got %d", *shards))
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: *seed, K: *k}
	names, sketchers, err := sketchCSV(bufio.NewReader(r), cfg, *shards, *workers)
	if err != nil {
		fatal(err)
	}
	sketches := make([]*coordsample.BottomK, len(sketchers))
	for i, s := range sketchers {
		sketches[i] = s.Sketch()
	}
	summary := coordsample.CombineDispersed(cfg, sketches)

	R, err := parseR(*rFlag, len(names))
	if err != nil {
		fatal(err)
	}
	var pred coordsample.Pred
	if *prefix != "" {
		p := *prefix
		pred = func(key string) bool { return strings.HasPrefix(key, p) }
	}

	switch *query {
	case "sum":
		report("sum "+names[*b], summary.Single(*b).Estimate(pred))
	case "min":
		report("min-dominance", summary.MinLSet(R).Estimate(pred))
	case "max":
		report("max-dominance", summary.Max(R).Estimate(pred))
	case "L1":
		report("L1 difference", summary.RangeLSet(R).Estimate(pred))
	case "jaccard":
		mx := summary.Max(R).Estimate(pred)
		mn := summary.MinLSet(R).Estimate(pred)
		if mx == 0 {
			report("weighted Jaccard", 1)
		} else {
			report("weighted Jaccard", mn/mx)
		}
	default:
		fatal(fmt.Errorf("unknown query %q", *query))
	}
}

// ingestor is the common stream interface of the single-stream and sharded
// sketchers; both freeze to the bit-identical bottom-k sketch.
type ingestor interface {
	Offer(key string, weight float64)
	Sketch() *coordsample.BottomK
}

func sketchCSV(r io.Reader, cfg coordsample.Config, shards, workers int) ([]string, []ingestor, error) {
	cr, err := csvio.NewReader(r)
	if err != nil {
		return nil, nil, err
	}
	names := cr.AssignmentNames()
	sketchers := make([]ingestor, len(names))
	for b := range sketchers {
		if shards > 1 {
			sketchers[b] = coordsample.NewShardedSketcher(cfg, b, shards, workers)
		} else {
			sketchers[b] = coordsample.NewAssignmentSketcher(cfg, b)
		}
	}
	for {
		row, err := cr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		for b, w := range row.Weights {
			if w > 0 {
				sketchers[b].Offer(row.Key, w)
			}
		}
	}
	return names, sketchers, nil
}

func parseR(s string, n int) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var R []int
	for _, part := range strings.Split(s, ",") {
		b, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || b < 0 || b >= n {
			return nil, fmt.Errorf("invalid assignment index %q", part)
		}
		R = append(R, b)
	}
	return R, nil
}

func report(name string, v float64) {
	fmt.Printf("%s ≈ %.6g\n", name, v)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cws-sketch: %v\n", err)
	os.Exit(1)
}

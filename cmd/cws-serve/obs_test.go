package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"coordsample"
	"coordsample/internal/shard"
)

// scrapeMetrics fetches a process's /metrics and returns the exposition
// body, asserting the Prometheus text Content-Type on the way.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("GET /metrics: Content-Type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestObservabilityClusterTraceAndMetrics is the observability acceptance
// criterion end to end over real processes: on a 3-peer cluster with an
// injected peer.fetch latency fault, GET /cluster/query?trace=1 returns a
// per-peer, per-stage timing breakdown in which the injected delay is
// visible, and the same fault shows up in the /metrics fault-point
// counters next to the per-peer RPC histograms.
func TestObservabilityClusterTraceAndMetrics(t *testing.T) {
	serveBin, _ := buildBinaries(t)
	chunks := e2eStream(600, 1, 47)
	ports := freePorts(t, 3)
	var addrs []string
	for _, p := range ports {
		addrs = append(addrs, fmt.Sprintf("127.0.0.1:%d", p))
	}
	peerList := strings.Join(addrs, ",")

	procs := make([]*serveProc, 3)
	for i := range procs {
		args := []string{
			"-assignments", "2", "-k", "128", "-seed", "5",
			"-addr", addrs[i], "-peers", peerList, "-self", fmt.Sprint(i),
		}
		if i == 0 {
			// The router under test: its first sketch fetch of the scatter
			// is delayed 100ms — long enough to dominate every honest span.
			args = append(args, "-faults", "peer.fetch:latency=100ms,on=1")
		}
		procs[i] = startServe(t, serveBin, args...)
	}

	// Routed ingest and a cluster-wide freeze.
	batches := make([][]coordsample.ServerOffer, 3)
	for _, o := range chunks[0] {
		i := shard.ShardOf(o.Key, 3)
		batches[i] = append(batches[i], o)
	}
	for i, b := range batches {
		procs[i].post(t, "/offer", map[string]any{"offers": b})
	}
	if code, fz := getPost(t, procs[0].base+"/cluster/freeze"); code != http.StatusOK || fz["published"] != true {
		t.Fatalf("cluster freeze: status %d, body %v", code, fz)
	}

	// One traced scatter-gather query through peer 0's router.
	code, q := getStatusJSON(t, procs[0].base+"/cluster/query?agg=L1&trace=1")
	if code != http.StatusOK || q["degraded"] != false {
		t.Fatalf("traced cluster query: status %d, body %v", code, q)
	}
	tr, ok := q["trace"].(map[string]any)
	if !ok {
		t.Fatalf("?trace=1 response carries no trace: %v", q)
	}
	if op := tr["op"].(string); !strings.Contains(op, "cluster-query agg=L1") {
		t.Errorf("trace op = %q", op)
	}
	stages := map[string]bool{}
	maxFetchUs := 0.0
	fetchSpans := 0
	for _, s := range tr["spans"].([]any) {
		sp := s.(map[string]any)
		name := sp["name"].(string)
		stages[name] = true
		if strings.HasSuffix(name, " fetch") {
			fetchSpans++
			if d := sp["dur_us"].(float64); d > maxFetchUs {
				maxFetchUs = d
			}
		}
	}
	for _, want := range []string{"parse", "scatter", "merge", "summarize", "estimate"} {
		if !stages[want] {
			t.Errorf("trace missing stage %q (got %v)", want, stages)
		}
	}
	for _, addr := range addrs {
		if !stages["peer "+addr+" fetch"] {
			t.Errorf("trace missing per-peer span for %s (got %v)", addr, stages)
		}
	}
	if fetchSpans != 3 {
		t.Errorf("trace has %d peer fetch spans, want 3", fetchSpans)
	}
	// The injected 100ms delay must be visible in the trace itself.
	if maxFetchUs < 100_000 {
		t.Errorf("slowest peer fetch span is %.0fµs; the injected 100ms fault is not visible in the trace", maxFetchUs)
	}

	// ... and in the metrics: the fault point's hit/fire counters (one
	// scatter = 3 hits, on=1 fired once) next to the per-peer RPC series.
	body := scrapeMetrics(t, procs[0].base)
	for _, want := range []string{
		`cws_fault_hits_total{point="peer.fetch"} 3`,
		`cws_fault_fires_total{point="peer.fetch"} 1`,
		fmt.Sprintf(`cws_peer_rpc_attempts_total{peer=%q} 1`, addrs[0]),
		fmt.Sprintf(`cws_peer_rpc_seconds_count{peer=%q} 1`, addrs[1]),
		fmt.Sprintf(`cws_peer_state{peer=%q} 0`, addrs[2]),
		"cws_offers_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The trace also landed in the shared /debug/traces ring.
	code, ring := getStatusJSON(t, procs[0].base+"/debug/traces")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/traces: status %d", code)
	}
	found := false
	for _, rt := range ring["traces"].([]any) {
		if strings.Contains(rt.(map[string]any)["op"].(string), "cluster-query") {
			found = true
		}
	}
	if !found {
		t.Errorf("/debug/traces holds no cluster-query trace: %v", ring["traces"])
	}
}

// TestChaosFaultsVisibleInMetrics: an injected store fault is observable in
// /metrics, not just by its end effect — the failed freeze's error counter
// and the fault point's own hit/fire counters all advance.
func TestChaosFaultsVisibleInMetrics(t *testing.T) {
	serveBin, _ := buildBinaries(t)
	p := startServe(t, serveBin,
		"-assignments", "1", "-k", "64", "-seed", "3", "-data-dir", t.TempDir(),
		"-faults", "store.segment-write:err,on=1")
	p.post(t, "/offer", map[string]any{"offers": []coordsample.ServerOffer{{Assignment: 0, Key: "a", Weight: 1}}})
	if code, _ := getPost(t, p.base+"/freeze"); code != http.StatusInternalServerError {
		t.Fatalf("freeze over injected fault: status %d, want 500", code)
	}
	body := scrapeMetrics(t, p.base)
	for _, want := range []string{
		`cws_fault_hits_total{point="store.segment-write"} 1`,
		`cws_fault_fires_total{point="store.segment-write"} 1`,
		"cws_freeze_errors_total 1",
		"cws_store_persist_errors_total 1",
		"cws_store_persists_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q after injected store fault", want)
		}
	}
}

// TestPprofGatedOff: the profiling endpoints exist only behind -pprof.
func TestPprofGatedOff(t *testing.T) {
	serveBin, _ := buildBinaries(t)
	status := func(p *serveProc) int {
		resp, err := http.Get(p.base + "/debug/pprof/")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	off := startServe(t, serveBin, "-assignments", "1", "-k", "64", "-seed", "3")
	if got := status(off); got != http.StatusNotFound {
		t.Errorf("/debug/pprof/ without -pprof: status %d, want 404", got)
	}
	on := startServe(t, serveBin, "-assignments", "1", "-k", "64", "-seed", "3", "-pprof")
	if got := status(on); got != http.StatusOK {
		t.Errorf("/debug/pprof/ with -pprof: status %d, want 200", got)
	}
}

// TestLogFormatJSON: -log-format=json emits structured JSON records with
// the component tag, and a bad level is rejected at startup.
func TestLogFormatJSON(t *testing.T) {
	serveBin, _ := buildBinaries(t)
	p := startServe(t, serveBin, "-assignments", "1", "-k", "64", "-seed", "3", "-log-format", "json")
	line := ""
	for _, l := range strings.Split(p.logs.String(), "\n") {
		if strings.Contains(l, "listening on") {
			line = l
		}
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("listening line is not JSON: %q: %v", line, err)
	}
	if rec["level"] != "INFO" {
		t.Errorf("JSON record level = %v", rec["level"])
	}
}

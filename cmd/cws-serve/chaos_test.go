package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"coordsample"
	"coordsample/internal/cliquery"
	"coordsample/internal/shard"
)

// freePorts reserves n distinct ephemeral ports and releases them for the
// child processes to bind. Cluster members need to know each other's
// addresses before any of them has started, so ":0" cannot be used.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	for i := range ports {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ports[i] = ln.Addr().(*net.TCPAddr).Port
		defer ln.Close()
	}
	return ports
}

// getStatusJSON fetches a URL and returns the status code and JSON body.
func getStatusJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
	return resp.StatusCode, out
}

// ownedBy filters a chunk sequence down to the offers the given peers own
// under the 3-way cluster partition.
func ownedBy(chunks [][]coordsample.ServerOffer, peers ...int) [][]coordsample.ServerOffer {
	owned := make(map[int]bool)
	for _, p := range peers {
		owned[p] = true
	}
	out := make([][]coordsample.ServerOffer, len(chunks))
	for e, chunk := range chunks {
		for _, o := range chunk {
			if owned[shard.ShardOf(o.Key, 3)] {
				out[e] = append(out[e], o)
			}
		}
	}
	return out
}

// TestChaosClusterSIGKILLMidFreeze is the cluster acceptance criterion
// over real OS processes: a 3-member cluster ingests a partitioned stream,
// freezes cluster-wide, and then one member is SIGKILLed in the middle of
// the next two-phase freeze (a fault point stalls its freeze inside the
// detached-but-unpublished window, so the kill lands mid-epoch-turn). The
// oracle:
//
//   - the interrupted cluster freeze publishes a degraded report naming
//     the dead peer (502), with the survivors' epochs acknowledged;
//   - scatter-gather queries keep answering from the survivors with
//     degraded=true and coverage 2/3, bit-identical to the offline
//     pipeline over exactly the survivors' acknowledged keys;
//   - the dead member restarts having lost ONLY its unacknowledged epoch:
//     its acknowledged epoch answers bit-identically to the offline
//     pipeline, and after re-ingesting the lost chunk and one more
//     cluster freeze the cluster is whole again — non-degraded and
//     bit-identical to a single pipeline over the entire stream.
func TestChaosClusterSIGKILLMidFreeze(t *testing.T) {
	serveBin, _ := buildBinaries(t)
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 5, K: 128}
	chunks := e2eStream(1800, 2, 31)
	ports := freePorts(t, 3)
	var addrs []string
	for _, p := range ports {
		addrs = append(addrs, fmt.Sprintf("127.0.0.1:%d", p))
	}
	peerList := strings.Join(addrs, ",")

	procs := make([]*serveProc, 3)
	dirs := make([]string, 3)
	for i := range procs {
		dirs[i] = t.TempDir()
		args := []string{
			"-assignments", "2", "-k", "128", "-seed", "5", "-retain", "8",
			"-data-dir", dirs[i],
			"-addr", addrs[i], "-peers", peerList, "-self", fmt.Sprint(i),
		}
		if i == 2 {
			// The chaos window: peer 2's SECOND freeze stalls for 2s after
			// the epoch is detached and before it is persisted or
			// published — the SIGKILL below lands inside it.
			args = append(args, "-faults", "server.freeze:latency=2s,on=2")
		}
		procs[i] = startServe(t, serveBin, args...)
	}

	// Ingest chunk 1, routed to each key's owner (as cluster clients must).
	ingest := func(chunk []coordsample.ServerOffer) {
		batches := make([][]coordsample.ServerOffer, 3)
		for _, o := range chunk {
			i := shard.ShardOf(o.Key, 3)
			batches[i] = append(batches[i], o)
		}
		for i, b := range batches {
			if len(b) > 0 {
				procs[i].post(t, "/offer", map[string]any{"offers": b})
			}
		}
	}
	ingest(chunks[0])

	// A misrouted offer must be rejected, not silently absorbed: find a
	// key peer 2 does not own and post it there directly.
	misrouted := ""
	for i := 0; misrouted == ""; i++ {
		if key := fmt.Sprintf("misrouted-%d", i); shard.ShardOf(key, 3) != 2 {
			misrouted = key
		}
	}
	body, _ := json.Marshal(map[string]any{"offers": []coordsample.ServerOffer{{Assignment: 0, Key: misrouted, Weight: 1}}})
	resp, err := http.Post(procs[2].base+"/offer", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("misrouted offer got status %d, want 400", resp.StatusCode)
	}

	// Cluster freeze 1: all three acknowledge epoch 1, and the merged
	// answer is bit-identical to the offline pipeline over the whole chunk.
	code, fz := getPost(t, procs[0].base+"/cluster/freeze")
	if code != http.StatusOK || fz["published"] != true {
		t.Fatalf("cluster freeze 1: status %d, body %v", code, fz)
	}
	offAll1 := offline(t, cfg, chunks[:1])
	_, want, _, err := cliquery.Answer(offAll1, "sum", 0, nil, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	code, q := getStatusJSON(t, procs[0].base+"/cluster/query?agg=sum&b=0")
	if code != http.StatusOK || q["degraded"] != false {
		t.Fatalf("cluster query at full strength: status %d, body %v", code, q)
	}
	if got := q["estimate"].(float64); got != want {
		t.Fatalf("cluster sum %v != offline %v (exact merge broken)", got, want)
	}

	// Ingest chunk 2, then SIGKILL peer 2 inside its stalled freeze.
	ingest(chunks[1])
	freezeCh := make(chan map[string]any, 1)
	codeCh := make(chan int, 1)
	go func() {
		code, body := getPost(t, procs[0].base+"/cluster/freeze")
		codeCh <- code
		freezeCh <- body
	}()
	time.Sleep(500 * time.Millisecond) // phase 1 is in flight; peer 2 is sleeping mid-freeze
	if err := procs[2].cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	if clean := procs[2].wait(t); clean {
		t.Fatal("SIGKILL produced a clean exit?")
	}
	code, fz = <-codeCh, <-freezeCh
	if code != http.StatusBadGateway || fz["published"] != false || fz["degraded"] != true {
		t.Fatalf("mid-freeze kill: status %d, body %v, want a degraded 502", code, fz)
	}
	failed, _ := fz["failed"].([]any)
	if len(failed) != 1 || failed[0] != addrs[2] {
		t.Fatalf("freeze failure blamed %v, want [%s]", failed, addrs[2])
	}
	if epochs := fz["epochs"].(map[string]any); len(epochs) != 2 {
		t.Fatalf("survivors' epochs %v, want 2 entries", epochs)
	}

	// Graceful degradation: survivors answer with degraded=true, coverage
	// 2/3, and the estimate is the EXACT answer over the surviving
	// partitions' acknowledged keys (epochs 1+2 of peers 0 and 1).
	offSurv := offline(t, cfg, ownedBy(chunks, 0, 1))
	_, wantSurv, _, err := cliquery.Answer(offSurv, "sum", 0, nil, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	code, q = getStatusJSON(t, procs[0].base+"/cluster/query?agg=sum&b=0")
	if code != http.StatusOK {
		t.Fatalf("degraded query status %d (graceful degradation must keep answering): %v", code, q)
	}
	if q["degraded"] != true {
		t.Fatalf("dead peer not reported degraded: %v", q)
	}
	if cov := q["coverage"].(float64); math.Abs(cov-2.0/3.0) > 1e-12 {
		t.Fatalf("coverage %v, want 2/3", cov)
	}
	if got := q["estimate"].(float64); got != wantSurv {
		t.Fatalf("degraded sum %v != survivors-only offline %v (must be the exact subpopulation answer)", got, wantSurv)
	}

	// The dead member lost ONLY its unacknowledged epoch: a restart
	// recovers epoch 1 and answers bit-identically to the offline pipeline
	// over exactly its acknowledged keys.
	procs[2] = startServe(t, serveBin,
		"-assignments", "2", "-k", "128", "-seed", "5", "-retain", "8",
		"-data-dir", dirs[2], "-addr", addrs[2], "-peers", peerList, "-self", "2")
	if !strings.Contains(procs[2].logs.String(), "recovered 1 epoch(s)") {
		t.Fatalf("restarted peer did not recover its acknowledged epoch; logs:\n%s", procs[2].logs)
	}
	offP2 := offline(t, cfg, ownedBy(chunks[:1], 2))
	_, wantP2, _, err := cliquery.Answer(offP2, "sum", 0, nil, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := procs[2].query(t, "agg=sum&b=0"); got != wantP2 {
		t.Fatalf("recovered peer sum %v != offline over its acknowledged keys %v (must be bit-identical)", got, wantP2)
	}

	// Heal: re-ingest the chunk the kill destroyed (it was never
	// acknowledged anywhere), freeze cluster-wide, and the cluster is
	// whole — non-degraded, bit-identical to one pipeline over everything.
	batches := ownedBy(chunks[1:], 2)
	procs[2].post(t, "/offer", map[string]any{"offers": batches[0]})
	code, fz = getPost(t, procs[0].base+"/cluster/freeze")
	if code != http.StatusOK || fz["published"] != true {
		t.Fatalf("healing freeze: status %d, body %v", code, fz)
	}
	offAll := offline(t, cfg, chunks)
	for _, params := range []string{"agg=sum&b=0", "agg=L1", "agg=max", "agg=jaccard"} {
		agg, b := params[4:], 0
		if i := strings.Index(agg, "&"); i >= 0 {
			agg = agg[:i]
			b = 0
		}
		_, want, _, err := cliquery.Answer(offAll, agg, b, nil, 1, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		code, q := getStatusJSON(t, procs[0].base+"/cluster/query?"+params)
		if code != http.StatusOK || q["degraded"] != false {
			t.Fatalf("healed query %q: status %d, body %v", params, code, q)
		}
		if got := q["estimate"].(float64); got != want {
			t.Errorf("healed cluster %q = %v, offline = %v (must be bit-identical)", params, got, want)
		}
	}
}

// getPost POSTs with no body and returns the status and JSON body (unlike
// serveProc.post it does not fail on non-200 — chaos tests assert on 502s).
func getPost(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: decoding: %v", url, err)
	}
	return resp.StatusCode, out
}

// TestServeFaultFlagInjectsStoreFaults: the -faults flag reaches the store
// layer end to end — an injected segment-write error fails the freeze
// (500, the epoch is not acknowledged), and the process logs the active
// fault points loudly so it can never masquerade as a healthy node.
func TestServeFaultFlagInjectsStoreFaults(t *testing.T) {
	serveBin, _ := buildBinaries(t)
	p := startServe(t, serveBin,
		"-assignments", "1", "-k", "64", "-seed", "3", "-data-dir", t.TempDir(),
		"-faults", "store.segment-write:err,on=1")
	if !strings.Contains(p.logs.String(), "FAULT INJECTION ACTIVE") {
		t.Fatalf("fault injection not announced; logs:\n%s", p.logs)
	}
	p.post(t, "/offer", map[string]any{"offers": []coordsample.ServerOffer{{Assignment: 0, Key: "a", Weight: 1}}})
	code, body := getPost(t, p.base+"/freeze")
	if code != http.StatusInternalServerError {
		t.Fatalf("freeze over injected segment-write error: status %d, body %v, want 500", code, body)
	}
	if !strings.Contains(body["error"].(string), "injected failure") {
		t.Fatalf("freeze error %q does not surface the injected fault", body["error"])
	}
	// The failed freeze discarded the unacknowledged epoch (by contract);
	// re-offered data persists fine now the on=1 fault is spent.
	p.post(t, "/offer", map[string]any{"offers": []coordsample.ServerOffer{{Assignment: 0, Key: "a", Weight: 1}}})
	code, body = getPost(t, p.base+"/freeze")
	if code != http.StatusOK || body["epoch"].(float64) != 1 {
		t.Fatalf("freeze after fault spent: status %d, body %v", code, body)
	}
	if got := p.query(t, "agg=sum&b=0"); got != 1 {
		t.Fatalf("sum after recovery freeze = %v, want 1", got)
	}
}

package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"coordsample"
	"coordsample/internal/cliquery"
)

// buildBinaries compiles cws-serve and cws-merge once per test run.
func buildBinaries(t *testing.T) (serveBin, mergeBin string) {
	t.Helper()
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	serveBin = filepath.Join(dir, "cws-serve")
	mergeBin = filepath.Join(dir, "cws-merge")
	for bin, pkg := range map[string]string{serveBin: "coordsample/cmd/cws-serve", mergeBin: "coordsample/cmd/cws-merge"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}
	return serveBin, mergeBin
}

// serveProc is one running cws-serve child process.
type serveProc struct {
	cmd  *exec.Cmd
	base string // http://host:port
	logs *bytes.Buffer
}

// startServe launches cws-serve on an ephemeral port and waits until it
// reports its listen address.
func startServe(t *testing.T, bin string, args ...string) *serveProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serveProc{cmd: cmd, logs: &bytes.Buffer{}}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			p.logs.WriteString(line + "\n")
			if i := strings.Index(line, "listening on "); i >= 0 {
				addr := strings.Fields(line[i+len("listening on "):])[0]
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		p.base = "http://" + addr
	case <-time.After(20 * time.Second):
		t.Fatalf("cws-serve did not report a listen address; logs:\n%s", p.logs)
	}
	return p
}

// wait blocks until the process exits and returns whether it exited
// cleanly (status 0).
func (p *serveProc) wait(t *testing.T) bool {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		return err == nil
	case <-time.After(20 * time.Second):
		t.Fatalf("cws-serve did not exit; logs:\n%s", p.logs)
		return false
	}
}

func (p *serveProc) post(t *testing.T, path string, body any) map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(p.base+path, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d: %v", path, resp.StatusCode, out)
	}
	return out
}

func (p *serveProc) query(t *testing.T, params string) float64 {
	t.Helper()
	resp, err := http.Get(p.base + "/query?" + params)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /query?%s: status %d: %v", params, resp.StatusCode, out)
	}
	return out["estimate"].(float64)
}

// saveSketch downloads one exported sketch file.
func (p *serveProc) saveSketch(t *testing.T, params, path string) {
	t.Helper()
	resp, err := http.Get(p.base + "/sketch?" + params)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET /sketch?%s: status %d: %s", params, resp.StatusCode, body)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := io.Copy(f, resp.Body); err != nil {
		t.Fatal(err)
	}
}

// e2eStream is a deterministic two-assignment stream cut into epochs with
// disjoint keys per epoch chunk.
func e2eStream(n, epochs int, seed int64) [][]coordsample.ServerOffer {
	rng := rand.New(rand.NewSource(seed))
	chunks := make([][]coordsample.ServerOffer, epochs)
	for i := 0; i < n; i++ {
		e := i * epochs / n
		key := fmt.Sprintf("host-%05d", i)
		base := math.Exp(rng.NormFloat64() * 2)
		if rng.Float64() < 0.9 {
			chunks[e] = append(chunks[e], coordsample.ServerOffer{Assignment: 0, Key: key, Weight: base * (0.5 + rng.Float64())})
		}
		if rng.Float64() < 0.9 {
			chunks[e] = append(chunks[e], coordsample.ServerOffer{Assignment: 1, Key: key, Weight: base * (0.5 + rng.Float64())})
		}
	}
	return chunks
}

// offline runs the in-process dispersed pipeline over the given chunks.
func offline(t *testing.T, cfg coordsample.Config, chunks [][]coordsample.ServerOffer) *coordsample.Dispersed {
	t.Helper()
	sketchers := []*coordsample.AssignmentSketcher{
		coordsample.NewAssignmentSketcher(cfg, 0),
		coordsample.NewAssignmentSketcher(cfg, 1),
	}
	for _, chunk := range chunks {
		for _, o := range chunk {
			sketchers[o.Assignment].Offer(o.Key, o.Weight)
		}
	}
	d, err := coordsample.CombineDispersed(cfg,
		[]*coordsample.BottomK{sketchers[0].Sketch(), sketchers[1].Sketch()})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestSIGKILLRecoveryBitIdentical is the restart acceptance criterion over
// real OS processes: freeze epochs into a -data-dir, SIGKILL the server,
// restart on the same directory, and every answer — cumulative and
// per-epoch-window — is bit-identical to the pre-kill server and to the
// offline pipeline; epoch-range answers additionally match cws-merge run
// offline over the same epochs' exported per-epoch sketch files.
func TestSIGKILLRecoveryBitIdentical(t *testing.T) {
	serveBin, mergeBin := buildBinaries(t)
	dataDir := t.TempDir()
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 1, K: 256}
	const epochs = 4
	chunks := e2eStream(3000, epochs, 17)

	args := []string{"-assignments", "2", "-k", "256", "-seed", "1", "-data-dir", dataDir, "-retain", "8"}
	p1 := startServe(t, serveBin, args...)
	for _, chunk := range chunks {
		p1.post(t, "/offer", map[string]any{"offers": chunk})
		p1.post(t, "/freeze", nil)
	}

	queries := []string{
		"agg=L1", "agg=max", "agg=min", "agg=jaccard", "agg=sum&b=0", "agg=sum&b=1&prefix=host-0",
		"agg=L1&epochs=2..4", "agg=L1&epochs=2..3", "agg=sum&b=0&epochs=3", "agg=jaccard&epochs=1..2",
	}
	preKill := make(map[string]float64)
	for _, q := range queries {
		preKill[q] = p1.query(t, q)
	}
	// Export the window's per-epoch sketch files for the offline cws-merge
	// cross-check before killing the server.
	exportDir := t.TempDir()
	var windowFiles []string
	for e := 2; e <= 3; e++ {
		for b := 0; b < 2; b++ {
			path := filepath.Join(exportDir, fmt.Sprintf("epoch%d.%d.cws", e, b))
			p1.saveSketch(t, fmt.Sprintf("b=%d&epochs=%d", b, e), path)
			windowFiles = append(windowFiles, path)
		}
	}

	if err := p1.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	if clean := p1.wait(t); clean {
		t.Fatal("SIGKILL produced a clean exit?")
	}

	p2 := startServe(t, serveBin, args...)
	if !strings.Contains(p2.logs.String(), "recovered 4 epoch(s)") {
		t.Fatalf("restart did not report recovery; logs:\n%s", p2.logs)
	}
	for _, q := range queries {
		if got := p2.query(t, q); got != preKill[q] {
			t.Errorf("/query?%s after SIGKILL restart = %v, pre-kill %v (must be bit-identical)", q, got, preKill[q])
		}
	}

	// Offline pipeline agreement (cumulative and the 2..3 window).
	offAll := offline(t, cfg, chunks)
	if _, want, _, err := cliquery.Answer(offAll, "L1", 0, nil, 1, nil, nil); err != nil || p2.query(t, "agg=L1") != want {
		t.Errorf("recovered cumulative L1 != offline pipeline (%v)", err)
	}
	offWin := offline(t, cfg, chunks[1:3])
	_, wantWin, _, err := cliquery.Answer(offWin, "L1", 0, nil, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.query(t, "agg=L1&epochs=2..3"); got != wantWin {
		t.Errorf("recovered epochs=2..3 L1 = %v, offline = %v", got, wantWin)
	}

	// cws-merge over the exported per-epoch files: the files are disjoint
	// shard-mergeable sketches of the same assignments, so the distributed
	// combiner must reproduce the window answer bit-identically.
	out, err := exec.Command(mergeBin, append([]string{"-query", "L1"}, windowFiles...)...).CombinedOutput()
	if err != nil {
		t.Fatalf("cws-merge over exported epoch files: %v\n%s", err, out)
	}
	if want := fmt.Sprintf("= %v ", wantWin); !strings.Contains(string(out), want) {
		t.Errorf("cws-merge window answer %q does not contain bit-identical %q", out, want)
	}

	// The recovered server keeps ingesting: disjoint keys, one more epoch.
	p2.post(t, "/offer", map[string]any{"offers": []coordsample.ServerOffer{{Assignment: 0, Key: "post-restart", Weight: 1}}})
	res := p2.post(t, "/freeze", nil)
	if res["epoch"].(float64) != epochs+1 {
		t.Errorf("post-recovery freeze epoch = %v, want %d", res["epoch"], epochs+1)
	}
}

// healthEpoch reads the current epoch from /healthz.
func (p *serveProc) healthEpoch(t *testing.T) int {
	t.Helper()
	resp, err := http.Get(p.base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	e, ok := out["epoch"].(float64)
	if !ok {
		t.Fatalf("/healthz has no numeric epoch: %v", out)
	}
	return int(e)
}

// TestSIGKILLDuringParallelDurableFreeze is the fault test for the
// parallel freeze/persist path: SIGKILL lands while a durable freeze —
// per-assignment freezes fanned across a worker pool, segment encoded
// concurrently — is in flight over lanes-ingested data. The store's
// acknowledgement point (the manifest append) is unchanged by the
// parallelism, so a restart recovers either n epochs (the kill beat the
// acknowledgement) or n+1 (it did not) — never a torn epoch — and every
// recovered epoch answers bit-identically to the offline pipeline over
// exactly the chunks it covers.
func TestSIGKILLDuringParallelDurableFreeze(t *testing.T) {
	serveBin, _ := buildBinaries(t)
	dataDir := t.TempDir()
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 7, K: 128}
	const settled = 3 // epochs frozen and acknowledged before the racing freeze
	chunks := e2eStream(2400, settled+1, 23)

	args := []string{"-assignments", "2", "-k", "128", "-seed", "7",
		"-data-dir", dataDir, "-retain", "8", "-shards", "7", "-workers", "2", "-lanes", "2"}
	p1 := startServe(t, serveBin, args...)
	for e := 0; e < settled; e++ {
		p1.post(t, "/offer", map[string]any{"offers": chunks[e]})
		p1.post(t, "/freeze", nil)
	}
	p1.post(t, "/offer", map[string]any{"offers": chunks[settled]})

	// Fire the freeze and SIGKILL while it is (likely) still freezing,
	// merging, and persisting. Both outcomes of the race are legal; the
	// invariant under test is that neither produces a torn epoch.
	freezeDone := make(chan struct{})
	go func() {
		defer close(freezeDone)
		resp, err := http.Post(p1.base+"/freeze", "application/json", nil)
		if err == nil {
			resp.Body.Close() // the connection usually dies with the process
		}
	}()
	if err := p1.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	if clean := p1.wait(t); clean {
		t.Fatal("SIGKILL produced a clean exit?")
	}
	<-freezeDone

	p2 := startServe(t, serveBin, args...)
	recovered := p2.healthEpoch(t)
	if recovered != settled && recovered != settled+1 {
		t.Fatalf("recovered %d epochs after mid-freeze SIGKILL, want %d or %d; logs:\n%s",
			recovered, settled, settled+1, p2.logs)
	}
	off := offline(t, cfg, chunks[:recovered])
	for _, q := range []struct {
		params string
		query  string
		b      int
	}{
		{"agg=L1", "L1", 0},
		{"agg=sum&b=0", "sum", 0},
		{"agg=sum&b=1", "sum", 1},
		{"agg=jaccard", "jaccard", 0},
	} {
		_, want, _, err := cliquery.Answer(off, q.query, q.b, nil, 1, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := p2.query(t, q.params); got != want {
			t.Errorf("recovered /query?%s = %v, offline over %d epochs = %v (must be bit-identical)",
				q.params, got, recovered, want)
		}
	}
	// The recovered server keeps going: one more epoch lands cleanly.
	p2.post(t, "/offer", map[string]any{"offers": []coordsample.ServerOffer{{Assignment: 0, Key: "after-kill", Weight: 1}}})
	if res := p2.post(t, "/freeze", nil); int(res["epoch"].(float64)) != recovered+1 {
		t.Errorf("post-recovery freeze epoch = %v, want %d", res["epoch"], recovered+1)
	}
}

// TestGracefulShutdownAutoFreezes is the SIGTERM regression test: offers
// ingested but never frozen must survive a graceful shutdown — the server
// auto-freezes the open epoch, flushes it to the store, and exits 0; a
// restart serves them.
func TestGracefulShutdownAutoFreezes(t *testing.T) {
	serveBin, _ := buildBinaries(t)
	dataDir := t.TempDir()
	args := []string{"-assignments", "1", "-k", "64", "-seed", "3", "-data-dir", dataDir, "-retain", "4"}

	p1 := startServe(t, serveBin, args...)
	p1.post(t, "/offer", map[string]any{"offers": []coordsample.ServerOffer{
		{Assignment: 0, Key: "a", Weight: 5},
		{Assignment: 0, Key: "b", Weight: 7},
	}})
	// No freeze: the data lives only in the open epoch.
	if err := p1.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if clean := p1.wait(t); !clean {
		t.Fatalf("SIGTERM exit was not clean; logs:\n%s", p1.logs)
	}
	if !strings.Contains(p1.logs.String(), "shut down cleanly at epoch 1") {
		t.Fatalf("shutdown did not freeze the open epoch; logs:\n%s", p1.logs)
	}

	p2 := startServe(t, serveBin, args...)
	if got := p2.query(t, "agg=sum&b=0"); got != 12 {
		t.Fatalf("restart after graceful shutdown: sum = %v, want 12 (auto-frozen offers lost)", got)
	}
	// The auto-frozen epoch is a normal epoch: range-queryable.
	if got := p2.query(t, "agg=sum&b=0&epochs=1..1"); got != 12 {
		t.Fatalf("epochs=1..1 sum = %v, want 12", got)
	}
}

// TestServeRefusesMismatchedDataDir: restarting over a -data-dir with a
// different seed must fail loudly instead of mixing incomparable samples.
func TestServeRefusesMismatchedDataDir(t *testing.T) {
	serveBin, _ := buildBinaries(t)
	dataDir := t.TempDir()
	p1 := startServe(t, serveBin, "-assignments", "1", "-k", "64", "-seed", "3", "-data-dir", dataDir)
	p1.post(t, "/offer", map[string]any{"offers": []coordsample.ServerOffer{{Assignment: 0, Key: "a", Weight: 1}}})
	p1.post(t, "/freeze", nil)
	p1.cmd.Process.Signal(syscall.SIGTERM)
	p1.wait(t)

	cmd := exec.Command(serveBin, "-addr", "127.0.0.1:0", "-assignments", "1", "-k", "64", "-seed", "4", "-data-dir", dataDir)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("mismatched seed over existing -data-dir accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "fingerprint") {
		t.Fatalf("mismatch error does not explain the fingerprint conflict: %s", out)
	}
}

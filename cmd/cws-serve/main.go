// Command cws-serve runs the online sketch server: a resident process that
// ingests weighted observations over HTTP and answers every
// multiple-assignment aggregate query of the library from frozen
// coordinated sketches — the dispersed pipeline as a service instead of a
// one-shot tool.
//
// Ingestion streams into the current epoch through sharded concurrent
// sketchers; POST /freeze merges the epoch into the cumulative sketches
// (exact, by the merge lemma) and atomically swaps the serving snapshot,
// so queries never block ingestion and never see a half-built sketch.
// Query answers are bit-identical to running the offline pipeline over the
// same offers, and GET /sketch exports fingerprinted wire-codec files that
// cws-merge accepts like any other site's.
//
// Usage:
//
//	cws-serve -assignments 2 -k 1024 -seed 1 -addr :7070
//
//	curl -X POST localhost:7070/offer -d '{"assignment":0,"key":"a","weight":2}'
//	curl -X POST localhost:7070/offer -d '{"offers":[{"assignment":1,"key":"a","weight":3}]}'
//	curl -X POST localhost:7070/freeze
//	curl 'localhost:7070/query?agg=L1'
//	curl 'localhost:7070/query?agg=sum&b=0&prefix=192.168.'
//	curl 'localhost:7070/sketch?b=0' > site.0.cws     # feed to cws-merge
//	curl localhost:7070/healthz
//	curl localhost:7070/debug/vars
//
// The sampling configuration (IPPS ranks, shared-seed coordination —
// matching cws-sketch) must agree with every other site whose sketches
// these are to be combined with: same -seed and -k.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"coordsample"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	assignments := flag.Int("assignments", 2, "number of weight assignments |W|")
	k := flag.Int("k", 1024, "sketch size per assignment")
	seed := flag.Uint64("seed", 1, "hash seed shared by all assignments (and all coordinating sites)")
	shards := flag.Int("shards", 4, "per-assignment ingestion shards")
	workers := flag.Int("workers", 0, "ingestion workers per assignment (0 = GOMAXPROCS)")
	flag.Parse()

	cfg := coordsample.ServerConfig{
		Sample:      coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: *seed, K: *k},
		Assignments: *assignments,
		Shards:      *shards,
		Workers:     *workers,
	}
	srv, err := coordsample.NewServer(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cws-serve: %v\n", err)
		os.Exit(2)
	}
	log.Printf("cws-serve: listening on %s (%d assignments, k=%d, seed=%d, %d shards/assignment)",
		*addr, *assignments, *k, *seed, *shards)
	httpSrv := &http.Server{Addr: *addr, Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	if err := httpSrv.ListenAndServe(); err != nil {
		log.Fatalf("cws-serve: %v", err)
	}
}

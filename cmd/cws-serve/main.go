// Command cws-serve runs the online sketch server: a resident process that
// ingests weighted observations over HTTP and answers every
// multiple-assignment aggregate query of the library from frozen
// coordinated sketches — the dispersed pipeline as a service instead of a
// one-shot tool.
//
// Ingestion streams into the current epoch through sharded concurrent
// sketchers behind -lanes concurrent ingest lanes (requests on distinct
// lanes offer in parallel); POST /freeze detaches the epoch, freezes and
// merges it into the cumulative sketches across a bounded worker pool
// (exact, by the merge lemma), and atomically swaps the serving snapshot,
// so queries never block ingestion and never see a half-built sketch.
// Query answers are bit-identical to running the offline pipeline over the
// same offers, and GET /sketch exports fingerprinted wire-codec files that
// cws-merge accepts like any other site's.
//
// With -data-dir the server is durable: every freeze persists the epoch
// through the epoch store before it is acknowledged, and a restart — clean
// or SIGKILL — recovers every acknowledged epoch bit-identically. The
// -retain most recent epochs stay individually queryable as time windows
// (GET /query?epochs=3..7 answers any aggregate over exactly epochs 3–7);
// older epochs are compacted into the cumulative segment so disk stays
// bounded. On SIGINT/SIGTERM the server drains in-flight requests
// (readiness flips false first, so load balancers stop routing), auto-
// freezes the open epoch (persisting it when durable), and exits cleanly —
// offers acknowledged before the signal survive the restart.
//
// # Cluster mode
//
// -peers turns the node into one member of a scatter-gather cluster. The
// comma-separated peer list (identical, same order, on every member — the
// order IS the keyspace partition) plus -self make the node own the keys
// the routing hash maps to its index; misrouted offers are rejected with
// 400 so the disjointness the exact merge rests on cannot be broken
// silently. Every member also mounts the router endpoints:
//
//	GET  /cluster/query   scatter-gather answer over all peers (exact
//	                      merge; degraded=true + coverage on partial
//	                      failure)
//	POST /cluster/freeze  two-phase cluster-wide epoch turn
//	GET  /cluster/health  per-peer up/degraded/down state
//
// Peer failures are handled with per-peer deadlines, bounded retries with
// exponential backoff and jitter, hedged second requests, and a background
// readiness prober that walks dead peers back in through probation.
//
// Usage:
//
//	cws-serve -assignments 2 -k 1024 -seed 1 -addr :7070 -data-dir /var/lib/cws -retain 8
//
//	curl -X POST localhost:7070/offer -d '{"assignment":0,"key":"a","weight":2}'
//	curl -X POST localhost:7070/offer -d '{"offers":[{"assignment":1,"key":"a","weight":3}]}'
//	curl -X POST localhost:7070/freeze
//	curl 'localhost:7070/query?agg=L1'
//	curl 'localhost:7070/query?agg=L1&epochs=3..7'     # time window
//	curl 'localhost:7070/query?agg=sum&b=0&prefix=192.168.'
//	curl 'localhost:7070/sketch?b=0' > site.0.cws      # feed to cws-merge
//	curl localhost:7070/healthz/ready
//	curl localhost:7070/debug/vars
//	curl localhost:7070/metrics                        # Prometheus text format
//	curl 'localhost:7070/query?agg=L1&trace=1'         # per-stage timing in the response
//	curl localhost:7070/debug/traces                   # recent request traces
//
// GET /metrics exposes every layer's series — request/freeze/store latency
// histograms, throughput counters, per-peer RPC and health series in
// cluster mode, and fault-point hit/fire counters when -faults is set — in
// the Prometheus text exposition format. Structured logs go to stderr
// (-log-level, -log-format=text|json). -pprof additionally mounts the
// net/http/pprof profiling endpoints under /debug/pprof/ (off by default).
//
//	# 3-node cluster (run one per host; same -peers everywhere):
//	cws-serve -addr :7070 -peers a:7070,b:7070,c:7070 -self 0
//	curl 'a:7070/cluster/query?agg=L1'
//	curl -X POST a:7070/cluster/freeze
//
// The sampling configuration (IPPS ranks, shared-seed coordination —
// matching cws-sketch) must agree with every other site whose sketches
// these are to be combined with: same -seed and -k. A -data-dir remembers
// its configuration and refuses to open under a different one.
//
// -faults injects deterministic failures at named points (see the
// internal/faults grammar) for robustness testing; never set it in
// production.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"coordsample"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	assignments := flag.Int("assignments", 2, "number of weight assignments |W|")
	k := flag.Int("k", 1024, "sketch size per assignment")
	seed := flag.Uint64("seed", 1, "hash seed shared by all assignments (and all coordinating sites)")
	shards := flag.Int("shards", 4, "per-assignment ingestion shards")
	workers := flag.Int("workers", 0, "ingestion workers per assignment (0 = GOMAXPROCS)")
	lanes := flag.Int("lanes", 0, "concurrent ingest lanes: requests on distinct lanes offer in parallel (0 = GOMAXPROCS)")
	dataDir := flag.String("data-dir", "", "durable epoch store directory (empty = memory only; epochs are lost on exit)")
	retain := flag.Int("retain", 8, "recent epochs kept individually for epoch-range queries (older ones are compacted)")
	peers := flag.String("peers", "", "comma-separated host:port of every cluster member incl. this one, identical order everywhere (empty = single node)")
	self := flag.Int("self", 0, "this node's index in -peers")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent ingest requests before shedding with 429 (0 = unbounded)")
	queryTimeout := flag.Duration("query-timeout", 0, "per-query evaluation deadline (0 = unbounded)")
	faultSpec := flag.String("faults", "", "fault-injection spec for robustness testing (e.g. 'store.segment-write:err,on=3'); never set in production")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default; profiling endpoints expose internals)")
	flag.Parse()

	logger, err := coordsample.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cws-serve: %v\n", err)
		os.Exit(2)
	}

	fset, err := coordsample.ParseFaults(*faultSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cws-serve: %v\n", err)
		os.Exit(2)
	}

	// One registry and one trace ring for the whole process: the server,
	// the store, and the cluster router all publish into them, so a single
	// GET /metrics scrape (and one /debug/traces ring) covers every layer.
	reg := coordsample.NewMetricsRegistry()
	traces := coordsample.NewTraceRing(256)

	cfg := coordsample.ServerConfig{
		Sample:       coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: *seed, K: *k},
		Assignments:  *assignments,
		Shards:       *shards,
		Workers:      *workers,
		Lanes:        *lanes,
		Retain:       *retain,
		Faults:       fset,
		MaxInflight:  *maxInflight,
		QueryTimeout: *queryTimeout,
		Metrics:      reg,
		Traces:       traces,
		Log:          logger,
	}

	// Cluster mode: this node owns the slice of the keyspace the routing
	// hash assigns to -self, and mounts the scatter-gather router.
	var router *coordsample.ClusterRouter
	if *peers != "" {
		list := strings.Split(*peers, ",")
		router, err = coordsample.NewClusterRouter(coordsample.ClusterConfig{
			Peers:       list,
			Self:        *self,
			Sample:      cfg.Sample,
			Assignments: *assignments,
			Faults:      fset,
			Metrics:     reg,
			Traces:      traces,
			Log:         logger,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cws-serve: %v\n", err)
			os.Exit(2)
		}
		defer router.Close()
		cfg.OwnsKey = router.OwnsKey
	}

	var st *coordsample.EpochStore
	if *dataDir != "" {
		st, err = coordsample.OpenStore(coordsample.StoreConfig{
			Dir: *dataDir, Retain: *retain, Sample: cfg.Sample, Assignments: *assignments, Faults: fset,
			Log: logger,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cws-serve: %v\n", err)
			os.Exit(2)
		}
		defer st.Close()
		cfg.Store = st
		if st.Epoch() > 0 {
			logger.Info(fmt.Sprintf("recovered %d epoch(s) from %s (%d bytes on disk)", st.Epoch(), *dataDir, st.DiskBytes()))
		}
	}
	srv, err := coordsample.NewServer(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cws-serve: %v\n", err)
		os.Exit(2)
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	if router != nil {
		mux.Handle("/cluster/", router)
		router.Start()
	}
	if *pprofOn {
		// Manual wiring instead of the package's DefaultServeMux side
		// effect: profiling stays off this mux unless -pprof asked for it.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof profiling endpoints enabled at /debug/pprof/")
	}
	handler := http.Handler(mux)

	// Listen before logging so the printed address carries the real port
	// (":0" resolves to an ephemeral one — the e2e tests depend on it).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cws-serve: %v\n", err)
		os.Exit(2)
	}
	durability := "memory only"
	if st != nil {
		durability = "durable in " + *dataDir
	}
	mode := "single node"
	if router != nil {
		mode = fmt.Sprintf("cluster member %d of %d", *self, len(strings.Split(*peers, ",")))
	}
	if fset != nil {
		logger.Warn(fmt.Sprintf("FAULT INJECTION ACTIVE at %v — this node will deliberately fail", fset.Points()))
	}
	logger.Info(fmt.Sprintf("listening on %s (%d assignments, k=%d, seed=%d, %d shards/assignment, %s, %s)",
		ln.Addr(), *assignments, *k, *seed, *shards, durability, mode))

	httpSrv := coordsample.NewHTTPServer(*addr, handler)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop() // restore default signal behavior: a second signal kills hard
		// Flip readiness first so load balancers and cluster peers stop
		// routing here before in-flight requests are drained.
		srv.SetDraining(true)
		logger.Info("signal received; draining requests")
		drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			logger.Warn(fmt.Sprintf("drain: %v", err))
			httpSrv.Close()
		}
	}()

	if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		logger.Error(fmt.Sprintf("serve: %v", err))
		os.Exit(1)
	}
	// Requests are drained: auto-freeze the open epoch (persisting it when
	// durable) and release the ingestion workers.
	if err := srv.Shutdown(); err != nil {
		logger.Error(fmt.Sprintf("final freeze: %v", err))
		os.Exit(1)
	}
	logger.Info(fmt.Sprintf("shut down cleanly at epoch %d", srv.Epoch()))
}

#!/bin/sh
# check_bench_regression.sh — gate the ingest fast path against regression.
#
# Usage: sh scripts/check_bench_regression.sh <ingest-experiment-output> [min-speedup]
#
# The checked-in BENCH_ingest.json records absolute offers/s on the machine
# that produced it; comparing absolute throughput across CI runners (other
# CPUs, other core counts, noisy neighbors) would flap. The ingest
# experiment instead re-measures the PR-3 legacy path — the exact pipeline
# BENCH_ingest.json's baseline rows record — in the same run, on the same
# machine, over the same stream, and reports each fast-path row's speedup
# against it. That in-run ratio is machine-independent, so the gate is:
# every sharded-pruned row must hold at least MIN_SPEEDUP (default 0.85,
# i.e. the pruned path may not fall more than 15% behind the legacy path
# it replaced — at any core count, including 1). Absolute comparison
# against BENCH_ingest.json is meaningful only at -scale 1 on the machine
# that recorded it; regenerate the record there when the numbers move.
#
# The bit-identity columns are re-checked too: a "false" anywhere means a
# frozen sketch or served answer diverged from the single-stream builder.

set -eu

OUT="${1:?usage: check_bench_regression.sh <ingest-experiment-output> [min-speedup]}"
MIN="${2:-0.85}"

if [ ! -f "$OUT" ]; then
    echo "check_bench_regression: no such file: $OUT" >&2
    exit 1
fi

if grep -q "false" "$OUT"; then
    echo "check_bench_regression: a bit-identity column is false in $OUT" >&2
    exit 1
fi

awk -v min="$MIN" '
$2 == "sharded-pruned" {
    rows++
    spd = $6
    sub(/x$/, "", spd)
    if (spd + 0 < min + 0) {
        printf "check_bench_regression: %s shards=%s pruned path at %sx of the PR-3 legacy path (floor %sx)\n", $1, $3, spd, min
        bad = 1
    }
}
END {
    if (rows == 0) {
        print "check_bench_regression: no sharded-pruned rows found (wrong input file?)"
        exit 1
    }
    if (bad) exit 1
    printf "check_bench_regression: %d pruned rows all within %sx of the in-run PR-3 baseline\n", rows, min
}
' "$OUT"

#!/usr/bin/env sh
# Docs gate: the documentation must not drift from the tree.
#
#  1. Every relative markdown link in the top-level docs and docs/ must
#     resolve to a file or directory in the repository.
#  2. Every repository path named in docs/paper-map.md (the paper-to-code
#     map) must exist — the map is only useful while it points at real
#     files.
#  3. Runnable doc examples must be gofmt-clean (they render verbatim in
#     godoc).
#
# Run from the repository root: sh scripts/check_docs.sh
set -u

fail=0

# --- 1. relative markdown links ---
for doc in README.md DESIGN.md EXPERIMENTS.md PAPER.md ROADMAP.md CHANGES.md docs/*.md; do
    [ -f "$doc" ] || continue
    dir=$(dirname "$doc")
    # Extract (target) parts of [text](target) links; ignore URLs/anchors.
    for target in $(grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//'); do
        case "$target" in
        http://*|https://*|\#*|mailto:*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
            echo "$doc: broken link -> $target"
            fail=1
        fi
    done
done

# --- 2. paper-map file references ---
if [ -f docs/paper-map.md ]; then
    for path in $(grep -o '`[a-z][a-zA-Z0-9_/.-]*\.\(go\|md\)`' docs/paper-map.md | tr -d '\`' | sort -u); do
        if [ ! -f "$path" ]; then
            echo "docs/paper-map.md: references missing file $path"
            fail=1
        fi
    done
else
    echo "docs/paper-map.md is missing"
    fail=1
fi

# --- 3. DESIGN.md analyzer table matches the registered analyzers ---
# The "Invariants as code" table (between the analyzers:begin/end markers)
# must name exactly the analyzers internal/lint registers: a renamed,
# added, or deleted analyzer must show up in the docs in the same PR.
real=$(grep -ho 'Name: *"[a-z]*"' internal/lint/*.go | sed 's/.*"\(.*\)"/\1/' | sort -u)
documented=$(sed -n '/<!-- analyzers:begin -->/,/<!-- analyzers:end -->/p' DESIGN.md |
    grep -o '^| `[a-z]*`' | sed 's/[^a-z]//g' | sort -u)
if [ -z "$real" ]; then
    echo "internal/lint: no analyzer Name fields found"
    fail=1
fi
if [ -z "$documented" ]; then
    echo "DESIGN.md: analyzers:begin/end table missing or empty"
    fail=1
fi
for name in $documented; do
    if ! printf '%s\n' $real | grep -qx "$name"; then
        echo "DESIGN.md documents analyzer '$name' but internal/lint does not register it"
        fail=1
    fi
done
for name in $real; do
    if ! printf '%s\n' $documented | grep -qx "$name"; then
        echo "internal/lint registers analyzer '$name' but DESIGN.md's invariants table omits it"
        fail=1
    fi
done

# --- 4. estimation-layer docs exist ---
# The estimator seam is a load-bearing refactor surface: DESIGN.md must
# keep its "Estimation layer" section, and the paper map must keep its
# discarded-samples (arXiv:0903.0625) entries, as long as the code exists.
if [ -f internal/estimate/estimator.go ]; then
    if ! grep -q "Estimation layer" DESIGN.md; then
        echo "DESIGN.md: missing the 'Estimation layer' section for internal/estimate's Estimator seam"
        fail=1
    fi
    if ! grep -q "0903.0625" docs/paper-map.md; then
        echo "docs/paper-map.md: missing the discarded-samples (arXiv:0903.0625) section"
        fail=1
    fi
fi

# --- 4b. scaling-layer docs exist ---
# The core-affine lane/parallel-freeze machinery is easy to regress
# silently in docs: as long as the lane code exists, DESIGN.md must keep
# the core-affine section, EXPERIMENTS.md must document the scale and
# loadtest experiments, and README.md must show the -lanes quickstart.
if [ -f internal/shard/parallel.go ]; then
    if ! grep -qi "core-affine" DESIGN.md; then
        echo "DESIGN.md: missing the core-affine lanes / parallel freeze section for internal/shard's Lane seam"
        fail=1
    fi
    if ! grep -q '`scale`' EXPERIMENTS.md; then
        echo "EXPERIMENTS.md: missing the scale experiment section"
        fail=1
    fi
    if ! grep -q '`loadtest`' EXPERIMENTS.md; then
        echo "EXPERIMENTS.md: missing the loadtest experiment section"
        fail=1
    fi
    if ! grep -q '\-lanes' README.md; then
        echo "README.md: missing the -lanes scaling quickstart"
        fail=1
    fi
fi

# --- 4c. cluster-layer docs exist ---
# The scatter-gather cluster and the fault-injection substrate carry
# user-facing semantics (degraded/coverage, -faults) that must not drift
# from the docs: as long as the code exists, DESIGN.md must keep the
# cluster and fault-injection sections, EXPERIMENTS.md must document the
# cluster experiment, and README.md must show the -peers scale-out
# quickstart.
if [ -f internal/cluster/cluster.go ]; then
    if ! grep -qi "scatter-gather cluster" DESIGN.md; then
        echo "DESIGN.md: missing the scatter-gather cluster section for internal/cluster"
        fail=1
    fi
    if ! grep -q "degraded" DESIGN.md || ! grep -q "coverage" DESIGN.md; then
        echo "DESIGN.md: cluster section must document the degraded/coverage response semantics"
        fail=1
    fi
    if ! grep -q '`cluster`' EXPERIMENTS.md; then
        echo "EXPERIMENTS.md: missing the cluster experiment section"
        fail=1
    fi
    if ! grep -q '\-peers' README.md; then
        echo "README.md: missing the -peers scale-out quickstart"
        fail=1
    fi
fi
if [ -f internal/faults/faults.go ]; then
    if ! grep -qi "fault injection" DESIGN.md; then
        echo "DESIGN.md: missing the fault-injection section for internal/faults"
        fail=1
    fi
fi

# --- 4d. observability docs exist ---
# The observability layer carries user-facing surfaces (/metrics,
# ?trace=1, /debug/traces, -log-format, -pprof) that must not drift from
# the docs: as long as internal/obs exists, DESIGN.md must keep the
# Observability section (histogram design, trace span model, metric
# naming) and README.md must keep the metrics/tracing quickstart.
if [ -f internal/obs/histogram.go ]; then
    if ! grep -q "## 8d. Observability" DESIGN.md; then
        echo "DESIGN.md: missing the Observability section for internal/obs"
        fail=1
    fi
    for topic in "Histogram design" "Metric naming" "Trace span model"; do
        if ! grep -q "$topic" DESIGN.md; then
            echo "DESIGN.md: Observability section must document '$topic'"
            fail=1
        fi
    done
    if ! grep -q "/metrics" README.md || ! grep -q "trace=1" README.md; then
        echo "README.md: missing the /metrics + ?trace=1 observability quickstart"
        fail=1
    fi
    if ! grep -q '\-pprof' README.md; then
        echo "README.md: missing the -pprof opt-in profiling mention"
        fail=1
    fi
fi

# --- 5. doc examples are gofmt-clean ---
examples=$(gofmt -l example_test.go 2>/dev/null)
if [ -n "$examples" ]; then
    echo "gofmt needed on doc examples: $examples"
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "docs gate FAILED"
    exit 1
fi
echo "docs gate OK"

module coordsample

go 1.22

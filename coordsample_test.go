package coordsample_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"coordsample"
)

// TestPublicAPIDispersedRoundTrip exercises the documented dispersed
// workflow end to end through the public surface only.
func TestPublicAPIDispersedRoundTrip(t *testing.T) {
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 1, K: 200}

	// Two "sites" sketch their periods independently.
	rng := rand.New(rand.NewSource(9))
	s0 := coordsample.NewAssignmentSketcher(cfg, 0)
	s1 := coordsample.NewAssignmentSketcher(cfg, 1)
	type kw struct {
		w0, w1 float64
	}
	truthByKey := make(map[string]kw)
	var sumMin, sumMax, sumL1 float64
	for i := 0; i < 1200; i++ {
		key := "host-" + itoa(i)
		base := math.Exp(rng.NormFloat64() * 1.5)
		var w0, w1 float64
		if rng.Float64() < 0.8 {
			w0 = base * (0.5 + rng.Float64())
			s0.Offer(key, w0)
		}
		if rng.Float64() < 0.8 {
			w1 = base * (0.5 + rng.Float64())
			s1.Offer(key, w1)
		}
		truthByKey[key] = kw{w0, w1}
		sumMin += math.Min(w0, w1)
		sumMax += math.Max(w0, w1)
		sumL1 += math.Abs(w0 - w1)
	}

	sum, err := coordsample.CombineDispersed(cfg, []*coordsample.BottomK{s0.Sketch(), s1.Sketch()})
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"max", sum.Max(nil).Estimate(nil), sumMax},
		{"min", sum.MinLSet(nil).Estimate(nil), sumMin},
		{"L1", sum.RangeLSet(nil).Estimate(nil), sumL1},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 0.25*c.want {
			t.Fatalf("%s estimate %v too far from truth %v", c.name, c.got, c.want)
		}
	}

	// Subpopulation chosen a posteriori.
	pred := func(key string) bool { return strings.HasSuffix(key, "7") }
	var want float64
	for key, v := range truthByKey {
		if pred(key) {
			want += math.Abs(v.w0 - v.w1)
		}
	}
	got := sum.RangeLSet(nil).Estimate(pred)
	if math.Abs(got-want) > 0.6*want+1 {
		t.Fatalf("subpopulation L1 %v too far from %v", got, want)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// TestPublicAPIColocatedRoundTrip exercises the colocated workflow,
// including vector predicates and the fixed-budget variant.
func TestPublicAPIColocatedRoundTrip(t *testing.T) {
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 3, K: 150}
	b := coordsample.NewDatasetBuilder("bytes", "packets", "flows")
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 1000; i++ {
		key := "flow-" + itoa(i)
		pk := math.Ceil(math.Exp(rng.NormFloat64() * 2))
		b.Add(0, key, pk*(40+rng.Float64()*1400))
		b.Add(1, key, pk)
		b.Add(2, key, 1+float64(rng.Intn(3)))
	}
	ds := b.Build()

	summary := coordsample.SummarizeColocated(cfg, ds)
	truth := ds.SumSingle(0, nil)
	got := summary.Inclusive(coordsample.SingleOf(0)).Estimate(nil)
	if math.Abs(got-truth) > 0.25*truth {
		t.Fatalf("bytes estimate %v too far from %v", got, truth)
	}

	// Vector predicate: heavy-hitter flows by packet count.
	vp := func(_ string, vec []float64) bool { return vec[1] >= 8 }
	gotHH := summary.EstimateWhere(coordsample.SingleOf(0), vp)
	var wantHH float64
	for i := 0; i < ds.NumKeys(); i++ {
		if ds.Weight(1, i) >= 8 {
			wantHH += ds.Weight(0, i)
		}
	}
	if math.Abs(gotHH-wantHH) > 0.35*wantHH {
		t.Fatalf("heavy-hitter bytes %v too far from %v", gotHH, wantHH)
	}

	// Fixed-budget summaries keep the contract.
	fixed, ell := coordsample.SummarizeColocatedFixed(cfg, ds)
	if ell < cfg.K {
		t.Fatalf("ℓ = %d below k", ell)
	}
	if fixed.DistinctKeys() > cfg.K*ds.NumAssignments() {
		t.Fatalf("fixed summary exceeded budget: %d", fixed.DistinctKeys())
	}
}

func TestPublicAPIKMinsJaccard(t *testing.T) {
	b := coordsample.NewDatasetBuilder("jan", "feb")
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 400; i++ {
		key := "movie-" + itoa(i)
		w := math.Exp(rng.NormFloat64())
		b.Add(0, key, w)
		b.Add(1, key, w*(0.5+rng.Float64()))
	}
	ds := b.Build()
	want := ds.WeightedJaccard([]int{0, 1}, nil)
	cfg := coordsample.Config{Family: coordsample.EXP, Mode: coordsample.IndependentDifferences, Seed: 5, K: 2000}
	got := coordsample.KMinsJaccard(cfg, ds, 0, 1)
	if math.Abs(got-want) > 0.06 {
		t.Fatalf("Jaccard %v, want ≈ %v", got, want)
	}
}

func TestPublicAggFuncConstructors(t *testing.T) {
	vec := []float64{1, 5, 3}
	if coordsample.MaxOf().Eval(vec) != 5 || coordsample.MinOf().Eval(vec) != 1 {
		t.Fatal("MaxOf/MinOf")
	}
	if coordsample.RangeOf().Eval(vec) != 4 {
		t.Fatal("RangeOf")
	}
	if coordsample.SingleOf(2).Eval(vec) != 3 {
		t.Fatal("SingleOf")
	}
	if coordsample.LthLargestOf(2).Eval(vec) != 3 {
		t.Fatal("LthLargestOf")
	}
}

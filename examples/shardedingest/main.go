// Sharded ingestion: the same coordinated sketches, built concurrently.
//
// A stream of per-key traffic volumes is ingested twice: once through the
// classic single-stream AssignmentSketcher and once through a
// ShardedSketcher that hash-partitions keys across disjoint shards sketched
// by worker goroutines. The two sketches are verified to be bit-identical —
// the merge lemma (sketch.Merge over disjoint shards is exact) means
// sharding changes wall-clock time, never the sample — and the combined
// summary answers the usual multiple-assignment queries.
//
// Run: go run ./examples/shardedingest
package main

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"coordsample"
)

func main() {
	const (
		numKeys = 300000
		k       = 4096
		shards  = 8
	)
	cfg := coordsample.Config{
		Family: coordsample.IPPS,
		Mode:   coordsample.SharedSeed,
		Seed:   42,
		K:      k,
	}

	// One synthetic assignment: heavy-tailed volumes per key.
	rng := rand.New(rand.NewSource(7))
	keys := make([]string, numKeys)
	weights := make([]float64, numKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("host-%06d", i)
		weights[i] = math.Exp(rng.NormFloat64() * 2)
	}

	// Single-stream reference.
	start := time.Now()
	single := coordsample.NewAssignmentSketcher(cfg, 0)
	for i, key := range keys {
		single.Offer(key, weights[i])
	}
	ref := single.Sketch()
	singleTime := time.Since(start)

	// Sharded concurrent pipeline over the same stream.
	start = time.Now()
	sharded := coordsample.NewShardedSketcher(cfg, 0, shards, 0)
	for i, key := range keys {
		sharded.Offer(key, weights[i])
	}
	merged := sharded.Sketch()
	shardedTime := time.Since(start)

	identical := ref.Size() == merged.Size() &&
		ref.KthRank() == merged.KthRank() &&
		ref.Threshold() == merged.Threshold()
	for i, e := range ref.Entries() {
		if !identical || merged.Entries()[i] != e {
			identical = false
			break
		}
	}

	fmt.Printf("%d keys, k=%d, %d shards, %d workers (GOMAXPROCS=%d)\n",
		numKeys, k, shards, sharded.NumWorkers(), runtime.GOMAXPROCS(0))
	fmt.Printf("  single-stream: %v\n", singleTime.Round(time.Microsecond))
	fmt.Printf("  sharded:       %v\n", shardedTime.Round(time.Microsecond))
	fmt.Printf("  sketches bit-identical: %v (entries=%d, kth=%.6g, threshold=%.6g)\n",
		identical, merged.Size(), merged.KthRank(), merged.Threshold())

	// The merged sketch slots into the usual query pipeline.
	summary, err := coordsample.CombineDispersed(cfg, []*coordsample.BottomK{merged})
	if err != nil {
		panic(err) // merged carries cfg's fingerprint
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	est := summary.Single(0).Estimate(nil)
	fmt.Printf("\nΣ w estimate %.1f   truth %.1f   error %.2f%%\n",
		est, total, 100*math.Abs(est-total)/total)
}

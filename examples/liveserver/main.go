// Liveserver demonstrates the online sketch server end to end, in one
// process: it starts cws-serve's handler on a loopback listener, streams
// two assignments of network-flow traffic into it from concurrent clients,
// freezes an epoch mid-stream, queries the frozen snapshot while ingestion
// continues, and finally exports the served sketches through the wire
// codec and re-answers a query from the exported files alone — proving the
// server interoperates with the distributed combine workflow (cws-merge).
//
// Run with: go run ./examples/liveserver
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"sync"

	"coordsample"
)

func main() {
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 42, K: 512}
	srv, err := coordsample.NewServer(coordsample.ServerConfig{
		Sample:      cfg,
		Assignments: 2, // period 1 and period 2
		Shards:      4,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv)
	base := "http://" + ln.Addr().String()
	fmt.Printf("live server on %s\n\n", base)

	// --- Epoch 1: two concurrent clients stream the first half of the day.
	streamTraffic(base, 0, 4000)
	freeze(base)
	fmt.Println("after epoch 1 (first half of the traffic):")
	query(base, "agg=sum&b=0", "   bytes, period 1")
	query(base, "agg=L1", "   traffic change Σ|w1−w2|")

	// --- Epoch 2: the second half arrives while the frozen snapshot keeps
	// answering queries (readers never block writers).
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		streamTraffic(base, 4000, 8000)
	}()
	query(base, "agg=jaccard", "   similarity (still epoch 1)")
	wg.Wait()
	freeze(base)
	fmt.Println("\nafter epoch 2 (all traffic, exact cumulative merge):")
	query(base, "agg=sum&b=0", "   bytes, period 1")
	serverL1 := query(base, "agg=L1", "   traffic change Σ|w1−w2|")
	query(base, "agg=sum&b=0&prefix=10.0.", "   bytes from 10.0.*, period 1")

	// --- Export the served sketches and combine them offline, exactly as
	// cws-merge would with files shipped from any other site.
	var decoded []*coordsample.DecodedSketch
	for b := 0; b < 2; b++ {
		resp, err := http.Get(fmt.Sprintf("%s/sketch?b=%d", base, b))
		if err != nil {
			log.Fatal(err)
		}
		d, err := coordsample.DecodeSketch(resp.Body)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		decoded = append(decoded, d)
		fmt.Printf("\nexported sketch: assignment %d, %d entries, fingerprint %#016x",
			b, d.BottomK.Size(), d.Fingerprint())
	}
	offline, err := coordsample.CombineDecoded(decoded)
	if err != nil {
		log.Fatal(err)
	}
	offlineL1 := offline.RangeLSet(nil).Estimate(nil)
	if offlineL1 != serverL1 {
		log.Fatalf("offline combine L1 %v != server answer %v (must be bit-identical)", offlineL1, serverL1)
	}
	fmt.Printf("\noffline combine of the exports: L1 = %.6g — bit-identical to the server's answer: true\n", offlineL1)
}

// streamTraffic posts flows [lo, hi) in batches from two concurrent
// clients, one per period — the dispersed model over HTTP. Each key is
// offered at most once per assignment (the pre-aggregation contract).
func streamTraffic(base string, lo, hi int) {
	var wg sync.WaitGroup
	for period := 0; period < 2; period++ {
		wg.Add(1)
		go func(period int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100*period) + int64(lo)))
			batch := make([]coordsample.ServerOffer, 0, 256)
			flush := func() {
				if len(batch) == 0 {
					return
				}
				body, _ := json.Marshal(map[string]any{"offers": batch})
				resp, err := http.Post(base+"/offer", "application/json", bytes.NewReader(body))
				if err != nil {
					log.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					log.Fatalf("offer batch rejected: status %d", resp.StatusCode)
				}
				batch = batch[:0]
			}
			for i := lo; i < hi; i++ {
				src := fmt.Sprintf("10.%d.%d.%d", i%4, (i/64)%256, i%256)
				if rng.Float64() < 0.15 {
					continue // flow inactive in this period
				}
				batch = append(batch, coordsample.ServerOffer{
					Assignment: period,
					Key:        src,
					Weight:     math.Exp(rng.NormFloat64() * 2),
				})
				if len(batch) == cap(batch) {
					flush()
				}
			}
			flush()
		}(period)
	}
	wg.Wait()
}

func freeze(base string) {
	resp, err := http.Post(base+"/freeze", "application/json", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("freeze failed: status %d: %v", resp.StatusCode, out)
	}
	fmt.Printf("froze epoch %v, serving entries per assignment: %v\n\n", out["epoch"], out["entries"])
}

func query(base, params, label string) float64 {
	resp, err := http.Get(base + "/query?" + params)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("query %s failed: status %d", params, resp.StatusCode)
	}
	var out struct {
		Label    string  `json:"label"`
		Estimate float64 `json:"estimate"`
		Epoch    int     `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s ≈ %.6g (epoch %d)\n", label, out.Label, out.Estimate, out.Epoch)
	return out.Estimate
}

// Distributed summarization: sketch at two sites, ship the sketch files,
// merge and query at a combiner — the paper's dispersed model running as
// it was meant to be deployed, with the summaries (not the data) crossing
// process boundaries.
//
// Site A observes period-1 traffic, site B period-2 traffic. Each sketches
// independently — coordination comes entirely from the shared Config — and
// writes its sketch as a self-describing, fingerprinted file. The combiner
// reads the files back, verifies the fingerprints, and answers
// multiple-assignment queries bit-identically to a process that held all
// the data. A site misconfigured with a different seed is rejected loudly
// instead of silently corrupting the estimates.
//
// Run: go run ./examples/distributed
package main

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"coordsample"
)

func main() {
	const (
		numKeys = 40000
		k       = 1500
	)
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 97, K: k}

	// Heavy-tailed weights with churn between the two periods.
	rng := rand.New(rand.NewSource(5))
	keys := make([]string, numKeys)
	w1 := make([]float64, numKeys)
	w2 := make([]float64, numKeys)
	var truthL1, truthMax float64
	for i := range keys {
		keys[i] = fmt.Sprintf("flow-%05d", i)
		base := math.Exp(rng.NormFloat64() * 2)
		if rng.Float64() < 0.8 {
			w1[i] = base * (0.5 + rng.Float64())
		}
		if rng.Float64() < 0.8 {
			w2[i] = base * (0.5 + rng.Float64())
		}
		truthL1 += math.Abs(w1[i] - w2[i])
		truthMax += math.Max(w1[i], w2[i])
	}

	dir, err := os.MkdirTemp("", "cws-distributed")
	must(err)
	defer os.RemoveAll(dir)

	// --- Site A: sketch period 1, write siteA.cws, keep nothing else. ---
	fileA := filepath.Join(dir, "siteA.cws")
	must(sketchSite(fileA, cfg, 0, keys, w1))
	// --- Site B: sketch period 2, independently. ---
	fileB := filepath.Join(dir, "siteB.cws")
	must(sketchSite(fileB, cfg, 1, keys, w2))

	// --- Combiner: only the shipped files, no data, no sites. ---
	decoded := make([]*coordsample.DecodedSketch, 0, 2)
	for _, path := range []string{fileA, fileB} {
		f, err := os.Open(path)
		must(err)
		d, err := coordsample.DecodeSketch(f)
		f.Close()
		must(err)
		fmt.Printf("combiner: %s verified (assignment %d, %d entries, fingerprint %#016x)\n",
			filepath.Base(path), d.Meta.Assignment, d.BottomK.Size(), d.Fingerprint())
		decoded = append(decoded, d)
	}
	shipped, err := coordsample.CombineDecoded(decoded)
	must(err)

	// The same pipeline in one process, for comparison.
	bld := coordsample.NewDatasetBuilder("period1", "period2")
	for i, key := range keys {
		if w1[i] > 0 {
			bld.Add(0, key, w1[i])
		}
		if w2[i] > 0 {
			bld.Add(1, key, w2[i])
		}
	}
	inProcess := coordsample.SummarizeDispersed(cfg, bld.Build())

	fmt.Printf("\n%-18s %18s %18s %14s\n", "query", "from shipped files", "in-process", "truth")
	for _, q := range []struct {
		name           string
		shipped, local float64
		truth          float64
	}{
		{"Σ max(w1,w2)", shipped.Max(nil).Estimate(nil), inProcess.Max(nil).Estimate(nil), truthMax},
		{"Σ |w1−w2| (L1)", shipped.RangeLSet(nil).Estimate(nil), inProcess.RangeLSet(nil).Estimate(nil), truthL1},
	} {
		fmt.Printf("%-18s %18.4f %18.4f %14.1f   bit-identical: %v\n",
			q.name, q.shipped, q.local, q.truth, q.shipped == q.local)
	}

	// --- A misconfigured site cannot corrupt the combiner. ---
	badCfg := cfg
	badCfg.Seed = 4242 // e.g. a site that missed the seed rollout
	var buf bytes.Buffer
	sk := coordsample.NewAssignmentSketcher(badCfg, 1)
	for i, key := range keys {
		if w2[i] > 0 {
			sk.Offer(key, w2[i])
		}
	}
	must(coordsample.EncodeSketch(&buf, coordsample.CodecBinary, badCfg, 1, sk.Sketch()))
	bad, err := coordsample.DecodeSketch(&buf)
	must(err)
	_, err = coordsample.CombineDecoded([]*coordsample.DecodedSketch{decoded[0], bad})
	var mismatch *coordsample.CoordinationMismatchError
	if errors.As(err, &mismatch) {
		fmt.Printf("\nmisconfigured site rejected as expected:\n  %v\n", err)
	} else {
		panic(fmt.Sprintf("expected a coordination mismatch, got %v", err))
	}
}

// sketchSite is one dispersed site: it sketches its assignment's stream
// and writes the fingerprinted sketch file that gets shipped.
func sketchSite(path string, cfg coordsample.Config, assignment int, keys []string, weights []float64) error {
	sk := coordsample.NewAssignmentSketcher(cfg, assignment)
	for i, key := range keys {
		if weights[i] > 0 {
			sk.Offer(key, weights[i])
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := coordsample.EncodeSketch(f, coordsample.CodecBinary, cfg, assignment, sk.Sketch()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

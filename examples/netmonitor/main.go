// Network monitoring: detecting traffic changes from hourly summaries.
//
// An ISP keeps one coordinated bottom-k summary of flow volumes per hour —
// the scenario that motivates the paper's dispersed model. Long after the
// raw data is gone, an operator investigates an anomaly: which customer
// prefixes saw the largest hour-over-hour change (L1), and how much traffic
// to a suspicious prefix persisted across all four hours (min-dominance)?
//
// The simulation injects a flash crowd into one /16 during hours 3–4 so the
// queries have something to find.
//
// Run: go run ./examples/netmonitor
package main

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"coordsample"
)

const (
	hours    = 4
	numFlows = 40000
	k        = 3000
)

func main() {
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 2024, K: k}

	// One sketcher per hour; in production each runs when its hour's data
	// streams by and only the k-entry sketch is retained.
	sketchers := make([]*coordsample.AssignmentSketcher, hours)
	for h := range sketchers {
		sketchers[h] = coordsample.NewAssignmentSketcher(cfg, h)
	}

	// The sketching contract requires pre-aggregated keys (each key offered
	// at most once per hour), so flows are first accumulated per destination
	// — randomly drawn destIPs collide, and offering a duplicate would
	// (correctly) panic the freeze step.
	rng := rand.New(rand.NewSource(11))
	volumes := make(map[string]*[hours]float64)
	for i := 0; i < numFlows; i++ {
		// Keys are destIPs in a handful of /16s; one of them gets attacked.
		prefix := fmt.Sprintf("10.%d", rng.Intn(8))
		dest := fmt.Sprintf("%s.%d.%d", prefix, rng.Intn(256), rng.Intn(256))
		base := math.Exp(rng.NormFloat64() * 2)
		acc := volumes[dest]
		if acc == nil {
			acc = new([hours]float64)
			volumes[dest] = acc
		}
		for h := 0; h < hours; h++ {
			v := base * (0.5 + rng.Float64())
			if prefix == "10.3" && h >= 2 {
				v *= 25 // flash crowd in hours 3-4
			}
			if rng.Float64() < 0.15 {
				v = 0 // flow absent this hour
			}
			acc[h] += v
		}
	}
	for dest, acc := range volumes {
		for h := 0; h < hours; h++ {
			if acc[h] > 0 {
				sketchers[h].Offer(dest, acc[h])
			}
		}
	}

	sketches := make([]*coordsample.BottomK, hours)
	for h, s := range sketchers {
		sketches[h] = s.Sketch()
	}
	summary, err := coordsample.CombineDispersed(cfg, sketches)
	if err != nil {
		panic(err) // all sketches share cfg
	}

	// 1. Rank /16 prefixes by estimated hour3-vs-hour2 change.
	fmt.Println("hour2→hour3 L1 change by /16 prefix (estimated from sketches):")
	var changes []change
	aw := summary.RangeLSet([]int{1, 2})
	for p := 0; p < 8; p++ {
		prefix := fmt.Sprintf("10.%d.", p)
		est := aw.Estimate(func(key string) bool { return strings.HasPrefix(key, prefix) })
		changes = append(changes, change{prefix, est})
	}
	for _, c := range changes {
		bar := strings.Repeat("#", int(40*c.l1/maxL1(changes)))
		fmt.Printf("  %-8s %12.0f %s\n", c.prefix, c.l1, bar)
	}

	// 2. Drill into the suspicious prefix: persistent traffic across all
	// four hours (min-dominance) vs peak (max-dominance).
	suspicious := func(key string) bool { return strings.HasPrefix(key, "10.3.") }
	minDom := summary.MinLSet(nil).Estimate(suspicious)
	maxDom := summary.Max(nil).Estimate(suspicious)
	fmt.Printf("\nprefix 10.3.0.0/16 across all %d hours:\n", hours)
	fmt.Printf("  persistent volume (Σ min over hours) ≈ %.0f\n", minDom)
	fmt.Printf("  peak volume       (Σ max over hours) ≈ %.0f\n", maxDom)
	fmt.Printf("  persistence ratio (weighted Jaccard) ≈ %.3f\n", minDom/maxDom)

	// 3. Stability of unaffected prefixes for contrast.
	quiet := func(key string) bool { return strings.HasPrefix(key, "10.5.") }
	qMin := summary.MinLSet(nil).Estimate(quiet)
	qMax := summary.Max(nil).Estimate(quiet)
	fmt.Printf("\nprefix 10.5.0.0/16 (quiet) persistence ratio ≈ %.3f\n", qMin/qMax)
	fmt.Printf("\nsummary footprint: %d distinct keys for %d hourly sketches of k=%d\n",
		summary.DistinctKeys(nil), hours, k)
}

type change struct {
	prefix string
	l1     float64
}

func maxL1(cs []change) float64 {
	m := 1.0
	for _, c := range cs {
		if c.l1 > m {
			m = c.l1
		}
	}
	return m
}

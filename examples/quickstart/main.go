// Quickstart: coordinated weighted sampling over two time periods.
//
// Two "collection sites" observe per-key traffic volumes in two periods and
// sketch them independently — they never exchange data, yet because they
// share a hash seed their bottom-k samples are coordinated. Combining the
// sketches answers multiple-assignment queries (total change, min/max
// dominance) that independent samples answer badly.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"math"
	"math/rand"

	"coordsample"
)

func main() {
	const (
		numKeys = 50000
		k       = 2000
	)
	cfg := coordsample.Config{
		Family: coordsample.IPPS,       // priority-sampling ranks
		Mode:   coordsample.SharedSeed, // coordination across periods
		Seed:   42,                     // shared by both sites
		K:      k,
	}

	// Site A sketches period 1; site B sketches period 2. Weights are
	// heavy-tailed with churn: ~20% of keys disappear, ~20% appear.
	rng := rand.New(rand.NewSource(7))
	siteA := coordsample.NewAssignmentSketcher(cfg, 0)
	siteB := coordsample.NewAssignmentSketcher(cfg, 1)

	var truthL1, truthMax, truthMin, truth1 float64
	for i := 0; i < numKeys; i++ {
		key := fmt.Sprintf("host-%05d", i)
		base := math.Exp(rng.NormFloat64() * 2) // skewed volumes
		var w1, w2 float64
		if rng.Float64() < 0.8 {
			w1 = base * (0.5 + rng.Float64())
			siteA.Offer(key, w1)
		}
		if rng.Float64() < 0.8 {
			w2 = base * (0.5 + rng.Float64())
			siteB.Offer(key, w2)
		}
		truth1 += w1
		truthL1 += math.Abs(w1 - w2)
		truthMax += math.Max(w1, w2)
		truthMin += math.Min(w1, w2)
	}

	// Combine the two sketches into one queryable summary. The error path
	// fires only when sketches built under different configurations are
	// mixed — impossible here, where both sites share cfg.
	summary, err := coordsample.CombineDispersed(cfg,
		[]*coordsample.BottomK{siteA.Sketch(), siteB.Sketch()})
	if err != nil {
		panic(err)
	}

	show := func(name string, got, want float64) {
		fmt.Printf("  %-22s estimate %14.1f   truth %14.1f   error %5.2f%%\n",
			name, got, want, 100*math.Abs(got-want)/want)
	}
	fmt.Printf("coordinated bottom-%d sketches over %d keys (%d distinct keys stored)\n\n",
		k, numKeys, summary.DistinctKeys(nil))
	show("Σ w1 (period 1)", summary.Single(0).Estimate(nil), truth1)
	show("Σ max(w1,w2)", summary.Max(nil).Estimate(nil), truthMax)
	show("Σ min(w1,w2)", summary.MinLSet(nil).Estimate(nil), truthMin)
	show("Σ |w1−w2| (L1)", summary.RangeLSet(nil).Estimate(nil), truthL1)

	// Subpopulation chosen after the fact: keys ending in "7".
	pred := func(key string) bool { return key[len(key)-1] == '7' }
	fmt.Printf("\nsubpopulation (keys ending in 7): L1 ≈ %.1f\n",
		summary.RangeLSet(nil).Estimate(pred))

	// Every estimate carries a standard error computed from the summary
	// itself (per-key variance a²(1−p); conservative for L1).
	est, se := summary.Max(nil).EstimateWithStdErr(nil)
	fmt.Printf("\nΣ max with uncertainty: %.0f ± %.0f (truth %.0f)\n", est, se, truthMax)

	// Representative keys: the heaviest contributors to the change.
	fmt.Println("\ntop changing keys (unbiased L1 contributions):")
	l1 := summary.RangeLSet(nil)
	for _, key := range l1.TopKeys(3) {
		fmt.Printf("  %-12s ≈ %.1f\n", key, l1.AdjustedWeight(key))
	}
}

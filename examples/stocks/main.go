// Colocated multi-attribute summaries: one sample, six attributes.
//
// Keys are ticker symbols; each record carries six numeric attributes
// (open/high/low/close/adjusted-close prices and share volume) — the
// paper's colocated stocks workload. A single coordinated summary embeds a
// weighted bottom-k sample with respect to *every* attribute while storing
// far fewer than 6k distinct keys, because the attributes are correlated.
// Inclusive estimators then answer per-attribute sums more accurately than
// the attribute's own sample alone, plus cross-attribute queries like
// dollar-volume over a price band — with the subpopulation picked at query
// time.
//
// Run: go run ./examples/stocks
package main

import (
	"fmt"
	"math"
	"math/rand"

	"coordsample"
)

const (
	tickers = 6000
	k       = 400
)

var attrs = []string{"open", "high", "low", "close", "adj_close", "volume"}

func main() {
	ds := buildDay()
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 31, K: k}

	summary := coordsample.SummarizeColocated(cfg, ds)
	stored := summary.DistinctKeys()
	fmt.Printf("coordinated summary: %d distinct tickers for %d embedded bottom-%d samples\n",
		stored, len(attrs), k)
	fmt.Printf("sharing index %.2f (1.00 = no sharing, %.2f = perfect sharing)\n\n",
		float64(stored)/float64(k*len(attrs)), 1.0/float64(len(attrs)))

	// Per-attribute totals: inclusive estimates use the whole combined
	// summary; plain estimates use only the attribute's own sample.
	fmt.Println("attribute totals: inclusive vs plain estimator error")
	for b, name := range attrs {
		truth := ds.SumSingle(b, nil)
		incl := summary.Inclusive(coordsample.SingleOf(b)).Estimate(nil)
		plain := summary.Plain(b).Estimate(nil)
		fmt.Printf("  %-10s truth %14.0f   inclusive %5.2f%%   plain %5.2f%%\n",
			name, truth, pctErr(incl, truth), pctErr(plain, truth))
	}

	// Cross-attribute query, selected a posteriori: share volume of
	// tickers whose intraday swing exceeded 10% of the open.
	swing := func(_ string, vec []float64) bool {
		return vec[0] > 0 && (vec[1]-vec[2]) > 0.10*vec[0]
	}
	est := summary.EstimateWhere(coordsample.SingleOf(5), swing)
	var truth float64
	for i := 0; i < ds.NumKeys(); i++ {
		vec := ds.WeightVector(i)
		if swing("", vec) {
			truth += vec[5]
		}
	}
	fmt.Printf("\nvolume traded in tickers with >10%% intraday swing:\n")
	fmt.Printf("  estimate %14.0f   truth %14.0f   error %.2f%%\n", est, truth, pctErr(est, truth))

	// Fixed storage budget: grow per-attribute samples until 6k distinct
	// keys are used.
	fixed, ell := coordsample.SummarizeColocatedFixed(cfg, ds)
	fmt.Printf("\nfixed-budget variant: ℓ=%d per attribute within %d distinct keys (vs k=%d)\n",
		ell, fixed.DistinctKeys(), k)
	b := 5 // volume, the least-correlated attribute, benefits most
	truthV := ds.SumSingle(b, nil)
	fmt.Printf("  volume total error: fixed-k %5.2f%% vs fixed-budget %5.2f%%\n",
		pctErr(summary.Inclusive(coordsample.SingleOf(b)).Estimate(nil), truthV),
		pctErr(fixed.Inclusive(coordsample.SingleOf(b)).Estimate(nil), truthV))
}

func pctErr(got, want float64) float64 {
	return 100 * math.Abs(got-want) / want
}

// buildDay synthesizes one trading day: correlated OHLC prices and noisier
// log-normal volume.
func buildDay() *coordsample.Dataset {
	rng := rand.New(rand.NewSource(13))
	b := coordsample.NewDatasetBuilder(attrs...)
	for i := 0; i < tickers; i++ {
		key := fmt.Sprintf("TK%04d", i)
		base := math.Exp(2.5 + 1.3*rng.NormFloat64())
		open := base * (1 + 0.01*rng.NormFloat64())
		cls := base * (1 + 0.03*rng.NormFloat64())
		high := math.Max(open, cls) * (1 + math.Abs(0.02*rng.NormFloat64()))
		low := math.Min(open, cls) * (1 - math.Abs(0.02*rng.NormFloat64()))
		adj := cls * 0.9999
		vol := math.Round(math.Exp(10 + 1.5*rng.NormFloat64()))
		if rng.Float64() < 0.04 {
			vol = 0 // no trades
		}
		for a, w := range []float64{open, high, low, cls, adj, vol} {
			if w > 0 {
				b.Add(a, key, w)
			}
		}
	}
	return b.Build()
}

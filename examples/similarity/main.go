// Similarity over a ratings catalog: which months look alike?
//
// Keys are movies, the weight of a movie in a month is its rating count —
// the paper's Netflix workload. Coordinated sketches support (a) weighted
// Jaccard similarity between any pair of months via k-mins sketches
// (Theorem 4.1), and (b) min/max-dominance and L1 estimates over arbitrary
// month subsets from bottom-k sketches, including subpopulations ("only
// blockbuster titles") selected at query time.
//
// Run: go run ./examples/similarity
package main

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"coordsample"
)

const (
	numMovies = 8000
	months    = 12
	k         = 1500
)

func main() {
	ds := buildCatalog()

	// Exact values for reference (a real deployment has only the sketches).
	fmt.Println("month-pair similarity: k-mins estimate vs exact")
	cfgJ := coordsample.Config{Family: coordsample.EXP, Mode: coordsample.IndependentDifferences, Seed: 99, K: 4096}
	for _, pair := range [][2]int{{0, 1}, {0, 5}, {0, 11}} {
		est := coordsample.KMinsJaccard(cfgJ, ds, pair[0], pair[1])
		exact := ds.WeightedJaccard([]int{pair[0], pair[1]}, nil)
		fmt.Printf("  months %2d vs %2d: estimate %.3f   exact %.3f\n",
			pair[0]+1, pair[1]+1, est, exact)
	}

	// Bottom-k summary over all 12 months for dominance/L1 queries.
	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 5, K: k}
	summary := coordsample.SummarizeDispersed(cfg, ds)

	firstHalf := []int{0, 1, 2, 3, 4, 5}
	fmt.Printf("\nfirst-half-of-year aggregates (from sketches):\n")
	fmt.Printf("  Σ min over months 1-6 ≈ %.0f (exact %.0f)\n",
		summary.MinLSet(firstHalf).Estimate(nil), ds.SumMin(firstHalf, nil))
	fmt.Printf("  Σ max over months 1-6 ≈ %.0f (exact %.0f)\n",
		summary.Max(firstHalf).Estimate(nil), ds.SumMax(firstHalf, nil))
	fmt.Printf("  Σ L1  over months 1-6 ≈ %.0f (exact %.0f)\n",
		summary.RangeLSet(firstHalf).Estimate(nil), ds.SumRange(firstHalf, nil))

	// A-posteriori subpopulation: franchise titles only.
	franchise := func(key string) bool { return strings.HasPrefix(key, "franchise/") }
	fmt.Printf("\nfranchise titles, volatility across the year:\n")
	fmt.Printf("  Σ L1 over all months ≈ %.0f (exact %.0f)\n",
		summary.RangeLSet(nil).Estimate(franchise), ds.SumRange(nil, franchise))

	// Median monthly popularity (ℓ-th largest with ℓ = 6 of 12) —
	// a quantile aggregate only the l-set estimator supports.
	fmt.Printf("\nΣ median monthly ratings (6th largest of 12) ≈ %.0f (exact %.0f)\n",
		summary.LthLargest(nil, 6).Estimate(nil), ds.SumLthLargest(ds.AllAssignments(), 6, nil))
}

// buildCatalog synthesizes a ratings dataset: Zipf popularity, correlated
// month-over-month drift, and a "franchise/" segment with winter spikes.
func buildCatalog() *coordsample.Dataset {
	rng := rand.New(rand.NewSource(3))
	names := make([]string, months)
	for m := range names {
		names[m] = fmt.Sprintf("month%02d", m+1)
	}
	b := coordsample.NewDatasetBuilder(names...)
	for i := 0; i < numMovies; i++ {
		key := fmt.Sprintf("title/%05d", i)
		if i%40 == 0 {
			key = fmt.Sprintf("franchise/%05d", i)
		}
		pop := 2000 * math.Pow(float64(rng.Intn(numMovies)+1), -0.8)
		drift := 0.0
		for m := 0; m < months; m++ {
			drift = 0.7*drift + 0.3*rng.NormFloat64()
			lam := pop * math.Exp(drift)
			if strings.HasPrefix(key, "franchise/") && (m == 10 || m == 11) {
				lam *= 6 // holiday release bump
			}
			n := math.Round(lam * (0.5 + rng.Float64()))
			if n > 0 {
				b.Add(m, key, n)
			}
		}
	}
	return b.Build()
}

// Package coordsample implements coordinated weighted sampling for
// estimating aggregates over multiple weight assignments, after Cohen,
// Kaplan, and Sen, "Coordinated Weighted Sampling: Estimation of
// Multiple-Assignment Aggregates" (VLDB 2009).
//
// # Data model
//
// Data is a set of keys, each carrying one nonnegative weight per
// *assignment* — a time period, a location, or a numeric attribute. Over
// such data one asks subpopulation sum queries Σ_{i: d(i)} f(i), where f is
// a single-assignment weight or a multiple-assignment function such as
// max_R, min_R, or the L1 difference, and the predicate d may be chosen
// *after* the summary was built.
//
// # Two pipelines
//
// Dispersed weights (assignments observed at different times/places): run
// one AssignmentSketcher per assignment — they never communicate; samples
// are coordinated purely through the shared hash seed — then
// CombineDispersed and query the summary:
//
//	cfg := coordsample.Config{Family: coordsample.IPPS, Mode: coordsample.SharedSeed, Seed: 1, K: 1024}
//	s0 := coordsample.NewAssignmentSketcher(cfg, 0) // e.g. at site A
//	s1 := coordsample.NewAssignmentSketcher(cfg, 1) // e.g. at site B
//	// ... s0.Offer(key, w) over period-1 data, s1.Offer over period-2 data ...
//	sum, err := coordsample.CombineDispersed(cfg, []*coordsample.BottomK{s0.Sketch(), s1.Sketch()})
//	if err != nil { ... } // sketches built under a different configuration
//	change := sum.RangeLSet(nil).Estimate(func(key string) bool { return interesting(key) })
//
// Sketches are wire-portable: every sketch built through the pipelines
// carries a configuration fingerprint, EncodeSketch/DecodeSketch ship it
// between processes (binary or JSON), and CombineDecoded reassembles
// shipped files into a queryable summary, rejecting any file built under a
// mismatched configuration (see cmd/cws-merge and examples/distributed).
//
// Colocated weights (full weight vector available per key): feed a
// ColocatedSummarizer and use the inclusive estimators, which exploit every
// key in the combined summary and support vector predicates:
//
//	cs := coordsample.NewColocatedSummarizer(cfg, 3)
//	// ... cs.Offer(key, []float64{bytes, packets, flows}) ...
//	summary := cs.Summary()
//	bytes := summary.Inclusive(coordsample.SingleOf(0)).Estimate(nil)
//
// Estimators are unbiased (Horvitz–Thompson on partitioned sample spaces);
// coordination makes multiple-assignment estimates orders of magnitude
// tighter than independent samples while keeping a valid weighted sample per
// assignment.
//
// Beyond the batch pipelines, NewServer runs the whole stack as a resident
// HTTP service (cmd/cws-serve): sharded concurrent ingestion into epochs,
// freeze-and-swap snapshots, online queries bit-identical to the offline
// pipeline, and wire-codec sketch export compatible with cws-merge.
//
// See DESIGN.md for the full system inventory, docs/paper-map.md for the
// paper-section-to-symbol map, and EXPERIMENTS.md for the reproduced
// evaluation.
package coordsample

import (
	"io"
	"log/slog"
	"net/http"

	"coordsample/internal/cluster"
	"coordsample/internal/core"
	"coordsample/internal/dataset"
	"coordsample/internal/estimate"
	"coordsample/internal/faults"
	"coordsample/internal/obs"
	"coordsample/internal/rank"
	"coordsample/internal/server"
	"coordsample/internal/shard"
	"coordsample/internal/sketch"
	"coordsample/internal/store"
)

// Core configuration and pipeline types (see the package documentation).
type (
	// Config selects the rank family, coordination mode, hash seed, and
	// per-assignment sample size k.
	Config = core.Config
	// AssignmentSketcher sketches one assignment of dispersed data.
	AssignmentSketcher = core.AssignmentSketcher
	// ColocatedSummarizer summarizes colocated (key, vector) records.
	ColocatedSummarizer = core.ColocatedSummarizer
	// ShardedSketcher sketches one assignment of dispersed data across
	// hash-partitioned shards sketched concurrently; the frozen sketch is
	// bit-identical to AssignmentSketcher's.
	ShardedSketcher = core.ShardedSketcher
	// MultiSketcher fronts one ShardedSketcher per assignment, hashing each
	// offered key once (shared-seed coordination hashes a whole weight
	// vector once).
	MultiSketcher = core.MultiSketcher
	// Lane is one concurrent ingest lane of a ShardedSketcher: a
	// single-producer front-end. Distinct lanes offer concurrently, and the
	// frozen sketch is bit-identical regardless of how the stream was
	// interleaved across lanes.
	Lane = shard.Lane
	// MultiLane is one ingest lane across every assignment of a
	// MultiSketcher, hashing each key once per offer.
	MultiLane = shard.MultiLane
	// PoissonSketcher sketches one assignment with a Poisson-τ sample.
	PoissonSketcher = core.PoissonSketcher
	// PoissonSketch is a Poisson-τ sketch of one weight assignment.
	PoissonSketch = sketch.Poisson
	// Dispersed answers queries over combined per-assignment sketches.
	Dispersed = estimate.Dispersed
	// Colocated answers queries with the inclusive estimators.
	Colocated = estimate.Colocated
	// AWSummary maps sampled keys to unbiased adjusted f-weights.
	AWSummary = estimate.AWSummary
	// AggFunc identifies the aggregate f (single, max, min, L1, ℓ-th largest).
	AggFunc = estimate.AggFunc
	// TopLFunc is a custom top-ℓ dependent aggregate for dispersed queries.
	TopLFunc = estimate.TopLFunc
	// Estimator is a pluggable estimation strategy over dispersed
	// summaries; see AWEstimator and DiscardedEstimator.
	Estimator = estimate.Estimator
	// SampleView is the cross-assignment sample view estimators consume:
	// per union key, the per-assignment weights, ranks, and inclusion
	// thresholds (built with Dispersed.View).
	SampleView = estimate.SampleView
	// UnknownEstimatorError is returned by ParseEstimator for names it
	// does not recognize.
	UnknownEstimatorError = estimate.UnknownEstimatorError
	// BottomK is a bottom-k (order) sketch of one weight assignment.
	BottomK = sketch.BottomK
	// Pred selects a subpopulation by key.
	Pred = dataset.Pred
	// VecPred selects a subpopulation by key and full weight vector
	// (colocated summaries only).
	VecPred = estimate.VecPred
	// Dataset is an in-memory multi-assignment weighted set.
	Dataset = dataset.Dataset
	// DatasetBuilder accumulates (assignment, key, weight) observations.
	DatasetBuilder = dataset.Builder
	// Family is a monotone rank-distribution family.
	Family = rank.Family
	// Coordination is the joint distribution of a key's rank vector.
	Coordination = rank.Coordination
	// SketchCodec selects the wire format of an encoded sketch.
	SketchCodec = sketch.Codec
	// DecodedSketch is a sketch read back from the wire: construction
	// metadata plus the (fingerprint-verified) bottom-k or Poisson sketch.
	DecodedSketch = sketch.Decoded
	// FingerprintMismatchError reports an attempt to combine or ship
	// sketches built under different configurations.
	FingerprintMismatchError = sketch.FingerprintMismatchError
	// CoordinationMismatchError reports shipped sketches whose rank
	// family, coordination mode, or seed disagree.
	CoordinationMismatchError = core.CoordinationMismatchError
)

// Rank families (Section 3 of the paper).
const (
	// IPPS ranks make bottom-k sketches priority samples and Poisson
	// sketches IPPS samples; the recommended default.
	IPPS = rank.IPPS
	// EXP ranks make bottom-k sketches weighted samples without
	// replacement.
	EXP = rank.EXP
)

// Coordination modes (Section 4 of the paper).
const (
	// SharedSeed is the consistent coordination that minimizes summary size
	// (Theorem 4.2) and works for dispersed data; the recommended default.
	SharedSeed = rank.SharedSeed
	// Independent draws independent per-assignment ranks (the baseline).
	Independent = rank.Independent
	// IndependentDifferences is the EXP-only consistent construction whose
	// k-mins collision probability equals weighted Jaccard similarity
	// (Theorem 4.1); colocated data only.
	IndependentDifferences = rank.IndependentDifferences
)

// NewAssignmentSketcher creates a dispersed-model sketcher for assignment b.
// Sketchers sharing cfg produce coordinated samples with no communication.
func NewAssignmentSketcher(cfg Config, b int) *AssignmentSketcher {
	return core.NewAssignmentSketcher(cfg, b)
}

// CombineDispersed merges per-assignment sketches (in assignment order) into
// a queryable dispersed summary. Fingerprinted sketches (everything built
// through the pipeline constructors) are verified against cfg; a sketch
// built under a different Family, Mode, Seed, or assignment index yields a
// *FingerprintMismatchError instead of a silently corrupt summary.
func CombineDispersed(cfg Config, sketches []*BottomK) (*Dispersed, error) {
	return core.CombineDispersed(cfg, sketches)
}

// NewColocatedSummarizer creates a colocated-model summarizer over
// numAssignments weight assignments.
func NewColocatedSummarizer(cfg Config, numAssignments int) *ColocatedSummarizer {
	return core.NewColocatedSummarizer(cfg, numAssignments)
}

// NewDatasetBuilder creates an in-memory dataset builder with the given
// assignment names; Add accumulates raw observations into per-key weights.
func NewDatasetBuilder(assignments ...string) *DatasetBuilder {
	return dataset.NewBuilder(assignments...)
}

// SummarizeDispersed runs the dispersed pipeline over an in-memory dataset.
func SummarizeDispersed(cfg Config, ds *Dataset) *Dispersed {
	return core.SummarizeDispersed(cfg, ds)
}

// NewShardedSketcher creates a concurrent dispersed-model sketcher for
// assignment b: each offered key is hashed once, with the raw hash reused
// for shard routing, threshold pruning (items that certainly miss the
// bottom-k are dropped at the producer with one multiply/compare), and the
// rank of admitted items. Sketch() merges the shard sketches into the exact
// single-stream result — bit-identical, pruning included — and shuts the
// pipeline down. workers ≤ 0 selects GOMAXPROCS.
func NewShardedSketcher(cfg Config, b, shards, workers int) *ShardedSketcher {
	return core.NewShardedSketcher(cfg, b, shards, workers)
}

// NewShardedSketcherLanes is NewShardedSketcher with an explicit number of
// concurrent ingest lanes (lanes ≤ 0 selects GOMAXPROCS): each lane
// returned by Lanes() is a single-producer front-end, and distinct lanes
// may offer concurrently — the frozen sketch is bit-identical to a
// single-stream pass no matter how the stream is split across lanes.
func NewShardedSketcherLanes(cfg Config, b, shards, workers, lanes int) *ShardedSketcher {
	return core.NewShardedSketcherLanes(cfg, b, shards, workers, lanes)
}

// NewMultiSketcher creates the multi-assignment ingest front-end: one
// sharded sketcher per assignment index 0..assignments-1 under cfg. Offer
// ingests dispersed (assignment, key, weight) observations; OfferVector
// ingests a key's whole weight vector, hashing the key exactly once under
// shared-seed coordination. Sketches() freezes all assignments.
func NewMultiSketcher(cfg Config, assignments, shards, workers int) *MultiSketcher {
	return core.NewMultiSketcher(cfg, assignments, shards, workers)
}

// NewMultiSketcherLanes is NewMultiSketcher with an explicit number of
// concurrent ingest lanes per assignment (lanes ≤ 0 selects GOMAXPROCS);
// lane j of every assignment is exposed as one MultiLane via Lanes().
func NewMultiSketcherLanes(cfg Config, assignments, shards, workers, lanes int) *MultiSketcher {
	return core.NewMultiSketcherLanes(cfg, assignments, shards, workers, lanes)
}

// SummarizeDispersedParallel runs the dispersed pipeline with all
// assignments sketched concurrently, each ingested through a sharded
// sketcher with the given shards and per-assignment worker count. The
// summary is identical to SummarizeDispersed's — sharding changes
// wall-clock time, never the sample.
func SummarizeDispersedParallel(cfg Config, ds *Dataset, shards, workers int) *Dispersed {
	return core.SummarizeDispersedParallel(cfg, ds, shards, workers)
}

// SummarizeColocated runs the colocated pipeline over an in-memory dataset.
func SummarizeColocated(cfg Config, ds *Dataset) *Colocated {
	return core.SummarizeColocated(cfg, ds)
}

// SummarizeColocatedFixed runs the colocated pipeline under a fixed budget
// of |W|·k distinct keys, growing the embedded sample size ℓ ≥ k adaptively
// (Section 4). Returns the summary and the chosen ℓ.
func SummarizeColocatedFixed(cfg Config, ds *Dataset) (*Colocated, int) {
	return core.SummarizeColocatedFixed(cfg, ds)
}

// KMinsJaccard estimates the weighted Jaccard similarity of assignments b1
// and b2 with a k-mins sketch under independent-differences ranks
// (Theorem 4.1); cfg.K is the number of coordinates.
func KMinsJaccard(cfg Config, ds *Dataset, b1, b2 int) float64 {
	return core.KMinsJaccard(cfg, ds, b1, b2)
}

// MergeSketches combines bottom-k sketches of *disjoint* shards of one
// assignment into the exact bottom-k sketch of the union — the distributed
// pattern: each site sketches its shard, a combiner merges.
//
// Contract: all sketches must have been built under the same Config —
// identical Family, Mode, Seed, and K — and for the same assignment. This
// is now verified: every sketch built through the pipeline constructors
// carries a fingerprint digesting exactly those parameters, and a mismatch
// (incomparable ranks from different hash functions, or different k)
// returns a *FingerprintMismatchError instead of silently producing a
// sample that is NOT a bottom-k sample of the union. Sketches from legacy
// fingerprint-less constructors are rejected too; use
// MergeSketchesUnchecked when their provenance is known out of band.
// Disjointness remains the caller's responsibility, but its most common
// violation is detected: if the same key is retained by two input sketches
// and both copies survive the merge, the freeze step panics with
// "offered more than once" rather than silently double-counting the key in
// every downstream estimate. An overlapping key that does not survive the
// merge is indistinguishable from duplicate data and goes undetected.
func MergeSketches(sketches ...*BottomK) (*BottomK, error) {
	return sketch.Merge(sketches...)
}

// MergeSketchesUnchecked is MergeSketches without the fingerprint
// verification — for sketches built by fingerprint-less legacy paths whose
// common configuration the caller vouches for. Getting that wrong silently
// corrupts every downstream estimate; prefer MergeSketches.
func MergeSketchesUnchecked(sketches ...*BottomK) *BottomK {
	//cws:allow-unchecked deliberate re-export of the escape hatch: the facade's documented contract passes the provenance obligation to the caller
	return sketch.MergeUnchecked(sketches...)
}

// NewPoissonSketcher creates a dispersed-model Poisson sketcher for
// assignment b with threshold τ; use PoissonTau to target an expected size.
func NewPoissonSketcher(cfg Config, b int, tau float64) *PoissonSketcher {
	return core.NewPoissonSketcher(cfg, b, tau)
}

// PoissonTau returns the threshold τ whose Poisson sketch of the given
// weights has expected size k.
func PoissonTau(family Family, weights []float64, k float64) float64 {
	return core.PoissonTau(family, weights, k)
}

// CombineDispersedPoisson merges per-assignment Poisson sketches into a
// queryable dispersed summary, verifying sketch fingerprints against cfg
// exactly as CombineDispersed does.
func CombineDispersedPoisson(cfg Config, sketches []*PoissonSketch) (*Dispersed, error) {
	return core.CombineDispersedPoisson(cfg, sketches)
}

// Wire codecs for shipping sketches between processes (binary is compact;
// JSON is self-describing text). Both round-trip float64 values exactly,
// including the ±Inf conditioning ranks.
const (
	CodecBinary = sketch.CodecBinary
	CodecJSON   = sketch.CodecJSON
)

// ParseSketchCodec parses a codec name ("binary" or "json").
func ParseSketchCodec(s string) (SketchCodec, error) { return sketch.ParseCodec(s) }

// EncodeSketch writes the bottom-k sketch of assignment b, built under cfg,
// as a self-describing sketch file: a versioned header with the full
// construction configuration and its fingerprint, the conditioning ranks,
// and the entries. The sketch's fingerprint is checked against cfg before
// anything is written, so a file can never misstate its provenance.
func EncodeSketch(w io.Writer, c SketchCodec, cfg Config, b int, s *BottomK) error {
	return sketch.EncodeBottomK(w, c, sketch.WireMeta{Family: cfg.Family, Mode: cfg.Mode, Seed: cfg.Seed, Assignment: b}, s)
}

// EncodePoissonSketch writes the Poisson sketch of assignment b, built
// under cfg, as a sketch file (τ travels in the sketch body).
func EncodePoissonSketch(w io.Writer, c SketchCodec, cfg Config, b int, s *PoissonSketch) error {
	return sketch.EncodePoisson(w, c, sketch.WireMeta{Family: cfg.Family, Mode: cfg.Mode, Seed: cfg.Seed, Assignment: b}, s)
}

// DecodeSketch reads one sketch file (either codec, auto-detected),
// revalidates every structural invariant, and verifies the stored
// fingerprint against the stored configuration. The decoded sketch is
// exactly as trustworthy as one built in-process.
func DecodeSketch(r io.Reader) (*DecodedSketch, error) {
	return sketch.Decode(r)
}

// CombineDecoded assembles decoded sketch files into a queryable dispersed
// summary — the distributed combiner run on shipped summaries alone.
// Bottom-k files sharing an assignment index are shard sketches and are
// merged (fingerprint-verified); the assignments present must cover 0..max.
// Files whose Family, Mode, or Seed disagree are rejected with a
// *CoordinationMismatchError; shard sketches built under a different K or
// Seed are rejected with a *FingerprintMismatchError.
func CombineDecoded(decoded []*DecodedSketch) (*Dispersed, error) {
	return core.CombineDecoded(decoded)
}

// SummarizeDispersedPoisson runs the dispersed Poisson pipeline over an
// in-memory dataset with expected per-assignment sample size cfg.K.
func SummarizeDispersedPoisson(cfg Config, ds *Dataset) *Dispersed {
	return core.SummarizeDispersedPoisson(cfg, ds)
}

// SummarizeColocatedPoisson runs the colocated pipeline with embedded
// Poisson samples of expected size cfg.K per assignment.
func SummarizeColocatedPoisson(cfg Config, ds *Dataset) *Colocated {
	return core.SummarizeColocatedPoisson(cfg, ds)
}

// Online serving layer (cmd/cws-serve).
type (
	// Server is the resident sketch service: an http.Handler that ingests
	// weighted observations into epochs of sharded concurrent sketchers
	// and answers aggregate queries from immutable frozen snapshots. See
	// the internal/server package documentation for the epoch lifecycle
	// and memory model.
	Server = server.Server
	// ServerConfig configures a Server: the sampling Config shared with
	// coordinating sites, the number of assignments, and the per-assignment
	// ingestion shard and worker counts.
	ServerConfig = server.Config
	// ServerOffer is one weighted observation as carried by POST /offer.
	ServerOffer = server.Offer
	// EpochStore is the durable epoch store: it persists every frozen
	// epoch's sketch set (atomic segment writes plus a checksummed
	// manifest), recovers acknowledged epochs bit-identically after any
	// crash, and retains a ring of recent epochs for epoch-range
	// ("time-travel") queries, compacting older ones into a cumulative
	// segment so disk stays bounded. See the internal/store package
	// documentation for the layout and recovery invariants.
	EpochStore = store.Store
	// StoreConfig configures OpenStore: directory, retention ring size,
	// and the sampling configuration the stored sketches must match.
	StoreConfig = store.Config
	// StoreCorruptError reports acknowledged store state that failed
	// validation on recovery (the store refuses to open rather than serve
	// corrupt sketches).
	StoreCorruptError = store.CorruptError
	// StoreMismatchError reports a store opened under a configuration that
	// does not match its contents.
	StoreMismatchError = store.MismatchError
)

// NewServer creates the online sketch server. After any freeze, its query
// answers are bit-identical to running the offline dispersed pipeline over
// every offer so far, and GET /sketch exports wire-codec files that
// cws-merge combines like any other site's. With a StoreConfig-opened
// EpochStore attached, freezes are durable and the server recovers every
// acknowledged epoch on restart; GET /query?epochs=lo..hi answers any
// aggregate over a retained window of epochs. A discarded Server must be
// Closed to release its ingestion workers.
func NewServer(cfg ServerConfig) (*Server, error) {
	return server.New(cfg)
}

// OpenStore opens (creating if absent) a durable epoch store, recovering
// and strictly revalidating every acknowledged epoch. Attach it to a
// server via ServerConfig.Store, or read it offline with cws-merge
// -store. Opening with a zero Sample/Assignments is a read-only open that
// accepts whatever configuration the store holds.
func OpenStore(cfg StoreConfig) (*EpochStore, error) {
	return store.Open(cfg)
}

// Fault injection and the cluster serving layer (cmd/cws-serve -peers).
type (
	// FaultSet is a parsed set of named injectable fault points, threaded
	// through ServerConfig.Faults / ClusterConfig.Faults (and the -faults
	// flag of cws-serve). A nil *FaultSet — the production state — injects
	// nothing and costs one nil check per guarded operation. See the
	// internal/faults package documentation for the spec grammar.
	FaultSet = faults.Set
	// ClusterRouter is the scatter-gather front end over a set of
	// cws-serve peers: exact merged answers when every peer responds,
	// graceful degradation (degraded=true plus a coverage fraction) when
	// some do not, and a two-phase cluster-wide epoch freeze. See the
	// internal/cluster package documentation for the exactness argument
	// and failure policy.
	ClusterRouter = cluster.Router
	// ClusterConfig configures a ClusterRouter: the ordered peer list
	// (the order IS the keyspace partition), this node's index, the
	// shared sampling configuration, and the retry/hedge/health policy.
	ClusterConfig = cluster.Config
)

// ParseFaults parses a fault-injection spec ("point:err,on=3;other:latency=50ms").
// The empty spec returns a nil set, which injects nothing.
func ParseFaults(spec string) (*FaultSet, error) {
	return faults.Parse(spec)
}

// NewClusterRouter creates the scatter-gather router over cfg.Peers.
// Mount it next to a Server (it serves the /cluster/* endpoints), wire
// its OwnsKey into ServerConfig.OwnsKey so the node rejects misrouted
// keys, Start it to run the background health prober, and Close it on
// shutdown.
func NewClusterRouter(cfg ClusterConfig) (*ClusterRouter, error) {
	return cluster.New(cfg)
}

// Observability layer: the metrics registry behind GET /metrics, the
// request-trace ring behind GET /debug/traces, and the zero-allocation
// latency histograms both are built on. One registry and one ring are
// typically shared by every layer of a process (ServerConfig.Metrics/
// Traces, ClusterConfig.Metrics/Traces), so a single scrape covers the
// server, the store, and the cluster router.
type (
	// MetricsRegistry collects named series — counters, gauges, latency
	// histograms — and renders them in the Prometheus text exposition
	// format. It has no process-global state: two servers in one process
	// get two registries.
	MetricsRegistry = obs.Registry
	// TraceRing retains the most recent per-request stage-timing traces.
	TraceRing = obs.TraceRing
	// LatencyHistogram is a fixed-size, lock-free, log-bucketed latency
	// histogram; Record is zero-allocation and safe for any concurrency.
	LatencyHistogram = obs.Histogram
)

// NewMetricsRegistry creates an empty metrics registry. Mount its Handler
// (or pass it as ServerConfig.Metrics — the server mounts GET /metrics
// itself).
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTraceRing creates a ring retaining the last capacity request traces.
func NewTraceRing(capacity int) *TraceRing { return obs.NewTraceRing(capacity) }

// NewLogger builds the structured logger cws-serve's -log-level and
// -log-format flags configure: level is debug, info, warn, or error;
// format is text or json. Components tag their records via the Log config
// fields (ServerConfig.Log, StoreConfig.Log, ClusterConfig.Log).
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	return obs.NewLogger(w, level, format)
}

// NewHTTPServer wraps a handler in an http.Server hardened for the open
// internet: header/read/idle timeouts so idle or deliberately slow
// (Slowloris) connections cannot pin goroutines forever. cws-serve uses
// it; embedders mounting a Server themselves should too.
func NewHTTPServer(addr string, handler http.Handler) *http.Server {
	return server.NewHTTPServer(addr, handler)
}

// Aggregate-function constructors.
var (
	// SingleOf selects f(i) = w^(b)(i).
	SingleOf = estimate.SingleOf
	// MaxOf selects f(i) = w^(maxR)(i) (max-dominance); empty R means all.
	MaxOf = estimate.MaxOf
	// MinOf selects f(i) = w^(minR)(i) (min-dominance); empty R means all.
	MinOf = estimate.MinOf
	// RangeOf selects f(i) = w^(L1 R)(i), the L1 difference contribution.
	RangeOf = estimate.RangeOf
	// TotalOf selects f(i) = w^(sumR)(i) = Σ_{b∈R} w^(b)(i), the total
	// weight across assignments.
	TotalOf = estimate.TotalOf
	// LthLargestOf selects f(i) = w^(ℓth-largest R)(i).
	LthLargestOf = estimate.LthLargestOf
)

// Estimator families for dispersed queries. AWEstimator is the paper's
// adjusted-weight template estimators (s-set/l-set); DiscardedEstimator
// additionally leverages samples the union-threshold conditioning discards
// (arXiv:0903.0625) for tighter totals and pair L1/Jaccard estimates at
// the same sketch size. Both are stateless and safe for concurrent use.
var (
	AWEstimator        = estimate.AWEstimator
	DiscardedEstimator = estimate.DiscardedEstimator
	// ParseEstimator resolves an estimator name ("aw", "discarded"; ""
	// selects the default AW family).
	ParseEstimator = estimate.ParseEstimator
)

// EstimatorNames lists the recognized estimator names for usage messages.
const EstimatorNames = estimate.EstimatorNames

package core

import (
	"math"
	"math/rand"
	"testing"

	"coordsample/internal/dataset"
	"coordsample/internal/estimate"
	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

func synthData(n int, numAsg int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, numAsg)
	for b := range names {
		names[b] = "w" + itoa(b)
	}
	bld := dataset.NewBuilder(names...)
	for i := 0; i < n; i++ {
		key := "key-" + itoa(i)
		base := math.Exp(rng.NormFloat64())
		for b := 0; b < numAsg; b++ {
			if rng.Float64() < 0.25 {
				continue
			}
			bld.Add(b, key, base*(0.5+rng.Float64()))
		}
	}
	return bld.Build()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func TestDispersedPipelineEndToEnd(t *testing.T) {
	ds := synthData(400, 3, 1)
	cfg := Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 42, K: 100}
	d := SummarizeDispersed(cfg, ds)

	R := []int{0, 1, 2}
	truth := ds.SumRange(R, nil)
	got := d.RangeLSet(R).Estimate(nil)
	if math.Abs(got-truth) > 0.35*truth {
		t.Fatalf("L1 estimate %v too far from truth %v", got, truth)
	}
	truthMin := ds.SumMin(R, nil)
	if got := d.MinLSet(R).Estimate(nil); math.Abs(got-truthMin) > 0.35*truthMin {
		t.Fatalf("min estimate %v too far from truth %v", got, truthMin)
	}
}

func TestDispersedSketchersMatchDatasetPipeline(t *testing.T) {
	// Per-assignment sketchers fed independently (as dispersed sites would)
	// must produce byte-identical summaries to the dataset convenience path.
	ds := synthData(200, 2, 2)
	cfg := Config{Family: rank.EXP, Mode: rank.SharedSeed, Seed: 7, K: 20}

	viaDataset := SummarizeDispersed(cfg, ds)

	sketches := make([]*sketch.BottomK, 2)
	for b := 0; b < 2; b++ {
		sk := NewAssignmentSketcher(cfg, b)
		// Feed in reverse order to prove order independence.
		for i := ds.NumKeys() - 1; i >= 0; i-- {
			if w := ds.Weight(b, i); w > 0 {
				sk.Offer(ds.Key(i), w)
			}
		}
		sketches[b] = sk.Sketch()
	}
	viaSites, err := CombineDispersed(cfg, sketches)
	if err != nil {
		t.Fatal(err)
	}

	for b := 0; b < 2; b++ {
		a1 := viaDataset.Sketch(b).Entries()
		a2 := viaSites.Sketch(b).Entries()
		if len(a1) != len(a2) {
			t.Fatalf("assignment %d: sizes %d vs %d", b, len(a1), len(a2))
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Fatalf("assignment %d entry %d: %+v vs %+v", b, i, a1[i], a2[i])
			}
		}
	}
}

func TestColocatedPipelineEndToEnd(t *testing.T) {
	ds := synthData(400, 3, 3)
	for _, cfg := range []Config{
		{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 5, K: 100},
		{Family: rank.IPPS, Mode: rank.Independent, Seed: 5, K: 100},
		{Family: rank.EXP, Mode: rank.IndependentDifferences, Seed: 5, K: 100},
	} {
		c := SummarizeColocated(cfg, ds)
		truth := ds.SumMax(nil, nil)
		got := c.Inclusive(estimate.MaxOf()).Estimate(nil)
		if math.Abs(got-truth) > 0.35*truth {
			t.Fatalf("%v/%v: max estimate %v too far from truth %v", cfg.Family, cfg.Mode, got, truth)
		}
	}
}

func TestColocatedCompaction(t *testing.T) {
	cfg := Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 9, K: 8}
	s := NewColocatedSummarizer(cfg, 2)
	rng := rand.New(rand.NewSource(4))
	const n = 20000
	for i := 0; i < n; i++ {
		s.Offer("key-"+itoa(i), []float64{rng.Float64() * 100, rng.Float64() * 100})
	}
	// After many offers, retained vectors must be far below n: memory is
	// proportional to the summary, not the stream.
	if got := s.RetainedVectors(); got > 2000 {
		t.Fatalf("retained %d vectors after %d offers; compaction ineffective", got, n)
	}
	// The summary must still find a vector for every sampled key.
	sum := s.Summary()
	if sum.DistinctKeys() < cfg.K {
		t.Fatalf("summary too small: %d", sum.DistinctKeys())
	}
}

func TestFixedDistinctBudget(t *testing.T) {
	ds := synthData(500, 3, 6)
	cfg := Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 11, K: 20}
	sum, ell := SummarizeColocatedFixed(cfg, ds)
	w := ds.NumAssignments()
	if ell < cfg.K || ell > cfg.K*w {
		t.Fatalf("ℓ = %d outside [k, |W|k] = [%d, %d]", ell, cfg.K, cfg.K*w)
	}
	if got := sum.DistinctKeys(); got > w*cfg.K {
		t.Fatalf("distinct keys %d exceed budget %d", got, w*cfg.K)
	}
	// The paper's lower bound |W|(k−1)+1 holds when the data is large and
	// assignments differ; with 500 keys and churn this binds.
	if got := sum.DistinctKeys(); got < w*(cfg.K-1)+1 {
		t.Fatalf("distinct keys %d below |W|(k−1)+1 = %d", got, w*(cfg.K-1)+1)
	}
	// Estimates from the trimmed summary remain sane.
	truth := ds.SumMax(nil, nil)
	got := sum.Inclusive(estimate.MaxOf()).Estimate(nil)
	if math.Abs(got-truth) > 0.5*truth {
		t.Fatalf("fixed-budget max estimate %v too far from %v", got, truth)
	}
}

func TestFitDistinctBudgetUnionProperty(t *testing.T) {
	// Directly verify maximality: union at ℓ within budget, union at ℓ+1
	// above it (when ℓ < m).
	ds := synthData(300, 2, 8)
	cfg := Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 13, K: 15}
	m := cfg.K * ds.NumAssignments()
	big := cfg
	big.K = m
	d := SummarizeDispersed(big, ds)
	sketches := []*sketch.BottomK{d.Sketch(0).(*sketch.BottomK), d.Sketch(1).(*sketch.BottomK)}
	ell, trimmed := FitDistinctBudget(sketches, cfg.K)
	budget := cfg.K * len(sketches)

	if got := len(sketch.UnionDistinctKeys(trimmed)); got > budget {
		t.Fatalf("union at ℓ=%d has %d keys > budget %d", ell, got, budget)
	}
	if ell < m {
		next := []*sketch.BottomK{sketches[0].Prefix(ell + 1), sketches[1].Prefix(ell + 1)}
		if got := len(sketch.UnionDistinctKeys(next)); got <= budget {
			t.Fatalf("ℓ=%d not maximal: ℓ+1 union %d still ≤ %d", ell, got, budget)
		}
	}
}

func TestKMinsJaccard(t *testing.T) {
	ds := synthData(200, 2, 10)
	want := ds.WeightedJaccard([]int{0, 1}, nil)
	cfg := Config{Family: rank.EXP, Mode: rank.IndependentDifferences, Seed: 17, K: 3000}
	got := KMinsJaccard(cfg, ds, 0, 1)
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("k-mins Jaccard = %v, want ≈ %v", got, want)
	}
}

func TestUniformBaselineWorseOnSkewedData(t *testing.T) {
	// Section 9.2: replacing weights with units makes the min estimator's
	// variance blow up on skewed data. Compare MSE over seeds.
	ds := synthData(300, 2, 12)
	R := []int{0, 1}
	truth := ds.SumMin(R, nil)
	const trials = 150
	const k = 25
	var mseW, mseU float64
	for trial := 0; trial < trials; trial++ {
		cfg := Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: uint64(trial) + 1, K: k}
		gw := SummarizeDispersed(cfg, ds).MinLSet(R).Estimate(nil)
		mseW += (gw - truth) * (gw - truth)
		gu := estimate.UniformMin(rank.IPPS, SummarizeUniformBaseline(cfg, ds), R).Estimate(nil)
		mseU += (gu - truth) * (gu - truth)
	}
	if mseU < 1.5*mseW {
		t.Fatalf("uniform baseline MSE %v should far exceed weighted MSE %v", mseU/trials, mseW/trials)
	}
}

func TestConfigValidation(t *testing.T) {
	assertPanics(t, func() { Config{Family: rank.IPPS, K: 0}.validate() })
	assertPanics(t, func() { Config{Family: rank.IPPS, Mode: rank.IndependentDifferences, K: 1}.validate() })
	assertPanics(t, func() {
		NewAssignmentSketcher(Config{Family: rank.EXP, Mode: rank.IndependentDifferences, K: 4}, 0)
	})
	assertPanics(t, func() { NewColocatedSummarizer(Config{Family: rank.IPPS, K: 4}, 0) })
	s := NewColocatedSummarizer(Config{Family: rank.IPPS, K: 4}, 2)
	assertPanics(t, func() { s.Offer("x", []float64{1}) })
	assertPanics(t, func() { FitDistinctBudget(nil, 1) })
	sk1 := sketch.BottomKFromRanks(4, []string{"a"}, []float64{0.1}, []float64{1})
	sk2 := sketch.BottomKFromRanks(5, []string{"a"}, []float64{0.1}, []float64{1})
	assertPanics(t, func() { FitDistinctBudget([]*sketch.BottomK{sk1, sk2}, 2) })
	assertPanics(t, func() { FitDistinctBudget([]*sketch.BottomK{sk1}, 9) })
}

// TestConfigCheck: the non-panicking validation servers and CLIs use for
// user-supplied configuration agrees with validate()'s rules.
func TestConfigCheck(t *testing.T) {
	for _, bad := range []Config{
		{Family: rank.IPPS, K: 0},
		{Family: rank.IPPS, K: -2},
		{Family: 99, K: 4},
		{Family: rank.IPPS, Mode: 99, K: 4},
		{Family: rank.IPPS, Mode: rank.IndependentDifferences, K: 4},
	} {
		if err := bad.Check(); err == nil {
			t.Errorf("Check accepted invalid %+v", bad)
		}
	}
	for _, good := range []Config{
		{Family: rank.IPPS, Mode: rank.SharedSeed, K: 1},
		{Family: rank.EXP, Mode: rank.Independent, Seed: 7, K: 100},
		{Family: rank.EXP, Mode: rank.IndependentDifferences, K: 8},
	} {
		if err := good.Check(); err != nil {
			t.Errorf("Check rejected valid %+v: %v", good, err)
		}
	}
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestZeroWeightKeysNeverStored(t *testing.T) {
	cfg := Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1, K: 4}
	s := NewColocatedSummarizer(cfg, 2)
	s.Offer("dead", []float64{0, 0})
	if s.RetainedVectors() != 0 {
		t.Fatal("all-zero key should not be retained")
	}
	s.Offer("alive", []float64{1, 0})
	if s.RetainedVectors() != 1 {
		t.Fatal("positive key should be retained")
	}
	sum := s.Summary()
	if sum.DistinctKeys() != 1 {
		t.Fatalf("summary keys = %d", sum.DistinctKeys())
	}
}

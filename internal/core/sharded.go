package core

import (
	"runtime"
	"sync"

	"coordsample/internal/dataset"
	"coordsample/internal/estimate"
	"coordsample/internal/rank"
	"coordsample/internal/shard"
	"coordsample/internal/sketch"
)

// ShardedSketcher is the concurrent, hash-partitioned counterpart of
// AssignmentSketcher: same stream contract, bit-identical frozen sketch,
// with the threshold-pruned producer fast path (see package shard).
type ShardedSketcher = shard.Sketcher

// MultiSketcher is the multi-assignment ingest front-end: one sharded
// sketcher per assignment, hashing each key once per offer (and, under
// SharedSeed coordination, once per weight vector).
type MultiSketcher = shard.MultiSketcher

// NewShardedSketcher creates a sharded dispersed-model sketcher for
// assignment index assignment: keys are hash-partitioned across disjoint
// shards, each sketched by its own builder behind worker goroutines, and
// Sketch() merges into the exact single-stream result.
// workers ≤ 0 selects GOMAXPROCS; the worker count is capped at shards.
func NewShardedSketcher(cfg Config, assignment, shards, workers int) *ShardedSketcher {
	cfg.validate()
	if cfg.Mode == rank.IndependentDifferences {
		panic("core: independent-differences coordination requires colocated weights")
	}
	return shard.NewSketcher(cfg.Assigner(), assignment, cfg.K, shards, workers)
}

// NewShardedSketcherLanes is NewShardedSketcher with an explicit number of
// concurrent ingest lanes (independent producer front-ends; lanes ≤ 0
// selects GOMAXPROCS). The frozen sketch is bit-identical regardless of
// how offers are interleaved across lanes.
func NewShardedSketcherLanes(cfg Config, assignment, shards, workers, lanes int) *ShardedSketcher {
	cfg.validate()
	if cfg.Mode == rank.IndependentDifferences {
		panic("core: independent-differences coordination requires colocated weights")
	}
	return shard.NewSketcherLanes(cfg.Assigner(), assignment, cfg.K, shards, workers, lanes)
}

// NewMultiSketcher creates the multi-assignment front-end over assignments
// sharded sketchers under cfg — the ingest fan-in the online server uses.
func NewMultiSketcher(cfg Config, assignments, shards, workers int) *MultiSketcher {
	cfg.validate()
	if cfg.Mode == rank.IndependentDifferences {
		panic("core: independent-differences coordination requires colocated weights")
	}
	return shard.NewMultiSketcher(cfg.Assigner(), assignments, cfg.K, shards, workers)
}

// NewMultiSketcherLanes is NewMultiSketcher with an explicit number of
// concurrent ingest lanes per assignment (lanes ≤ 0 selects GOMAXPROCS).
// Lane j of every assignment is exposed as one MultiLane via Lanes(), so a
// producer pinned to lane j still hashes each key once per offer.
func NewMultiSketcherLanes(cfg Config, assignments, shards, workers, lanes int) *MultiSketcher {
	cfg.validate()
	if cfg.Mode == rank.IndependentDifferences {
		panic("core: independent-differences coordination requires colocated weights")
	}
	return shard.NewMultiSketcherLanes(cfg.Assigner(), assignments, cfg.K, shards, workers, lanes)
}

// SummarizeDispersedParallel is the concurrent counterpart of
// SummarizeDispersed: assignments are sketched concurrently by a worker
// pool, and each assignment's stream is ingested through a ShardedSketcher
// with the given shards and workersPerAssignment. The resulting summary is
// identical to the sequential pipeline — per-assignment sketches are
// bit-identical, so every estimator sees the same sampled keys with the
// same adjusted weights.
//
// Total concurrency is roughly min(GOMAXPROCS, |W|) × workersPerAssignment;
// for datasets with many assignments, workersPerAssignment = 1 with
// shards > 1 already overlaps the per-assignment hashing work.
func SummarizeDispersedParallel(cfg Config, ds *dataset.Dataset, shards, workersPerAssignment int) *estimate.Dispersed {
	cfg.validate()
	numAsg := ds.NumAssignments()
	sketches := make([]*sketch.BottomK, numAsg)

	pool := runtime.GOMAXPROCS(0)
	if pool > numAsg {
		pool = numAsg
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for p := 0; p < pool; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := range work {
				sk := NewShardedSketcher(cfg, b, shards, workersPerAssignment)
				col := ds.Column(b)
				for i := 0; i < ds.NumKeys(); i++ {
					if col[i] > 0 {
						sk.Offer(ds.Key(i), col[i])
					}
				}
				sketches[b] = sk.Sketch()
			}
		}()
	}
	for b := 0; b < numAsg; b++ {
		work <- b
	}
	close(work)
	wg.Wait()
	return mustCombineDispersed(cfg, sketches)
}

package core

import (
	"math"
	"testing"

	"coordsample/internal/estimate"
	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

// runMC estimates a statistic over many hash seeds and asserts the sample
// mean lies within 4.5 standard errors of truth.
func runMC(t *testing.T, name string, trials int, truth float64, one func(seed uint64) float64) {
	t.Helper()
	var sum, sumSq float64
	for trial := 0; trial < trials; trial++ {
		v := one(uint64(trial) + 1)
		sum += v
		sumSq += v * v
	}
	n := float64(trials)
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	se := math.Sqrt(variance / n)
	if math.Abs(mean-truth) > 4.5*se+1e-9*math.Abs(truth)+1e-12 {
		t.Fatalf("%s: mean %v, truth %v, se %v", name, mean, truth, se)
	}
}

func TestDispersedPoissonUnbiased(t *testing.T) {
	ds := synthData(80, 3, 21)
	R := ds.AllAssignments()
	cases := []struct {
		name  string
		truth float64
		est   func(d *estimate.Dispersed) estimate.AWSummary
	}{
		{"max", ds.SumMax(R, nil), func(d *estimate.Dispersed) estimate.AWSummary { return d.Max(nil) }},
		{"min-s", ds.SumMin(R, nil), func(d *estimate.Dispersed) estimate.AWSummary { return d.MinSSet(nil) }},
		{"min-l", ds.SumMin(R, nil), func(d *estimate.Dispersed) estimate.AWSummary { return d.MinLSet(nil) }},
		{"L1-l", ds.SumRange(R, nil), func(d *estimate.Dispersed) estimate.AWSummary { return d.RangeLSet(nil) }},
		{"single", ds.SumSingle(1, nil), func(d *estimate.Dispersed) estimate.AWSummary { return d.Single(1) }},
	}
	for _, mode := range []rank.Coordination{rank.SharedSeed, rank.Independent} {
		for _, c := range cases {
			if mode == rank.Independent && (c.name == "L1-l") {
				// Signed estimator; still unbiased, included below.
				continue
			}
			c := c
			runMC(t, "poisson/"+mode.String()+"/"+c.name, 2500, c.truth, func(seed uint64) float64 {
				cfg := Config{Family: rank.IPPS, Mode: mode, Seed: seed, K: 20}
				return c.est(SummarizeDispersedPoisson(cfg, ds)).Estimate(nil)
			})
		}
	}
}

func TestDispersedPoissonExpectedSize(t *testing.T) {
	ds := synthData(400, 2, 22)
	const k = 30
	const trials = 200
	total := 0
	for trial := 0; trial < trials; trial++ {
		cfg := Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: uint64(trial) + 1, K: k}
		d := SummarizeDispersedPoisson(cfg, ds)
		total += len(d.Sketch(0).Entries())
	}
	mean := float64(total) / trials
	if math.Abs(mean-k) > 2 {
		t.Fatalf("mean Poisson sample size %v, want ≈ %d", mean, k)
	}
}

func TestColocatedPoissonUnbiased(t *testing.T) {
	ds := synthData(80, 3, 23)
	R := ds.AllAssignments()
	for _, mode := range []struct {
		m rank.Coordination
		f rank.Family
	}{{rank.SharedSeed, rank.IPPS}, {rank.Independent, rank.IPPS}, {rank.IndependentDifferences, rank.EXP}} {
		mode := mode
		runMC(t, "poisson-colocated/"+mode.m.String()+"/max", 2000, ds.SumMax(R, nil), func(seed uint64) float64 {
			cfg := Config{Family: mode.f, Mode: mode.m, Seed: seed, K: 18}
			return SummarizeColocatedPoisson(cfg, ds).Inclusive(estimate.MaxOf()).Estimate(nil)
		})
		runMC(t, "poisson-colocated/"+mode.m.String()+"/single", 2000, ds.SumSingle(0, nil), func(seed uint64) float64 {
			cfg := Config{Family: mode.f, Mode: mode.m, Seed: seed, K: 18}
			return SummarizeColocatedPoisson(cfg, ds).Inclusive(estimate.SingleOf(0)).Estimate(nil)
		})
	}
}

func TestPoissonTheorem42Sharing(t *testing.T) {
	// Theorem 4.2 is proved for Poisson sketches: shared-seed minimizes the
	// expected number of distinct keys in the union.
	ds := synthData(300, 3, 24)
	const trials = 60
	mean := func(mode rank.Coordination) float64 {
		total := 0
		for trial := 0; trial < trials; trial++ {
			cfg := Config{Family: rank.IPPS, Mode: mode, Seed: uint64(trial) + 1, K: 25}
			total += SummarizeColocatedPoisson(cfg, ds).DistinctKeys()
		}
		return float64(total) / trials
	}
	if s, i := mean(rank.SharedSeed), mean(rank.Independent); s >= i {
		t.Fatalf("shared-seed Poisson summary size %v should be below independent %v", s, i)
	}
}

func TestPoissonExactWhenTauInfinite(t *testing.T) {
	// k ≥ support ⇒ τ = +Inf ⇒ every key sampled with p = 1 ⇒ exact.
	ds := synthData(30, 2, 25)
	cfg := Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 5, K: 64}
	d := SummarizeDispersedPoisson(cfg, ds)
	if got := d.Max(nil).Estimate(nil); math.Abs(got-ds.SumMax(ds.AllAssignments(), nil)) > 1e-9 {
		t.Fatalf("exact max = %v, want %v", got, ds.SumMax(ds.AllAssignments(), nil))
	}
	c := SummarizeColocatedPoisson(cfg, ds)
	if got := c.Inclusive(estimate.RangeOf()).Estimate(nil); math.Abs(got-ds.SumRange(ds.AllAssignments(), nil)) > 1e-9 {
		t.Fatalf("exact L1 = %v", got)
	}
}

func TestPoissonSketcherValidation(t *testing.T) {
	assertPanics(t, func() {
		NewPoissonSketcher(Config{Family: rank.EXP, Mode: rank.IndependentDifferences, K: 4}, 0, 0.5)
	})
	assertPanics(t, func() {
		NewPoissonSketcher(Config{Family: rank.IPPS, K: 4}, 0, 0)
	})
}

func TestPoissonVsBottomKComparableVariance(t *testing.T) {
	// RC bottom-k variance is bounded by HT Poisson at expected size k+1;
	// empirically the two designs should land in the same ballpark.
	ds := synthData(300, 1, 26)
	truth := ds.SumSingle(0, nil)
	const trials = 300
	const k = 20
	var mseB, mseP float64
	tau := PoissonTau(rank.IPPS, ds.Column(0), k)
	for trial := 0; trial < trials; trial++ {
		cfg := Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: uint64(trial) + 1, K: k}
		gb := SummarizeDispersed(cfg, ds).Single(0).Estimate(nil)
		mseB += (gb - truth) * (gb - truth)
		gp := PoissonSingle(cfg, ds, 0, tau).Estimate(nil)
		mseP += (gp - truth) * (gp - truth)
	}
	if mseB > 5*mseP || mseP > 5*mseB {
		t.Fatalf("bottom-k MSE %v and Poisson MSE %v should be comparable", mseB/trials, mseP/trials)
	}
}

var _ = sketch.SolveTau // document the dependency used via core helpers

package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"coordsample/internal/dataset"
	"coordsample/internal/estimate"
	"coordsample/internal/rank"
)

// shardedTestDataset builds a sparse heavy-tailed multi-assignment dataset.
func shardedTestDataset(numKeys, numAsg int, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, numAsg)
	for b := range names {
		names[b] = fmt.Sprintf("w%d", b)
	}
	bld := dataset.NewBuilder(names...)
	for i := 0; i < numKeys; i++ {
		key := fmt.Sprintf("key-%06d", i)
		base := math.Exp(rng.NormFloat64() * 2)
		for b := 0; b < numAsg; b++ {
			if rng.Float64() < 0.75 {
				bld.Add(b, key, base*(0.5+rng.Float64()))
			}
		}
	}
	return bld.Build()
}

// TestShardedSketcherMatchesAssignmentSketcher pins the equivalence at the
// core layer: the concurrent sketcher and the sequential one freeze
// bit-identical sketches for every shard count.
func TestShardedSketcherMatchesAssignmentSketcher(t *testing.T) {
	ds := shardedTestDataset(4000, 3, 13)
	cfg := Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 99, K: 128}
	for b := 0; b < ds.NumAssignments(); b++ {
		single := NewAssignmentSketcher(cfg, b)
		col := ds.Column(b)
		for i := 0; i < ds.NumKeys(); i++ {
			if col[i] > 0 {
				single.Offer(ds.Key(i), col[i])
			}
		}
		want := single.Sketch()
		for _, shards := range []int{1, 2, 7, 16} {
			sk := NewShardedSketcher(cfg, b, shards, 4)
			for i := 0; i < ds.NumKeys(); i++ {
				if col[i] > 0 {
					sk.Offer(ds.Key(i), col[i])
				}
			}
			got := sk.Sketch()
			if got.KthRank() != want.KthRank() || got.Threshold() != want.Threshold() {
				t.Fatalf("b=%d shards=%d: conditioning ranks (%v, %v), want (%v, %v)",
					b, shards, got.KthRank(), got.Threshold(), want.KthRank(), want.Threshold())
			}
			ge, we := got.Entries(), want.Entries()
			if len(ge) != len(we) {
				t.Fatalf("b=%d shards=%d: %d entries, want %d", b, shards, len(ge), len(we))
			}
			for i := range ge {
				if ge[i] != we[i] {
					t.Fatalf("b=%d shards=%d: entry %d = %+v, want %+v", b, shards, i, ge[i], we[i])
				}
			}
		}
	}
}

// TestSummarizeDispersedParallelMatchesSequential checks the full-pipeline
// equivalence: every estimator evaluated from the parallel summary agrees
// exactly (not approximately) with the sequential one.
func TestSummarizeDispersedParallelMatchesSequential(t *testing.T) {
	ds := shardedTestDataset(3000, 4, 17)
	cfg := Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 5, K: 64}
	want := SummarizeDispersed(cfg, ds)
	// Estimate() sums a map whose iteration order Go randomizes, so even two
	// sequential runs differ in the last ulp; the sharding guarantee is
	// per-key: the same keys are sampled with the same adjusted weights.
	for _, shards := range []int{1, 2, 7, 16} {
		got := SummarizeDispersedParallel(cfg, ds, shards, 2)
		summaries := []struct {
			name        string
			gotS, wantS estimate.AWSummary
		}{
			{"single0", got.Single(0), want.Single(0)},
			{"single3", got.Single(3), want.Single(3)},
			{"max", got.Max(nil), want.Max(nil)},
			{"min", got.MinLSet(nil), want.MinLSet(nil)},
			{"L1", got.RangeLSet(nil), want.RangeLSet(nil)},
		}
		for _, c := range summaries {
			gk, wk := c.gotS.Keys(), c.wantS.Keys()
			if len(gk) != len(wk) {
				t.Fatalf("shards=%d %s: %d sampled keys, want %d", shards, c.name, len(gk), len(wk))
			}
			for i, key := range gk {
				if key != wk[i] {
					t.Fatalf("shards=%d %s: key %d = %q, want %q", shards, c.name, i, key, wk[i])
				}
				if c.gotS.AdjustedWeight(key) != c.wantS.AdjustedWeight(key) {
					t.Errorf("shards=%d %s: adjusted weight of %q = %v, want %v",
						shards, c.name, key, c.gotS.AdjustedWeight(key), c.wantS.AdjustedWeight(key))
				}
			}
		}
		if got.DistinctKeys(nil) != want.DistinctKeys(nil) {
			t.Errorf("shards=%d: distinct keys %d != %d", shards, got.DistinctKeys(nil), want.DistinctKeys(nil))
		}
	}
}

// TestEstimatorSeamShardInvariance: the Estimator seam must be blind to how
// the sketches were built. For every shard count and coordination mode,
// both estimator families answer over the sharded parallel pipeline with
// byte-identical summaries (keys, adjusted weights, AND variances) to the
// sequential pipeline — the shard dimension cannot leak a single ulp into
// estimation.
func TestEstimatorSeamShardInvariance(t *testing.T) {
	ds := shardedTestDataset(2000, 2, 23)
	aggs := []struct {
		name string
		f    estimate.AggFunc
	}{
		{"single0", estimate.SingleOf(0)},
		{"max", estimate.MaxOf()},
		{"min", estimate.MinOf()},
		{"L1", estimate.RangeOf()},
		{"total", estimate.TotalOf()},
		{"lth2", estimate.LthLargestOf(2)},
	}
	for _, mode := range []rank.Coordination{rank.SharedSeed, rank.Independent} {
		cfg := Config{Family: rank.IPPS, Mode: mode, Seed: 5, K: 48}
		want := SummarizeDispersed(cfg, ds)
		for _, shards := range []int{1, 2, 7, 16} {
			got := SummarizeDispersedParallel(cfg, ds, shards, 2)
			for _, est := range []estimate.Estimator{estimate.AWEstimator, estimate.DiscardedEstimator} {
				for _, c := range aggs {
					gs, ws := est.Summary(got, c.f), est.Summary(want, c.f)
					gk, wk := gs.Keys(), ws.Keys()
					if len(gk) != len(wk) {
						t.Fatalf("%v shards=%d %s/%s: %d sampled keys, want %d",
							mode, shards, est.Name(), c.name, len(gk), len(wk))
					}
					for i, key := range gk {
						if key != wk[i] {
							t.Fatalf("%v shards=%d %s/%s: key %d = %q, want %q",
								mode, shards, est.Name(), c.name, i, key, wk[i])
						}
						if math.Float64bits(gs.AdjustedWeight(key)) != math.Float64bits(ws.AdjustedWeight(key)) ||
							math.Float64bits(gs.VarianceOf(key)) != math.Float64bits(ws.VarianceOf(key)) {
							t.Errorf("%v shards=%d %s/%s: %q = (%v, var %v), want (%v, var %v)",
								mode, shards, est.Name(), c.name, key,
								gs.AdjustedWeight(key), gs.VarianceOf(key),
								ws.AdjustedWeight(key), ws.VarianceOf(key))
						}
					}
				}
			}
		}
	}
}

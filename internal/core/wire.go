package core

import (
	"fmt"

	"coordsample/internal/estimate"
	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

// CoordinationMismatchError reports shipped sketches whose construction
// configurations cannot coordinate: their rank family, coordination mode,
// or hash seed disagree, so their samples are not coordinated samples of
// anything and no cross-assignment estimate over them is meaningful.
// (Same-assignment conflicts — different K or seed among shard sketches —
// surface as *sketch.FingerprintMismatchError from the merge instead.)
type CoordinationMismatchError struct {
	// Index is the position (among the decoded inputs) of the sketch that
	// disagrees with input 0.
	Index     int
	Want, Got sketch.WireMeta
}

func (e *CoordinationMismatchError) Error() string {
	return fmt.Sprintf(
		"core: sketch %d was built under %v/%v/seed=%d, want %v/%v/seed=%d: the samples are not coordinated and cannot be combined",
		e.Index, e.Got.Family, e.Got.Mode, e.Got.Seed, e.Want.Family, e.Want.Mode, e.Want.Seed)
}

// CombineDecoded assembles decoded sketch files into a queryable dispersed
// summary — the paper's distributed combiner operating on shipped
// summaries alone, with no access to the data or to the sketching sites.
//
// All files must share the coordination configuration (Family, Mode, Seed;
// verified, *CoordinationMismatchError otherwise) and one sketch kind.
// Bottom-k files for the same assignment index are shard sketches and are
// merged (sketch.Merge, which verifies their fingerprints — a shard built
// under a different K or seed fails loudly); the assignment indexes
// present must then cover 0..max contiguously, in any file order. Poisson
// sketches cannot be shard-merged, so at most one file per assignment is
// accepted.
func CombineDecoded(decoded []*sketch.Decoded) (*estimate.Dispersed, error) {
	if len(decoded) == 0 {
		return nil, fmt.Errorf("core: no sketches to combine")
	}
	want := decoded[0].Meta
	if want.Mode == rank.IndependentDifferences {
		return nil, fmt.Errorf("core: independent-differences sketches require colocated weights and cannot be combined from shipped per-assignment files")
	}
	kind := decoded[0].BottomK != nil
	maxAssignment := -1
	for i, d := range decoded {
		m := d.Meta
		if m.Family != want.Family || m.Mode != want.Mode || m.Seed != want.Seed {
			return nil, &CoordinationMismatchError{Index: i, Want: want, Got: m}
		}
		if (d.BottomK != nil) != kind {
			return nil, fmt.Errorf("core: sketch %d mixes Poisson and bottom-k files", i)
		}
		if m.Assignment > maxAssignment {
			maxAssignment = m.Assignment
		}
	}
	// n files can cover assignments 0..max only if max < n; checking before
	// sizing anything by maxAssignment keeps a single corrupt or crafted
	// file's huge index from becoming a huge allocation.
	if maxAssignment >= len(decoded) {
		return nil, fmt.Errorf("core: no sketch for some assignment below %d (the %d files cannot cover 0..%d)", maxAssignment, len(decoded), maxAssignment)
	}

	if kind {
		shards := make([][]*sketch.BottomK, maxAssignment+1)
		for _, d := range decoded {
			shards[d.Meta.Assignment] = append(shards[d.Meta.Assignment], d.BottomK)
		}
		sketches := make([]*sketch.BottomK, maxAssignment+1)
		for b, parts := range shards {
			if len(parts) == 0 {
				return nil, fmt.Errorf("core: no sketch for assignment %d (assignments present must cover 0..%d)", b, maxAssignment)
			}
			// Shard sketches must come from disjoint key sets. For shipped
			// files that contract cannot be trusted (the classic mistake is
			// listing the same file twice via overlapping globs), so retained
			// overlaps are rejected here as an error — the in-process merge
			// would catch a surviving duplicate only by panicking. The scan
			// runs only when the fingerprints already agree, so a
			// configuration conflict is still reported as the (more
			// fundamental) FingerprintMismatchError from the merge below.
			if len(parts) > 1 && sameFingerprints(parts) {
				seen := make(map[string]bool)
				for _, p := range parts {
					for _, e := range p.Entries() {
						if seen[e.Key] {
							return nil, fmt.Errorf("core: key %q appears in two shard sketches of assignment %d: shard files must cover disjoint key sets (same file listed twice?)", e.Key, b)
						}
						seen[e.Key] = true
					}
				}
			}
			merged, err := sketch.Merge(parts...)
			if err != nil {
				return nil, fmt.Errorf("core: merging shard sketches of assignment %d: %w", b, err)
			}
			sketches[b] = merged
		}
		cfg := Config{Family: want.Family, Mode: want.Mode, Seed: want.Seed, K: sketches[0].K()}
		return CombineDispersed(cfg, sketches)
	}

	sketches := make([]*sketch.Poisson, maxAssignment+1)
	for i, d := range decoded {
		b := d.Meta.Assignment
		if sketches[b] != nil {
			return nil, fmt.Errorf("core: two Poisson sketches for assignment %d (Poisson sketches cannot be shard-merged); sketch %d is a duplicate", b, i)
		}
		sketches[b] = d.Poisson
	}
	for b, s := range sketches {
		if s == nil {
			return nil, fmt.Errorf("core: no sketch for assignment %d (assignments present must cover 0..%d)", b, maxAssignment)
		}
	}
	// K is irrelevant for Poisson estimation (τ travels in each sketch);
	// any positive value satisfies the config validation.
	cfg := Config{Family: want.Family, Mode: want.Mode, Seed: want.Seed, K: 1}
	return CombineDispersedPoisson(cfg, sketches)
}

// sameFingerprints reports whether all sketches carry one fingerprint.
func sameFingerprints(parts []*sketch.BottomK) bool {
	for _, p := range parts {
		if p.Fingerprint() != parts[0].Fingerprint() {
			return false
		}
	}
	return true
}

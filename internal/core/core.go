// Package core is the coordinated-weighted-sampling framework — the paper's
// primary contribution assembled into end-to-end pipelines.
//
// Two pipelines mirror the two data models of Section 4:
//
//   - Dispersed: each weight assignment (time period, location) runs its own
//     AssignmentSketcher over its aggregated (key, weight) stream, with no
//     communication; coordination comes from the shared hash seed in Config.
//     The per-assignment sketches are later combined into an
//     estimate.Dispersed summary that answers single- and
//     multiple-assignment subpopulation queries.
//
//   - Colocated: a single ColocatedSummarizer consumes (key, weight-vector)
//     records, embeds one bottom-k sample per assignment, and attaches the
//     full vector to every included key, yielding an estimate.Colocated
//     summary with the inclusive estimators of Section 6. A
//     fixed-distinct-keys variant grows the per-assignment sample size ℓ ≥ k
//     adaptively under a total budget of |W|·k distinct keys.
package core

import (
	"fmt"
	"slices"

	"coordsample/internal/dataset"
	"coordsample/internal/estimate"
	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

// Config selects the rank family, coordination mode, hash seed, and sample
// size shared by all components of a summarization run. Sites summarizing
// different assignments of the same data must use identical Family, Mode,
// and Seed for their samples to be coordinated.
type Config struct {
	Family rank.Family
	Mode   rank.Coordination
	Seed   uint64
	K      int
}

// Assigner returns the rank assigner realized by the configuration.
func (c Config) Assigner() rank.Assigner {
	return rank.Assigner{Family: c.Family, Mode: c.Mode, Seed: c.Seed}
}

// Check reports whether the configuration is usable: k ≥ 1, a known rank
// family and coordination mode, and independent-differences only paired
// with EXP ranks (its construction is EXP-specific, Theorem 4.1). Library
// pipelines panic on a bad Config (programming error); servers and CLIs
// validating user input should call Check and fail gracefully.
func (c Config) Check() error {
	if c.K < 1 {
		return fmt.Errorf("core: invalid sample size k=%d", c.K)
	}
	if c.Family != rank.IPPS && c.Family != rank.EXP {
		return fmt.Errorf("core: unknown rank family %d", c.Family)
	}
	switch c.Mode {
	case rank.SharedSeed, rank.Independent:
	case rank.IndependentDifferences:
		if c.Family != rank.EXP {
			return fmt.Errorf("core: independent-differences coordination requires EXP ranks")
		}
	default:
		return fmt.Errorf("core: unknown coordination mode %d", c.Mode)
	}
	return nil
}

func (c Config) validate() {
	if err := c.Check(); err != nil {
		panic(err.Error())
	}
}

// --- Dispersed pipeline ---

// AssignmentSketcher builds the bottom-k sketch of one weight assignment
// from its aggregated (key, weight) stream, independently of every other
// assignment — the decoupling the dispersed model mandates. Keys must be
// pre-aggregated (each key offered at most once per assignment).
type AssignmentSketcher struct {
	assigner   rank.Assigner
	assignment int
	builder    *sketch.BottomKBuilder
}

// NewAssignmentSketcher creates a sketcher for assignment index b.
func NewAssignmentSketcher(cfg Config, assignment int) *AssignmentSketcher {
	cfg.validate()
	if cfg.Mode == rank.IndependentDifferences {
		panic("core: independent-differences coordination requires colocated weights")
	}
	a := cfg.Assigner()
	return &AssignmentSketcher{
		assigner:   a,
		assignment: assignment,
		builder:    sketch.NewBottomKBuilderWithFingerprint(cfg.K, a.Fingerprint(assignment, cfg.K)),
	}
}

// Offer presents one aggregated key with its weight in this assignment.
func (s *AssignmentSketcher) Offer(key string, weight float64) {
	s.builder.Offer(key, s.assigner.Rank(key, s.assignment, weight), weight)
}

// Sketch snapshots the current bottom-k sketch.
func (s *AssignmentSketcher) Sketch() *sketch.BottomK { return s.builder.Sketch() }

// CombineDispersed merges independently built per-assignment sketches into a
// dispersed summary. The sketches must come from AssignmentSketchers sharing
// cfg (same family, mode, and seed), in assignment-index order.
//
// Every fingerprinted sketch is verified against the configuration: a
// sketch built under a different Family, Mode, Seed, or assignment index
// yields a *sketch.FingerprintMismatchError (with Index naming the
// offending position) instead of a summary whose estimates would be
// silently corrupt. Per-assignment sample sizes may differ from cfg.K (the
// estimators support bottom-k^(b) sketches); sketches without a
// fingerprint — legacy construction paths such as BottomKFromRanks — are
// accepted unverified.
func CombineDispersed(cfg Config, sketches []*sketch.BottomK) (*estimate.Dispersed, error) {
	cfg.validate()
	a := cfg.Assigner()
	for b, s := range sketches {
		if fp := s.Fingerprint(); fp != 0 {
			if want := a.Fingerprint(b, s.K()); fp != want {
				return nil, &sketch.FingerprintMismatchError{Index: b, Want: want, Got: fp}
			}
		}
	}
	return estimate.NewDispersed(a, sketches), nil
}

// mustCombineDispersed is CombineDispersed for sketches the pipeline just
// built itself, where a fingerprint mismatch is impossible.
func mustCombineDispersed(cfg Config, sketches []*sketch.BottomK) *estimate.Dispersed {
	d, err := CombineDispersed(cfg, sketches)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	return d
}

// SummarizeDispersed runs the full dispersed pipeline over an in-memory
// dataset: one AssignmentSketcher per assignment, then combination. Each
// assignment's pass touches only that assignment's column, exactly as
// physically dispersed sites would.
func SummarizeDispersed(cfg Config, ds *dataset.Dataset) *estimate.Dispersed {
	cfg.validate()
	sketches := make([]*sketch.BottomK, ds.NumAssignments())
	for b := range sketches {
		sk := NewAssignmentSketcher(cfg, b)
		col := ds.Column(b)
		for i := 0; i < ds.NumKeys(); i++ {
			if col[i] > 0 {
				sk.Offer(ds.Key(i), col[i])
			}
		}
		sketches[b] = sk.Sketch()
	}
	return mustCombineDispersed(cfg, sketches)
}

// --- Colocated pipeline ---

// ColocatedSummarizer consumes colocated (key, weight-vector) records in one
// pass and produces a summary embedding a bottom-k sample per assignment.
// Weight vectors of candidate keys are retained and periodically compacted
// down to the keys still present in some embedded sample, keeping memory
// proportional to the summary, not the data.
type ColocatedSummarizer struct {
	cfg      Config
	assigner rank.Assigner
	builders []*sketch.BottomKBuilder
	vectors  map[string][]float64
	ranks    []float64
	offers   int
	compact  int
}

// NewColocatedSummarizer creates a summarizer for numAssignments weight
// assignments.
func NewColocatedSummarizer(cfg Config, numAssignments int) *ColocatedSummarizer {
	cfg.validate()
	if numAssignments < 1 {
		panic("core: need at least one assignment")
	}
	builders := make([]*sketch.BottomKBuilder, numAssignments)
	for b := range builders {
		builders[b] = sketch.NewBottomKBuilder(cfg.K)
	}
	compact := 4 * cfg.K * numAssignments
	if compact < 1024 {
		compact = 1024
	}
	return &ColocatedSummarizer{
		cfg:      cfg,
		assigner: cfg.Assigner(),
		builders: builders,
		vectors:  make(map[string][]float64),
		ranks:    make([]float64, numAssignments),
		compact:  compact,
	}
}

// Offer presents one key with its full weight vector. Keys must be
// pre-aggregated (offered at most once).
func (s *ColocatedSummarizer) Offer(key string, weights []float64) {
	if len(weights) != len(s.builders) {
		panic("core: weight vector length mismatch")
	}
	s.assigner.RankVectorInto(s.ranks, key, weights)
	positive := false
	for b, bld := range s.builders {
		bld.Offer(key, s.ranks[b], weights[b])
		if weights[b] > 0 {
			positive = true
		}
	}
	if positive {
		s.vectors[key] = append([]float64(nil), weights...)
	}
	s.offers++
	if s.offers%s.compact == 0 {
		s.compactVectors()
	}
}

// compactVectors drops stored weight vectors for keys that have fallen out
// of every embedded sample.
func (s *ColocatedSummarizer) compactVectors() {
	live := make(map[string]bool, len(s.builders)*s.cfg.K)
	for _, bld := range s.builders {
		for _, e := range bld.Sketch().Entries() {
			live[e.Key] = true
		}
	}
	for key := range s.vectors {
		if !live[key] {
			delete(s.vectors, key)
		}
	}
}

// RetainedVectors reports how many weight vectors are currently stored
// (diagnostic for the compaction behaviour).
func (s *ColocatedSummarizer) RetainedVectors() int { return len(s.vectors) }

// Summary freezes the summarizer into a colocated summary with the inclusive
// estimators of Section 6.
func (s *ColocatedSummarizer) Summary() *estimate.Colocated {
	sketches := make([]*sketch.BottomK, len(s.builders))
	for b, bld := range s.builders {
		sketches[b] = bld.Sketch()
	}
	return estimate.NewColocated(s.assigner, sketches, func(key string) []float64 {
		vec, ok := s.vectors[key]
		if !ok {
			panic(fmt.Sprintf("core: missing weight vector for sampled key %q", key))
		}
		return vec
	})
}

// SummarizeColocated runs the colocated pipeline over an in-memory dataset.
func SummarizeColocated(cfg Config, ds *dataset.Dataset) *estimate.Colocated {
	s := NewColocatedSummarizer(cfg, ds.NumAssignments())
	vec := make([]float64, ds.NumAssignments())
	for i := 0; i < ds.NumKeys(); i++ {
		ds.WeightVectorInto(vec, i)
		s.Offer(ds.Key(i), vec)
	}
	return s.Summary()
}

// --- Fixed-distinct-keys colocated summaries (Section 4) ---

// FitDistinctBudget implements the fixed-total-size colocated variant: given
// bottom-m sketches (all with the same m) and the per-assignment base size
// k, it returns the largest ℓ ∈ [k, m] such that the union of the bottom-ℓ
// prefixes has at most |W|·k distinct keys, together with the trimmed
// sketches. The total number of distinct keys is then within
// [|W|(k−1)+1, |W|k] whenever the data is large enough.
func FitDistinctBudget(sketches []*sketch.BottomK, k int) (int, []*sketch.BottomK) {
	if len(sketches) == 0 {
		panic("core: no sketches")
	}
	m := sketches[0].K()
	for _, s := range sketches {
		if s.K() != m {
			panic("core: sketches must share the same size")
		}
	}
	if k < 1 || k > m {
		panic(fmt.Sprintf("core: budget base k=%d out of range for m=%d", k, m))
	}
	budget := len(sketches) * k

	// firstInclusion[key] = smallest ℓ at which key enters the union of the
	// bottom-ℓ prefixes = min over assignments of its 1-based position.
	firstInclusion := make(map[string]int)
	for _, s := range sketches {
		for pos, e := range s.Entries() {
			l := pos + 1
			if cur, ok := firstInclusion[e.Key]; !ok || l < cur {
				firstInclusion[e.Key] = l
			}
		}
	}
	positions := make([]int, 0, len(firstInclusion))
	for _, l := range firstInclusion {
		positions = append(positions, l)
	}
	slices.Sort(positions)
	// unionSize(ℓ) = #positions ≤ ℓ is nondecreasing; find the largest ℓ ≤ m
	// with unionSize(ℓ) ≤ budget.
	ell := k
	for l := k; l <= m; l++ {
		n, _ := slices.BinarySearch(positions, l+1)
		if n > budget {
			break
		}
		ell = l
	}
	trimmed := make([]*sketch.BottomK, len(sketches))
	for b, s := range sketches {
		trimmed[b] = s.Prefix(ell)
	}
	return ell, trimmed
}

// SummarizeColocatedFixed runs the colocated pipeline with a fixed budget of
// |W|·k distinct keys: sketches are built at size m = |W|·k and trimmed to
// the largest feasible ℓ. Returns the summary and the chosen ℓ.
func SummarizeColocatedFixed(cfg Config, ds *dataset.Dataset) (*estimate.Colocated, int) {
	cfg.validate()
	w := ds.NumAssignments()
	big := cfg
	big.K = cfg.K * w
	s := NewColocatedSummarizer(big, w)
	vec := make([]float64, w)
	for i := 0; i < ds.NumKeys(); i++ {
		ds.WeightVectorInto(vec, i)
		s.Offer(ds.Key(i), vec)
	}
	sketches := make([]*sketch.BottomK, w)
	for b, bld := range s.builders {
		sketches[b] = bld.Sketch()
	}
	ell, trimmed := FitDistinctBudget(sketches, cfg.K)
	summary := estimate.NewColocated(s.assigner, trimmed, func(key string) []float64 {
		vec, ok := s.vectors[key]
		if !ok {
			panic(fmt.Sprintf("core: missing weight vector for sampled key %q", key))
		}
		return vec
	})
	return summary, ell
}

// --- k-mins similarity (Theorem 4.1) ---

// KMinsJaccard estimates the weighted Jaccard similarity of assignments b1
// and b2 of a colocated dataset with a k-coordinate k-mins sketch under
// independent-differences consistent ranks: the fraction of coordinates
// whose minimum-rank key coincides is unbiased for the similarity.
func KMinsJaccard(cfg Config, ds *dataset.Dataset, b1, b2 int) float64 {
	cfg.validate()
	a := rank.Assigner{Family: rank.EXP, Mode: rank.IndependentDifferences, Seed: cfg.Seed}
	bld := sketch.NewKMinsSetBuilder(a, 2, cfg.K)
	vec := make([]float64, 2)
	for i := 0; i < ds.NumKeys(); i++ {
		vec[0] = ds.Weight(b1, i)
		vec[1] = ds.Weight(b2, i)
		bld.Offer(ds.Key(i), vec)
	}
	s := bld.Sketches()
	return sketch.CommonMinFraction(s[0], s[1])
}

// --- Poisson sketches (single assignment) ---

// PoissonTau returns the threshold τ for which a Poisson sketch of the given
// weights has expected size k (re-exported from the sketch layer for
// callers sizing Poisson summaries against bottom-k ones).
func PoissonTau(family rank.Family, weights []float64, k float64) float64 {
	return sketch.SolveTau(family, weights, k)
}

// PoissonSingle builds a Poisson-τ sketch of assignment b under cfg's rank
// assigner and returns its Horvitz–Thompson AW-summary — the baseline
// design bottom-k sketches are compared against (Section 3).
func PoissonSingle(cfg Config, ds *dataset.Dataset, b int, tau float64) estimate.AWSummary {
	cfg.validate()
	a := cfg.Assigner()
	bld := sketch.NewPoissonBuilder(tau)
	col := ds.Column(b)
	for i := 0; i < ds.NumKeys(); i++ {
		if col[i] > 0 {
			bld.Offer(ds.Key(i), a.Rank(ds.Key(i), b, col[i]), col[i])
		}
	}
	return estimate.PoissonHT(bld.Sketch(), cfg.Family)
}

// --- Unweighted baseline (Section 9.2) ---

// SummarizeUniformBaseline builds the prior-work baseline: coordinated
// bottom-k sketches over unit weights with the true weights carried as
// attributes. The returned sketches feed estimate.UniformMin.
func SummarizeUniformBaseline(cfg Config, ds *dataset.Dataset) []*sketch.BottomK {
	cfg.validate()
	a := cfg.Assigner()
	sketches := make([]*sketch.BottomK, ds.NumAssignments())
	for b := range sketches {
		bld := sketch.NewBottomKBuilder(cfg.K)
		col := ds.Column(b)
		for i := 0; i < ds.NumKeys(); i++ {
			if col[i] > 0 {
				bld.Offer(ds.Key(i), a.Rank(ds.Key(i), b, 1), col[i])
			}
		}
		sketches[b] = bld.Sketch()
	}
	return sketches
}

package core

import (
	"fmt"

	"coordsample/internal/dataset"
	"coordsample/internal/estimate"
	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

// PoissonSketcher builds the Poisson-τ sketch of one weight assignment from
// its aggregated (key, weight) stream — the Poisson counterpart of
// AssignmentSketcher. Coordination across assignments again comes entirely
// from the shared hash seed in cfg; τ may differ per assignment.
type PoissonSketcher struct {
	assigner   rank.Assigner
	assignment int
	builder    *sketch.PoissonBuilder
}

// NewPoissonSketcher creates a Poisson sketcher for assignment b with
// threshold τ (use PoissonTau to target an expected sample size).
func NewPoissonSketcher(cfg Config, assignment int, tau float64) *PoissonSketcher {
	cfg.validate()
	if cfg.Mode == rank.IndependentDifferences {
		panic("core: independent-differences coordination requires colocated weights")
	}
	a := cfg.Assigner()
	return &PoissonSketcher{
		assigner:   a,
		assignment: assignment,
		builder:    sketch.NewPoissonBuilderWithFingerprint(tau, a.Fingerprint(assignment, 0)),
	}
}

// Offer presents one aggregated key with its weight in this assignment.
func (s *PoissonSketcher) Offer(key string, weight float64) {
	s.builder.Offer(key, s.assigner.Rank(key, s.assignment, weight), weight)
}

// Sketch snapshots the current Poisson sketch.
func (s *PoissonSketcher) Sketch() *sketch.Poisson { return s.builder.Sketch() }

// CombineDispersedPoisson merges per-assignment Poisson sketches built with
// cfg into a dispersed summary supporting the same estimator suite as
// bottom-k summaries (the Poisson expressions substitute τ^(b) for
// r^(b)_k(I∖{i})). Fingerprinted sketches are verified against cfg exactly
// as in CombineDispersed (Poisson fingerprints digest Family/Mode/Seed and
// the assignment index; τ is data-dependent and carried by the sketch).
func CombineDispersedPoisson(cfg Config, sketches []*sketch.Poisson) (*estimate.Dispersed, error) {
	cfg.validate()
	a := cfg.Assigner()
	for b, s := range sketches {
		if fp := s.Fingerprint(); fp != 0 {
			if want := a.Fingerprint(b, 0); fp != want {
				return nil, &sketch.FingerprintMismatchError{Index: b, Want: want, Got: fp}
			}
		}
	}
	return estimate.NewDispersedPoisson(a, sketches), nil
}

// SummarizeDispersedPoisson runs the dispersed Poisson pipeline over an
// in-memory dataset, solving each assignment's τ^(b) for expected sample
// size cfg.K.
func SummarizeDispersedPoisson(cfg Config, ds *dataset.Dataset) *estimate.Dispersed {
	cfg.validate()
	sketches := make([]*sketch.Poisson, ds.NumAssignments())
	for b := range sketches {
		tau := sketch.SolveTau(cfg.Family, ds.Column(b), float64(cfg.K))
		sk := NewPoissonSketcher(cfg, b, tau)
		col := ds.Column(b)
		for i := 0; i < ds.NumKeys(); i++ {
			if col[i] > 0 {
				sk.Offer(ds.Key(i), col[i])
			}
		}
		sketches[b] = sk.Sketch()
	}
	d, err := CombineDispersedPoisson(cfg, sketches)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err)) // sketches built above share cfg
	}
	return d
}

// SummarizeColocatedPoisson runs the colocated pipeline with embedded
// Poisson samples of expected size cfg.K per assignment: the inclusive
// estimators of Section 6 apply with τ^(b) as the conditioning thresholds.
func SummarizeColocatedPoisson(cfg Config, ds *dataset.Dataset) *estimate.Colocated {
	cfg.validate()
	w := ds.NumAssignments()
	if w < 1 {
		panic("core: need at least one assignment")
	}
	taus := make([]float64, w)
	for b := 0; b < w; b++ {
		taus[b] = sketch.SolveTau(cfg.Family, ds.Column(b), float64(cfg.K))
	}
	assigner := cfg.Assigner()
	builders := make([]*sketch.PoissonBuilder, w)
	for b := range builders {
		builders[b] = sketch.NewPoissonBuilder(taus[b])
	}
	ranks := make([]float64, w)
	vec := make([]float64, w)
	vectors := make(map[string][]float64)
	for i := 0; i < ds.NumKeys(); i++ {
		key := ds.Key(i)
		ds.WeightVectorInto(vec, i)
		assigner.RankVectorInto(ranks, key, vec)
		sampled := false
		for b := range builders {
			builders[b].Offer(key, ranks[b], vec[b])
			if vec[b] > 0 && ranks[b] < taus[b] {
				sampled = true
			}
		}
		if sampled {
			vectors[key] = append([]float64(nil), vec...)
		}
	}
	sketches := make([]*sketch.Poisson, w)
	for b := range builders {
		sketches[b] = builders[b].Sketch()
	}
	return estimate.NewColocatedPoisson(assigner, sketches, func(key string) []float64 {
		v, ok := vectors[key]
		if !ok {
			panic(fmt.Sprintf("core: missing weight vector for sampled key %q", key))
		}
		return v
	})
}

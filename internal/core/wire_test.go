package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

// shipAndDecode encodes each (assignment, sketch) pair as cws-sketch -out
// would and decodes it back, simulating the process boundary.
func shipAndDecode(t *testing.T, cfg Config, sketches []*sketch.BottomK) []*sketch.Decoded {
	t.Helper()
	decoded := make([]*sketch.Decoded, len(sketches))
	for b, s := range sketches {
		var buf bytes.Buffer
		meta := sketch.WireMeta{Family: cfg.Family, Mode: cfg.Mode, Seed: cfg.Seed, Assignment: b}
		if err := sketch.EncodeBottomK(&buf, sketch.CodecBinary, meta, s); err != nil {
			t.Fatal(err)
		}
		d, err := sketch.DecodeBytes(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		decoded[b] = d
	}
	return decoded
}

// TestCombineDecodedBitIdentical is the acceptance criterion: sketches
// shipped through the wire, merged, and queried in a "combiner process"
// must answer bit-identically to the in-process SummarizeDispersed
// pipeline over the same data — including shard sketches per assignment.
func TestCombineDecodedBitIdentical(t *testing.T) {
	ds := synthData(500, 2, 7)
	cfg := Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 13, K: 64}
	inProcess := SummarizeDispersed(cfg, ds)

	// Each assignment sketched at its own "site", then shipped.
	siteSketches := make([]*sketch.BottomK, 2)
	for b := 0; b < 2; b++ {
		sk := NewAssignmentSketcher(cfg, b)
		col := ds.Column(b)
		for i := 0; i < ds.NumKeys(); i++ {
			if col[i] > 0 {
				sk.Offer(ds.Key(i), col[i])
			}
		}
		siteSketches[b] = sk.Sketch()
	}
	shipped, err := CombineDecoded(shipAndDecode(t, cfg, siteSketches))
	if err != nil {
		t.Fatal(err)
	}

	pred := func(key string) bool { return key[len(key)-1] == '3' }
	checks := []struct {
		name      string
		got, want float64
	}{
		{"single", shipped.Single(0).Estimate(nil), inProcess.Single(0).Estimate(nil)},
		{"max", shipped.Max(nil).Estimate(nil), inProcess.Max(nil).Estimate(nil)},
		{"min", shipped.MinLSet(nil).Estimate(nil), inProcess.MinLSet(nil).Estimate(nil)},
		{"L1", shipped.RangeLSet(nil).Estimate(nil), inProcess.RangeLSet(nil).Estimate(nil)},
		{"L1-pred", shipped.RangeLSet(nil).Estimate(pred), inProcess.RangeLSet(nil).Estimate(pred)},
		{"2nd-largest", shipped.LthLargest(nil, 2).Estimate(nil), inProcess.LthLargest(nil, 2).Estimate(nil)},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Fatalf("%s: shipped %v != in-process %v (must be bit-identical)", c.name, c.got, c.want)
		}
	}
}

// TestCombineDecodedMergesShards: two shard files per assignment (as two
// sites sketching disjoint halves of one assignment would write) merge to
// the exact whole-assignment sketch.
func TestCombineDecodedMergesShards(t *testing.T) {
	ds := synthData(400, 2, 9)
	cfg := Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 5, K: 32}
	inProcess := SummarizeDispersed(cfg, ds)

	var decoded []*sketch.Decoded
	for b := 0; b < 2; b++ {
		halves := []*AssignmentSketcher{NewAssignmentSketcher(cfg, b), NewAssignmentSketcher(cfg, b)}
		col := ds.Column(b)
		for i := 0; i < ds.NumKeys(); i++ {
			if col[i] > 0 {
				halves[i%2].Offer(ds.Key(i), col[i])
			}
		}
		for _, h := range halves {
			var buf bytes.Buffer
			meta := sketch.WireMeta{Family: cfg.Family, Mode: cfg.Mode, Seed: cfg.Seed, Assignment: b}
			if err := sketch.EncodeBottomK(&buf, sketch.CodecJSON, meta, h.Sketch()); err != nil {
				t.Fatal(err)
			}
			d, err := sketch.DecodeBytes(buf.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			decoded = append(decoded, d)
		}
	}
	// File order must not matter.
	decoded[0], decoded[3] = decoded[3], decoded[0]
	shipped, err := CombineDecoded(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := shipped.RangeLSet(nil).Estimate(nil), inProcess.RangeLSet(nil).Estimate(nil); got != want {
		t.Fatalf("shard-merged L1 %v != in-process %v", got, want)
	}
}

// TestCombineDecodedRejectsMismatches is the loud-failure direction of the
// acceptance criterion, for every deviating parameter.
func TestCombineDecodedRejectsMismatches(t *testing.T) {
	ds := synthData(300, 1, 11)
	base := Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 5, K: 32}
	build := func(cfg Config, b int) *sketch.Decoded {
		sk := NewAssignmentSketcher(cfg, b)
		col := ds.Column(0)
		for i := 0; i < ds.NumKeys(); i++ {
			if col[i] > 0 {
				sk.Offer(ds.Key(i), col[i])
			}
		}
		var buf bytes.Buffer
		meta := sketch.WireMeta{Family: cfg.Family, Mode: cfg.Mode, Seed: cfg.Seed, Assignment: b}
		if err := sketch.EncodeBottomK(&buf, sketch.CodecBinary, meta, sk.Sketch()); err != nil {
			t.Fatal(err)
		}
		d, err := sketch.DecodeBytes(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	good := build(base, 0)

	// Cross-assignment coordination conflicts: typed CoordinationMismatchError.
	var coordErr *CoordinationMismatchError
	for name, cfg := range map[string]Config{
		"seed":   {Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 6, K: 32},
		"family": {Family: rank.EXP, Mode: rank.SharedSeed, Seed: 5, K: 32},
		"mode":   {Family: rank.IPPS, Mode: rank.Independent, Seed: 5, K: 32},
	} {
		_, err := CombineDecoded([]*sketch.Decoded{good, build(cfg, 1)})
		if !errors.As(err, &coordErr) {
			t.Fatalf("%s mismatch: got %v, want *CoordinationMismatchError", name, err)
		}
	}

	// Same-assignment shard conflicts (different K, or different seed with
	// everything else equal): typed FingerprintMismatchError from the merge.
	var fpErr *sketch.FingerprintMismatchError
	diffK := base
	diffK.K = 64
	if _, err := CombineDecoded([]*sketch.Decoded{good, build(diffK, 0)}); !errors.As(err, &fpErr) {
		t.Fatalf("shard K mismatch: got %v, want *FingerprintMismatchError", err)
	}

	// Missing assignment coverage.
	if _, err := CombineDecoded([]*sketch.Decoded{good, build(base, 2)}); err == nil {
		t.Fatal("gap in assignment coverage not rejected")
	}
}

// TestCombineDispersedRejectsMismatchedSketch: the in-process combiner
// rejects a fingerprinted sketch built under a different configuration.
func TestCombineDispersedRejectsMismatchedSketch(t *testing.T) {
	ds := synthData(300, 2, 13)
	cfg := Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 5, K: 32}
	other := cfg
	other.Seed = 99

	okSketch := NewAssignmentSketcher(cfg, 0)
	badSketch := NewAssignmentSketcher(other, 1) // wrong seed
	swapped := NewAssignmentSketcher(cfg, 1)     // right config for b=1
	for i := 0; i < ds.NumKeys(); i++ {
		if w := ds.Weight(0, i); w > 0 {
			okSketch.Offer(ds.Key(i), w)
		}
		if w := ds.Weight(1, i); w > 0 {
			badSketch.Offer(ds.Key(i), w)
			swapped.Offer(ds.Key(i), w)
		}
	}

	var fpErr *sketch.FingerprintMismatchError
	if _, err := CombineDispersed(cfg, []*sketch.BottomK{okSketch.Sketch(), badSketch.Sketch()}); !errors.As(err, &fpErr) {
		t.Fatalf("wrong-seed sketch: got %v, want *FingerprintMismatchError", err)
	} else if fpErr.Index != 1 {
		t.Fatalf("offending index %d, want 1", fpErr.Index)
	}
	// Sketches in the wrong assignment slot are caught too.
	if _, err := CombineDispersed(cfg, []*sketch.BottomK{swapped.Sketch(), okSketch.Sketch()}); !errors.As(err, &fpErr) {
		t.Fatalf("swapped assignment order: got %v, want *FingerprintMismatchError", err)
	}
	// The correct order passes.
	if _, err := CombineDispersed(cfg, []*sketch.BottomK{okSketch.Sketch(), swapped.Sketch()}); err != nil {
		t.Fatalf("well-formed combine rejected: %v", err)
	}
}

// TestCombineDispersedPoissonRejectsMismatch mirrors the bottom-k check
// for the Poisson pipeline.
func TestCombineDispersedPoissonRejectsMismatch(t *testing.T) {
	ds := synthData(300, 2, 17)
	cfg := Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 5, K: 16}
	other := cfg
	other.Seed = 99

	tau0 := PoissonTau(cfg.Family, ds.Column(0), float64(cfg.K))
	tau1 := PoissonTau(cfg.Family, ds.Column(1), float64(cfg.K))
	ok0 := NewPoissonSketcher(cfg, 0, tau0)
	bad1 := NewPoissonSketcher(other, 1, tau1)
	for i := 0; i < ds.NumKeys(); i++ {
		if w := ds.Weight(0, i); w > 0 {
			ok0.Offer(ds.Key(i), w)
		}
		if w := ds.Weight(1, i); w > 0 {
			bad1.Offer(ds.Key(i), w)
		}
	}
	var fpErr *sketch.FingerprintMismatchError
	if _, err := CombineDispersedPoisson(cfg, []*sketch.Poisson{ok0.Sketch(), bad1.Sketch()}); !errors.As(err, &fpErr) {
		t.Fatalf("wrong-seed Poisson sketch: got %v, want *FingerprintMismatchError", err)
	}
}

// TestCombineDecodedRejectsHugeAssignmentGap: a single file claiming a
// large assignment index must be rejected by the coverage check before
// any index-sized allocation happens.
func TestCombineDecodedRejectsHugeAssignmentGap(t *testing.T) {
	cfg := Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 5, K: 8}
	big := 1 << 30
	sk := NewAssignmentSketcher(cfg, big)
	sk.Offer("a", 1)
	var buf bytes.Buffer
	meta := sketch.WireMeta{Family: cfg.Family, Mode: cfg.Mode, Seed: cfg.Seed, Assignment: big}
	if err := sketch.EncodeBottomK(&buf, sketch.CodecBinary, meta, sk.Sketch()); err != nil {
		t.Fatal(err)
	}
	d, err := sketch.DecodeBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CombineDecoded([]*sketch.Decoded{d}); err == nil {
		t.Fatal("uncoverable assignment index accepted")
	}
}

// TestCombineDecodedRejectsOverlappingShardFiles: listing the same shard
// file twice (the overlapping-glob mistake) must produce an error, not
// the in-process duplicate-key panic.
func TestCombineDecodedRejectsOverlappingShardFiles(t *testing.T) {
	cfg := Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 5, K: 8}
	sk := NewAssignmentSketcher(cfg, 0)
	for i := 0; i < 50; i++ {
		sk.Offer("k"+itoa(i), 1+float64(i))
	}
	var buf bytes.Buffer
	meta := sketch.WireMeta{Family: cfg.Family, Mode: cfg.Mode, Seed: cfg.Seed, Assignment: 0}
	if err := sketch.EncodeBottomK(&buf, sketch.CodecBinary, meta, sk.Sketch()); err != nil {
		t.Fatal(err)
	}
	d1, err := sketch.DecodeBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	d2, err := sketch.DecodeBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	_, err = CombineDecoded([]*sketch.Decoded{d1, d2})
	if err == nil || !strings.Contains(err.Error(), "disjoint") {
		t.Fatalf("overlapping shard files: got %v, want disjointness error", err)
	}
}

package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"coordsample/internal/dataset"
)

// RatingsConfig parameterizes the Netflix-style ratings generator: keys are
// movies, assignments are months, and the weight of a movie in a month is
// its number of ratings.
type RatingsConfig struct {
	// Movies is the catalog size (the paper's set has 17,700).
	Movies int
	// Months is the number of monthly assignments (the paper uses 12).
	Months int
	// MeanRatings is the target mean ratings per movie per month before
	// skew; totals follow the popularity distribution.
	MeanRatings float64
	// Drift controls the month-over-month popularity autocorrelation
	// (0 = frozen popularity, larger = faster drift).
	Drift float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultRatingsConfig mirrors the Netflix 2005 slice at laptop scale,
// including the paper's late-year dip in total ratings (Table 3 shows
// November–December totals at roughly half the yearly average).
func DefaultRatingsConfig() RatingsConfig {
	return RatingsConfig{Movies: 4000, Months: 12, MeanRatings: 250, Drift: 0.35, Seed: 200512}
}

// Scale returns a copy with Movies multiplied by f (minimum 1).
func (c RatingsConfig) Scale(f float64) RatingsConfig {
	c.Movies = scaleInt(c.Movies, f)
	return c
}

// monthFactor reproduces the seasonal shape of Table 3: steady through the
// year with a marked dip in months 11 and 12.
func monthFactor(m int) float64 {
	switch m {
	case 10:
		return 0.75
	case 11:
		return 0.5
	default:
		return 0.95 + 0.05*math.Sin(float64(m))
	}
}

// Ratings generates the monthly ratings dataset: movie popularity is
// Zipf-like with an AR(1) log-drift per movie across months, so consecutive
// months are strongly correlated (high weighted Jaccard) while distant
// months diverge — the structure Figures 3 and 6 exercise as |R| grows.
func Ratings(cfg RatingsConfig) *dataset.Dataset {
	if cfg.Movies < 1 || cfg.Months < 1 {
		panic(fmt.Sprintf("datagen: invalid ratings config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	names := make([]string, cfg.Months)
	for m := range names {
		names[m] = fmt.Sprintf("month%02d", m+1)
	}
	keys := make([]string, cfg.Movies)
	cols := make([][]float64, cfg.Months)
	for m := range cols {
		cols[m] = make([]float64, cfg.Movies)
	}
	// Zipf popularity over ranks; shuffle ranks to decorrelate from IDs.
	perm := rng.Perm(cfg.Movies)
	for i := 0; i < cfg.Movies; i++ {
		keys[i] = fmt.Sprintf("movie-%05d", i)
		pop := cfg.MeanRatings * float64(cfg.Movies) * zipfWeight(perm[i]+1, 1.05, cfg.Movies)
		logDrift := 0.0
		// Release-date effect: some movies only appear mid-year.
		debut := 0
		if rng.Float64() < 0.15 {
			debut = rng.Intn(cfg.Months)
		}
		for m := 0; m < cfg.Months; m++ {
			logDrift = (1-cfg.Drift)*logDrift + cfg.Drift*rng.NormFloat64()
			if m < debut {
				continue
			}
			lam := pop * monthFactor(m) * math.Exp(logDrift)
			n := poisson(rng, lam)
			cols[m][i] = float64(n)
		}
	}
	return dataset.FromColumns(names, keys, cols)
}

// zipfWeight returns the normalized Zipf(s) weight of rank r out of n.
func zipfWeight(r int, s float64, n int) float64 {
	// Normalization via the truncated zeta sum; n is small enough to sum.
	z := 0.0
	for i := 1; i <= n; i++ {
		z += math.Pow(float64(i), -s)
	}
	return math.Pow(float64(r), -s) / z
}

// poisson draws a Poisson variate; for large λ it uses the normal
// approximation (adequate for count weights).
func poisson(rng *rand.Rand, lam float64) int {
	if lam <= 0 {
		return 0
	}
	if lam > 50 {
		n := int(math.Round(lam + math.Sqrt(lam)*rng.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lam)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"coordsample/internal/dataset"
)

// StocksConfig parameterizes the stock-quotes generator: keys are ticker
// symbols; each trading day has six numeric attributes (open, high, low,
// close, adjusted close, volume).
type StocksConfig struct {
	// Tickers is the number of symbols (the paper's set has ~8,900).
	Tickers int
	// Days is the number of trading days (the paper uses October 2008: 23).
	Days int
	// DailyVol is the daily log-return volatility. October 2008 was a crash
	// month; the paper's daily "high" totals decline ~20% over the month.
	DailyVol float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultStocksConfig mirrors the October 2008 set at laptop scale.
func DefaultStocksConfig() StocksConfig {
	return StocksConfig{Tickers: 2000, Days: 23, DailyVol: 0.045, Seed: 200810}
}

// Scale returns a copy with Tickers multiplied by f (minimum 1).
func (c StocksConfig) Scale(f float64) StocksConfig {
	c.Tickers = scaleInt(c.Tickers, f)
	return c
}

// StockAttr enumerates the six daily attributes.
type StockAttr int

const (
	Open StockAttr = iota
	High
	Low
	Close
	AdjClose
	Volume
)

// String names the attribute as in Table 4.
func (a StockAttr) String() string {
	switch a {
	case Open:
		return "open"
	case High:
		return "high"
	case Low:
		return "low"
	case Close:
		return "close"
	case AdjClose:
		return "adj_close"
	case Volume:
		return "volume"
	default:
		return fmt.Sprintf("StockAttr(%d)", int(a))
	}
}

// AllStockAttrs lists the six attributes in Table 4 order.
func AllStockAttrs() []StockAttr {
	return []StockAttr{Open, High, Low, Close, AdjClose, Volume}
}

// StockDay holds one ticker's attributes for every day.
type StockDay struct {
	Ticker string
	Attrs  [][]float64 // [day][attribute]
}

// Stocks generates the ticker table. Prices follow a geometric random walk
// with a common bear-market drift (October 2008), so the same attribute on
// consecutive days — and different price attributes on the same day — are
// extremely correlated, exactly the regime where coordinated sketches share
// almost all keys. Volume is log-normal and much noisier, and a small
// fraction of ticker-days have zero volume (the paper reports ≥93%
// positive), while virtually all price attributes stay positive.
func Stocks(cfg StocksConfig) []StockDay {
	if cfg.Tickers < 1 || cfg.Days < 1 {
		panic(fmt.Sprintf("datagen: invalid stocks config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]StockDay, cfg.Tickers)

	// Common market factor: October 2008 lost ~20% with high volatility.
	market := make([]float64, cfg.Days)
	level := 0.0
	for d := range market {
		level += -0.01 + 0.02*rng.NormFloat64()
		market[d] = level
	}

	for t := 0; t < cfg.Tickers; t++ {
		ticker := tickerSymbol(t)
		// Price levels are log-normal across tickers (penny stocks to
		// four-digit prices).
		base := math.Exp(2.5 + 1.3*rng.NormFloat64())
		beta := 0.5 + rng.Float64()*1.5
		volScale := math.Exp(11 + 1.8*rng.NormFloat64()) // shares/day
		zeroVolProp := 0.0
		if rng.Float64() < 0.12 {
			zeroVolProp = 0.2 + 0.5*rng.Float64() // thinly traded names
		}

		attrs := make([][]float64, cfg.Days)
		logP := math.Log(base)
		prevClose := base
		for d := 0; d < cfg.Days; d++ {
			logP += beta*(market[d]-prior(market, d)) + cfg.DailyVol*rng.NormFloat64()
			c := math.Exp(logP)
			o := prevClose * (1 + 0.01*rng.NormFloat64())
			hi := math.Max(o, c) * (1 + math.Abs(0.012*rng.NormFloat64()))
			lo := math.Min(o, c) * (1 - math.Abs(0.012*rng.NormFloat64()))
			adj := c * (1 - 0.0001*rng.Float64()) // dividends/splits ≈ none in-month
			v := volScale * math.Exp(0.8*rng.NormFloat64()) * (1 + 2*math.Abs(market[d]-prior(market, d)))
			if rng.Float64() < zeroVolProp {
				v = 0
			}
			attrs[d] = []float64{o, hi, lo, c, adj, math.Round(v)}
			prevClose = c
		}
		out[t] = StockDay{Ticker: ticker, Attrs: attrs}
	}
	return out
}

func prior(m []float64, d int) float64 {
	if d == 0 {
		return 0
	}
	return m[d-1]
}

func tickerSymbol(i int) string {
	letters := "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	s := make([]byte, 0, 5)
	for {
		s = append(s, letters[i%26])
		i /= 26
		if i == 0 {
			break
		}
		i--
	}
	// Reverse for natural reading order.
	for l, r := 0, len(s)-1; l < r; l, r = l+1, r-1 {
		s[l], s[r] = s[r], s[l]
	}
	return string(s)
}

// ColocatedStocks builds the colocated dataset for one trading day: six
// attribute assignments keyed by ticker.
func ColocatedStocks(table []StockDay, day int) *dataset.Dataset {
	attrs := AllStockAttrs()
	names := make([]string, len(attrs))
	for i, a := range attrs {
		names[i] = a.String()
	}
	keys := make([]string, len(table))
	cols := make([][]float64, len(attrs))
	for i := range cols {
		cols[i] = make([]float64, len(table))
	}
	for t, row := range table {
		keys[t] = row.Ticker
		for i := range attrs {
			cols[i][t] = row.Attrs[day][i]
		}
	}
	return dataset.FromColumns(names, keys, cols)
}

// DispersedStocks builds the dispersed dataset for one attribute across all
// trading days: one assignment per day, keyed by ticker.
func DispersedStocks(table []StockDay, attr StockAttr) *dataset.Dataset {
	if len(table) == 0 {
		panic("datagen: empty stock table")
	}
	days := len(table[0].Attrs)
	names := make([]string, days)
	for d := range names {
		names[d] = fmt.Sprintf("day%02d", d+1)
	}
	keys := make([]string, len(table))
	cols := make([][]float64, days)
	for d := range cols {
		cols[d] = make([]float64, len(table))
	}
	for t, row := range table {
		keys[t] = row.Ticker
		for d := 0; d < days; d++ {
			cols[d][t] = row.Attrs[d][attr]
		}
	}
	return dataset.FromColumns(names, keys, cols)
}

// Package datagen synthesizes the four evaluation datasets of Section 9.
// The paper's data (AT&T router packet traces, the Netflix Prize set, stock
// quotes) is proprietary or unavailable offline, so each generator produces
// a synthetic equivalent matched on the properties the estimators are
// sensitive to: weight skew, cross-assignment correlation, and support churn
// (keys appearing/disappearing between assignments). All generators are
// deterministic given their seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"coordsample/internal/dataset"
)

// Flow is one aggregated IP flow (a 4-tuple plus protocol) with per-period
// packet and byte counts. A zero packet count means the flow is inactive in
// that period.
type Flow struct {
	SrcIP, DstIP     string
	SrcPort, DstPort int
	Proto            int
	Packets          []float64 // per period
	Bytes            []float64 // per period
}

// IPConfig parameterizes the IP trace generators.
type IPConfig struct {
	// Flows is the number of distinct 4-tuples in the universe.
	Flows int
	// Periods is the number of time periods (assignments).
	Periods int
	// Hosts is the number of distinct destination IPs; flows concentrate on
	// popular destinations Zipf-style.
	Hosts int
	// Persistence is the probability that a flow active in period t is also
	// active in period t+1 (support churn control).
	Persistence float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultIPConfig1 mirrors IP dataset1 at laptop scale: two periods with
// substantial key churn. The paper's trace has 1.09M 4-tuples over 9.2M
// packets; we default to a proportional scale-down.
func DefaultIPConfig1() IPConfig {
	return IPConfig{Flows: 30000, Periods: 2, Hosts: 2500, Persistence: 0.55, Seed: 20090906}
}

// DefaultIPConfig2 mirrors IP dataset2: four hourly periods.
func DefaultIPConfig2() IPConfig {
	return IPConfig{Flows: 30000, Periods: 4, Hosts: 2500, Persistence: 0.6, Seed: 20080801}
}

// Scale returns a copy with Flows and Hosts multiplied by f (minimum 1).
func (c IPConfig) Scale(f float64) IPConfig {
	c.Flows = scaleInt(c.Flows, f)
	c.Hosts = scaleInt(c.Hosts, f)
	return c
}

func scaleInt(n int, f float64) int {
	m := int(float64(n) * f)
	if m < 1 {
		return 1
	}
	return m
}

// IPTrace generates the flow table. Flow popularity over destinations is
// Zipf-like, packets per active flow are Pareto heavy-tailed, and bytes per
// packet fall in the 40–1500 range with a bimodal mix (ACK-sized and
// MTU-sized packets), matching the heavy skew of real traces.
func IPTrace(cfg IPConfig) []Flow {
	if cfg.Flows < 1 || cfg.Periods < 1 || cfg.Hosts < 1 {
		panic(fmt.Sprintf("datagen: invalid IP config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dstZipf := rand.NewZipf(rng, 1.25, 4, uint64(cfg.Hosts-1))
	srcZipf := rand.NewZipf(rng, 1.15, 8, uint64(cfg.Hosts*4-1))

	flows := make([]Flow, cfg.Flows)
	seen := make(map[string]bool, cfg.Flows)
	for i := range flows {
		var f Flow
		for {
			f = Flow{
				SrcIP:   ipString(10, srcZipf.Uint64()),
				DstIP:   ipString(192, dstZipf.Uint64()),
				SrcPort: 1024 + rng.Intn(64512),
				DstPort: commonPort(rng),
				Proto:   pickProto(rng),
			}
			if !seen[f.key4()] {
				break
			}
		}
		seen[f.key4()] = true

		// Per-flow intensity: Pareto(α≈1.3) packets per active period.
		intensity := math.Ceil(pareto(rng, 1.3, 1.0))
		meanPkt := packetSize(rng)

		f.Packets = make([]float64, cfg.Periods)
		f.Bytes = make([]float64, cfg.Periods)
		active := rng.Float64() < 0.75 // active in period 0 with prob 0.75
		everActive := false
		for p := 0; p < cfg.Periods; p++ {
			if p > 0 {
				if active {
					active = rng.Float64() < cfg.Persistence
				} else {
					// Births keep the per-period support roughly stable.
					active = rng.Float64() < (1-cfg.Persistence)/2
				}
			}
			if !active {
				continue
			}
			everActive = true
			// Rate drift across periods: lognormal multiplier.
			pk := math.Ceil(intensity * math.Exp(0.5*rng.NormFloat64()))
			if pk < 1 {
				pk = 1
			}
			f.Packets[p] = pk
			f.Bytes[p] = math.Round(pk * meanPkt)
		}
		if !everActive {
			f.Packets[0] = 1
			f.Bytes[0] = math.Round(meanPkt)
		}
		flows[i] = f
	}
	return flows
}

func (f Flow) key4() string {
	return fmt.Sprintf("%s:%d>%s:%d/%d", f.SrcIP, f.SrcPort, f.DstIP, f.DstPort, f.Proto)
}

func (f Flow) keySrcDst() string { return f.SrcIP + ">" + f.DstIP }

func ipString(prefix byte, h uint64) string {
	return fmt.Sprintf("%d.%d.%d.%d", prefix, byte(h>>16), byte(h>>8), byte(h))
}

func commonPort(rng *rand.Rand) int {
	common := []int{80, 443, 53, 25, 22, 8080, 110, 993}
	if rng.Float64() < 0.7 {
		return common[rng.Intn(len(common))]
	}
	return 1024 + rng.Intn(64512)
}

func pickProto(rng *rand.Rand) int {
	switch r := rng.Float64(); {
	case r < 0.8:
		return 6 // TCP
	case r < 0.97:
		return 17 // UDP
	default:
		return 1 // ICMP
	}
}

// packetSize draws a mean packet size in [40, 1500]: a bimodal mix of small
// control packets and near-MTU data packets.
func packetSize(rng *rand.Rand) float64 {
	if rng.Float64() < 0.45 {
		return 40 + rng.Float64()*160
	}
	return 700 + rng.Float64()*800
}

// pareto draws from a Pareto distribution with shape alpha and scale xm.
func pareto(rng *rand.Rand, alpha, xm float64) float64 {
	u := rng.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return xm / math.Pow(1-u, 1/alpha)
}

// IPKey selects the aggregation key of the IP datasets.
type IPKey int

const (
	// KeyDstIP aggregates by destination IP.
	KeyDstIP IPKey = iota
	// KeySrcDst aggregates by (source IP, destination IP) pairs.
	KeySrcDst
	// Key4Tuple aggregates by the full 4-tuple.
	Key4Tuple
)

// String names the key type.
func (k IPKey) String() string {
	switch k {
	case KeyDstIP:
		return "destIP"
	case KeySrcDst:
		return "srcIP+destIP"
	case Key4Tuple:
		return "4tuple"
	default:
		return fmt.Sprintf("IPKey(%d)", int(k))
	}
}

func (k IPKey) of(f Flow) string {
	switch k {
	case KeyDstIP:
		return f.DstIP
	case KeySrcDst:
		return f.keySrcDst()
	case Key4Tuple:
		return f.key4()
	default:
		panic("datagen: unknown IP key")
	}
}

// IPWeight selects the weight attribute of the IP datasets.
type IPWeight int

const (
	// WeightBytes is total bytes.
	WeightBytes IPWeight = iota
	// WeightPackets is total packets.
	WeightPackets
	// WeightFlows is the number of distinct 4-tuples under the key.
	WeightFlows
	// WeightUniform assigns weight 1 to every key present.
	WeightUniform
)

// String names the weight attribute.
func (w IPWeight) String() string {
	switch w {
	case WeightBytes:
		return "bytes"
	case WeightPackets:
		return "packets"
	case WeightFlows:
		return "flows"
	case WeightUniform:
		return "uniform"
	default:
		return fmt.Sprintf("IPWeight(%d)", int(w))
	}
}

// DispersedIP aggregates the flow table into a dispersed dataset: one
// assignment per period, keyed by key, weighted by weight.
func DispersedIP(flows []Flow, key IPKey, weight IPWeight) *dataset.Dataset {
	if len(flows) == 0 {
		panic("datagen: empty flow table")
	}
	periods := len(flows[0].Packets)
	names := make([]string, periods)
	for p := range names {
		names[p] = fmt.Sprintf("period%d", p+1)
	}
	bld := dataset.NewBuilder(names...)
	for _, f := range flows {
		k := key.of(f)
		for p := 0; p < periods; p++ {
			if f.Packets[p] <= 0 {
				continue
			}
			bld.Add(p, k, flowWeight(f, p, weight))
		}
	}
	return bld.Build()
}

func flowWeight(f Flow, period int, weight IPWeight) float64 {
	switch weight {
	case WeightBytes:
		return f.Bytes[period]
	case WeightPackets:
		return f.Packets[period]
	case WeightFlows:
		return 1 // each flow contributes one distinct 4-tuple to its key
	case WeightUniform:
		// Accumulation would overcount; handled by ColocatedIP. For
		// dispersed use, uniform weight is approximated by flow count too.
		return 1
	default:
		panic("datagen: unknown IP weight")
	}
}

// ColocatedIP aggregates one period of the flow table into a colocated
// dataset whose assignments are the weight attributes (bytes, packets,
// distinct flows, uniform), keyed by key — the colocated IP workloads of
// Section 9.3.
func ColocatedIP(flows []Flow, key IPKey, period int, weights []IPWeight) *dataset.Dataset {
	names := make([]string, len(weights))
	for i, w := range weights {
		names[i] = w.String()
	}
	type acc struct {
		vals []float64
	}
	accs := make(map[string]*acc)
	var order []string
	for _, f := range flows {
		if f.Packets[period] <= 0 {
			continue
		}
		k := key.of(f)
		a, ok := accs[k]
		if !ok {
			a = &acc{vals: make([]float64, len(weights))}
			accs[k] = a
			order = append(order, k)
		}
		for i, w := range weights {
			switch w {
			case WeightBytes:
				a.vals[i] += f.Bytes[period]
			case WeightPackets:
				a.vals[i] += f.Packets[period]
			case WeightFlows:
				a.vals[i]++
			case WeightUniform:
				a.vals[i] = 1
			}
		}
	}
	cols := make([][]float64, len(weights))
	for i := range cols {
		cols[i] = make([]float64, len(order))
	}
	for j, k := range order {
		for i := range weights {
			cols[i][j] = accs[k].vals[i]
		}
	}
	return dataset.FromColumns(names, order, cols)
}

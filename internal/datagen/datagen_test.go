package datagen

import (
	"math"
	"sort"
	"testing"

	"coordsample/internal/dataset"
)

func smallIP1() []Flow { return IPTrace(DefaultIPConfig1().Scale(0.1)) }
func smallIP2() []Flow { return IPTrace(DefaultIPConfig2().Scale(0.1)) }

func TestIPTraceDeterministic(t *testing.T) {
	a := IPTrace(DefaultIPConfig1().Scale(0.02))
	b := IPTrace(DefaultIPConfig1().Scale(0.02))
	if len(a) != len(b) {
		t.Fatal("nondeterministic flow count")
	}
	for i := range a {
		if a[i].key4() != b[i].key4() || a[i].Bytes[0] != b[i].Bytes[0] {
			t.Fatalf("flow %d differs between runs", i)
		}
	}
}

func TestIPTraceBasicShape(t *testing.T) {
	flows := smallIP1()
	if len(flows) == 0 {
		t.Fatal("no flows")
	}
	seen := make(map[string]bool)
	for _, f := range flows {
		if seen[f.key4()] {
			t.Fatalf("duplicate 4-tuple %s", f.key4())
		}
		seen[f.key4()] = true
		if len(f.Packets) != 2 || len(f.Bytes) != 2 {
			t.Fatal("period count wrong")
		}
		for p := range f.Packets {
			if f.Packets[p] < 0 || f.Bytes[p] < 0 {
				t.Fatal("negative weights")
			}
			if f.Packets[p] > 0 {
				per := f.Bytes[p] / f.Packets[p]
				if per < 39 || per > 1501 {
					t.Fatalf("bytes per packet %v outside [40,1500]", per)
				}
			}
			if f.Packets[p] == 0 && f.Bytes[p] != 0 {
				t.Fatal("bytes without packets")
			}
		}
	}
}

func TestIPTraceChurn(t *testing.T) {
	// Dispersed IP evaluation relies on keys appearing and disappearing
	// between periods: both one-sided supports must be nonempty and the
	// Jaccard of supports should be well below 1.
	flows := smallIP1()
	var onlyP1, onlyP2, both int
	for _, f := range flows {
		a1, a2 := f.Packets[0] > 0, f.Packets[1] > 0
		switch {
		case a1 && a2:
			both++
		case a1:
			onlyP1++
		case a2:
			onlyP2++
		}
	}
	if onlyP1 == 0 || onlyP2 == 0 || both == 0 {
		t.Fatalf("no churn: only1=%d only2=%d both=%d", onlyP1, onlyP2, both)
	}
	jac := float64(both) / float64(both+onlyP1+onlyP2)
	if jac > 0.9 || jac < 0.05 {
		t.Fatalf("support Jaccard %v outside plausible churn range", jac)
	}
}

func TestIPTraceSkew(t *testing.T) {
	// Byte weights must be heavy-tailed: top 1% of destIPs should carry a
	// disproportionate share (>10%) of total bytes.
	ds := DispersedIP(smallIP1(), KeyDstIP, WeightBytes)
	col := append([]float64(nil), ds.Column(0)...)
	sort.Sort(sort.Reverse(sort.Float64Slice(col)))
	total := 0.0
	for _, w := range col {
		total += w
	}
	top := 0.0
	n := len(col) / 100
	if n < 1 {
		n = 1
	}
	for _, w := range col[:n] {
		top += w
	}
	if share := top / total; share < 0.10 {
		t.Fatalf("top-1%% share %v too small — weights not skewed", share)
	}
}

func TestDispersedIPAggregation(t *testing.T) {
	flows := smallIP1()
	ds := DispersedIP(flows, KeyDstIP, WeightBytes)
	// Totals must match direct summation over flows.
	want := [2]float64{}
	for _, f := range flows {
		for p := 0; p < 2; p++ {
			want[p] += f.Bytes[p]
		}
	}
	for p := 0; p < 2; p++ {
		if got := ds.Total(p); math.Abs(got-want[p]) > 1e-6 {
			t.Fatalf("period %d total %v, want %v", p, got, want[p])
		}
	}
	// Flow-count weights: total = number of active flows.
	fc := DispersedIP(flows, Key4Tuple, WeightFlows)
	active := 0
	for _, f := range flows {
		if f.Packets[0] > 0 {
			active++
		}
	}
	if got := fc.Total(0); got != float64(active) {
		t.Fatalf("flow-count total %v, want %d", got, active)
	}
}

func TestColocatedIPUniformNotAccumulated(t *testing.T) {
	flows := smallIP1()
	ds := ColocatedIP(flows, KeyDstIP, 0, []IPWeight{WeightBytes, WeightPackets, WeightFlows, WeightUniform})
	b, ok := ds.KeyIndex(flows[0].DstIP)
	if !ok {
		t.Fatal("missing key")
	}
	// Uniform weight must be exactly 1 regardless of flow multiplicity.
	if got := ds.Weight(3, b); got != 1 {
		t.Fatalf("uniform weight = %v", got)
	}
	// Flows weight counts distinct 4-tuples, ≥ 1.
	if got := ds.Weight(2, b); got < 1 {
		t.Fatalf("flows weight = %v", got)
	}
	// Bytes ≥ packets × 40.
	for i := 0; i < ds.NumKeys(); i++ {
		if ds.Weight(0, i) < ds.Weight(1, i)*39 {
			t.Fatalf("key %d: bytes %v < packets %v × 40", i, ds.Weight(0, i), ds.Weight(1, i))
		}
	}
}

func TestIPTrace2FourPeriods(t *testing.T) {
	flows := smallIP2()
	if len(flows[0].Packets) != 4 {
		t.Fatalf("IP dataset2 should have 4 hourly periods, got %d", len(flows[0].Packets))
	}
	ds := DispersedIP(flows, Key4Tuple, WeightBytes)
	if ds.NumAssignments() != 4 {
		t.Fatal("assignment count")
	}
	for p := 0; p < 4; p++ {
		if ds.Total(p) <= 0 {
			t.Fatalf("hour %d has no traffic", p)
		}
	}
}

func TestRatingsShape(t *testing.T) {
	ds := Ratings(DefaultRatingsConfig().Scale(0.1))
	if ds.NumAssignments() != 12 {
		t.Fatal("month count")
	}
	// The seasonal dip: December total well below the January total.
	if ds.Total(11) > 0.8*ds.Total(0) {
		t.Fatalf("no late-year dip: dec=%v jan=%v", ds.Total(11), ds.Total(0))
	}
	// Adjacent months must be much more similar than distant ones.
	j12 := ds.WeightedJaccard([]int{0, 1}, nil)
	j112 := ds.WeightedJaccard([]int{0, 11}, nil)
	if j12 <= j112 {
		t.Fatalf("adjacent-month Jaccard %v not above distant %v", j12, j112)
	}
	if j12 < 0.5 {
		t.Fatalf("adjacent months should be strongly correlated, Jaccard = %v", j12)
	}
}

func TestRatingsZipfSkew(t *testing.T) {
	ds := Ratings(DefaultRatingsConfig().Scale(0.1))
	col := append([]float64(nil), ds.Column(0)...)
	sort.Sort(sort.Reverse(sort.Float64Slice(col)))
	total := 0.0
	for _, w := range col {
		total += w
	}
	top := 0.0
	for _, w := range col[:len(col)/20] {
		top += w
	}
	if share := top / total; share < 0.3 {
		t.Fatalf("top-5%% of movies carry %v of ratings; want Zipf-like skew", share)
	}
}

func TestStocksShape(t *testing.T) {
	table := Stocks(DefaultStocksConfig().Scale(0.1))
	for _, row := range table {
		for d, attrs := range row.Attrs {
			o, hi, lo, c, adj, v := attrs[0], attrs[1], attrs[2], attrs[3], attrs[4], attrs[5]
			if !(lo <= o+1e-9 && o <= hi+1e-9 && lo <= c+1e-9 && c <= hi+1e-9) {
				t.Fatalf("%s day %d: OHLC inconsistent: %v", row.Ticker, d, attrs)
			}
			if o <= 0 || hi <= 0 || lo <= 0 || c <= 0 || adj <= 0 {
				t.Fatalf("%s day %d: nonpositive price", row.Ticker, d)
			}
			if v < 0 {
				t.Fatalf("%s day %d: negative volume", row.Ticker, d)
			}
		}
	}
}

func TestStocksPositiveVolumeFraction(t *testing.T) {
	// The paper: "At least 93% of stocks had positive volume each day".
	table := Stocks(DefaultStocksConfig())
	days := len(table[0].Attrs)
	for d := 0; d < days; d++ {
		pos := 0
		for _, row := range table {
			if row.Attrs[d][Volume] > 0 {
				pos++
			}
		}
		if frac := float64(pos) / float64(len(table)); frac < 0.90 {
			t.Fatalf("day %d: positive-volume fraction %v < 0.90", d, frac)
		}
	}
}

func TestStocksCrossDayCorrelation(t *testing.T) {
	// Price attributes must be far more correlated across days than volume:
	// measured by weighted Jaccard of day 1 vs day 23.
	table := Stocks(DefaultStocksConfig().Scale(0.25))
	high := DispersedStocks(table, High)
	volume := DispersedStocks(table, Volume)
	R := []int{0, high.NumAssignments() - 1}
	jHigh := high.WeightedJaccard(R, nil)
	jVol := volume.WeightedJaccard(R, nil)
	if jHigh < 0.75 {
		t.Fatalf("high-price cross-day Jaccard %v; want very high correlation", jHigh)
	}
	if jVol >= jHigh {
		t.Fatalf("volume Jaccard %v should be below price Jaccard %v", jVol, jHigh)
	}
}

func TestColocatedStocksAttributes(t *testing.T) {
	table := Stocks(DefaultStocksConfig().Scale(0.1))
	ds := ColocatedStocks(table, 0)
	if ds.NumAssignments() != 6 {
		t.Fatal("attribute count")
	}
	names := ds.AssignmentNames()
	want := []string{"open", "high", "low", "close", "adj_close", "volume"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("attribute %d = %s, want %s", i, names[i], want[i])
		}
	}
	if ds.NumKeys() != len(table) {
		t.Fatal("ticker count")
	}
}

func TestTickerSymbols(t *testing.T) {
	if tickerSymbol(0) != "A" || tickerSymbol(25) != "Z" || tickerSymbol(26) != "AA" {
		t.Fatalf("ticker symbols wrong: %s %s %s", tickerSymbol(0), tickerSymbol(25), tickerSymbol(26))
	}
	seen := make(map[string]bool)
	for i := 0; i < 5000; i++ {
		s := tickerSymbol(i)
		if seen[s] {
			t.Fatalf("duplicate ticker %s at %d", s, i)
		}
		seen[s] = true
	}
}

func TestConfigValidationPanics(t *testing.T) {
	assertPanics(t, func() { IPTrace(IPConfig{}) })
	assertPanics(t, func() { Ratings(RatingsConfig{}) })
	assertPanics(t, func() { Stocks(StocksConfig{}) })
	assertPanics(t, func() { DispersedIP(nil, KeyDstIP, WeightBytes) })
	assertPanics(t, func() { DispersedStocks(nil, High) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

var _ = dataset.MaxR // keep the import meaningful if helpers change

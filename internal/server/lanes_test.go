package server

import (
	"bytes"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"testing"

	"coordsample/internal/core"
	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

// postBinaryIngest streams one chunk of offers through POST /ingest in the
// binary framing, reusing the client's keep-alive connection.
func postBinaryIngest(client *http.Client, url string, offers []Offer) error {
	var body []byte
	for _, o := range offers {
		body = AppendBinaryOffer(body, o.Assignment, o.Key, o.Weight)
	}
	resp, err := client.Post(url+"/ingest", ContentTypeBinaryIngest, bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /ingest: status %d", resp.StatusCode)
	}
	return nil
}

// TestConcurrentIngestStreamsBitIdentical is the lane-level acceptance
// test: many concurrent streaming /ingest clients — each pinned to a lane
// for its stream's lifetime — racing a freeze mid-stream must leave the
// server serving sketches bit-identical to a single offline pass over the
// union of the streams. GOMAXPROCS is raised so the lanes actually
// interleave even on a single-core machine. Run under -race in CI.
func TestConcurrentIngestStreamsBitIdentical(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	for _, mode := range []rank.Coordination{rank.SharedSeed, rank.Independent} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := Config{
				Sample:      core.Config{Family: rank.IPPS, Mode: mode, Seed: 29, K: 128},
				Assignments: 2,
				Shards:      7,
				Workers:     2,
				Lanes:       3,
			}
			offers := testStream(4000, 13)
			offline := offlineSummary(t, cfg.Sample, offers, cfg.Assignments)
			_, ts := newTestServer(t, cfg)

			// Six clients over disjoint chunks (more clients than lanes, so
			// lanes are shared), each streaming several bodies over one
			// keep-alive connection; one goroutine freezes mid-stream.
			const clients = 6
			var wg sync.WaitGroup
			for p := 0; p < clients; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					client := &http.Client{}
					lo, hi := p*len(offers)/clients, (p+1)*len(offers)/clients
					for ; lo < hi; lo += 500 {
						end := lo + 500
						if end > hi {
							end = hi
						}
						if err := postBinaryIngest(client, ts.URL, offers[lo:end]); err != nil {
							t.Error(err) // t.Fatal is not allowed off the test goroutine
							return
						}
					}
				}(p)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := tryPostJSON(ts.URL+"/freeze", nil); err != nil {
					t.Error(err)
				}
			}()
			wg.Wait()
			if t.Failed() {
				t.Fatal("concurrent ingest failed; skipping bit-identity checks")
			}
			postJSON(t, ts.URL+"/freeze", nil) // publish everything still in flight

			for b := 0; b < cfg.Assignments; b++ {
				resp, err := http.Get(fmt.Sprintf("%s/sketch?b=%d", ts.URL, b))
				if err != nil {
					t.Fatal(err)
				}
				decoded, err := sketch.Decode(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Fatalf("decoding /sketch?b=%d: %v", b, err)
				}
				want := offline.Sketch(b).(*sketch.BottomK)
				got := decoded.BottomK
				if got.KthRank() != want.KthRank() || got.Threshold() != want.Threshold() {
					t.Fatalf("/sketch?b=%d: conditioning ranks (%v, %v) != offline (%v, %v)",
						b, got.KthRank(), got.Threshold(), want.KthRank(), want.Threshold())
				}
				ge, we := got.Entries(), want.Entries()
				if len(ge) != len(we) {
					t.Fatalf("/sketch?b=%d: %d entries, offline has %d", b, len(ge), len(we))
				}
				for i := range ge {
					if ge[i] != we[i] {
						t.Fatalf("/sketch?b=%d: entry %d = %+v, offline %+v", b, i, ge[i], we[i])
					}
				}
			}
		})
	}
}

// TestLanesDefaultAndOfferPath: Lanes ≤ 0 defaults to GOMAXPROCS lanes,
// and the JSON /offer path (which round-robins a fresh lane per request)
// is bit-identical to the streaming path under the same stream.
func TestLanesDefaultAndOfferPath(t *testing.T) {
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	cfg := Config{
		Sample:      core.Config{Family: rank.EXP, Mode: rank.SharedSeed, Seed: 3, K: 64},
		Assignments: 2,
		Shards:      4,
	}
	s, ts := newTestServer(t, cfg)
	if got := len(s.ingest.lanes); got != 2 {
		t.Fatalf("default lane count %d, want GOMAXPROCS=2", got)
	}
	offers := testStream(800, 5)
	offline := offlineSummary(t, cfg.Sample, offers, cfg.Assignments)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			lo, hi := p*len(offers)/4, (p+1)*len(offers)/4
			for ; lo < hi; lo += 50 {
				end := lo + 50
				if end > hi {
					end = hi
				}
				if _, err := tryPostJSON(ts.URL+"/offer", map[string]any{"offers": offers[lo:end]}); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("concurrent offers failed")
	}
	postJSON(t, ts.URL+"/freeze", nil)
	wantL1 := offline.RangeLSet(nil).Estimate(nil)
	if got := queryHTTP(t, ts.URL, "agg=L1"); got != wantL1 {
		t.Fatalf("/query?agg=L1 = %v, offline = %v (must be bit-identical)", got, wantL1)
	}
}

package server

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"coordsample/internal/core"
	"coordsample/internal/faults"
	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

func robustCfg() Config {
	return Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 11, K: 32},
		Assignments: 2,
		Shards:      2,
		Lanes:       1,
	}
}

// TestHealthSplitLiveVsReady: /healthz/live stays 200 through drain and
// close; /healthz/ready flips to 503 on SetDraining (and back), and stays
// 503 after Close.
func TestHealthSplitLiveVsReady(t *testing.T) {
	s, ts := newTestServer(t, robustCfg())

	status := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	if got := status("/healthz/live"); got != http.StatusOK {
		t.Fatalf("live: %d", got)
	}
	if got := status("/healthz/ready"); got != http.StatusOK {
		t.Fatalf("ready before drain: %d", got)
	}
	s.SetDraining(true)
	if got := status("/healthz/ready"); got != http.StatusServiceUnavailable {
		t.Fatalf("ready while draining: %d", got)
	}
	if got := status("/healthz/live"); got != http.StatusOK {
		t.Fatalf("live while draining: %d", got)
	}
	s.SetDraining(false)
	if got := status("/healthz/ready"); got != http.StatusOK {
		t.Fatalf("ready after drain cancelled: %d", got)
	}
	s.Close()
	if got := status("/healthz/ready"); got != http.StatusServiceUnavailable {
		t.Fatalf("ready after close: %d", got)
	}
	if got := status("/healthz/live"); got != http.StatusOK {
		t.Fatalf("live after close: %d", got)
	}
}

// TestOverloadSheddingReturns429: with MaxInflight=1, concurrent ingest
// requests beyond the bound are shed with 429 + Retry-After while the
// admitted request proceeds, and the cws.sheds counter records them.
func TestOverloadSheddingReturns429(t *testing.T) {
	cfg := robustCfg()
	cfg.MaxInflight = 1
	s, ts := newTestServer(t, cfg)

	// Hold the single ingest slot with a streaming request whose body we
	// keep open until the shed assertions are done.
	pr, pw := io.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	holderErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		resp, err := http.Post(ts.URL+"/ingest", "application/json", pr)
		if err != nil {
			holderErr <- err
			return
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		holderErr <- nil
	}()
	if _, err := pw.Write([]byte(`{"assignment":0,"key":"held","weight":1}` + "\n")); err != nil {
		t.Fatal(err)
	}
	// Wait until the holder's request is inside the handler.
	for i := 0; s.inflight.Load() == 0; i++ {
		if i > 2000 {
			t.Fatal("holder request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := tryPostJSON(ts.URL+"/offer", Offer{Assignment: 0, Key: "shed-me", Weight: 1})
	if err == nil {
		t.Fatalf("offer admitted past MaxInflight: %v", resp)
	}
	if !strings.Contains(err.Error(), "429") && !strings.Contains(fmt.Sprint(resp), "saturated") {
		t.Fatalf("shed response: %v / %v", err, resp)
	}
	// Direct check for the status code and Retry-After header.
	httpResp, err := http.Post(ts.URL+"/offer", "application/json", strings.NewReader(`{"assignment":0,"key":"x","weight":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	_, _ = io.Copy(io.Discard, httpResp.Body)
	if httpResp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status %d, want 429", httpResp.StatusCode)
	}
	if httpResp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}

	pw.Close()
	wg.Wait()
	if err := <-holderErr; err != nil {
		t.Fatalf("held ingest stream failed: %v", err)
	}
	if s.sheds.Value() < 2 {
		t.Fatalf("cws.sheds = %d, want >= 2", s.sheds.Value())
	}
	// The slot is free again: the next request is admitted.
	if _, err := tryPostJSON(ts.URL+"/offer", Offer{Assignment: 0, Key: "after", Weight: 1}); err != nil {
		t.Fatalf("offer after release: %v", err)
	}
}

// TestQueryTimeoutReturns503: a query exceeding QueryTimeout is cut off
// with 503 by the per-query deadline, and a generous deadline leaves
// normal queries untouched.
func TestQueryTimeoutReturns503(t *testing.T) {
	cfg := robustCfg()
	cfg.QueryTimeout = time.Nanosecond // every query exceeds it
	_, ts := newTestServer(t, cfg)
	resp, err := http.Get(ts.URL + "/query?agg=total")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}

	cfg2 := robustCfg()
	cfg2.QueryTimeout = 30 * time.Second // generous: queries answer normally
	_, ts2 := newTestServer(t, cfg2)
	resp2, err := http.Get(ts2.URL + "/query?agg=total")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	_, _ = io.Copy(io.Discard, resp2.Body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 under a generous deadline", resp2.StatusCode)
	}
}

// TestSlowlorisDisconnected is the regression test for the hardened
// http.Server: a client that dribbles an incomplete header must be
// disconnected by ReadHeaderTimeout instead of pinning a server goroutine
// forever — and the hardened defaults must all be set.
func TestSlowlorisDisconnected(t *testing.T) {
	s, err := New(robustCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hs := NewHTTPServer("127.0.0.1:0", s)
	if hs.ReadHeaderTimeout <= 0 || hs.ReadTimeout <= 0 || hs.IdleTimeout <= 0 {
		t.Fatalf("hardened server leaves a timeout unset: %+v", hs)
	}
	hs.ReadHeaderTimeout = 200 * time.Millisecond // scaled down for the test
	ln, err := net.Listen("tcp", hs.Addr)
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	defer hs.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Dribble a partial request line and never finish the headers.
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: x\r\nX-Slow:")); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		// A 408 response body also proves the server cut us off; EOF is the
		// bare disconnect. Either way the read must not hit our deadline.
		_, err = io.Copy(io.Discard, conn)
		if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
			t.Fatal("server kept the slow connection past ReadHeaderTimeout")
		}
	} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		t.Fatal("server kept the slow connection past ReadHeaderTimeout")
	}
}

// TestSketchesSegmentEndpoint: GET /sketches returns one decodable,
// fingerprint-verified segment carrying every assignment's cumulative
// sketch and the snapshot epoch header — bit-identical to the snapshot's
// sketches.
func TestSketchesSegmentEndpoint(t *testing.T) {
	s, ts := newTestServer(t, robustCfg())
	for _, o := range testStream(300, 3) {
		postJSON(t, ts.URL+"/offer", o)
	}
	postJSON(t, ts.URL+"/freeze", nil)

	resp, err := http.Get(ts.URL + "/sketches")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-CWS-Epoch"); got != "1" {
		t.Fatalf("X-CWS-Epoch = %q, want 1", got)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := sketch.DecodeSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.snap.Load()
	if len(decoded) != len(snap.sketches) {
		t.Fatalf("%d sketches, want %d", len(decoded), len(snap.sketches))
	}
	for b, d := range decoded {
		want := snap.sketches[b]
		if d.BottomK == nil || d.BottomK.Fingerprint() != want.Fingerprint() || d.BottomK.Size() != want.Size() {
			t.Fatalf("sketch %d differs from the snapshot", b)
		}
		for i, e := range want.Entries() {
			if d.BottomK.Entries()[i] != e {
				t.Fatalf("sketch %d entry %d differs", b, i)
			}
		}
	}
}

// TestSketchesFaultInjection: the /sketches fault point's torn response is
// caught by segment validation as a typed error (never a silently short
// sketch set), err returns 500, and drop severs the connection.
func TestSketchesFaultInjection(t *testing.T) {
	cfg := robustCfg()
	cfg.Faults = faults.MustParse(FaultSketches + ":torn,on=1")
	_, ts := newTestServer(t, cfg)
	postJSON(t, ts.URL+"/offer", Offer{Assignment: 0, Key: "k", Weight: 1})
	postJSON(t, ts.URL+"/freeze", nil)

	resp, err := http.Get(ts.URL + "/sketches")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading torn body: %v (the tear must be a clean short body, not a transport error)", err)
	}
	if _, err := sketch.DecodeSegment(data); err == nil {
		t.Fatal("torn segment decoded without error")
	}
	// Hit 2: the fault no longer fires; the same URL now round-trips.
	resp2, err := http.Get(ts.URL + "/sketches")
	if err != nil {
		t.Fatal(err)
	}
	data2, err := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sketch.DecodeSegment(data2); err != nil {
		t.Fatalf("clean fetch failed to decode: %v", err)
	}

	cfgErr := robustCfg()
	cfgErr.Faults = faults.MustParse(FaultSketches + ":err")
	_, tsErr := newTestServer(t, cfgErr)
	respErr, err := http.Get(tsErr.URL + "/sketches")
	if err != nil {
		t.Fatal(err)
	}
	defer respErr.Body.Close()
	_, _ = io.Copy(io.Discard, respErr.Body)
	if respErr.StatusCode != http.StatusInternalServerError {
		t.Fatalf("err fault: status %d, want 500", respErr.StatusCode)
	}

	cfgDrop := robustCfg()
	cfgDrop.Faults = faults.MustParse(FaultSketches + ":drop")
	_, tsDrop := newTestServer(t, cfgDrop)
	respDrop, err := http.Get(tsDrop.URL + "/sketches")
	if err == nil {
		// The abort may surface as an error on Do or mid-body; both count.
		_, rerr := io.ReadAll(respDrop.Body)
		respDrop.Body.Close()
		if rerr == nil {
			t.Fatal("dropped response arrived intact")
		}
	}
}

// TestFreezeFaultInjection: an injected freeze failure surfaces as 500,
// leaves the serving snapshot unchanged, and the next freeze succeeds
// (the poisoned epoch's offers are discarded, like every failed freeze).
func TestFreezeFaultInjection(t *testing.T) {
	cfg := robustCfg()
	cfg.Faults = faults.MustParse(FaultFreeze + ":err,on=1")
	s, ts := newTestServer(t, cfg)
	postJSON(t, ts.URL+"/offer", Offer{Assignment: 0, Key: "k1", Weight: 1})

	_, err := tryPostJSON(ts.URL+"/freeze", nil)
	if err == nil || !strings.Contains(err.Error(), "500") {
		t.Fatalf("injected freeze failure: %v", err)
	}
	if s.Epoch() != 0 {
		t.Fatalf("failed freeze published epoch %d", s.Epoch())
	}
	postJSON(t, ts.URL+"/offer", Offer{Assignment: 0, Key: "k2", Weight: 1})
	out := postJSON(t, ts.URL+"/freeze", nil)
	if out["epoch"].(float64) != 1 {
		t.Fatalf("recovery freeze: %v", out)
	}
}

// TestOwnsKeyGuardRejectsMisroutedKeys: with the cluster partition guard
// installed, every ingest framing rejects keys the node does not own, and
// owned keys pass.
func TestOwnsKeyGuardRejectsMisroutedKeys(t *testing.T) {
	cfg := robustCfg()
	cfg.OwnsKey = func(key string) bool { return strings.HasPrefix(key, "mine-") }
	_, ts := newTestServer(t, cfg)

	if _, err := tryPostJSON(ts.URL+"/offer", Offer{Assignment: 0, Key: "mine-1", Weight: 1}); err != nil {
		t.Fatalf("owned key rejected: %v", err)
	}
	if _, err := tryPostJSON(ts.URL+"/offer", Offer{Assignment: 0, Key: "theirs-1", Weight: 1}); err == nil {
		t.Fatal("misrouted key accepted by /offer")
	}

	// NDJSON framing.
	resp, err := http.Post(ts.URL+"/ingest", "application/json",
		strings.NewReader(`{"assignment":0,"key":"theirs-2","weight":1}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("NDJSON misroute: status %d, want 400", resp.StatusCode)
	}

	// Binary framing.
	var body []byte
	body = AppendBinaryOffer(body, 0, "theirs-3", 1)
	resp, err = http.Post(ts.URL+"/ingest", ContentTypeBinaryIngest, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("binary misroute: status %d, want 400", resp.StatusCode)
	}
	var owned []byte
	owned = AppendBinaryOffer(owned, 0, "mine-2", 1)
	resp, err = http.Post(ts.URL+"/ingest", ContentTypeBinaryIngest, bytes.NewReader(owned))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owned binary key: status %d", resp.StatusCode)
	}
}

package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"coordsample/internal/cliquery"
	"coordsample/internal/core"
	"coordsample/internal/estimate"
	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

// testStream is a deterministic two-assignment weighted stream with key
// churn: some keys live in only one assignment.
func testStream(n int, seed int64) []Offer {
	rng := rand.New(rand.NewSource(seed))
	var offers []Offer
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("host-%05d", i)
		base := math.Exp(rng.NormFloat64() * 2)
		if rng.Float64() < 0.9 {
			offers = append(offers, Offer{Assignment: 0, Key: key, Weight: base * (0.5 + rng.Float64())})
		}
		if rng.Float64() < 0.9 {
			offers = append(offers, Offer{Assignment: 1, Key: key, Weight: base * (0.5 + rng.Float64())})
		}
	}
	return offers
}

// offlineSummary runs the in-process dispersed pipeline over the stream.
func offlineSummary(t *testing.T, cfg core.Config, offers []Offer, assignments int) *estimate.Dispersed {
	t.Helper()
	sketchers := make([]*core.AssignmentSketcher, assignments)
	for b := range sketchers {
		sketchers[b] = core.NewAssignmentSketcher(cfg, b)
	}
	for _, o := range offers {
		sketchers[o.Assignment].Offer(o.Key, o.Weight)
	}
	sketches := make([]*sketch.BottomK, assignments)
	for b, sk := range sketchers {
		sketches[b] = sk.Sketch()
	}
	d, err := core.CombineDispersed(cfg, sketches)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// tryPostJSON posts and reports failure as an error: safe to use from
// non-test goroutines, where t.Fatal (FailNow) is not allowed.
func tryPostJSON(url string, body any) (map[string]any, error) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return nil, err
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("POST %s: status %d: %v", url, resp.StatusCode, out)
	}
	return out, nil
}

func postJSON(t *testing.T, url string, body any) map[string]any {
	t.Helper()
	out, err := tryPostJSON(url, body)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func decodeJSONBody(t *testing.T, r io.Reader) map[string]any {
	t.Helper()
	var out map[string]any
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// queryHTTP runs GET /query and returns the estimate exactly as the JSON
// number parsed back to float64 (shortest-representation round-trip, so ==
// means bit-identity).
func queryHTTP(t *testing.T, base, params string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/query?" + params)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := decodeJSONBody(t, resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /query?%s: status %d: %v", params, resp.StatusCode, out)
	}
	v, ok := out["estimate"].(float64)
	if !ok {
		t.Fatalf("GET /query?%s: no numeric estimate in %v", params, out)
	}
	return v
}

// TestBitIdenticalAcrossConcurrentFreezes is the acceptance criterion: the
// server answers every cliquery aggregate over HTTP bit-identically to the
// offline pipeline on the same stream, with offers arriving from concurrent
// clients and freezes racing them mid-stream. Run under -race in CI.
func TestBitIdenticalAcrossConcurrentFreezes(t *testing.T) {
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 7, K: 128},
		Assignments: 2,
		Shards:      4,
		Workers:     2,
	}
	offers := testStream(3000, 11)
	offline := offlineSummary(t, cfg.Sample, offers, cfg.Assignments)

	_, ts := newTestServer(t, cfg)

	// Four concurrent producers over disjoint chunks, racing two freezes.
	// However the stream is cut into epochs, the cumulative merge must
	// reproduce the offline sketch exactly.
	const producers = 4
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for lo := p * len(offers) / producers; lo < (p+1)*len(offers)/producers; lo += 100 {
				hi := lo + 100
				if max := (p + 1) * len(offers) / producers; hi > max {
					hi = max
				}
				if _, err := tryPostJSON(ts.URL+"/offer", map[string]any{"offers": offers[lo:hi]}); err != nil {
					t.Error(err) // t.Fatal is not allowed off the test goroutine
					return
				}
			}
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			if _, err := tryPostJSON(ts.URL+"/freeze", nil); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		t.Fatal("concurrent ingest failed; skipping bit-identity checks")
	}
	postJSON(t, ts.URL+"/freeze", nil) // publish everything still in flight

	pred := func(key string) bool { return strings.HasPrefix(key, "host-0") }
	checks := []struct {
		params string
		query  string
		b, l   int
		pred   func(string) bool
	}{
		{"agg=sum&b=0", "sum", 0, 1, nil},
		{"agg=sum&b=1&prefix=host-0", "sum", 1, 1, pred},
		{"agg=min", "min", 0, 1, nil},
		{"agg=max", "max", 0, 1, nil},
		{"agg=L1", "L1", 0, 1, nil},
		{"agg=L1&R=0,1", "L1", 0, 1, nil},
		{"agg=lth&l=2", "lth", 0, 2, nil},
		{"agg=jaccard&prefix=host-0", "jaccard", 0, 1, pred},
	}
	for _, c := range checks {
		var R []int
		if strings.Contains(c.params, "R=0,1") {
			R = []int{0, 1}
		}
		_, want, err := cliquery.Answer(offline, c.query, c.b, R, c.l, c.pred)
		if err != nil {
			t.Fatal(err)
		}
		got := queryHTTP(t, ts.URL, c.params)
		if got != want {
			t.Errorf("/query?%s = %v, offline pipeline = %v (must be bit-identical)", c.params, got, want)
		}
		// Second query exercises the snapshot's AW-summary cache; the
		// answer must not move.
		if again := queryHTTP(t, ts.URL, c.params); again != got {
			t.Errorf("/query?%s cached answer %v != first answer %v", c.params, again, got)
		}
	}

	// The served sketches themselves must be bit-identical to the offline
	// ones: same entries, same conditioning ranks.
	for b := 0; b < cfg.Assignments; b++ {
		for _, format := range []string{"binary", "json"} {
			resp, err := http.Get(fmt.Sprintf("%s/sketch?b=%d&format=%s", ts.URL, b, format))
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := sketch.Decode(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("decoding /sketch?b=%d&format=%s: %v", b, format, err)
			}
			want := offline.Sketch(b).(*sketch.BottomK)
			got := decoded.BottomK
			if got == nil {
				t.Fatalf("/sketch?b=%d: not a bottom-k file", b)
			}
			if got.KthRank() != want.KthRank() || got.Threshold() != want.Threshold() {
				t.Fatalf("/sketch?b=%d (%s): conditioning ranks (%v, %v) != offline (%v, %v)",
					b, format, got.KthRank(), got.Threshold(), want.KthRank(), want.Threshold())
			}
			ge, we := got.Entries(), want.Entries()
			if len(ge) != len(we) {
				t.Fatalf("/sketch?b=%d (%s): %d entries, offline has %d", b, format, len(ge), len(we))
			}
			for i := range ge {
				if ge[i] != we[i] {
					t.Fatalf("/sketch?b=%d (%s): entry %d = %+v, offline %+v", b, format, i, ge[i], we[i])
				}
			}
		}
	}
}

// TestEpochVisibility: queries answer from the frozen snapshot only —
// offers are invisible until a freeze, and each freeze advances the epoch
// reported everywhere.
func TestEpochVisibility(t *testing.T) {
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1, K: 16},
		Assignments: 1,
		Shards:      2,
	}
	s, ts := newTestServer(t, cfg)

	postJSON(t, ts.URL+"/offer", Offer{Assignment: 0, Key: "a", Weight: 5})
	if got := queryHTTP(t, ts.URL, "agg=sum&b=0"); got != 0 {
		t.Fatalf("pre-freeze query sees unfrozen data: %v", got)
	}
	if s.Epoch() != 0 {
		t.Fatalf("epoch %d before first freeze", s.Epoch())
	}
	res := postJSON(t, ts.URL+"/freeze", nil)
	if res["epoch"].(float64) != 1 {
		t.Fatalf("freeze response epoch = %v, want 1", res["epoch"])
	}
	// k ≥ |I| makes the estimate exact.
	if got := queryHTTP(t, ts.URL, "agg=sum&b=0"); got != 5 {
		t.Fatalf("post-freeze sum = %v, want 5", got)
	}
	// Next epoch accumulates: a disjoint key joins the cumulative sketch.
	postJSON(t, ts.URL+"/offer", Offer{Assignment: 0, Key: "b", Weight: 3})
	postJSON(t, ts.URL+"/freeze", nil)
	if got := queryHTTP(t, ts.URL, "agg=sum&b=0"); got != 8 {
		t.Fatalf("cumulative sum after second epoch = %v, want 8", got)
	}
	if s.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", s.Epoch())
	}
}

// TestFreezeContractViolationKeepsServing: a key offered in two epochs
// (violating pre-aggregation) fails the freeze loudly with 409, keeps the
// previous snapshot serving, and lets later, clean epochs proceed.
func TestFreezeContractViolationKeepsServing(t *testing.T) {
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1, K: 16},
		Assignments: 1,
		Shards:      2,
	}
	s, ts := newTestServer(t, cfg)
	postJSON(t, ts.URL+"/offer", Offer{Assignment: 0, Key: "dup", Weight: 5})
	postJSON(t, ts.URL+"/freeze", nil)

	// Same key again; with k ≥ |I| both copies survive the merge, so the
	// violation is detected at the next freeze.
	postJSON(t, ts.URL+"/offer", Offer{Assignment: 0, Key: "dup", Weight: 7})
	resp, err := http.Post(ts.URL+"/freeze", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body := decodeJSONBody(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("freeze of duplicated key: status %d (%v), want 409", resp.StatusCode, body)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "at most once") {
		t.Fatalf("freeze error does not explain the contract: %v", body)
	}
	if s.Epoch() != 1 {
		t.Fatalf("failed freeze advanced the epoch to %d", s.Epoch())
	}
	if got := queryHTTP(t, ts.URL, "agg=sum&b=0"); got != 5 {
		t.Fatalf("serving snapshot changed after failed freeze: %v, want 5", got)
	}
	// The poisoned epoch is discarded; a fresh epoch works.
	postJSON(t, ts.URL+"/offer", Offer{Assignment: 0, Key: "clean", Weight: 2})
	postJSON(t, ts.URL+"/freeze", nil)
	if got := queryHTTP(t, ts.URL, "agg=sum&b=0"); got != 7 {
		t.Fatalf("post-recovery sum = %v, want 7", got)
	}
}

// TestFailedFreezeDoesNotLeakWorkers: a failed freeze must still shut
// down every assignment's epoch sketcher — the regression was abandoning
// the not-yet-frozen sketchers on the first panic, leaking their worker
// goroutines on every failed freeze of a server meant to survive them
// indefinitely.
func TestFailedFreezeDoesNotLeakWorkers(t *testing.T) {
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1, K: 16},
		Assignments: 3,
		Shards:      8,
		Workers:     4,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	offerAll := func(key string, w float64) {
		s.mu.Lock()
		for b := 0; b < s.ingest.NumAssignments(); b++ {
			s.ingest.Offer(b, key, w)
		}
		s.mu.Unlock()
	}
	offerAll("dup", 1)
	if _, err := s.freeze(); err != nil {
		t.Fatal(err)
	}

	baseline := runtime.NumGoroutine()
	const failedFreezes = 10
	for i := 0; i < failedFreezes; i++ {
		offerAll("dup", 1) // violates the once-per-assignment contract
		if _, err := s.freeze(); err == nil {
			t.Fatal("freeze of duplicated key succeeded")
		}
	}
	// Each epoch arms assignments×min(workers, shards) drain goroutines;
	// leaking even one failed freeze's worth would exceed the slack.
	if got := runtime.NumGoroutine(); got > baseline+6 {
		t.Fatalf("goroutines grew from %d to %d across %d failed freezes (leaked epoch workers)",
			baseline, got, failedFreezes)
	}
	// And the server still works.
	offerAll("clean", 2)
	if _, err := s.freeze(); err != nil {
		t.Fatalf("clean freeze after failures: %v", err)
	}
}

// TestCloseReleasesWorkersAndKeepsServing: Close frees the armed epoch's
// worker goroutines; afterwards ingestion is refused with 503 while
// queries and sketch export keep serving the last snapshot.
func TestCloseReleasesWorkersAndKeepsServing(t *testing.T) {
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1, K: 16},
		Assignments: 2,
		Shards:      8,
		Workers:     4,
	}
	baseline := runtime.NumGoroutine()
	s, ts := newTestServer(t, cfg)
	postJSON(t, ts.URL+"/offer", Offer{Assignment: 0, Key: "a", Weight: 4})
	postJSON(t, ts.URL+"/freeze", nil)

	s.Close()
	s.Close() // idempotent
	// Give the released workers a beat to exit before counting.
	for i := 0; i < 100 && runtime.NumGoroutine() > baseline+4; i++ {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline+4 {
		t.Errorf("goroutines %d > baseline %d after Close (epoch workers not released)", got, baseline)
	}

	status := func(method, path string) int {
		req, _ := http.NewRequest(method, ts.URL+path, strings.NewReader(`{"assignment":0,"key":"b","weight":1}`))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := status(http.MethodPost, "/offer"); code != http.StatusServiceUnavailable {
		t.Errorf("offer after Close: status %d, want 503", code)
	}
	if code := status(http.MethodPost, "/freeze"); code != http.StatusServiceUnavailable {
		t.Errorf("freeze after Close: status %d, want 503", code)
	}
	if got := queryHTTP(t, ts.URL, "agg=sum&b=0"); got != 4 {
		t.Errorf("query after Close = %v, want 4 (last snapshot must keep serving)", got)
	}
	if code := status(http.MethodGet, "/sketch?b=0"); code != http.StatusOK {
		t.Errorf("sketch export after Close: status %d, want 200", code)
	}
}

// TestOfferBodyTooLarge: the ingest endpoint bounds its request body so a
// single request cannot exhaust the resident process's memory.
func TestOfferBodyTooLarge(t *testing.T) {
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1, K: 8},
		Assignments: 1,
		Shards:      1,
	}
	_, ts := newTestServer(t, cfg)
	huge := `{"offers":[{"assignment":0,"key":"` + strings.Repeat("x", maxOfferBody) + `","weight":1}]}`
	resp, err := http.Post(ts.URL+"/offer", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

// TestBadRequests: malformed input yields 4xx with a JSON error, never a
// panic or a silent ingest.
func TestBadRequests(t *testing.T) {
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1, K: 8},
		Assignments: 2,
		Shards:      1,
	}
	_, ts := newTestServer(t, cfg)

	post := func(path, body string) int {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	for name, tc := range map[string]struct{ got, want int }{
		"offer garbage":           {post("/offer", "not json"), 400},
		"offer empty":             {post("/offer", "{}"), 400},
		"offer bad assignment":    {post("/offer", `{"assignment":9,"key":"a","weight":1}`), 400},
		"offer negative weight":   {post("/offer", `{"assignment":0,"key":"a","weight":-1}`), 400},
		"offer empty key":         {post("/offer", `{"offers":[{"assignment":0,"key":"","weight":1}]}`), 400},
		"offer wrong method":      {get("/offer"), 405},
		"freeze wrong method":     {get("/freeze"), 405},
		"query missing agg":       {get("/query"), 400},
		"query unknown agg":       {get("/query?agg=nope"), 400},
		"query bad b":             {get("/query?agg=sum&b=7"), 400},
		"query bad R":             {get("/query?agg=L1&R=0,9"), 400},
		"query duplicate R":       {get("/query?agg=L1&R=0,0"), 400},
		"query bad l":             {get("/query?agg=lth&l=9"), 400},
		"sketch missing b":        {get("/sketch"), 400},
		"sketch bad b":            {get("/sketch?b=9"), 400},
		"sketch bad format":       {get("/sketch?b=0&format=xml"), 400},
		"sketch wrong method":     {post("/sketch?b=0", ""), 405},
		"healthz ok":              {get("/healthz"), 200},
		"vars ok":                 {get("/debug/vars"), 200},
		"query ok without freeze": {get("/query?agg=L1"), 200},
	} {
		if tc.got != tc.want {
			t.Errorf("%s: status %d, want %d", name, tc.got, tc.want)
		}
	}

	// A rejected batch must not half-apply: the valid head of a batch with
	// an invalid tail is not ingested.
	if code := post("/offer", `{"offers":[{"assignment":0,"key":"good","weight":1},{"assignment":5,"key":"bad","weight":1}]}`); code != 400 {
		t.Fatalf("mixed batch status %d, want 400", code)
	}
	postJSON(t, ts.URL+"/freeze", nil)
	if got := queryHTTP(t, ts.URL, "agg=sum&b=0"); got != 0 {
		t.Fatalf("rejected batch was partially ingested: sum = %v", got)
	}
}

// TestCountersAndHealth: the expvar-style endpoint reports the ingest and
// query activity.
func TestCountersAndHealth(t *testing.T) {
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1, K: 8},
		Assignments: 1,
		Shards:      1,
	}
	_, ts := newTestServer(t, cfg)
	postJSON(t, ts.URL+"/offer", map[string]any{"offers": []Offer{
		{Assignment: 0, Key: "a", Weight: 1},
		{Assignment: 0, Key: "b", Weight: 2},
		{Assignment: 0, Key: "zero", Weight: 0}, // skipped, never sampled
	}})
	postJSON(t, ts.URL+"/freeze", nil)
	queryHTTP(t, ts.URL, "agg=sum&b=0")

	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	vars := decodeJSONBody(t, resp.Body)
	resp.Body.Close()
	for name, want := range map[string]float64{
		"cws.offers":          2,
		"cws.offer_batches":   1,
		"cws.freezes":         1,
		"cws.queries":         1,
		"cws.epoch":           1,
		"cws.serving_entries": 2,
	} {
		if got, _ := vars[name].(float64); got != want {
			t.Errorf("%s = %v, want %v", name, vars[name], want)
		}
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health := decodeJSONBody(t, resp.Body)
	resp.Body.Close()
	if health["status"] != "ok" || health["epoch"].(float64) != 1 {
		t.Fatalf("healthz = %v", health)
	}
}

// TestNewRejectsBadConfig: user-supplied configuration fails gracefully.
func TestNewRejectsBadConfig(t *testing.T) {
	base := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1, K: 8},
		Assignments: 1,
		Shards:      1,
	}
	for name, mutate := range map[string]func(*Config){
		"k=0":          func(c *Config) { c.Sample.K = 0 },
		"assignments":  func(c *Config) { c.Assignments = 0 },
		"shards":       func(c *Config) { c.Shards = 0 },
		"indep-diff":   func(c *Config) { c.Sample.Family = rank.EXP; c.Sample.Mode = rank.IndependentDifferences },
		"bad family":   func(c *Config) { c.Sample.Family = 99 },
		"bad mode":     func(c *Config) { c.Sample.Mode = 99 },
		"ipps+indiff":  func(c *Config) { c.Sample.Mode = rank.IndependentDifferences },
		"negative k":   func(c *Config) { c.Sample.K = -3 },
		"neg. shards":  func(c *Config) { c.Shards = -1 },
		"neg. assign.": func(c *Config) { c.Assignments = -2 },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted invalid config %+v", name, cfg)
		}
	}
	if _, err := New(base); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// postRaw posts a raw body with an explicit content type.
func postRaw(t *testing.T, url, contentType string, body []byte) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp, decodeJSONBody(t, resp.Body)
}

// TestStreamingIngestEquivalence: the NDJSON and binary /ingest lanes must
// produce exactly the state that /offer batches would — same accepted
// count, and bit-identical query answers after freeze.
func TestStreamingIngestEquivalence(t *testing.T) {
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 23, K: 128},
		Assignments: 2,
		Shards:      4,
		Workers:     2,
	}
	offers := testStream(2500, 17)
	ref := offlineSummary(t, cfg.Sample, offers, cfg.Assignments).RangeLSet(nil).Estimate(nil)

	encodeNDJSON := func() []byte {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, o := range offers {
			if err := enc.Encode(o); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	encodeBinary := func() []byte {
		var body []byte
		for _, o := range offers {
			body = AppendBinaryOffer(body, o.Assignment, o.Key, o.Weight)
		}
		return body
	}
	cases := []struct {
		name, contentType string
		body              []byte
	}{
		{"ndjson", "application/x-ndjson", encodeNDJSON()},
		{"binary", ContentTypeBinaryIngest, encodeBinary()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, ts := newTestServer(t, cfg)
			resp, out := postRaw(t, ts.URL+"/ingest", tc.contentType, tc.body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("POST /ingest: status %d: %v", resp.StatusCode, out)
			}
			if got := int(out["accepted"].(float64)); got != len(offers) {
				t.Fatalf("accepted %d offers, want %d", got, len(offers))
			}
			postJSON(t, ts.URL+"/freeze", nil)
			if got := queryHTTP(t, ts.URL, "agg=L1"); got != ref {
				t.Fatalf("L1 after /ingest = %v, want offline %v", got, ref)
			}
		})
	}
}

// TestStreamingIngestErrors: malformed records yield 400 with the count of
// records already applied; a closed server yields 503; rejected weights
// never reach the sketchers.
func TestStreamingIngestErrors(t *testing.T) {
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 5, K: 16},
		Assignments: 2,
		Shards:      2,
		Workers:     1,
	}
	s, ts := newTestServer(t, cfg)

	resp, out := postRaw(t, ts.URL+"/ingest", "application/x-ndjson",
		[]byte(`{"assignment":0,"key":"a","weight":1}`+"\n"+`{"assignment":9,"key":"b","weight":1}`+"\n"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range assignment: status %d: %v", resp.StatusCode, out)
	}
	if _, ok := out["accepted"]; !ok {
		t.Fatalf("400 response does not report the accepted count: %v", out)
	}

	resp, out = postRaw(t, ts.URL+"/ingest", "application/x-ndjson",
		[]byte(`{"assignment":0,"key":"c","weight":-1}`+"\n"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative weight: status %d: %v", resp.StatusCode, out)
	}

	var bin []byte
	bin = binary.AppendUvarint(bin, 0)
	bin = binary.AppendUvarint(bin, maxIngestKeyLen+1)
	resp, out = postRaw(t, ts.URL+"/ingest", ContentTypeBinaryIngest, bin)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized binary key: status %d: %v", resp.StatusCode, out)
	}

	s.Close()
	resp, out = postRaw(t, ts.URL+"/ingest", "application/x-ndjson",
		[]byte(`{"assignment":0,"key":"z","weight":1}`+"\n"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest after Close: status %d: %v", resp.StatusCode, out)
	}
}

// TestStreamingIngestEdgeCases: an all-skipped or empty stream still
// reports the server's real epoch; media-type parameters do not reroute
// the binary framing to the JSON decoder; oversized keys are rejected on
// both lanes.
func TestStreamingIngestEdgeCases(t *testing.T) {
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 3, K: 8},
		Assignments: 1,
		Shards:      1,
		Workers:     1,
	}
	_, ts := newTestServer(t, cfg)
	postJSON(t, ts.URL+"/offer", map[string]any{"assignment": 0, "key": "seed", "weight": 1})
	postJSON(t, ts.URL+"/freeze", nil)
	postJSON(t, ts.URL+"/freeze", nil)

	resp, out := postRaw(t, ts.URL+"/ingest", "application/x-ndjson",
		[]byte(`{"assignment":0,"key":"zero","weight":0}`+"\n"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("all-skipped stream: status %d: %v", resp.StatusCode, out)
	}
	if got := int(out["epoch"].(float64)); got != 2 {
		t.Fatalf("all-skipped stream reported epoch %d, want the real epoch 2", got)
	}

	var bin []byte
	bin = AppendBinaryOffer(bin, 0, "param", 2)
	resp, out = postRaw(t, ts.URL+"/ingest", ContentTypeBinaryIngest+"; charset=utf-8", bin)
	if resp.StatusCode != http.StatusOK || int(out["accepted"].(float64)) != 1 {
		t.Fatalf("binary lane with media-type parameter: status %d: %v", resp.StatusCode, out)
	}

	big := strings.Repeat("k", maxIngestKeyLen+1)
	resp, out = postRaw(t, ts.URL+"/ingest", "application/x-ndjson",
		[]byte(`{"assignment":0,"key":"`+big+`","weight":1}`+"\n"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized NDJSON key: status %d: %v", resp.StatusCode, out)
	}
}

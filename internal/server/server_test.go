package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"coordsample/internal/cliquery"
	"coordsample/internal/core"
	"coordsample/internal/estimate"
	"coordsample/internal/rank"
	"coordsample/internal/sketch"
	"coordsample/internal/store"
)

// testStream is a deterministic two-assignment weighted stream with key
// churn: some keys live in only one assignment.
func testStream(n int, seed int64) []Offer {
	rng := rand.New(rand.NewSource(seed))
	var offers []Offer
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("host-%05d", i)
		base := math.Exp(rng.NormFloat64() * 2)
		if rng.Float64() < 0.9 {
			offers = append(offers, Offer{Assignment: 0, Key: key, Weight: base * (0.5 + rng.Float64())})
		}
		if rng.Float64() < 0.9 {
			offers = append(offers, Offer{Assignment: 1, Key: key, Weight: base * (0.5 + rng.Float64())})
		}
	}
	return offers
}

// offlineSummary runs the in-process dispersed pipeline over the stream.
func offlineSummary(t *testing.T, cfg core.Config, offers []Offer, assignments int) *estimate.Dispersed {
	t.Helper()
	sketchers := make([]*core.AssignmentSketcher, assignments)
	for b := range sketchers {
		sketchers[b] = core.NewAssignmentSketcher(cfg, b)
	}
	for _, o := range offers {
		sketchers[o.Assignment].Offer(o.Key, o.Weight)
	}
	sketches := make([]*sketch.BottomK, assignments)
	for b, sk := range sketchers {
		sketches[b] = sk.Sketch()
	}
	d, err := core.CombineDispersed(cfg, sketches)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// tryPostJSON posts and reports failure as an error: safe to use from
// non-test goroutines, where t.Fatal (FailNow) is not allowed.
func tryPostJSON(url string, body any) (map[string]any, error) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return nil, err
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("POST %s: status %d: %v", url, resp.StatusCode, out)
	}
	return out, nil
}

func postJSON(t *testing.T, url string, body any) map[string]any {
	t.Helper()
	out, err := tryPostJSON(url, body)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func decodeJSONBody(t *testing.T, r io.Reader) map[string]any {
	t.Helper()
	var out map[string]any
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// queryHTTP runs GET /query and returns the estimate exactly as the JSON
// number parsed back to float64 (shortest-representation round-trip, so ==
// means bit-identity).
func queryHTTP(t *testing.T, base, params string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/query?" + params)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := decodeJSONBody(t, resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /query?%s: status %d: %v", params, resp.StatusCode, out)
	}
	v, ok := out["estimate"].(float64)
	if !ok {
		t.Fatalf("GET /query?%s: no numeric estimate in %v", params, out)
	}
	return v
}

// TestBitIdenticalAcrossConcurrentFreezes is the acceptance criterion: the
// server answers every cliquery aggregate over HTTP bit-identically to the
// offline pipeline on the same stream, with offers arriving from concurrent
// clients and freezes racing them mid-stream. Run under -race in CI.
func TestBitIdenticalAcrossConcurrentFreezes(t *testing.T) {
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 7, K: 128},
		Assignments: 2,
		Shards:      4,
		Workers:     2,
	}
	offers := testStream(3000, 11)
	offline := offlineSummary(t, cfg.Sample, offers, cfg.Assignments)

	_, ts := newTestServer(t, cfg)

	// Four concurrent producers over disjoint chunks, racing two freezes.
	// However the stream is cut into epochs, the cumulative merge must
	// reproduce the offline sketch exactly.
	const producers = 4
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for lo := p * len(offers) / producers; lo < (p+1)*len(offers)/producers; lo += 100 {
				hi := lo + 100
				if max := (p + 1) * len(offers) / producers; hi > max {
					hi = max
				}
				if _, err := tryPostJSON(ts.URL+"/offer", map[string]any{"offers": offers[lo:hi]}); err != nil {
					t.Error(err) // t.Fatal is not allowed off the test goroutine
					return
				}
			}
		}(p)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			if _, err := tryPostJSON(ts.URL+"/freeze", nil); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		t.Fatal("concurrent ingest failed; skipping bit-identity checks")
	}
	postJSON(t, ts.URL+"/freeze", nil) // publish everything still in flight

	pred := func(key string) bool { return strings.HasPrefix(key, "host-0") }
	checks := []struct {
		params string
		query  string
		b, l   int
		pred   func(string) bool
	}{
		{"agg=sum&b=0", "sum", 0, 1, nil},
		{"agg=sum&b=1&prefix=host-0", "sum", 1, 1, pred},
		{"agg=min", "min", 0, 1, nil},
		{"agg=max", "max", 0, 1, nil},
		{"agg=L1", "L1", 0, 1, nil},
		{"agg=L1&R=0,1", "L1", 0, 1, nil},
		{"agg=lth&l=2", "lth", 0, 2, nil},
		{"agg=jaccard&prefix=host-0", "jaccard", 0, 1, pred},
	}
	for _, c := range checks {
		var R []int
		if strings.Contains(c.params, "R=0,1") {
			R = []int{0, 1}
		}
		_, want, _, err := cliquery.Answer(offline, c.query, c.b, R, c.l, c.pred, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := queryHTTP(t, ts.URL, c.params)
		if got != want {
			t.Errorf("/query?%s = %v, offline pipeline = %v (must be bit-identical)", c.params, got, want)
		}
		// Second query exercises the snapshot's AW-summary cache; the
		// answer must not move.
		if again := queryHTTP(t, ts.URL, c.params); again != got {
			t.Errorf("/query?%s cached answer %v != first answer %v", c.params, again, got)
		}
	}

	// The served sketches themselves must be bit-identical to the offline
	// ones: same entries, same conditioning ranks.
	for b := 0; b < cfg.Assignments; b++ {
		for _, format := range []string{"binary", "json"} {
			resp, err := http.Get(fmt.Sprintf("%s/sketch?b=%d&format=%s", ts.URL, b, format))
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := sketch.Decode(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatalf("decoding /sketch?b=%d&format=%s: %v", b, format, err)
			}
			want := offline.Sketch(b).(*sketch.BottomK)
			got := decoded.BottomK
			if got == nil {
				t.Fatalf("/sketch?b=%d: not a bottom-k file", b)
			}
			if got.KthRank() != want.KthRank() || got.Threshold() != want.Threshold() {
				t.Fatalf("/sketch?b=%d (%s): conditioning ranks (%v, %v) != offline (%v, %v)",
					b, format, got.KthRank(), got.Threshold(), want.KthRank(), want.Threshold())
			}
			ge, we := got.Entries(), want.Entries()
			if len(ge) != len(we) {
				t.Fatalf("/sketch?b=%d (%s): %d entries, offline has %d", b, format, len(ge), len(we))
			}
			for i := range ge {
				if ge[i] != we[i] {
					t.Fatalf("/sketch?b=%d (%s): entry %d = %+v, offline %+v", b, format, i, ge[i], we[i])
				}
			}
		}
	}
}

// TestEpochVisibility: queries answer from the frozen snapshot only —
// offers are invisible until a freeze, and each freeze advances the epoch
// reported everywhere.
func TestEpochVisibility(t *testing.T) {
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1, K: 16},
		Assignments: 1,
		Shards:      2,
	}
	s, ts := newTestServer(t, cfg)

	postJSON(t, ts.URL+"/offer", Offer{Assignment: 0, Key: "a", Weight: 5})
	if got := queryHTTP(t, ts.URL, "agg=sum&b=0"); got != 0 {
		t.Fatalf("pre-freeze query sees unfrozen data: %v", got)
	}
	if s.Epoch() != 0 {
		t.Fatalf("epoch %d before first freeze", s.Epoch())
	}
	res := postJSON(t, ts.URL+"/freeze", nil)
	if res["epoch"].(float64) != 1 {
		t.Fatalf("freeze response epoch = %v, want 1", res["epoch"])
	}
	// k ≥ |I| makes the estimate exact.
	if got := queryHTTP(t, ts.URL, "agg=sum&b=0"); got != 5 {
		t.Fatalf("post-freeze sum = %v, want 5", got)
	}
	// Next epoch accumulates: a disjoint key joins the cumulative sketch.
	postJSON(t, ts.URL+"/offer", Offer{Assignment: 0, Key: "b", Weight: 3})
	postJSON(t, ts.URL+"/freeze", nil)
	if got := queryHTTP(t, ts.URL, "agg=sum&b=0"); got != 8 {
		t.Fatalf("cumulative sum after second epoch = %v, want 8", got)
	}
	if s.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", s.Epoch())
	}
}

// TestFreezeContractViolationKeepsServing: a key offered in two epochs
// (violating pre-aggregation) fails the freeze loudly with 409, keeps the
// previous snapshot serving, and lets later, clean epochs proceed.
func TestFreezeContractViolationKeepsServing(t *testing.T) {
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1, K: 16},
		Assignments: 1,
		Shards:      2,
	}
	s, ts := newTestServer(t, cfg)
	postJSON(t, ts.URL+"/offer", Offer{Assignment: 0, Key: "dup", Weight: 5})
	postJSON(t, ts.URL+"/freeze", nil)

	// Same key again; with k ≥ |I| both copies survive the merge, so the
	// violation is detected at the next freeze.
	postJSON(t, ts.URL+"/offer", Offer{Assignment: 0, Key: "dup", Weight: 7})
	resp, err := http.Post(ts.URL+"/freeze", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body := decodeJSONBody(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("freeze of duplicated key: status %d (%v), want 409", resp.StatusCode, body)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "at most once") {
		t.Fatalf("freeze error does not explain the contract: %v", body)
	}
	if s.Epoch() != 1 {
		t.Fatalf("failed freeze advanced the epoch to %d", s.Epoch())
	}
	if got := queryHTTP(t, ts.URL, "agg=sum&b=0"); got != 5 {
		t.Fatalf("serving snapshot changed after failed freeze: %v, want 5", got)
	}
	// The poisoned epoch is discarded; a fresh epoch works.
	postJSON(t, ts.URL+"/offer", Offer{Assignment: 0, Key: "clean", Weight: 2})
	postJSON(t, ts.URL+"/freeze", nil)
	if got := queryHTTP(t, ts.URL, "agg=sum&b=0"); got != 7 {
		t.Fatalf("post-recovery sum = %v, want 7", got)
	}
}

// TestFailedFreezeDoesNotLeakWorkers: a failed freeze must still shut
// down every assignment's epoch sketcher — the regression was abandoning
// the not-yet-frozen sketchers on the first panic, leaking their worker
// goroutines on every failed freeze of a server meant to survive them
// indefinitely.
func TestFailedFreezeDoesNotLeakWorkers(t *testing.T) {
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1, K: 16},
		Assignments: 3,
		Shards:      8,
		Workers:     4,
		Lanes:       2,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	offerAll := func(key string, w float64) {
		s.ingestMu.RLock()
		for b := 0; b < s.ingest.ms.NumAssignments(); b++ {
			s.ingest.ms.Offer(b, key, w)
		}
		s.ingestMu.RUnlock()
	}
	offerAll("dup", 1)
	if _, err := s.freeze(); err != nil {
		t.Fatal(err)
	}

	baseline := runtime.NumGoroutine()
	const failedFreezes = 10
	for i := 0; i < failedFreezes; i++ {
		offerAll("dup", 1) // violates the once-per-assignment contract
		if _, err := s.freeze(); err == nil {
			t.Fatal("freeze of duplicated key succeeded")
		}
	}
	// Each epoch arms assignments×min(workers, shards) drain goroutines;
	// leaking even one failed freeze's worth would exceed the slack.
	if got := runtime.NumGoroutine(); got > baseline+6 {
		t.Fatalf("goroutines grew from %d to %d across %d failed freezes (leaked epoch workers)",
			baseline, got, failedFreezes)
	}
	// And the server still works.
	offerAll("clean", 2)
	if _, err := s.freeze(); err != nil {
		t.Fatalf("clean freeze after failures: %v", err)
	}
}

// TestCloseReleasesWorkersAndKeepsServing: Close frees the armed epoch's
// worker goroutines; afterwards ingestion is refused with 503 while
// queries and sketch export keep serving the last snapshot.
func TestCloseReleasesWorkersAndKeepsServing(t *testing.T) {
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1, K: 16},
		Assignments: 2,
		Shards:      8,
		Workers:     4,
	}
	baseline := runtime.NumGoroutine()
	s, ts := newTestServer(t, cfg)
	postJSON(t, ts.URL+"/offer", Offer{Assignment: 0, Key: "a", Weight: 4})
	postJSON(t, ts.URL+"/freeze", nil)

	s.Close()
	s.Close() // idempotent
	// Give the released workers a beat to exit before counting.
	for i := 0; i < 100 && runtime.NumGoroutine() > baseline+4; i++ {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline+4 {
		t.Errorf("goroutines %d > baseline %d after Close (epoch workers not released)", got, baseline)
	}

	status := func(method, path string) int {
		req, _ := http.NewRequest(method, ts.URL+path, strings.NewReader(`{"assignment":0,"key":"b","weight":1}`))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := status(http.MethodPost, "/offer"); code != http.StatusServiceUnavailable {
		t.Errorf("offer after Close: status %d, want 503", code)
	}
	if code := status(http.MethodPost, "/freeze"); code != http.StatusServiceUnavailable {
		t.Errorf("freeze after Close: status %d, want 503", code)
	}
	if got := queryHTTP(t, ts.URL, "agg=sum&b=0"); got != 4 {
		t.Errorf("query after Close = %v, want 4 (last snapshot must keep serving)", got)
	}
	if code := status(http.MethodGet, "/sketch?b=0"); code != http.StatusOK {
		t.Errorf("sketch export after Close: status %d, want 200", code)
	}
}

// TestOfferBodyTooLarge: the ingest endpoint bounds its request body so a
// single request cannot exhaust the resident process's memory.
func TestOfferBodyTooLarge(t *testing.T) {
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1, K: 8},
		Assignments: 1,
		Shards:      1,
	}
	_, ts := newTestServer(t, cfg)
	huge := `{"offers":[{"assignment":0,"key":"` + strings.Repeat("x", maxOfferBody) + `","weight":1}]}`
	resp, err := http.Post(ts.URL+"/offer", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

// TestBadRequests: malformed input yields 4xx with a JSON error, never a
// panic or a silent ingest.
func TestBadRequests(t *testing.T) {
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1, K: 8},
		Assignments: 2,
		Shards:      1,
	}
	_, ts := newTestServer(t, cfg)

	post := func(path, body string) int {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	for name, tc := range map[string]struct{ got, want int }{
		"offer garbage":           {post("/offer", "not json"), 400},
		"offer empty":             {post("/offer", "{}"), 400},
		"offer bad assignment":    {post("/offer", `{"assignment":9,"key":"a","weight":1}`), 400},
		"offer negative weight":   {post("/offer", `{"assignment":0,"key":"a","weight":-1}`), 400},
		"offer empty key":         {post("/offer", `{"offers":[{"assignment":0,"key":"","weight":1}]}`), 400},
		"offer wrong method":      {get("/offer"), 405},
		"freeze wrong method":     {get("/freeze"), 405},
		"query missing agg":       {get("/query"), 400},
		"query unknown agg":       {get("/query?agg=nope"), 400},
		"query bad b":             {get("/query?agg=sum&b=7"), 400},
		"query bad R":             {get("/query?agg=L1&R=0,9"), 400},
		"query duplicate R":       {get("/query?agg=L1&R=0,0"), 400},
		"query bad l":             {get("/query?agg=lth&l=9"), 400},
		"sketch missing b":        {get("/sketch"), 400},
		"sketch bad b":            {get("/sketch?b=9"), 400},
		"sketch bad format":       {get("/sketch?b=0&format=xml"), 400},
		"sketch wrong method":     {post("/sketch?b=0", ""), 405},
		"healthz ok":              {get("/healthz"), 200},
		"vars ok":                 {get("/debug/vars"), 200},
		"query ok without freeze": {get("/query?agg=L1"), 200},
	} {
		if tc.got != tc.want {
			t.Errorf("%s: status %d, want %d", name, tc.got, tc.want)
		}
	}

	// A rejected batch must not half-apply: the valid head of a batch with
	// an invalid tail is not ingested.
	if code := post("/offer", `{"offers":[{"assignment":0,"key":"good","weight":1},{"assignment":5,"key":"bad","weight":1}]}`); code != 400 {
		t.Fatalf("mixed batch status %d, want 400", code)
	}
	postJSON(t, ts.URL+"/freeze", nil)
	if got := queryHTTP(t, ts.URL, "agg=sum&b=0"); got != 0 {
		t.Fatalf("rejected batch was partially ingested: sum = %v", got)
	}
}

// TestCountersAndHealth: the expvar-style endpoint reports the ingest and
// query activity.
func TestCountersAndHealth(t *testing.T) {
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1, K: 8},
		Assignments: 1,
		Shards:      1,
	}
	_, ts := newTestServer(t, cfg)
	postJSON(t, ts.URL+"/offer", map[string]any{"offers": []Offer{
		{Assignment: 0, Key: "a", Weight: 1},
		{Assignment: 0, Key: "b", Weight: 2},
		{Assignment: 0, Key: "zero", Weight: 0}, // skipped, never sampled
	}})
	postJSON(t, ts.URL+"/freeze", nil)
	queryHTTP(t, ts.URL, "agg=sum&b=0")

	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	vars := decodeJSONBody(t, resp.Body)
	resp.Body.Close()
	for name, want := range map[string]float64{
		"cws.offers":          2,
		"cws.offer_batches":   1,
		"cws.freezes":         1,
		"cws.queries":         1,
		"cws.epoch":           1,
		"cws.serving_entries": 2,
	} {
		if got, _ := vars[name].(float64); got != want {
			t.Errorf("%s = %v, want %v", name, vars[name], want)
		}
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health := decodeJSONBody(t, resp.Body)
	resp.Body.Close()
	if health["status"] != "ok" || health["epoch"].(float64) != 1 {
		t.Fatalf("healthz = %v", health)
	}
}

// TestNewRejectsBadConfig: user-supplied configuration fails gracefully.
func TestNewRejectsBadConfig(t *testing.T) {
	base := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1, K: 8},
		Assignments: 1,
		Shards:      1,
	}
	for name, mutate := range map[string]func(*Config){
		"k=0":          func(c *Config) { c.Sample.K = 0 },
		"assignments":  func(c *Config) { c.Assignments = 0 },
		"shards":       func(c *Config) { c.Shards = 0 },
		"indep-diff":   func(c *Config) { c.Sample.Family = rank.EXP; c.Sample.Mode = rank.IndependentDifferences },
		"bad family":   func(c *Config) { c.Sample.Family = 99 },
		"bad mode":     func(c *Config) { c.Sample.Mode = 99 },
		"ipps+indiff":  func(c *Config) { c.Sample.Mode = rank.IndependentDifferences },
		"negative k":   func(c *Config) { c.Sample.K = -3 },
		"neg. shards":  func(c *Config) { c.Shards = -1 },
		"neg. assign.": func(c *Config) { c.Assignments = -2 },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted invalid config %+v", name, cfg)
		}
	}
	if _, err := New(base); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// postRaw posts a raw body with an explicit content type.
func postRaw(t *testing.T, url, contentType string, body []byte) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp, decodeJSONBody(t, resp.Body)
}

// TestStreamingIngestEquivalence: the NDJSON and binary /ingest lanes must
// produce exactly the state that /offer batches would — same accepted
// count, and bit-identical query answers after freeze.
func TestStreamingIngestEquivalence(t *testing.T) {
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 23, K: 128},
		Assignments: 2,
		Shards:      4,
		Workers:     2,
	}
	offers := testStream(2500, 17)
	ref := offlineSummary(t, cfg.Sample, offers, cfg.Assignments).RangeLSet(nil).Estimate(nil)

	encodeNDJSON := func() []byte {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, o := range offers {
			if err := enc.Encode(o); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	encodeBinary := func() []byte {
		var body []byte
		for _, o := range offers {
			body = AppendBinaryOffer(body, o.Assignment, o.Key, o.Weight)
		}
		return body
	}
	cases := []struct {
		name, contentType string
		body              []byte
	}{
		{"ndjson", "application/x-ndjson", encodeNDJSON()},
		{"binary", ContentTypeBinaryIngest, encodeBinary()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, ts := newTestServer(t, cfg)
			resp, out := postRaw(t, ts.URL+"/ingest", tc.contentType, tc.body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("POST /ingest: status %d: %v", resp.StatusCode, out)
			}
			if got := int(out["accepted"].(float64)); got != len(offers) {
				t.Fatalf("accepted %d offers, want %d", got, len(offers))
			}
			postJSON(t, ts.URL+"/freeze", nil)
			if got := queryHTTP(t, ts.URL, "agg=L1"); got != ref {
				t.Fatalf("L1 after /ingest = %v, want offline %v", got, ref)
			}
		})
	}
}

// TestStreamingIngestErrors: malformed records yield 400 with the count of
// records already applied; a closed server yields 503; rejected weights
// never reach the sketchers.
func TestStreamingIngestErrors(t *testing.T) {
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 5, K: 16},
		Assignments: 2,
		Shards:      2,
		Workers:     1,
	}
	s, ts := newTestServer(t, cfg)

	resp, out := postRaw(t, ts.URL+"/ingest", "application/x-ndjson",
		[]byte(`{"assignment":0,"key":"a","weight":1}`+"\n"+`{"assignment":9,"key":"b","weight":1}`+"\n"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range assignment: status %d: %v", resp.StatusCode, out)
	}
	if _, ok := out["accepted"]; !ok {
		t.Fatalf("400 response does not report the accepted count: %v", out)
	}

	resp, out = postRaw(t, ts.URL+"/ingest", "application/x-ndjson",
		[]byte(`{"assignment":0,"key":"c","weight":-1}`+"\n"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative weight: status %d: %v", resp.StatusCode, out)
	}

	var bin []byte
	bin = binary.AppendUvarint(bin, 0)
	bin = binary.AppendUvarint(bin, maxIngestKeyLen+1)
	resp, out = postRaw(t, ts.URL+"/ingest", ContentTypeBinaryIngest, bin)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized binary key: status %d: %v", resp.StatusCode, out)
	}

	s.Close()
	resp, out = postRaw(t, ts.URL+"/ingest", "application/x-ndjson",
		[]byte(`{"assignment":0,"key":"z","weight":1}`+"\n"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest after Close: status %d: %v", resp.StatusCode, out)
	}
}

// TestStreamingIngestEdgeCases: an all-skipped or empty stream still
// reports the server's real epoch; media-type parameters do not reroute
// the binary framing to the JSON decoder; oversized keys are rejected on
// both lanes.
func TestStreamingIngestEdgeCases(t *testing.T) {
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 3, K: 8},
		Assignments: 1,
		Shards:      1,
		Workers:     1,
	}
	_, ts := newTestServer(t, cfg)
	postJSON(t, ts.URL+"/offer", map[string]any{"assignment": 0, "key": "seed", "weight": 1})
	postJSON(t, ts.URL+"/freeze", nil)
	postJSON(t, ts.URL+"/freeze", nil)

	resp, out := postRaw(t, ts.URL+"/ingest", "application/x-ndjson",
		[]byte(`{"assignment":0,"key":"zero","weight":0}`+"\n"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("all-skipped stream: status %d: %v", resp.StatusCode, out)
	}
	if got := int(out["epoch"].(float64)); got != 2 {
		t.Fatalf("all-skipped stream reported epoch %d, want the real epoch 2", got)
	}

	var bin []byte
	bin = AppendBinaryOffer(bin, 0, "param", 2)
	resp, out = postRaw(t, ts.URL+"/ingest", ContentTypeBinaryIngest+"; charset=utf-8", bin)
	if resp.StatusCode != http.StatusOK || int(out["accepted"].(float64)) != 1 {
		t.Fatalf("binary lane with media-type parameter: status %d: %v", resp.StatusCode, out)
	}

	big := strings.Repeat("k", maxIngestKeyLen+1)
	resp, out = postRaw(t, ts.URL+"/ingest", "application/x-ndjson",
		[]byte(`{"assignment":0,"key":"`+big+`","weight":1}`+"\n"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized NDJSON key: status %d: %v", resp.StatusCode, out)
	}
}

// chunkEpochs cuts a stream into n contiguous chunks — the per-epoch
// ingest batches of the time-travel tests.
func chunkEpochs(offers []Offer, n int) [][]Offer {
	chunks := make([][]Offer, n)
	for i := range chunks {
		chunks[i] = offers[i*len(offers)/n : (i+1)*len(offers)/n]
	}
	return chunks
}

// queryHTTPWithStatus is queryHTTP without the success requirement.
func queryHTTPStatus(t *testing.T, base, params string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(base + "/query?" + params)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, decodeJSONBody(t, resp.Body)
}

// TestEpochRangeQueriesBitIdentical: ?epochs=lo..hi answers every
// aggregate over exactly that time window, bit-identically to the offline
// pipeline run over only those epochs' offers — including after ring
// eviction, where out-of-window queries fail loudly.
func TestEpochRangeQueriesBitIdentical(t *testing.T) {
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 13, K: 64},
		Assignments: 2,
		Shards:      4,
		Workers:     2,
		Retain:      8,
	}
	const epochs = 4
	chunks := chunkEpochs(testStream(2400, 29), epochs)

	_, ts := newTestServer(t, cfg)
	for _, chunk := range chunks {
		postJSON(t, ts.URL+"/offer", map[string]any{"offers": chunk})
		postJSON(t, ts.URL+"/freeze", nil)
	}

	for lo := 1; lo <= epochs; lo++ {
		for hi := lo; hi <= epochs; hi++ {
			var window []Offer
			for e := lo; e <= hi; e++ {
				window = append(window, chunks[e-1]...)
			}
			offline := offlineSummary(t, cfg.Sample, window, cfg.Assignments)
			for _, check := range []struct {
				params string
				q      string
			}{
				{"agg=L1", "L1"}, {"agg=max", "max"}, {"agg=sum&b=0", "sum"}, {"agg=jaccard", "jaccard"},
			} {
				_, want, _, err := cliquery.Answer(offline, check.q, 0, nil, 1, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				params := fmt.Sprintf("%s&epochs=%d..%d", check.params, lo, hi)
				if got := queryHTTP(t, ts.URL, params); got != want {
					t.Errorf("/query?%s = %v, offline over epochs %d..%d = %v (must be bit-identical)", params, got, lo, hi, want)
				}
				// Memoized second answer must not move.
				if again := queryHTTP(t, ts.URL, params); again != queryHTTP(t, ts.URL, params) {
					t.Errorf("/query?%s: memoized answer moved", params)
				}
			}
			// The exported window sketch decodes to the offline epochs' merge.
			for b := 0; b < cfg.Assignments; b++ {
				resp, err := http.Get(fmt.Sprintf("%s/sketch?b=%d&epochs=%d..%d", ts.URL, b, lo, hi))
				if err != nil {
					t.Fatal(err)
				}
				decoded, err := sketch.Decode(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Fatalf("decoding /sketch?b=%d&epochs=%d..%d: %v", b, lo, hi, err)
				}
				want := offline.Sketch(b).(*sketch.BottomK)
				if decoded.BottomK == nil || decoded.BottomK.KthRank() != want.KthRank() ||
					decoded.BottomK.Threshold() != want.Threshold() || decoded.BottomK.Size() != want.Size() {
					t.Fatalf("/sketch?b=%d&epochs=%d..%d does not match the offline window sketch", b, lo, hi)
				}
			}
		}
	}

	// The full window equals the cumulative answer.
	if full, cum := queryHTTP(t, ts.URL, fmt.Sprintf("agg=L1&epochs=1..%d", epochs)), queryHTTP(t, ts.URL, "agg=L1"); full != cum {
		t.Errorf("epochs=1..%d L1 %v != cumulative L1 %v", epochs, full, cum)
	}

	// Out-of-window and malformed ranges fail loudly.
	for name, params := range map[string]string{
		"beyond current": fmt.Sprintf("agg=L1&epochs=2..%d", epochs+1),
		"malformed":      "agg=L1&epochs=7..3",
		"zero epoch":     "agg=L1&epochs=0..2",
	} {
		if code, body := queryHTTPStatus(t, ts.URL, params); code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%v), want 400", name, code, body)
		}
	}
}

// TestEpochRangeEviction: a memory-only ring evicts old epochs; evicted
// windows are refused with an explanation, retained ones keep answering.
func TestEpochRangeEviction(t *testing.T) {
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 3, K: 16},
		Assignments: 1,
		Shards:      1,
		Retain:      2,
	}
	_, ts := newTestServer(t, cfg)
	for i := 0; i < 4; i++ {
		postJSON(t, ts.URL+"/offer", Offer{Assignment: 0, Key: fmt.Sprintf("k%d", i), Weight: float64(i + 1)})
		postJSON(t, ts.URL+"/freeze", nil)
	}
	// Epochs 3..4 retained; k >= |I| makes estimates exact.
	if got := queryHTTP(t, ts.URL, "agg=sum&b=0&epochs=3..4"); got != 3+4 {
		t.Fatalf("epochs=3..4 sum = %v, want 7", got)
	}
	if got := queryHTTP(t, ts.URL, "agg=sum&b=0&epochs=4"); got != 4 {
		t.Fatalf("epochs=4 sum = %v, want 4", got)
	}
	code, body := queryHTTPStatus(t, ts.URL, "agg=sum&b=0&epochs=2..3")
	if code != http.StatusBadRequest {
		t.Fatalf("evicted window: status %d, want 400", code)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "retained window is 3..4") {
		t.Fatalf("evicted-window error does not name the retained window: %v", body)
	}
	// Retain=0 (the default) refuses range queries outright.
	cfg.Retain = 0
	_, ts0 := newTestServer(t, cfg)
	postJSON(t, ts0.URL+"/offer", Offer{Assignment: 0, Key: "a", Weight: 1})
	postJSON(t, ts0.URL+"/freeze", nil)
	if code, _ := queryHTTPStatus(t, ts0.URL, "agg=sum&b=0&epochs=1"); code != http.StatusBadRequest {
		t.Fatalf("retain=0 range query: status %d, want 400", code)
	}
}

// openTestStore opens a writable store for the server configuration.
func openTestStore(t *testing.T, dir string, cfg Config, retain int) *store.Store {
	t.Helper()
	st, err := store.Open(store.Config{Dir: dir, Retain: retain, Sample: cfg.Sample, Assignments: cfg.Assignments})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestStoreBackedRecoveryBitIdentical is the in-process half of the
// restart acceptance criterion (the cmd/cws-serve e2e covers the real
// SIGKILL): freeze epochs through a durable server, abandon it without any
// shutdown, recover from the same directory, and every answer — cumulative,
// per-window, and exported sketches — is bit-identical to both the
// pre-crash server and the offline pipeline. Runs under -race in CI.
func TestStoreBackedRecoveryBitIdentical(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 41, K: 64},
		Assignments: 2,
		Shards:      4,
		Workers:     2,
	}
	const epochs = 4
	chunks := chunkEpochs(testStream(2000, 37), epochs)

	queries := []string{
		"agg=L1", "agg=max", "agg=min", "agg=jaccard", "agg=sum&b=1",
		"agg=L1&epochs=2..4", "agg=sum&b=0&epochs=3", "agg=jaccard&epochs=1..2",
	}

	cfg.Store = openTestStore(t, dir, cfg, 8)
	s1, ts1 := newTestServer(t, cfg)
	for _, chunk := range chunks {
		postJSON(t, ts1.URL+"/offer", map[string]any{"offers": chunk})
		postJSON(t, ts1.URL+"/freeze", nil)
	}
	preKill := make(map[string]float64)
	for _, q := range queries {
		preKill[q] = queryHTTP(t, ts1.URL, q)
	}
	// Simulated SIGKILL: no Server.Shutdown, no final freeze — recovery may
	// rely only on what AppendEpoch acknowledged. Closing the store writes
	// nothing (everything acknowledged is already fsynced); it only drops
	// the writer flock, exactly as a killed process would.
	_ = s1
	cfg.Store.Close()

	cfg2 := cfg
	cfg2.Store = openTestStore(t, dir, cfg, 8)
	s2, ts2 := newTestServer(t, cfg2)
	if s2.Epoch() != epochs {
		t.Fatalf("recovered epoch %d, want %d", s2.Epoch(), epochs)
	}
	for _, q := range queries {
		if got := queryHTTP(t, ts2.URL, q); got != preKill[q] {
			t.Errorf("/query?%s after recovery = %v, pre-kill %v (must be bit-identical)", q, got, preKill[q])
		}
	}
	// And against the offline pipeline over all offers.
	var all []Offer
	for _, chunk := range chunks {
		all = append(all, chunk...)
	}
	offline := offlineSummary(t, cfg.Sample, all, cfg.Assignments)
	if want := offline.RangeLSet(nil).Estimate(nil); queryHTTP(t, ts2.URL, "agg=L1") != want {
		t.Errorf("recovered L1 != offline pipeline")
	}

	// Life goes on: epoch numbering continues and new freezes accumulate.
	extra := testStream(500, 91)
	for i := range extra {
		extra[i].Key = "post-" + extra[i].Key // disjoint from the recovered epochs
	}
	postJSON(t, ts2.URL+"/offer", map[string]any{"offers": extra})
	res := postJSON(t, ts2.URL+"/freeze", nil)
	if res["epoch"].(float64) != epochs+1 {
		t.Fatalf("post-recovery freeze epoch = %v, want %d", res["epoch"], epochs+1)
	}
	offline = offlineSummary(t, cfg.Sample, append(all, extra...), cfg.Assignments)
	if want := offline.RangeLSet(nil).Estimate(nil); queryHTTP(t, ts2.URL, "agg=L1") != want {
		t.Errorf("post-recovery cumulative L1 != offline pipeline over all offers")
	}
}

// TestStoreBackedRetentionFollowsStore: with a store attached the server's
// ring mirrors the store's retention, and compacted epochs are refused
// identically before and after recovery.
func TestStoreBackedRetentionFollowsStore(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 8, K: 16},
		Assignments: 1,
		Shards:      1,
		Retain:      99, // ignored: the store's retention governs
	}
	cfg.Store = openTestStore(t, dir, cfg, 2)
	_, ts := newTestServer(t, cfg)
	for i := 0; i < 5; i++ {
		postJSON(t, ts.URL+"/offer", Offer{Assignment: 0, Key: fmt.Sprintf("k%d", i), Weight: float64(i + 1)})
		postJSON(t, ts.URL+"/freeze", nil)
	}
	if got := queryHTTP(t, ts.URL, "agg=sum&b=0&epochs=4..5"); got != 4+5 {
		t.Fatalf("epochs=4..5 sum = %v, want 9", got)
	}
	codeBefore, _ := queryHTTPStatus(t, ts.URL, "agg=sum&b=0&epochs=3..5")
	if codeBefore != http.StatusBadRequest {
		t.Fatalf("compacted window before restart: status %d, want 400", codeBefore)
	}

	cfg.Store.Close() // drop the writer flock, as a killed process would
	cfg2 := cfg
	cfg2.Store = openTestStore(t, dir, cfg, 2)
	_, ts2 := newTestServer(t, cfg2)
	if got := queryHTTP(t, ts2.URL, "agg=sum&b=0&epochs=4..5"); got != 9 {
		t.Fatalf("recovered epochs=4..5 sum = %v, want 9", got)
	}
	if got := queryHTTP(t, ts2.URL, "agg=sum&b=0"); got != 1+2+3+4+5 {
		t.Fatalf("recovered cumulative sum = %v, want 15", got)
	}
	if code, _ := queryHTTPStatus(t, ts2.URL, "agg=sum&b=0&epochs=3..5"); code != http.StatusBadRequest {
		t.Fatalf("compacted window after restart: status %d, want 400", code)
	}
}

// TestShutdownAutoFreezes: Shutdown publishes and persists the open
// epoch's offers; a clean server shuts down without minting empty epochs.
func TestShutdownAutoFreezes(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 2, K: 16},
		Assignments: 1,
		Shards:      2,
	}
	cfg.Store = openTestStore(t, dir, cfg, 4)
	s, ts := newTestServer(t, cfg)
	postJSON(t, ts.URL+"/offer", Offer{Assignment: 0, Key: "a", Weight: 5})
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 1 {
		t.Fatalf("Shutdown did not freeze the dirty epoch: epoch %d", s.Epoch())
	}
	// Idempotent and clean: no second (empty) epoch.
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 1 {
		t.Fatalf("clean Shutdown minted an epoch: %d", s.Epoch())
	}

	cfg.Store.Close() // drop the writer flock before reopening the directory
	cfg2 := cfg
	cfg2.Store = openTestStore(t, dir, cfg, 4)
	_, ts2 := newTestServer(t, cfg2)
	if got := queryHTTP(t, ts2.URL, "agg=sum&b=0"); got != 5 {
		t.Fatalf("auto-frozen epoch lost: recovered sum %v, want 5", got)
	}
}

// TestNewRejectsStoreMismatch: a store opened under a different
// configuration (or read-only) is refused up front.
func TestNewRejectsStoreMismatch(t *testing.T) {
	dir := t.TempDir()
	good := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1, K: 8},
		Assignments: 2,
		Shards:      1,
	}
	st := openTestStore(t, dir, good, 2)

	bad := good
	bad.Assignments = 3
	bad.Store = st
	if _, err := New(bad); err == nil {
		t.Error("assignment-count mismatch accepted")
	}
	badSeed := good
	badSeed.Sample.Seed = 2
	badSeed.Store = st
	if _, err := New(badSeed); err == nil {
		t.Error("seed mismatch accepted")
	}
	negRetain := good
	negRetain.Retain = -1
	if _, err := New(negRetain); err == nil {
		t.Error("negative retain accepted")
	}
	good.Store = st
	s, err := New(good)
	if err != nil {
		t.Fatalf("matching store rejected: %v", err)
	}
	s.Close()
}

// TestFailedFreezeDoesNotMintPhantomEpoch: a failed (409) freeze discards
// the epoch's data, so a following Shutdown must not freeze-and-persist a
// phantom empty epoch for it.
func TestFailedFreezeDoesNotMintPhantomEpoch(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 6, K: 16},
		Assignments: 1,
		Shards:      2,
	}
	cfg.Store = openTestStore(t, dir, cfg, 4)
	s, ts := newTestServer(t, cfg)
	postJSON(t, ts.URL+"/offer", Offer{Assignment: 0, Key: "dup", Weight: 1})
	postJSON(t, ts.URL+"/freeze", nil)
	// Violate the contract; the freeze fails with 409 and discards the epoch.
	postJSON(t, ts.URL+"/offer", Offer{Assignment: 0, Key: "dup", Weight: 2})
	resp, err := http.Post(ts.URL+"/freeze", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("freeze status %d, want 409", resp.StatusCode)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 1 {
		t.Fatalf("Shutdown after failed freeze minted a phantom epoch: epoch %d, want 1", s.Epoch())
	}
	if got := cfg.Store.Epoch(); got != 1 {
		t.Fatalf("store holds %d epochs, want 1 (no phantom persisted)", got)
	}
}

// TestEstimatorSelectionEndToEnd: GET /query?est= selects the estimator
// family live. est=discarded must answer bit-identically to the offline
// discarded-family pipeline over the same stream, the default (and an
// explicit est=aw) must answer the AW family, unknown names are a 400,
// the estimated standard error rides along in the JSON (absent for ratio
// queries), and the per-family expvar counters advance.
func TestEstimatorSelectionEndToEnd(t *testing.T) {
	cfg := Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 21, K: 64},
		Assignments: 2,
		Shards:      2,
		Workers:     1,
	}
	offers := testStream(800, 17)
	offline := offlineSummary(t, cfg.Sample, offers, cfg.Assignments)
	_, ts := newTestServer(t, cfg)
	postJSON(t, ts.URL+"/offer", map[string]any{"offers": offers})
	postJSON(t, ts.URL+"/freeze", nil)

	families := []struct {
		param string
		est   estimate.Estimator
	}{
		{"", nil}, // default family
		{"&est=aw", estimate.AWEstimator},
		{"&est=discarded", estimate.DiscardedEstimator},
	}
	aggs := []struct {
		params string
		q      string
		b, l   int
	}{
		{"agg=total", "total", 0, 1},
		{"agg=L1", "L1", 0, 1},
		{"agg=sum&b=1", "sum", 1, 1},
		{"agg=min", "min", 0, 1},
		{"agg=jaccard", "jaccard", 0, 1},
	}
	for _, fam := range families {
		for _, c := range aggs {
			params := c.params + fam.param
			_, want, wantErr, err := cliquery.Answer(offline, c.q, c.b, nil, c.l, nil, fam.est)
			if err != nil {
				t.Fatal(err)
			}
			code, body := queryHTTPStatus(t, ts.URL, params)
			if code != http.StatusOK {
				t.Fatalf("/query?%s: status %d: %v", params, code, body)
			}
			if got := body["estimate"].(float64); got != want {
				t.Errorf("/query?%s = %v, offline pipeline = %v (must be bit-identical)", params, got, want)
			}
			wantName := "aw"
			if fam.est != nil {
				wantName = fam.est.Name()
			}
			if got := body["estimator"]; got != wantName {
				t.Errorf("/query?%s: estimator = %v, want %q", params, got, wantName)
			}
			se, hasSE := body["stderr"].(float64)
			if c.q == "jaccard" {
				if hasSE {
					t.Errorf("/query?%s: unexpected stderr %v for a ratio query", params, se)
				}
			} else if !hasSE || se != wantErr {
				t.Errorf("/query?%s: stderr = %v (present %v), offline = %v", params, se, hasSE, wantErr)
			}
			// Memoized second answer must not move.
			if _, again := queryHTTPStatus(t, ts.URL, params); again["estimate"].(float64) != body["estimate"].(float64) {
				t.Errorf("/query?%s: answer moved on the memoized second call", params)
			}
		}
	}

	// The discarded family must not alias the AW family's memo: on a churned
	// stream the discarded total is a genuinely different estimate.
	if aw, disc := queryHTTP(t, ts.URL, "agg=total"), queryHTTP(t, ts.URL, "agg=total&est=discarded"); aw == disc {
		t.Errorf("total: AW and discarded families answered identically (%v) on a churned stream — memo aliasing?", aw)
	}

	// Unknown estimator names are a client error, not a crash or a default.
	code, body := queryHTTPStatus(t, ts.URL, "agg=L1&est=bogus")
	if code != http.StatusBadRequest {
		t.Fatalf("est=bogus: status %d (%v), want 400", code, body)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "unknown estimator") {
		t.Errorf("est=bogus error = %q, want it to name the unknown estimator", msg)
	}

	// Per-family counters: the loop above issued len(aggs) queries twice
	// (memo check) per family = 10 discarded and 2×10 AW, plus 1 of each
	// from the aliasing probe; the bogus query counts nowhere.
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	vars := decodeJSONBody(t, resp.Body)
	resp.Body.Close()
	if got, _ := vars["cws.queries_est_aw"].(float64); got != 21 {
		t.Errorf("cws.queries_est_aw = %v, want 21", got)
	}
	if got, _ := vars["cws.queries_est_discarded"].(float64); got != 11 {
		t.Errorf("cws.queries_est_discarded = %v, want 11", got)
	}
}

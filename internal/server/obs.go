package server

import (
	"net/http"
	"time"

	"coordsample/internal/obs"
)

// serverMetrics is the serving layer's histogram set. The histograms are
// created through the server's registry in initObs, so they are always
// non-nil and the recording sites stay branch-free.
type serverMetrics struct {
	offer          *obs.Histogram // POST /offer request latency
	ingestStream   *obs.Histogram // POST /ingest whole-stream latency
	queryAW        *obs.Histogram // GET /query latency, AW estimator family
	queryDiscarded *obs.Histogram // GET /query latency, discarded-samples family
	freezeDetach   *obs.Histogram // freeze: epoch detach under the ingest write lock
	freezeMerge    *obs.Histogram // freeze: terminal freeze + cumulative merge
	freezePersist  *obs.Histogram // freeze: durable persist (the ack point)
}

// initObs wires the server's observability: the metrics registry (shared
// with the cluster router when cws-serve runs both), the trace ring behind
// GET /debug/traces, and the component-tagged structured logger. Nil
// config fields get private defaults, so embedders pay nothing for the
// layer they did not ask for.
//
// The registry exposes the expvar counters the server already keeps (as
// function-backed series — no double bookkeeping), the request/freeze
// histograms, the store's durability histograms when a store is attached,
// and one hits/fires counter pair per configured fault point — the whole
// shared fault Set, so injected cluster and store faults are scrapable
// from the serving process's /metrics.
func (s *Server) initObs(cfg Config) {
	s.reg = cfg.Metrics
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	s.traces = cfg.Traces
	if s.traces == nil {
		s.traces = obs.NewTraceRing(64)
	}
	s.log = obs.Component(cfg.Log, "server")

	r := s.reg
	m := &s.om
	m.offer = r.NewHistogram("cws_offer_latency_seconds", "POST /offer request latency.")
	m.ingestStream = r.NewHistogram("cws_ingest_stream_seconds", "POST /ingest whole-stream latency.")
	const queryHelp = "GET /query latency by estimator family."
	m.queryAW = r.NewHistogramL("cws_query_latency_seconds", queryHelp, obs.Label("est", "aw"))
	m.queryDiscarded = r.NewHistogramL("cws_query_latency_seconds", queryHelp, obs.Label("est", "discarded"))
	const freezeHelp = "Freeze phase latency: detach (ingest write lock held), merge (terminal freeze + cumulative merge), persist (durable ack)."
	m.freezeDetach = r.NewHistogramL("cws_freeze_phase_seconds", freezeHelp, obs.Label("phase", "detach"))
	m.freezeMerge = r.NewHistogramL("cws_freeze_phase_seconds", freezeHelp, obs.Label("phase", "merge"))
	m.freezePersist = r.NewHistogramL("cws_freeze_phase_seconds", freezeHelp, obs.Label("phase", "persist"))

	r.Counter("cws_offers_total", "Offers accepted into the current or a frozen epoch.", s.offers.Value)
	r.Counter("cws_offer_batches_total", "POST /offer requests accepted.", s.offerBatches.Value)
	r.Counter("cws_ingest_streams_total", "POST /ingest streams completed.", s.ingestStreams.Value)
	r.CounterL("cws_queries_total", "Queries answered, by estimator family.", obs.Label("est", "aw"), s.queriesAW.Value)
	r.CounterL("cws_queries_total", "Queries answered, by estimator family.", obs.Label("est", "discarded"), s.queriesDiscarded.Value)
	r.Counter("cws_range_queries_total", "Queries answered over a retained epoch window (?epochs=lo..hi).", s.rangeQueries.Value)
	r.Counter("cws_freezes_total", "Successful epoch freezes.", s.freezes.Value)
	r.Counter("cws_freeze_errors_total", "Failed freezes (contract violations and persist failures).", s.freezeErrors.Value)
	r.Counter("cws_sketch_exports_total", "GET /sketch exports.", s.sketchExports.Value)
	r.Counter("cws_segment_exports_total", "GET /sketches peer bulk-fetch exports.", s.segmentExports.Value)
	r.Counter("cws_sheds_total", "Ingest requests shed with 429 under the inflight bound.", s.sheds.Value)
	r.Counter("cws_store_persists_total", "Epochs durably persisted.", s.persists.Value)
	r.Counter("cws_store_persist_errors_total", "Persist failures (the freeze was not acknowledged).", s.persistErrors.Value)
	r.Counter("cws_store_compaction_errors_total", "Compaction failures after an acknowledged persist.", s.compactionErrors.Value)

	r.Gauge("cws_epoch", "Epoch of the serving snapshot.", func() float64 {
		return float64(s.snap.Load().epoch)
	})
	r.Gauge("cws_retained_epochs", "Individually retained epochs (the queryable time windows).", func() float64 {
		return float64(len(s.snap.Load().retained))
	})
	r.Gauge("cws_serving_entries", "Sample entries across the serving snapshot's sketches.", func() float64 {
		n := 0
		for _, sk := range s.snap.Load().sketches {
			n += sk.Size()
		}
		return float64(n)
	})
	r.Gauge("cws_inflight_ingest", "Ingest requests currently in flight.", func() float64 {
		return float64(s.inflight.Load())
	})
	r.Gauge("cws_recovered_epochs", "Epochs recovered from the store at startup.", func() float64 {
		return float64(s.recoveredEpochs.Value())
	})
	r.Gauge("cws_uptime_seconds", "Process uptime.", func() float64 {
		return time.Since(s.start).Seconds()
	})

	if s.store != nil {
		sm := s.store.Metrics()
		r.RegisterHistogram("cws_store_segment_write_seconds",
			"Durable segment write latency (write, fsync, rename, dir sync).", "", sm.SegmentWrite)
		r.RegisterHistogram("cws_store_manifest_fsync_seconds",
			"Manifest fsync latency — the epoch acknowledgement point.", "", sm.ManifestFsync)
		r.Gauge("cws_store_bytes", "Bytes of referenced segment files on disk.", func() float64 {
			return float64(s.store.DiskBytes())
		})
	}

	if cfg.Faults != nil {
		for _, pt := range cfg.Faults.Points() {
			pt := pt
			r.CounterL("cws_fault_hits_total",
				"Times an instrumented fault site was reached, per configured point.",
				obs.Label("point", pt), func() int64 { return int64(cfg.Faults.Hits(pt)) })
			r.CounterL("cws_fault_fires_total",
				"Times a configured fault point actually injected its action.",
				obs.Label("point", pt), func() int64 { return int64(cfg.Faults.Fires(pt)) })
		}
	}
}

// handleTraces serves the bounded ring of recent request traces, newest
// first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": s.traces.Reports()})
}

// Package server is the online serving layer: a long-running HTTP service
// that ingests weighted observations and answers every multiple-assignment
// aggregate query of the library online — the paper's promise ("answer
// aggregate queries from tiny coordinated summaries instead of the data")
// turned from a batch pipeline into a resident process.
//
// # Epoch lifecycle
//
// Ingestion and querying never touch the same sketch. Offers stream into
// the current *epoch*: one sharded, concurrent shard.Sketcher per weight
// assignment behind a set of concurrent ingest lanes (each lane is a
// single-producer front-end with its own lock; requests take a lane
// round-robin, so up to Lanes requests offer in parallel). A freeze
// (POST /freeze) detaches the epoch's sketchers, arms fresh ones, and then
// — off the ingest path, with producers already streaming into the next
// epoch — terminally freezes the detached sketchers across a bounded
// worker pool, merges each assignment's epoch sketch into the cumulative
// sketch of all previous epochs with the exact sketch.Merge — the merge
// lemma: bottom-k sketches of disjoint key sets merge into the bit-exact
// bottom-k sketch of the union — and atomically swaps in a new immutable
// snapshot.
//
// Because per-assignment sketching requires pre-aggregated keys (each key
// offered at most once per assignment — the same contract every builder in
// this repository has), the epochs of one assignment are disjoint key
// sets, and the cumulative merge is exact: after any freeze, the served
// sketches are bit-identical to what a single offline pass over every
// offer so far would have built, no matter how the stream was cut into
// epochs or interleaved with freezes. A violation that leaves two copies
// of a key in the merged sample is detected at freeze time and reported as
// an HTTP error; the serving snapshot is left unchanged.
//
// # Freeze-and-swap memory model
//
// The snapshot is published through an atomic pointer. Queries load the
// pointer once and answer entirely from the immutable snapshot — frozen
// sketches, a frozen estimate.Dispersed summary, and a memo of the
// AW-summaries built so far (estimates are deterministic, sorted-order
// Neumaier sums, so memoization can never change an answer). Readers
// therefore never take the ingest lock, writers never wait for readers,
// and no query can ever observe a half-built sketch: the swap is a single
// pointer store of a fully constructed snapshot, and Go's atomic.Pointer
// gives the necessary happens-before edge between the freeze that built
// the snapshot and every query that loads it.
//
// # Durability and time travel
//
// With a store attached (Config.Store, wired from cws-serve's -data-dir),
// every freeze persists the epoch's sketch set through the durable epoch
// store (internal/store) *before* the new snapshot is published: segment
// write, fsync, rename, manifest append, fsync — only then is the freeze
// acknowledged to the client. On startup the server recovers the store's
// acknowledged epochs and serves them immediately, bit-identically to the
// pre-crash process: same cumulative sketches, same retained epochs, same
// query answers. A freeze whose persist fails returns 500 and leaves the
// serving snapshot unchanged, exactly like a contract violation.
//
// Alongside the cumulative sketches, a ring of the most recent epochs is
// retained individually (the store's retention ring when durable, an
// in-memory ring otherwise). GET /query?epochs=3..7 answers any aggregate
// over exactly that time window: the retained epoch sketches — disjoint
// key sets by the pre-aggregation contract — merge on demand into the
// exact sketch of the window (the same merge lemma that makes sharding
// exact, applied to time), and per-range summaries and AW-summaries are
// memoized on the snapshot. This is the paper's "snapshots of an evolving
// database at multiple points in time" made queryable: each epoch is a
// point-in-time snapshot, and any window of them is summarized without
// touching the data again. GET /sketch?epochs=... exports the merged
// window sketch as a wire-codec file cws-merge accepts.
//
// # Ingest fast path
//
// The epoch sketchers sit behind a shard.MultiSketcher, so every offer is
// hashed exactly once, with the raw hash reused for shard routing,
// admission-bound pruning (items that certainly miss the bottom-k are
// dropped at the producer with one multiply/compare — almost all of a
// steady-state stream), and the rank of admitted items. POST /offer keeps
// the validate-everything-first JSON batch contract; POST /ingest is the
// high-throughput lane — a streaming NDJSON or binary body decoded into
// pooled, reused Observation buffers and flushed to the sketchers in large
// batches, so per-offer ingest cost is dominated by decoding, not by
// allocation or lock traffic.
//
// Concurrency: producers hold a read lock (pinning the epoch's ingest
// front-end against the freeze swap) plus one lane's mutex; distinct lanes
// are shard.MultiLanes of the same sketchers and may offer concurrently —
// exactness under interleaving is the shard layer's core-affine-lane
// guarantee. The freeze takes the write lock only for the swap itself, so
// a freeze never stalls behind a long-running ingest stream (flushes are
// batch-sized), and ingestion never waits for freeze, persist, or merge
// work.
//
// # Endpoints
//
//	POST /offer          ingest one offer or a batch (JSON)
//	POST /ingest         ingest a stream of offers (NDJSON or binary)
//	POST /freeze         advance the epoch: freeze, persist, merge, swap
//	GET  /query          answer an aggregate from the frozen snapshot
//	                     (?epochs=lo..hi restricts to a retained time window)
//	GET  /sketch         export a frozen sketch in the wire codec
//	                     (?epochs=lo..hi exports the merged window sketch)
//	GET  /sketches       export every assignment's sketch as one segment
//	                     (the cluster router's peer bulk-fetch RPC)
//	GET  /healthz        liveness + epoch + retained window
//	GET  /healthz/live   liveness only: the process is up
//	GET  /healthz/ready  readiness: 503 while draining or closed
//	GET  /debug/vars     expvar-style counters (offers, queries, epoch, ...)
//
// Query dispatch goes through internal/cliquery, the same path cws-sketch
// and cws-merge use, so a query answered by the server is bit-identical to
// the same query answered offline over the same offers — and the sketches
// exported by GET /sketch are fingerprinted wire-codec files that
// cws-merge accepts, so a live server can participate in the distributed
// combine workflow as just another site.
package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"math"
	"mime"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"coordsample/internal/cliquery"
	"coordsample/internal/core"
	"coordsample/internal/estimate"
	"coordsample/internal/faults"
	"coordsample/internal/obs"
	"coordsample/internal/rank"
	"coordsample/internal/shard"
	"coordsample/internal/sketch"
	"coordsample/internal/store"
)

// Config configures the serving layer.
type Config struct {
	// Sample is the sampling configuration shared by every assignment
	// (family, coordination mode, seed, per-assignment k). Sketches served
	// and exported by this server coordinate with any site using the same
	// Sample configuration.
	Sample core.Config
	// Assignments is |W|, the number of weight assignments ingested.
	Assignments int
	// Shards is the per-assignment shard count of the concurrent ingestion
	// pipeline (≥ 1).
	Shards int
	// Workers is the per-assignment ingestion worker count; ≤ 0 selects
	// GOMAXPROCS (capped at Shards by the sharded sketcher).
	Workers int
	// Lanes is the number of concurrent ingest lanes: independent producer
	// front-ends onto the epoch's sketchers, each with its own lock, so up
	// to Lanes HTTP requests offer concurrently instead of serializing on
	// one ingest mutex. ≤ 0 selects GOMAXPROCS. Requests are assigned to
	// lanes round-robin; a streaming /ingest request keeps its lane for the
	// whole stream (connection affinity).
	Lanes int
	// Store, when non-nil, makes the server durable: every freeze persists
	// the epoch through it before being acknowledged, and New recovers the
	// store's epochs on startup. The store must be writable and opened
	// under the same Sample configuration and assignment count.
	Store *store.Store
	// Retain is the ring of most recent epochs kept individually for
	// epoch-range queries when no store is attached (with a store, the
	// store's own retention governs and this field is ignored).
	Retain int
	// Faults injects failures at the serving layer's fault points (the
	// freeze path and the /sketches peer endpoint — see FaultFreeze and
	// FaultSketches); nil, the production state, injects nothing.
	Faults *faults.Set
	// MaxInflight, when > 0, bounds the ingest requests (/offer and
	// /ingest) served concurrently: excess requests are shed with 429 +
	// Retry-After instead of queueing on the lanes until latency
	// collapses. ≤ 0 disables shedding.
	MaxInflight int
	// QueryTimeout, when > 0, bounds one /query evaluation via
	// http.TimeoutHandler (the request context is cancelled and the
	// client gets 503). ≤ 0 leaves queries unbounded.
	QueryTimeout time.Duration
	// OwnsKey, when non-nil, is the cluster partition guard: ingest
	// rejects records whose key the hook refuses, so a misrouted client
	// cannot break the disjoint-key-sets invariant the exact
	// scatter-gather merge rests on.
	OwnsKey func(key string) bool
	// Metrics, when non-nil, is the registry GET /metrics scrapes. The
	// server registers its counters, gauges, and latency histograms into
	// it; cws-serve shares one registry between the server and the
	// cluster router so a single scrape covers both. Nil creates a
	// private registry (the endpoint still works). Do not share one
	// registry between two Servers — their series names would collide.
	Metrics *obs.Registry
	// Traces, when non-nil, is the bounded ring of recent request traces
	// served at GET /debug/traces (shared with the cluster router in
	// cws-serve). Nil creates a private 64-entry ring.
	Traces *obs.TraceRing
	// Log, when non-nil, receives the server's structured log events,
	// tagged component=server. Nil discards them.
	Log *slog.Logger
}

// The serving layer's injectable fault points.
const (
	// FaultFreeze fires inside freeze after the epoch is detached (new
	// offers already stream into the next epoch) and before it is
	// frozen, persisted, or published: "latency" deterministically
	// widens the mid-freeze window — the chaos harness SIGKILLs a peer
	// inside it — and "err" fails the freeze as an unacknowledged
	// persist failure (500; the serving snapshot is unchanged).
	FaultFreeze = "server.freeze"
	// FaultSketches fires in GET /sketches, the peer bulk-fetch RPC:
	// "err" → 500, "torn" truncates the segment body (the router's
	// decode must refuse it with a typed error), "drop" severs the
	// connection without a response, "latency" delays it (straggler
	// simulation — the router's hedge and retry food).
	FaultSketches = "server.sketches"
)

// check validates user-supplied configuration without panicking.
func (c Config) check() error {
	if err := c.Sample.Check(); err != nil {
		return err
	}
	if c.Sample.Mode == rank.IndependentDifferences {
		return fmt.Errorf("server: independent-differences coordination requires colocated weights; the server ingests dispersed streams")
	}
	if c.Assignments < 1 {
		return fmt.Errorf("server: need at least one assignment, got %d", c.Assignments)
	}
	if c.Shards < 1 {
		return fmt.Errorf("server: invalid shard count %d", c.Shards)
	}
	if c.Retain < 0 {
		return fmt.Errorf("server: negative retain %d", c.Retain)
	}
	if c.Store != nil {
		if !c.Store.Writable() {
			return fmt.Errorf("server: store was opened read-only; open it with the server's sampling configuration")
		}
		if got := c.Store.Assignments(); got != c.Assignments {
			return fmt.Errorf("server: store holds %d assignments, server configured for %d", got, c.Assignments)
		}
		if sc, ok := c.Store.SampleConfig(); !ok || sc != c.Sample {
			return fmt.Errorf("server: store sampling configuration %+v does not match the server's %+v", sc, c.Sample)
		}
	}
	return nil
}

// awMemo is a synchronized, value-deterministic AW-summary memo: racing
// builds of the same aggregate produce identical summaries (deterministic
// estimators), so storing whichever finishes first is correct. The build
// runs outside the lock so a slow build never blocks other aggregates.
type awMemo struct {
	mu    sync.Mutex
	cache map[string]estimate.AWSummary
}

// summaryFor is the memo as a cliquery.SummaryBuilder: the first query
// needing an aggregate builds its AW-summary (the expensive phase — an
// estimator pass over the union of the sketches), every later query
// reuses it.
func (m *awMemo) summaryFor(key string, build func() estimate.AWSummary) estimate.AWSummary {
	m.mu.Lock()
	aw, ok := m.cache[key]
	m.mu.Unlock()
	if ok {
		return aw
	}
	aw = build()
	m.mu.Lock()
	if prior, ok := m.cache[key]; ok {
		aw = prior
	} else {
		m.cache[key] = aw
	}
	m.mu.Unlock()
	return aw
}

// epochSet is one retained epoch: its number and its frozen per-assignment
// sketches.
type epochSet struct {
	epoch    int
	sketches []*sketch.BottomK
}

// rangeState is the lazily built, memoized serving state of one epoch
// window lo..hi: the merged per-assignment sketches of the window's
// epochs, their dispersed summary, and the window's own AW-summary memo.
// It is reachable from published snapshots, so it obeys the same
// write-once discipline (//cws:frozen is checked by the frozenwrite
// analyzer; the embedded awMemo stays internally synchronized).
//
//cws:frozen
type rangeState struct {
	sketches []*sketch.BottomK
	summary  *estimate.Dispersed
	awMemo
}

// snapshot is one immutable serving state: everything a query touches.
// It is swapped in whole by freeze and only ever read afterwards, except
// for the internally synchronized memos (the cumulative AW-summary memo
// and the per-range states), which are value-deterministic.
type snapshot struct {
	epoch    int
	summary  *estimate.Dispersed
	sketches []*sketch.BottomK
	retained []epochSet // ascending epoch; the queryable time windows
	awMemo

	rangeMu sync.Mutex
	ranges  map[string]*rangeState
}

// rangeFor returns the (memoized) serving state of the epoch window
// lo..hi, building it on first use: the window's epoch sketches —
// disjoint key sets under the pre-aggregation contract — merge into the
// exact sketch of the window, by the same merge lemma that makes sharded
// ingestion exact. sample is the server's sampling configuration (needed
// to assemble the dispersed summary). Like summaryFor, racing builds of
// the same window produce identical states, so either may be cached.
func (s *snapshot) rangeFor(sample core.Config, lo, hi int) (*rangeState, error) {
	if err := s.checkRange(lo, hi); err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%d..%d", lo, hi)
	s.rangeMu.Lock()
	rs, ok := s.ranges[key]
	s.rangeMu.Unlock()
	if ok {
		return rs, nil
	}
	parts := make([][]*sketch.BottomK, len(s.sketches))
	for _, set := range s.retained {
		if set.epoch < lo || set.epoch > hi {
			continue
		}
		for b, sk := range set.sketches {
			parts[b] = append(parts[b], sk)
		}
	}
	merged := make([]*sketch.BottomK, len(parts))
	for b, ps := range parts {
		m, err := sketch.Merge(ps...)
		if err != nil {
			return nil, err // impossible: all epochs carry this server's fingerprint
		}
		merged[b] = m
	}
	summary, err := core.CombineDispersed(sample, merged)
	if err != nil {
		return nil, err
	}
	rs = &rangeState{sketches: merged, summary: summary}
	rs.cache = make(map[string]estimate.AWSummary)
	s.rangeMu.Lock()
	if prior, ok := s.ranges[key]; ok {
		rs = prior
	} else {
		s.ranges[key] = rs
	}
	s.rangeMu.Unlock()
	return rs, nil
}

// checkRange validates an epoch window against what this snapshot retains.
func (s *snapshot) checkRange(lo, hi int) error {
	if hi > s.epoch {
		return fmt.Errorf("epoch range %d..%d exceeds the current epoch %d", lo, hi, s.epoch)
	}
	if len(s.retained) == 0 {
		return fmt.Errorf("no epochs are retained (configure -retain, or freeze first)")
	}
	if first := s.retained[0].epoch; lo < first {
		return fmt.Errorf("epochs %d..%d are no longer retained (retained window is %d..%d); raise -retain to keep more history", lo, min(hi, first-1), first, s.epoch)
	}
	return nil
}

// Server is the resident sketch service. Create it with New; it implements
// http.Handler.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	start time.Time

	mu       sync.Mutex        // serializes freeze/Close; guards cum, epoch, retained
	cum      []*sketch.BottomK // exact merged sketches of all frozen epochs
	epoch    int               // number of successful freezes (includes recovered epochs)
	retained []epochSet        // ring of the most recent frozen epochs, ascending
	retain   int               // ring capacity (store's when durable, cfg.Retain otherwise)

	// ingestMu pins the current epoch's ingest front-end: producers hold
	// the read lock across an offer batch (plus one lane's mutex), the
	// freeze swap and Close take the write lock. The write lock is held
	// only for the pointer swap — never across freeze, merge, or persist
	// work — so ingestion stalls for nanoseconds per epoch turn.
	ingestMu sync.RWMutex
	ingest   *epochIngest // current epoch's lanes over the hash-once front-end

	dirty    atomic.Bool   // offers accepted since the last freeze
	closed   atomic.Bool   // Close was called; ingestion is shut down (set under ingestMu)
	draining atomic.Bool   // SetDraining: readiness false ahead of shutdown
	epochNow atomic.Int64  // s.epoch mirrored for lock-free reads on the ingest path
	laneRR   atomic.Uint32 // round-robin lane assignment for producer requests
	inflight atomic.Int64  // concurrently served ingest requests (shedding bound)

	store *store.Store // nil = memory-only

	// Observability: the metrics registry behind GET /metrics, the trace
	// ring behind GET /debug/traces, the component-tagged logger, and the
	// serving-layer histograms (see initObs). All are non-nil after New.
	reg    *obs.Registry
	traces *obs.TraceRing
	log    *slog.Logger
	om     serverMetrics

	snap atomic.Pointer[snapshot]

	// obsBufs recycles the per-assignment Observation buffers of the
	// streaming /ingest decoder across requests.
	obsBufs sync.Pool

	// Counters use expvar types for their lock-free increments and expvar
	// JSON rendering, but are deliberately not registered in the
	// process-global expvar registry (which panics on duplicate names and
	// would forbid two servers in one process — tests, embedded use). The
	// /debug/vars handler serves them in the standard expvar format.
	offers           expvar.Int
	offerBatches     expvar.Int
	ingestStreams    expvar.Int
	queries          expvar.Int
	queriesAW        expvar.Int
	queriesDiscarded expvar.Int
	rangeQueries     expvar.Int
	freezes          expvar.Int
	freezeErrors     expvar.Int
	sketchExports    expvar.Int
	segmentExports   expvar.Int
	sheds            expvar.Int
	persists         expvar.Int
	persistErrors    expvar.Int
	compactionErrors expvar.Int
	recoveredEpochs  expvar.Int
}

// New creates a Server. Without a store (or with an empty one) it starts
// at an empty epoch 0 snapshot: queries are answerable immediately
// (estimating zero for every aggregate) and the first freeze publishes
// whatever has been offered since. With a non-empty store, New recovers
// every acknowledged epoch and serves it from the first snapshot —
// bit-identically to the pre-restart process.
func New(cfg Config) (*Server, error) {
	if err := cfg.check(); err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, start: time.Now(), store: cfg.Store, retain: cfg.Retain}
	if s.store != nil {
		s.retain = s.store.Retain()
		s.epoch = s.store.Epoch()
		s.cum = s.store.Cumulative()
		for _, rec := range s.store.Retained() {
			s.retained = append(s.retained, epochSet{epoch: rec.Epoch, sketches: rec.Sketches})
		}
		s.recoveredEpochs.Set(int64(s.epoch))
	}
	if s.cum == nil {
		s.cum = make([]*sketch.BottomK, cfg.Assignments)
		assigner := cfg.Sample.Assigner()
		for b := range s.cum {
			// The empty frozen sketch of each assignment, fingerprinted so the
			// first epoch merge (and any epoch-0 /sketch export) verifies.
			s.cum[b] = sketch.NewBottomKBuilderWithFingerprint(cfg.Sample.K, assigner.Fingerprint(b, cfg.Sample.K)).Sketch()
		}
	}
	s.ingest = newEpochIngest(cfg)
	s.epochNow.Store(int64(s.epoch))
	s.snap.Store(s.newSnapshot(s.epoch, s.cum, s.retained))
	s.obsBufs.New = func() any {
		per := make([][]shard.Observation, cfg.Assignments)
		return &per
	}

	s.initObs(cfg)
	if s.epoch > 0 {
		s.log.Debug("recovered epochs from store", "epochs", s.epoch)
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/offer", s.handleOffer)
	s.mux.HandleFunc("/ingest", s.handleIngest)
	s.mux.HandleFunc("/freeze", s.handleFreeze)
	query := http.Handler(http.HandlerFunc(s.handleQuery))
	if cfg.QueryTimeout > 0 {
		// TimeoutHandler cancels the request context at the deadline and
		// answers 503 — the per-query deadline of the hardened server.
		query = http.TimeoutHandler(query, cfg.QueryTimeout, `{"error":"query deadline exceeded"}`)
	}
	s.mux.Handle("/query", query)
	s.mux.HandleFunc("/sketch", s.handleSketch)
	s.mux.HandleFunc("/sketches", s.handleSketches)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/healthz/live", s.handleLive)
	s.mux.HandleFunc("/healthz/ready", s.handleReady)
	s.mux.HandleFunc("/debug/vars", s.handleVars)
	s.mux.Handle("/metrics", s.reg.Handler())
	s.mux.HandleFunc("/debug/traces", s.handleTraces)
	return s, nil
}

// NewHTTPServer wraps a handler in an http.Server hardened against slow
// and idle clients: without these timeouts a handful of dribbling
// connections (Slowloris) can pin every server goroutine forever.
// ReadHeaderTimeout bounds the header dribble; ReadTimeout is generous
// because streaming /ingest bodies are legitimately long-lived;
// IdleTimeout reclaims parked keep-alive connections. Per-query deadlines
// are Config.QueryTimeout's job, not the connection timeouts'.
func NewHTTPServer(addr string, handler http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// laneSlot is one ingest lane of the current epoch: a hash-once
// multi-assignment front-end (shard.MultiLane) plus the mutex making it a
// single producer. Distinct slots offer concurrently; the shard layer's
// core-affine-lane guarantee makes the frozen sketches bit-identical to a
// single-stream pass regardless of how requests interleave across slots.
type laneSlot struct {
	mu sync.Mutex
	ml *shard.MultiLane
}

// epochIngest is one epoch's ingest state: the per-assignment sketchers
// and their lane slots. It is swapped out whole at freeze, so a producer
// that pinned it under ingestMu.RLock always offers into a coherent epoch.
type epochIngest struct {
	ms    *shard.MultiSketcher
	lanes []*laneSlot
}

// slot picks the lane for a producer's round-robin ticket.
//
//cws:hotpath
func (e *epochIngest) slot(ticket uint32) *laneSlot {
	return e.lanes[int(ticket)%len(e.lanes)]
}

// newEpochIngest arms one sharded concurrent sketcher per assignment
// behind the hash-once multi-assignment front-end, with cfg.Lanes
// concurrent producer lanes over them.
func newEpochIngest(cfg Config) *epochIngest {
	ms := core.NewMultiSketcherLanes(cfg.Sample, cfg.Assignments, cfg.Shards, cfg.Workers, cfg.Lanes)
	mlanes := ms.Lanes()
	e := &epochIngest{ms: ms, lanes: make([]*laneSlot, len(mlanes))}
	for j, ml := range mlanes {
		e.lanes[j] = &laneSlot{ml: ml}
	}
	return e
}

// newSnapshot builds the immutable serving state for the given cumulative
// sketches and retained-epoch ring. The combine is fingerprint-verified;
// the sketches were built by this server under its own configuration, so a
// failure is a programming error.
func (s *Server) newSnapshot(epoch int, cum []*sketch.BottomK, retained []epochSet) *snapshot {
	summary, err := core.CombineDispersed(s.cfg.Sample, cum)
	if err != nil {
		panic(fmt.Sprintf("server: %v", err))
	}
	snap := &snapshot{
		epoch:    epoch,
		summary:  summary,
		sketches: cum,
		retained: retained,
		ranges:   make(map[string]*rangeState),
	}
	snap.cache = make(map[string]estimate.AWSummary)
	return snap
}

// ServeHTTP dispatches to the server's endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Epoch returns the number of successful freezes (the epoch the serving
// snapshot was published at).
func (s *Server) Epoch() int { return s.snap.Load().epoch }

// errClosed reports ingestion attempted after Close.
var errClosed = errors.New("server: closed")

// Close shuts the ingest pipeline down: the current epoch's sketchers are
// terminally frozen, releasing their worker goroutines. Offers of the
// unfrozen epoch are discarded (freeze first to publish them); subsequent
// offers and freezes fail with 503, while queries, sketch export, and the
// health/counter endpoints keep serving the last snapshot. Embedders that
// create servers dynamically (tests, per-tenant setups, the serve bench)
// must Close discarded instances or their epoch workers leak. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return
	}
	// closed is set under the ingest write lock: once it is visible, no
	// producer is mid-offer, so the terminal freeze below cannot race an
	// Offer (which would panic in the sketch layer).
	s.ingestMu.Lock()
	s.closed.Store(true)
	s.ingestMu.Unlock()
	for _, sk := range s.ingest.ms.Sketchers() {
		func() {
			// The freeze result is discarded, so a duplicate-key panic is
			// irrelevant here — only the worker shutdown matters.
			defer func() { _ = recover() }()
			sk.Sketch()
		}()
	}
}

// Shutdown is the graceful counterpart of Close: if any offers arrived
// since the last freeze, the open epoch is frozen first — persisted when a
// store is attached — so acknowledged ingestion survives a planned
// restart; then the ingest pipeline is shut down. The caller must have
// stopped delivering requests (http.Server.Shutdown) first: offers racing
// Shutdown may land after the final freeze and be discarded. Returns the
// final freeze's error, if any (the shutdown itself proceeds regardless).
func (s *Server) Shutdown() error {
	dirty := s.dirty.Load() && !s.closed.Load()
	var err error
	if dirty {
		_, err = s.freeze()
	}
	s.Close()
	return err
}

// SetDraining flips the server's readiness (GET /healthz/ready): a
// draining server still answers every request, but load balancers and
// cluster peers probing readiness stop routing new work to it. cws-serve
// sets it on SIGTERM, ahead of the connection drain and final freeze.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// admitIngest applies the overload-shedding bound to one ingest request.
// When MaxInflight is exceeded the request is shed with 429 + Retry-After
// — an explicit, immediately retryable refusal instead of queueing on the
// lanes until every client's latency collapses. The returned release must
// be called when an admitted request finishes.
func (s *Server) admitIngest(w http.ResponseWriter) (release func(), ok bool) {
	if s.cfg.MaxInflight <= 0 {
		return func() {}, true
	}
	if n := s.inflight.Add(1); n > int64(s.cfg.MaxInflight) {
		s.inflight.Add(-1)
		s.sheds.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "ingest saturated (%d requests in flight); retry after backoff", s.cfg.MaxInflight)
		return nil, false
	}
	return func() { s.inflight.Add(-1) }, true
}

// --- ingestion ---

// Offer is one weighted observation of one assignment, as carried by
// POST /offer.
type Offer struct {
	Assignment int     `json:"assignment"`
	Key        string  `json:"key"`
	Weight     float64 `json:"weight"`
}

// offerRequest is the POST /offer body: either a single offer object or a
// batch under "offers" (both at once is accepted; the batch is processed
// first).
type offerRequest struct {
	Offer
	Offers []Offer `json:"offers"`
}

// maxOfferBody caps the POST /offer body (8 MiB ≈ 10^5 offers): the
// decoder materializes the whole batch before validation, so without a
// cap one request could exhaust the resident process's memory. Clients
// with more data send more batches — ingestion is cumulative anyway.
const maxOfferBody = 8 << 20

func (s *Server) handleOffer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	started := time.Now()
	release, ok := s.admitIngest(w)
	if !ok {
		return
	}
	defer release()
	var req offerRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxOfferBody))
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "offer body exceeds %d bytes; split the batch", int64(maxOfferBody))
			return
		}
		writeError(w, http.StatusBadRequest, "decoding offer body: %v", err)
		return
	}
	batch := req.Offers
	if req.Key != "" {
		batch = append(batch, req.Offer)
	}
	if len(batch) == 0 {
		writeError(w, http.StatusBadRequest, "empty offer body (want an offer object or a nonempty \"offers\" array)")
		return
	}
	// Validate everything before ingesting anything, so a rejected request
	// never half-applies.
	for i, o := range batch {
		if o.Assignment < 0 || o.Assignment >= s.cfg.Assignments {
			writeError(w, http.StatusBadRequest, "offer %d: assignment %d out of range (have %d assignments)", i, o.Assignment, s.cfg.Assignments)
			return
		}
		if o.Key == "" {
			writeError(w, http.StatusBadRequest, "offer %d: empty key", i)
			return
		}
		if math.IsNaN(o.Weight) || math.IsInf(o.Weight, 0) || o.Weight < 0 {
			writeError(w, http.StatusBadRequest, "offer %d: invalid weight %v", i, o.Weight)
			return
		}
		if s.cfg.OwnsKey != nil && !s.cfg.OwnsKey(o.Key) {
			writeError(w, http.StatusBadRequest, "offer %d: key %q is not owned by this node (misrouted; check the cluster partition)", i, o.Key)
			return
		}
	}
	// Group by assignment so each sketcher sees one amortized batch.
	perAssignment := make([][]shard.Observation, s.cfg.Assignments)
	accepted := 0
	for _, o := range batch {
		if o.Weight == 0 {
			continue // never sampled; skip before taking the lock
		}
		perAssignment[o.Assignment] = append(perAssignment[o.Assignment], shard.Observation{Key: o.Key, Weight: o.Weight})
		accepted++
	}
	// Pin the epoch (read lock), then serialize only against producers on
	// the same lane: concurrent /offer requests on distinct lanes ingest
	// in parallel.
	s.ingestMu.RLock()
	if s.closed.Load() {
		s.ingestMu.RUnlock()
		writeError(w, http.StatusServiceUnavailable, "%v", errClosed)
		return
	}
	slot := s.ingest.slot(s.laneRR.Add(1))
	slot.mu.Lock()
	for b, obs := range perAssignment {
		if len(obs) > 0 {
			slot.ml.OfferBatch(b, obs)
		}
	}
	slot.mu.Unlock()
	if accepted > 0 {
		s.dirty.Store(true)
	}
	epoch := int(s.epochNow.Load())
	s.ingestMu.RUnlock()
	s.offers.Add(int64(accepted))
	s.offerBatches.Add(1)
	s.om.offer.Record(time.Since(started))
	writeJSON(w, http.StatusOK, map[string]any{"accepted": accepted, "epoch": epoch})
}

// --- streaming ingest ---

// ingestFlushEvery is how many buffered observations the streaming /ingest
// decoder accumulates before taking the ingest lock once and flushing them
// to the sketchers. Large enough to amortize the lock far below per-offer
// cost, small enough to keep the per-request buffer memory trivial.
const ingestFlushEvery = 4096

// maxIngestKeyLen bounds a single key in both /ingest framings, so a
// corrupt or malicious length prefix (binary) or oversized JSON string
// (NDJSON) cannot put an arbitrarily large key into the retained sample.
const maxIngestKeyLen = 1 << 16

// maxIngestBody caps one streaming NDJSON /ingest request. The decoder
// buffers one JSON token at a time, so without a cap a single multi-GB
// token could exhaust memory before validation runs. The binary framing
// needs no stream cap — every record is already length-bounded. Clients
// with more data send more requests; ingestion is cumulative anyway.
const maxIngestBody = 256 << 20

// ContentTypeBinaryIngest selects the binary framing of POST /ingest:
// records of (uvarint assignment, uvarint key length, key bytes, 8-byte
// little-endian IEEE-754 weight), concatenated until EOF. Any other
// content type is decoded as a stream of JSON offer objects (NDJSON —
// whitespace between objects, one per line by convention).
const ContentTypeBinaryIngest = "application/x-cws-ingest"

// ingestState is the reusable decode target of one /ingest request: the
// per-assignment observation buffers are pooled across requests and reused
// across flushes, so steady-state ingest does not grow the heap.
type ingestState struct {
	srv      *Server
	per      *[][]shard.Observation
	buffered int
	accepted int
	epoch    int
	lane     uint32 // round-robin ticket pinned for the whole stream (connection affinity)
}

func (s *Server) newIngestState() *ingestState {
	st := &ingestState{srv: s, per: s.obsBufs.Get().(*[][]shard.Observation)}
	// Seed the reported epoch with the current one so a request whose
	// records are all skipped (or empty) still reports a real epoch, and
	// pin a lane so every flush of this stream lands on the same slot —
	// the producer-side sync.Pool and pending batches stay core-affine
	// for the stream's lifetime.
	st.epoch = int(s.epochNow.Load())
	st.lane = s.laneRR.Add(1)
	return st
}

// add buffers one validated observation and flushes when the batch is full.
//
//cws:hotpath
func (st *ingestState) add(assignment int, key string, weight float64) error {
	per := *st.per
	//cws:allow-alloc amortized growth of a pooled buffer; steady-state capacity is reached after the first flush cycle
	per[assignment] = append(per[assignment], shard.Observation{Key: key, Weight: weight})
	st.buffered++
	if st.buffered >= ingestFlushEvery {
		return st.flush()
	}
	return nil
}

// flush hands the buffered observations to the stream's pinned lane under
// one epoch read lock plus one lane lock, and resets the buffers for
// reuse. Streams pinned to distinct lanes flush concurrently.
//
//cws:hotpath
func (st *ingestState) flush() error {
	if st.buffered == 0 {
		return nil
	}
	s := st.srv
	//cws:allow-alloc one epoch pin per ingestFlushEvery records is the designed flush boundary, amortized to ~0 per record
	s.ingestMu.RLock()
	if s.closed.Load() {
		s.ingestMu.RUnlock()
		return errClosed
	}
	slot := s.ingest.slot(st.lane)
	//cws:allow-alloc one lane lock per flush, paired with the epoch pin above
	slot.mu.Lock()
	per := *st.per
	for b, obs := range per {
		if len(obs) > 0 {
			slot.ml.OfferBatch(b, obs)
		}
	}
	//cws:allow-alloc flush-boundary unlock
	slot.mu.Unlock()
	s.dirty.Store(true)
	st.epoch = int(s.epochNow.Load())
	//cws:allow-alloc flush-boundary unlock
	s.ingestMu.RUnlock()
	s.offers.Add(int64(st.buffered))
	st.accepted += st.buffered
	st.buffered = 0
	for b := range per {
		per[b] = per[b][:0]
	}
	return nil
}

// release returns the buffers to the pool.
func (st *ingestState) release() {
	per := *st.per
	for b := range per {
		per[b] = per[b][:0]
	}
	st.srv.obsBufs.Put(st.per)
}

// handleIngest is the high-throughput ingest lane: a streaming request
// body — NDJSON offer objects, or the binary framing under
// ContentTypeBinaryIngest — decoded record by record into reused
// observation buffers and flushed to the sketchers in large batches.
// Unlike POST /offer there is no whole-body validation pass: records
// preceding a malformed one are already ingested when the 400 is returned
// (the error response carries the accepted count). Zero weights are
// skipped; they are never sampled.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	started := time.Now()
	release, ok := s.admitIngest(w)
	if !ok {
		return
	}
	defer release()
	st := s.newIngestState()
	defer st.release()
	var err error
	// Parse the media type so parameters ("; charset=utf-8") and casing
	// do not silently reroute a binary body to the JSON decoder.
	mediaType, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if mediaType == ContentTypeBinaryIngest {
		err = s.ingestBinary(st, r)
	} else {
		err = s.ingestNDJSON(st, r, w)
	}
	if err == nil {
		err = st.flush()
	}
	if errors.Is(err, errClosed) {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if err != nil {
		code := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			code = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, code, map[string]any{"error": err.Error(), "accepted": st.accepted})
		return
	}
	s.ingestStreams.Add(1)
	s.om.ingestStream.Record(time.Since(started))
	writeJSON(w, http.StatusOK, map[string]any{"accepted": st.accepted, "epoch": st.epoch})
}

// checkOffer validates one streamed record against the server configuration.
func (s *Server) checkOffer(n, assignment int, key string, weight float64) error {
	if assignment < 0 || assignment >= s.cfg.Assignments {
		return fmt.Errorf("record %d: assignment %d out of range (have %d assignments)", n, assignment, s.cfg.Assignments)
	}
	if key == "" {
		return fmt.Errorf("record %d: empty key", n)
	}
	if len(key) > maxIngestKeyLen {
		return fmt.Errorf("record %d: key length %d exceeds %d", n, len(key), maxIngestKeyLen)
	}
	if math.IsNaN(weight) || math.IsInf(weight, 0) || weight < 0 {
		return fmt.Errorf("record %d: invalid weight %v", n, weight)
	}
	return nil
}

// ingestNDJSON decodes a stream of JSON offer objects. json.Decoder
// tolerates any whitespace between objects, so both NDJSON and
// concatenated JSON work; the decode target is reused across records.
func (s *Server) ingestNDJSON(st *ingestState, r *http.Request, w http.ResponseWriter) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody))
	var o Offer
	for n := 0; ; n++ {
		o = Offer{}
		if err := dec.Decode(&o); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			// %w keeps the chain so the handler can map *http.MaxBytesError
			// (stream cap exceeded) to 413 instead of a generic 400.
			return fmt.Errorf("record %d: %w", n, err)
		}
		if err := s.checkOffer(n, o.Assignment, o.Key, o.Weight); err != nil {
			return err
		}
		if s.cfg.OwnsKey != nil && !s.cfg.OwnsKey(o.Key) {
			return fmt.Errorf("record %d: key %q is not owned by this node (misrouted; check the cluster partition)", n, o.Key)
		}
		if o.Weight == 0 {
			continue
		}
		if err := st.add(o.Assignment, o.Key, o.Weight); err != nil {
			return err
		}
	}
}

// ingestBinary decodes the length-prefixed binary framing. The key buffer
// is reused across records; only the key string itself is allocated (the
// sketch layer retains sampled keys, so they cannot alias a shared buffer).
//
//cws:hotpath
func (s *Server) ingestBinary(st *ingestState, r *http.Request) error {
	br := bufio.NewReaderSize(r.Body, 64<<10) //cws:allow-alloc request prologue, one reader per stream, amortized over every record in it
	keyBuf := make([]byte, 0, 256)            //cws:allow-alloc request prologue, reused across all records
	wb := make([]byte, 8)                     //cws:allow-alloc hoisted per request; a loop-local array would escape through io.ReadFull and allocate per record
	for n := 0; ; n++ {
		assignment, err := binary.ReadUvarint(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("record %d: reading assignment: %w", n, err)
		}
		keyLen, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("record %d: reading key length: %w", n, err)
		}
		if keyLen > maxIngestKeyLen {
			return fmt.Errorf("record %d: key length %d exceeds %d", n, keyLen, maxIngestKeyLen)
		}
		if cap(keyBuf) < int(keyLen) {
			//cws:allow-alloc key-buffer growth saturates at the stream's longest key, then never reallocates
			keyBuf = make([]byte, 0, keyLen)
		}
		keyBuf = keyBuf[:keyLen]
		if _, err := io.ReadFull(br, keyBuf); err != nil {
			return fmt.Errorf("record %d: reading key: %w", n, err)
		}
		if _, err := io.ReadFull(br, wb); err != nil {
			return fmt.Errorf("record %d: reading weight: %w", n, err)
		}
		weight := math.Float64frombits(binary.LittleEndian.Uint64(wb))
		// Validate before materializing the key string: skipped and
		// rejected records never allocate.
		if keyLen == 0 {
			return fmt.Errorf("record %d: empty key", n)
		}
		if err := s.checkOffer(n, int(assignment), "-", weight); err != nil {
			return err
		}
		if weight == 0 {
			continue
		}
		//cws:allow-alloc the one deliberate allocation per accepted record: the sketch layer retains sampled keys, so they must not alias the reused buffer
		key := string(keyBuf)
		if s.cfg.OwnsKey != nil && !s.cfg.OwnsKey(key) {
			return fmt.Errorf("record %d: key %q is not owned by this node (misrouted; check the cluster partition)", n, key)
		}
		if err := st.add(int(assignment), key, weight); err != nil {
			return err
		}
	}
}

// AppendBinaryOffer appends one offer in the POST /ingest binary framing —
// the encoder counterpart of the server's decoder, shared by clients and
// the ingest benchmark.
func AppendBinaryOffer(dst []byte, assignment int, key string, weight float64) []byte {
	dst = binary.AppendUvarint(dst, uint64(assignment))
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(weight))
}

// --- freeze ---

func (s *Server) handleFreeze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	snap, err := s.freeze()
	if errors.Is(err, errClosed) {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	var pe *persistError
	if errors.As(err, &pe) {
		s.freezeErrors.Add(1)
		s.log.Warn("freeze failed: epoch not acknowledged", "err", err)
		// The epoch could not be made durable; nothing was acknowledged and
		// the serving snapshot is unchanged. 500: the data was fine, the
		// disk was not.
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if err != nil {
		s.freezeErrors.Add(1)
		s.log.Warn("freeze failed: contract violation", "err", err)
		// The pre-aggregation contract was violated by the ingested data;
		// 409 Conflict distinguishes it from a malformed request.
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	s.freezes.Add(1)
	entries := make([]int, len(snap.sketches))
	for b, sk := range snap.sketches {
		entries[b] = sk.Size()
	}
	writeJSON(w, http.StatusOK, map[string]any{"epoch": snap.epoch, "assignments": s.cfg.Assignments, "entries": entries})
}

// persistError wraps a store failure during freeze: the epoch was never
// acknowledged. handleFreeze maps it to 500 (the data was valid; the disk
// failed) instead of the contract-violation 409.
type persistError struct{ err error }

func (e *persistError) Error() string {
	return fmt.Sprintf("persisting epoch: %v (the freeze was not acknowledged; the epoch's data is discarded and the serving snapshot is unchanged)", e.err)
}
func (e *persistError) Unwrap() error { return e.err }

// freeze advances the epoch: terminally freeze the current sketchers,
// persist the epoch's sketch set through the store (when durable — the
// acknowledgement point), merge each assignment's epoch sketch into the
// cumulative sketch (exact, by the merge lemma — epochs are disjoint key
// sets under the pre-aggregation contract), publish the new snapshot with
// the refreshed retention ring, and arm fresh sketchers. On error (a
// duplicate key surviving the merge — a contract violation in the
// ingested data — or a persist failure) the serving snapshot and the
// cumulative sketches are left unchanged, the poisoned epoch's data is
// discarded, and ingestion continues in a fresh epoch.
func (s *Server) freeze() (*snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil, errClosed
	}
	// Detach the epoch under the ingest write lock — held only for the
	// swap — and arm the next epoch before any freeze work runs, so
	// producers stream into the new epoch while the old one is frozen,
	// merged, and persisted off the ingest path. The old epoch's offers
	// are consumed on success and discarded on every failure path below,
	// so the fresh epoch starts clean either way — a failed freeze must
	// not leave dirty set, or Shutdown would later mint (and persist) a
	// phantom empty epoch.
	detachStart := time.Now()
	s.ingestMu.Lock()
	old := s.ingest
	s.ingest = newEpochIngest(s.cfg)
	s.dirty.Store(false)
	s.ingestMu.Unlock()
	s.om.freezeDetach.Record(time.Since(detachStart))
	if out := s.cfg.Faults.Act(FaultFreeze); out.Err != nil {
		// An injected freeze failure behaves like a persist failure: the
		// epoch was never acknowledged, the serving snapshot is unchanged.
		// (A latency-only point has already slept inside Act, widening the
		// detached-but-unpublished window the chaos harness kills into.)
		return nil, &persistError{err: out.Err}
	}
	mergeStart := time.Now()
	epochSketches, merged, err := freezeAndMerge(old.ms, s.cum)
	if err != nil {
		return nil, err
	}
	s.om.freezeMerge.Record(time.Since(mergeStart))
	if s.store != nil {
		persistStart := time.Now()
		if _, perr := s.store.AppendEpoch(epochSketches); perr != nil {
			var ce *store.CompactionError
			if errors.As(perr, &ce) {
				// The epoch itself is acknowledged; only the disk-bounding
				// compaction failed (it retries on the next append).
				s.compactionErrors.Add(1)
			} else {
				s.persistErrors.Add(1)
				return nil, &persistError{err: perr}
			}
		}
		s.om.freezePersist.Record(time.Since(persistStart))
		s.persists.Add(1)
	}
	s.epoch++
	s.epochNow.Store(int64(s.epoch))
	s.cum = merged
	// A fresh ring slice every freeze: published snapshots hold the old one.
	retained := make([]epochSet, 0, len(s.retained)+1)
	retained = append(append(retained, s.retained...), epochSet{epoch: s.epoch, sketches: epochSketches})
	if len(retained) > s.retain {
		retained = retained[len(retained)-s.retain:]
	}
	s.retained = retained
	snap := s.newSnapshot(s.epoch, merged, retained)
	s.snap.Store(snap)
	s.log.Info("epoch frozen", "epoch", s.epoch, "retained", len(retained))
	return snap, nil
}

// freezeAndMerge freezes every epoch sketcher and merges into the
// cumulative sketches, converting the duplicate-key freeze panic (the
// library's detection of pre-aggregation violations) into an error a
// server can survive. It returns both the frozen epoch sketches (what the
// store persists and the retention ring serves) and the merged cumulative
// sketches. The per-assignment freezes are independent (each terminally
// freezes its own sketcher and merges into its own cumulative sketch), so
// they fan across shard.ParallelDo's bounded pool; with one schedulable
// core this degenerates to the serial loop, and the error reported is the
// lowest assignment index's — the one a serial pass would have hit first.
// Every sketcher is frozen even when one fails: Sketch() is what shuts a
// sketcher's worker goroutines down, so abandoning the rest on the first
// failure would leak their workers on every failed freeze — unbounded
// growth in a server designed to ride failed freezes out indefinitely.
func freezeAndMerge(ingest *shard.MultiSketcher, cum []*sketch.BottomK) ([]*sketch.BottomK, []*sketch.BottomK, error) {
	sketchers := ingest.Sketchers()
	epochs := make([]*sketch.BottomK, len(sketchers))
	out := make([]*sketch.BottomK, len(sketchers))
	errs := make([]error, len(sketchers))
	shard.ParallelDo(len(sketchers), 0, func(b int) {
		epochs[b], out[b], errs[b] = freezeOne(sketchers[b], cum[b])
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return epochs, out, nil
}

// freezeOne terminally freezes one assignment's epoch sketcher and merges
// it into that assignment's cumulative sketch, recovering the panic the
// sketch layer raises when a key was offered more than once (within the
// epoch, in sk.Sketch(); across epochs, in the Merge freeze).
func freezeOne(sk *shard.Sketcher, cum *sketch.BottomK) (epochSketch, out *sketch.BottomK, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("freezing epoch: %v (each key may be offered at most once per assignment across the server's lifetime; the epoch's data is discarded and the serving snapshot is unchanged)", r)
		}
	}()
	epochSketch = sk.Sketch()
	merged, mergeErr := sketch.Merge(cum, epochSketch)
	if mergeErr != nil {
		return nil, nil, mergeErr // impossible: both sides carry this server's fingerprint
	}
	return epochSketch, merged, nil
}

// --- queries ---

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	// Every query is traced into the bounded ring behind /debug/traces;
	// ?trace=1 additionally returns the per-stage breakdown in the
	// response. The span set is the query pipeline: parse → snapshot pin
	// [→ range-merge] [→ summarize, only when this query builds a cold
	// AW-summary] → estimate.
	started := time.Now()
	tr := obs.NewTrace(s.traces.NextID(), "query")
	// The parameter grammar is shared with the cluster router (the ?est=
	// estimator family name is folded into the memo keys by
	// cliquery.AnswerVia, so the snapshot caches never alias across
	// estimators).
	sp := tr.Start("parse")
	p, err := cliquery.ParseHTTPParams(r.URL.Query(), s.cfg.Assignments)
	sp.End()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tr.Op = "query agg=" + p.Agg + " est=" + p.Est.Name()
	sp = tr.Start("snapshot-pin")
	snap := s.snap.Load()
	sp.End()
	// Default: the cumulative snapshot (all epochs). ?epochs=lo..hi
	// answers over exactly that retained time window instead.
	summary, via := snap.summary, cliquery.SummaryBuilder(snap.summaryFor)
	resp := map[string]any{"agg": p.Agg, "epoch": snap.epoch}
	if p.Epochs != "" {
		lo, hi, err := cliquery.ParseEpochRange(p.Epochs)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad epochs parameter: %v", err)
			return
		}
		sp = tr.Start("range-merge")
		rs, err := snap.rangeFor(s.cfg.Sample, lo, hi)
		sp.End()
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		summary, via = rs.summary, rs.summaryFor
		resp["epochs"] = fmt.Sprintf("%d..%d", lo, hi)
		s.rangeQueries.Add(1)
	}
	// Wrap the summary builder so the expensive cold phase — building an
	// aggregate's AW-summary — shows up as its own span. Memoized (warm)
	// queries never run the inner build, so they show no summarize span.
	baseVia := via
	via = func(key string, build func() estimate.AWSummary) estimate.AWSummary {
		return baseVia(key, func() estimate.AWSummary {
			ssp := tr.Start("summarize")
			defer ssp.End()
			return build()
		})
	}
	sp = tr.Start("estimate")
	label, v, stderr, err := cliquery.AnswerVia(summary, p.Agg, p.B, p.R, p.L, p.Pred, p.Est, via)
	sp.End()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.queries.Add(1)
	if p.Est.Name() == estimate.DiscardedEstimator.Name() {
		s.queriesDiscarded.Add(1)
		s.om.queryDiscarded.Record(time.Since(started))
	} else {
		s.queriesAW.Add(1)
		s.om.queryAW.Record(time.Since(started))
	}
	rep := tr.Report()
	s.traces.Add(rep)
	if r.URL.Query().Get("trace") == "1" {
		resp["trace"] = rep
	}
	// The estimate travels as a JSON number; encoding/json emits the
	// shortest representation that parses back to the identical float64,
	// so the bit-identity guarantee survives the HTTP boundary.
	resp["label"], resp["estimate"], resp["estimator"] = label, v, p.Est.Name()
	// stderr is NaN for ratio queries (jaccard), which JSON cannot carry —
	// the field is simply omitted there.
	if !math.IsNaN(stderr) {
		resp["stderr"] = stderr
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- sketch export ---

func (s *Server) handleSketch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	q := r.URL.Query()
	if q.Get("b") == "" {
		writeError(w, http.StatusBadRequest, "missing b parameter (assignment index 0..%d)", s.cfg.Assignments-1)
		return
	}
	b, err := intParam(q.Get("b"), 0)
	if err != nil || b < 0 || b >= s.cfg.Assignments {
		writeError(w, http.StatusBadRequest, "bad b parameter %q (assignment index 0..%d)", q.Get("b"), s.cfg.Assignments-1)
		return
	}
	codec := sketch.CodecBinary
	if f := q.Get("format"); f != "" {
		if codec, err = sketch.ParseCodec(f); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	snap := s.snap.Load()
	// Default: the cumulative sketch. ?epochs=lo..hi exports the merged
	// sketch of that retained time window instead — a wire-codec file
	// cws-merge combines like any site's.
	exported := snap.sketches[b]
	name := fmt.Sprintf("epoch-%d.%d.cws", snap.epoch, b)
	if eq := q.Get("epochs"); eq != "" {
		lo, hi, err := cliquery.ParseEpochRange(eq)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad epochs parameter: %v", err)
			return
		}
		rs, err := snap.rangeFor(s.cfg.Sample, lo, hi)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		exported = rs.sketches[b]
		name = fmt.Sprintf("epochs-%d-%d.%d.cws", lo, hi, b)
	}
	meta := sketch.WireMeta{Family: s.cfg.Sample.Family, Mode: s.cfg.Sample.Mode, Seed: s.cfg.Sample.Seed, Assignment: b}
	// Encode into memory first (sketches are bounded at k entries) so an
	// encoding failure yields a clean 500 instead of a 200 with a
	// truncated payload the client would save as a corrupt sketch file.
	var buf bytes.Buffer
	if err := sketch.EncodeBottomK(&buf, codec, meta, exported); err != nil {
		writeError(w, http.StatusInternalServerError, "encoding sketch: %v", err)
		return
	}
	if codec == sketch.CodecJSON {
		w.Header().Set("Content-Type", "application/json")
		name += ".json"
	} else {
		w.Header().Set("Content-Type", "application/octet-stream")
	}
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", name))
	w.Header().Set("X-CWS-Epoch", strconv.Itoa(snap.epoch))
	_, _ = w.Write(buf.Bytes())
	s.sketchExports.Add(1)
}

// handleSketches is the peer bulk-fetch RPC of the cluster layer: every
// assignment's cumulative sketch (or the ?epochs=lo..hi window's) as one
// multi-sketch segment — the same self-describing, CRC-closed framing the
// durable store persists — with the snapshot epoch in X-CWS-Epoch. The
// scatter-gather router decodes, checksums, and fingerprint-verifies the
// segment before merging, so a torn or corrupted response surfaces as a
// typed decode error, never as a silently wrong estimate.
func (s *Server) handleSketches(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	out := s.cfg.Faults.Act(FaultSketches)
	if out.Drop {
		// Sever the connection without a response: the fetch side sees a
		// transport error mid-read — the retry path's food.
		panic(http.ErrAbortHandler)
	}
	if out.Err != nil {
		writeError(w, http.StatusInternalServerError, "%v", out.Err)
		return
	}
	snap := s.snap.Load()
	exported, epoch := snap.sketches, snap.epoch
	if eq := r.URL.Query().Get("epochs"); eq != "" {
		lo, hi, err := cliquery.ParseEpochRange(eq)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad epochs parameter: %v", err)
			return
		}
		rs, err := snap.rangeFor(s.cfg.Sample, lo, hi)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		exported = rs.sketches
	}
	metas := make([]sketch.WireMeta, len(exported))
	for b := range metas {
		metas[b] = sketch.WireMeta{Family: s.cfg.Sample.Family, Mode: s.cfg.Sample.Mode, Seed: s.cfg.Sample.Seed, Assignment: b}
	}
	var buf bytes.Buffer
	if _, err := sketch.EncodeSegment(&buf, metas, exported); err != nil {
		writeError(w, http.StatusInternalServerError, "encoding segment: %v", err)
		return
	}
	data := buf.Bytes()
	if out.Torn {
		// A torn response with a self-consistent Content-Length: the bytes
		// arrive "successfully" and the corruption must be caught by the
		// router's segment validation, not by the transport.
		data = faults.Tear(data)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Header().Set("X-CWS-Epoch", strconv.Itoa(epoch))
	_, _ = w.Write(data)
	s.segmentExports.Add(1)
}

// --- health and counters ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	resp := map[string]any{
		"status":      "ok",
		"epoch":       snap.epoch,
		"assignments": s.cfg.Assignments,
		"k":           s.cfg.Sample.K,
		"durable":     s.store != nil,
		"uptime_sec":  time.Since(s.start).Seconds(),
	}
	if len(snap.retained) > 0 {
		resp["retained_epochs"] = fmt.Sprintf("%d..%d", snap.retained[0].epoch, snap.retained[len(snap.retained)-1].epoch)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleLive is pure liveness: the process is up and serving HTTP. It
// stays 200 through drain and even after Close — a live-but-not-ready
// server still answers queries from its last snapshot.
func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "alive"})
}

// handleReady is readiness: whether new work should be routed here. False
// (503) while draining toward shutdown or after Close — the signal load
// balancers and the cluster health-checker act on. (Store recovery runs
// inside New, so a listening server is by construction past it.)
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	if s.draining.Load() || s.closed.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining", "epoch": snap.epoch})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "epoch": snap.epoch})
}

// handleVars serves the counters in the standard expvar JSON shape. The
// offers/sec rate is computed over the process uptime; scrapers wanting
// windowed rates difference cws.offers themselves.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	servingEntries := 0
	for _, sk := range snap.sketches {
		servingEntries += sk.Size()
	}
	uptime := time.Since(s.start).Seconds()
	offersPerSec := 0.0
	if uptime > 0 {
		offersPerSec = float64(s.offers.Value()) / uptime
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	fmt.Fprintf(w, "%q: %s,\n", "cws.offers", s.offers.String())
	fmt.Fprintf(w, "%q: %s,\n", "cws.offer_batches", s.offerBatches.String())
	fmt.Fprintf(w, "%q: %s,\n", "cws.ingest_streams", s.ingestStreams.String())
	fmt.Fprintf(w, "%q: %s,\n", "cws.queries", s.queries.String())
	fmt.Fprintf(w, "%q: %s,\n", "cws.queries_est_aw", s.queriesAW.String())
	fmt.Fprintf(w, "%q: %s,\n", "cws.queries_est_discarded", s.queriesDiscarded.String())
	fmt.Fprintf(w, "%q: %s,\n", "cws.range_queries", s.rangeQueries.String())
	fmt.Fprintf(w, "%q: %s,\n", "cws.freezes", s.freezes.String())
	fmt.Fprintf(w, "%q: %s,\n", "cws.freeze_errors", s.freezeErrors.String())
	fmt.Fprintf(w, "%q: %s,\n", "cws.sketch_exports", s.sketchExports.String())
	fmt.Fprintf(w, "%q: %s,\n", "cws.segment_exports", s.segmentExports.String())
	fmt.Fprintf(w, "%q: %s,\n", "cws.sheds", s.sheds.String())
	fmt.Fprintf(w, "%q: %s,\n", "cws.store_persists", s.persists.String())
	fmt.Fprintf(w, "%q: %s,\n", "cws.store_persist_errors", s.persistErrors.String())
	fmt.Fprintf(w, "%q: %s,\n", "cws.store_compaction_errors", s.compactionErrors.String())
	fmt.Fprintf(w, "%q: %s,\n", "cws.store_recovered_epochs", s.recoveredEpochs.String())
	if s.store != nil {
		fmt.Fprintf(w, "%q: %d,\n", "cws.store_bytes", s.store.DiskBytes())
	}
	fmt.Fprintf(w, "%q: %d,\n", "cws.retained_epochs", len(snap.retained))
	fmt.Fprintf(w, "%q: %d,\n", "cws.epoch", snap.epoch)
	fmt.Fprintf(w, "%q: %d,\n", "cws.serving_entries", servingEntries)
	fmt.Fprintf(w, "%q: %g,\n", "cws.offers_per_sec", offersPerSec)
	fmt.Fprintf(w, "%q: %g\n", "cws.uptime_sec", uptime)
	fmt.Fprintf(w, "}\n")
}

// --- helpers ---

func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]any{"error": fmt.Sprintf(format, args...)})
}

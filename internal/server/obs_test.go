package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"coordsample/internal/core"
	"coordsample/internal/faults"
	"coordsample/internal/rank"
)

// obsTestConfig is the minimal serving config the observability tests use.
func obsTestConfig() Config {
	return Config{
		Sample:      core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1, K: 8},
		Assignments: 1,
		Shards:      1,
	}
}

// TestEndpointContentTypes pins every introspection endpoint's Content-Type:
// JSON endpoints must say application/json (with charset), and /metrics
// must carry the Prometheus text exposition version — scrapers and browsers
// both dispatch on it.
func TestEndpointContentTypes(t *testing.T) {
	_, ts := newTestServer(t, obsTestConfig())
	wants := map[string]string{
		"/debug/vars":    "application/json; charset=utf-8",
		"/debug/traces":  "application/json; charset=utf-8",
		"/healthz":       "application/json; charset=utf-8",
		"/healthz/live":  "application/json; charset=utf-8",
		"/healthz/ready": "application/json; charset=utf-8",
		"/metrics":       "text/plain; version=0.0.4; charset=utf-8",
	}
	for path, want := range wants {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", path, resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Type"); got != want {
			t.Errorf("GET %s: Content-Type %q, want %q", path, got, want)
		}
	}
}

// TestMetricsExposition drives an offer → freeze → query cycle and asserts
// the scrape carries the counters, histograms, and gauges of every
// instrumented stage with the values the cycle implies.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, obsTestConfig())
	postJSON(t, ts.URL+"/offer", map[string]any{"offers": []Offer{
		{Assignment: 0, Key: "a", Weight: 1},
		{Assignment: 0, Key: "b", Weight: 2},
	}})
	postJSON(t, ts.URL+"/freeze", nil)
	queryHTTP(t, ts.URL, "agg=sum&b=0")

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)
	for _, want := range []string{
		"cws_offers_total 2",
		"cws_offer_batches_total 1",
		"cws_freezes_total 1",
		`cws_queries_total{est="aw"} 1`,
		"cws_epoch 1",
		"# TYPE cws_offer_latency_seconds histogram",
		"cws_offer_latency_seconds_count 1",
		`cws_query_latency_seconds_count{est="aw"} 1`,
		`cws_freeze_phase_seconds_count{phase="detach"} 1`,
		`cws_freeze_phase_seconds_count{phase="merge"} 1`,
		`le="+Inf"`,
		"# HELP cws_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Memory-only server: no store series may appear.
	if strings.Contains(body, "cws_store_segment_write_seconds") {
		t.Error("/metrics exposes store histograms without a store attached")
	}
}

// TestMetricsFaultCounters: configured fault points surface hit and fire
// counters, distinguishing "the site was reached" from "the fault fired".
func TestMetricsFaultCounters(t *testing.T) {
	cfg := obsTestConfig()
	cfg.Faults = faults.MustParse("server.freeze:latency=1ms,on=2")
	_, ts := newTestServer(t, cfg)
	postJSON(t, ts.URL+"/offer", map[string]any{"offers": []Offer{{Assignment: 0, Key: "a", Weight: 1}}})
	postJSON(t, ts.URL+"/freeze", nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)
	if !strings.Contains(body, `cws_fault_hits_total{point="server.freeze"} 1`) {
		t.Errorf("/metrics missing the fault hit counter:\n%s", body)
	}
	if !strings.Contains(body, `cws_fault_fires_total{point="server.freeze"} 0`) {
		t.Errorf("/metrics missing the fault fire counter (on=2 must not have fired on hit 1):\n%s", body)
	}
}

// TestQueryTraceAndRing: ?trace=1 returns the per-stage breakdown inline,
// the plain query does not, and both land in the /debug/traces ring
// (newest first) with the expected stage spans.
func TestQueryTraceAndRing(t *testing.T) {
	_, ts := newTestServer(t, obsTestConfig())
	postJSON(t, ts.URL+"/offer", map[string]any{"offers": []Offer{
		{Assignment: 0, Key: "a", Weight: 1},
	}})
	postJSON(t, ts.URL+"/freeze", nil)

	get := func(params string) map[string]any {
		resp, err := http.Get(ts.URL + "/query?" + params)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /query?%s: status %d: %v", params, resp.StatusCode, out)
		}
		return out
	}

	plain := get("agg=sum&b=0")
	if _, ok := plain["trace"]; ok {
		t.Error("plain query response carries a trace without ?trace=1")
	}
	traced := get("agg=sum&b=0&trace=1")
	tr, ok := traced["trace"].(map[string]any)
	if !ok {
		t.Fatalf("?trace=1 response has no trace object: %v", traced)
	}
	if op := tr["op"].(string); !strings.Contains(op, "query agg=sum") {
		t.Errorf("trace op = %q, want a query label", op)
	}
	spans := map[string]bool{}
	for _, s := range tr["spans"].([]any) {
		spans[s.(map[string]any)["name"].(string)] = true
	}
	// The first traced query after the plain one is warm: the summarize
	// span only appears on cold (cache-building) queries, so require the
	// always-present stages.
	for _, want := range []string{"parse", "snapshot-pin", "estimate"} {
		if !spans[want] {
			t.Errorf("trace missing span %q (got %v)", want, spans)
		}
	}

	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var ring struct {
		Traces []struct {
			ID      float64 `json:"id"`
			Op      string  `json:"op"`
			TotalUs float64 `json:"total_us"`
		} `json:"traces"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ring)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(ring.Traces) < 2 {
		t.Fatalf("/debug/traces holds %d traces, want both queries", len(ring.Traces))
	}
	if ring.Traces[0].ID <= ring.Traces[1].ID {
		t.Errorf("traces not newest-first: ids %v, %v", ring.Traces[0].ID, ring.Traces[1].ID)
	}
	for _, rt := range ring.Traces[:2] {
		if !strings.Contains(rt.Op, "query") {
			t.Errorf("ring trace op = %q, want a query", rt.Op)
		}
	}
}

// TestTwoServersShareNothing: two Servers in one process with private
// registries must not collide (the instance-scoped-registry contract) and
// must count independently.
func TestTwoServersShareNothing(t *testing.T) {
	_, ts1 := newTestServer(t, obsTestConfig())
	_, ts2 := newTestServer(t, obsTestConfig())
	postJSON(t, ts1.URL+"/offer", map[string]any{"offers": []Offer{{Assignment: 0, Key: "a", Weight: 1}}})

	scrape := func(url string) string {
		resp, err := http.Get(url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return string(raw)
	}
	if !strings.Contains(scrape(ts1.URL), "cws_offers_total 1") {
		t.Error("server 1 did not count its offer")
	}
	if !strings.Contains(scrape(ts2.URL), "cws_offers_total 0") {
		t.Error("server 2 saw server 1's traffic")
	}
}

package faults

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilSetIsInert(t *testing.T) {
	var s *Set
	out := s.Act("store.segment-write")
	if out.Err != nil || out.Torn || out.Drop {
		t.Fatalf("nil Set injected %+v", out)
	}
	if s.Hits("store.segment-write") != 0 {
		t.Fatalf("nil Set counted hits")
	}
	if s.Points() != nil {
		t.Fatalf("nil Set has points")
	}
}

func TestParseEmptyYieldsNil(t *testing.T) {
	for _, spec := range []string{"", "   ", ";", " ; ; "} {
		s, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if s != nil {
			t.Fatalf("Parse(%q) = %v, want nil", spec, s)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"noattrs",            // missing colon
		":err",               // missing name
		"p:bogus",            // unknown attribute
		"p:latency",          // latency without value
		"p:latency=xyz",      // unparseable duration
		"p:latency=-5ms",     // negative latency
		"p:err,on=0",         // hit counts are 1-based
		"p:err,on=x",         // non-numeric
		"p:err,on=2,every=3", // mutually exclusive schedules
		"p:on=3",             // schedule without action
		"p:err;p:drop",       // duplicate point
		"p:err,from",         // from without value
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestOnFiresExactlyOnce(t *testing.T) {
	s := MustParse("p:err,on=3")
	for i := 1; i <= 5; i++ {
		out := s.Act("p")
		if (out.Err != nil) != (i == 3) {
			t.Fatalf("hit %d: err=%v", i, out.Err)
		}
		if i == 3 {
			var inj *InjectedError
			if !errors.As(out.Err, &inj) || inj.Point != "p" || inj.Hit != 3 {
				t.Fatalf("hit 3: error %v not *InjectedError{p,3}", out.Err)
			}
		}
	}
	if got := s.Hits("p"); got != 5 {
		t.Fatalf("Hits = %d, want 5", got)
	}
}

func TestFromFiresFromNOn(t *testing.T) {
	s := MustParse("p:drop,from=3")
	for i := 1; i <= 5; i++ {
		if out := s.Act("p"); out.Drop != (i >= 3) {
			t.Fatalf("hit %d: drop=%v", i, out.Drop)
		}
	}
}

func TestEveryFiresPeriodically(t *testing.T) {
	s := MustParse("p:torn,every=2")
	for i := 1; i <= 6; i++ {
		if out := s.Act("p"); out.Torn != (i%2 == 0) {
			t.Fatalf("hit %d: torn=%v", i, out.Torn)
		}
	}
}

func TestDefaultScheduleFiresAlways(t *testing.T) {
	s := MustParse("p:err")
	for i := 1; i <= 3; i++ {
		if out := s.Act("p"); out.Err == nil {
			t.Fatalf("hit %d: no error", i)
		}
	}
}

func TestCombinedActions(t *testing.T) {
	s := MustParse("p:err,torn,drop,on=1")
	out := s.Act("p")
	if out.Err == nil || !out.Torn || !out.Drop {
		t.Fatalf("combined actions: %+v", out)
	}
	if out := s.Act("p"); out.Err != nil || out.Torn || out.Drop {
		t.Fatalf("hit 2 fired: %+v", out)
	}
}

func TestUnconfiguredPointIsInert(t *testing.T) {
	s := MustParse("p:err")
	if out := s.Act("q"); out.Err != nil || out.Torn || out.Drop {
		t.Fatalf("unconfigured point injected %+v", out)
	}
	if s.Hits("q") != 0 {
		t.Fatalf("unconfigured point counted hits")
	}
}

func TestLatencyOnlyScheduledHits(t *testing.T) {
	s := MustParse("p:latency=30ms,on=2")
	start := time.Now()
	s.Act("p")
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("unscheduled hit slept %v", d)
	}
	start = time.Now()
	s.Act("p")
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("scheduled hit slept only %v", d)
	}
}

func TestMultiplePoints(t *testing.T) {
	s := MustParse("a:err,on=1; b:drop,every=1")
	if out := s.Act("a"); out.Err == nil {
		t.Fatalf("a did not fire")
	}
	if out := s.Act("b"); !out.Drop {
		t.Fatalf("b did not fire")
	}
	got := s.Points()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Points = %v", got)
	}
}

func TestConcurrentActIsDeterministicInAggregate(t *testing.T) {
	// Under concurrency individual hit numbers race, but the total count
	// and the number of firings of an every=2 schedule are exact.
	s := MustParse("p:err,every=2")
	const goroutines, perG = 8, 250
	var wg sync.WaitGroup
	var fired sync.Map
	errs := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if out := s.Act("p"); out.Err != nil {
					errs[g]++
					var inj *InjectedError
					if !errors.As(out.Err, &inj) {
						t.Errorf("not an InjectedError: %v", out.Err)
						return
					}
					if _, dup := fired.LoadOrStore(inj.Hit, true); dup {
						t.Errorf("hit %d fired twice", inj.Hit)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range errs {
		total += n
	}
	if want := goroutines * perG / 2; total != want {
		t.Fatalf("fired %d times, want %d", total, want)
	}
	if got := s.Hits("p"); got != goroutines*perG {
		t.Fatalf("Hits = %d, want %d", got, goroutines*perG)
	}
}

func TestTearHalves(t *testing.T) {
	data := []byte("0123456789")
	torn := Tear(data)
	if len(torn) != 5 {
		t.Fatalf("Tear kept %d bytes", len(torn))
	}
	if Tear([]byte{}) == nil {
		// Tear of an empty slice stays an empty (non-nil in, len-0 out) slice.
		t.Fatalf("Tear(empty) = nil")
	}
}

func TestInjectedErrorMessage(t *testing.T) {
	e := &InjectedError{Point: "store.segment-write", Hit: 3}
	want := fmt.Sprintf("faults: injected failure at %q (hit 3)", "store.segment-write")
	if e.Error() != want {
		t.Fatalf("Error() = %q, want %q", e.Error(), want)
	}
}

// Package faults provides named, injectable fault points: the controlled
// failures that let the robustness layers of this repository — the durable
// epoch store's typed-error contracts and the cluster serving layer's
// retry/degradation machinery — be *tested*, deterministically, instead of
// hoped about.
//
// A fault Set is parsed from a compact spec string (the -faults flag of
// cws-serve) naming points and what each injects:
//
//	store.segment-write:err,on=3
//	peer.fetch:latency=50ms,every=2
//	peer.response:torn,on=1;peer.freeze:err,from=2
//
// Each instrumented site calls Act(name) exactly once per operation; the
// Set counts the hit, applies the point's latency, and reports whether the
// schedule fires an error, a torn payload, or a dropped response on this
// hit. Scheduling is purely hit-count-deterministic — "on=3" fires on the
// third hit of that point in this process, every run, under any
// interleaving of *other* points — which is what makes chaos tests
// reproducible oracles instead of flaky dice rolls.
//
// Production pays one nil check: every method is safe on a nil *Set and
// returns the zero Outcome immediately, so un-faulted builds thread a nil
// Set through the same code paths for free.
//
// # Spec grammar
//
//	spec    = point *(";" point)
//	point   = name ":" attr *("," attr)
//	attr    = "err" | "torn" | "drop"              (actions)
//	        | "latency=" duration                  (applied on scheduled hits)
//	        | "on=" N | "from=" N | "every=" N     (schedule; default: every hit)
//
// A point needs at least one action or a latency; on/from/every are
// mutually exclusive. Hits are 1-based: "on=1" fires the first call.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// InjectedError is the typed error every firing fault point returns, so
// tests (and curious operators) can tell an injected failure from a real
// one with errors.As.
type InjectedError struct {
	Point string // fault point name
	Hit   int    // 1-based hit count at which the point fired
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected failure at %q (hit %d)", e.Point, e.Hit)
}

// Outcome is what one hit of a fault point injects. The zero Outcome (and
// everything a nil Set returns) injects nothing.
type Outcome struct {
	// Err is the injected error, non-nil when the point's "err" action
	// fired on this hit. It is always an *InjectedError.
	Err error
	// Torn reports that the site should truncate its payload (a torn
	// write or a torn response) on this hit.
	Torn bool
	// Drop reports that the site should abandon the operation without a
	// response (a dropped connection) on this hit.
	Drop bool
}

// point is one named fault point's configuration and hit counter.
type point struct {
	err     bool
	torn    bool
	drop    bool
	latency time.Duration
	on      int // fire exactly on the on-th hit
	from    int // fire on every hit ≥ from
	every   int // fire on every every-th hit
	hits    int
	fires   int // hits on which the point actually injected
}

// scheduled reports whether hit n (1-based) is one this point fires on.
func (p *point) scheduled(n int) bool {
	switch {
	case p.on > 0:
		return n == p.on
	case p.from > 0:
		return n >= p.from
	case p.every > 0:
		return n%p.every == 0
	default:
		return true
	}
}

// Set is a parsed collection of fault points. All methods are safe for
// concurrent use and safe on a nil receiver (which injects nothing).
type Set struct {
	mu     sync.Mutex
	points map[string]*point
}

// Parse builds a Set from a spec string (see the package documentation for
// the grammar). The empty spec yields a nil Set — the disabled state.
func Parse(spec string) (*Set, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	s := &Set{points: make(map[string]*point)}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, attrs, ok := strings.Cut(part, ":")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("faults: point %q: want name:attr[,attr...]", part)
		}
		if _, dup := s.points[name]; dup {
			return nil, fmt.Errorf("faults: point %q configured twice", name)
		}
		p := &point{}
		for _, attr := range strings.Split(attrs, ",") {
			attr = strings.TrimSpace(attr)
			key, val, hasVal := strings.Cut(attr, "=")
			var err error
			switch key {
			case "err":
				p.err = true
			case "torn":
				p.torn = true
			case "drop":
				p.drop = true
			case "latency":
				if !hasVal {
					return nil, fmt.Errorf("faults: point %q: latency needs a duration", name)
				}
				if p.latency, err = time.ParseDuration(val); err != nil || p.latency < 0 {
					return nil, fmt.Errorf("faults: point %q: bad latency %q", name, val)
				}
			case "on", "from", "every":
				if !hasVal {
					return nil, fmt.Errorf("faults: point %q: %s needs a hit count", name, key)
				}
				n, err := strconv.Atoi(val)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("faults: point %q: bad %s value %q", name, key, val)
				}
				switch key {
				case "on":
					p.on = n
				case "from":
					p.from = n
				case "every":
					p.every = n
				}
			default:
				return nil, fmt.Errorf("faults: point %q: unknown attribute %q", name, attr)
			}
		}
		scheds := 0
		for _, v := range []int{p.on, p.from, p.every} {
			if v > 0 {
				scheds++
			}
		}
		if scheds > 1 {
			return nil, fmt.Errorf("faults: point %q: on/from/every are mutually exclusive", name)
		}
		if !p.err && !p.torn && !p.drop && p.latency == 0 {
			return nil, fmt.Errorf("faults: point %q: no action (want err, torn, drop, or latency)", name)
		}
		s.points[name] = p
	}
	if len(s.points) == 0 {
		return nil, nil
	}
	return s, nil
}

// MustParse is Parse for tests and package-level specs; it panics on a bad
// spec.
func MustParse(spec string) *Set {
	s, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return s
}

// Act records one hit at the named fault point and returns what it injects
// on this hit. Unconfigured points (and a nil Set) inject nothing. The
// point's latency, if any, is applied (synchronously) before returning,
// but only on scheduled hits — "latency=50ms,every=2" delays every second
// call and leaves the rest untouched.
func (s *Set) Act(name string) Outcome {
	if s == nil {
		return Outcome{}
	}
	s.mu.Lock()
	p, ok := s.points[name]
	if !ok {
		s.mu.Unlock()
		return Outcome{}
	}
	p.hits++
	n := p.hits
	fire := p.scheduled(n)
	if fire {
		p.fires++
	}
	latency := p.latency
	s.mu.Unlock()
	if !fire {
		return Outcome{}
	}
	if latency > 0 {
		time.Sleep(latency)
	}
	var out Outcome
	if p.err {
		out.Err = &InjectedError{Point: name, Hit: n}
	}
	out.Torn = p.torn
	out.Drop = p.drop
	return out
}

// Hits reports how many times the named point has been hit (0 for
// unconfigured points and nil Sets). Tests use it to assert that the
// instrumented sites are actually reached.
func (s *Set) Hits(name string) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.points[name]; ok {
		return p.hits
	}
	return 0
}

// Fires reports how many of the named point's hits were scheduled ones —
// hits on which the point actually injected its action (0 for
// unconfigured points and nil Sets). The observability layer exports both
// Hits and Fires per point, so a scrape distinguishes "the site was
// reached" from "the fault actually fired".
func (s *Set) Fires(name string) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.points[name]; ok {
		return p.fires
	}
	return 0
}

// Points lists the configured point names, sorted — for log lines that
// announce what a process is running with.
func (s *Set) Points() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.points))
	for name := range s.points {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Tear truncates data to half its length — the canonical torn-payload
// transformation sites apply when Act reports Torn. Centralized so every
// torn fault means the same thing in tests and docs.
func Tear(data []byte) []byte { return data[:len(data)/2] }

package sketch

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"coordsample/internal/rank"
)

// buildManySketches builds a fingerprinted sketch set wide enough to keep a
// parallel encoder's pool busy, with a mix of empty, underfull, and overfull
// sketches.
func buildManySketches(t *testing.T, assignments, k int) ([]WireMeta, []*BottomK) {
	t.Helper()
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 17}
	metas := make([]WireMeta, assignments)
	sketches := make([]*BottomK, assignments)
	rng := rand.New(rand.NewSource(9))
	for b := range sketches {
		metas[b] = WireMeta{Family: a.Family, Mode: a.Mode, Seed: a.Seed, Assignment: b}
		bld := NewBottomKBuilderWithFingerprint(k, a.Fingerprint(b, k))
		n := (b % 3) * 4 * k // 0, underfull, overfull
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("key-%02d-%04d", b, i)
			w := math.Exp(rng.NormFloat64())
			bld.Offer(key, a.Rank(key, b, w), w)
		}
		sketches[b] = bld.Sketch()
	}
	return metas, sketches
}

// TestEncodeSegmentParallelByteIdentical is the store-parallelism contract:
// the concurrent segment encoder must produce output byte-for-byte equal to
// the serial one — same framing, same embedded blobs, same CRC trailer — so
// durable files and their manifest records are independent of how many
// cores encoded them. GOMAXPROCS is raised so the concurrent path is
// exercised even on a single-core machine.
func TestEncodeSegmentParallelByteIdentical(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	for _, assignments := range []int{1, 2, 9} {
		metas, sketches := buildManySketches(t, assignments, 32)
		var serial, parallel bytes.Buffer
		wantCRC, err := EncodeSegment(&serial, metas, sketches)
		if err != nil {
			t.Fatal(err)
		}
		gotCRC, err := EncodeSegmentParallel(&parallel, metas, sketches)
		if err != nil {
			t.Fatal(err)
		}
		if gotCRC != wantCRC {
			t.Fatalf("assignments=%d: parallel CRC %#x, serial %#x", assignments, gotCRC, wantCRC)
		}
		if !bytes.Equal(parallel.Bytes(), serial.Bytes()) {
			t.Fatalf("assignments=%d: parallel encoding differs from serial (%d vs %d bytes)",
				assignments, parallel.Len(), serial.Len())
		}
	}
}

// TestEncodeSegmentParallelErrorParity: a failing encode reports the same
// error a serial pass would hit first (lowest assignment index), and writes
// nothing.
func TestEncodeSegmentParallelErrorParity(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	metas, sketches := buildManySketches(t, 4, 16)
	bad := append([]WireMeta(nil), metas...)
	bad[1] = metas[0] // sketch 1 described as assignment 0: fingerprint mismatch
	bad[2] = metas[0]
	var serialBuf, parallelBuf bytes.Buffer
	_, serialErr := EncodeSegment(&serialBuf, bad, sketches)
	_, parallelErr := EncodeSegmentParallel(&parallelBuf, bad, sketches)
	if serialErr == nil || parallelErr == nil {
		t.Fatalf("mismatched metas must fail: serial=%v parallel=%v", serialErr, parallelErr)
	}
	if serialErr.Error() != parallelErr.Error() {
		t.Fatalf("parallel error %q, want serial error %q", parallelErr, serialErr)
	}
	if parallelBuf.Len() != 0 {
		t.Fatalf("failed parallel encode wrote %d bytes", parallelBuf.Len())
	}
}

package sketch

import (
	"fmt"
	"math"

	"coordsample/internal/rank"
)

// Poisson is an immutable Poisson-τ sketch: the keys whose rank is below τ.
// Inclusions of different keys are independent; the expected size is
// Σ_i F_{w(i)}(τ).
type Poisson struct {
	tau         float64
	fingerprint uint64 // rank.Assigner.Fingerprint digest (k = 0); 0 = unfingerprinted
	entries     []Entry
	index       map[string]int
}

// Tau returns the sampling threshold τ.
func (s *Poisson) Tau() float64 { return s.tau }

// Fingerprint returns the configuration digest the sketch was built under
// (rank.Assigner.Fingerprint with k = 0 — τ is data-dependent and stored in
// the sketch itself), or 0 for legacy construction paths.
func (s *Poisson) Fingerprint() uint64 { return s.fingerprint }

// Size returns the number of sampled keys.
func (s *Poisson) Size() int { return len(s.entries) }

// Entries returns the sampled entries in ascending rank order. The slice is
// shared; callers must not modify it.
func (s *Poisson) Entries() []Entry { return s.entries }

// Contains reports whether key was sampled.
func (s *Poisson) Contains(key string) bool {
	_, ok := s.index[key]
	return ok
}

// Lookup returns the entry for key, if sampled.
func (s *Poisson) Lookup(key string) (Entry, bool) {
	if i, ok := s.index[key]; ok {
		return s.entries[i], true
	}
	return Entry{}, false
}

// RankExcluding returns the rank-conditioning threshold for key. For a
// Poisson sketch the threshold is τ for every key: inclusions are
// independent, so conditioning on the other keys' ranks changes nothing.
// Sharing this method with BottomK lets the multiple-assignment estimators
// treat both sketch types uniformly ("the treatment of Poisson sketches is
// similar and simpler", Section 4).
func (s *Poisson) RankExcluding(string) float64 { return s.tau }

// PoissonBuilder consumes an aggregated (key, rank, weight) stream and keeps
// keys with rank below τ. State is proportional to the sample, not the data.
type PoissonBuilder struct {
	tau         float64
	fingerprint uint64
	entries     []Entry
}

// NewPoissonBuilder returns a builder with threshold τ > 0 (possibly +Inf,
// which samples every positive-weight key). Sketches frozen from it carry
// no fingerprint; pipeline code should use
// NewPoissonBuilderWithFingerprint.
func NewPoissonBuilder(tau float64) *PoissonBuilder {
	return NewPoissonBuilderWithFingerprint(tau, 0)
}

// NewPoissonBuilderWithFingerprint returns a builder whose frozen sketches
// carry the given configuration fingerprint (rank.Assigner.Fingerprint with
// k = 0 of the family, mode, seed, and assignment used to compute the
// offered ranks).
func NewPoissonBuilderWithFingerprint(tau float64, fingerprint uint64) *PoissonBuilder {
	if !(tau > 0) {
		panic(fmt.Sprintf("sketch: invalid Poisson threshold %v", tau))
	}
	return &PoissonBuilder{tau: tau, fingerprint: fingerprint}
}

// Offer presents one aggregated key with its rank and weight.
func (b *PoissonBuilder) Offer(key string, rankValue, weight float64) {
	if weight <= 0 || math.IsNaN(rankValue) {
		return
	}
	if rankValue < b.tau {
		b.entries = append(b.entries, Entry{Key: key, Rank: rankValue, Weight: weight})
	}
}

// Sketch freezes the builder into a Poisson sketch. Duplicate sampled keys
// (a violation of the pre-aggregation requirement) are reported by panic.
func (b *PoissonBuilder) Sketch() *Poisson {
	entries := make([]Entry, len(b.entries))
	copy(entries, b.entries)
	sortEntries(entries)
	index := make(map[string]int, len(entries))
	for i, e := range entries {
		if _, dup := index[e.Key]; dup {
			panic(fmt.Sprintf("sketch: key %q offered more than once; aggregate keys before sketching", e.Key))
		}
		index[e.Key] = i
	}
	return &Poisson{tau: b.tau, fingerprint: b.fingerprint, entries: entries, index: index}
}

// SolveTau returns the threshold τ for which a Poisson sketch of the given
// weights has expected size k: Σ_i F_{w_i}(τ) = k (Figure 1 computes
// τ = k/82 this way for IPPS ranks and total weight 82). When k is at least
// the number of positive weights, τ is +Inf — every key is sampled with
// probability 1.
func SolveTau(family rank.Family, weights []float64, k float64) float64 {
	if k <= 0 {
		panic(fmt.Sprintf("sketch: invalid expected size %v", k))
	}
	positive := 0
	maxW := 0.0
	for _, w := range weights {
		if w > 0 {
			positive++
			if w > maxW {
				maxW = w
			}
		}
	}
	if float64(positive) <= k {
		return math.Inf(1)
	}
	expected := func(tau float64) float64 {
		s := 0.0
		for _, w := range weights {
			s += family.CDF(w, tau)
		}
		return s
	}
	// Bracket the root, then bisect. expected is nondecreasing in τ.
	lo, hi := 0.0, 1.0/maxW
	for expected(hi) < k {
		hi *= 2
		if math.IsInf(hi, 1) {
			return hi
		}
	}
	for iter := 0; iter < 200 && hi-lo > 1e-15*hi; iter++ {
		mid := (lo + hi) / 2
		if expected(mid) < k {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

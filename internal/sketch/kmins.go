package sketch

import (
	"fmt"
	"math"

	"coordsample/internal/hashing"
	"coordsample/internal/rank"
)

// KMins is a k-mins sketch: for each of k independent rank assignments, the
// minimum rank value over the set and the key attaining it. Coordinated
// k-mins sketches of several weight assignments share the k underlying rank
// assignments, which is what Theorem 4.1 exploits.
type KMins struct {
	keys  []string  // argmin key per coordinate; "" when the set is empty
	ranks []float64 // min rank per coordinate; +Inf when the set is empty
}

// K returns the number of coordinates.
func (s *KMins) K() int { return len(s.keys) }

// MinKey returns the key with minimum rank in coordinate j ("" if none).
func (s *KMins) MinKey(j int) string { return s.keys[j] }

// MinRank returns the minimum rank in coordinate j (+Inf if none).
func (s *KMins) MinRank(j int) float64 { return s.ranks[j] }

// KMinsBuilder builds a k-mins sketch of one assignment from a (key, weight)
// stream in the dispersed model. Coordinate j uses the rank assignment
// derived from the builder's base seed and j, so builders with the same base
// Assigner are coordinated across assignments.
type KMinsBuilder struct {
	coords     []rank.Assigner
	assignment int
	keys       []string
	ranks      []float64
}

// NewKMinsBuilder returns a builder for the given assignment index with k
// coordinates.
func NewKMinsBuilder(a rank.Assigner, assignment, k int) *KMinsBuilder {
	if k < 1 {
		panic(fmt.Sprintf("sketch: invalid k-mins size %d", k))
	}
	b := &KMinsBuilder{
		coords:     coordAssigners(a, k),
		assignment: assignment,
		keys:       make([]string, k),
		ranks:      make([]float64, k),
	}
	for j := range b.ranks {
		b.ranks[j] = math.Inf(1)
	}
	return b
}

func coordAssigners(a rank.Assigner, k int) []rank.Assigner {
	coords := make([]rank.Assigner, k)
	for j := range coords {
		coords[j] = rank.Assigner{Family: a.Family, Mode: a.Mode, Seed: hashing.Derive(a.Seed, j)}
	}
	return coords
}

// Offer presents one aggregated key with its weight in this assignment.
func (b *KMinsBuilder) Offer(key string, weight float64) {
	if weight <= 0 {
		return
	}
	for j, a := range b.coords {
		r := a.Rank(key, b.assignment, weight)
		if r < b.ranks[j] || (r == b.ranks[j] && key < b.keys[j]) {
			b.ranks[j] = r
			b.keys[j] = key
		}
	}
}

// Sketch freezes the builder into a KMins sketch.
func (b *KMinsBuilder) Sketch() *KMins {
	return &KMins{keys: append([]string(nil), b.keys...), ranks: append([]float64(nil), b.ranks...)}
}

// KMinsSetBuilder builds coordinated k-mins sketches for all assignments of
// colocated data in one pass. It supports all three coordination modes,
// including independent-differences (which needs the full weight vector and
// therefore cannot run dispersed).
type KMinsSetBuilder struct {
	coords []rank.Assigner
	numAsg int
	keys   [][]string  // [assignment][coordinate]
	ranks  [][]float64 // [assignment][coordinate]
	buf    []float64
}

// NewKMinsSetBuilder returns a colocated builder for numAssignments weight
// assignments and k coordinates.
func NewKMinsSetBuilder(a rank.Assigner, numAssignments, k int) *KMinsSetBuilder {
	if k < 1 || numAssignments < 1 {
		panic("sketch: invalid k-mins set dimensions")
	}
	b := &KMinsSetBuilder{
		coords: coordAssigners(a, k),
		numAsg: numAssignments,
		keys:   make([][]string, numAssignments),
		ranks:  make([][]float64, numAssignments),
		buf:    make([]float64, numAssignments),
	}
	for asg := 0; asg < numAssignments; asg++ {
		b.keys[asg] = make([]string, k)
		b.ranks[asg] = make([]float64, k)
		for j := range b.ranks[asg] {
			b.ranks[asg][j] = math.Inf(1)
		}
	}
	return b
}

// Offer presents one key with its full weight vector.
func (b *KMinsSetBuilder) Offer(key string, weights []float64) {
	if len(weights) != b.numAsg {
		panic("sketch: weight vector length mismatch")
	}
	for j, a := range b.coords {
		a.RankVectorInto(b.buf, key, weights)
		for asg, r := range b.buf {
			if r < b.ranks[asg][j] || (r == b.ranks[asg][j] && key < b.keys[asg][j]) {
				b.ranks[asg][j] = r
				b.keys[asg][j] = key
			}
		}
	}
}

// Sketches freezes the builder into one KMins sketch per assignment.
func (b *KMinsSetBuilder) Sketches() []*KMins {
	out := make([]*KMins, b.numAsg)
	for asg := 0; asg < b.numAsg; asg++ {
		out[asg] = &KMins{
			keys:  append([]string(nil), b.keys[asg]...),
			ranks: append([]float64(nil), b.ranks[asg]...),
		}
	}
	return out
}

// CommonMinFraction returns the fraction of coordinates in which the two
// sketches have the same minimum-rank key. Under independent-differences
// consistent ranks this is an unbiased estimator of the weighted Jaccard
// similarity of the two assignments (Theorem 4.1).
func CommonMinFraction(a, b *KMins) float64 {
	if a.K() != b.K() {
		panic("sketch: k-mins size mismatch")
	}
	if a.K() == 0 {
		return 0
	}
	common := 0
	for j := 0; j < a.K(); j++ {
		if a.keys[j] != "" && a.keys[j] == b.keys[j] {
			common++
		}
	}
	return float64(common) / float64(a.K())
}

// Selectivity returns the fraction of coordinates whose minimum-rank key
// satisfies pred. For EXP ranks the minimum-rank key of each coordinate is
// key i with probability w(i)/w(I), so the fraction is an unbiased
// estimator of the weighted selectivity w(J)/w(I) of the subpopulation J
// selected by pred — the classic k-mins subset query [Cohen 1997].
func (s *KMins) Selectivity(pred func(key string) bool) float64 {
	if s.K() == 0 {
		return 0
	}
	hits := 0
	for j, key := range s.keys {
		if key == "" || math.IsInf(s.ranks[j], 1) {
			continue
		}
		if pred == nil || pred(key) {
			hits++
		}
	}
	return float64(hits) / float64(s.K())
}

// SubsetWeightEstimate combines Selectivity with TotalWeightEstimate to
// estimate w(J) = Σ_{i∈J} w(i) from a k-mins sketch with EXP ranks
// (requires k ≥ 2). The two factors are dependent, so the product is
// consistent rather than exactly unbiased; bottom-k summaries give unbiased
// subset sums and are preferred when available.
func (s *KMins) SubsetWeightEstimate(pred func(key string) bool) float64 {
	return s.Selectivity(pred) * s.TotalWeightEstimate()
}

// TotalWeightEstimate returns the classic k-mins estimator of the total
// weight w(I) for EXP ranks: (k−1)/Σ_j r_j. The minimum rank of each
// coordinate is Exponential(w(I)), so the sum of k independent minima is
// Gamma(k, w(I)) and (k−1)/sum is unbiased for k ≥ 2.
func (s *KMins) TotalWeightEstimate() float64 {
	k := s.K()
	if k < 2 {
		panic("sketch: total-weight estimate requires k ≥ 2")
	}
	sum := 0.0
	for _, r := range s.ranks {
		if math.IsInf(r, 1) {
			return 0 // empty set
		}
		sum += r
	}
	return float64(k-1) / sum
}

package sketch

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"coordsample/internal/dataset"
	"coordsample/internal/rank"
)

// Figure 1 of the paper: weighted set with keys i1..i6, weights
// {20,10,12,20,10,10}, and the published IPPS rank assignment
// {0.011, 0.075, 0.0583, 0.046, 0.055, 0.037}.
//
// Note: the paper states u(i3)=0.07 and w(i3)=12, which gives rank 0.005833,
// but the figure's published rank (0.0583) and all downstream sample
// computations use the value as printed. We test the sampling machinery
// against the published ranks so that every derived quantity in the figure
// can be checked verbatim.
var (
	fig1Keys    = []string{"i1", "i2", "i3", "i4", "i5", "i6"}
	fig1Weights = []float64{20, 10, 12, 20, 10, 10}
	fig1Ranks   = []float64{0.011, 0.075, 0.0583, 0.046, 0.055, 0.037}
)

func TestFigure1BottomKSamples(t *testing.T) {
	cases := []struct {
		k        int
		wantKeys []string
		wantRk1  float64 // the published r_{k+1}
		wantKth  float64
	}{
		{1, []string{"i1"}, 0.037, 0.011},
		{2, []string{"i1", "i6"}, 0.046, 0.037},
		{3, []string{"i1", "i6", "i4"}, 0.055, 0.046},
	}
	for _, c := range cases {
		s := BottomKFromRanks(c.k, fig1Keys, fig1Ranks, fig1Weights)
		if s.Size() != len(c.wantKeys) {
			t.Fatalf("k=%d: size %d, want %d", c.k, s.Size(), len(c.wantKeys))
		}
		for _, key := range c.wantKeys {
			if !s.Contains(key) {
				t.Fatalf("k=%d: missing key %s", c.k, key)
			}
		}
		if got := s.Threshold(); math.Abs(got-c.wantRk1) > 1e-12 {
			t.Fatalf("k=%d: threshold %v, want %v", c.k, got, c.wantRk1)
		}
		if got := s.KthRank(); math.Abs(got-c.wantKth) > 1e-12 {
			t.Fatalf("k=%d: kth rank %v, want %v", c.k, got, c.wantKth)
		}
	}
}

func TestFigure1PoissonSamples(t *testing.T) {
	// τ = k/82 for expected size k (total weight 82, all w·τ < 1).
	for k := 1; k <= 3; k++ {
		tau := SolveTau(rank.IPPS, fig1Weights, float64(k))
		if want := float64(k) / 82; math.Abs(tau-want) > 1e-9 {
			t.Fatalf("k=%d: τ = %v, want %v", k, tau, want)
		}
		b := NewPoissonBuilder(tau)
		for i, key := range fig1Keys {
			b.Offer(key, fig1Ranks[i], fig1Weights[i])
		}
		s := b.Sketch()
		// With the published ranks, only i1 is sampled for k = 1, 2, 3.
		if s.Size() != 1 || !s.Contains("i1") {
			t.Fatalf("k=%d: Poisson sample = %v, want {i1}", k, s.Entries())
		}
	}
}

// fig2SharedRanks is the published consistent shared-seed IPPS rank table of
// Figure 2(B). The printed value r^(2)(i3)=0.0583 differs from u/w =
// 0.07/12 ≈ 0.00583 (a typo carried through the paper's example); we keep
// the published value so the published bottom-3 samples match.
var (
	fig2Keys    = []string{"i1", "i2", "i3", "i4", "i5", "i6"}
	fig2U       = []float64{0.22, 0.75, 0.07, 0.92, 0.55, 0.37}
	fig2Weights = [][]float64{
		{15, 0, 10, 5, 10, 10},
		{20, 10, 12, 20, 0, 10},
		{10, 15, 15, 0, 15, 10},
	}
	inf             = math.Inf(1)
	fig2SharedRanks = [][]float64{
		{0.0147, inf, 0.007, 0.184, 0.055, 0.037},
		{0.011, 0.075, 0.0583, 0.046, inf, 0.037},
		{0.022, 0.05, 0.0047, inf, 0.0367, 0.037},
	}
)

func TestFigure2SharedSeedRankTable(t *testing.T) {
	for b, ws := range fig2Weights {
		for i, u := range fig2U {
			got := rank.IPPS.Quantile(ws[i], u)
			want := fig2SharedRanks[b][i]
			if b == 1 && i == 2 {
				// The known typo: the printed 0.0583 is 10× the computed u/w.
				if math.Abs(got-0.07/12) > 1e-9 {
					t.Fatalf("r^(2)(i3): computed %v, want %v", got, 0.07/12)
				}
				continue
			}
			if math.IsInf(want, 1) {
				if !math.IsInf(got, 1) {
					t.Fatalf("r^(%d)(i%d) = %v, want +Inf", b+1, i+1, got)
				}
				continue
			}
			if math.Abs(got-want) > 5e-4 { // table is printed to 3-4 decimals
				t.Fatalf("r^(%d)(i%d) = %v, want %v", b+1, i+1, got, want)
			}
		}
	}
}

func TestFigure2SharedSeedBottom3(t *testing.T) {
	want := [][]string{
		{"i3", "i1", "i6"},
		{"i1", "i6", "i4"},
		{"i3", "i1", "i5"},
	}
	for b := range fig2Weights {
		s := BottomKFromRanks(3, fig2Keys, fig2SharedRanks[b], fig2Weights[b])
		got := make([]string, 0, 3)
		for _, e := range s.Entries() {
			got = append(got, e.Key)
		}
		if len(got) != 3 {
			t.Fatalf("assignment %d: size %d", b+1, len(got))
		}
		for j := range want[b] {
			if got[j] != want[b][j] {
				t.Fatalf("assignment %d: bottom-3 = %v, want %v", b+1, got, want[b])
			}
		}
	}
}

func TestFigure2IndependentBottom3(t *testing.T) {
	// Independent IPPS ranks of Figure 2(B): every value is consistent with
	// u/w, so we compute rather than transcribe.
	uInd := [][]float64{
		{0.22, 0.75, 0.07, 0.92, 0.55, 0.37},
		{0.47, 0.58, 0.71, 0.84, 0.25, 0.32},
		{0.63, 0.92, 0.08, 0.59, 0.32, 0.80},
	}
	want := [][]string{
		{"i3", "i1", "i6"},
		{"i1", "i6", "i4"},
		{"i3", "i5", "i2"},
	}
	for b := range fig2Weights {
		ranks := make([]float64, len(fig2Keys))
		for i := range fig2Keys {
			ranks[i] = rank.IPPS.Quantile(fig2Weights[b][i], uInd[b][i])
		}
		s := BottomKFromRanks(3, fig2Keys, ranks, fig2Weights[b])
		for j, e := range s.Entries() {
			if e.Key != want[b][j] {
				t.Fatalf("assignment %d: bottom-3[%d] = %s, want %s", b+1, j, e.Key, want[b][j])
			}
		}
	}
}

func TestStreamMatchesOffline(t *testing.T) {
	// The one-pass builder must agree with the offline sort for every prefix
	// ordering of the stream.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		keys := make([]string, n)
		ranks := make([]float64, n)
		weights := make([]float64, n)
		for i := range keys {
			keys[i] = "key-" + itoa(trial) + "-" + itoa(i)
			ranks[i] = rng.Float64()
			weights[i] = rng.Float64() * 100
		}
		want := offlineBottomK(k, keys, ranks, weights)
		// Stream in shuffled order.
		order := rng.Perm(n)
		b := NewBottomKBuilder(k)
		for _, i := range order {
			b.Offer(keys[i], ranks[i], weights[i])
		}
		got := b.Sketch()
		compareSketches(t, got, want)
	}
}

func offlineBottomK(k int, keys []string, ranks, weights []float64) *BottomK {
	type kv struct {
		e Entry
	}
	var all []kv
	for i := range keys {
		if weights[i] > 0 && !math.IsInf(ranks[i], 1) {
			all = append(all, kv{Entry{keys[i], ranks[i], weights[i]}})
		}
	}
	sort.Slice(all, func(i, j int) bool { return entryLess(all[i].e, all[j].e) })
	entries := make([]Entry, 0, k)
	for i := 0; i < len(all) && i < k; i++ {
		entries = append(entries, all[i].e)
	}
	kth, thr := math.Inf(1), math.Inf(1)
	if len(all) >= k {
		kth = all[k-1].e.Rank
	}
	if len(all) >= k+1 {
		thr = all[k].e.Rank
	}
	index := make(map[string]int)
	for i, e := range entries {
		index[e.Key] = i
	}
	return &BottomK{k: k, entries: entries, kth: kth, threshold: thr, index: index}
}

func compareSketches(t *testing.T, got, want *BottomK) {
	t.Helper()
	if got.Size() != want.Size() {
		t.Fatalf("size %d, want %d", got.Size(), want.Size())
	}
	for i := range got.entries {
		if got.entries[i] != want.entries[i] {
			t.Fatalf("entry %d: %+v, want %+v", i, got.entries[i], want.entries[i])
		}
	}
	if got.kth != want.kth {
		t.Fatalf("kth %v, want %v", got.kth, want.kth)
	}
	if got.threshold != want.threshold {
		t.Fatalf("threshold %v, want %v", got.threshold, want.threshold)
	}
}

func TestRankExcludingBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, k := 40, 7
	keys := make([]string, n)
	ranks := make([]float64, n)
	weights := make([]float64, n)
	for i := range keys {
		keys[i] = "k" + itoa(i)
		ranks[i] = rng.Float64()
		weights[i] = 1 + rng.Float64()
	}
	s := BottomKFromRanks(k, keys, ranks, weights)
	for i, key := range keys {
		// Brute force r_k(I ∖ {key}).
		var rest []float64
		for j := range keys {
			if j != i {
				rest = append(rest, ranks[j])
			}
		}
		sort.Float64s(rest)
		want := rest[k-1]
		if got := s.RankExcluding(key); math.Abs(got-want) > 1e-15 {
			t.Fatalf("RankExcluding(%s) = %v, want %v", key, got, want)
		}
	}
	// A key outside I behaves like a zero-weight key: threshold is r_k(I).
	all := append([]float64(nil), ranks...)
	sort.Float64s(all)
	if got := s.RankExcluding("not-a-key"); got != all[k-1] {
		t.Fatalf("RankExcluding(foreign) = %v, want %v", got, all[k-1])
	}
}

func TestSmallSetBehaviour(t *testing.T) {
	s := BottomKFromRanks(5, []string{"a", "b"}, []float64{0.3, 0.1}, []float64{1, 2})
	if s.Size() != 2 {
		t.Fatalf("size = %d", s.Size())
	}
	if !math.IsInf(s.KthRank(), 1) || !math.IsInf(s.Threshold(), 1) {
		t.Fatal("kth rank and threshold must be +Inf for |I| < k")
	}
	if got := s.RankExcluding("a"); !math.IsInf(got, 1) {
		t.Fatalf("RankExcluding = %v, want +Inf", got)
	}
	// |I| == k: threshold +Inf, kth finite.
	s2 := BottomKFromRanks(2, []string{"a", "b"}, []float64{0.3, 0.1}, []float64{1, 2})
	if s2.KthRank() != 0.3 || !math.IsInf(s2.Threshold(), 1) {
		t.Fatalf("kth=%v threshold=%v", s2.KthRank(), s2.Threshold())
	}
}

func TestOfferSkipsInvalid(t *testing.T) {
	b := NewBottomKBuilder(3)
	b.Offer("zero", 0.5, 0)
	b.Offer("inf", math.Inf(1), 10)
	b.Offer("nan", math.NaN(), 10)
	b.Offer("ok", 0.5, 10)
	s := b.Sketch()
	if s.Size() != 1 || !s.Contains("ok") {
		t.Fatalf("sketch = %+v", s.Entries())
	}
}

func TestBuilderSnapshotThenContinue(t *testing.T) {
	b := NewBottomKBuilder(2)
	b.Offer("a", 0.9, 1)
	b.Offer("b", 0.8, 1)
	s1 := b.Sketch()
	if s1.Size() != 2 || !math.IsInf(s1.Threshold(), 1) {
		t.Fatalf("snapshot 1 wrong: %+v", s1.Entries())
	}
	b.Offer("c", 0.1, 1)
	s2 := b.Sketch()
	if !s2.Contains("c") || s2.Contains("a") {
		t.Fatalf("snapshot 2 wrong: %+v", s2.Entries())
	}
	if s2.Threshold() != 0.9 {
		t.Fatalf("threshold = %v, want 0.9", s2.Threshold())
	}
	// First snapshot must be unaffected.
	if !s1.Contains("a") {
		t.Fatal("snapshot 1 mutated by later offers")
	}
}

func TestInvalidK(t *testing.T) {
	assertPanics(t, func() { NewBottomKBuilder(0) })
	assertPanics(t, func() { NewPoissonBuilder(0) })
	assertPanics(t, func() { NewPoissonBuilder(math.NaN()) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestUnionBottomKLemma42(t *testing.T) {
	// Lemma 4.2: from coordinated bottom-k sketches for R we can obtain a
	// bottom-k sketch of (I, w^(maxR)) by taking the k distinct keys with
	// smallest rank in the union.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 30 + rng.Intn(100)
		numAsg := 2 + rng.Intn(3)
		keys := make([]string, n)
		cols := make([][]float64, numAsg)
		for b := range cols {
			cols[b] = make([]float64, n)
		}
		for i := range keys {
			keys[i] = "k" + itoa(trial) + "-" + itoa(i)
			for b := range cols {
				if rng.Float64() < 0.25 {
					continue
				}
				cols[b][i] = rng.Float64() * 100
			}
		}
		a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: uint64(trial) + 1}
		k := 1 + rng.Intn(10)

		// Per-assignment coordinated sketches.
		sketches := make([]*BottomK, numAsg)
		for b := range cols {
			bld := NewBottomKBuilder(k)
			for i, key := range keys {
				bld.Offer(key, a.Rank(key, b, cols[b][i]), cols[b][i])
			}
			sketches[b] = bld.Sketch()
		}
		union := UnionBottomK(k, sketches)

		// Direct bottom-k of (I, w^(maxR)) under r^(minR) (Lemma 4.1).
		direct := NewBottomKBuilder(k)
		vec := make([]float64, numAsg)
		for i, key := range keys {
			for b := range cols {
				vec[b] = cols[b][i]
			}
			ranks := a.RankVector(key, vec)
			direct.Offer(key, rank.MinRank(ranks, nil), dataset.MaxR(vec, nil))
		}
		want := direct.Sketch()
		if len(union) != want.Size() {
			t.Fatalf("trial %d: union size %d, want %d", trial, len(union), want.Size())
		}
		for j, e := range union {
			if want.Entries()[j].Key != e.Key {
				t.Fatalf("trial %d: union[%d] = %s, want %s", trial, j, e.Key, want.Entries()[j].Key)
			}
		}
	}
}

func TestUnionDistinctKeys(t *testing.T) {
	s1 := BottomKFromRanks(2, []string{"a", "b", "c"}, []float64{0.1, 0.2, 0.3}, []float64{1, 1, 1})
	s2 := BottomKFromRanks(2, []string{"b", "c", "d"}, []float64{0.1, 0.2, 0.3}, []float64{1, 1, 1})
	u := UnionDistinctKeys([]*BottomK{s1, s2})
	if len(u) != 3 || !u["a"] || !u["b"] || !u["c"] {
		t.Fatalf("union = %v", u)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func BenchmarkBottomKOffer(b *testing.B) {
	bld := NewBottomKBuilder(256)
	rng := rand.New(rand.NewSource(1))
	ranks := make([]float64, 4096)
	for i := range ranks {
		ranks[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld.Offer("key", ranks[i%len(ranks)], 1)
	}
}

func TestPrefixMatchesDirectBottomL(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(60)
		k := 1 + rng.Intn(20)
		keys := make([]string, n)
		ranks := make([]float64, n)
		weights := make([]float64, n)
		for i := range keys {
			keys[i] = "p" + itoa(trial) + "-" + itoa(i)
			ranks[i] = rng.Float64()
			weights[i] = 1 + rng.Float64()
		}
		full := BottomKFromRanks(k, keys, ranks, weights)
		for l := 1; l <= k; l++ {
			got := full.Prefix(l)
			want := BottomKFromRanks(l, keys, ranks, weights)
			compareSketches(t, got, want)
		}
	}
}

func TestPrefixValidation(t *testing.T) {
	s := BottomKFromRanks(3, []string{"a"}, []float64{0.5}, []float64{1})
	assertPanics(t, func() { s.Prefix(0) })
	assertPanics(t, func() { s.Prefix(4) })
}

func TestMergeMatchesDirectSketch(t *testing.T) {
	// Merging shard sketches of a partitioned key space must reproduce the
	// sketch of the whole set exactly, including the threshold.
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(300)
		k := 1 + rng.Intn(15)
		shards := 1 + rng.Intn(4)
		builders := make([]*BottomKBuilder, shards)
		for j := range builders {
			builders[j] = NewBottomKBuilder(k)
		}
		direct := NewBottomKBuilder(k)
		for i := 0; i < n; i++ {
			key := "m" + itoa(trial) + "-" + itoa(i)
			r := rng.Float64()
			w := 1 + rng.Float64()*100
			builders[rng.Intn(shards)].Offer(key, r, w)
			direct.Offer(key, r, w)
		}
		parts := make([]*BottomK, shards)
		for j := range builders {
			parts[j] = builders[j].Sketch()
		}
		compareSketches(t, MergeUnchecked(parts...), direct.Sketch())
	}
}

func TestMergeValidation(t *testing.T) {
	assertPanics(t, func() { Merge() })
	assertPanics(t, func() { MergeUnchecked() })
	s1 := BottomKFromRanks(2, []string{"a"}, []float64{0.1}, []float64{1})
	s2 := BottomKFromRanks(3, []string{"b"}, []float64{0.2}, []float64{1})
	assertPanics(t, func() { MergeUnchecked(s1, s2) })
}

func TestMergeMismatchedKPanicMessage(t *testing.T) {
	// The MergeUnchecked contract: sketches built with different k are
	// rejected by panic even without fingerprints (silently merging them
	// would misplace both conditioning ranks).
	s1 := BottomKFromRanks(2, []string{"a", "b"}, []float64{0.1, 0.2}, []float64{1, 1})
	s2 := BottomKFromRanks(3, []string{"c", "d"}, []float64{0.3, 0.4}, []float64{1, 1})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MergeUnchecked with mismatched k did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "share k") {
			t.Fatalf("panic %v does not state the shared-k contract", r)
		}
	}()
	MergeUnchecked(s1, s2)
}

func TestMergeOverlappingShardsDetected(t *testing.T) {
	// Disjointness is the caller's obligation; the common violation — the
	// same key retained by two inputs and surviving the merge — is caught by
	// the freeze step's duplicate-key panic instead of double-counting.
	s1 := BottomKFromRanks(4, []string{"dup", "x"}, []float64{0.1, 0.5}, []float64{3, 1})
	s2 := BottomKFromRanks(4, []string{"dup", "y"}, []float64{0.1, 0.6}, []float64{3, 1})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Merge of overlapping sketches was not detected")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "more than once") {
			t.Fatalf("panic %v is not the duplicate-key detection", r)
		}
	}()
	MergeUnchecked(s1, s2)
}

func TestMergeSingleSketchIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	b := NewBottomKBuilder(5)
	for i := 0; i < 40; i++ {
		b.Offer("x"+itoa(i), rng.Float64(), 1)
	}
	s := b.Sketch()
	compareSketches(t, MergeUnchecked(s), s)
}

// TestAdmissionThresholdTracksKth: the published admission threshold is
// +Inf until the sample fills, then equals the current k-th smallest rank
// and only ever decreases.
func TestAdmissionThresholdTracksKth(t *testing.T) {
	b := NewBottomKBuilder(3)
	if !math.IsInf(b.AdmissionThreshold(), 1) {
		t.Fatalf("empty builder threshold = %v, want +Inf", b.AdmissionThreshold())
	}
	b.Offer("a", 0.5, 1)
	b.Offer("b", 0.9, 1)
	if !math.IsInf(b.AdmissionThreshold(), 1) {
		t.Fatalf("under-full builder threshold = %v, want +Inf", b.AdmissionThreshold())
	}
	b.Offer("c", 0.7, 1)
	if got := b.AdmissionThreshold(); got != 0.9 {
		t.Fatalf("threshold after fill = %v, want 0.9", got)
	}
	prev := b.AdmissionThreshold()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		b.Offer("t"+itoa(i), rng.Float64(), 1)
		cur := b.AdmissionThreshold()
		if cur > prev {
			t.Fatalf("threshold rose from %v to %v at offer %d", prev, cur, i)
		}
		prev = cur
	}
	if got, want := b.AdmissionThreshold(), b.Sketch().KthRank(); got != want {
		t.Fatalf("final threshold %v != frozen KthRank %v", got, want)
	}
}

// TestNoteRejectedEquivalentToOffering: reporting only the minimum rank of
// a batch of certainly-rejected items yields the same frozen sketch as
// offering each of them.
func TestNoteRejectedEquivalentToOffering(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	low := make([]float64, 64)
	for i := range low {
		low[i] = rng.Float64()
	}
	build := func(prune bool) *BottomK {
		b := NewBottomKBuilder(8)
		for i, r := range low {
			b.Offer("low"+itoa(i), r, 1)
		}
		minRejected := math.Inf(1)
		for i := 0; i < 200; i++ {
			r := 1 + rng.Float64() // certainly above every retained rank
			if prune {
				if r < minRejected {
					minRejected = r
				}
			} else {
				b.Offer("high"+itoa(i), r, 1)
			}
		}
		if prune {
			b.NoteRejected(minRejected)
		}
		return b.Sketch()
	}
	rng = rand.New(rand.NewSource(41))
	want := build(false)
	rng = rand.New(rand.NewSource(41))
	compareSketches(t, build(true), want)
}

// TestOfferSteadyStateZeroAllocs is the allocation budget of the builder:
// with a full heap, neither a rejected nor an admitted Offer allocates.
func TestOfferSteadyStateZeroAllocs(t *testing.T) {
	b := NewBottomKBuilder(64)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4096; i++ {
		b.Offer("warm"+itoa(i), rng.Float64(), 1)
	}
	if allocs := testing.AllocsPerRun(500, func() {
		b.Offer("rejected", 2, 1) // above every retained rank
	}); allocs != 0 {
		t.Fatalf("rejected Offer allocates %v per op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(500, func() {
		b.Offer("admitted", 1e-9, 1) // below every retained rank: replaces the root
	}); allocs != 0 {
		t.Fatalf("admitted Offer allocates %v per op, want 0", allocs)
	}
}

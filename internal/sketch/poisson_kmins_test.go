package sketch

import (
	"math"
	"math/rand"
	"testing"

	"coordsample/internal/rank"
)

func TestSolveTauClosedFormIPPS(t *testing.T) {
	// When no weight saturates (w·τ < 1 for all), IPPS τ = k / Σw.
	weights := []float64{1, 2, 3, 4}
	tau := SolveTau(rank.IPPS, weights, 1)
	if want := 0.1; math.Abs(tau-want) > 1e-9 {
		t.Fatalf("τ = %v, want %v", tau, want)
	}
}

func TestSolveTauSaturation(t *testing.T) {
	// One dominant weight saturates: Σ min(1, w τ) = k must still hold.
	weights := []float64{1000, 1, 1, 1}
	tau := SolveTau(rank.IPPS, weights, 2)
	got := 0.0
	for _, w := range weights {
		got += rank.IPPS.CDF(w, tau)
	}
	if math.Abs(got-2) > 1e-6 {
		t.Fatalf("expected size at τ = %v, want 2", got)
	}
	// The dominant key must be included with probability 1.
	if rank.IPPS.CDF(1000, tau) != 1 {
		t.Fatal("dominant weight should saturate")
	}
}

func TestSolveTauEXP(t *testing.T) {
	weights := []float64{5, 3, 2, 9, 1}
	for _, k := range []float64{1, 2.5, 4} {
		tau := SolveTau(rank.EXP, weights, k)
		got := 0.0
		for _, w := range weights {
			got += rank.EXP.CDF(w, tau)
		}
		if math.Abs(got-k) > 1e-6 {
			t.Fatalf("k=%v: expected size %v", k, got)
		}
	}
}

func TestSolveTauAllSampled(t *testing.T) {
	weights := []float64{1, 2, 0, 3}
	if tau := SolveTau(rank.IPPS, weights, 3); !math.IsInf(tau, 1) {
		t.Fatalf("τ = %v, want +Inf when k ≥ support", tau)
	}
	assertPanics(t, func() { SolveTau(rank.IPPS, weights, 0) })
}

func TestPoissonExpectedSize(t *testing.T) {
	// Statistical: over many hash seeds, the average Poisson sample size must
	// be close to k.
	rng := rand.New(rand.NewSource(11))
	n := 500
	weights := make([]float64, n)
	keys := make([]string, n)
	for i := range weights {
		weights[i] = math.Exp(rng.NormFloat64() * 2) // skewed
		keys[i] = "k" + itoa(i)
	}
	const k = 20
	tau := SolveTau(rank.IPPS, weights, k)
	const trials = 300
	total := 0
	for trial := 0; trial < trials; trial++ {
		a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: uint64(trial) + 1}
		b := NewPoissonBuilder(tau)
		for i, key := range keys {
			b.Offer(key, a.Rank(key, 0, weights[i]), weights[i])
		}
		total += b.Sketch().Size()
	}
	mean := float64(total) / trials
	if math.Abs(mean-k) > 1.0 {
		t.Fatalf("mean Poisson size = %v, want ≈ %d", mean, k)
	}
}

func TestPoissonLookupAndOrder(t *testing.T) {
	b := NewPoissonBuilder(0.5)
	b.Offer("a", 0.4, 2)
	b.Offer("b", 0.6, 3) // above τ
	b.Offer("c", 0.1, 4)
	s := b.Sketch()
	if s.Size() != 2 || s.Tau() != 0.5 {
		t.Fatalf("size=%d τ=%v", s.Size(), s.Tau())
	}
	if s.Entries()[0].Key != "c" || s.Entries()[1].Key != "a" {
		t.Fatalf("entries out of order: %+v", s.Entries())
	}
	if e, ok := s.Lookup("a"); !ok || e.Weight != 2 {
		t.Fatalf("Lookup(a) = %+v, %v", e, ok)
	}
	if s.Contains("b") {
		t.Fatal("b should not be sampled")
	}
}

func TestKMinsCoordinationSharesMinKeys(t *testing.T) {
	// Two identical assignments sketched with the same base assigner must
	// produce identical k-mins sketches (coordination at its strongest).
	a := rank.Assigner{Family: rank.EXP, Mode: rank.SharedSeed, Seed: 77}
	b1 := NewKMinsBuilder(a, 0, 16)
	b2 := NewKMinsBuilder(a, 1, 16)
	for i := 0; i < 200; i++ {
		key := "k" + itoa(i)
		w := 1 + float64(i%13)
		b1.Offer(key, w)
		b2.Offer(key, w)
	}
	s1, s2 := b1.Sketch(), b2.Sketch()
	if got := CommonMinFraction(s1, s2); got != 1 {
		t.Fatalf("identical assignments: common fraction = %v, want 1", got)
	}
}

func TestKMinsJaccardTheorem41(t *testing.T) {
	// Theorem 4.1: with independent-differences consistent ranks, the
	// probability that two assignments share the minimum-rank key equals the
	// weighted Jaccard similarity. k coordinates give a k-sample mean.
	n := 60
	keys := make([]string, n)
	w1 := make([]float64, n)
	w2 := make([]float64, n)
	rng := rand.New(rand.NewSource(4))
	var sumMin, sumMax float64
	for i := range keys {
		keys[i] = "m" + itoa(i)
		if rng.Float64() < 0.8 {
			w1[i] = rng.Float64() * 10
		}
		if rng.Float64() < 0.8 {
			w2[i] = rng.Float64() * 10
		}
		sumMin += math.Min(w1[i], w2[i])
		sumMax += math.Max(w1[i], w2[i])
	}
	jaccard := sumMin / sumMax

	const k = 4000
	a := rank.Assigner{Family: rank.EXP, Mode: rank.IndependentDifferences, Seed: 1234}
	bld := NewKMinsSetBuilder(a, 2, k)
	for i, key := range keys {
		bld.Offer(key, []float64{w1[i], w2[i]})
	}
	s := bld.Sketches()
	got := CommonMinFraction(s[0], s[1])
	// Std-err of a Bernoulli mean with k=4000 is ≤ 0.008; allow 4σ.
	if math.Abs(got-jaccard) > 0.032 {
		t.Fatalf("k-mins Jaccard estimate = %v, want ≈ %v", got, jaccard)
	}
}

func TestKMinsSharedSeedOverestimatesJaccard(t *testing.T) {
	// With shared-seed ranks the collision probability is the min/max of a
	// *single-key dominance* structure, generally ≥ Jaccard; the theorem
	// specifically requires independent-differences. Sanity check that the
	// two modes actually differ on skewed data.
	n := 40
	keys := make([]string, n)
	w1 := make([]float64, n)
	w2 := make([]float64, n)
	rng := rand.New(rand.NewSource(8))
	for i := range keys {
		keys[i] = "m" + itoa(i)
		w1[i] = rng.Float64() * 10
		w2[i] = rng.Float64() * 10
	}
	const k = 3000
	shared := NewKMinsSetBuilder(rank.Assigner{Family: rank.EXP, Mode: rank.SharedSeed, Seed: 5}, 2, k)
	indiff := NewKMinsSetBuilder(rank.Assigner{Family: rank.EXP, Mode: rank.IndependentDifferences, Seed: 5}, 2, k)
	for i, key := range keys {
		vec := []float64{w1[i], w2[i]}
		shared.Offer(key, vec)
		indiff.Offer(key, vec)
	}
	s := shared.Sketches()
	d := indiff.Sketches()
	fs := CommonMinFraction(s[0], s[1])
	fd := CommonMinFraction(d[0], d[1])
	if fs < fd {
		t.Fatalf("expected shared-seed collision fraction (%v) ≥ independent-differences (%v)", fs, fd)
	}
}

func TestKMinsTotalWeightEstimate(t *testing.T) {
	n := 100
	totalWeight := 0.0
	weights := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range weights {
		weights[i] = rng.Float64() * 10
		totalWeight += weights[i]
	}
	a := rank.Assigner{Family: rank.EXP, Mode: rank.SharedSeed, Seed: 21}
	b := NewKMinsBuilder(a, 0, 1000)
	for i, w := range weights {
		b.Offer("k"+itoa(i), w)
	}
	got := b.Sketch().TotalWeightEstimate()
	if math.Abs(got-totalWeight) > 0.15*totalWeight {
		t.Fatalf("total weight estimate %v, want ≈ %v", got, totalWeight)
	}
}

func TestKMinsEmptySet(t *testing.T) {
	a := rank.Assigner{Family: rank.EXP, Mode: rank.SharedSeed, Seed: 21}
	b := NewKMinsBuilder(a, 0, 4)
	s := b.Sketch()
	if s.K() != 4 || s.MinKey(0) != "" || !math.IsInf(s.MinRank(0), 1) {
		t.Fatal("empty k-mins sketch malformed")
	}
	if got := s.TotalWeightEstimate(); got != 0 {
		t.Fatalf("empty-set weight estimate = %v", got)
	}
}

func TestKMinsValidation(t *testing.T) {
	a := rank.Assigner{Family: rank.EXP, Mode: rank.SharedSeed, Seed: 1}
	assertPanics(t, func() { NewKMinsBuilder(a, 0, 0) })
	assertPanics(t, func() { NewKMinsSetBuilder(a, 0, 4) })
	b := NewKMinsSetBuilder(a, 2, 4)
	assertPanics(t, func() { b.Offer("x", []float64{1}) })
	s1 := NewKMinsBuilder(a, 0, 2).Sketch()
	s2 := NewKMinsBuilder(a, 0, 3).Sketch()
	assertPanics(t, func() { CommonMinFraction(s1, s2) })
	one := NewKMinsBuilder(a, 0, 1).Sketch()
	assertPanics(t, func() { one.TotalWeightEstimate() })
}

func BenchmarkKMinsOffer(b *testing.B) {
	a := rank.Assigner{Family: rank.EXP, Mode: rank.SharedSeed, Seed: 1}
	bld := NewKMinsBuilder(a, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld.Offer("key-"+itoa(i%1000), 1.5)
	}
}

func BenchmarkPoissonOffer(b *testing.B) {
	bld := NewPoissonBuilder(0.01)
	rng := rand.New(rand.NewSource(1))
	ranks := make([]float64, 4096)
	for i := range ranks {
		ranks[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld.Offer("key", ranks[i%len(ranks)], 1)
	}
}

func TestKMinsSelectivity(t *testing.T) {
	// Selectivity of a subpopulation J must converge to w(J)/w(I).
	n := 120
	rng := rand.New(rand.NewSource(19))
	weights := make([]float64, n)
	var total, subset float64
	pred := func(key string) bool { return key[len(key)-1] == '3' }
	keys := make([]string, n)
	for i := range keys {
		keys[i] = "s" + itoa(i)
		weights[i] = math.Exp(rng.NormFloat64())
		total += weights[i]
		if pred(keys[i]) {
			subset += weights[i]
		}
	}
	a := rank.Assigner{Family: rank.EXP, Mode: rank.SharedSeed, Seed: 33}
	b := NewKMinsBuilder(a, 0, 5000)
	for i, key := range keys {
		b.Offer(key, weights[i])
	}
	s := b.Sketch()
	want := subset / total
	if got := s.Selectivity(pred); math.Abs(got-want) > 0.03 {
		t.Fatalf("selectivity = %v, want ≈ %v", got, want)
	}
	if got := s.SubsetWeightEstimate(pred); math.Abs(got-subset) > 0.1*subset {
		t.Fatalf("subset weight = %v, want ≈ %v", got, subset)
	}
	// nil predicate selects everything.
	if got := s.Selectivity(nil); got != 1 {
		t.Fatalf("full selectivity = %v", got)
	}
}

func TestKMinsSelectivityEmpty(t *testing.T) {
	a := rank.Assigner{Family: rank.EXP, Mode: rank.SharedSeed, Seed: 1}
	s := NewKMinsBuilder(a, 0, 8).Sketch()
	if got := s.Selectivity(nil); got != 0 {
		t.Fatalf("empty-set selectivity = %v", got)
	}
	if got := s.SubsetWeightEstimate(nil); got != 0 {
		t.Fatalf("empty-set subset weight = %v", got)
	}
}

// Wire codec for bottom-k and Poisson sketches: the serialization layer
// that lets dispersed sites actually ship their summaries to a combiner
// (the operational promise of the paper's dispersed model; "What You Can Do
// with Coordinated Samples" assumes exactly this workflow).
//
// A sketch file is self-describing: a versioned header carries the full
// construction configuration (rank family, coordination mode, seed,
// assignment index, k) plus its fingerprint digest, followed by the
// conditioning ranks (r_k and r_{k+1} for bottom-k, τ for Poisson) and the
// entries. Two formats share one schema:
//
//   - binary: fixed little-endian header + length-prefixed entries, with
//     float64 values stored as IEEE-754 bit patterns (exact round-trip);
//   - JSON: the same fields with float64 values as hexadecimal float
//     literals (strconv 'x' format — also exact, including ±Inf) and
//     64-bit integers as strings (JSON numbers lose precision past 2^53).
//
// Decoding is strict: every structural invariant of a frozen sketch
// (entry ordering, distinct keys, positive finite weights, conditioning
// ranks consistent with the entry count) is revalidated, and the stored
// fingerprint must equal the digest recomputed from the stored
// configuration. A decoded sketch is therefore exactly as trustworthy as
// one built in-process, and arbitrary input can never produce a sketch
// that violates estimator preconditions — the decoder returns errors, it
// never panics (see FuzzDecode).
package sketch

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"coordsample/internal/rank"
)

// Codec selects the wire format of an encoded sketch.
type Codec int

const (
	// CodecBinary is the compact fixed-layout format.
	CodecBinary Codec = iota
	// CodecJSON is the self-describing text format.
	CodecJSON
)

// String names the codec as accepted by ParseCodec.
func (c Codec) String() string {
	switch c {
	case CodecBinary:
		return "binary"
	case CodecJSON:
		return "json"
	default:
		return fmt.Sprintf("Codec(%d)", int(c))
	}
}

// ParseCodec parses a codec name ("binary" or "json").
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "binary":
		return CodecBinary, nil
	case "json":
		return CodecJSON, nil
	default:
		return 0, fmt.Errorf("sketch: unknown codec %q (want binary or json)", s)
	}
}

// WireMeta is the construction configuration a sketch file carries: enough
// to rebuild the rank assigner at the combiner and therefore to answer
// queries from files alone. The sample size k is not part of WireMeta — it
// lives on the sketch (and is 0 for Poisson sketches, whose τ travels in
// the sketch body).
type WireMeta struct {
	Family     rank.Family
	Mode       rank.Coordination
	Seed       uint64
	Assignment int
}

// Assigner returns the rank assigner described by the metadata.
func (m WireMeta) Assigner() rank.Assigner {
	return rank.Assigner{Family: m.Family, Mode: m.Mode, Seed: m.Seed}
}

// Decoded is the result of decoding a sketch file: the construction
// metadata plus exactly one of the two sketch kinds.
type Decoded struct {
	Meta    WireMeta
	BottomK *BottomK // non-nil for bottom-k files
	Poisson *Poisson // non-nil for Poisson files
}

// Fingerprint returns the verified configuration fingerprint of the
// decoded sketch.
func (d *Decoded) Fingerprint() uint64 {
	if d.BottomK != nil {
		return d.BottomK.Fingerprint()
	}
	return d.Poisson.Fingerprint()
}

// Binary format constants.
const (
	wireVersion = 1

	kindBottomK = 1
	kindPoisson = 2

	// headerSize is the fixed binary header: magic(4) version(1) kind(1)
	// family(1) mode(1) seed(8) assignment(4) k(4) fingerprint(8)
	// condA(8) condB(8) count(4).
	headerSize = 4 + 1 + 1 + 1 + 1 + 8 + 4 + 4 + 8 + 8 + 8 + 4

	// minEntrySize bounds the bytes one encoded entry occupies: key length
	// prefix (4) + rank bits (8) + weight bits (8), with an empty key.
	minEntrySize = 4 + 8 + 8
)

// wireMagic opens every binary sketch file.
var wireMagic = [4]byte{'C', 'W', 'S', 'K'}

// EncodeBottomK writes s as a sketch file in the given format. meta must
// describe the configuration the sketch was actually built under: the
// sketch's fingerprint is checked against meta's digest and a mismatch (or
// a fingerprint-less legacy sketch) is rejected with a
// *FingerprintMismatchError, so a file can never ship a sketch whose
// provenance its header misstates.
func EncodeBottomK(w io.Writer, c Codec, meta WireMeta, s *BottomK) error {
	want := meta.Assigner().Fingerprint(meta.Assignment, s.K())
	if s.Fingerprint() != want {
		return &FingerprintMismatchError{Index: -1, Want: want, Got: s.Fingerprint()}
	}
	if meta.Assignment < 0 || meta.Assignment > math.MaxInt32 {
		return fmt.Errorf("sketch: assignment index %d not encodable", meta.Assignment)
	}
	switch c {
	case CodecBinary:
		return encodeBinary(w, kindBottomK, meta, uint32(s.K()), want, s.KthRank(), s.Threshold(), s.Entries())
	case CodecJSON:
		return encodeJSON(w, kindBottomK, meta, s.K(), want, s.KthRank(), s.Threshold(), s.Entries())
	default:
		return fmt.Errorf("sketch: unknown codec %v", c)
	}
}

// EncodePoisson writes s as a sketch file in the given format, with the
// same fingerprint verification as EncodeBottomK (Poisson fingerprints use
// k = 0; τ travels in the sketch body).
func EncodePoisson(w io.Writer, c Codec, meta WireMeta, s *Poisson) error {
	want := meta.Assigner().Fingerprint(meta.Assignment, 0)
	if s.Fingerprint() != want {
		return &FingerprintMismatchError{Index: -1, Want: want, Got: s.Fingerprint()}
	}
	if meta.Assignment < 0 || meta.Assignment > math.MaxInt32 {
		return fmt.Errorf("sketch: assignment index %d not encodable", meta.Assignment)
	}
	switch c {
	case CodecBinary:
		return encodeBinary(w, kindPoisson, meta, 0, want, s.Tau(), 0, s.Entries())
	case CodecJSON:
		return encodeJSON(w, kindPoisson, meta, 0, want, s.Tau(), 0, s.Entries())
	default:
		return fmt.Errorf("sketch: unknown codec %v", c)
	}
}

// Decode reads one sketch file (either format, auto-detected) and returns
// the validated sketch with its metadata.
func Decode(r io.Reader) (*Decoded, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("sketch: reading sketch file: %w", err)
	}
	return DecodeBytes(data)
}

// DecodeBytes decodes one sketch file from memory. The format is detected
// from the leading bytes: binary files open with the "CWSK" magic, JSON
// files with '{' (possibly after whitespace).
func DecodeBytes(data []byte) (*Decoded, error) {
	if len(data) >= len(wireMagic) && bytes.Equal(data[:len(wireMagic)], wireMagic[:]) {
		return decodeBinary(data)
	}
	if i := indexNonSpace(data); i >= 0 && data[i] == '{' {
		return decodeJSON(data)
	}
	return nil, fmt.Errorf("sketch: not a sketch file (no %q magic and no JSON object)", wireMagic)
}

func indexNonSpace(data []byte) int {
	for i, b := range data {
		switch b {
		case ' ', '\t', '\n', '\r':
		default:
			return i
		}
	}
	return -1
}

// --- binary format ---

func encodeBinary(w io.Writer, kind byte, meta WireMeta, k uint32, fp uint64, condA, condB float64, entries []Entry) error {
	size := headerSize
	for _, e := range entries {
		size += minEntrySize + len(e.Key)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, wireMagic[:]...)
	buf = append(buf, wireVersion, kind, byte(meta.Family), byte(meta.Mode))
	buf = binary.LittleEndian.AppendUint64(buf, meta.Seed)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(meta.Assignment))
	buf = binary.LittleEndian.AppendUint32(buf, k)
	buf = binary.LittleEndian.AppendUint64(buf, fp)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(condA))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(condB))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		if len(e.Key) > math.MaxInt32 {
			return fmt.Errorf("sketch: key of %d bytes not encodable", len(e.Key))
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.Key)))
		buf = append(buf, e.Key...)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Rank))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Weight))
	}
	_, err := w.Write(buf)
	return err
}

func decodeBinary(data []byte) (*Decoded, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("sketch: truncated header (%d bytes, want %d)", len(data), headerSize)
	}
	if data[4] != wireVersion {
		return nil, fmt.Errorf("sketch: unsupported wire version %d (want %d)", data[4], wireVersion)
	}
	kind := data[5]
	meta := WireMeta{
		Family: rank.Family(data[6]),
		Mode:   rank.Coordination(data[7]),
		Seed:   binary.LittleEndian.Uint64(data[8:]),
	}
	assignment := binary.LittleEndian.Uint32(data[16:])
	if assignment > math.MaxInt32 {
		return nil, fmt.Errorf("sketch: assignment index %d out of range", assignment)
	}
	meta.Assignment = int(assignment)
	k := binary.LittleEndian.Uint32(data[20:])
	fp := binary.LittleEndian.Uint64(data[24:])
	condA := math.Float64frombits(binary.LittleEndian.Uint64(data[32:]))
	condB := math.Float64frombits(binary.LittleEndian.Uint64(data[40:]))
	count := binary.LittleEndian.Uint32(data[48:])

	rest := data[headerSize:]
	// Each entry occupies at least minEntrySize bytes, so a count that
	// could not fit in the remaining input is rejected before allocating.
	if uint64(count)*minEntrySize > uint64(len(rest)) {
		return nil, fmt.Errorf("sketch: entry count %d exceeds input size", count)
	}
	entries := make([]Entry, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(rest) < 4 {
			return nil, fmt.Errorf("sketch: truncated entry %d", i)
		}
		keyLen := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint64(keyLen) > uint64(len(rest)) || len(rest[keyLen:]) < 16 {
			return nil, fmt.Errorf("sketch: truncated entry %d", i)
		}
		key := string(rest[:keyLen])
		rest = rest[keyLen:]
		r := math.Float64frombits(binary.LittleEndian.Uint64(rest))
		w := math.Float64frombits(binary.LittleEndian.Uint64(rest[8:]))
		rest = rest[16:]
		entries = append(entries, Entry{Key: key, Rank: r, Weight: w})
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("sketch: %d trailing bytes after entries", len(rest))
	}
	return validateDecoded(kind, meta, int(k), fp, condA, condB, entries)
}

// --- JSON format ---

// jsonFormatName identifies sketch files among other JSON documents.
const jsonFormatName = "cws-sketch"

type jsonSketch struct {
	Format      string      `json:"format"`
	Version     int         `json:"version"`
	Kind        string      `json:"kind"`
	Family      string      `json:"family"`
	Mode        string      `json:"mode"`
	Seed        string      `json:"seed"`
	Assignment  int         `json:"assignment"`
	K           int         `json:"k"`
	Fingerprint string      `json:"fingerprint"`
	Kth         string      `json:"kth,omitempty"`
	Threshold   string      `json:"threshold,omitempty"`
	Tau         string      `json:"tau,omitempty"`
	Entries     []jsonEntry `json:"entries"`
}

type jsonEntry struct {
	Key    string `json:"key"`
	Rank   string `json:"rank"`
	Weight string `json:"weight"`
}

// wireFloat formats a float64 as a hexadecimal literal ('x' format), which
// ParseFloat inverts exactly — including ±Inf, which plain JSON numbers
// cannot represent at all.
func wireFloat(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func parseWireFloat(field, s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("sketch: bad %s %q: %w", field, s, err)
	}
	return v, nil
}

func encodeJSON(w io.Writer, kind byte, meta WireMeta, k int, fp uint64, condA, condB float64, entries []Entry) error {
	js := jsonSketch{
		Format:      jsonFormatName,
		Version:     wireVersion,
		Family:      meta.Family.String(),
		Mode:        meta.Mode.String(),
		Seed:        strconv.FormatUint(meta.Seed, 10),
		Assignment:  meta.Assignment,
		K:           k,
		Fingerprint: "0x" + strconv.FormatUint(fp, 16),
		Entries:     make([]jsonEntry, len(entries)),
	}
	switch kind {
	case kindBottomK:
		js.Kind = "bottomk"
		js.Kth = wireFloat(condA)
		js.Threshold = wireFloat(condB)
	case kindPoisson:
		js.Kind = "poisson"
		js.Tau = wireFloat(condA)
	}
	for i, e := range entries {
		js.Entries[i] = jsonEntry{Key: e.Key, Rank: wireFloat(e.Rank), Weight: wireFloat(e.Weight)}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(js)
}

func decodeJSON(data []byte) (*Decoded, error) {
	var js jsonSketch
	if err := json.Unmarshal(data, &js); err != nil {
		return nil, fmt.Errorf("sketch: parsing JSON sketch: %w", err)
	}
	if js.Format != jsonFormatName {
		return nil, fmt.Errorf("sketch: JSON format %q, want %q", js.Format, jsonFormatName)
	}
	if js.Version != wireVersion {
		return nil, fmt.Errorf("sketch: unsupported wire version %d (want %d)", js.Version, wireVersion)
	}
	var kind byte
	var condA, condB float64
	var err error
	switch js.Kind {
	case "bottomk":
		kind = kindBottomK
		if condA, err = parseWireFloat("kth", js.Kth); err != nil {
			return nil, err
		}
		if condB, err = parseWireFloat("threshold", js.Threshold); err != nil {
			return nil, err
		}
	case "poisson":
		kind = kindPoisson
		if condA, err = parseWireFloat("tau", js.Tau); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("sketch: unknown sketch kind %q", js.Kind)
	}
	var meta WireMeta
	switch js.Family {
	case rank.IPPS.String():
		meta.Family = rank.IPPS
	case rank.EXP.String():
		meta.Family = rank.EXP
	default:
		return nil, fmt.Errorf("sketch: unknown rank family %q", js.Family)
	}
	switch js.Mode {
	case rank.SharedSeed.String():
		meta.Mode = rank.SharedSeed
	case rank.Independent.String():
		meta.Mode = rank.Independent
	case rank.IndependentDifferences.String():
		meta.Mode = rank.IndependentDifferences
	default:
		return nil, fmt.Errorf("sketch: unknown coordination mode %q", js.Mode)
	}
	if meta.Seed, err = strconv.ParseUint(js.Seed, 10, 64); err != nil {
		return nil, fmt.Errorf("sketch: bad seed %q: %w", js.Seed, err)
	}
	meta.Assignment = js.Assignment
	fp, err := strconv.ParseUint(js.Fingerprint, 0, 64)
	if err != nil {
		return nil, fmt.Errorf("sketch: bad fingerprint %q: %w", js.Fingerprint, err)
	}
	entries := make([]Entry, len(js.Entries))
	for i, je := range js.Entries {
		r, err := parseWireFloat("rank", je.Rank)
		if err != nil {
			return nil, err
		}
		w, err := parseWireFloat("weight", je.Weight)
		if err != nil {
			return nil, err
		}
		entries[i] = Entry{Key: je.Key, Rank: r, Weight: w}
	}
	return validateDecoded(kind, meta, js.K, fp, condA, condB, entries)
}

// --- shared validation ---

// validateDecoded re-establishes every invariant a frozen sketch holds,
// then reconstructs it. Both decoders funnel through here, so no input —
// however malformed — can yield a sketch that the estimators would
// mis-handle.
func validateDecoded(kind byte, meta WireMeta, k int, fp uint64, condA, condB float64, entries []Entry) (*Decoded, error) {
	if meta.Family != rank.IPPS && meta.Family != rank.EXP {
		return nil, fmt.Errorf("sketch: unknown rank family %d", meta.Family)
	}
	switch meta.Mode {
	case rank.SharedSeed, rank.Independent, rank.IndependentDifferences:
	default:
		return nil, fmt.Errorf("sketch: unknown coordination mode %d", meta.Mode)
	}
	// Bound the assignment index for every decode path (the JSON decoder
	// would otherwise accept any int the document claims, and downstream
	// combiners size slices by it).
	if meta.Assignment < 0 || meta.Assignment > math.MaxInt32 {
		return nil, fmt.Errorf("sketch: assignment index %d out of range", meta.Assignment)
	}
	for i, e := range entries {
		if math.IsNaN(e.Rank) || math.IsInf(e.Rank, 0) || e.Rank <= 0 {
			return nil, fmt.Errorf("sketch: entry %d has invalid rank %v", i, e.Rank)
		}
		if math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) || e.Weight <= 0 {
			return nil, fmt.Errorf("sketch: entry %d has invalid weight %v", i, e.Weight)
		}
		if i > 0 && !entryLess(entries[i-1], e) {
			return nil, fmt.Errorf("sketch: entries out of (rank, key) order at %d", i)
		}
	}
	index := make(map[string]int, len(entries))
	for i, e := range entries {
		if _, dup := index[e.Key]; dup {
			return nil, fmt.Errorf("sketch: duplicate key %q", e.Key)
		}
		index[e.Key] = i
	}

	switch kind {
	case kindBottomK:
		if k < 1 {
			return nil, fmt.Errorf("sketch: invalid bottom-k size %d", k)
		}
		if len(entries) > k {
			return nil, fmt.Errorf("sketch: %d entries exceed k=%d", len(entries), k)
		}
		kth, threshold := condA, condB
		if len(entries) == k {
			if kth != entries[k-1].Rank {
				return nil, fmt.Errorf("sketch: stored r_k %v does not match last entry rank %v", kth, entries[k-1].Rank)
			}
			if math.IsNaN(threshold) || threshold < kth {
				return nil, fmt.Errorf("sketch: stored r_{k+1} %v below r_k %v", threshold, kth)
			}
		} else {
			// Fewer than k keys existed, so neither the k-th nor the
			// (k+1)-st smallest rank does.
			if !math.IsInf(kth, 1) || !math.IsInf(threshold, 1) {
				return nil, fmt.Errorf("sketch: %d < k=%d entries require infinite conditioning ranks, got r_k=%v r_{k+1}=%v", len(entries), k, kth, threshold)
			}
		}
		if want := meta.Assigner().Fingerprint(meta.Assignment, k); fp != want {
			return nil, &FingerprintMismatchError{Index: -1, Want: want, Got: fp}
		}
		s := &BottomK{k: k, fingerprint: fp, entries: entries, kth: kth, threshold: threshold, index: index}
		return &Decoded{Meta: meta, BottomK: s}, nil

	case kindPoisson:
		if k != 0 {
			return nil, fmt.Errorf("sketch: Poisson sketch with k=%d (want 0)", k)
		}
		tau := condA
		if math.IsNaN(tau) || tau <= 0 {
			return nil, fmt.Errorf("sketch: invalid Poisson threshold %v", tau)
		}
		if condB != 0 {
			return nil, fmt.Errorf("sketch: nonzero reserved field %v in Poisson sketch", condB)
		}
		for i, e := range entries {
			if e.Rank >= tau {
				return nil, fmt.Errorf("sketch: entry %d rank %v not below τ=%v", i, e.Rank, tau)
			}
		}
		if want := meta.Assigner().Fingerprint(meta.Assignment, 0); fp != want {
			return nil, &FingerprintMismatchError{Index: -1, Want: want, Got: fp}
		}
		s := &Poisson{tau: tau, fingerprint: fp, entries: entries, index: index}
		return &Decoded{Meta: meta, Poisson: s}, nil

	default:
		return nil, fmt.Errorf("sketch: unknown sketch kind %d", kind)
	}
}

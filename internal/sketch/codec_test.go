package sketch

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"coordsample/internal/rank"
)

// buildFingerprinted builds a bottom-k sketch of n random keys through the
// real rank machinery, as the dispersed pipeline would.
func buildFingerprinted(meta WireMeta, k, n int, rngSeed int64) *BottomK {
	a := meta.Assigner()
	b := NewBottomKBuilderWithFingerprint(k, a.Fingerprint(meta.Assignment, k))
	rng := rand.New(rand.NewSource(rngSeed))
	for i := 0; i < n; i++ {
		key := "key-" + itoa(i)
		w := math.Exp(rng.NormFloat64() * 2)
		b.Offer(key, a.Rank(key, meta.Assignment, w), w)
	}
	return b.Sketch()
}

func buildFingerprintedPoisson(meta WireMeta, tau float64, n int, rngSeed int64) *Poisson {
	a := meta.Assigner()
	b := NewPoissonBuilderWithFingerprint(tau, a.Fingerprint(meta.Assignment, 0))
	rng := rand.New(rand.NewSource(rngSeed))
	for i := 0; i < n; i++ {
		key := "key-" + itoa(i)
		w := math.Exp(rng.NormFloat64() * 2)
		b.Offer(key, a.Rank(key, meta.Assignment, w), w)
	}
	return b.Sketch()
}

func sameBottomK(t *testing.T, got, want *BottomK) {
	t.Helper()
	if got.K() != want.K() || got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("k/fingerprint differ: %d/%#x vs %d/%#x", got.K(), got.Fingerprint(), want.K(), want.Fingerprint())
	}
	// Bit-level equality, so NaN-free ±Inf and exact float64 round-tripping
	// are both verified.
	if math.Float64bits(got.KthRank()) != math.Float64bits(want.KthRank()) ||
		math.Float64bits(got.Threshold()) != math.Float64bits(want.Threshold()) {
		t.Fatalf("conditioning ranks differ: (%v,%v) vs (%v,%v)",
			got.KthRank(), got.Threshold(), want.KthRank(), want.Threshold())
	}
	if got.Size() != want.Size() {
		t.Fatalf("sizes differ: %d vs %d", got.Size(), want.Size())
	}
	for i, e := range want.Entries() {
		g := got.Entries()[i]
		if g.Key != e.Key ||
			math.Float64bits(g.Rank) != math.Float64bits(e.Rank) ||
			math.Float64bits(g.Weight) != math.Float64bits(e.Weight) {
			t.Fatalf("entry %d differs: %+v vs %+v", i, g, e)
		}
		if f, ok := got.Lookup(e.Key); !ok || f != g {
			t.Fatalf("lookup of %q broken after decode", e.Key)
		}
	}
}

// TestCodecRoundTripBottomK is the round-trip property over both formats
// and the structural corner cases: full sketches, size < k (both
// conditioning ranks +Inf), and empty sketches.
func TestCodecRoundTripBottomK(t *testing.T) {
	metas := []WireMeta{
		{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1, Assignment: 0},
		{Family: rank.EXP, Mode: rank.Independent, Seed: math.MaxUint64, Assignment: 7},
	}
	for _, meta := range metas {
		for _, c := range []Codec{CodecBinary, CodecJSON} {
			for _, tc := range []struct {
				name string
				k, n int
			}{
				{"full", 16, 400},
				{"exactly-k", 16, 16},
				{"below-k", 16, 5},
				{"empty", 16, 0},
				{"k1", 1, 100},
			} {
				s := buildFingerprinted(meta, tc.k, tc.n, 42)
				if tc.n < tc.k && !math.IsInf(s.Threshold(), 1) {
					t.Fatalf("%s: expected +Inf threshold", tc.name)
				}
				var buf bytes.Buffer
				if err := EncodeBottomK(&buf, c, meta, s); err != nil {
					t.Fatalf("%v/%s: encode: %v", c, tc.name, err)
				}
				d, err := Decode(&buf)
				if err != nil {
					t.Fatalf("%v/%s: decode: %v", c, tc.name, err)
				}
				if d.BottomK == nil || d.Poisson != nil {
					t.Fatalf("%v/%s: wrong sketch kind", c, tc.name)
				}
				if d.Meta != meta {
					t.Fatalf("%v/%s: meta %+v, want %+v", c, tc.name, d.Meta, meta)
				}
				sameBottomK(t, d.BottomK, s)
			}
		}
	}
}

func TestCodecRoundTripPoisson(t *testing.T) {
	meta := WireMeta{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 3, Assignment: 2}
	for _, c := range []Codec{CodecBinary, CodecJSON} {
		for _, tc := range []struct {
			name string
			tau  float64
			n    int
		}{
			{"finite", 0.02, 500},
			{"inf-tau", math.Inf(1), 50}, // τ=+Inf samples everything
			{"empty", 1e-12, 50},
		} {
			s := buildFingerprintedPoisson(meta, tc.tau, tc.n, 9)
			var buf bytes.Buffer
			if err := EncodePoisson(&buf, c, meta, s); err != nil {
				t.Fatalf("%v/%s: encode: %v", c, tc.name, err)
			}
			d, err := Decode(&buf)
			if err != nil {
				t.Fatalf("%v/%s: decode: %v", c, tc.name, err)
			}
			if d.Poisson == nil {
				t.Fatalf("%v/%s: wrong sketch kind", c, tc.name)
			}
			if d.Meta != meta {
				t.Fatalf("%v/%s: meta mismatch", c, tc.name)
			}
			got := d.Poisson
			if math.Float64bits(got.Tau()) != math.Float64bits(s.Tau()) ||
				got.Fingerprint() != s.Fingerprint() || got.Size() != s.Size() {
				t.Fatalf("%v/%s: τ/fingerprint/size differ", c, tc.name)
			}
			for i, e := range s.Entries() {
				if got.Entries()[i] != e {
					t.Fatalf("%v/%s: entry %d differs", c, tc.name, i)
				}
			}
		}
	}
}

// TestEncodeRejectsWrongProvenance: a file may never misstate the
// configuration its sketch was built under.
func TestEncodeRejectsWrongProvenance(t *testing.T) {
	meta := WireMeta{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 5, Assignment: 1}
	s := buildFingerprinted(meta, 8, 100, 1)

	var fpErr *FingerprintMismatchError
	for name, bad := range map[string]WireMeta{
		"seed":       {Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 6, Assignment: 1},
		"family":     {Family: rank.EXP, Mode: rank.SharedSeed, Seed: 5, Assignment: 1},
		"mode":       {Family: rank.IPPS, Mode: rank.Independent, Seed: 5, Assignment: 1},
		"assignment": {Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 5, Assignment: 2},
	} {
		err := EncodeBottomK(&bytes.Buffer{}, CodecBinary, bad, s)
		if !errors.As(err, &fpErr) {
			t.Fatalf("%s mismatch: got %v, want *FingerprintMismatchError", name, err)
		}
	}

	// Legacy (fingerprint-less) sketches cannot be shipped at all.
	legacy := NewBottomKBuilder(8)
	legacy.Offer("a", 0.5, 1)
	err := EncodeBottomK(&bytes.Buffer{}, CodecBinary, meta, legacy.Sketch())
	if !errors.As(err, &fpErr) || fpErr.Got != 0 {
		t.Fatalf("unfingerprinted sketch: got %v", err)
	}
}

// TestDecodeRejectsTampering flips each byte of a valid binary file and
// requires the decoder to either reject the mutation or produce a sketch
// that still satisfies every invariant — never to panic.
func TestDecodeRejectsTampering(t *testing.T) {
	meta := WireMeta{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 5, Assignment: 1}
	s := buildFingerprinted(meta, 8, 100, 1)
	var buf bytes.Buffer
	if err := EncodeBottomK(&buf, CodecBinary, meta, s); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for i := range valid {
		for _, flip := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), valid...)
			mut[i] ^= flip
			d, err := DecodeBytes(mut)
			if err != nil {
				continue
			}
			// A mutation that decodes must still be internally consistent:
			// the fingerprint check passed against the (possibly mutated)
			// header, and the structural invariants were revalidated.
			if d.BottomK == nil && d.Poisson == nil {
				t.Fatalf("byte %d: decoded to nothing without error", i)
			}
		}
	}

	// Tampering with the stored fingerprint specifically yields the typed
	// mismatch error.
	mut := append([]byte(nil), valid...)
	mut[24] ^= 0xff // fingerprint field offset in the binary header
	var fpErr *FingerprintMismatchError
	if _, err := DecodeBytes(mut); !errors.As(err, &fpErr) {
		t.Fatalf("fingerprint tamper: got %v, want *FingerprintMismatchError", err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a sketch"),
		[]byte("{}"),
		[]byte(`{"format":"cws-sketch","version":1,"kind":"bottomk"}`),
		wireMagic[:],
		append(append([]byte{}, wireMagic[:]...), 99), // bad version
	}
	for i, data := range cases {
		if _, err := DecodeBytes(data); err == nil {
			t.Fatalf("case %d: garbage decoded without error", i)
		}
	}
}

// TestMergeVerifiesFingerprints proves both directions of the merge
// contract: same-configuration sketches merge (and the result keeps the
// fingerprint), every single-parameter deviation is rejected with the
// typed error, and fingerprint-less sketches are rejected too.
func TestMergeVerifiesFingerprints(t *testing.T) {
	meta := WireMeta{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 5, Assignment: 1}
	a := buildFingerprinted(meta, 8, 100, 1)

	// Disjoint second shard under the identical configuration.
	as := meta.Assigner()
	bld := NewBottomKBuilderWithFingerprint(8, as.Fingerprint(meta.Assignment, 8))
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		key := "other-" + itoa(i)
		w := math.Exp(rng.NormFloat64())
		bld.Offer(key, as.Rank(key, meta.Assignment, w), w)
	}
	merged, err := Merge(a, bld.Sketch())
	if err != nil {
		t.Fatalf("same-config merge rejected: %v", err)
	}
	if merged.Fingerprint() != a.Fingerprint() {
		t.Fatal("merge dropped the common fingerprint")
	}

	var fpErr *FingerprintMismatchError
	for name, other := range map[string]*BottomK{
		"seed":       buildFingerprinted(WireMeta{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 6, Assignment: 1}, 8, 100, 3),
		"family":     buildFingerprinted(WireMeta{Family: rank.EXP, Mode: rank.SharedSeed, Seed: 5, Assignment: 1}, 8, 100, 3),
		"mode":       buildFingerprinted(WireMeta{Family: rank.IPPS, Mode: rank.Independent, Seed: 5, Assignment: 1}, 8, 100, 3),
		"assignment": buildFingerprinted(WireMeta{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 5, Assignment: 2}, 8, 100, 3),
		"k":          buildFingerprinted(meta, 9, 100, 3),
	} {
		if _, err := Merge(a, other); !errors.As(err, &fpErr) {
			t.Fatalf("%s deviation: got %v, want *FingerprintMismatchError", name, err)
		} else if fpErr.Index != 1 {
			t.Fatalf("%s deviation: offending index %d, want 1", name, fpErr.Index)
		}
	}

	legacy := NewBottomKBuilder(8)
	legacy.Offer("x", 0.5, 1)
	if _, err := Merge(a, legacy.Sketch()); !errors.As(err, &fpErr) || fpErr.Got != 0 {
		t.Fatalf("legacy sketch: got %v, want unfingerprinted *FingerprintMismatchError", err)
	}
}

// FuzzDecode hardens the binary/JSON decoder: arbitrary input must produce
// an error or a fully validated sketch, never a panic, and anything that
// decodes must re-encode and decode to the identical sketch.
func FuzzDecode(f *testing.F) {
	meta := WireMeta{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1, Assignment: 0}
	for _, k := range []int{1, 4, 16} {
		for _, n := range []int{0, 3, 200} {
			var bin, js bytes.Buffer
			s := buildFingerprinted(meta, k, n, int64(k*n+1))
			if err := EncodeBottomK(&bin, CodecBinary, meta, s); err != nil {
				f.Fatal(err)
			}
			if err := EncodeBottomK(&js, CodecJSON, meta, s); err != nil {
				f.Fatal(err)
			}
			f.Add(bin.Bytes())
			f.Add(js.Bytes())
		}
	}
	var pbuf bytes.Buffer
	p := buildFingerprintedPoisson(meta, 0.05, 200, 7)
	if err := EncodePoisson(&pbuf, CodecBinary, meta, p); err != nil {
		f.Fatal(err)
	}
	f.Add(pbuf.Bytes())
	f.Add([]byte("{}"))
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeBytes(data)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if d.BottomK != nil {
			if err := EncodeBottomK(&buf, CodecBinary, d.Meta, d.BottomK); err != nil {
				t.Fatalf("decoded sketch does not re-encode: %v", err)
			}
			d2, err := DecodeBytes(buf.Bytes())
			if err != nil {
				t.Fatalf("re-encoded sketch does not decode: %v", err)
			}
			sameBottomK(t, d2.BottomK, d.BottomK)
		} else {
			if err := EncodePoisson(&buf, CodecBinary, d.Meta, d.Poisson); err != nil {
				t.Fatalf("decoded sketch does not re-encode: %v", err)
			}
			if _, err := DecodeBytes(buf.Bytes()); err != nil {
				t.Fatalf("re-encoded sketch does not decode: %v", err)
			}
		}
	})
}

// TestDecodeRejectsHugeAssignment: the JSON decoder must bound the
// assignment index exactly as the binary decoder does — combiners size
// state by it, so an unbounded claimed index is an allocation bomb.
func TestDecodeRejectsHugeAssignment(t *testing.T) {
	meta := WireMeta{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1, Assignment: 0}
	s := buildFingerprinted(meta, 4, 50, 1)
	var buf bytes.Buffer
	if err := EncodeBottomK(&buf, CodecJSON, meta, s); err != nil {
		t.Fatal(err)
	}
	doc := strings.Replace(buf.String(), `"assignment": 0`, `"assignment": 1099511627776`, 1)
	if doc == buf.String() {
		t.Fatal("assignment field not found in JSON document")
	}
	if _, err := DecodeBytes([]byte(doc)); err == nil || !strings.Contains(err.Error(), "assignment index") {
		t.Fatalf("huge assignment index accepted: %v", err)
	}
}

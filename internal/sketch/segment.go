// Multi-sketch segment framing: one durable file carrying the complete
// fingerprinted sketch set of a frozen epoch — one bottom-k sketch per
// weight assignment, in assignment order — plus an integrity checksum.
//
// A segment embeds each sketch as a length-prefixed standard binary sketch
// file (the codec of codec.go), so every structural invariant of every
// embedded sketch is revalidated by the same strict decoder that guards
// single-sketch files, and closes with a CRC-32C of everything before the
// trailer. The checksum is what turns silent bit rot (a flipped byte that
// still parses as a structurally valid sketch — e.g. in the low bits of a
// stored weight) into a loud *CorruptSegmentError: the codec's structural
// validation alone cannot catch value corruption, and a durable store must
// never serve it.
package sketch

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// segmentMagic opens every segment file ("CWSG": coordinated weighted
// sampling segment; single-sketch files open with "CWSK").
var segmentMagic = [4]byte{'C', 'W', 'S', 'G'}

const (
	segmentVersion = 1

	// segmentHeaderSize is magic(4) + version(1) + count(4).
	segmentHeaderSize = 4 + 1 + 4
	// segmentTrailerSize is the CRC-32C(4) trailer.
	segmentTrailerSize = 4
)

// castagnoli is the CRC-32C table shared by segment encode and decode.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CorruptSegmentError reports a segment file whose bytes cannot be trusted:
// a framing violation (bad magic/version/length), a truncation, an embedded
// sketch failing strict decode, or a checksum mismatch. A decoder returning
// it guarantees none of the segment's sketches were handed to the caller.
type CorruptSegmentError struct {
	// Detail describes the first violation encountered.
	Detail string
	// Err is the underlying decode error, if the violation was an embedded
	// sketch failing the strict single-sketch decoder.
	Err error
}

func (e *CorruptSegmentError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("sketch: corrupt segment: %s: %v", e.Detail, e.Err)
	}
	return fmt.Sprintf("sketch: corrupt segment: %s", e.Detail)
}

func (e *CorruptSegmentError) Unwrap() error { return e.Err }

// EncodeSegment writes the sketches as one segment file. metas[b] must
// describe the configuration sketches[b] was built under (verified against
// each sketch's fingerprint exactly as EncodeBottomK does); the two slices
// must be parallel, one entry per assignment in assignment order. Returns
// the CRC-32C recorded in the trailer, which callers persisting segments
// should record out of band (a manifest) so corruption is detectable
// without trusting the corrupted file's own trailer.
func EncodeSegment(w io.Writer, metas []WireMeta, sketches []*BottomK) (uint32, error) {
	if len(metas) != len(sketches) {
		return 0, fmt.Errorf("sketch: %d metas for %d sketches", len(metas), len(sketches))
	}
	if len(sketches) == 0 {
		return 0, fmt.Errorf("sketch: empty segment")
	}
	if len(sketches) > math.MaxInt32 {
		return 0, fmt.Errorf("sketch: %d sketches not encodable in one segment", len(sketches))
	}
	var buf bytes.Buffer
	buf.Write(segmentMagic[:])
	buf.WriteByte(segmentVersion)
	var scratch [4]byte
	binary.LittleEndian.PutUint32(scratch[:], uint32(len(sketches)))
	buf.Write(scratch[:])
	var one bytes.Buffer
	for b, s := range sketches {
		one.Reset()
		if err := EncodeBottomK(&one, CodecBinary, metas[b], s); err != nil {
			return 0, fmt.Errorf("sketch: encoding segment sketch %d: %w", b, err)
		}
		if one.Len() > math.MaxInt32 {
			return 0, fmt.Errorf("sketch: segment sketch %d of %d bytes not encodable", b, one.Len())
		}
		binary.LittleEndian.PutUint32(scratch[:], uint32(one.Len()))
		buf.Write(scratch[:])
		buf.Write(one.Bytes())
	}
	crc := crc32.Checksum(buf.Bytes(), castagnoli)
	binary.LittleEndian.PutUint32(scratch[:], crc)
	buf.Write(scratch[:])
	if _, err := w.Write(buf.Bytes()); err != nil {
		return 0, err
	}
	return crc, nil
}

// DecodeSegment decodes one segment file from memory: checksum first, then
// every embedded sketch through the strict single-sketch decoder, so a
// returned slice is exactly as trustworthy as sketches built in-process.
// Any violation — truncation, framing, checksum, or an embedded sketch
// failing validation — yields a *CorruptSegmentError and no sketches.
func DecodeSegment(data []byte) ([]*Decoded, error) {
	if len(data) < segmentHeaderSize+segmentTrailerSize {
		return nil, &CorruptSegmentError{Detail: fmt.Sprintf("truncated (%d bytes)", len(data))}
	}
	if !bytes.Equal(data[:4], segmentMagic[:]) {
		return nil, &CorruptSegmentError{Detail: fmt.Sprintf("bad magic %q", data[:4])}
	}
	if data[4] != segmentVersion {
		return nil, &CorruptSegmentError{Detail: fmt.Sprintf("unsupported segment version %d (want %d)", data[4], segmentVersion)}
	}
	// Verify the checksum before parsing anything else: a flipped byte must
	// surface as corruption even when it would still parse.
	body, trailer := data[:len(data)-segmentTrailerSize], data[len(data)-segmentTrailerSize:]
	want := binary.LittleEndian.Uint32(trailer)
	if got := crc32.Checksum(body, castagnoli); got != want {
		return nil, &CorruptSegmentError{Detail: fmt.Sprintf("checksum %#08x does not match trailer %#08x", got, want)}
	}
	count := binary.LittleEndian.Uint32(data[5:])
	rest := body[segmentHeaderSize:]
	// Each embedded sketch occupies at least its length prefix plus a sketch
	// header, so an absurd count is rejected before allocating.
	if uint64(count)*(4+headerSize) > uint64(len(rest)) {
		return nil, &CorruptSegmentError{Detail: fmt.Sprintf("sketch count %d exceeds input size", count)}
	}
	out := make([]*Decoded, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(rest) < 4 {
			return nil, &CorruptSegmentError{Detail: fmt.Sprintf("truncated sketch %d", i)}
		}
		n := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint64(n) > uint64(len(rest)) {
			return nil, &CorruptSegmentError{Detail: fmt.Sprintf("truncated sketch %d", i)}
		}
		d, err := DecodeBytes(rest[:n])
		if err != nil {
			return nil, &CorruptSegmentError{Detail: fmt.Sprintf("sketch %d", i), Err: err}
		}
		rest = rest[n:]
		out = append(out, d)
	}
	if len(rest) != 0 {
		return nil, &CorruptSegmentError{Detail: fmt.Sprintf("%d trailing bytes after sketches", len(rest))}
	}
	return out, nil
}

// SegmentCRC returns the CRC-32C an intact segment file of the given bytes
// carries in its trailer region — the value a manifest records so the file
// can be verified without trusting the file itself. It does not validate
// the segment; pair it with DecodeSegment.
func SegmentCRC(data []byte) (uint32, bool) {
	if len(data) < segmentHeaderSize+segmentTrailerSize {
		return 0, false
	}
	return binary.LittleEndian.Uint32(data[len(data)-segmentTrailerSize:]), true
}

// Package sketch implements the three sample formats of the paper
// (Section 3): bottom-k (order) sketches, Poisson-τ sketches, and k-mins
// sketches, together with one-pass stream builders.
//
// A sketch of a weighted set (I, w) under a rank assignment r keeps the keys
// with smallest ranks plus the auxiliary rank information the estimators
// condition on: for bottom-k, the k-th and (k+1)-st smallest rank values; for
// Poisson, the threshold τ. Builders process aggregated (key, weight) streams
// in one pass with O(k) state, which is what makes the summarization scalable
// in the dispersed model — each assignment is sketched independently, and
// coordination comes entirely from the shared hash-derived ranks.
package sketch

import (
	"fmt"
	"math"
	"slices"
	"sync/atomic"
)

// Entry is a sampled key together with its rank and weight in the sketched
// assignment. The seed needed by known-seeds estimators is not stored: it is
// recomputed from the deterministic hash when needed.
type Entry struct {
	Key    string
	Rank   float64
	Weight float64
}

// entryLess orders entries by (rank, key); the key tiebreak makes stream and
// offline constructions agree exactly even in artificial tie cases.
func entryLess(a, b Entry) bool {
	if a.Rank != b.Rank {
		return a.Rank < b.Rank
	}
	return a.Key < b.Key
}

// entryCompare is entryLess as a three-way comparison for slices.SortFunc.
// Ranks are never NaN inside a sketch (Offer rejects them), so float
// comparison is a total order here.
func entryCompare(a, b Entry) int {
	switch {
	case a.Rank < b.Rank:
		return -1
	case a.Rank > b.Rank:
		return 1
	case a.Key < b.Key:
		return -1
	case a.Key > b.Key:
		return 1
	default:
		return 0
	}
}

// sortEntries sorts entries into ascending (rank, key) order — the
// non-reflective freeze-path sort shared by every sketch constructor.
func sortEntries(entries []Entry) {
	slices.SortFunc(entries, entryCompare)
}

// BottomK is an immutable bottom-k sketch: the (at most) k keys of smallest
// rank, the k-th smallest rank r_k(I), and the (k+1)-st smallest rank
// r_{k+1}(I) (+Inf when fewer than k, resp. k+1, keys exist). A sketch built
// through the core pipelines additionally carries a configuration
// fingerprint (see Fingerprint), which makes it self-describing enough for
// Merge to detect cross-configuration combinations.
type BottomK struct {
	k           int
	fingerprint uint64  // rank.Assigner.Fingerprint digest; 0 = unfingerprinted
	entries     []Entry // ascending (rank, key)
	kth         float64 // r_k(I)
	threshold   float64 // r_{k+1}(I)
	index       map[string]int
}

// K returns the sketch size parameter.
func (s *BottomK) K() int { return s.k }

// Fingerprint returns the 64-bit digest of the configuration (rank family,
// coordination mode, seed, assignment index, k, format version) the sketch
// was built under, or 0 when the sketch was built by a legacy constructor
// that did not supply one. Merge refuses to combine sketches whose
// fingerprints are absent or disagree; see rank.Assigner.Fingerprint for
// the derivation.
func (s *BottomK) Fingerprint() uint64 { return s.fingerprint }

// Size returns the number of sampled keys (≤ k; smaller when |I| < k).
func (s *BottomK) Size() int { return len(s.entries) }

// Entries returns the sampled entries in ascending rank order. The slice is
// shared; callers must not modify it.
func (s *BottomK) Entries() []Entry { return s.entries }

// Threshold returns r_{k+1}(I), the rank-conditioning value of the RC
// estimator. It is +Inf when the sketch holds the whole set.
func (s *BottomK) Threshold() float64 { return s.threshold }

// KthRank returns r_k(I), +Inf when fewer than k keys exist.
func (s *BottomK) KthRank() float64 { return s.kth }

// Contains reports whether key was sampled.
func (s *BottomK) Contains(key string) bool {
	_, ok := s.index[key]
	return ok
}

// Lookup returns the entry for key, if sampled.
func (s *BottomK) Lookup(key string) (Entry, bool) {
	if i, ok := s.index[key]; ok {
		return s.entries[i], true
	}
	return Entry{}, false
}

// RankExcluding returns r_k(I ∖ {key}), the value that is fixed on the
// rank-conditioning subspace Ω(key, r^{−key}) and therefore usable as an HTP
// conditioning threshold (Section 3, Rank Conditioning): it equals
// r_{k+1}(I) when key is in the sketch and r_k(I) otherwise.
func (s *BottomK) RankExcluding(key string) float64 {
	if s.Contains(key) {
		return s.threshold
	}
	return s.kth
}

// BottomKBuilder consumes an aggregated (key, rank, weight) stream and
// maintains the k smallest-ranked keys with O(k) state and O(log k) work per
// item. Keys must be pre-aggregated: offering the same key twice would treat
// it as two distinct stream elements.
type BottomKBuilder struct {
	k           int
	fingerprint uint64
	heap        []Entry // max-heap on (rank, key)
	next        float64 // min rank among rejected/evicted items = r_{k+1} so far

	// admission publishes the builder's current admission threshold — the
	// Float64bits of r_k so far (heap root rank once the heap is full, +Inf
	// before) — for concurrent producers running the threshold-pruned fast
	// path. It only ever decreases, so a stale read is conservative: an item
	// whose rank exceeds any past value of the threshold is certain to be
	// rejected by Offer. Plain atomic load/store suffice; no ordering beyond
	// the value itself is needed (see AdmissionThreshold).
	admission atomic.Uint64
}

// NewBottomKBuilder returns a builder for bottom-k sketches. k must be ≥ 1.
// Sketches frozen from it carry no fingerprint and can only be combined
// with MergeUnchecked; pipeline code should use
// NewBottomKBuilderWithFingerprint.
func NewBottomKBuilder(k int) *BottomKBuilder {
	return NewBottomKBuilderWithFingerprint(k, 0)
}

// NewBottomKBuilderWithFingerprint returns a builder whose frozen sketches
// carry the given configuration fingerprint (rank.Assigner.Fingerprint of
// the family, mode, seed, assignment, and k used to compute the offered
// ranks). Fingerprinted sketches are accepted by Merge and by the wire
// codec; supplying a fingerprint that does not describe the offered ranks
// defeats the cross-configuration protection.
func NewBottomKBuilderWithFingerprint(k int, fingerprint uint64) *BottomKBuilder {
	if k < 1 {
		panic(fmt.Sprintf("sketch: invalid bottom-k size %d", k))
	}
	b := &BottomKBuilder{k: k, fingerprint: fingerprint, heap: make([]Entry, 0, k), next: math.Inf(1)}
	b.admission.Store(math.Float64bits(math.Inf(1)))
	return b
}

// AdmissionThreshold returns the builder's current admission threshold: the
// k-th smallest rank seen so far, or +Inf while fewer than k items have been
// admitted. The value is monotonically non-increasing over the builder's
// lifetime, which is what makes producer-side pruning exact: any item whose
// rank is strictly greater than a value read here — no matter how stale —
// is guaranteed to be rejected by every later Offer, so skipping the Offer
// entirely cannot change the frozen sketch's entries. (The skipped item's
// rank may still be the stream's r_{k+1}; producers report the minimum rank
// among their pruned items via NoteRejected to keep the frozen Threshold
// bit-exact.)
//
// Safe to call concurrently with Offer from any goroutine.
//
//cws:hotpath
func (b *BottomKBuilder) AdmissionThreshold() float64 {
	return math.Float64frombits(b.admission.Load())
}

// NoteRejected merges the rank of an item that was pruned before reaching
// Offer into the builder's r_{k+1} tracking. The caller asserts the item
// would certainly have been rejected — its rank strictly exceeds a value
// AdmissionThreshold returned at or after the item was drawn. Feeding only
// the minimum rank over all pruned items is equivalent to offering each of
// them. +Inf (no items pruned) is a no-op. Not safe concurrently with Offer.
//
//cws:hotpath
func (b *BottomKBuilder) NoteRejected(rank float64) {
	if rank < b.next {
		b.next = rank
	}
}

// Offer presents one aggregated key with its rank and weight. Keys with
// nonpositive weight or infinite rank are never sampled and are skipped.
//
//cws:hotpath
func (b *BottomKBuilder) Offer(key string, rankValue, weight float64) {
	if weight <= 0 || math.IsInf(rankValue, 1) || math.IsNaN(rankValue) {
		return
	}
	e := Entry{Key: key, Rank: rankValue, Weight: weight}
	if len(b.heap) < b.k {
		b.push(e)
		return
	}
	if entryLess(e, b.heap[0]) {
		evicted := b.heap[0]
		b.replaceTop(e)
		if evicted.Rank < b.next {
			b.next = evicted.Rank
		}
		return
	}
	if e.Rank < b.next {
		b.next = e.Rank
	}
}

// Sketch freezes the builder into a BottomK. The builder may continue to be
// fed afterwards; Sketch can be called again for an updated snapshot.
//
// The sampling model requires pre-aggregated keys (each key offered once per
// assignment); a violation that leaves two copies of a key in the retained
// sample is detected here and reported by panic rather than silently
// corrupting every downstream estimate.
func (b *BottomKBuilder) Sketch() *BottomK {
	entries := make([]Entry, len(b.heap))
	copy(entries, b.heap)
	sortEntries(entries)
	kth := math.Inf(1)
	if len(entries) == b.k {
		kth = entries[len(entries)-1].Rank
	}
	index := make(map[string]int, len(entries))
	for i, e := range entries {
		if _, dup := index[e.Key]; dup {
			panic(fmt.Sprintf("sketch: key %q offered more than once; aggregate keys before sketching", e.Key))
		}
		index[e.Key] = i
	}
	return &BottomK{k: b.k, fingerprint: b.fingerprint, entries: entries, kth: kth, threshold: b.next, index: index}
}

func (b *BottomKBuilder) push(e Entry) {
	//cws:allow-alloc the heap is capped at k entries and NewBottomKBuilderConfig pre-sizes it; growth happens at most once for legacy constructors
	b.heap = append(b.heap, e)
	i := len(b.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(b.heap[parent], b.heap[i]) {
			break
		}
		b.heap[parent], b.heap[i] = b.heap[i], b.heap[parent]
		i = parent
	}
	if len(b.heap) == b.k {
		// The heap just filled: the admission threshold drops from +Inf to
		// the current k-th smallest rank.
		b.admission.Store(math.Float64bits(b.heap[0].Rank))
	}
}

func (b *BottomKBuilder) replaceTop(e Entry) {
	b.heap[0] = e
	i := 0
	n := len(b.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && entryLess(b.heap[largest], b.heap[l]) {
			largest = l
		}
		if r < n && entryLess(b.heap[largest], b.heap[r]) {
			largest = r
		}
		if largest == i {
			break
		}
		b.heap[i], b.heap[largest] = b.heap[largest], b.heap[i]
		i = largest
	}
	// Every replacement lowers (or keeps) the root rank, so the published
	// admission threshold is monotone non-increasing.
	b.admission.Store(math.Float64bits(b.heap[0].Rank))
}

// Prefix returns the bottom-l sketch embedded in s (l ≤ s.K()): the l
// smallest-ranked entries with correctly recomputed r_l(I) and r_{l+1}(I).
// Used by the fixed-distinct-keys colocated summaries (Section 4), which
// grow l adaptively under a shared storage budget.
func (s *BottomK) Prefix(l int) *BottomK {
	if l < 1 || l > s.k {
		panic(fmt.Sprintf("sketch: prefix size %d out of range for k=%d", l, s.k))
	}
	// n = min(s.k, |I|), so comparisons of n against l (≤ s.k) decide
	// whether the l-th and (l+1)-st smallest ranks of I exist.
	n := len(s.entries)
	cut := l
	if cut > n {
		cut = n
	}
	entries := s.entries[:cut]
	kth, threshold := math.Inf(1), math.Inf(1)
	if n >= l {
		kth = s.entries[l-1].Rank
	}
	switch {
	case n >= l+1:
		threshold = s.entries[l].Rank
	case n == l:
		// Either l == s.k (inherit r_{k+1}) or |I| == l exactly (+Inf); the
		// stored threshold is correct in both cases.
		threshold = s.threshold
	}
	index := make(map[string]int, cut)
	for i, e := range entries {
		index[e.Key] = i
	}
	// The parent's fingerprint digests its k, which the prefix no longer
	// has; carrying it over would falsely certify mergeability. Prefixes are
	// consumed in-process by the fixed-budget colocated summaries, so they
	// stay unfingerprinted.
	return &BottomK{k: l, entries: entries, kth: kth, threshold: threshold, index: index}
}

// BottomKFromRanks constructs a bottom-k sketch offline from parallel slices
// of keys, ranks, and weights (used by tests and by the worked examples).
func BottomKFromRanks(k int, keys []string, ranks, weights []float64) *BottomK {
	if len(keys) != len(ranks) || len(keys) != len(weights) {
		panic("sketch: length mismatch")
	}
	b := NewBottomKBuilder(k)
	for i, key := range keys {
		b.Offer(key, ranks[i], weights[i])
	}
	return b.Sketch()
}

// FingerprintMismatchError reports an attempt to combine sketches that were
// not built under interchangeable configurations: either their fingerprints
// disagree (different Family, Mode, Seed, K, or assignment — their ranks are
// incomparable, so any combination would silently corrupt every downstream
// estimate), or a sketch carries no fingerprint at all and therefore cannot
// be verified.
type FingerprintMismatchError struct {
	// Index is the position of the offending sketch among the inputs
	// (0-based), or -1 when the error concerns a single sketch checked
	// against an expected configuration (e.g. by the wire codec).
	Index int
	// Want is the fingerprint the sketch was required to match; Got is the
	// fingerprint it carries. Got == 0 means the sketch is unfingerprinted.
	Want, Got uint64
}

func (e *FingerprintMismatchError) Error() string {
	where := "sketch"
	if e.Index >= 0 {
		where = fmt.Sprintf("sketch %d", e.Index)
	}
	if e.Got == 0 {
		return fmt.Sprintf("sketch: %s carries no configuration fingerprint and cannot be verified; rebuild it through a fingerprinted constructor, or use MergeUnchecked if the configurations are known to match", where)
	}
	return fmt.Sprintf("sketch: %s has fingerprint %#016x, want %#016x: the sketches were built under different configurations (Family/Mode/Seed/K/assignment) and their ranks are incomparable", where, e.Got, e.Want)
}

// Merge combines bottom-k sketches of *disjoint* key sets into the bottom-k
// sketch of their union — the distributed substrate for sketching one
// assignment across shards (each site sketches its shard; a combiner merges).
// Correctness: every key of shard j absent from its sketch has rank at least
// that sketch's threshold, so the merged k smallest and the merged
// (k+1)-smallest rank are determined by the retained entries plus the shard
// thresholds.
//
// Contract: all sketches must carry the same nonzero configuration
// fingerprint, which certifies identical family, mode, seed, assignment,
// and k; a violation returns a *FingerprintMismatchError instead of
// silently producing a sample that is not a bottom-k sample of anything.
// Use MergeUnchecked for fingerprint-less legacy construction paths.
// Disjointness (shards partition the key space) remains the caller's
// responsibility; overlapping keys would be double-counted, exactly as
// duplicate records would in the underlying data. The most common
// disjointness violation is caught downstream: when two copies of a key
// both survive the merge, the Sketch() freeze panics ("offered more than
// once") instead of corrupting every estimate.
func Merge(sketches ...*BottomK) (*BottomK, error) {
	if len(sketches) == 0 {
		panic("sketch: nothing to merge")
	}
	want := sketches[0].fingerprint
	for i, s := range sketches {
		if s.fingerprint == 0 || s.fingerprint != want {
			return nil, &FingerprintMismatchError{Index: i, Want: want, Got: s.fingerprint}
		}
	}
	//cws:allow-unchecked every input's fingerprint was just verified equal above; this is the one sanctioned delegation
	return MergeUnchecked(sketches...), nil
}

// MergeUnchecked is Merge without the fingerprint verification — the escape
// hatch for sketches from legacy constructors (NewBottomKBuilder,
// BottomKFromRanks) and for tests that build sketches by hand. The caller
// asserts that all inputs were built under the same rank assignment;
// getting that wrong silently yields a merged sample that is not a bottom-k
// sample of anything. Mismatched k still panics (it is detectable without a
// fingerprint). The merged sketch keeps the common fingerprint when all
// inputs agree on one, and is unfingerprinted otherwise.
func MergeUnchecked(sketches ...*BottomK) *BottomK {
	if len(sketches) == 0 {
		panic("sketch: nothing to merge")
	}
	k := sketches[0].k
	fp := sketches[0].fingerprint
	for _, s := range sketches {
		if s.k != k {
			panic("sketch: merged sketches must share k")
		}
		if s.fingerprint != fp {
			fp = 0
		}
	}
	b := NewBottomKBuilderWithFingerprint(k, fp)
	for _, s := range sketches {
		for _, e := range s.entries {
			b.Offer(e.Key, e.Rank, e.Weight)
		}
		// The shard's threshold is the smallest rank among its unretained
		// keys; feeding it as a candidate makes the merged threshold exact.
		if !math.IsInf(s.threshold, 1) {
			if s.threshold < b.next {
				b.next = s.threshold
			}
		}
	}
	return b.Sketch()
}

// UnionDistinctKeys returns the set of distinct keys appearing in any of the
// sketches — the "combined sample" whose size the sharing index of Section 9
// measures.
func UnionDistinctKeys(sketches []*BottomK) map[string]bool {
	u := make(map[string]bool)
	for _, s := range sketches {
		for _, e := range s.entries {
			u[e.Key] = true
		}
	}
	return u
}

// UnionBottomK implements the constructive half of Lemma 4.2: from
// coordinated bottom-k sketches of assignments R it returns the k distinct
// keys with smallest r^(minR) rank, which form a bottom-k sketch of
// (I, w^(maxR)). The per-key rank is the minimum rank across sketches.
func UnionBottomK(k int, sketches []*BottomK) []Entry {
	minRank := make(map[string]float64)
	for _, s := range sketches {
		for _, e := range s.entries {
			if cur, ok := minRank[e.Key]; !ok || e.Rank < cur {
				minRank[e.Key] = e.Rank
			}
		}
	}
	entries := make([]Entry, 0, len(minRank))
	for key, r := range minRank {
		entries = append(entries, Entry{Key: key, Rank: r})
	}
	sortEntries(entries)
	if len(entries) > k {
		entries = entries[:k]
	}
	return entries
}

package sketch

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"coordsample/internal/rank"
)

// buildSegmentFixture builds a fingerprinted two-assignment sketch set and
// its encoded segment.
func buildSegmentFixture(t *testing.T, k, n int) ([]WireMeta, []*BottomK, []byte, uint32) {
	t.Helper()
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 99}
	metas := make([]WireMeta, 2)
	sketches := make([]*BottomK, 2)
	rng := rand.New(rand.NewSource(4))
	for b := range sketches {
		metas[b] = WireMeta{Family: a.Family, Mode: a.Mode, Seed: a.Seed, Assignment: b}
		bld := NewBottomKBuilderWithFingerprint(k, a.Fingerprint(b, k))
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("key-%04d", i)
			w := math.Exp(rng.NormFloat64())
			bld.Offer(key, a.Rank(key, b, w), w)
		}
		sketches[b] = bld.Sketch()
	}
	var buf bytes.Buffer
	crc, err := EncodeSegment(&buf, metas, sketches)
	if err != nil {
		t.Fatal(err)
	}
	return metas, sketches, buf.Bytes(), crc
}

// TestSegmentRoundTrip: a decoded segment reproduces every sketch
// bit-identically — entries, conditioning ranks, fingerprints, metadata.
func TestSegmentRoundTrip(t *testing.T) {
	for _, n := range []int{0, 3, 500} { // empty, underfull, overfull sketches
		metas, sketches, data, crc := buildSegmentFixture(t, 32, n)
		if got, ok := SegmentCRC(data); !ok || got != crc {
			t.Fatalf("n=%d: SegmentCRC = %#x,%v, want %#x", n, got, ok, crc)
		}
		decoded, err := DecodeSegment(data)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(decoded) != len(sketches) {
			t.Fatalf("n=%d: decoded %d sketches, want %d", n, len(decoded), len(sketches))
		}
		for b, d := range decoded {
			if d.Meta != metas[b] {
				t.Errorf("n=%d: sketch %d meta %+v, want %+v", n, b, d.Meta, metas[b])
			}
			if d.BottomK == nil {
				t.Fatalf("n=%d: sketch %d is not a bottom-k sketch", n, b)
			}
			sameBottomK(t, d.BottomK, sketches[b])
		}
	}
}

// TestSegmentEncodeRejectsMismatch: encoding verifies fingerprints exactly
// like the single-sketch codec, so a segment can never misstate provenance.
func TestSegmentEncodeRejectsMismatch(t *testing.T) {
	metas, sketches, _, _ := buildSegmentFixture(t, 16, 100)
	var buf bytes.Buffer
	if _, err := EncodeSegment(&buf, metas[:1], sketches); err == nil {
		t.Error("length mismatch accepted")
	}
	bad := []WireMeta{metas[0], metas[0]} // sketch 1 described as assignment 0
	var fpErr *FingerprintMismatchError
	if _, err := EncodeSegment(&buf, bad, sketches); !errors.As(err, &fpErr) {
		t.Errorf("misdescribed sketch: err = %v, want FingerprintMismatchError", err)
	}
	if _, err := EncodeSegment(&buf, nil, nil); err == nil {
		t.Error("empty segment accepted")
	}
}

// TestSegmentCorruptionDetected: every truncation and every flipped byte
// yields a typed *CorruptSegmentError, never silently decoded sketches.
func TestSegmentCorruptionDetected(t *testing.T) {
	_, _, data, _ := buildSegmentFixture(t, 32, 200)

	// Truncations at every boundary class.
	for _, cut := range []int{0, 3, segmentHeaderSize, len(data) / 2, len(data) - 1} {
		if _, err := DecodeSegment(data[:cut]); err == nil {
			t.Errorf("truncation to %d bytes decoded successfully", cut)
		} else {
			var ce *CorruptSegmentError
			if !errors.As(err, &ce) {
				t.Errorf("truncation to %d: err %v is not a *CorruptSegmentError", cut, err)
			}
		}
	}

	// Every single-byte flip must be caught by the checksum (including
	// flips that keep the file structurally valid, e.g. weight low bits).
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x01
		if _, err := DecodeSegment(mut); err == nil {
			t.Fatalf("flipped byte %d decoded successfully", i)
		}
	}

	// Trailing garbage after the trailer changes the checksummed region.
	if _, err := DecodeSegment(append(append([]byte(nil), data...), 0xFF)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

package sketch

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// EncodeSegmentParallel is EncodeSegment with the per-sketch encodes fanned
// across a bounded worker pool. The embedded encodes are independent — each
// sketch becomes one deterministic length-prefixed binary-codec blob — so
// concurrent encoding followed by in-order assembly produces output
// byte-for-byte identical to the serial encoder, including the CRC-32C
// trailer (the segment test pins this). With one schedulable core (or one
// sketch) it degenerates to the serial loop. Error semantics match
// EncodeSegment: the error for the lowest failing assignment index is
// returned — the one a serial pass would have hit first — and nothing is
// written to w on failure.
func EncodeSegmentParallel(w io.Writer, metas []WireMeta, sketches []*BottomK) (uint32, error) {
	if len(metas) != len(sketches) {
		return 0, fmt.Errorf("sketch: %d metas for %d sketches", len(metas), len(sketches))
	}
	if len(sketches) == 0 {
		return 0, fmt.Errorf("sketch: empty segment")
	}
	if len(sketches) > math.MaxInt32 {
		return 0, fmt.Errorf("sketch: %d sketches not encodable in one segment", len(sketches))
	}
	parts := make([][]byte, len(sketches))
	errs := make([]error, len(sketches))
	encodeOne := func(b int) {
		var one bytes.Buffer
		if err := EncodeBottomK(&one, CodecBinary, metas[b], sketches[b]); err != nil {
			errs[b] = fmt.Errorf("sketch: encoding segment sketch %d: %w", b, err)
			return
		}
		if one.Len() > math.MaxInt32 {
			errs[b] = fmt.Errorf("sketch: segment sketch %d of %d bytes not encodable", b, one.Len())
			return
		}
		parts[b] = one.Bytes()
	}
	limit := runtime.GOMAXPROCS(0)
	if limit > len(sketches) {
		limit = len(sketches)
	}
	if limit <= 1 {
		for b := range sketches {
			encodeOne(b)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(limit)
		for p := 0; p < limit; p++ {
			go func() {
				defer wg.Done()
				for {
					b := int(next.Add(1)) - 1
					if b >= len(sketches) {
						return
					}
					encodeOne(b)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	total := segmentHeaderSize
	for _, p := range parts {
		total += 4 + len(p)
	}
	buf := bytes.NewBuffer(make([]byte, 0, total+segmentTrailerSize))
	buf.Write(segmentMagic[:])
	buf.WriteByte(segmentVersion)
	var scratch [4]byte
	binary.LittleEndian.PutUint32(scratch[:], uint32(len(sketches)))
	buf.Write(scratch[:])
	for _, p := range parts {
		binary.LittleEndian.PutUint32(scratch[:], uint32(len(p)))
		buf.Write(scratch[:])
		buf.Write(p)
	}
	crc := crc32.Checksum(buf.Bytes(), castagnoli)
	binary.LittleEndian.PutUint32(scratch[:], crc)
	buf.Write(scratch[:])
	if _, err := w.Write(buf.Bytes()); err != nil {
		return 0, err
	}
	return crc, nil
}

package shard

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"slices"
	"testing"

	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

// singleStream builds the reference sketch the way AssignmentSketcher does:
// one builder, one pass, ranks from the same assigner.
func singleStream(a rank.Assigner, assignment, k int, keys []string, weights []float64) *sketch.BottomK {
	b := sketch.NewBottomKBuilder(k)
	for i, key := range keys {
		if weights[i] > 0 {
			b.Offer(key, a.Rank(key, assignment, weights[i]), weights[i])
		}
	}
	return b.Sketch()
}

// randomStream draws a heavy-tailed (key, weight) stream with some zero
// weights mixed in, mimicking a sparse assignment column.
func randomStream(rng *rand.Rand, n int, tag string) ([]string, []float64) {
	keys := make([]string, n)
	weights := make([]float64, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%s-key-%06d", tag, i)
		if rng.Float64() < 0.1 {
			weights[i] = 0
		} else {
			weights[i] = math.Exp(rng.NormFloat64() * 2)
		}
	}
	return keys, weights
}

func requireIdentical(t *testing.T, got, want *sketch.BottomK, label string) {
	t.Helper()
	if got.K() != want.K() {
		t.Fatalf("%s: k = %d, want %d", label, got.K(), want.K())
	}
	if got.KthRank() != want.KthRank() {
		t.Errorf("%s: KthRank = %v, want %v", label, got.KthRank(), want.KthRank())
	}
	if got.Threshold() != want.Threshold() {
		t.Errorf("%s: Threshold = %v, want %v", label, got.Threshold(), want.Threshold())
	}
	ge, we := got.Entries(), want.Entries()
	if len(ge) != len(we) {
		t.Fatalf("%s: %d entries, want %d", label, len(ge), len(we))
	}
	for i := range ge {
		if ge[i] != we[i] {
			t.Fatalf("%s: entry %d = %+v, want %+v", label, i, ge[i], we[i])
		}
	}
}

// TestShardedEquivalence is the headline guarantee: for every shard and
// worker count, the sharded pipeline's frozen sketch is bit-identical —
// entries, KthRank, Threshold — to the single-stream construction.
func TestShardedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	keys, weights := randomStream(rng, 5000, "eq")
	cfgs := []rank.Assigner{
		{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1},
		{Family: rank.EXP, Mode: rank.SharedSeed, Seed: 42},
		{Family: rank.IPPS, Mode: rank.Independent, Seed: 7},
		{Family: rank.EXP, Mode: rank.Independent, Seed: 19},
	}
	for _, a := range cfgs {
		for _, k := range []int{1, 64, 512} {
			want := singleStream(a, 0, k, keys, weights)
			for _, shards := range []int{1, 2, 7, 16} {
				for _, workers := range []int{1, 3, 8} {
					s := NewSketcher(a, 0, k, shards, workers)
					for i, key := range keys {
						s.Offer(key, weights[i])
					}
					label := fmt.Sprintf("%v k=%d shards=%d workers=%d", a, k, shards, workers)
					requireIdentical(t, s.Sketch(), want, label)
				}
			}
		}
	}
}

// TestShardedSmallSet checks the |I| < k edge where every key is retained
// and both conditioning ranks are +Inf.
func TestShardedSmallSet(t *testing.T) {
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 3}
	keys := []string{"a", "b", "c"}
	weights := []float64{1, 2, 3}
	want := singleStream(a, 0, 10, keys, weights)
	for _, shards := range []int{1, 2, 7, 16} {
		s := NewSketcher(a, 0, 10, shards, 4)
		for i, key := range keys {
			s.Offer(key, weights[i])
		}
		requireIdentical(t, s.Sketch(), want, fmt.Sprintf("small set shards=%d", shards))
	}
}

// TestShardedLargeStreamCrossesBatches exercises multiple full batches per
// worker so flush-on-close and mid-stream sends are both covered.
func TestShardedLargeStreamCrossesBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	keys, weights := randomStream(rng, 40*batchSize, "big")
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 5}
	want := singleStream(a, 2, 256, keys, weights)
	s := NewSketcher(a, 2, 256, 4, 2)
	for i, key := range keys {
		s.Offer(key, weights[i])
	}
	requireIdentical(t, s.Sketch(), want, "large stream")
}

// TestSketchIsTerminal verifies the pipeline contract: Sketch freezes, a
// repeated Sketch returns the same result, and Offer afterwards panics.
// TestOfferBatchEquivalence: the batch entry point is exactly a sequence
// of Offers — same frozen sketch as the single-stream construction.
func TestOfferBatchEquivalence(t *testing.T) {
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 31}
	rng := rand.New(rand.NewSource(12))
	keys, weights := randomStream(rng, 5000, "batch")
	want := singleStream(a, 0, 64, keys, weights)

	s := NewSketcher(a, 0, 64, 4, 2)
	batch := make([]Observation, 0, 100)
	for i, key := range keys {
		batch = append(batch, Observation{Key: key, Weight: weights[i]})
		if len(batch) == cap(batch) {
			s.OfferBatch(batch)
			batch = batch[:0]
		}
	}
	s.OfferBatch(batch)
	requireIdentical(t, s.Sketch(), want, "OfferBatch")
}

func TestSketchIsTerminal(t *testing.T) {
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 9}
	s := NewSketcher(a, 0, 4, 3, 2)
	for i := 0; i < 100; i++ {
		s.Offer(fmt.Sprintf("t-%03d", i), 1+float64(i))
	}
	first := s.Sketch()
	requireIdentical(t, s.Sketch(), first, "repeated Sketch")
	defer func() {
		if recover() == nil {
			t.Fatal("Offer after Sketch did not panic")
		}
	}()
	s.Offer("late", 1)
}

// TestAscendingRankOrderThreshold is the adversarial case for producer-side
// pruning: keys are offered in ascending rank order, so once a shard's
// sample fills, every later item is pruned — and the very first pruned item
// of each shard carries that shard's exact r_{k+1}. If the pruned-rank
// minimum were not reported back to the builder, the frozen Threshold (the
// value the RC estimators condition on) would be +Inf instead of r_{k+1}.
func TestAscendingRankOrderThreshold(t *testing.T) {
	for _, a := range []rank.Assigner{
		{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 13},
		{Family: rank.EXP, Mode: rank.Independent, Seed: 14},
	} {
		n := 4000
		keys := make([]string, n)
		weights := make([]float64, n)
		rng := rand.New(rand.NewSource(77))
		for i := range keys {
			keys[i] = fmt.Sprintf("asc-%05d", i)
			weights[i] = math.Exp(rng.NormFloat64())
		}
		// Sort (key, weight) pairs by rank ascending.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		ranks := make([]float64, n)
		for i := range ranks {
			ranks[i] = a.Rank(keys[i], 0, weights[i])
		}
		slices.SortFunc(order, func(x, y int) int {
			switch {
			case ranks[x] < ranks[y]:
				return -1
			case ranks[x] > ranks[y]:
				return 1
			default:
				return 0
			}
		})
		for _, k := range []int{1, 16, 128} {
			want := singleStream(a, 0, k, keys, weights)
			for _, shards := range []int{1, 2, 7, 16} {
				s := NewSketcher(a, 0, k, shards, 2)
				for _, i := range order {
					s.Offer(keys[i], weights[i])
				}
				label := fmt.Sprintf("ascending %v k=%d shards=%d", a, k, shards)
				requireIdentical(t, s.Sketch(), want, label)
			}
		}
	}
}

// TestNonFiniteWeightsRejectedAtProducer is the regression test for the
// producer-side validity check: NaN and +Inf weights must be dropped before
// routing (NaN used to ride the whole pipeline and die silently at the
// builder; +Inf would have produced a rank-0 entry with infinite weight).
func TestNonFiniteWeightsRejectedAtProducer(t *testing.T) {
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 21}
	rng := rand.New(rand.NewSource(33))
	keys, weights := randomStream(rng, 2000, "fin")
	want := singleStream(a, 0, 64, keys, weights)

	s := NewSketcher(a, 0, 64, 4, 2)
	for i, key := range keys {
		s.Offer(key, weights[i])
	}
	s.Offer("poison-nan", math.NaN())
	s.Offer("poison-posinf", math.Inf(1))
	s.Offer("poison-neginf", math.Inf(-1))
	requireIdentical(t, s.Sketch(), want, "non-finite weights")

	m := NewMultiSketcher(a, 2, 64, 4, 2)
	for i, key := range keys {
		m.OfferVector(key, []float64{weights[i], weights[i]})
	}
	m.OfferVector("poison-vec", []float64{math.NaN(), math.Inf(1)})
	for b, got := range m.Sketches() {
		requireIdentical(t, got, want, fmt.Sprintf("non-finite vector, assignment %d", b))
	}
}

// TestMultiSketcherEquivalence: every ingest form of the multi-assignment
// front-end — per-assignment Offer, OfferBatch, and the hash-once
// OfferVector — freezes bit-identical to the single-stream construction,
// under both dispersed coordination modes.
func TestMultiSketcherEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	const n, numAsg = 3000, 3
	keys := make([]string, n)
	cols := make([][]float64, numAsg)
	for b := range cols {
		cols[b] = make([]float64, n)
	}
	for i := range keys {
		keys[i] = fmt.Sprintf("multi-%05d", i)
		for b := range cols {
			if rng.Float64() < 0.2 {
				continue // dispersed sparsity: key absent from this assignment
			}
			cols[b][i] = math.Exp(rng.NormFloat64() * 2)
		}
	}
	for _, a := range []rank.Assigner{
		{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 101},
		{Family: rank.EXP, Mode: rank.Independent, Seed: 102},
	} {
		const k = 128
		want := make([]*sketch.BottomK, numAsg)
		for b := range want {
			want[b] = singleStream(a, b, k, keys, cols[b])
		}

		vec := make([]float64, numAsg)
		m := NewMultiSketcher(a, numAsg, k, 7, 2)
		for i, key := range keys {
			for b := range cols {
				vec[b] = cols[b][i]
			}
			m.OfferVector(key, vec)
		}
		for b, got := range m.Sketches() {
			requireIdentical(t, got, want[b], fmt.Sprintf("%v OfferVector assignment %d", a, b))
		}

		m = NewMultiSketcher(a, numAsg, k, 7, 2)
		for b := range cols {
			for i, key := range keys {
				m.Offer(b, key, cols[b][i])
			}
		}
		for b, got := range m.Sketches() {
			requireIdentical(t, got, want[b], fmt.Sprintf("%v Offer assignment %d", a, b))
		}
	}
}

// TestProducerFastPathZeroAllocs is the allocation budget of the tentpole:
// once a shard's sample has filled and its threshold is visible to the
// producer, a pruned Offer — the steady-state overwhelming majority — must
// not allocate at all.
func TestProducerFastPathZeroAllocs(t *testing.T) {
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 71}
	s := NewSketcher(a, 0, 8, 1, 1)
	for i := 0; i < 4096; i++ {
		s.Offer(fmt.Sprintf("warm-%05d", i), 1)
	}
	// The threshold becomes visible once the worker has drained a batch
	// containing the sample-filling admissions.
	for i := 0; math.IsInf(s.builders[0].AdmissionThreshold(), 1); i++ {
		if i > 1_000_000 {
			t.Fatal("admission threshold never published")
		}
		runtime.Gosched()
	}
	// A vanishing weight makes w·T smaller than any unit seed, so the offer
	// is pruned deterministically (and the first such prune exercises the
	// pruned-minimum bookkeeping too).
	allocs := testing.AllocsPerRun(500, func() {
		s.Offer("pruned-key", 1e-300)
	})
	if allocs != 0 {
		t.Fatalf("pruned fast-path Offer allocates %v per op, want 0", allocs)
	}
	s.Sketch()
}
func TestShardOfPartitions(t *testing.T) {
	const shards = 8
	hit := make([]int, shards)
	for i := 0; i < 4096; i++ {
		key := fmt.Sprintf("p-%04d", i)
		s := ShardOf(key, shards)
		if s < 0 || s >= shards {
			t.Fatalf("ShardOf(%q) = %d out of range", key, s)
		}
		if s != ShardOf(key, shards) {
			t.Fatalf("ShardOf(%q) not deterministic", key)
		}
		hit[s]++
	}
	for s, n := range hit {
		if n == 0 {
			t.Errorf("shard %d never hit over 4096 keys", s)
		}
	}
}

// TestInvalidShardCount checks constructor validation.
func TestInvalidShardCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shards=0 did not panic")
		}
	}()
	NewSketcher(rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1}, 0, 4, 0, 1)
}

// TestWorkerClamp verifies workers are capped at the shard count and that
// workers ≤ 0 selects a positive default.
func TestWorkerClamp(t *testing.T) {
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1}
	s := NewSketcher(a, 0, 4, 3, 64)
	if s.NumWorkers() != 3 {
		t.Errorf("workers = %d, want clamp to 3", s.NumWorkers())
	}
	s.Sketch()
	s = NewSketcher(a, 0, 4, 2, -1)
	if s.NumWorkers() < 1 || s.NumWorkers() > 2 {
		t.Errorf("defaulted workers = %d, want in [1,2]", s.NumWorkers())
	}
	s.Sketch()
}

// TestDirectModeEquivalence pins down the synchronous single-core mode
// (workers==1 with GOMAXPROCS==1 skips the channel pipeline entirely):
// bit-identity must hold there too, on every shard count. GOMAXPROCS is
// forced to 1 so the test is meaningful on multi-core CI machines as well.
func TestDirectModeEquivalence(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 47}
	rng := rand.New(rand.NewSource(61))
	keys, weights := randomStream(rng, 5000, "direct")
	for _, k := range []int{1, 64, 512} {
		want := singleStream(a, 0, k, keys, weights)
		for _, shards := range []int{1, 2, 7, 16} {
			s := NewSketcher(a, 0, k, shards, 1)
			if !s.direct {
				t.Fatalf("workers=1 under GOMAXPROCS=1 did not select direct mode (shards=%d)", shards)
			}
			for i, key := range keys {
				s.Offer(key, weights[i])
			}
			requireIdentical(t, s.Sketch(), want, fmt.Sprintf("direct k=%d shards=%d", k, shards))
		}
	}
}

package shard

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

// singleStream builds the reference sketch the way AssignmentSketcher does:
// one builder, one pass, ranks from the same assigner.
func singleStream(a rank.Assigner, assignment, k int, keys []string, weights []float64) *sketch.BottomK {
	b := sketch.NewBottomKBuilder(k)
	for i, key := range keys {
		if weights[i] > 0 {
			b.Offer(key, a.Rank(key, assignment, weights[i]), weights[i])
		}
	}
	return b.Sketch()
}

// randomStream draws a heavy-tailed (key, weight) stream with some zero
// weights mixed in, mimicking a sparse assignment column.
func randomStream(rng *rand.Rand, n int, tag string) ([]string, []float64) {
	keys := make([]string, n)
	weights := make([]float64, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%s-key-%06d", tag, i)
		if rng.Float64() < 0.1 {
			weights[i] = 0
		} else {
			weights[i] = math.Exp(rng.NormFloat64() * 2)
		}
	}
	return keys, weights
}

func requireIdentical(t *testing.T, got, want *sketch.BottomK, label string) {
	t.Helper()
	if got.K() != want.K() {
		t.Fatalf("%s: k = %d, want %d", label, got.K(), want.K())
	}
	if got.KthRank() != want.KthRank() {
		t.Errorf("%s: KthRank = %v, want %v", label, got.KthRank(), want.KthRank())
	}
	if got.Threshold() != want.Threshold() {
		t.Errorf("%s: Threshold = %v, want %v", label, got.Threshold(), want.Threshold())
	}
	ge, we := got.Entries(), want.Entries()
	if len(ge) != len(we) {
		t.Fatalf("%s: %d entries, want %d", label, len(ge), len(we))
	}
	for i := range ge {
		if ge[i] != we[i] {
			t.Fatalf("%s: entry %d = %+v, want %+v", label, i, ge[i], we[i])
		}
	}
}

// TestShardedEquivalence is the headline guarantee: for every shard and
// worker count, the sharded pipeline's frozen sketch is bit-identical —
// entries, KthRank, Threshold — to the single-stream construction.
func TestShardedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	keys, weights := randomStream(rng, 5000, "eq")
	cfgs := []rank.Assigner{
		{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1},
		{Family: rank.EXP, Mode: rank.SharedSeed, Seed: 42},
		{Family: rank.IPPS, Mode: rank.Independent, Seed: 7},
	}
	for _, a := range cfgs {
		for _, k := range []int{1, 64, 512} {
			want := singleStream(a, 0, k, keys, weights)
			for _, shards := range []int{1, 2, 7, 16} {
				for _, workers := range []int{1, 3, 8} {
					s := NewSketcher(a, 0, k, shards, workers)
					for i, key := range keys {
						s.Offer(key, weights[i])
					}
					label := fmt.Sprintf("%v k=%d shards=%d workers=%d", a, k, shards, workers)
					requireIdentical(t, s.Sketch(), want, label)
				}
			}
		}
	}
}

// TestShardedSmallSet checks the |I| < k edge where every key is retained
// and both conditioning ranks are +Inf.
func TestShardedSmallSet(t *testing.T) {
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 3}
	keys := []string{"a", "b", "c"}
	weights := []float64{1, 2, 3}
	want := singleStream(a, 0, 10, keys, weights)
	for _, shards := range []int{1, 2, 7, 16} {
		s := NewSketcher(a, 0, 10, shards, 4)
		for i, key := range keys {
			s.Offer(key, weights[i])
		}
		requireIdentical(t, s.Sketch(), want, fmt.Sprintf("small set shards=%d", shards))
	}
}

// TestShardedLargeStreamCrossesBatches exercises multiple full batches per
// worker so flush-on-close and mid-stream sends are both covered.
func TestShardedLargeStreamCrossesBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	keys, weights := randomStream(rng, 40*batchSize, "big")
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 5}
	want := singleStream(a, 2, 256, keys, weights)
	s := NewSketcher(a, 2, 256, 4, 2)
	for i, key := range keys {
		s.Offer(key, weights[i])
	}
	requireIdentical(t, s.Sketch(), want, "large stream")
}

// TestSketchIsTerminal verifies the pipeline contract: Sketch freezes, a
// repeated Sketch returns the same result, and Offer afterwards panics.
// TestOfferBatchEquivalence: the batch entry point is exactly a sequence
// of Offers — same frozen sketch as the single-stream construction.
func TestOfferBatchEquivalence(t *testing.T) {
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 31}
	rng := rand.New(rand.NewSource(12))
	keys, weights := randomStream(rng, 5000, "batch")
	want := singleStream(a, 0, 64, keys, weights)

	s := NewSketcher(a, 0, 64, 4, 2)
	batch := make([]Observation, 0, 100)
	for i, key := range keys {
		batch = append(batch, Observation{Key: key, Weight: weights[i]})
		if len(batch) == cap(batch) {
			s.OfferBatch(batch)
			batch = batch[:0]
		}
	}
	s.OfferBatch(batch)
	requireIdentical(t, s.Sketch(), want, "OfferBatch")
}

func TestSketchIsTerminal(t *testing.T) {
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 9}
	s := NewSketcher(a, 0, 4, 3, 2)
	for i := 0; i < 100; i++ {
		s.Offer(fmt.Sprintf("t-%03d", i), 1+float64(i))
	}
	first := s.Sketch()
	requireIdentical(t, s.Sketch(), first, "repeated Sketch")
	defer func() {
		if recover() == nil {
			t.Fatal("Offer after Sketch did not panic")
		}
	}()
	s.Offer("late", 1)
}

// TestShardOfPartitions checks the router is a total, deterministic
// partition with every shard reachable.
func TestShardOfPartitions(t *testing.T) {
	const shards = 8
	hit := make([]int, shards)
	for i := 0; i < 4096; i++ {
		key := fmt.Sprintf("p-%04d", i)
		s := ShardOf(key, shards)
		if s < 0 || s >= shards {
			t.Fatalf("ShardOf(%q) = %d out of range", key, s)
		}
		if s != ShardOf(key, shards) {
			t.Fatalf("ShardOf(%q) not deterministic", key)
		}
		hit[s]++
	}
	for s, n := range hit {
		if n == 0 {
			t.Errorf("shard %d never hit over 4096 keys", s)
		}
	}
}

// TestInvalidShardCount checks constructor validation.
func TestInvalidShardCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shards=0 did not panic")
		}
	}()
	NewSketcher(rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1}, 0, 4, 0, 1)
}

// TestWorkerClamp verifies workers are capped at the shard count and that
// workers ≤ 0 selects a positive default.
func TestWorkerClamp(t *testing.T) {
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1}
	s := NewSketcher(a, 0, 4, 3, 64)
	if s.NumWorkers() != 3 {
		t.Errorf("workers = %d, want clamp to 3", s.NumWorkers())
	}
	s.Sketch()
	s = NewSketcher(a, 0, 4, 2, -1)
	if s.NumWorkers() < 1 || s.NumWorkers() > 2 {
		t.Errorf("defaulted workers = %d, want in [1,2]", s.NumWorkers())
	}
	s.Sketch()
}

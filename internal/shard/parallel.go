package shard

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelDo runs f(0) … f(n-1) across at most limit concurrent goroutines,
// pulling indexes from a shared counter so the work self-balances. limit ≤ 0
// selects GOMAXPROCS; with an effective limit of one (or n ≤ 1) it runs the
// plain serial loop — in particular a single-core process pays no goroutine
// or synchronization cost. It is the repository's freeze/encode fan-out
// primitive: per-shard and per-assignment freezes are embarrassingly
// parallel, and ParallelDo keeps them semantically identical to the serial
// loop, including panics.
//
// A panic raised by f is captured in the worker, and after every worker has
// stopped the panic for the lowest index is re-raised on the calling
// goroutine — the same panic a serial loop would have surfaced first. (The
// original stack is lost to the recover, but callers that care — the
// server's freeze path — recover the value itself, which is preserved.)
func ParallelDo(n, limit int, f func(int)) {
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	if limit > n {
		limit = n
	}
	if limit <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		panicIdx = n
		panicVal any
	)
	wg.Add(limit)
	for p := 0; p < limit; p++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if i < panicIdx {
								panicIdx, panicVal = i, r
							}
							mu.Unlock()
						}
					}()
					f(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicIdx < n {
		panic(panicVal)
	}
}

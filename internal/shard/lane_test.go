package shard

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"slices"
	"sync"
	"testing"

	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

// driveLanes partitions the stream round-robin across the sketcher's lanes
// and drives every lane from its own goroutine — the multi-core ingest
// topology. The round-robin split keeps each key on exactly one lane (the
// pre-aggregation contract) while interleaving lane progress as much as the
// scheduler allows.
func driveLanes(s *Sketcher, keys []string, weights []float64) {
	lanes := s.Lanes()
	var wg sync.WaitGroup
	wg.Add(len(lanes))
	for j, lane := range lanes {
		go func(j int, lane *Lane) {
			defer wg.Done()
			for i := j; i < len(keys); i += len(lanes) {
				lane.Offer(keys[i], weights[i])
			}
		}(j, lane)
	}
	wg.Wait()
}

// TestLaneSeamInvariance is the multi-core seam-invariance matrix: for
// workers ∈ {1, 2, 7, GOMAXPROCS} × shards ∈ {1, 2, 7, 16} × both dispersed
// coordination modes, a stream split across concurrently-driven lanes
// freezes bit-identical — entries, r_k, r_{k+1} — to the single-stream
// builder, no matter how the scheduler interleaves the lanes. Run under
// -race in CI, this is the correctness oracle for the core-affine ingest
// path.
func TestLaneSeamInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	keys, weights := randomStream(rng, 4000, "lane")
	workerSweep := []int{1, 2, 7, runtime.GOMAXPROCS(0)}
	slices.Sort(workerSweep)
	workerSweep = slices.Compact(workerSweep)
	for _, mode := range []rank.Coordination{rank.SharedSeed, rank.Independent} {
		a := rank.Assigner{Family: rank.IPPS, Mode: mode, Seed: 83}
		const k = 128
		want := singleStream(a, 0, k, keys, weights)
		for _, shards := range []int{1, 2, 7, 16} {
			for _, workers := range workerSweep {
				for _, lanes := range []int{2, 4} {
					s := NewSketcherLanes(a, 0, k, shards, workers, lanes)
					driveLanes(s, keys, weights)
					label := fmt.Sprintf("%v shards=%d workers=%d lanes=%d", mode, shards, workers, lanes)
					requireIdentical(t, s.Sketch(), want, label)
				}
			}
		}
	}
}

// TestMultiLaneSeamInvariance extends the matrix to the multi-assignment
// front-end: concurrent MultiLanes driving OfferVector (the hash-once path
// under SharedSeed) freeze every assignment bit-identical to the
// single-stream construction.
func TestMultiLaneSeamInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	const n, numAsg, k = 3000, 3, 96
	keys := make([]string, n)
	cols := make([][]float64, numAsg)
	for b := range cols {
		cols[b] = make([]float64, n)
	}
	for i := range keys {
		keys[i] = fmt.Sprintf("mlane-%05d", i)
		for b := range cols {
			if rng.Float64() < 0.2 {
				continue
			}
			cols[b][i] = math.Exp(rng.NormFloat64() * 2)
		}
	}
	vecs := make([][]float64, n)
	for i := range vecs {
		vecs[i] = make([]float64, numAsg)
		for b := range cols {
			vecs[i][b] = cols[b][i]
		}
	}
	for _, mode := range []rank.Coordination{rank.SharedSeed, rank.Independent} {
		a := rank.Assigner{Family: rank.IPPS, Mode: mode, Seed: 227}
		want := make([]*sketch.BottomK, numAsg)
		for b := range want {
			want[b] = singleStream(a, b, k, keys, cols[b])
		}
		for _, shards := range []int{1, 7, 16} {
			m := NewMultiSketcherLanes(a, numAsg, k, shards, 2, 4)
			mlanes := m.Lanes()
			var wg sync.WaitGroup
			wg.Add(len(mlanes))
			for j, ml := range mlanes {
				go func(j int, ml *MultiLane) {
					defer wg.Done()
					for i := j; i < n; i += len(mlanes) {
						ml.OfferVector(keys[i], vecs[i])
					}
				}(j, ml)
			}
			wg.Wait()
			for b, got := range m.Sketches() {
				requireIdentical(t, got, want[b],
					fmt.Sprintf("%v shards=%d assignment %d", mode, shards, b))
			}
		}
	}
}

// TestLaneAscendingRankOrder is the adversarial pruning case under
// concurrent lanes: with keys offered in globally ascending rank order,
// once a shard's sample fills every later item is pruned, and each shard's
// exact r_{k+1} is carried by whichever lane pruned the globally-first
// pruned item. The per-lane minima merged at freeze must recover it exactly
// — the frozen Threshold is bit-identical to the serial construction.
func TestLaneAscendingRankOrder(t *testing.T) {
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 233}
	const n = 4000
	keys := make([]string, n)
	weights := make([]float64, n)
	rng := rand.New(rand.NewSource(97))
	for i := range keys {
		keys[i] = fmt.Sprintf("lasc-%05d", i)
		weights[i] = math.Exp(rng.NormFloat64())
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = a.Rank(keys[i], 0, weights[i])
	}
	slices.SortFunc(order, func(x, y int) int {
		switch {
		case ranks[x] < ranks[y]:
			return -1
		case ranks[x] > ranks[y]:
			return 1
		default:
			return 0
		}
	})
	sortedKeys := make([]string, n)
	sortedWeights := make([]float64, n)
	for i, idx := range order {
		sortedKeys[i] = keys[idx]
		sortedWeights[i] = weights[idx]
	}
	for _, k := range []int{1, 16, 128} {
		want := singleStream(a, 0, k, keys, weights)
		for _, shards := range []int{1, 2, 7, 16} {
			s := NewSketcherLanes(a, 0, k, shards, 2, 3)
			driveLanes(s, sortedKeys, sortedWeights)
			requireIdentical(t, s.Sketch(), want,
				fmt.Sprintf("ascending lanes k=%d shards=%d", k, shards))
		}
	}
}

// TestLaneDuplicateKeyPanic: the duplicate-key contract violation must
// surface from the parallel freeze exactly as it does from the serial one —
// as a panic on the goroutine calling Sketch, not a crash on an internal
// worker — even when the duplicate was offered from two different lanes.
func TestLaneDuplicateKeyPanic(t *testing.T) {
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 239}
	serialMsg := func() (msg any) {
		defer func() { msg = recover() }()
		b := sketch.NewBottomKBuilder(8)
		b.Offer("dup", a.Rank("dup", 0, 1e9), 1e9)
		b.Offer("dup", a.Rank("dup", 0, 1e9), 1e9)
		b.Sketch()
		return nil
	}()
	if serialMsg == nil {
		t.Fatal("serial duplicate-key freeze did not panic")
	}
	// Force the parallel per-shard freeze path: more than one schedulable
	// worker in ParallelDo requires shards > 1, so put the duplicate on a
	// known sketcher and let every shard freeze concurrently.
	s := NewSketcherLanes(a, 0, 8, 7, 2, 2)
	lanes := s.Lanes()
	var wg sync.WaitGroup
	wg.Add(2)
	for j := 0; j < 2; j++ {
		go func(j int) {
			defer wg.Done()
			// The huge weight gives the duplicate a near-zero rank, so both
			// copies are certainly admitted and retained in its shard.
			lanes[j].Offer("dup", 1e9)
			for i := 0; i < 50; i++ {
				lanes[j].Offer(fmt.Sprintf("fill-%d-%d", j, i), 1+float64(i))
			}
		}(j)
	}
	wg.Wait()
	defer func() {
		msg := recover()
		if msg == nil {
			t.Fatal("parallel freeze of duplicate key did not panic")
		}
		if fmt.Sprint(msg) != fmt.Sprint(serialMsg) {
			t.Fatalf("parallel freeze panic %q, want serial panic %q", msg, serialMsg)
		}
	}()
	s.Sketch()
}

// TestLaneOfferZeroAllocs is the per-lane allocation budget: once a shard's
// threshold is published, a pruned Offer on any lane — the steady-state
// overwhelming majority — must not allocate. Lanes > 1 forces the batched
// (non-direct) pipeline even on a single-core machine, so this measures the
// multi-producer fast path, not the synchronous fallback.
func TestLaneOfferZeroAllocs(t *testing.T) {
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 241}
	s := NewSketcherLanes(a, 0, 8, 1, 1, 2)
	if s.direct {
		t.Fatal("lanes=2 must disable direct mode")
	}
	warm := s.Lanes()[0]
	for i := 0; i < 4096; i++ {
		warm.Offer(fmt.Sprintf("warm-%05d", i), 1)
	}
	for i := 0; math.IsInf(s.builders[0].AdmissionThreshold(), 1); i++ {
		if i > 1_000_000 {
			t.Fatal("admission threshold never published")
		}
		runtime.Gosched()
	}
	for _, j := range []int{0, 1} {
		lane := s.Lanes()[j]
		allocs := testing.AllocsPerRun(500, func() {
			lane.Offer("pruned-key", 1e-300)
		})
		if allocs != 0 {
			t.Fatalf("lane %d pruned Offer allocates %v per op, want 0", j, allocs)
		}
	}
	s.Sketch()
}

// TestLaneDefaults pins the constructor contract: lanes ≤ 0 selects
// GOMAXPROCS, NewSketcher keeps the single-lane shape, and multiple lanes
// disable the synchronous direct mode regardless of core count.
func TestLaneDefaults(t *testing.T) {
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 251}
	s := NewSketcherLanes(a, 0, 4, 2, 1, -1)
	if s.NumLanes() != runtime.GOMAXPROCS(0) {
		t.Errorf("defaulted lanes = %d, want GOMAXPROCS = %d", s.NumLanes(), runtime.GOMAXPROCS(0))
	}
	s.Sketch()
	if n := NewSketcher(a, 0, 4, 2, 1).NumLanes(); n != 1 {
		t.Errorf("NewSketcher lanes = %d, want 1", n)
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	if s := NewSketcherLanes(a, 0, 4, 1, 1, 2); s.direct {
		t.Error("lanes=2 selected direct mode under GOMAXPROCS=1")
	}
	if s := NewSketcherLanes(a, 0, 4, 1, 1, 1); !s.direct {
		t.Error("lanes=1 workers=1 under GOMAXPROCS=1 should select direct mode")
	}
}

// TestParallelDo pins the fan-out primitive itself: full index coverage at
// any limit, serial fallback, and panic propagation choosing the lowest
// index — the same panic a serial loop would surface first.
func TestParallelDo(t *testing.T) {
	for _, limit := range []int{0, 1, 3, 64} {
		const n = 100
		var hits [n]int32
		var mu sync.Mutex
		ParallelDo(n, limit, func(i int) {
			mu.Lock()
			hits[i]++
			mu.Unlock()
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("limit=%d: f(%d) ran %d times, want 1", limit, i, h)
			}
		}
	}
	got := func() (msg any) {
		defer func() { msg = recover() }()
		// limit > 1 forces the concurrent path even on one core; every odd
		// index panics and the lowest (1) must win.
		ParallelDo(10, 4, func(i int) {
			if i%2 == 1 {
				panic(fmt.Sprintf("boom-%d", i))
			}
		})
		return nil
	}()
	if got != "boom-1" {
		t.Fatalf("ParallelDo propagated panic %v, want boom-1", got)
	}
	ParallelDo(0, 4, func(int) { t.Fatal("n=0 must not call f") })
}

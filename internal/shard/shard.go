// Package shard implements sharded, concurrent ingestion of one weight
// assignment's aggregated (key, weight) stream, with a threshold-pruned,
// steady-state-zero-allocation producer fast path and core-affine producer
// lanes for multi-core ingest.
//
// The construction rests on three facts. First, per-assignment sketching is
// a one-pass, O(k)-state operation (Section 3 of the paper), so a stream can
// be split arbitrarily and each piece sketched independently. Second,
// sketch.Merge combines bottom-k sketches of *disjoint* key sets into the
// exact bottom-k sketch of their union. Third — the fast path — a bottom-k
// builder admits an item only when its rank is below the k-th smallest rank
// so far, a threshold that only ever decreases; because rank families are
// monotone with F_w(x) ≤ w·x, a producer holding the item's raw hash can
// prove "rank certainly above threshold" with one multiply and one compare
// (rank.Family.RejectsSeed) and drop the item without evaluating a quantile,
// without an allocation, and without a channel send. Once the samples fill,
// that is almost every item of the stream.
//
// A Sketcher therefore hashes each offered key once with the assignment's
// rank hash (rank.Assigner.RankHashSeed) and reuses the 64-bit word three
// ways: shard routing (h mod S), admission-bound pruning against the routed
// shard builder's published threshold (sketch.BottomKBuilder.
// AdmissionThreshold, a relaxed atomic), and — for the few admitted items —
// the unit seed from which the receiving worker computes the exact rank.
// Admitted items travel in pool-recycled batches through per-worker
// channels, so the steady state allocates nothing.
//
// # Core-affine lanes
//
// Producer-side state lives in a Lane: per-worker pending batches, a pinned
// batch pool, and the per-shard pruned-rank minima. A Sketcher built with
// NewSketcherLanes exposes L lanes; each lane is single-producer, but
// distinct lanes may offer concurrently from different goroutines (one per
// core). This is safe without any lane-to-lane synchronization because the
// hot path is the pruned-rejection path: the admission threshold is a
// published atomic that only ever decreases, so a stale read is
// conservative, and a pruned item touches nothing but the lane's own
// prunedMin array. Only the rare admitted item crosses a channel to the
// worker that owns its shard (shard s is owned by worker s mod W — a fixed
// partition, so no builder is ever touched by two goroutines). Recycled
// batches return to the sending lane's own sync.Pool, whose per-P caches
// keep a batch's memory on the core that fills it.
//
// Exactness is preserved bit for bit, per lane count and interleaving.
// Pruning cannot change the retained entries: thresholds only decrease, so
// an item whose rank provably exceeds a stale threshold is rejected by every
// later Offer too. Pruning could only lose the (k+1)-st smallest rank
// r_{k+1} (the frozen sketch's Threshold, which the estimators condition on)
// — so each lane tracks the exact minimum rank among the items it pruned per
// shard (lazily: the quantile is evaluated only when the one-multiply bound
// says the item might improve the running minimum, which happens O(log n)
// times) and the freeze merges the lane minima into the builders via
// NoteRejected. Both the retained bottom-k (a min under the total
// (rank, key) order) and r_{k+1} (a min over pruned/evicted ranks) are
// order-independent, so the frozen sketch cannot depend on how offers
// interleave across lanes: it is bit-identical — same entries, same r_k(I),
// same r_{k+1}(I) — to the single-stream construction, for every shard,
// worker, and lane count and both dispersed coordination modes; the shard
// tests and the ingest/scale experiments enforce this.
//
// Routing reuses the rank hash rather than a separate shard hash: one FNV
// pass per offer instead of two. Which shard a key lands on can therefore
// correlate with its rank, but that is harmless — the merge lemma makes the
// frozen sketch independent of how the key space was partitioned, so
// routing correlation can never affect what the coordinated samples retain.
package shard

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"coordsample/internal/hashing"
	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

// batchSize is the number of admitted items buffered per worker before a
// channel send. Batching amortizes channel synchronization over many keys;
// 256 keeps the per-batch memory small (a few KiB) while making sends rare.
// With pruning, a batch also bounds how stale the producer's view of a
// shard's threshold can get: at most 256 admissions happen between the
// flush that carries threshold-lowering items to the builder and the next.
const batchSize = 256

// item is one routed stream element that survived producer-side pruning.
// The unit seed is already computed (from the single rank hash); the
// receiving worker evaluates only the quantile.
type item struct {
	key    string
	u      float64 // unit seed Unit(Hash64(rankHashSeed, key))
	weight float64
	shard  int32
}

// batch carries admitted items from a lane to a worker together with the
// pool it came from — the sending lane's pinned pool — so the worker can
// return the drained batch to the lane that fills it. sync.Pool's per-P
// caches then keep a batch's memory resident on the core driving that lane.
type batch struct {
	items []item
	home  *sync.Pool
}

// ShardOf returns the shard index of key under a seed-free partition into
// shards disjoint pieces. Retained for callers partitioning key spaces
// outside a Sketcher (distributed sites agreeing on a partition); the
// Sketcher itself routes on the rank hash to avoid a second hash pass.
func ShardOf(key string, shards int) int {
	return int(hashing.ShardHash(key) % uint64(shards))
}

// Sketcher builds the bottom-k sketch of one weight assignment by
// hash-partitioning its stream across disjoint shards sketched concurrently,
// pruning certainly-rejected items on the producer. It is a drop-in
// replacement for a single-stream sketcher: the frozen sketch is
// bit-identical to the one-builder construction.
//
// The Sketcher's own Offer methods delegate to lane 0 and must be called
// from a single goroutine; for concurrent producers, build with
// NewSketcherLanes and give each producer goroutine its own Lane. Sketch
// terminates the pipeline: it flushes every lane, waits for the workers, and
// merges — no lane may Offer afterwards, and all producers must have
// stopped before it is called.
type Sketcher struct {
	family     rank.Family
	assignment int
	hashSeed   uint64 // rank.Assigner.RankHashSeed(assignment)
	shards     uint64
	workers    int
	direct     bool                     // no worker goroutines: producer offers admitted items synchronously
	builders   []*sketch.BottomKBuilder // one per shard; builders[s] is owned by worker s % workers
	chans      []chan *batch            // one per worker (nil in direct mode)
	lanes      []*Lane
	wg         sync.WaitGroup
	closed     bool
}

// NewSketcher creates a single-producer sharded sketcher (one lane) for
// assignment index assignment with per-assignment sample size k. shards must
// be ≥ 1; workers ≤ 0 selects GOMAXPROCS, and the worker count is capped at
// the shard count (shard s is owned by worker s mod workers, so extra
// workers would idle). The assigner must be a dispersed mode (SharedSeed or
// Independent); IndependentDifferences requires colocated weights and
// panics.
func NewSketcher(assigner rank.Assigner, assignment, k, shards, workers int) *Sketcher {
	return NewSketcherLanes(assigner, assignment, k, shards, workers, 1)
}

// NewSketcherLanes is NewSketcher with an explicit producer-lane count:
// the returned Sketcher carries lanes independent producer front-ends
// (Lanes), each single-goroutine but mutually concurrent, so L cores can
// drive one assignment's ingest at once. lanes ≤ 0 selects GOMAXPROCS.
func NewSketcherLanes(assigner rank.Assigner, assignment, k, shards, workers, lanes int) *Sketcher {
	if shards < 1 {
		panic(fmt.Sprintf("shard: invalid shard count %d", shards))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}
	if lanes <= 0 {
		lanes = runtime.GOMAXPROCS(0)
	}
	// With one producer lane, one worker, and one schedulable core there is
	// no parallelism for the channel hop to buy — producer and worker would
	// just take turns on the same CPU — so admitted items are offered
	// synchronously instead: no goroutines, no batches, and the producer
	// sees threshold updates immediately, which makes pruning strictly more
	// effective. With more than one lane the builders have concurrent
	// producers and the worker hand-off is load-bearing, so direct mode is
	// off. The frozen sketch is identical either way.
	direct := lanes == 1 && workers == 1 && runtime.GOMAXPROCS(0) == 1
	s := &Sketcher{
		family:     assigner.Family,
		assignment: assignment,
		hashSeed:   assigner.RankHashSeed(assignment),
		shards:     uint64(shards),
		workers:    workers,
		direct:     direct,
		builders:   make([]*sketch.BottomKBuilder, shards),
	}
	// Every shard builder carries the assignment's configuration
	// fingerprint: the shard sketches are bottom-k sketches of (disjoint
	// pieces of) the same assignment under the same rank assignment, so the
	// freeze-time Merge is a verified same-fingerprint merge and the frozen
	// result is itself fingerprinted and wire-portable.
	fp := assigner.Fingerprint(assignment, k)
	for i := range s.builders {
		s.builders[i] = sketch.NewBottomKBuilderWithFingerprint(k, fp)
	}
	if !direct {
		s.chans = make([]chan *batch, workers)
		for w := range s.chans {
			s.chans[w] = make(chan *batch, 4)
		}
		s.wg.Add(workers)
		for w := 0; w < workers; w++ {
			go s.drain(s.chans[w])
		}
	}
	s.lanes = make([]*Lane, lanes)
	for i := range s.lanes {
		s.lanes[i] = newLane(s)
	}
	return s
}

// drain consumes batches, computing each item's rank from its precomputed
// unit seed and offering it to its shard's builder, then recycles the batch
// into the pool of the lane that sent it. The fixed shard→worker ownership
// means no builder is ever touched by two goroutines.
func (s *Sketcher) drain(ch <-chan *batch) {
	defer s.wg.Done()
	for b := range ch {
		for _, it := range b.items {
			s.builders[it.shard].Offer(it.key, s.family.Quantile(it.weight, it.u), it.weight)
		}
		b.items = b.items[:0]
		b.home.Put(b)
	}
}

// Lane is one producer front-end of a Sketcher: per-worker pending batches,
// a pinned batch pool, and the lane's own per-shard pruned-rank minima.
// A Lane must be driven by a single goroutine at a time, but distinct lanes
// of the same Sketcher may offer concurrently — the builders' published
// admission thresholds make pruning exact under any interleaving, and only
// admitted items (rare in steady state) cross a channel to the worker owning
// their shard.
type Lane struct {
	s         *Sketcher
	pending   []*batch  // per worker (nil in direct mode)
	prunedMin []float64 // per shard: exact min rank among items this lane pruned
	pool      sync.Pool // pinned batch pool: drained batches return here
}

func newLane(s *Sketcher) *Lane {
	l := &Lane{s: s, prunedMin: make([]float64, s.shards)}
	for i := range l.prunedMin {
		l.prunedMin[i] = math.Inf(1)
	}
	l.pool.New = func() any { return &batch{items: make([]item, 0, batchSize), home: &l.pool} }
	if !s.direct {
		l.pending = make([]*batch, s.workers)
		for w := range l.pending {
			l.pending[w] = l.pool.Get().(*batch)
		}
	}
	return l
}

// Offer presents one aggregated key with its weight in this assignment on
// this lane. Keys must be pre-aggregated (each key offered at most once
// across all lanes), exactly as for the single-stream sketcher.
// Nonpositive, NaN, and +Inf weights are never sampled and are rejected
// here, before any hashing or routing cost.
//
//cws:hotpath
func (l *Lane) Offer(key string, weight float64) {
	if !(weight > 0) || math.IsInf(weight, 1) {
		return
	}
	l.offerHashed(key, hashing.Hash64(l.s.hashSeed, key), weight)
}

// offerHashed is the post-hash fast path: route, prune against the routed
// shard's published admission threshold, and batch the survivors. h must be
// Hash64(s.hashSeed, key) — MultiLane computes it once per key and fans it
// to every assignment's lane under SharedSeed coordination.
//
//cws:hotpath
func (l *Lane) offerHashed(key string, h uint64, weight float64) {
	s := l.s
	if s.closed {
		panic("shard: Offer after Sketch")
	}
	sh := h % s.shards
	u := hashing.Unit(h)
	if s.family.RejectsSeed(u, weight, s.builders[sh].AdmissionThreshold()) {
		// Certainly not among the shard's bottom-k — but its rank may still
		// be the shard's r_{k+1}, so keep the exact minimum pruned rank.
		// The quantile is evaluated only when the one-multiply bound says
		// the running minimum might improve.
		if s.family.SeedMayRankBelow(u, weight, l.prunedMin[sh]) {
			if r := s.family.Quantile(weight, u); r < l.prunedMin[sh] {
				l.prunedMin[sh] = r
			}
		}
		return
	}
	if s.direct {
		s.builders[sh].Offer(key, s.family.Quantile(weight, u), weight)
		return
	}
	w := int(sh) % s.workers
	b := l.pending[w]
	//cws:allow-alloc pooled batch buffers are pre-sized to batchSize; append never grows past the pool's capacity in steady state
	b.items = append(b.items, item{key: key, u: u, weight: weight, shard: int32(sh)})
	if len(b.items) == batchSize {
		//cws:allow-alloc hand-off of a full batch every batchSize offers; channel capacity is sized so steady-state sends do not block
		s.chans[w] <- b
		l.pending[w] = l.pool.Get().(*batch)
	}
}

// OfferBatch presents a batch of aggregated observations on this lane,
// equivalent to calling Offer for each in order.
//
//cws:hotpath
func (l *Lane) OfferBatch(obs []Observation) {
	for _, o := range obs {
		l.Offer(o.Key, o.Weight)
	}
}

// Offer presents one aggregated key with its weight in this assignment on
// the Sketcher's default lane (lane 0). See Lane.Offer.
//
//cws:hotpath
func (s *Sketcher) Offer(key string, weight float64) {
	s.lanes[0].Offer(key, weight)
}

// offerHashed is the default lane's post-hash fast path; see
// Lane.offerHashed.
//
//cws:hotpath
func (s *Sketcher) offerHashed(key string, h uint64, weight float64) {
	s.lanes[0].offerHashed(key, h, weight)
}

// Observation is one aggregated (key, weight) stream element, as accepted
// by OfferBatch.
type Observation struct {
	Key    string
	Weight float64
}

// OfferBatch presents a batch of aggregated observations on the default
// lane, equivalent to calling Offer for each in order. Like Offer it must be
// called from a single producer goroutine at a time; callers that serialize
// producers behind a lock (the HTTP server's ingest path) use it to amortize
// the lock acquisition and call overhead over the whole batch.
//
//cws:hotpath
func (s *Sketcher) OfferBatch(obs []Observation) {
	s.lanes[0].OfferBatch(obs)
}

// Lanes returns the Sketcher's producer lanes. Each lane must be driven by
// at most one goroutine at a time; distinct lanes may be driven
// concurrently.
func (s *Sketcher) Lanes() []*Lane { return s.lanes }

// Sketch flushes the pipeline, waits for the workers, reports the pruned
// rank minima, and merges the shard sketches into the bottom-k sketch of
// the full assignment, freezing the per-shard builders across a bounded
// worker pool (per-shard freeze is embarrassingly parallel: the builders
// are independent). Unlike the single-stream builder this is terminal: the
// pipeline is shut down and further Offers panic. All producers must have
// stopped before Sketch is called. Sketch may be called again; it returns
// the same frozen result.
func (s *Sketcher) Sketch() *sketch.BottomK {
	s.close()
	parts := make([]*sketch.BottomK, len(s.builders))
	ParallelDo(len(s.builders), 0, func(i int) {
		parts[i] = s.builders[i].Sketch()
	})
	merged, err := sketch.Merge(parts...)
	if err != nil {
		// The builders were all created with one fingerprint, so a mismatch
		// here is a programming error, not bad input.
		panic(fmt.Sprintf("shard: %v", err))
	}
	return merged
}

// close flushes every lane's pending batches, closes the worker channels,
// waits for the drain goroutines to finish, and merges the per-lane,
// per-shard pruned-rank minima into the now-quiescent builders (the step
// that keeps r_{k+1} exact under producer-side pruning: NoteRejected takes a
// minimum, so the order lanes are folded in cannot matter). Idempotent.
func (s *Sketcher) close() {
	if s.closed {
		return
	}
	s.closed = true
	if !s.direct {
		for _, l := range s.lanes {
			for w, b := range l.pending {
				if len(b.items) > 0 {
					s.chans[w] <- b
				}
				l.pending[w] = nil
			}
		}
		for _, ch := range s.chans {
			close(ch)
		}
		s.wg.Wait()
	}
	for _, l := range s.lanes {
		for sh, r := range l.prunedMin {
			s.builders[sh].NoteRejected(r)
		}
	}
}

// NumShards returns the shard count.
func (s *Sketcher) NumShards() int { return int(s.shards) }

// NumWorkers returns the effective worker count (after clamping to the
// shard count).
func (s *Sketcher) NumWorkers() int { return s.workers }

// NumLanes returns the producer-lane count.
func (s *Sketcher) NumLanes() int { return len(s.lanes) }

// Assignment returns the assignment index this sketcher serves.
func (s *Sketcher) Assignment() int { return s.assignment }

// MultiSketcher fronts one Sketcher per weight assignment of a single
// sampling configuration — the server's ingest fan-in. Under SharedSeed
// coordination all sketchers share one rank hash seed (Section 4's shared
// seed u(i)), so a key offered with its whole weight vector is hashed
// exactly once and the raw 64-bit word fanned to every assignment's
// builders: the per-assignment hash×B cost collapses to ×1.
//
// The MultiSketcher's own Offer variants delegate to lane 0 of every
// sketcher and must be called from a single producer goroutine; for
// concurrent producers use Lanes, which pairs up lane j of every assignment
// into one MultiLane. Sketches is terminal.
type MultiSketcher struct {
	shared    bool
	sketchers []*Sketcher
	mlanes    []*MultiLane
}

// NewMultiSketcher creates one single-producer sharded sketcher per
// assignment index 0..assignments-1, all under the given assigner and
// per-assignment sample size k.
func NewMultiSketcher(assigner rank.Assigner, assignments, k, shards, workers int) *MultiSketcher {
	return NewMultiSketcherLanes(assigner, assignments, k, shards, workers, 1)
}

// NewMultiSketcherLanes is NewMultiSketcher with an explicit producer-lane
// count; lanes ≤ 0 selects GOMAXPROCS. Lane j of every assignment's
// sketcher is bundled into MultiLane j, so L producer goroutines can each
// drive all assignments concurrently.
func NewMultiSketcherLanes(assigner rank.Assigner, assignments, k, shards, workers, lanes int) *MultiSketcher {
	if assignments < 1 {
		panic(fmt.Sprintf("shard: need at least one assignment, got %d", assignments))
	}
	sketchers := make([]*Sketcher, assignments)
	for b := range sketchers {
		sketchers[b] = NewSketcherLanes(assigner, b, k, shards, workers, lanes)
	}
	m := &MultiSketcher{shared: assigner.Mode == rank.SharedSeed, sketchers: sketchers}
	m.mlanes = make([]*MultiLane, len(sketchers[0].lanes))
	for j := range m.mlanes {
		ml := &MultiLane{m: m, lanes: make([]*Lane, assignments)}
		for b := range sketchers {
			ml.lanes[b] = sketchers[b].lanes[j]
		}
		m.mlanes[j] = ml
	}
	return m
}

// Offer presents one aggregated key with its weight in one assignment —
// the dispersed-stream entry point (default lane).
//
//cws:hotpath
func (m *MultiSketcher) Offer(assignment int, key string, weight float64) {
	m.sketchers[assignment].Offer(key, weight)
}

// OfferBatch presents a batch of observations for one assignment (default
// lane).
//
//cws:hotpath
func (m *MultiSketcher) OfferBatch(assignment int, obs []Observation) {
	m.sketchers[assignment].OfferBatch(obs)
}

// OfferVector presents one key with its weight in every assignment at once
// (default lane); see MultiLane.OfferVector.
//
//cws:hotpath
func (m *MultiSketcher) OfferVector(key string, weights []float64) {
	m.mlanes[0].OfferVector(key, weights)
}

// MultiLane is one producer front-end of a MultiSketcher: lane j of every
// assignment's sketcher. Like Lane it is single-goroutine, but distinct
// MultiLanes may offer concurrently.
type MultiLane struct {
	m     *MultiSketcher
	lanes []*Lane // one per assignment
}

// Offer presents one aggregated key with its weight in one assignment on
// this lane.
//
//cws:hotpath
func (ml *MultiLane) Offer(assignment int, key string, weight float64) {
	ml.lanes[assignment].Offer(key, weight)
}

// OfferBatch presents a batch of observations for one assignment on this
// lane.
//
//cws:hotpath
func (ml *MultiLane) OfferBatch(assignment int, obs []Observation) {
	ml.lanes[assignment].OfferBatch(obs)
}

// OfferVector presents one key with its weight in every assignment at once
// (colocated-style input) on this lane. Under SharedSeed the key is hashed
// exactly once; under Independent each assignment needs its own hash by
// definition.
//
//cws:hotpath
func (ml *MultiLane) OfferVector(key string, weights []float64) {
	if len(weights) != len(ml.lanes) {
		panic("shard: weight vector length mismatch")
	}
	if !ml.m.shared {
		for b, w := range weights {
			ml.lanes[b].Offer(key, w)
		}
		return
	}
	hashed := false
	var h uint64
	for b, w := range weights {
		if !(w > 0) || math.IsInf(w, 1) {
			continue
		}
		if !hashed {
			// All sketchers share hashSeed under SharedSeed coordination.
			h = hashing.Hash64(ml.m.sketchers[b].hashSeed, key)
			hashed = true
		}
		ml.lanes[b].offerHashed(key, h, w)
	}
}

// Lanes returns the MultiSketcher's producer lanes; MultiLane j bundles
// lane j of every assignment's sketcher.
func (m *MultiSketcher) Lanes() []*MultiLane { return m.mlanes }

// Sketchers returns the per-assignment sketchers in assignment order (for
// callers that freeze them individually, e.g. to isolate per-assignment
// contract violations).
func (m *MultiSketcher) Sketchers() []*Sketcher { return m.sketchers }

// Sketches terminally freezes every assignment's pipeline across a bounded
// worker pool and returns the frozen sketches in assignment order. A panic
// raised by a freeze (the duplicate-key contract violation) surfaces on the
// calling goroutine exactly as it does from a serial loop; when several
// assignments panic, the lowest assignment index wins, matching the serial
// order.
func (m *MultiSketcher) Sketches() []*sketch.BottomK {
	out := make([]*sketch.BottomK, len(m.sketchers))
	ParallelDo(len(m.sketchers), 0, func(b int) {
		out[b] = m.sketchers[b].Sketch()
	})
	return out
}

// NumAssignments returns the number of assignments ingested.
func (m *MultiSketcher) NumAssignments() int { return len(m.sketchers) }

// Package shard implements sharded, concurrent ingestion of one weight
// assignment's aggregated (key, weight) stream, with a threshold-pruned,
// steady-state-zero-allocation producer fast path.
//
// The construction rests on three facts. First, per-assignment sketching is
// a one-pass, O(k)-state operation (Section 3 of the paper), so a stream can
// be split arbitrarily and each piece sketched independently. Second,
// sketch.Merge combines bottom-k sketches of *disjoint* key sets into the
// exact bottom-k sketch of their union. Third — the fast path — a bottom-k
// builder admits an item only when its rank is below the k-th smallest rank
// so far, a threshold that only ever decreases; because rank families are
// monotone with F_w(x) ≤ w·x, a producer holding the item's raw hash can
// prove "rank certainly above threshold" with one multiply and one compare
// (rank.Family.RejectsSeed) and drop the item without evaluating a quantile,
// without an allocation, and without a channel send. Once the samples fill,
// that is almost every item of the stream.
//
// A Sketcher therefore hashes each offered key once with the assignment's
// rank hash (rank.Assigner.RankHashSeed) and reuses the 64-bit word three
// ways: shard routing (h mod S), admission-bound pruning against the routed
// shard builder's published threshold (sketch.BottomKBuilder.
// AdmissionThreshold, a relaxed atomic), and — for the few admitted items —
// the unit seed from which the receiving worker computes the exact rank.
// Admitted items travel in sync.Pool-recycled batches through per-worker
// channels, so the steady state allocates nothing.
//
// Exactness is preserved bit for bit. Pruning cannot change the retained
// entries: thresholds only decrease, so an item whose rank provably exceeds
// a stale threshold is rejected by every later Offer too. Pruning could
// only lose the (k+1)-st smallest rank r_{k+1} (the frozen sketch's
// Threshold, which the estimators condition on) — so the producer tracks
// the exact minimum rank among the items it pruned per shard (lazily: the
// quantile is evaluated only when the one-multiply bound says the item
// might improve the running minimum, which happens O(log n) times) and
// feeds it to the builder at freeze via NoteRejected. The frozen sketch is
// therefore bit-identical — same entries, same r_k(I), same r_{k+1}(I) —
// to the single-stream construction, for every shard count and both
// dispersed coordination modes; the shard tests and the ingest experiment
// enforce this.
//
// Routing reuses the rank hash rather than a separate shard hash: one FNV
// pass per offer instead of two. Which shard a key lands on can therefore
// correlate with its rank, but that is harmless — the merge lemma makes the
// frozen sketch independent of how the key space was partitioned, so
// routing correlation can never affect what the coordinated samples retain.
package shard

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"coordsample/internal/hashing"
	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

// batchSize is the number of admitted items buffered per worker before a
// channel send. Batching amortizes channel synchronization over many keys;
// 256 keeps the per-batch memory small (a few KiB) while making sends rare.
// With pruning, a batch also bounds how stale the producer's view of a
// shard's threshold can get: at most 256 admissions happen between the
// flush that carries threshold-lowering items to the builder and the next.
const batchSize = 256

// item is one routed stream element that survived producer-side pruning.
// The unit seed is already computed (from the single rank hash); the
// receiving worker evaluates only the quantile.
type item struct {
	key    string
	u      float64 // unit seed Unit(Hash64(rankHashSeed, key))
	weight float64
	shard  int32
}

// batchPool recycles item batches between producers and workers; steady
// state ingestion allocates nothing. Batches are stored by pointer so
// Put/Get do not box the slice header.
var batchPool = sync.Pool{New: func() any { b := make([]item, 0, batchSize); return &b }}

// ShardOf returns the shard index of key under a seed-free partition into
// shards disjoint pieces. Retained for callers partitioning key spaces
// outside a Sketcher (distributed sites agreeing on a partition); the
// Sketcher itself routes on the rank hash to avoid a second hash pass.
func ShardOf(key string, shards int) int {
	return int(hashing.ShardHash(key) % uint64(shards))
}

// Sketcher builds the bottom-k sketch of one weight assignment by
// hash-partitioning its stream across disjoint shards sketched concurrently,
// pruning certainly-rejected items on the producer. It is a drop-in
// replacement for a single-stream sketcher: the frozen sketch is
// bit-identical to the one-builder construction.
//
// Offer must be called from a single goroutine (the producer); the
// concurrency is internal. Sketch terminates the pipeline: it flushes
// pending batches, waits for the workers, and merges — Offer must not be
// called afterwards.
type Sketcher struct {
	family     rank.Family
	assignment int
	hashSeed   uint64 // rank.Assigner.RankHashSeed(assignment)
	shards     uint64
	workers    int
	direct     bool                     // no worker goroutines: producer offers admitted items synchronously
	builders   []*sketch.BottomKBuilder // one per shard; builders[s] is owned by worker s % workers
	chans      []chan *[]item           // one per worker (nil in direct mode)
	pending    []*[]item                // producer-side batch per worker (nil in direct mode)
	prunedMin  []float64                // per shard: exact min rank among producer-pruned items
	wg         sync.WaitGroup
	closed     bool
}

// NewSketcher creates a sharded sketcher for assignment index assignment
// with per-assignment sample size k. shards must be ≥ 1; workers ≤ 0 selects
// GOMAXPROCS, and the worker count is capped at the shard count (shard s is
// owned by worker s mod workers, so extra workers would idle). The assigner
// must be a dispersed mode (SharedSeed or Independent);
// IndependentDifferences requires colocated weights and panics.
func NewSketcher(assigner rank.Assigner, assignment, k, shards, workers int) *Sketcher {
	if shards < 1 {
		panic(fmt.Sprintf("shard: invalid shard count %d", shards))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}
	// With one worker and one schedulable core there is no parallelism for
	// the channel hop to buy — producer and worker would just take turns on
	// the same CPU — so admitted items are offered synchronously instead:
	// no goroutines, no batches, and the producer sees threshold updates
	// immediately, which makes pruning strictly more effective. The frozen
	// sketch is identical either way.
	direct := workers == 1 && runtime.GOMAXPROCS(0) == 1
	s := &Sketcher{
		family:     assigner.Family,
		assignment: assignment,
		hashSeed:   assigner.RankHashSeed(assignment),
		shards:     uint64(shards),
		workers:    workers,
		direct:     direct,
		builders:   make([]*sketch.BottomKBuilder, shards),
		prunedMin:  make([]float64, shards),
	}
	// Every shard builder carries the assignment's configuration
	// fingerprint: the shard sketches are bottom-k sketches of (disjoint
	// pieces of) the same assignment under the same rank assignment, so the
	// freeze-time Merge is a verified same-fingerprint merge and the frozen
	// result is itself fingerprinted and wire-portable.
	fp := assigner.Fingerprint(assignment, k)
	for i := range s.builders {
		s.builders[i] = sketch.NewBottomKBuilderWithFingerprint(k, fp)
		s.prunedMin[i] = math.Inf(1)
	}
	if direct {
		return s
	}
	s.chans = make([]chan *[]item, workers)
	s.pending = make([]*[]item, workers)
	for w := range s.chans {
		s.chans[w] = make(chan *[]item, 4)
		s.pending[w] = batchPool.Get().(*[]item)
	}
	s.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go s.drain(s.chans[w])
	}
	return s
}

// drain consumes batches, computing each item's rank from its precomputed
// unit seed and offering it to its shard's builder, then recycles the batch.
// The fixed shard→worker ownership means no builder is ever touched by two
// goroutines.
func (s *Sketcher) drain(ch <-chan *[]item) {
	defer s.wg.Done()
	for bp := range ch {
		for _, it := range *bp {
			s.builders[it.shard].Offer(it.key, s.family.Quantile(it.weight, it.u), it.weight)
		}
		*bp = (*bp)[:0]
		batchPool.Put(bp)
	}
}

// Offer presents one aggregated key with its weight in this assignment.
// Keys must be pre-aggregated (each key offered at most once), exactly as
// for the single-stream sketcher. Nonpositive, NaN, and +Inf weights are
// never sampled and are rejected here, before any hashing or routing cost.
//
//cws:hotpath
func (s *Sketcher) Offer(key string, weight float64) {
	if !(weight > 0) || math.IsInf(weight, 1) {
		return
	}
	s.offerHashed(key, hashing.Hash64(s.hashSeed, key), weight)
}

// offerHashed is the post-hash fast path: route, prune against the routed
// shard's published admission threshold, and batch the survivors. h must be
// Hash64(s.hashSeed, key) — MultiSketcher computes it once per key and fans
// it to every assignment's sketcher under SharedSeed coordination.
//
//cws:hotpath
func (s *Sketcher) offerHashed(key string, h uint64, weight float64) {
	if s.closed {
		panic("shard: Offer after Sketch")
	}
	sh := h % s.shards
	u := hashing.Unit(h)
	if s.family.RejectsSeed(u, weight, s.builders[sh].AdmissionThreshold()) {
		// Certainly not among the shard's bottom-k — but its rank may still
		// be the shard's r_{k+1}, so keep the exact minimum pruned rank.
		// The quantile is evaluated only when the one-multiply bound says
		// the running minimum might improve.
		if s.family.SeedMayRankBelow(u, weight, s.prunedMin[sh]) {
			if r := s.family.Quantile(weight, u); r < s.prunedMin[sh] {
				s.prunedMin[sh] = r
			}
		}
		return
	}
	if s.direct {
		s.builders[sh].Offer(key, s.family.Quantile(weight, u), weight)
		return
	}
	w := int(sh) % s.workers
	p := s.pending[w]
	//cws:allow-alloc pooled batch buffers are pre-sized to batchSize; append never grows past the pool's capacity in steady state
	*p = append(*p, item{key: key, u: u, weight: weight, shard: int32(sh)})
	if len(*p) == batchSize {
		//cws:allow-alloc hand-off of a full batch every batchSize offers; channel capacity is sized so steady-state sends do not block
		s.chans[w] <- p
		s.pending[w] = batchPool.Get().(*[]item)
	}
}

// Observation is one aggregated (key, weight) stream element, as accepted
// by OfferBatch.
type Observation struct {
	Key    string
	Weight float64
}

// OfferBatch presents a batch of aggregated observations, equivalent to
// calling Offer for each in order. Like Offer it must be called from a
// single producer goroutine at a time; callers that serialize producers
// behind a lock (the HTTP server's ingest path) use it to amortize the
// lock acquisition and call overhead over the whole batch.
//
//cws:hotpath
func (s *Sketcher) OfferBatch(obs []Observation) {
	for _, o := range obs {
		s.Offer(o.Key, o.Weight)
	}
}

// Sketch flushes the pipeline, waits for the workers, reports the pruned
// rank minima, and merges the shard sketches into the bottom-k sketch of
// the full assignment. Unlike the single-stream builder this is terminal:
// the pipeline is shut down and further Offers panic. Sketch may be called
// again; it returns the same frozen result.
func (s *Sketcher) Sketch() *sketch.BottomK {
	s.close()
	parts := make([]*sketch.BottomK, len(s.builders))
	for i, b := range s.builders {
		parts[i] = b.Sketch()
	}
	merged, err := sketch.Merge(parts...)
	if err != nil {
		// The builders were all created with one fingerprint, so a mismatch
		// here is a programming error, not bad input.
		panic(fmt.Sprintf("shard: %v", err))
	}
	return merged
}

// close flushes pending batches, closes the worker channels, waits for the
// drain goroutines to finish, and merges the per-shard pruned-rank minima
// into the now-quiescent builders (the step that keeps r_{k+1} exact under
// producer-side pruning). Idempotent.
func (s *Sketcher) close() {
	if s.closed {
		return
	}
	s.closed = true
	if !s.direct {
		for w, bp := range s.pending {
			if len(*bp) > 0 {
				s.chans[w] <- bp
			} else {
				batchPool.Put(bp)
			}
			s.pending[w] = nil
			close(s.chans[w])
		}
		s.wg.Wait()
	}
	for sh, r := range s.prunedMin {
		s.builders[sh].NoteRejected(r)
	}
}

// NumShards returns the shard count.
func (s *Sketcher) NumShards() int { return int(s.shards) }

// NumWorkers returns the effective worker count (after clamping to the
// shard count).
func (s *Sketcher) NumWorkers() int { return s.workers }

// Assignment returns the assignment index this sketcher serves.
func (s *Sketcher) Assignment() int { return s.assignment }

// MultiSketcher fronts one Sketcher per weight assignment of a single
// sampling configuration — the server's ingest fan-in. Under SharedSeed
// coordination all sketchers share one rank hash seed (Section 4's shared
// seed u(i)), so a key offered with its whole weight vector is hashed
// exactly once and the raw 64-bit word fanned to every assignment's
// builders: the per-assignment hash×B cost collapses to ×1.
//
// Like Sketcher, all Offer variants must be called from a single producer
// goroutine; Sketches is terminal.
type MultiSketcher struct {
	shared    bool
	sketchers []*Sketcher
}

// NewMultiSketcher creates one sharded sketcher per assignment index
// 0..assignments-1, all under the given assigner and per-assignment sample
// size k.
func NewMultiSketcher(assigner rank.Assigner, assignments, k, shards, workers int) *MultiSketcher {
	if assignments < 1 {
		panic(fmt.Sprintf("shard: need at least one assignment, got %d", assignments))
	}
	sketchers := make([]*Sketcher, assignments)
	for b := range sketchers {
		sketchers[b] = NewSketcher(assigner, b, k, shards, workers)
	}
	return &MultiSketcher{shared: assigner.Mode == rank.SharedSeed, sketchers: sketchers}
}

// Offer presents one aggregated key with its weight in one assignment —
// the dispersed-stream entry point.
//
//cws:hotpath
func (m *MultiSketcher) Offer(assignment int, key string, weight float64) {
	m.sketchers[assignment].Offer(key, weight)
}

// OfferBatch presents a batch of observations for one assignment.
//
//cws:hotpath
func (m *MultiSketcher) OfferBatch(assignment int, obs []Observation) {
	m.sketchers[assignment].OfferBatch(obs)
}

// OfferVector presents one key with its weight in every assignment at once
// (colocated-style input). Under SharedSeed the key is hashed exactly once;
// under Independent each assignment needs its own hash by definition.
//
//cws:hotpath
func (m *MultiSketcher) OfferVector(key string, weights []float64) {
	if len(weights) != len(m.sketchers) {
		panic("shard: weight vector length mismatch")
	}
	if !m.shared {
		for b, w := range weights {
			m.sketchers[b].Offer(key, w)
		}
		return
	}
	hashed := false
	var h uint64
	for b, w := range weights {
		if !(w > 0) || math.IsInf(w, 1) {
			continue
		}
		if !hashed {
			// All sketchers share hashSeed under SharedSeed coordination.
			h = hashing.Hash64(m.sketchers[b].hashSeed, key)
			hashed = true
		}
		m.sketchers[b].offerHashed(key, h, w)
	}
}

// Sketchers returns the per-assignment sketchers in assignment order (for
// callers that freeze them individually, e.g. to isolate per-assignment
// contract violations).
func (m *MultiSketcher) Sketchers() []*Sketcher { return m.sketchers }

// Sketches terminally freezes every assignment's pipeline and returns the
// frozen sketches in assignment order.
func (m *MultiSketcher) Sketches() []*sketch.BottomK {
	out := make([]*sketch.BottomK, len(m.sketchers))
	for b, s := range m.sketchers {
		out[b] = s.Sketch()
	}
	return out
}

// NumAssignments returns the number of assignments ingested.
func (m *MultiSketcher) NumAssignments() int { return len(m.sketchers) }

// Package shard implements sharded, concurrent ingestion of one weight
// assignment's aggregated (key, weight) stream.
//
// The construction rests on two facts. First, per-assignment sketching is a
// one-pass, O(k)-state operation (Section 3 of the paper), so a stream can be
// split arbitrarily and each piece sketched independently. Second,
// sketch.Merge combines bottom-k sketches of *disjoint* key sets into the
// exact bottom-k sketch of their union. A Sketcher therefore hash-partitions
// keys across S disjoint shards, runs one BottomKBuilder per shard behind
// batched channels drained by worker goroutines, and freezes via sketch.Merge
// into a sketch that is bit-identical — same entries, same r_k(I), same
// r_{k+1}(I) — to what a single-stream AssignmentSketcher would have built.
//
// The shard router uses hashing.ShardHash, which takes no user seed: routing
// is independent of the rank hash, so coordination across assignments is
// untouched by how the stream happens to be partitioned. Ranks themselves are
// computed inside the workers, moving the hash-and-quantile work off the
// producer's goroutine — that is where the throughput win comes from.
package shard

import (
	"fmt"
	"runtime"
	"sync"

	"coordsample/internal/hashing"
	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

// batchSize is the number of items buffered per worker before a channel
// send. Batching amortizes channel synchronization over many keys; 256 keeps
// the per-batch memory small (a few KiB) while making sends rare.
const batchSize = 256

// item is one routed stream element. The rank is computed by the receiving
// worker, not the producer.
type item struct {
	key    string
	weight float64
	shard  int32
}

// ShardOf returns the shard index of key under a partition into shards
// disjoint pieces. The assignment is deterministic and seed-free, so every
// site partitions identically and independently of the rank hash.
func ShardOf(key string, shards int) int {
	return int(hashing.ShardHash(key) % uint64(shards))
}

// Sketcher builds the bottom-k sketch of one weight assignment by
// hash-partitioning its stream across disjoint shards sketched concurrently.
// It is a drop-in replacement for a single-stream sketcher: the frozen
// sketch is bit-identical to the one-builder construction.
//
// Offer must be called from a single goroutine (the producer); the
// concurrency is internal. Sketch terminates the pipeline: it flushes
// pending batches, waits for the workers, and merges — Offer must not be
// called afterwards.
type Sketcher struct {
	assigner   rank.Assigner
	assignment int
	shards     int
	workers    int
	builders   []*sketch.BottomKBuilder // one per shard; builders[s] is owned by worker s % workers
	chans      []chan []item            // one per worker
	pending    [][]item                 // producer-side batch per worker
	wg         sync.WaitGroup
	closed     bool
}

// NewSketcher creates a sharded sketcher for assignment index assignment
// with per-assignment sample size k. shards must be ≥ 1; workers ≤ 0 selects
// GOMAXPROCS, and the worker count is capped at the shard count (shard s is
// owned by worker s mod workers, so extra workers would idle).
func NewSketcher(assigner rank.Assigner, assignment, k, shards, workers int) *Sketcher {
	if shards < 1 {
		panic(fmt.Sprintf("shard: invalid shard count %d", shards))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}
	s := &Sketcher{
		assigner:   assigner,
		assignment: assignment,
		shards:     shards,
		workers:    workers,
		builders:   make([]*sketch.BottomKBuilder, shards),
		chans:      make([]chan []item, workers),
		pending:    make([][]item, workers),
	}
	// Every shard builder carries the assignment's configuration
	// fingerprint: the shard sketches are bottom-k sketches of (disjoint
	// pieces of) the same assignment under the same rank assignment, so the
	// freeze-time Merge is a verified same-fingerprint merge and the frozen
	// result is itself fingerprinted and wire-portable.
	fp := assigner.Fingerprint(assignment, k)
	for i := range s.builders {
		s.builders[i] = sketch.NewBottomKBuilderWithFingerprint(k, fp)
	}
	for w := range s.chans {
		s.chans[w] = make(chan []item, 4)
		s.pending[w] = make([]item, 0, batchSize)
	}
	s.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go s.drain(s.chans[w])
	}
	return s
}

// drain consumes batches, computing each item's rank and offering it to its
// shard's builder. The fixed shard→worker ownership means no builder is ever
// touched by two goroutines.
func (s *Sketcher) drain(ch <-chan []item) {
	defer s.wg.Done()
	for batch := range ch {
		for _, it := range batch {
			r := s.assigner.Rank(it.key, s.assignment, it.weight)
			s.builders[it.shard].Offer(it.key, r, it.weight)
		}
	}
}

// Offer presents one aggregated key with its weight in this assignment.
// Keys must be pre-aggregated (each key offered at most once), exactly as
// for the single-stream sketcher.
func (s *Sketcher) Offer(key string, weight float64) {
	if s.closed {
		panic("shard: Offer after Sketch")
	}
	if weight <= 0 {
		return // never sampled; skip before paying for routing
	}
	sh := ShardOf(key, s.shards)
	w := sh % s.workers
	s.pending[w] = append(s.pending[w], item{key: key, weight: weight, shard: int32(sh)})
	if len(s.pending[w]) == batchSize {
		s.chans[w] <- s.pending[w]
		s.pending[w] = make([]item, 0, batchSize)
	}
}

// Observation is one aggregated (key, weight) stream element, as accepted
// by OfferBatch.
type Observation struct {
	Key    string
	Weight float64
}

// OfferBatch presents a batch of aggregated observations, equivalent to
// calling Offer for each in order. Like Offer it must be called from a
// single producer goroutine at a time; callers that serialize producers
// behind a lock (the HTTP server's ingest path) use it to amortize the
// lock acquisition and call overhead over the whole batch.
func (s *Sketcher) OfferBatch(obs []Observation) {
	for _, o := range obs {
		s.Offer(o.Key, o.Weight)
	}
}

// Sketch flushes the pipeline, waits for the workers, and merges the shard
// sketches into the bottom-k sketch of the full assignment. Unlike the
// single-stream builder this is terminal: the pipeline is shut down and
// further Offers panic. Sketch may be called again; it returns the same
// frozen result.
func (s *Sketcher) Sketch() *sketch.BottomK {
	s.close()
	parts := make([]*sketch.BottomK, s.shards)
	for i, b := range s.builders {
		parts[i] = b.Sketch()
	}
	merged, err := sketch.Merge(parts...)
	if err != nil {
		// The builders were all created with one fingerprint, so a mismatch
		// here is a programming error, not bad input.
		panic(fmt.Sprintf("shard: %v", err))
	}
	return merged
}

// close flushes pending batches, closes the worker channels, and waits for
// the drain goroutines to finish. Idempotent.
func (s *Sketcher) close() {
	if s.closed {
		return
	}
	s.closed = true
	for w, batch := range s.pending {
		if len(batch) > 0 {
			s.chans[w] <- batch
		}
		s.pending[w] = nil
		close(s.chans[w])
	}
	s.wg.Wait()
}

// NumShards returns the shard count.
func (s *Sketcher) NumShards() int { return s.shards }

// NumWorkers returns the effective worker count (after clamping to the
// shard count).
func (s *Sketcher) NumWorkers() int { return s.workers }

// Assignment returns the assignment index this sketcher serves.
func (s *Sketcher) Assignment() int { return s.assignment }

package hashing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHash64Deterministic(t *testing.T) {
	if Hash64(1, "destIP=10.0.0.1") != Hash64(1, "destIP=10.0.0.1") {
		t.Fatal("Hash64 is not deterministic")
	}
	if Hash64(1, "a") == Hash64(2, "a") {
		t.Fatal("seed does not influence Hash64")
	}
	if Hash64(1, "a") == Hash64(1, "b") {
		t.Fatal("key does not influence Hash64")
	}
}

func TestHash64EmptyKey(t *testing.T) {
	// Empty keys are legal and must still depend on the seed.
	if Hash64(7, "") == Hash64(8, "") {
		t.Fatal("empty-key hashes should differ across seeds")
	}
}

func TestMix64Bijective(t *testing.T) {
	// splitmix64's finalizer is a bijection; sampled inputs must not collide.
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		m := Mix64(i)
		if prev, ok := seen[m]; ok {
			t.Fatalf("Mix64 collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[m] = i
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	const trials = 256
	total := 0
	for i := 0; i < trials; i++ {
		x := Mix64(uint64(i) * 0x1234567)
		bit := uint(i % 64)
		diff := Mix64(x) ^ Mix64(x^(1<<bit))
		total += popcount(diff)
	}
	mean := float64(total) / trials
	if mean < 24 || mean > 40 {
		t.Fatalf("avalanche mean bit flips = %.2f, want ~32", mean)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestUnitOpenInterval(t *testing.T) {
	cases := []uint64{0, 1, math.MaxUint64, 1 << 63, 0xdeadbeef}
	for _, c := range cases {
		u := Unit(c)
		if !(u > 0 && u < 1) {
			t.Fatalf("Unit(%#x) = %v, want in (0,1)", c, u)
		}
	}
}

func TestUnitQuickProperty(t *testing.T) {
	f := func(x uint64) bool { return IsUnit(Unit(x)) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnitUniformity(t *testing.T) {
	// Chi-squared-ish bucket test over hashed sequential keys: structured
	// input must still look uniform after mixing.
	const n = 200000
	const buckets = 20
	var counts [buckets]int
	for i := 0; i < n; i++ {
		u := KeySeed(42, "key-"+itoa(i))
		counts[int(u*buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %f", b, c, want)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func TestKeySeedSharedAcrossAssignments(t *testing.T) {
	// The coordination property: KeySeed has no assignment dimension, so two
	// dispersed processing sites calling it for the same key agree exactly.
	a := KeySeed(99, "flow:10.1.2.3->10.4.5.6")
	b := KeySeed(99, "flow:10.1.2.3->10.4.5.6")
	if a != b {
		t.Fatal("shared seeds differ across call sites")
	}
}

func TestAssignmentSeedIndependence(t *testing.T) {
	// Seeds for distinct assignments must differ (with overwhelming
	// probability); identical values would silently coordinate samples.
	key := "movie-1042"
	s0 := AssignmentSeed(7, 0, key)
	s1 := AssignmentSeed(7, 1, key)
	s2 := AssignmentSeed(7, 2, key)
	if s0 == s1 || s1 == s2 || s0 == s2 {
		t.Fatalf("assignment seeds collide: %v %v %v", s0, s1, s2)
	}
}

func TestAssignmentSeedCorrelation(t *testing.T) {
	// Empirical correlation between seeds of assignments 0 and 1 across many
	// keys must be near zero.
	const n = 50000
	var sx, sy, sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		key := "k" + itoa(i)
		x := AssignmentSeed(3, 0, key)
		y := AssignmentSeed(3, 1, key)
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	num := sxy/n - (sx/n)*(sy/n)
	den := math.Sqrt((sxx/n - (sx/n)*(sx/n)) * (syy/n - (sy/n)*(sy/n)))
	if r := num / den; math.Abs(r) > 0.02 {
		t.Fatalf("assignment seeds correlated: r = %v", r)
	}
}

func TestDeriveDistinct(t *testing.T) {
	seen := make(map[uint64]int)
	for i := 0; i < 4096; i++ {
		d := Derive(123, i)
		if prev, ok := seen[d]; ok {
			t.Fatalf("Derive collision between indexes %d and %d", i, prev)
		}
		seen[d] = i
	}
}

func TestClamp01(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-0.5, 0}, {0, 0}, {0.25, 0.25}, {1, 1}, {1.5, 1},
	}
	for _, c := range cases {
		if got := Clamp01(c.in); got != c.want {
			t.Fatalf("Clamp01(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestIsUnit(t *testing.T) {
	if IsUnit(0) || IsUnit(1) || IsUnit(math.NaN()) || IsUnit(-0.1) {
		t.Fatal("IsUnit accepted an out-of-domain value")
	}
	if !IsUnit(0.5) || !IsUnit(1e-300) {
		t.Fatal("IsUnit rejected an in-domain value")
	}
}

func BenchmarkHash64Short(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Hash64(1, "10.0.0.1")
	}
}

func BenchmarkHash64FourTuple(b *testing.B) {
	key := "10.12.13.14:443->192.168.55.66:51234"
	b.SetBytes(int64(len(key)))
	for i := 0; i < b.N; i++ {
		Hash64(1, key)
	}
}

func BenchmarkKeySeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		KeySeed(1, "10.0.0.1")
	}
}

// Package hashing provides the deterministic hash machinery that underlies
// sample coordination.
//
// The paper (Section 4, "Computing coordinated sketches") obtains coordination
// across dispersed weight assignments by using the same hash function for a
// key in every assignment: the hash value plays the role of the shared seed
// u(i) ~ U(0,1). Independent rank assignments are obtained by additionally
// mixing a per-assignment salt into the hash. This package supplies both,
// built on a splitmix64-style finalizer over an FNV-1a core so that "random
// looking" behaviour holds even for highly structured keys (sequential IPs,
// ticker symbols), matching the common practice the paper appeals to.
package hashing

import "math"

// fnvOffset and fnvPrime are the 64-bit FNV-1a parameters.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// fnv1a runs the 64-bit FNV-1a byte loop over key from the given basis —
// the shared core of Hash64 and ShardHash, which differ only in how the
// basis is derived.
func fnv1a(basis uint64, key string) uint64 {
	h := basis
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	return h
}

// Hash64 returns a 64-bit hash of key seeded with seed. Identical (seed, key)
// pairs always produce identical values, across processes and platforms.
//
//cws:hotpath
func Hash64(seed uint64, key string) uint64 {
	return Mix64(fnv1a(fnvOffset^Mix64(seed), key))
}

// Mix64 is the splitmix64 finalizer: a bijective avalanche mix of a 64-bit
// word. Every input bit affects every output bit with probability ~1/2.
//
//cws:hotpath
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Unit maps a 64-bit word to the open interval (0, 1). The top 52 bits become
// the mantissa and half a step is added, so the extremes are 2^-53 and
// 1 − 2^-53, both exactly representable: 0 and 1 are unreachable even after
// rounding. Open-interval values keep rank quantile functions finite and
// positive for positive weights.
//
//cws:hotpath
func Unit(x uint64) float64 {
	return (float64(x>>12) + 0.5) * (1.0 / (1 << 52))
}

// KeySeed returns the shared seed u(i) in (0,1) for key under seed. Keys
// processed in different locations or time periods (dispersed assignments)
// obtain the same u(i), which is what coordinates their samples.
func KeySeed(seed uint64, key string) float64 {
	return Unit(Hash64(seed, key))
}

// AssignmentHashSeed derives the per-assignment hash seed behind
// AssignmentSeed: Hash64(AssignmentHashSeed(seed, b), key) is the raw 64-bit
// hash whose Unit mapping AssignmentSeed returns. Exposed so ingest fast
// paths can hash a key once per assignment and reuse the word for shard
// routing, threshold pruning, and the rank seed.
func AssignmentHashSeed(seed uint64, assignment int) uint64 {
	return Mix64(seed ^ (uint64(assignment) + 0x9e3779b97f4a7c15))
}

// AssignmentSeed returns a seed in (0,1) for key that is independent across
// assignment indexes: mixing the assignment into the salt decorrelates the
// per-assignment hashes, yielding independent rank assignments.
func AssignmentSeed(seed uint64, assignment int, key string) float64 {
	return Unit(Hash64(AssignmentHashSeed(seed, assignment), key))
}

// shardSalt decorrelates ShardHash from Hash64: the rank hash mixes the
// user's seed into the FNV offset basis, so salting the shard hash with a
// fixed constant keeps the two hash streams distinct for every realistic
// seed choice.
const shardSalt uint64 = 0x9e3779b97f4a7c15

// ShardHash returns a 64-bit hash of key for partitioning a key space across
// shards. It deliberately takes no user seed: shard routing must not depend
// on the rank hash, so that how a stream is partitioned can never correlate
// with which keys the coordinated samples retain.
//
//cws:hotpath
func ShardHash(key string) uint64 {
	return Mix64(fnv1a(fnvOffset^shardSalt, key))
}

// Derive produces a child seed from a parent seed and a stream index, for
// components that need several independent hash functions (e.g. the k
// independent rank assignments of a k-mins sketch).
func Derive(seed uint64, index int) uint64 {
	return Mix64(seed + (uint64(index)+1)*0x9e3779b97f4a7c15)
}

// UnitFromIndex is a convenience for Monte-Carlo style draws: the i-th value
// of a deterministic low-discrepancy-free uniform stream under seed.
func UnitFromIndex(seed uint64, index int) float64 {
	return Unit(Mix64(Derive(seed, index)))
}

// Clamp01 restricts v to the closed unit interval. Estimator code uses it to
// guard inclusion probabilities against floating-point drift.
func Clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// IsUnit reports whether v lies in the open interval (0,1) and is a real
// number, the domain required of seeds.
func IsUnit(v float64) bool {
	return v > 0 && v < 1 && !math.IsNaN(v)
}

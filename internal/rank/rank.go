// Package rank implements the random rank assignments that define all sample
// distributions in the paper (Section 3 and Section 4).
//
// A rank assignment maps each key i with weight w(i) to a rank value r(i)
// drawn from a monotone family of distributions f_w: larger weights
// stochastically yield smaller ranks. Samples are then defined order-wise
// (bottom-k keeps the k smallest ranks; Poisson-τ keeps ranks below τ).
//
// Two families have the special properties the paper relies on:
//
//   - EXP ranks, F_w(x) = 1 − e^{−wx}: the minimum rank of a set is EXP
//     distributed with the sum of the weights, which powers k-mins sketches
//     and the independent-differences construction.
//   - IPPS ranks, F_w(x) = min{1, wx}: Poisson sampling becomes IPPS
//     (inclusion probability proportional to size) and bottom-k becomes
//     priority sampling.
//
// For multiple weight assignments (Section 4) this package supplies the three
// joint distributions of rank vectors studied by the paper: shared-seed
// consistent ranks, independent ranks, and independent-differences consistent
// ranks (EXP only).
package rank

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"coordsample/internal/hashing"
)

// Family identifies a monotone family of rank distributions f_w (w ≥ 0).
type Family int

const (
	// IPPS ranks: r = u/w with u ~ U(0,1); F_w(x) = min{1, wx}. Bottom-k
	// sampling with IPPS ranks is priority sampling (PRI); Poisson sampling
	// is inclusion-probability-proportional-to-size.
	IPPS Family = iota
	// EXP ranks: r ~ Exponential(w); F_w(x) = 1 − e^{−wx}. Bottom-k sampling
	// with EXP ranks is weighted sampling without replacement.
	EXP
)

// String returns the conventional name of the family.
func (f Family) String() string {
	switch f {
	case IPPS:
		return "IPPS"
	case EXP:
		return "EXP"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// CDF evaluates F_w(x), the probability that a rank drawn for weight w is at
// most x. Zero weight yields rank +Inf, so F_0 ≡ 0. Negative x yields 0.
func (f Family) CDF(w, x float64) float64 {
	if w <= 0 || x <= 0 || math.IsNaN(x) {
		return 0
	}
	if math.IsInf(x, 1) {
		return 1
	}
	switch f {
	case IPPS:
		return math.Min(1, w*x)
	case EXP:
		// -expm1(-wx) = 1 - e^{-wx} without cancellation for small wx.
		return -math.Expm1(-w * x)
	default:
		panic("rank: unknown family")
	}
}

// Quantile evaluates F_w^{-1}(u) for u in (0,1): the rank value whose CDF is
// u. Zero weight maps every seed to +Inf (the key can never be sampled).
//
//cws:hotpath
func (f Family) Quantile(w, u float64) float64 {
	if w <= 0 {
		return math.Inf(1)
	}
	switch f {
	case IPPS:
		return u / w
	case EXP:
		// -log1p(-u)/w = -ln(1-u)/w, stable for u near 0.
		return -math.Log1p(-u) / w
	default:
		panic("rank: unknown family")
	}
}

// The admission-bound primitive.
//
// Bottom-k ingestion rejects almost every offered item once the sample has
// filled: an item is admitted only when its rank is below the k-th smallest
// rank so far. Both implemented families satisfy F_w(x) ≤ w·x (IPPS with
// equality below saturation; EXP because 1−e^{−wx} ≤ wx), and ranks are
// strictly increasing in the seed wherever F_w is below 1. Therefore
//
//	u > w·T  ⇒  u > F_w(T)  ⇒  Quantile(w, u) > T,
//
// which turns "certainly rejected against threshold T" into one multiply
// and one compare on the raw unit seed — no quantile evaluation (no log for
// EXP, no divide for IPPS) for the overwhelming majority of the stream. The
// comparison is strict so that rank == T ties (which bottom-k breaks by
// key, possibly in the item's favour) are never pruned. For IPPS the test
// is exact below saturation; for EXP it is conservative — some items with
// F_w(T) < u ≤ wT pass through to the builder, which rejects them exactly.

// RejectsSeed reports whether an item with unit seed u and weight w > 0
// certainly has rank strictly greater than threshold: a true return
// guarantees Quantile(w, u) > threshold, so a bottom-k builder whose
// admission threshold was at most threshold at any point after the item was
// drawn is guaranteed to reject it. threshold = +Inf (sample not yet full)
// never rejects.
//
//cws:hotpath
func (f Family) RejectsSeed(u, w, threshold float64) bool {
	return u > w*threshold
}

// SeedMayRankBelow reports whether an item with unit seed u and weight
// w > 0 could have rank strictly below bound: a false return guarantees
// Quantile(w, u) ≥ bound. Producers tracking the exact minimum rank among
// pruned items (the candidate r_{k+1} they owe the builder via
// NoteRejected) use it to skip the quantile evaluation for pruned items
// that cannot improve the running minimum — the running minimum of a
// sequence of random ranks improves only O(log n) times.
//
//cws:hotpath
func (f Family) SeedMayRankBelow(u, w, bound float64) bool {
	return u < w*bound
}

// Coordination identifies the joint distribution of the per-assignment rank
// vectors of a key (Section 4: "Independent or consistent ranks").
type Coordination int

const (
	// SharedSeed draws one uniform seed u(i) per key and sets
	// r^(b)(i) = F^{-1}_{w^(b)(i)}(u(i)) for every assignment b. It is the
	// unique distribution minimizing the expected number of distinct keys in
	// the union of the sketches (Theorem 4.2) and works for dispersed data
	// because each assignment needs only the key's hash.
	SharedSeed Coordination = iota
	// Independent draws an independent seed per (key, assignment), yielding
	// the product distribution of independent single-assignment rank
	// assignments. This is the baseline the paper improves upon.
	Independent
	// IndependentDifferences is the EXP-only consistent construction: sort
	// the weight vector ascending and set r^(b_j) = min_{a ≤ j} d_a where
	// d_a ~ Exponential(w^(b_a) − w^(b_{a−1})) independently. It generalizes
	// min-wise hashing and makes the k-mins collision probability equal the
	// weighted Jaccard similarity (Theorem 4.1). Requires colocated weights.
	IndependentDifferences
)

// String returns the paper's name for the coordination mode.
func (c Coordination) String() string {
	switch c {
	case SharedSeed:
		return "shared-seed"
	case Independent:
		return "independent"
	case IndependentDifferences:
		return "independent-differences"
	default:
		return fmt.Sprintf("Coordination(%d)", int(c))
	}
}

// Consistent reports whether the mode produces consistent ranks
// (w^(b1)(i) ≥ w^(b2)(i) ⇒ r^(b1)(i) ≤ r^(b2)(i)).
func (c Coordination) Consistent() bool {
	return c == SharedSeed || c == IndependentDifferences
}

// Assigner deterministically realizes a random rank assignment for (I, W):
// it maps (key, assignment, weight) triples to rank values. All randomness
// derives from Seed via hashing, so the same Assigner reproduces the same
// assignment anywhere — which is exactly how dispersed sites coordinate.
type Assigner struct {
	Family Family
	Mode   Coordination
	Seed   uint64
}

// FingerprintVersion is the version of the fingerprint derivation. It is
// folded into every fingerprint, so any future change to the digest (or to
// the rank semantics it certifies) makes old and new fingerprints mismatch
// rather than falsely agree.
const FingerprintVersion = 1

// Fingerprint returns a stable 64-bit digest of everything that determines
// which sample a sketch construction draws: the rank family, the
// coordination mode, the hash seed, the assignment index, and the sample
// size parameter k — bound to FingerprintVersion. Two sketches whose
// fingerprints agree were built under interchangeable configurations and
// may be merged; a mismatch means their rank values are incomparable and
// any combination would silently corrupt every downstream estimate.
//
// For Poisson sketches pass k = 0: the threshold τ is data-dependent and
// travels with the sketch itself, not with the configuration.
//
// The digest is pure integer arithmetic over the inputs (no map iteration,
// no floating point), so it is reproducible across processes, platforms,
// and runs — which is what lets physically dispersed sites verify, with
// zero coordination, that their shipped sketches are combinable. It is
// never 0; zero is reserved to mean "no fingerprint" (legacy construction
// paths).
func (a Assigner) Fingerprint(assignment, k int) uint64 {
	h := hashing.Mix64(uint64(FingerprintVersion))
	h = hashing.Mix64(h ^ (uint64(a.Family) + 0x9e3779b97f4a7c15))
	h = hashing.Mix64(h ^ (uint64(a.Mode) + 0x9e3779b97f4a7c15))
	h = hashing.Mix64(h ^ a.Seed)
	h = hashing.Mix64(h ^ (uint64(assignment) + 0x9e3779b97f4a7c15))
	h = hashing.Mix64(h ^ (uint64(k) + 0x9e3779b97f4a7c15))
	if h == 0 {
		h = FingerprintVersion
	}
	return h
}

// Rank returns r^(b)(i) for a key with weight w in assignment b.
//
// It supports the dispersed model: the computation depends only on (key, b,
// w), never on the key's weights elsewhere. IndependentDifferences cannot be
// computed this way (the paper notes it requires range-summable hashing and
// is unsuited to dispersed data), so Rank panics for that mode; use
// RankVector with colocated weights instead.
func (a Assigner) Rank(key string, assignment int, w float64) float64 {
	if w <= 0 {
		return math.Inf(1)
	}
	switch a.Mode {
	case SharedSeed:
		return a.Family.Quantile(w, hashing.KeySeed(a.Seed, key))
	case Independent:
		return a.Family.Quantile(w, hashing.AssignmentSeed(a.Seed, assignment, key))
	case IndependentDifferences:
		panic("rank: independent-differences ranks require colocated weights; use RankVector")
	default:
		panic("rank: unknown coordination mode")
	}
}

// Seed01 returns the seed u^(b)(i) in (0,1) that Rank would feed to the
// quantile function, for the "known seeds" l-set estimators. For SharedSeed
// the value is independent of the assignment. IndependentDifferences has no
// per-assignment seed representation and panics.
func (a Assigner) Seed01(key string, assignment int) float64 {
	switch a.Mode {
	case SharedSeed:
		return hashing.KeySeed(a.Seed, key)
	case Independent:
		return hashing.AssignmentSeed(a.Seed, assignment, key)
	case IndependentDifferences:
		panic("rank: independent-differences ranks have no per-assignment seeds")
	default:
		panic("rank: unknown coordination mode")
	}
}

// RankHashSeed returns the hash seed s such that
//
//	hashing.Unit(hashing.Hash64(s, key)) == Seed01(key, assignment)
//
// — the raw Hash64→unit pipeline behind Rank, exposed so ingest fast paths
// hash a key exactly once and reuse the 64-bit word for shard routing,
// admission-bound pruning, and (via Family.Quantile of its Unit mapping)
// the exact rank of admitted items. For SharedSeed the result is the
// configured seed itself, independent of the assignment: one hash drives
// every assignment, which is Section 4's shared seed u(i) made literal.
// IndependentDifferences has no per-assignment seed and panics.
func (a Assigner) RankHashSeed(assignment int) uint64 {
	switch a.Mode {
	case SharedSeed:
		return a.Seed
	case Independent:
		return hashing.AssignmentHashSeed(a.Seed, assignment)
	case IndependentDifferences:
		panic("rank: independent-differences ranks have no per-assignment seeds")
	default:
		panic("rank: unknown coordination mode")
	}
}

// RankVector returns the full rank vector r^(W)(i) for a key with colocated
// weight vector weights. The result has one rank per assignment, +Inf where
// the weight is zero.
func (a Assigner) RankVector(key string, weights []float64) []float64 {
	ranks := make([]float64, len(weights))
	a.RankVectorInto(ranks, key, weights)
	return ranks
}

// RankVectorInto fills dst (which must have len(weights)) with the rank
// vector, avoiding allocation in hot summarization loops.
func (a Assigner) RankVectorInto(dst []float64, key string, weights []float64) {
	if len(dst) != len(weights) {
		panic("rank: dst/weights length mismatch")
	}
	switch a.Mode {
	case SharedSeed:
		u := hashing.KeySeed(a.Seed, key)
		for b, w := range weights {
			dst[b] = a.Family.Quantile(w, u)
		}
	case Independent:
		for b, w := range weights {
			dst[b] = a.Family.Quantile(w, hashing.AssignmentSeed(a.Seed, b, key))
		}
	case IndependentDifferences:
		a.independentDifferencesInto(dst, key, weights)
	default:
		panic("rank: unknown coordination mode")
	}
}

// independentDifferencesInto implements the Section 4 construction. Let
// w_(1) ≤ … ≤ w_(h) be the sorted weights; draw independent
// d_j ~ Exponential(w_(j) − w_(j−1)) (with w_(0) = 0, and Exponential(0)
// taken as +Inf, i.e. F_0 ≡ 0) and set the rank at sorted position j to
// min_{a ≤ j} d_a. Telescoping rates make each marginal Exponential(w_(j)),
// and the running minimum makes the vector consistent by construction.
func (a Assigner) independentDifferencesInto(dst []float64, key string, weights []float64) {
	if a.Family != EXP {
		panic("rank: independent-differences ranks are defined only for EXP ranks")
	}
	h := len(weights)
	order := make([]int, h)
	for j := range order {
		order[j] = j
	}
	slices.SortFunc(order, func(x, y int) int { return cmp.Compare(weights[x], weights[y]) })

	prev := 0.0
	running := math.Inf(1)
	for j, b := range order {
		w := weights[b]
		delta := w - prev
		prev = w
		if delta > 0 {
			u := hashing.Unit(hashing.Hash64(hashing.Derive(a.Seed, j), key))
			d := -math.Log1p(-u) / delta
			if d < running {
				running = d
			}
		}
		if w <= 0 {
			dst[b] = math.Inf(1)
		} else {
			dst[b] = running
		}
	}
}

// MinRank returns r^(minR)(i) = min_{b∈R} r^(b)(i) over the given rank
// vector restricted to assignments R (nil R means all assignments). By
// Lemma 4.1, for consistent ranks this is a valid rank for the weight
// w^(maxR)(i), which is what makes union sketches work (Lemma 4.2).
func MinRank(ranks []float64, R []int) float64 {
	m := math.Inf(1)
	if R == nil {
		for _, r := range ranks {
			if r < m {
				m = r
			}
		}
		return m
	}
	for _, b := range R {
		if ranks[b] < m {
			m = ranks[b]
		}
	}
	return m
}

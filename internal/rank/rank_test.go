package rank

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"coordsample/internal/hashing"
)

func TestFamilyString(t *testing.T) {
	if IPPS.String() != "IPPS" || EXP.String() != "EXP" {
		t.Fatal("unexpected family names")
	}
	if Family(99).String() == "" {
		t.Fatal("unknown family should still format")
	}
}

func TestCDFZeroWeight(t *testing.T) {
	for _, f := range []Family{IPPS, EXP} {
		if got := f.CDF(0, 10); got != 0 {
			t.Fatalf("%v: F_0(10) = %v, want 0", f, got)
		}
		if got := f.Quantile(0, 0.5); !math.IsInf(got, 1) {
			t.Fatalf("%v: Q_0(0.5) = %v, want +Inf", f, got)
		}
	}
}

func TestCDFInfinity(t *testing.T) {
	for _, f := range []Family{IPPS, EXP} {
		if got := f.CDF(2.5, math.Inf(1)); got != 1 {
			t.Fatalf("%v: F_w(+Inf) = %v, want 1", f, got)
		}
		if got := f.CDF(2.5, -1); got != 0 {
			t.Fatalf("%v: F_w(-1) = %v, want 0", f, got)
		}
	}
}

func TestIPPSKnownValues(t *testing.T) {
	// From Figure 1: p(i) = min{1, w(i)τ} with τ = 1/82 and w = 20 gives
	// 20/82 ≈ 0.24.
	got := IPPS.CDF(20, 1.0/82)
	if math.Abs(got-20.0/82) > 1e-12 {
		t.Fatalf("IPPS CDF = %v, want %v", got, 20.0/82)
	}
	// Saturation at 1.
	if got := IPPS.CDF(20, 1); got != 1 {
		t.Fatalf("IPPS CDF should saturate at 1, got %v", got)
	}
}

func TestEXPKnownValues(t *testing.T) {
	if got := EXP.CDF(1, math.Log(2)); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("EXP median mismatch: %v", got)
	}
	if got := EXP.Quantile(1, 0.5); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("EXP quantile mismatch: %v", got)
	}
}

func TestRoundTripQuantileCDF(t *testing.T) {
	f := func(wRaw, uRaw uint32) bool {
		w := 1e-3 + float64(wRaw%100000)/100 // weights in [1e-3, 1000)
		u := (float64(uRaw%99998) + 1) / 100000
		for _, fam := range []Family{IPPS, EXP} {
			x := fam.Quantile(w, u)
			if math.Abs(fam.CDF(w, x)-u) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFMonotoneInWeight(t *testing.T) {
	// The defining property of a monotone family: w1 ≥ w2 ⇒ F_w1(x) ≥ F_w2(x).
	f := func(aRaw, bRaw, xRaw uint32) bool {
		w1 := float64(aRaw%10000) / 10
		w2 := float64(bRaw%10000) / 10
		if w1 < w2 {
			w1, w2 = w2, w1
		}
		x := float64(xRaw%10000) / 1000
		for _, fam := range []Family{IPPS, EXP} {
			if fam.CDF(w1, x) < fam.CDF(w2, x)-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSharedSeedFormulas(t *testing.T) {
	// Shared-seed assignment for IPPS ranks is u/w; for EXP, −ln(1−u)/w
	// (Section 4). Verify against the Seed01 value.
	a := Assigner{Family: IPPS, Mode: SharedSeed, Seed: 5}
	u := a.Seed01("key", 0)
	if got := a.Rank("key", 3, 4.0); math.Abs(got-u/4.0) > 1e-15 {
		t.Fatalf("IPPS shared-seed rank = %v, want %v", got, u/4.0)
	}
	e := Assigner{Family: EXP, Mode: SharedSeed, Seed: 5}
	want := -math.Log1p(-u) / 4.0
	if got := e.Rank("key", 3, 4.0); math.Abs(got-want) > 1e-15 {
		t.Fatalf("EXP shared-seed rank = %v, want %v", got, want)
	}
}

func TestSharedSeedSameAcrossAssignments(t *testing.T) {
	a := Assigner{Family: IPPS, Mode: SharedSeed, Seed: 17}
	if a.Seed01("x", 0) != a.Seed01("x", 7) {
		t.Fatal("shared seed must not depend on assignment")
	}
	// Equal weights in different assignments must give equal ranks.
	if a.Rank("x", 0, 3) != a.Rank("x", 9, 3) {
		t.Fatal("equal weights should yield equal shared-seed ranks")
	}
}

func TestIndependentSeedsDiffer(t *testing.T) {
	a := Assigner{Family: IPPS, Mode: Independent, Seed: 17}
	if a.Seed01("x", 0) == a.Seed01("x", 1) {
		t.Fatal("independent mode should give distinct per-assignment seeds")
	}
}

func TestRankVectorMatchesRank(t *testing.T) {
	// Dispersed per-assignment processing (Rank) must agree exactly with
	// colocated processing (RankVector) — that is the coordination claim.
	weights := []float64{15, 0, 10, 5, 10, 10}
	for _, mode := range []Coordination{SharedSeed, Independent} {
		for _, fam := range []Family{IPPS, EXP} {
			a := Assigner{Family: fam, Mode: mode, Seed: 3}
			vec := a.RankVector("key-A", weights)
			for b, w := range weights {
				if got := a.Rank("key-A", b, w); got != vec[b] {
					t.Fatalf("%v/%v: Rank(b=%d) = %v, RankVector = %v", fam, mode, b, got, vec[b])
				}
			}
		}
	}
}

func TestConsistencyProperty(t *testing.T) {
	// Consistent ranks: w^(b1) ≥ w^(b2) ⇒ r^(b1) ≤ r^(b2), with equality of
	// ranks when weights are equal.
	check := func(a Assigner, key string, weights []float64) {
		t.Helper()
		ranks := a.RankVector(key, weights)
		for i := range weights {
			for j := range weights {
				if weights[i] > weights[j] && ranks[i] > ranks[j] {
					t.Fatalf("%v/%v: inconsistent ranks: w=%v r=%v", a.Family, a.Mode, weights, ranks)
				}
				if weights[i] == weights[j] && weights[i] > 0 && ranks[i] != ranks[j] {
					t.Fatalf("%v/%v: equal weights, unequal ranks: w=%v r=%v", a.Family, a.Mode, weights, ranks)
				}
			}
		}
	}
	rng := rand.New(rand.NewSource(1))
	assigners := []Assigner{
		{Family: IPPS, Mode: SharedSeed, Seed: 11},
		{Family: EXP, Mode: SharedSeed, Seed: 11},
		{Family: EXP, Mode: IndependentDifferences, Seed: 11},
	}
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(6)
		weights := make([]float64, n)
		for i := range weights {
			if rng.Float64() < 0.2 {
				weights[i] = 0
			} else if rng.Float64() < 0.3 {
				weights[i] = float64(1 + rng.Intn(4)) // force ties
			} else {
				weights[i] = rng.Float64() * 100
			}
		}
		key := "k" + string(rune('a'+trial%26))
		for _, a := range assigners {
			check(a, key, weights)
		}
	}
}

func TestIndependentDifferencesMarginal(t *testing.T) {
	// Each marginal r^(b)(i) must be Exponential(w^(b)(i)): check the mean
	// over many keys for a fixed weight vector.
	weights := []float64{2, 5, 9}
	a := Assigner{Family: EXP, Mode: IndependentDifferences, Seed: 23}
	const n = 60000
	sums := make([]float64, len(weights))
	for i := 0; i < n; i++ {
		ranks := a.RankVector("key-"+string(rune(i%26+'a'))+itoa(i), weights)
		for b, r := range ranks {
			sums[b] += r
		}
	}
	for b, w := range weights {
		mean := sums[b] / n
		want := 1 / w
		if math.Abs(mean-want) > 0.05*want {
			t.Fatalf("assignment %d: mean rank %v, want ≈ %v", b, mean, want)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func TestIndependentDifferencesZeroWeights(t *testing.T) {
	a := Assigner{Family: EXP, Mode: IndependentDifferences, Seed: 7}
	ranks := a.RankVector("z", []float64{0, 3, 0})
	if !math.IsInf(ranks[0], 1) || !math.IsInf(ranks[2], 1) {
		t.Fatalf("zero weights must get +Inf ranks, got %v", ranks)
	}
	if math.IsInf(ranks[1], 1) || ranks[1] <= 0 {
		t.Fatalf("positive weight must get a finite positive rank, got %v", ranks[1])
	}
}

func TestIndependentDifferencesDispersedPanics(t *testing.T) {
	a := Assigner{Family: EXP, Mode: IndependentDifferences, Seed: 7}
	assertPanics(t, func() { a.Rank("x", 0, 1) })
	assertPanics(t, func() { a.Seed01("x", 0) })
}

func TestIndependentDifferencesRequiresEXP(t *testing.T) {
	a := Assigner{Family: IPPS, Mode: IndependentDifferences, Seed: 7}
	assertPanics(t, func() { a.RankVector("x", []float64{1, 2}) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestMinRank(t *testing.T) {
	ranks := []float64{0.5, 0.1, math.Inf(1), 0.3}
	if got := MinRank(ranks, nil); got != 0.1 {
		t.Fatalf("MinRank(all) = %v", got)
	}
	if got := MinRank(ranks, []int{0, 2, 3}); got != 0.3 {
		t.Fatalf("MinRank(subset) = %v", got)
	}
	if got := MinRank([]float64{math.Inf(1)}, nil); !math.IsInf(got, 1) {
		t.Fatalf("MinRank of all-Inf = %v", got)
	}
}

func TestEXPMinimumProperty(t *testing.T) {
	// The minimum of independent EXP ranks over a set J is Exponential with
	// parameter w(J) — the property behind Lemma 4.1. Statistical check of
	// the mean of min-rank over many hash draws.
	weights := []float64{1, 2, 3, 4}
	total := 10.0
	const n = 60000
	sum := 0.0
	a := Assigner{Family: EXP, Mode: Independent, Seed: 99}
	for t := 0; t < n; t++ {
		m := math.Inf(1)
		for b, w := range weights {
			r := a.Rank("trial-"+itoa(t), b, w)
			if r < m {
				m = r
			}
		}
		sum += m
	}
	mean := sum / n
	if want := 1 / total; math.Abs(mean-want) > 0.05*want {
		t.Fatalf("min-rank mean %v, want ≈ %v", mean, want)
	}
}

func TestRankVectorIntoLengthMismatch(t *testing.T) {
	a := Assigner{Family: IPPS, Mode: SharedSeed, Seed: 1}
	assertPanics(t, func() { a.RankVectorInto(make([]float64, 2), "x", []float64{1, 2, 3}) })
}

func TestCoordinationStrings(t *testing.T) {
	if SharedSeed.String() != "shared-seed" ||
		Independent.String() != "independent" ||
		IndependentDifferences.String() != "independent-differences" {
		t.Fatal("unexpected coordination names")
	}
	if !SharedSeed.Consistent() || Independent.Consistent() || !IndependentDifferences.Consistent() {
		t.Fatal("Consistent() wrong")
	}
}

func BenchmarkSharedSeedRankVector(b *testing.B) {
	a := Assigner{Family: IPPS, Mode: SharedSeed, Seed: 1}
	weights := []float64{10, 20, 30, 0, 50, 60, 70, 80}
	dst := make([]float64, len(weights))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.RankVectorInto(dst, "10.1.2.3:443", weights)
	}
}

func BenchmarkIndependentDifferencesRankVector(b *testing.B) {
	a := Assigner{Family: EXP, Mode: IndependentDifferences, Seed: 1}
	weights := []float64{10, 20, 30, 0, 50, 60, 70, 80}
	dst := make([]float64, len(weights))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.RankVectorInto(dst, "10.1.2.3:443", weights)
	}
}

func TestFingerprintDistinguishesEveryField(t *testing.T) {
	base := Assigner{Family: IPPS, Mode: SharedSeed, Seed: 7}
	ref := base.Fingerprint(2, 64)
	if ref == 0 {
		t.Fatal("fingerprint must never be 0 (reserved for unfingerprinted sketches)")
	}
	if base.Fingerprint(2, 64) != ref {
		t.Fatal("fingerprint is not deterministic")
	}
	variants := map[string]uint64{
		"family":     Assigner{Family: EXP, Mode: SharedSeed, Seed: 7}.Fingerprint(2, 64),
		"mode":       Assigner{Family: IPPS, Mode: Independent, Seed: 7}.Fingerprint(2, 64),
		"seed":       Assigner{Family: IPPS, Mode: SharedSeed, Seed: 8}.Fingerprint(2, 64),
		"assignment": base.Fingerprint(3, 64),
		"k":          base.Fingerprint(2, 65),
		"poisson":    base.Fingerprint(2, 0),
	}
	seen := map[uint64]string{ref: "base"}
	for field, fp := range variants {
		if fp == ref {
			t.Errorf("changing %s did not change the fingerprint", field)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("fingerprints of %s and %s collide", field, prev)
		}
		seen[fp] = field
	}
}

// TestFingerprintStableAcrossReleases pins a golden value: the fingerprint
// is a wire-format artifact (shipped in sketch files and compared across
// processes), so accidentally changing the derivation must fail a test, not
// silently invalidate every previously written sketch file.
func TestFingerprintStableAcrossReleases(t *testing.T) {
	got := Assigner{Family: IPPS, Mode: SharedSeed, Seed: 1}.Fingerprint(0, 1024)
	const want = uint64(0x0f67e236504cb57d)
	if got != want {
		t.Fatalf("fingerprint derivation changed: got %#016x, want %#016x; "+
			"if intentional, bump FingerprintVersion and update this golden value", got, want)
	}
}

// TestAdmissionBoundSound: the one-multiply admission bound is sound for
// both families — whenever RejectsSeed reports true the exact rank really
// exceeds the threshold, and whenever SeedMayRankBelow reports false the
// exact rank really is at least the bound. (Both follow from F_w(x) ≤ w·x;
// a new family violating that inequality must not reuse these bounds.)
func TestAdmissionBoundSound(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for _, f := range []Family{IPPS, EXP} {
		rejected, below := 0, 0
		for i := 0; i < 200000; i++ {
			u := rng.Float64()
			if u == 0 {
				continue
			}
			w := math.Exp(rng.NormFloat64() * 3)
			T := math.Exp(rng.NormFloat64() * 3)
			r := f.Quantile(w, u)
			if f.RejectsSeed(u, w, T) {
				rejected++
				if !(r > T) {
					t.Fatalf("%v: RejectsSeed(u=%v,w=%v,T=%v) but rank %v <= T", f, u, w, T, r)
				}
			}
			if !f.SeedMayRankBelow(u, w, T) {
				below++
				if r < T {
					t.Fatalf("%v: !SeedMayRankBelow(u=%v,w=%v,T=%v) but rank %v < T", f, u, w, T, r)
				}
			}
			// +Inf threshold never rejects; +Inf bound always may-rank-below.
			if f.RejectsSeed(u, w, math.Inf(1)) {
				t.Fatalf("%v: RejectsSeed with +Inf threshold", f)
			}
			if !f.SeedMayRankBelow(u, w, math.Inf(1)) {
				t.Fatalf("%v: !SeedMayRankBelow with +Inf bound", f)
			}
		}
		if rejected == 0 || below == 0 {
			t.Fatalf("%v: degenerate sweep (rejected=%d, below=%d)", f, rejected, below)
		}
	}
}

// TestAdmissionBoundExactForIPPS: for IPPS ranks below saturation the bound
// is not just sound but exact — every item whose rank strictly exceeds the
// threshold is pruned (no false pass-throughs), which is what makes the
// fast path reject ~all of the stream.
func TestAdmissionBoundExactForIPPS(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for i := 0; i < 100000; i++ {
		u := rng.Float64()
		if u == 0 {
			continue
		}
		w := math.Exp(rng.NormFloat64() * 3)
		T := math.Exp(rng.NormFloat64() * 3)
		if r := IPPS.Quantile(w, u); r > T && !IPPS.RejectsSeed(u, w, T) {
			t.Fatalf("IPPS: rank %v > T=%v not rejected (u=%v, w=%v)", r, T, u, w)
		}
	}
}

// TestRankHashSeedMatchesSeed01: the raw Hash64→unit pipeline exposed to
// producers reproduces Seed01 (and hence Rank) bit for bit, for both
// dispersed modes; SharedSeed's hash seed is assignment-independent.
func TestRankHashSeedMatchesSeed01(t *testing.T) {
	keys := []string{"a", "flow-1", "10.0.0.1", "GOOG", ""}
	for _, a := range []Assigner{
		{Family: IPPS, Mode: SharedSeed, Seed: 7},
		{Family: EXP, Mode: Independent, Seed: 99},
	} {
		for b := 0; b < 3; b++ {
			for _, key := range keys {
				u := hashing.Unit(hashing.Hash64(a.RankHashSeed(b), key))
				if got := a.Seed01(key, b); got != u {
					t.Fatalf("%v: Seed01(%q,%d)=%v, raw pipeline %v", a, key, b, got, u)
				}
				w := 3.25
				if got, want := a.Family.Quantile(w, u), a.Rank(key, b, w); got != want {
					t.Fatalf("%v: rank via raw hash %v, want %v", a, got, want)
				}
			}
		}
	}
	shared := Assigner{Family: IPPS, Mode: SharedSeed, Seed: 7}
	if shared.RankHashSeed(0) != shared.RankHashSeed(5) {
		t.Fatal("SharedSeed rank hash seed must be assignment-independent")
	}
	indep := Assigner{Family: IPPS, Mode: Independent, Seed: 7}
	if indep.RankHashSeed(0) == indep.RankHashSeed(1) {
		t.Fatal("Independent rank hash seeds must differ across assignments")
	}
}

package cluster

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"coordsample/internal/core"
	"coordsample/internal/faults"
	"coordsample/internal/rank"
	"coordsample/internal/server"
	"coordsample/internal/shard"
)

var testSample = core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 11, K: 32}

const testAssignments = 2

// testOffers is a deterministic two-assignment weighted stream with key
// churn, spread across the whole partition.
func testOffers(n int, seed int64) []server.Offer {
	rng := rand.New(rand.NewSource(seed))
	var offers []server.Offer
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("host-%05d", i)
		base := math.Exp(rng.NormFloat64() * 2)
		if rng.Float64() < 0.9 {
			offers = append(offers, server.Offer{Assignment: 0, Key: key, Weight: base * (0.5 + rng.Float64())})
		}
		if rng.Float64() < 0.9 {
			offers = append(offers, server.Offer{Assignment: 1, Key: key, Weight: base * (0.5 + rng.Float64())})
		}
	}
	return offers
}

// testCluster is K in-process peers plus a Router over them, all served
// over real HTTP round-trips.
type testCluster struct {
	router   *Router
	routerTS *httptest.Server
	servers  []*server.Server
	peerTS   []*httptest.Server
	addrs    []string
}

// newTestCluster builds a k-peer cluster. cfg tweaks the router's failure
// policy (Peers/Self/Sample/Assignments are filled in); peerFaults[i]
// injects serving-side faults into peer i.
func newTestCluster(t *testing.T, k int, cfg Config, peerFaults map[int]*faults.Set) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for i := 0; i < k; i++ {
		i := i
		s, err := server.New(server.Config{
			Sample:      testSample,
			Assignments: testAssignments,
			Shards:      2,
			Lanes:       1,
			Faults:      peerFaults[i],
			OwnsKey:     func(key string) bool { return shard.ShardOf(key, k) == i },
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		ts := httptest.NewServer(s)
		t.Cleanup(ts.Close)
		tc.servers = append(tc.servers, s)
		tc.peerTS = append(tc.peerTS, ts)
		tc.addrs = append(tc.addrs, strings.TrimPrefix(ts.URL, "http://"))
	}
	cfg.Peers = tc.addrs
	cfg.Self = -1
	cfg.Sample = testSample
	cfg.Assignments = testAssignments
	if cfg.PeerTimeout == 0 {
		cfg.PeerTimeout = 10 * time.Second
	}
	if cfg.RetryBase == 0 {
		cfg.RetryBase = time.Millisecond
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = -1 // hedging off unless a test turns it on
	}
	cfg.Seed = 1
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	tc.router = r
	tc.routerTS = httptest.NewServer(r)
	t.Cleanup(tc.routerTS.Close)
	return tc
}

// ingest routes each offer to its owning peer — the partition clients are
// expected to honor — and posts the per-peer batches.
func (tc *testCluster) ingest(t *testing.T, offers []server.Offer) {
	t.Helper()
	batches := make([][]server.Offer, len(tc.addrs))
	for _, o := range offers {
		i := shard.ShardOf(o.Key, len(tc.addrs))
		batches[i] = append(batches[i], o)
	}
	for i, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		postJSON(t, tc.peerTS[i].URL+"/offer", map[string]any{"offers": batch})
	}
}

// getJSON fetches url and decodes the JSON body, returning the status too.
func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: decoding body: %v", url, err)
	}
	return resp.StatusCode, out
}

func postJSON(t *testing.T, url string, body any) map[string]any {
	t.Helper()
	var buf strings.Builder
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d: %v", url, resp.StatusCode, out)
	}
	return out
}

// clusterFreeze drives POST /cluster/freeze and returns (status, body).
func (tc *testCluster) clusterFreeze(t *testing.T) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(tc.routerTS.URL+"/cluster/freeze", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// referenceEstimates runs the same offers through ONE node owning every
// key — the no-cluster baseline — and returns its /query answers for the
// given parameter strings.
func referenceEstimates(t *testing.T, offers []server.Offer, params []string) map[string]float64 {
	t.Helper()
	s, err := server.New(server.Config{Sample: testSample, Assignments: testAssignments, Shards: 2, Lanes: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	postJSON(t, ts.URL+"/offer", map[string]any{"offers": offers})
	postJSON(t, ts.URL+"/freeze", nil)
	out := make(map[string]float64, len(params))
	for _, p := range params {
		code, body := getJSON(t, ts.URL+"/query?"+p)
		if code != http.StatusOK {
			t.Fatalf("reference query %q: status %d: %v", p, code, body)
		}
		out[p] = body["estimate"].(float64)
	}
	return out
}

// queryParams is the agg vocabulary every exactness test sweeps.
var queryParams = []string{
	"agg=sum&b=0",
	"agg=sum&b=1",
	"agg=max",
	"agg=min",
	"agg=L1",
	"agg=lth&l=2",
	"agg=jaccard",
	"agg=sum&b=0&prefix=host-000",
	"agg=sum&b=0&est=discarded",
}

// TestClusterQueryExactMatchesSingleNode: the headline exactness claim.
// Keys partitioned across 3 peers by the routing hash form disjoint key
// sets, so the router's merged answer is bit-identical to one node
// ingesting the whole stream — for every aggregate, predicate, and
// estimator in the query vocabulary.
func TestClusterQueryExactMatchesSingleNode(t *testing.T) {
	offers := testOffers(400, 7)
	tc := newTestCluster(t, 3, Config{}, nil)
	tc.ingest(t, offers)

	code, fz := tc.clusterFreeze(t)
	if code != http.StatusOK || fz["published"] != true {
		t.Fatalf("cluster freeze: status %d, body %v", code, fz)
	}
	epochs := fz["epochs"].(map[string]any)
	if len(epochs) != 3 {
		t.Fatalf("freeze published %d peer epochs, want 3: %v", len(epochs), epochs)
	}
	for addr, e := range epochs {
		if e.(float64) != 1 {
			t.Fatalf("peer %s froze epoch %v, want 1", addr, e)
		}
	}

	want := referenceEstimates(t, offers, queryParams)
	for _, p := range queryParams {
		code, body := getJSON(t, tc.routerTS.URL+"/cluster/query?"+p)
		if code != http.StatusOK {
			t.Fatalf("cluster query %q: status %d: %v", p, code, body)
		}
		if got := body["estimate"].(float64); got != want[p] {
			t.Errorf("query %q: cluster %v != single-node %v (exactness broken)", p, got, want[p])
		}
		if body["degraded"] != false {
			t.Errorf("query %q reported degraded with all peers up", p)
		}
		if cov := body["coverage"].(float64); cov != 1.0 {
			t.Errorf("query %q coverage %v, want 1", p, cov)
		}
		if body["reached"].(float64) != 3 {
			t.Errorf("query %q reached %v peers, want 3", p, body["reached"])
		}
	}
}

// TestTransientFetchFaultRetried: a single injected fetch failure is
// absorbed by the retry budget — the answer stays exact and non-degraded.
func TestTransientFetchFaultRetried(t *testing.T) {
	offers := testOffers(200, 8)
	for _, action := range []string{"err", "drop"} {
		fs := faults.MustParse(FaultFetch + ":" + action + ",on=1")
		tc := newTestCluster(t, 3, Config{Faults: fs}, nil)
		tc.ingest(t, offers)
		tc.clusterFreeze(t)

		want := referenceEstimates(t, offers, []string{"agg=sum&b=0"})
		code, body := getJSON(t, tc.routerTS.URL+"/cluster/query?agg=sum&b=0")
		if code != http.StatusOK {
			t.Fatalf("%s: query status %d: %v", action, code, body)
		}
		if body["degraded"] != false {
			t.Errorf("%s: one transient fault degraded the answer: %v", action, body["peers"])
		}
		if got := body["estimate"].(float64); got != want["agg=sum&b=0"] {
			t.Errorf("%s: estimate %v != reference %v", action, got, want["agg=sum&b=0"])
		}
		// 3 first attempts + exactly 1 retry of the faulted one.
		if hits := fs.Hits(FaultFetch); hits != 4 {
			t.Errorf("%s: fetch point hit %d times, want 4 (3 scatters + 1 retry)", action, hits)
		}
	}
}

// TestTornPeerResponseCaughtAndRetried: a torn /sketches body from a peer
// must fail segment validation as a typed decode error — never pass as a
// short sketch set — and the retry must recover exactness.
func TestTornPeerResponseCaughtAndRetried(t *testing.T) {
	offers := testOffers(200, 9)
	peerFS := faults.MustParse(server.FaultSketches + ":torn,on=1")
	tc := newTestCluster(t, 3, Config{}, map[int]*faults.Set{1: peerFS})
	tc.ingest(t, offers)
	tc.clusterFreeze(t)

	want := referenceEstimates(t, offers, []string{"agg=sum&b=0"})
	code, body := getJSON(t, tc.routerTS.URL+"/cluster/query?agg=sum&b=0")
	if code != http.StatusOK {
		t.Fatalf("query status %d: %v", code, body)
	}
	if body["degraded"] != false {
		t.Errorf("torn response degraded the answer: %v", body["peers"])
	}
	if got := body["estimate"].(float64); got != want["agg=sum&b=0"] {
		t.Errorf("estimate %v != reference %v after torn-response retry", got, want["agg=sum&b=0"])
	}
	if hits := peerFS.Hits(server.FaultSketches); hits < 2 {
		t.Errorf("peer /sketches served %d times, want ≥ 2 (torn + retried)", hits)
	}
}

// TestHedgedRequestCutsStragglerLatency: with hedging on, one straggling
// attempt (injected 3s latency) does not hold the whole scatter hostage —
// the hedged duplicate answers and the query completes fast and exact.
func TestHedgedRequestCutsStragglerLatency(t *testing.T) {
	offers := testOffers(200, 10)
	fs := faults.MustParse(FaultFetch + ":latency=3s,on=1")
	tc := newTestCluster(t, 3, Config{Faults: fs, HedgeAfter: 20 * time.Millisecond, Retries: -1}, nil)
	tc.ingest(t, offers)
	tc.clusterFreeze(t)

	want := referenceEstimates(t, offers, []string{"agg=sum&b=0"})
	start := time.Now()
	code, body := getJSON(t, tc.routerTS.URL+"/cluster/query?agg=sum&b=0")
	elapsed := time.Since(start)
	if code != http.StatusOK {
		t.Fatalf("query status %d: %v", code, body)
	}
	if body["degraded"] != false {
		t.Errorf("hedged query degraded: %v", body["peers"])
	}
	if got := body["estimate"].(float64); got != want["agg=sum&b=0"] {
		t.Errorf("estimate %v != reference %v", got, want["agg=sum&b=0"])
	}
	if elapsed >= 2*time.Second {
		t.Errorf("query took %v despite hedging; the straggler was waited out", elapsed)
	}
	if hits := fs.Hits(FaultFetch); hits != 4 {
		t.Errorf("fetch point hit %d times, want 4 (3 scatters + 1 hedge)", hits)
	}
}

// TestDeadPeerDegradesGracefully: with one peer gone past its retry
// budget the router answers from the survivors — degraded=true, coverage
// 2/3, and the estimate is the EXACT answer over the surviving
// partitions' keys (the reference being a single node holding only those
// keys). A follow-up query skips the peer entirely (it is down).
func TestDeadPeerDegradesGracefully(t *testing.T) {
	offers := testOffers(300, 11)
	tc := newTestCluster(t, 3, Config{Retries: -1, DownAfter: 1, PeerTimeout: 2 * time.Second}, nil)
	tc.ingest(t, offers)
	tc.clusterFreeze(t)
	tc.peerTS[2].Close() // SIGKILL stand-in: the peer vanishes mid-serving

	var survivors []server.Offer
	for _, o := range offers {
		if shard.ShardOf(o.Key, 3) != 2 {
			survivors = append(survivors, o)
		}
	}
	want := referenceEstimates(t, survivors, []string{"agg=sum&b=0"})

	code, body := getJSON(t, tc.routerTS.URL+"/cluster/query?agg=sum&b=0")
	if code != http.StatusOK {
		t.Fatalf("degraded query status %d, want 200 (graceful): %v", code, body)
	}
	if body["degraded"] != true {
		t.Fatalf("dead peer not reported: %v", body)
	}
	if cov := body["coverage"].(float64); math.Abs(cov-2.0/3.0) > 1e-12 {
		t.Errorf("coverage %v, want 2/3", cov)
	}
	if body["reached"].(float64) != 2 || body["total"].(float64) != 3 {
		t.Errorf("reached/total %v/%v, want 2/3", body["reached"], body["total"])
	}
	if got := body["estimate"].(float64); got != want["agg=sum&b=0"] {
		t.Errorf("degraded estimate %v != survivors-only reference %v (must be the exact subpopulation answer)", got, want["agg=sum&b=0"])
	}

	// DownAfter=1: the failure marked the peer down, so the next query
	// skips it instead of burning its deadline again.
	if st := tc.router.PeerStates()[tc.addrs[2]]; st != Down {
		t.Fatalf("dead peer state %v, want down", st)
	}
	_, body = getJSON(t, tc.routerTS.URL+"/cluster/query?agg=sum&b=0")
	found := false
	for _, pr := range body["peers"].([]any) {
		m := pr.(map[string]any)
		if m["addr"] == tc.addrs[2] {
			found = true
			if !strings.Contains(m["error"].(string), "skipped") {
				t.Errorf("down peer was queried again: %v", m)
			}
		}
	}
	if !found {
		t.Fatalf("down peer missing from the per-peer report: %v", body["peers"])
	}
}

// TestNoPeerReachableIs503: graceful degradation ends where coverage
// does — zero reachable peers is an error, not an empty answer.
func TestNoPeerReachableIs503(t *testing.T) {
	tc := newTestCluster(t, 2, Config{Retries: -1, PeerTimeout: 2 * time.Second}, nil)
	tc.ingest(t, testOffers(50, 12))
	tc.clusterFreeze(t)
	tc.peerTS[0].Close()
	tc.peerTS[1].Close()

	code, body := getJSON(t, tc.routerTS.URL+"/cluster/query?agg=sum&b=0")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("zero-coverage query status %d, want 503: %v", code, body)
	}
	if !strings.Contains(body["error"].(string), "no cluster peer reachable") {
		t.Errorf("error %q does not name the condition", body["error"])
	}
}

// TestTwoPhaseFreezeDegradedOnPeerFailure: when one peer's phase-one
// freeze fails, phase two publishes a degraded report (502) naming it —
// and the next freeze (fault exhausted) publishes cleanly, with the
// recovered peer simply one epoch behind.
func TestTwoPhaseFreezeDegradedOnPeerFailure(t *testing.T) {
	offers := testOffers(200, 13)
	fs := faults.MustParse(FaultFreeze + ":err,on=2")
	tc := newTestCluster(t, 3, Config{Faults: fs}, nil)
	tc.ingest(t, offers)

	code, body := tc.clusterFreeze(t)
	if code != http.StatusBadGateway {
		t.Fatalf("partial freeze status %d, want 502: %v", code, body)
	}
	if body["published"] != false || body["degraded"] != true {
		t.Fatalf("partial freeze not reported degraded: %v", body)
	}
	failed := body["failed"].([]any)
	if len(failed) != 1 {
		t.Fatalf("failed list %v, want exactly the faulted peer", failed)
	}
	if epochs := body["epochs"].(map[string]any); len(epochs) != 2 {
		t.Fatalf("published epochs %v, want the 2 surviving peers", epochs)
	}

	code, body = tc.clusterFreeze(t)
	if code != http.StatusOK || body["published"] != true {
		t.Fatalf("clean freeze after fault exhausted: status %d, body %v", code, body)
	}
	epochs := body["epochs"].(map[string]any)
	behind := failed[0].(string)
	for addr, e := range epochs {
		want := 2.0
		if addr == behind {
			want = 1.0 // missed one turn; catches up, never diverges
		}
		if e.(float64) != want {
			t.Errorf("peer %s at epoch %v after recovery freeze, want %v", addr, e, want)
		}
	}
}

// TestPeerStateMachine: the health transitions the router promises —
// failures degrade then down at DownAfter, recovery re-enters through
// degraded probation, and two consecutive successes restore up.
func TestPeerStateMachine(t *testing.T) {
	p := &peer{addr: "x"}
	p.fail(3)
	if st, _, _ := p.status(); st != Degraded {
		t.Fatalf("after 1 failure: %v, want degraded", st)
	}
	p.fail(3)
	p.fail(3)
	if st, _, _ := p.status(); st != Down {
		t.Fatalf("after 3 failures: %v, want down", st)
	}
	p.ok(5)
	if st, _, epoch := p.status(); st != Degraded || epoch != 5 {
		t.Fatalf("first success after down: %v epoch %d, want degraded probation at epoch 5", st, epoch)
	}
	p.ok(5)
	if st, _, _ := p.status(); st != Up {
		t.Fatalf("second consecutive success: %v, want up", st)
	}
	p.fail(3)
	if st, _, _ := p.status(); st != Degraded {
		t.Fatalf("fresh failure from up: %v, want degraded", st)
	}
}

// TestProberTracksReadiness: the background prober feeds the same state
// machine through GET /healthz/ready — a draining peer goes down, and
// repeated successful probes walk it back up through probation.
func TestProberTracksReadiness(t *testing.T) {
	tc := newTestCluster(t, 2, Config{DownAfter: 2}, nil)
	tc.servers[0].SetDraining(true)
	tc.router.probeAll()
	tc.router.probeAll()
	if st := tc.router.PeerStates()[tc.addrs[0]]; st != Down {
		t.Fatalf("draining peer after 2 probes: %v, want down", st)
	}
	if st := tc.router.PeerStates()[tc.addrs[1]]; st == Down {
		t.Fatalf("healthy peer marked down")
	}
	tc.servers[0].SetDraining(false)
	tc.router.probeAll()
	if st := tc.router.PeerStates()[tc.addrs[0]]; st != Degraded {
		t.Fatalf("first good probe: %v, want degraded probation", st)
	}
	tc.router.probeAll()
	if st := tc.router.PeerStates()[tc.addrs[0]]; st != Up {
		t.Fatalf("second good probe: %v, want up", st)
	}
}

// TestClusterHealthEndpoint: /cluster/health reports every peer with its
// tracked state and the cluster's coverage.
func TestClusterHealthEndpoint(t *testing.T) {
	tc := newTestCluster(t, 3, Config{}, nil)
	code, body := getJSON(t, tc.routerTS.URL+"/cluster/health")
	if code != http.StatusOK {
		t.Fatalf("health status %d: %v", code, body)
	}
	if body["total"].(float64) != 3 || body["down"].(float64) != 0 {
		t.Fatalf("health totals %v/%v, want 3/0", body["total"], body["down"])
	}
	if body["coverage"].(float64) != 1.0 {
		t.Fatalf("health coverage %v, want 1", body["coverage"])
	}
	if len(body["peers"].([]any)) != 3 {
		t.Fatalf("health lists %d peers, want 3", len(body["peers"].([]any)))
	}
}

// TestOwnsKeyMatchesOwner: the guard wired into each peer and the
// router's routing view agree on every key.
func TestOwnsKeyMatchesOwner(t *testing.T) {
	addrs := []string{"a:1", "b:2", "c:3"}
	r, err := New(Config{Peers: addrs, Self: 1, Sample: testSample, Assignments: testAssignments})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("host-%05d", i)
		owns := r.OwnsKey(key)
		if owns != (r.Owner(key) == addrs[1]) {
			t.Fatalf("key %q: OwnsKey=%v but Owner=%s", key, owns, r.Owner(key))
		}
		if shard.ShardOf(key, 3) == 1 && !owns {
			t.Fatalf("key %q: partition says self, OwnsKey says no", key)
		}
	}
}

// TestConfigValidation: New rejects nonsense configurations.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Sample: testSample, Assignments: 1}); err == nil {
		t.Error("no peers accepted")
	}
	if _, err := New(Config{Peers: []string{"a:1"}, Self: 3, Sample: testSample, Assignments: 1}); err == nil {
		t.Error("out-of-range self accepted")
	}
	if _, err := New(Config{Peers: []string{"a:1"}, Self: 0, Sample: core.Config{}, Assignments: 1}); err == nil {
		t.Error("invalid sample config accepted")
	}
	if _, err := New(Config{Peers: []string{"a:1"}, Self: 0, Sample: testSample, Assignments: 0}); err == nil {
		t.Error("zero assignments accepted")
	}
}

// Package cluster is the multi-node serving layer: a scatter-gather
// router over a set of cws-serve peers that partitions the keyspace,
// gathers fingerprinted wire-codec sketches from every reachable peer, and
// answers the full cliquery vocabulary over their exact merge.
//
// # Why scale-out is exact
//
// The keyspace is partitioned with the seed-independent routing hash
// (shard.ShardOf): key k belongs to peer ShardOf(k, n). Every key
// therefore lives on exactly one peer, the peers' key sets are disjoint,
// and by the merge lemma — coordinated bottom-k sketches of disjoint key
// sets merge into the bit-exact sketch of the union — the router's merged
// sketch set is bit-identical to what a single process ingesting the whole
// stream would hold. Horizontal scale is purely an engineering problem,
// exactly as the paper's mergeable-summary design promises; nothing about
// the estimators changes.
//
// Each node guards the partition itself (server.Config.OwnsKey): a
// misrouted offer is rejected with 400 rather than silently breaking the
// disjointness the exactness argument rests on.
//
// # Failure handling
//
// Every peer fetch runs under a per-peer deadline with bounded retries,
// exponential backoff with deterministic seeded jitter, and a hedged
// second request for the slowest straggler. Peer health is tracked as
// up/degraded/down: consecutive failures (from queries or the background
// readiness prober) demote a peer, DownAfter of them mark it down, and a
// down peer is skipped by queries — only the prober talks to it, and a
// successful probe re-admits it through a degraded probation state.
//
// # Graceful degradation
//
// When a peer stays unreachable past its retry budget, the router answers
// from the survivors instead of failing the query: the response carries
// degraded=true, a coverage fraction (the reached peers' share of the
// keyspace — ShardOf assigns each of n peers 1/n of the hash space), and
// per-peer status. The estimate is then the exact answer over the covered
// partitions' keys — a *subpopulation* of the full keyspace, not a scaled
// guess; callers that need the full population divide by coverage under a
// uniform-mass assumption or wait for the peer to return. A query fails
// outright (503) only when no peer at all is reachable.
//
// # Two-phase freeze
//
// POST /cluster/freeze advances the epoch cluster-wide in two phases:
// phase one freezes every reachable peer (each peer persists and
// acknowledges its own epoch durably — the store's manifest line remains
// the single acknowledgement point); phase two publishes the outcome: the
// per-peer epochs on success, or a degraded report naming the peers whose
// freeze failed (502). A peer that died mid-freeze loses only its
// unacknowledged epoch — its acknowledged history recovers bit-identically
// on restart, which the chaos e2e (SIGKILL mid-freeze) pins.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"coordsample/internal/cliquery"
	"coordsample/internal/core"
	"coordsample/internal/faults"
	"coordsample/internal/obs"
	"coordsample/internal/shard"
	"coordsample/internal/sketch"
)

// The cluster layer's injectable fault points (router side; the peer's
// serving-side points are server.FaultSketches and server.FaultFreeze).
const (
	// FaultFetch fires before each sketch-fetch attempt: "err" fails the
	// attempt without touching the network, "latency" delays it (the
	// hedge's straggler), "drop" abandons it as a transport failure.
	FaultFetch = "peer.fetch"
	// FaultFreeze fires before each phase-one peer freeze: "err" fails
	// that peer's freeze, producing a degraded publish.
	FaultFreeze = "peer.freeze"
)

// PeerState is a peer's health as the router sees it.
type PeerState int

const (
	// Up: consecutive successes; queried normally.
	Up PeerState = iota
	// Degraded: recent failure, or probation after coming back from
	// Down; still queried.
	Degraded
	// Down: DownAfter consecutive failures; skipped by queries until a
	// background probe succeeds.
	Down
)

func (s PeerState) String() string {
	switch s {
	case Up:
		return "up"
	case Degraded:
		return "degraded"
	default:
		return "down"
	}
}

// Config configures a Router.
type Config struct {
	// Peers is every cluster member's host:port, self included, in the
	// same order on every node — the order is the partition: key k
	// belongs to Peers[shard.ShardOf(k, len(Peers))].
	Peers []string
	// Self is this node's index in Peers (-1 for a standalone router
	// that is not itself a peer).
	Self int
	// Sample and Assignments mirror the peers' serving configuration;
	// fetched sketches are fingerprint-verified against it.
	Sample      core.Config
	Assignments int
	// PeerTimeout bounds one fetch attempt (default 2s).
	PeerTimeout time.Duration
	// Retries is the per-peer retry budget beyond the first attempt
	// (default 2; -1 for none).
	Retries int
	// RetryBase is the exponential backoff base (default 50ms); attempt
	// i waits RetryBase<<i plus deterministic jitter.
	RetryBase time.Duration
	// HedgeAfter launches a hedged second request if the first has not
	// answered (default 250ms; -1 disables hedging).
	HedgeAfter time.Duration
	// ProbeInterval is the background readiness-probe period (default
	// 1s; probing starts with Start).
	ProbeInterval time.Duration
	// DownAfter is how many consecutive failures mark a peer down
	// (default 3).
	DownAfter int
	// Seed drives the retry jitter deterministically (tests); the zero
	// seed is fine in production.
	Seed int64
	// Faults injects router-side failures (FaultFetch, FaultFreeze);
	// nil injects nothing.
	Faults *faults.Set
	// Client overrides the HTTP client (tests); nil builds a pooled one.
	Client *http.Client
	// Metrics, when non-nil, receives the router's per-peer series
	// (RPC latency histograms, attempt/retry/hedge/transition counters,
	// probe outcomes, state gauges). cws-serve shares the serving
	// process's registry so one /metrics scrape covers both layers. Nil
	// records into private histograms that are simply never scraped.
	Metrics *obs.Registry
	// Traces, when non-nil, is the ring recent /cluster/query traces are
	// pushed into (shared with the server's /debug/traces in cws-serve).
	Traces *obs.TraceRing
	// Log, when non-nil, receives the router's structured log events
	// (peer state transitions, degraded queries, freeze outcomes),
	// tagged component=cluster. Nil discards them.
	Log *slog.Logger
}

// withDefaults fills the zero values.
func (c Config) withDefaults() Config {
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 2 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = 250 * time.Millisecond
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}}
	}
	return c
}

// peer is one cluster member's address, tracked health, and per-peer RPC
// metrics. The counters are typed atomics so the scatter goroutines, the
// prober, and metric scrapes never contend on the health mutex.
type peer struct {
	addr string

	mu    sync.Mutex
	state PeerState
	fails int // consecutive failures
	oks   int // consecutive successes since the last failure
	epoch int // last epoch observed from this peer

	rpc         *obs.Histogram // per-RPC latency (fetch + hedge attempts)
	attempts    atomic.Int64   // fetch attempts (retry loop iterations)
	retries     atomic.Int64   // attempts beyond each fetch's first
	hedges      atomic.Int64   // hedged second requests launched
	hedgeWins   atomic.Int64   // fetches won by the hedged request
	transitions atomic.Int64   // health state changes
	probesOK    atomic.Int64   // readiness probes that passed
	probesFail  atomic.Int64   // readiness probes that failed
}

// fail records one failed interaction; downAfter consecutive failures mark
// the peer down. Returns the transition for the caller to log.
func (p *peer) fail(downAfter int) (from, to PeerState) {
	p.mu.Lock()
	defer p.mu.Unlock()
	from = p.state
	p.fails++
	p.oks = 0
	if p.fails >= downAfter {
		p.state = Down
	} else {
		p.state = Degraded
	}
	if p.state != from {
		p.transitions.Add(1)
	}
	return from, p.state
}

// ok records one successful interaction. A down peer re-enters through
// Degraded probation; two consecutive successes restore Up. Returns the
// transition for the caller to log.
func (p *peer) ok(epoch int) (from, to PeerState) {
	p.mu.Lock()
	defer p.mu.Unlock()
	from = p.state
	p.fails = 0
	p.oks++
	if epoch >= 0 {
		p.epoch = epoch
	}
	if p.state == Down {
		p.state = Degraded
		p.oks = 1
	} else if p.oks >= 2 {
		p.state = Up
	} else if p.state != Up {
		p.state = Degraded
	}
	if p.state != from {
		p.transitions.Add(1)
	}
	return from, p.state
}

// status snapshots the peer's health.
func (p *peer) status() (PeerState, int, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state, p.fails, p.epoch
}

// Router is the scatter-gather cluster front end. Create it with New,
// optionally Start the background prober, mount it as an http.Handler
// (it serves /cluster/query, /cluster/freeze, /cluster/health), and Close
// it on shutdown.
type Router struct {
	cfg    Config
	peers  []*peer
	mux    *http.ServeMux
	log    *slog.Logger
	traces *obs.TraceRing

	jitterMu sync.Mutex
	jitter   *rand.Rand

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// peerFail feeds one failure into a peer's health state and logs the
// transition, if any.
func (r *Router) peerFail(p *peer) {
	if from, to := p.fail(r.cfg.DownAfter); from != to {
		r.log.Warn("peer state changed", "peer", p.addr, "from", from.String(), "to", to.String())
	}
}

// peerOK feeds one success into a peer's health state and logs the
// transition, if any.
func (r *Router) peerOK(p *peer, epoch int) {
	if from, to := p.ok(epoch); from != to {
		r.log.Info("peer state changed", "peer", p.addr, "from", from.String(), "to", to.String())
	}
}

// New creates a Router over cfg.Peers.
func New(cfg Config) (*Router, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers")
	}
	if cfg.Self < -1 || cfg.Self >= len(cfg.Peers) {
		return nil, fmt.Errorf("cluster: self index %d out of range for %d peers", cfg.Self, len(cfg.Peers))
	}
	if err := cfg.Sample.Check(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if cfg.Assignments < 1 {
		return nil, fmt.Errorf("cluster: need at least one assignment, got %d", cfg.Assignments)
	}
	cfg = cfg.withDefaults()
	r := &Router{
		cfg:    cfg,
		log:    obs.Component(cfg.Log, "cluster"),
		traces: cfg.Traces,
		jitter: rand.New(rand.NewSource(cfg.Seed)),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if r.traces == nil {
		r.traces = obs.NewTraceRing(64)
	}
	for _, addr := range cfg.Peers {
		p := &peer{addr: addr, rpc: &obs.Histogram{}}
		r.peers = append(r.peers, p)
		if reg := cfg.Metrics; reg != nil {
			p := p
			l := obs.Label("peer", p.addr)
			reg.RegisterHistogram("cws_peer_rpc_seconds",
				"Peer sketch-fetch RPC latency, per attempt (hedges included).", l, p.rpc)
			reg.CounterL("cws_peer_rpc_attempts_total", "Peer fetch attempts (retry-loop iterations).", l, p.attempts.Load)
			reg.CounterL("cws_peer_rpc_retries_total", "Peer fetch attempts beyond each fetch's first.", l, p.retries.Load)
			reg.CounterL("cws_peer_rpc_hedges_total", "Hedged second requests launched against the peer.", l, p.hedges.Load)
			reg.CounterL("cws_peer_rpc_hedge_wins_total", "Peer fetches won by the hedged request.", l, p.hedgeWins.Load)
			reg.CounterL("cws_peer_state_transitions_total", "Peer health state changes (up/degraded/down).", l, p.transitions.Load)
			reg.CounterL("cws_peer_probes_total", "Readiness probe outcomes per peer.",
				l+","+obs.Label("outcome", "ok"), p.probesOK.Load)
			reg.CounterL("cws_peer_probes_total", "Readiness probe outcomes per peer.",
				l+","+obs.Label("outcome", "fail"), p.probesFail.Load)
			reg.GaugeL("cws_peer_state", "Peer health state: 0 up, 1 degraded, 2 down.", l, func() float64 {
				state, _, _ := p.status()
				return float64(state)
			})
			reg.GaugeL("cws_peer_epoch", "Last epoch observed from the peer.", l, func() float64 {
				_, _, epoch := p.status()
				return float64(epoch)
			})
		}
	}
	r.mux = http.NewServeMux()
	r.mux.HandleFunc("/cluster/query", r.handleQuery)
	r.mux.HandleFunc("/cluster/freeze", r.handleFreeze)
	r.mux.HandleFunc("/cluster/health", r.handleHealth)
	return r, nil
}

// OwnsKey reports whether this node owns key under the cluster partition —
// the guard wired into server.Config.OwnsKey. A standalone router
// (Self < 0) owns nothing.
func (r *Router) OwnsKey(key string) bool {
	return r.cfg.Self >= 0 && shard.ShardOf(key, len(r.cfg.Peers)) == r.cfg.Self
}

// Owner returns the address of the peer owning key.
func (r *Router) Owner(key string) string {
	return r.cfg.Peers[shard.ShardOf(key, len(r.cfg.Peers))]
}

// ServeHTTP dispatches the /cluster/* endpoints.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) { r.mux.ServeHTTP(w, req) }

// Start launches the background readiness prober. Optional: without it,
// health state is fed by query traffic alone and a down peer is never
// re-probed between queries.
func (r *Router) Start() {
	go func() {
		defer close(r.done)
		t := time.NewTicker(r.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				r.probeAll()
			}
		}
	}()
}

// Close stops the prober (if started) and releases idle connections.
func (r *Router) Close() {
	r.once.Do(func() {
		close(r.stop)
		select {
		case <-r.done:
		case <-time.After(time.Second):
		}
	})
	r.cfg.Client.CloseIdleConnections()
}

// probeAll checks every peer's /healthz/ready once. Probes feed the same
// health state machine as queries — and are the only path by which a down
// peer can come back.
func (r *Router) probeAll() {
	var wg sync.WaitGroup
	for _, p := range r.peers {
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.PeerTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+p.addr+"/healthz/ready", nil)
			if err != nil {
				p.probesFail.Add(1)
				r.peerFail(p)
				return
			}
			resp, err := r.cfg.Client.Do(req)
			if err != nil {
				p.probesFail.Add(1)
				r.peerFail(p)
				return
			}
			defer resp.Body.Close()
			_, _ = io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusOK {
				// Ready=false (draining) or an error: stop routing to it.
				p.probesFail.Add(1)
				r.peerFail(p)
				return
			}
			p.probesOK.Add(1)
			r.peerOK(p, -1)
		}(p)
	}
	wg.Wait()
}

// backoff returns the wait before retry attempt i (0-based), exponential
// with deterministic seeded jitter in [0, RetryBase).
func (r *Router) backoff(i int) time.Duration {
	r.jitterMu.Lock()
	j := time.Duration(r.jitter.Int63n(int64(r.cfg.RetryBase)))
	r.jitterMu.Unlock()
	return r.cfg.RetryBase<<i + j
}

// fetchResult is one peer's gathered sketch set.
type fetchResult struct {
	sketches []*sketch.BottomK
	epoch    int
}

// fetchOnce performs one /sketches fetch attempt against a peer, fully
// validating the returned segment (CRC, wire-codec revalidation, assignment
// order, fingerprints) before trusting it — a torn or corrupted response is
// a typed error here, never a short sketch set.
func (r *Router) fetchOnce(ctx context.Context, addr, epochs string) (*fetchResult, error) {
	if out := r.cfg.Faults.Act(FaultFetch); out.Err != nil || out.Drop {
		if out.Err != nil {
			return nil, fmt.Errorf("cluster: fetching %s: %w", addr, out.Err)
		}
		return nil, fmt.Errorf("cluster: fetching %s: %w", addr, io.ErrUnexpectedEOF)
	}
	u := "http://" + addr + "/sketches"
	if epochs != "" {
		u += "?epochs=" + url.QueryEscape(epochs)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetching %s: %w", addr, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading %s: %w", addr, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s returned status %d: %s", addr, resp.StatusCode, firstLine(body))
	}
	epoch, err := strconv.Atoi(resp.Header.Get("X-CWS-Epoch"))
	if err != nil {
		return nil, fmt.Errorf("cluster: %s sent no X-CWS-Epoch: %w", addr, err)
	}
	decoded, err := sketch.DecodeSegment(body)
	if err != nil {
		return nil, fmt.Errorf("cluster: segment from %s failed validation: %w", addr, err)
	}
	if len(decoded) != r.cfg.Assignments {
		return nil, fmt.Errorf("cluster: %s sent %d sketches for %d assignments", addr, len(decoded), r.cfg.Assignments)
	}
	assigner := r.cfg.Sample.Assigner()
	sketches := make([]*sketch.BottomK, r.cfg.Assignments)
	for b, d := range decoded {
		if d.BottomK == nil {
			return nil, fmt.Errorf("cluster: %s sketch %d is not a bottom-k sketch", addr, b)
		}
		if d.Meta.Assignment != b {
			return nil, fmt.Errorf("cluster: %s sketch %d describes assignment %d", addr, b, d.Meta.Assignment)
		}
		if want := assigner.Fingerprint(b, r.cfg.Sample.K); d.BottomK.Fingerprint() != want {
			return nil, fmt.Errorf("cluster: %s sketch %d fingerprint %016x does not match the cluster configuration (%016x) — merging would corrupt every estimate", addr, b, d.BottomK.Fingerprint(), want)
		}
		sketches[b] = d.BottomK
	}
	return &fetchResult{sketches: sketches, epoch: epoch}, nil
}

// firstLine truncates a response body for error messages.
func firstLine(b []byte) string {
	const max = 200
	for i, c := range b {
		if c == '\n' || i >= max {
			return string(b[:i])
		}
	}
	return string(b)
}

// fetchHedged runs one attempt with an optional hedged second request: if
// the first has not answered after HedgeAfter, an identical request races
// it and the first success wins. Hedging spends one extra request to cut
// the tail latency a single slow peer imposes on every scatter.
func (r *Router) fetchHedged(ctx context.Context, tr *obs.Trace, p *peer, epochs string) (*fetchResult, error) {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.PeerTimeout)
	defer cancel()
	rpcSpan := func(hedged bool) func() {
		name := "peer " + p.addr + " fetch"
		if hedged {
			name = "peer " + p.addr + " hedge-fetch"
		}
		start := time.Now()
		return func() {
			d := time.Since(start)
			p.rpc.Record(d)
			tr.Add(name, start, d)
		}
	}
	if r.cfg.HedgeAfter < 0 {
		done := rpcSpan(false)
		fr, err := r.fetchOnce(ctx, p.addr, epochs)
		done()
		return fr, err
	}
	type res struct {
		fr     *fetchResult
		err    error
		hedged bool
	}
	ch := make(chan res, 2)
	launch := func(hedged bool) {
		done := rpcSpan(hedged)
		fr, err := r.fetchOnce(ctx, p.addr, epochs)
		done()
		ch <- res{fr, err, hedged}
	}
	go launch(false)
	hedge := time.NewTimer(r.cfg.HedgeAfter)
	defer hedge.Stop()
	launched := 1
	var firstErr error
	for got := 0; got < launched; {
		select {
		case <-hedge.C:
			if launched == 1 {
				launched = 2
				p.hedges.Add(1)
				go launch(true)
			}
		case out := <-ch:
			got++
			if out.err == nil {
				if out.hedged {
					p.hedgeWins.Add(1)
				}
				return out.fr, nil
			}
			if firstErr == nil {
				firstErr = out.err
			}
		}
	}
	return nil, firstErr
}

// fetch gathers one peer's sketches under the full failure policy:
// per-attempt deadline, bounded retries with exponential backoff and
// jitter, hedging within each attempt. Success and exhaustion both feed
// the peer's health state.
func (r *Router) fetch(ctx context.Context, tr *obs.Trace, p *peer, epochs string) (*fetchResult, error) {
	var lastErr error
	for attempt := 0; attempt <= r.cfg.Retries; attempt++ {
		p.attempts.Add(1)
		if attempt > 0 {
			p.retries.Add(1)
			waitStart := time.Now()
			select {
			case <-ctx.Done():
				lastErr = ctx.Err()
				r.peerFail(p)
				return nil, lastErr
			case <-time.After(r.backoff(attempt - 1)):
			}
			tr.Add("peer "+p.addr+" backoff", waitStart, time.Since(waitStart))
		}
		fr, err := r.fetchHedged(ctx, tr, p, epochs)
		if err == nil {
			r.peerOK(p, fr.epoch)
			return fr, nil
		}
		lastErr = err
	}
	r.peerFail(p)
	return nil, lastErr
}

// peerReport is one peer's entry in a response's per-peer status list.
type peerReport struct {
	Addr  string `json:"addr"`
	State string `json:"state"`
	Epoch int    `json:"epoch"`
	Error string `json:"error,omitempty"`
}

// scatter fetches from every non-down peer concurrently. It returns the
// reached peers' results (indexed like cfg.Peers, nil where unreached) and
// the per-peer reports.
func (r *Router) scatter(ctx context.Context, tr *obs.Trace, epochs string) ([]*fetchResult, []peerReport) {
	results := make([]*fetchResult, len(r.peers))
	reports := make([]peerReport, len(r.peers))
	var wg sync.WaitGroup
	for i, p := range r.peers {
		state, _, epoch := p.status()
		reports[i] = peerReport{Addr: p.addr, State: state.String(), Epoch: epoch}
		if state == Down {
			reports[i].Error = "down; skipped (a background probe must succeed before it is queried again)"
			continue
		}
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			fr, err := r.fetch(ctx, tr, p, epochs)
			state, _, epoch := p.status()
			reports[i].State, reports[i].Epoch = state.String(), epoch
			if err != nil {
				reports[i].Error = err.Error()
				return
			}
			results[i] = fr
			reports[i].Epoch = fr.epoch
		}(i, p)
	}
	wg.Wait()
	return results, reports
}

// merge combines the reached peers' sketch sets into the exact merged
// per-assignment sketches (disjoint key sets by the ownership guard).
func (r *Router) merge(results []*fetchResult) ([]*sketch.BottomK, error) {
	parts := make([][]*sketch.BottomK, r.cfg.Assignments)
	for _, fr := range results {
		if fr == nil {
			continue
		}
		for b, sk := range fr.sketches {
			parts[b] = append(parts[b], sk)
		}
	}
	merged := make([]*sketch.BottomK, r.cfg.Assignments)
	for b, ps := range parts {
		m, err := sketch.Merge(ps...)
		if err != nil {
			return nil, fmt.Errorf("cluster: merging assignment %d: %w", b, err)
		}
		merged[b] = m
	}
	return merged, nil
}

// handleQuery is GET /cluster/query: the scatter-gather answer to the
// same parameter grammar as a single node's GET /query, plus the
// degradation fields (degraded, coverage, peers).
func (r *Router) handleQuery(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	tr := obs.NewTrace(r.traces.NextID(), "cluster-query")
	sp := tr.Start("parse")
	p, err := cliquery.ParseHTTPParams(req.URL.Query(), r.cfg.Assignments)
	sp.End()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tr.Op = "cluster-query agg=" + p.Agg + " est=" + p.Est.Name()
	sp = tr.Start("scatter")
	results, reports := r.scatter(req.Context(), tr, p.Epochs)
	sp.End()
	reached := 0
	for _, fr := range results {
		if fr != nil {
			reached++
		}
	}
	if reached == 0 {
		r.traces.Add(tr.Report())
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error": "no cluster peer reachable", "peers": reports,
		})
		return
	}
	sp = tr.Start("merge")
	merged, err := r.merge(results)
	sp.End()
	if err != nil {
		writeError(w, http.StatusBadGateway, "%v", err)
		return
	}
	sp = tr.Start("summarize")
	summary, err := core.CombineDispersed(r.cfg.Sample, merged)
	sp.End()
	if err != nil {
		writeError(w, http.StatusBadGateway, "cluster: %v", err)
		return
	}
	sp = tr.Start("estimate")
	label, v, stderr, err := cliquery.AnswerVia(summary, p.Agg, p.B, p.R, p.L, p.Pred, p.Est, cliquery.Direct)
	sp.End()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	total := len(r.peers)
	if reached < total {
		r.log.Warn("degraded cluster query", "agg", p.Agg, "reached", reached, "total", total)
	}
	resp := map[string]any{
		"agg":       p.Agg,
		"label":     label,
		"estimate":  v,
		"estimator": p.Est.Name(),
		"degraded":  reached < total,
		"coverage":  float64(reached) / float64(total),
		"reached":   reached,
		"total":     total,
		"peers":     reports,
	}
	if p.Epochs != "" {
		resp["epochs"] = p.Epochs
	}
	if !isNaN(stderr) {
		resp["stderr"] = stderr
	}
	rep := tr.Report()
	r.traces.Add(rep)
	if req.URL.Query().Get("trace") == "1" {
		resp["trace"] = rep
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleFreeze is POST /cluster/freeze: the two-phase cluster epoch turn.
// Phase one freezes every reachable peer concurrently (each peer's own
// durable manifest append is its acknowledgement point); phase two
// publishes the outcome — per-peer epochs on full success, a degraded
// report (502) when any peer's freeze failed.
func (r *Router) handleFreeze(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	type freezeOut struct {
		epoch int
		err   error
	}
	outs := make([]freezeOut, len(r.peers))
	var wg sync.WaitGroup
	for i, p := range r.peers {
		wg.Add(1)
		go func(i int, p *peer) {
			defer wg.Done()
			outs[i] = r.freezeOne(req.Context(), p)
		}(i, p)
	}
	wg.Wait()
	epochs := make(map[string]int)
	var failed []string
	reports := make([]peerReport, len(r.peers))
	for i, p := range r.peers {
		state, _, epoch := p.status()
		reports[i] = peerReport{Addr: p.addr, State: state.String(), Epoch: epoch}
		if outs[i].err != nil {
			failed = append(failed, p.addr)
			reports[i].Error = outs[i].err.Error()
			continue
		}
		epochs[p.addr] = outs[i].epoch
	}
	published := len(failed) == 0
	code := http.StatusOK
	if published {
		r.log.Info("cluster freeze published", "peers", len(r.peers))
	} else {
		code = http.StatusBadGateway
		r.log.Warn("cluster freeze degraded", "failed", failed)
	}
	writeJSON(w, code, map[string]any{
		"published": published,
		"degraded":  !published,
		"epochs":    epochs,
		"failed":    failed,
		"peers":     reports,
	})
}

// freezeOne is phase one for a single peer: one POST /freeze under the
// peer deadline. Freeze is deliberately not retried — it is not
// idempotent (a retried freeze whose first attempt actually succeeded
// would mint an extra empty epoch; harmless for exactness, but noise in
// the epoch history).
func (r *Router) freezeOne(ctx context.Context, p *peer) (out struct {
	epoch int
	err   error
}) {
	if o := r.cfg.Faults.Act(FaultFreeze); o.Err != nil {
		out.err = fmt.Errorf("cluster: freezing %s: %w", p.addr, o.Err)
		r.peerFail(p)
		return out
	}
	// Freezing (merge + fsync) legitimately outlasts a fetch deadline;
	// give it 5× the per-fetch budget.
	ctx, cancel := context.WithTimeout(ctx, 5*r.cfg.PeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+p.addr+"/freeze", nil)
	if err != nil {
		out.err = fmt.Errorf("cluster: %w", err)
		return out
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		out.err = fmt.Errorf("cluster: freezing %s: %w", p.addr, err)
		r.peerFail(p)
		return out
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		out.err = fmt.Errorf("cluster: freezing %s: %w", p.addr, err)
		r.peerFail(p)
		return out
	}
	if resp.StatusCode != http.StatusOK {
		out.err = fmt.Errorf("cluster: %s freeze returned status %d: %s", p.addr, resp.StatusCode, firstLine(body))
		r.peerFail(p)
		return out
	}
	var fr struct {
		Epoch int `json:"epoch"`
	}
	if err := json.Unmarshal(body, &fr); err != nil {
		out.err = fmt.Errorf("cluster: %s freeze response: %w", p.addr, err)
		r.peerFail(p)
		return out
	}
	r.peerOK(p, fr.Epoch)
	out.epoch = fr.Epoch
	return out
}

// handleHealth is GET /cluster/health: every peer's tracked state.
func (r *Router) handleHealth(w http.ResponseWriter, req *http.Request) {
	reports := make([]peerReport, len(r.peers))
	down := 0
	for i, p := range r.peers {
		state, fails, epoch := p.status()
		reports[i] = peerReport{Addr: p.addr, State: state.String(), Epoch: epoch}
		if fails > 0 {
			reports[i].Error = fmt.Sprintf("%d consecutive failure(s)", fails)
		}
		if state == Down {
			down++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"peers":    reports,
		"total":    len(reports),
		"down":     down,
		"self":     r.cfg.Self,
		"coverage": float64(len(reports)-down) / float64(len(reports)),
	})
}

// PeerStates snapshots every peer's state (tests and cws-serve logging).
func (r *Router) PeerStates() map[string]PeerState {
	out := make(map[string]PeerState, len(r.peers))
	for _, p := range r.peers {
		state, _, _ := p.status()
		out[p.addr] = state
	}
	return out
}

// isNaN avoids importing math for one comparison.
func isNaN(f float64) bool { return f != f }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]any{"error": fmt.Sprintf(format, args...)})
}

package estimate

import (
	"math"
	"math/rand"
	"testing"

	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

func TestAWSummaryBasics(t *testing.T) {
	s := NewAWSummary(4)
	s.Set("b", 2)
	s.Set("a", 1)
	s.Set("zero", 0) // dropped
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.AdjustedWeight("a"); got != 1 {
		t.Fatalf("a = %v", got)
	}
	if got := s.AdjustedWeight("missing"); got != 0 {
		t.Fatalf("missing = %v", got)
	}
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v", keys)
	}
	if got := s.Estimate(nil); got != 3 {
		t.Fatalf("Estimate = %v", got)
	}
	if got := s.Estimate(func(k string) bool { return k == "b" }); got != 2 {
		t.Fatalf("filtered Estimate = %v", got)
	}
}

func TestAWSummaryEstimateScaled(t *testing.T) {
	s := NewAWSummary(2)
	s.Set("x", 10)
	s.Set("y", 4)
	// h(i)/f(i) ratios of 0.5 and 2.
	scale := func(key string) float64 {
		if key == "x" {
			return 0.5
		}
		return 2
	}
	if got := s.EstimateScaled(nil, scale); got != 13 {
		t.Fatalf("EstimateScaled = %v", got)
	}
}

func TestSubSigned(t *testing.T) {
	a := NewAWSummary(2)
	a.Set("p", 5)
	a.Set("q", 3)
	b := NewAWSummary(2)
	b.Set("p", 2)
	b.Set("q", 4) // larger than a's: signed difference must be kept
	d := Sub(a, b)
	if got := d.AdjustedWeight("p"); got != 3 {
		t.Fatalf("p diff = %v", got)
	}
	if got := d.AdjustedWeight("q"); got != -1 {
		t.Fatalf("q diff = %v, want -1 (signed)", got)
	}
	if got := d.Estimate(nil); got != 2 {
		t.Fatalf("Estimate = %v", got)
	}
}

func TestAggFuncEval(t *testing.T) {
	vec := []float64{5, 20, 0, 10}
	cases := []struct {
		f    AggFunc
		want float64
	}{
		{SingleOf(1), 20},
		{SingleOf(2), 0},
		{MaxOf(), 20},
		{MinOf(), 0},
		{RangeOf(), 20},
		{MaxOf(0, 3), 10},
		{MinOf(0, 3), 5},
		{RangeOf(0, 3), 5},
		{LthLargestOf(2, 0, 1, 3), 10},
		{LthLargestOf(3, 0, 1, 3), 5},
	}
	for _, c := range cases {
		if got := c.f.Eval(vec); got != c.want {
			t.Fatalf("%v.Eval = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestAggFuncRelevant(t *testing.T) {
	if got := SingleOf(2).Relevant(4); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Single relevant = %v", got)
	}
	if got := MaxOf(1, 3).Relevant(4); len(got) != 2 || got[1] != 3 {
		t.Fatalf("subset relevant = %v", got)
	}
	if got := MinOf().Relevant(3); len(got) != 3 || got[2] != 2 {
		t.Fatalf("nil-R relevant = %v", got)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Single: "single", Max: "max", Min: "min", Range: "L1", LthLargest: "lth-largest"} {
		if k.String() != want {
			t.Fatalf("Kind %d string = %q", k, k.String())
		}
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind should format")
	}
}

// --- Figure 1 worked example: AW summaries verbatim ---

var (
	fig1Keys    = []string{"i1", "i2", "i3", "i4", "i5", "i6"}
	fig1Weights = []float64{20, 10, 12, 20, 10, 10}
	fig1Ranks   = []float64{0.011, 0.075, 0.0583, 0.046, 0.055, 0.037}
)

func fig1BottomK(k int) *sketch.BottomK {
	return sketch.BottomKFromRanks(k, fig1Keys, fig1Ranks, fig1Weights)
}

func TestFigure1BottomKAdjustedWeights(t *testing.T) {
	// k=1: sample {i1}, r_2 = 0.037, p = 0.74, a = 20/0.74 ≈ 27.03 (the
	// paper prints 27.02).
	aw := BottomKRC(fig1BottomK(1), rank.IPPS)
	if got := aw.AdjustedWeight("i1"); math.Abs(got-20/0.74) > 1e-9 {
		t.Fatalf("k=1: a(i1) = %v, want %v", got, 20/0.74)
	}
	if aw.Len() != 1 {
		t.Fatalf("k=1: %d keys with positive weight", aw.Len())
	}

	// k=2: sample {i1,i6}, r_3 = 0.046: both adjusted weights 21.74.
	aw = BottomKRC(fig1BottomK(2), rank.IPPS)
	for _, key := range []string{"i1", "i6"} {
		if got := aw.AdjustedWeight(key); math.Abs(got-21.7391304) > 1e-4 {
			t.Fatalf("k=2: a(%s) = %v, want 21.74", key, got)
		}
	}

	// k=3: sample {i1,i6,i4}, r_4 = 0.055: a = 20.00, 18.18, 20.00.
	aw = BottomKRC(fig1BottomK(3), rank.IPPS)
	if got := aw.AdjustedWeight("i1"); got != 20 {
		t.Fatalf("k=3: a(i1) = %v, want 20", got)
	}
	if got := aw.AdjustedWeight("i4"); got != 20 {
		t.Fatalf("k=3: a(i4) = %v, want 20", got)
	}
	if got := aw.AdjustedWeight("i6"); math.Abs(got-10/0.55) > 1e-9 {
		t.Fatalf("k=3: a(i6) = %v, want 18.18", got)
	}
}

func TestFigure1SubpopulationEstimates(t *testing.T) {
	// "The set J = {i2, i4, i6} with weight 40 has estimates 0, 21.74, 38.18
	// respectively by the three bottom-k AW-summaries."
	J := func(key string) bool { return key == "i2" || key == "i4" || key == "i6" }
	want := []float64{0, 21.739, 38.182}
	for k := 1; k <= 3; k++ {
		aw := BottomKRC(fig1BottomK(k), rank.IPPS)
		if got := aw.Estimate(J); math.Abs(got-want[k-1]) > 0.01 {
			t.Fatalf("k=%d: estimate(J) = %v, want %v", k, got, want[k-1])
		}
	}
}

func TestFigure1PoissonAdjustedWeights(t *testing.T) {
	// Poisson-τ with τ = k/82; the published sample is {i1} for k = 1, 2, 3
	// with a(i1) = 82, 41, 27.40 (the last rounded from 82/3 = 27.33).
	want := []float64{82, 41, 82.0 / 3}
	for k := 1; k <= 3; k++ {
		tau := float64(k) / 82
		b := sketch.NewPoissonBuilder(tau)
		for i, key := range fig1Keys {
			b.Offer(key, fig1Ranks[i], fig1Weights[i])
		}
		aw := PoissonHT(b.Sketch(), rank.IPPS)
		if aw.Len() != 1 {
			t.Fatalf("k=%d: sample size %d", k, aw.Len())
		}
		if got := aw.AdjustedWeight("i1"); math.Abs(got-want[k-1]) > 1e-9 {
			t.Fatalf("k=%d: a(i1) = %v, want %v", k, got, want[k-1])
		}
		// J = {i2,i4,i6} estimates 0 with all three Poisson AW-summaries.
		J := func(key string) bool { return key == "i2" || key == "i4" || key == "i6" }
		if got := aw.Estimate(J); got != 0 {
			t.Fatalf("k=%d: estimate(J) = %v, want 0", k, got)
		}
	}
}

func TestFigure1PoissonInclusionProbabilities(t *testing.T) {
	// The published p(i) rows: k=1 → {0.24,0.12,0.15,0.24,0.12,0.12} etc.
	wantRows := [][]float64{
		{0.24, 0.12, 0.15, 0.24, 0.12, 0.12},
		{0.49, 0.24, 0.29, 0.49, 0.24, 0.24},
		{0.73, 0.37, 0.44, 0.73, 0.37, 0.37},
	}
	for k := 1; k <= 3; k++ {
		tau := float64(k) / 82
		for i, w := range fig1Weights {
			got := rank.IPPS.CDF(w, tau)
			if math.Abs(got-wantRows[k-1][i]) > 0.005 {
				t.Fatalf("k=%d: p(i%d) = %v, want %v", k, i+1, got, wantRows[k-1][i])
			}
		}
	}
}

// TestSubKeepsMinOnlyKeys regression-tests the Sub asymmetry bug: a key
// present only in the subtrahend must contribute its full negative
// adjusted weight (and its variance), not be silently dropped — dropping
// it biases every difference estimate upward.
func TestSubKeepsMinOnlyKeys(t *testing.T) {
	a := NewAWSummary(1)
	a.SetWithProb("both", 10, 0.5)
	b := NewAWSummary(2)
	b.SetWithProb("both", 4, 0.5)
	b.SetWithProb("only-in-b", 7, 0.25)
	d := Sub(a, b)
	if got := d.AdjustedWeight("both"); got != 6 {
		t.Fatalf("both diff = %v, want 6", got)
	}
	if got := d.AdjustedWeight("only-in-b"); got != -7 {
		t.Fatalf("b-only key diff = %v, want -7 (was silently dropped before the fix)", got)
	}
	if got := d.Estimate(nil); got != -1 {
		t.Fatalf("Estimate = %v, want -1", got)
	}
	if got := d.VarianceOf("only-in-b"); got != 7*7*(1-0.25) {
		t.Fatalf("b-only variance = %v, want %v", got, 7*7*(1-0.25))
	}
}

// TestEstimateDeterministicAndCompensated checks both halves of the
// deterministic-summation fix: repeated evaluation is bit-identical (the
// old map-order iteration wobbled in the last ulp), and the Neumaier
// compensation survives catastrophic cancellation that plain sorted-order
// summation gets wrong.
func TestEstimateDeterministicAndCompensated(t *testing.T) {
	// Keys chosen so sorted order is (big, one, neg): a naive left-to-right
	// sum computes (1e16 + 1) - 1e16 = 0; the compensated sum returns 1.
	a := NewAWSummary(2)
	a.Set("a-big", 1e16)
	a.Set("b-one", 1)
	b := NewAWSummary(1)
	b.Set("c-neg", 1e16)
	d := Sub(a, b)
	if got := d.Estimate(nil); got != 1 {
		t.Fatalf("compensated sum = %v, want exactly 1", got)
	}

	// Bit-identical repeated evaluation on a large random summary.
	rng := rand.New(rand.NewSource(5))
	s := NewAWSummary(500)
	for i := 0; i < 500; i++ {
		s.SetWithProb("key-"+itoa(i), math.Exp(rng.NormFloat64()*8), 0.3+0.5*rng.Float64())
	}
	pred := func(key string) bool { return key[len(key)-1] != '7' }
	scale := func(string) float64 { return 1.0 / 3 }
	e0 := s.Estimate(pred)
	w0, se0 := s.EstimateWithStdErr(pred)
	sc0 := s.EstimateScaled(pred, scale)
	for trial := 0; trial < 50; trial++ {
		if e := s.Estimate(pred); e != e0 {
			t.Fatalf("Estimate wobbled: %v != %v", e, e0)
		}
		if w, se := s.EstimateWithStdErr(pred); w != w0 || se != se0 {
			t.Fatalf("EstimateWithStdErr wobbled")
		}
		if sc := s.EstimateScaled(pred, scale); sc != sc0 {
			t.Fatalf("EstimateScaled wobbled")
		}
	}
}

package estimate

import (
	"math"

	"coordsample/internal/rank"
)

// Obs is what one assignment's sketch reveals about one union key: the
// sampled weight and rank when the key is in that sketch (In), and the
// inclusion-conditioning threshold either way — r_k(I∖{key}) for bottom-k
// sketches, τ for Poisson sketches. The threshold is the raw material every
// estimator family conditions on: it is fixed on the rank-conditioning
// subspace Ω(key, r^(−key)), so F_w(threshold) is a per-assignment
// inclusion probability.
type Obs struct {
	Weight    float64
	Rank      float64
	Threshold float64
	In        bool
}

// KeyRow is the cross-assignment sample view of one union key: one Obs per
// viewed assignment, in view order (parallel to SampleView.Assignments).
type KeyRow struct {
	Key string
	Obs []Obs
}

// SampleView is the reusable cross-assignment sample view of a dispersed
// summary restricted to an assignment subset R: for every key in the union
// of R's sketches, the per-assignment weights, ranks, and inclusion
// thresholds. It is the seam between sample assembly and estimation — the
// raw material both the AW estimator family (s-set/l-set templates,
// Section 7 of the paper) and the discarded-samples family (arXiv:0903.0625)
// consume, assembled once and shared by every estimator run over the same
// (summary, R) pair.
//
// Rows are in ascending key order; Obs slices are in R order (the caller's
// subset order, not necessarily ascending assignment index).
type SampleView struct {
	assigner rank.Assigner
	r        []int
	rows     []KeyRow
}

// View assembles the cross-assignment sample view over the assignment
// subset R (nil means all assignments). The view is immutable; estimators
// only read it.
func (d *Dispersed) View(R []int) *SampleView {
	R = d.checkR(R)
	keys := d.unionKeys(R)
	rows := make([]KeyRow, len(keys))
	obs := make([]Obs, len(keys)*len(R)) // one backing array for all rows
	for i, key := range keys {
		row := obs[i*len(R) : (i+1)*len(R) : (i+1)*len(R)]
		for j, b := range R {
			s := d.sketches[b]
			o := Obs{Threshold: s.RankExcluding(key), Rank: math.Inf(1)}
			if e, ok := s.Lookup(key); ok {
				o.Weight, o.Rank, o.In = e.Weight, e.Rank, true
			}
			row[j] = o
		}
		rows[i] = KeyRow{Key: key, Obs: row}
	}
	return &SampleView{assigner: d.assigner, r: R, rows: rows}
}

// Assignments returns the viewed assignment subset, in view order. The
// slice is shared; callers must not modify it.
func (v *SampleView) Assignments() []int { return v.r }

// NumAssignments returns |R|, the width of every row.
func (v *SampleView) NumAssignments() int { return len(v.r) }

// Rows returns the per-key rows in ascending key order. The slice is
// shared; callers must not modify it.
func (v *SampleView) Rows() []KeyRow { return v.rows }

// Assigner returns the rank assigner the viewed sketches were built with.
func (v *SampleView) Assigner() rank.Assigner { return v.assigner }

// Seed01 returns the known seed u^(b)(key) for the assignment at view
// position j — the hash-derived value the l-set certificates compare
// against (seeds are always known here, which is what enables the
// known-seeds estimators for every key, sampled or not).
func (v *SampleView) Seed01(key string, j int) float64 {
	return v.assigner.Seed01(key, v.r[j])
}

// MinThreshold returns min_j row.Obs[j].Threshold — r^(minR)_k(I∖{key}),
// the union-sketch conditioning value of the s-set templates.
func (row KeyRow) MinThreshold() float64 {
	m := math.Inf(1)
	for _, o := range row.Obs {
		if o.Threshold < m {
			m = o.Threshold
		}
	}
	return m
}

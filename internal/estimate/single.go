package estimate

import (
	"coordsample/internal/hashing"
	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

// BottomKRC computes the Rank-Conditioning adjusted weights for a bottom-k
// sketch of a single weight assignment (Section 3): each sampled key gets
// a(i) = w(i)/F_{w(i)}(r_{k+1}(I)). With IPPS ranks this is the priority
// sampling estimator; its sum of per-key variances is at most that of a HT
// estimator on a Poisson sketch of expected size k+1.
func BottomKRC(s *sketch.BottomK, family rank.Family) AWSummary {
	out := NewAWSummary(s.Size())
	tau := s.Threshold()
	for _, e := range s.Entries() {
		p := family.CDF(e.Weight, tau)
		if p > 0 {
			out.SetWithProb(e.Key, e.Weight/p, p)
		}
	}
	return out.finalized()
}

// PoissonHT computes the Horvitz–Thompson adjusted weights for a Poisson-τ
// sketch (Section 3): a(i) = w(i)/F_{w(i)}(τ). With IPPS ranks these
// minimize ΣVAR[a(i)] among all AW-summaries of the same expected size.
func PoissonHT(s *sketch.Poisson, family rank.Family) AWSummary {
	out := NewAWSummary(s.Size())
	tau := s.Tau()
	for _, e := range s.Entries() {
		p := family.CDF(e.Weight, tau)
		if p > 0 {
			out.SetWithProb(e.Key, e.Weight/p, p)
		}
	}
	return out.finalized()
}

// clampP guards an inclusion probability against floating-point drift.
func clampP(p float64) float64 { return hashing.Clamp01(p) }

package estimate

import (
	"fmt"
	"math"
	"slices"

	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

// AssignmentSketch is the per-assignment view the multiple-assignment
// estimators need: key membership with rank and weight, the list of sampled
// entries, and the rank-conditioning threshold. Both bottom-k sketches
// (threshold r_k(I∖{i}), Section 7) and Poisson sketches (threshold τ,
// independent of the key) satisfy it, so one estimator implementation
// covers both sample formats.
type AssignmentSketch interface {
	// Lookup returns the sampled entry for key, if present.
	Lookup(key string) (sketch.Entry, bool)
	// Entries returns the sampled entries in ascending rank order.
	Entries() []sketch.Entry
	// RankExcluding returns the conditioning threshold for key: the value
	// that key's rank is compared against for inclusion, constant on the
	// rank-conditioning subspace Ω(key, r^(−key)).
	RankExcluding(key string) float64
}

// Dispersed is a summary of dispersed-weights data (Section 7): one sketch
// per weight assignment, where assignment b's sketch was built independently
// of all other assignments using the shared rank Assigner. The weight
// w^(b)(i) is known only when i is in the sketch of b.
type Dispersed struct {
	assigner rank.Assigner
	sketches []AssignmentSketch
}

// NewDispersed combines per-assignment bottom-k sketches built with assigner
// into a dispersed summary. sketches[b] must have been built from the ranks
// assigner.Rank(key, b, w^(b)(key)). The sketches may have different sizes
// k^(b) (the paper notes the derivations extend to bottom-k^(b) sketches).
func NewDispersed(assigner rank.Assigner, sketches []*sketch.BottomK) *Dispersed {
	views := make([]AssignmentSketch, len(sketches))
	for b, s := range sketches {
		views[b] = s
	}
	return NewDispersedFromSketches(assigner, views)
}

// NewDispersedPoisson combines per-assignment Poisson sketches into a
// dispersed summary; thresholds τ^(b) may differ per assignment.
func NewDispersedPoisson(assigner rank.Assigner, sketches []*sketch.Poisson) *Dispersed {
	views := make([]AssignmentSketch, len(sketches))
	for b, s := range sketches {
		views[b] = s
	}
	return NewDispersedFromSketches(assigner, views)
}

// NewDispersedFromSketches combines arbitrary per-assignment sketch views.
func NewDispersedFromSketches(assigner rank.Assigner, sketches []AssignmentSketch) *Dispersed {
	if len(sketches) == 0 {
		panic("estimate: dispersed summary needs at least one sketch")
	}
	return &Dispersed{assigner: assigner, sketches: sketches}
}

// NumAssignments returns |W|.
func (d *Dispersed) NumAssignments() int { return len(d.sketches) }

// Assigner returns the rank assigner the sketches were built with.
func (d *Dispersed) Assigner() rank.Assigner { return d.assigner }

// Sketch returns the embedded bottom-k sketch of assignment b.
func (d *Dispersed) Sketch(b int) AssignmentSketch { return d.sketches[b] }

// DistinctKeys returns the number of distinct keys across the sketches of
// the assignments in R (nil means all) — the summary's storage footprint.
func (d *Dispersed) DistinctKeys(R []int) int {
	return len(d.unionKeys(R))
}

// unionKeys returns the sorted distinct keys in the sketches of R.
func (d *Dispersed) unionKeys(R []int) []string {
	if R == nil {
		R = d.allR()
	}
	set := make(map[string]bool)
	for _, b := range R {
		for _, e := range d.sketches[b].Entries() {
			set[e.Key] = true
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

func (d *Dispersed) allR() []int {
	R := make([]int, len(d.sketches))
	for b := range R {
		R[b] = b
	}
	return R
}

// Single returns the plain single-assignment adjusted weights for
// assignment b, using only the embedded sketch of b: the RC estimator for
// bottom-k sketches, the HT estimator for Poisson sketches (the threshold is
// r_{k+1}(I) resp. τ in both cases).
func (d *Dispersed) Single(b int) AWSummary {
	return awSingle(d.View([]int{b}))
}

// TopLFunc evaluates a top-ℓ dependent aggregate f(w^(top-ℓ R), b^(top-ℓ R))
// (Definition 7.1): weights holds the identified ℓ largest weights of the key
// in descending order, assignments the corresponding assignment indexes. The
// returned value must be nonnegative and must be zero whenever the ℓ-th
// largest weight is zero.
type TopLFunc func(weights []float64, assignments []int) float64

// topLMax, topLMin pick the extreme of the identified top-ℓ weights. With
// ℓ keys identified, topLMin is both the min estimator (ℓ = |R|) and the
// ℓ-th-largest estimator — LthLargest reuses it rather than re-deriving
// the same closure.
func topLMax(w []float64, _ []int) float64 { return w[0] }
func topLMin(w []float64, _ []int) float64 { return w[len(w)-1] }

// Max returns the adjusted weights for f = w^(maxR) (nil R means all
// assignments). For consistent ranks this is the s-set = l-set estimator of
// Eq. (11); for independent ranks it is the known-seeds l-set estimator with
// ℓ = 1 — an extension enabled by hash-derived (hence always known) seeds.
func (d *Dispersed) Max(R []int) AWSummary {
	if d.assigner.Mode.Consistent() {
		return d.SSetTopL(R, 1, topLMax)
	}
	return d.LSetTopL(R, 1, topLMax)
}

// MinSSet returns the s-set estimator for f = w^(minR) (Eq. 12). Defined for
// both consistent and independent ranks (min-dependence needs no top-ℓ
// identification).
func (d *Dispersed) MinSSet(R []int) AWSummary {
	if R == nil {
		R = d.allR()
	}
	return d.SSetTopL(R, len(R), topLMin)
}

// MinLSet returns the l-set estimator for f = w^(minR) (Eq. 15 for
// shared-seed, Eq. 16 for independent ranks). It dominates MinSSet
// (Lemma 5.1): its selection is strictly more inclusive.
func (d *Dispersed) MinLSet(R []int) AWSummary {
	if R == nil {
		R = d.allR()
	}
	return d.LSetTopL(R, len(R), topLMin)
}

// RangeSSet returns a^(L1 R) = a^(maxR) − a^(minR) (Eq. 17) with the s-set
// min estimator. Nonnegative for consistent ranks (Lemma 7.5).
func (d *Dispersed) RangeSSet(R []int) AWSummary {
	return Sub(d.Max(R), d.MinSSet(R))
}

// RangeLSet returns a^(L1 R) = a^(maxR) − a^(minR) (Eq. 17) with the l-set
// min estimator.
func (d *Dispersed) RangeLSet(R []int) AWSummary {
	return Sub(d.Max(R), d.MinLSet(R))
}

// LthLargest returns the estimator for f = w^(ℓth-largest R) using the l-set
// selection (the tightest template estimator for this f).
func (d *Dispersed) LthLargest(R []int, l int) AWSummary {
	return d.LSetTopL(R, l, topLMin)
}

// SSetTopL applies the s-set template estimator (Section 7.1) for a top-ℓ
// dependent aggregate; see awSSetTopL for the estimator itself. The method
// assembles the sample view and delegates.
func (d *Dispersed) SSetTopL(R []int, l int, f TopLFunc) AWSummary {
	return awSSetTopL(d.View(R), l, f)
}

// LSetTopL applies the l-set template estimator (Section 7.2) for a top-ℓ
// dependent aggregate; see awLSetTopL for the estimator itself. The method
// assembles the sample view and delegates.
func (d *Dispersed) LSetTopL(R []int, l int, f TopLFunc) AWSummary {
	return awLSetTopL(d.View(R), l, f)
}

// JaccardSSet estimates the weighted Jaccard similarity
// Σ w^(minR) / Σ w^(maxR) of the assignments R over the selected
// subpopulation as the ratio of the min and max estimates.
//
// The result is clamped to [0, 1]: the ratio of two unbiased but noisy
// estimates can stray outside the range of the true quantity (and the
// s-set min summary is not a per-key subset of the max summary's values),
// while the true similarity never does. When the max estimate is
// nonpositive the subpopulation is empty in every assignment as far as
// the summary can tell, and the 0/0 case is defined — by convention, not
// by arithmetic — as 1: an empty subpopulation is identical to itself.
func (d *Dispersed) JaccardSSet(R []int, pred func(string) bool) float64 {
	mx := d.Max(R).Estimate(pred)
	if mx <= 0 {
		return 1
	}
	j := d.MinSSet(R).Estimate(pred) / mx
	if j < 0 {
		return 0
	}
	if j > 1 {
		return 1
	}
	return j
}

func (d *Dispersed) checkR(R []int) []int {
	if R == nil {
		return d.allR()
	}
	if len(R) == 0 {
		panic("estimate: empty assignment subset R")
	}
	seen := make(map[int]bool, len(R))
	for _, b := range R {
		if b < 0 || b >= len(d.sketches) {
			panic(fmt.Sprintf("estimate: assignment %d out of range", b))
		}
		if seen[b] {
			panic(fmt.Sprintf("estimate: duplicate assignment %d in R", b))
		}
		seen[b] = true
	}
	return R
}

// UniformMin is the prior-work baseline of Section 9.2: coordinated
// *unweighted* sketches, where every positive weight was replaced by 1 for
// sampling and the true weight is carried as an attribute. sketches[b] must
// hold ranks drawn with unit weight and Entry.Weight set to the true
// w^(b)(i). The min estimator applies the ratio trick: selection is the
// s-set min-dependence selection, p = F_1(r^(minR)_k(I∖{i})), and
// a(i) = w^(minR)(i)/p. There is no unbiased max (or L1) analogue under
// general weights, which is precisely the gap the paper's weighted
// coordination closes.
func UniformMin(family rank.Family, sketches []*sketch.BottomK, R []int) AWSummary {
	if R == nil {
		R = make([]int, len(sketches))
		for b := range R {
			R[b] = b
		}
	}
	set := make(map[string]bool)
	for _, b := range R {
		for _, e := range sketches[b].Entries() {
			set[e.Key] = true
		}
	}
	out := NewAWSummary(0)
	for key := range set {
		rMinK := math.Inf(1)
		for _, b := range R {
			if t := sketches[b].RankExcluding(key); t < rMinK {
				rMinK = t
			}
		}
		minW := math.Inf(1)
		ok := true
		for _, b := range R {
			e, in := sketches[b].Lookup(key)
			if !in || !(e.Rank < rMinK) {
				ok = false
				break
			}
			if e.Weight < minW {
				minW = e.Weight
			}
		}
		if !ok {
			continue
		}
		p := family.CDF(1, rMinK)
		if p > 0 && minW > 0 {
			out.SetWithProb(key, minW/clampP(p), clampP(p))
		}
	}
	return out.finalized()
}

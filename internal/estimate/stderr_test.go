package estimate

import (
	"math"
	"math/rand"
	"testing"

	"coordsample/internal/rank"
)

// TestVarianceEstimatorUnbiased: the per-key variance estimator a²(1−p)
// recorded by SetWithProb must average to the true variance of the query
// estimate across runs.
func TestVarianceEstimatorUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	keys, cols := testData(80, rng)
	truth := truthOf(keys, cols, func(v []float64) float64 { return v[0] })
	const k = 15
	const runs = 3000

	var sumEst, sumEstSq, sumVarHat float64
	for run := 0; run < runs; run++ {
		a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: uint64(run) + 1}
		d := buildDispersed(a, k, keys, cols)
		est, se := d.Single(0).EstimateWithStdErr(nil)
		sumEst += est
		sumEstSq += est * est
		sumVarHat += se * se
	}
	n := float64(runs)
	empVar := sumEstSq/n - (sumEst/n)*(sumEst/n)
	meanVarHat := sumVarHat / n
	if math.Abs(meanVarHat-empVar) > 0.2*empVar {
		t.Fatalf("mean variance estimate %v vs empirical variance %v (truth %v)", meanVarHat, empVar, truth)
	}
}

// TestStdErrCoverage: the ±2·SE interval should cover the truth in roughly
// 95% of runs for the max estimator; assert a conservative ≥ 80%.
func TestStdErrCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	keys, cols := testData(100, rng)
	vec := make([]float64, len(cols))
	truth := 0.0
	for i := range keys {
		for b := range cols {
			vec[b] = cols[b][i]
		}
		m := vec[0]
		for _, w := range vec[1:] {
			if w > m {
				m = w
			}
		}
		truth += m
	}
	const runs = 400
	covered := 0
	for run := 0; run < runs; run++ {
		a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: uint64(run) + 1}
		d := buildDispersed(a, 20, keys, cols)
		est, se := d.Max(nil).EstimateWithStdErr(nil)
		if math.Abs(est-truth) <= 2*se {
			covered++
		}
	}
	if frac := float64(covered) / runs; frac < 0.80 {
		t.Fatalf("2σ coverage %v below 0.80", frac)
	}
}

// TestStdErrConservativeForL1: the Sub-propagated variance is an upper
// bound, so L1 coverage should be at least as high as for max.
func TestStdErrConservativeForL1(t *testing.T) {
	rng := rand.New(rand.NewSource(227))
	keys, cols := testData(100, rng)
	vec := make([]float64, len(cols))
	truth := 0.0
	for i := range keys {
		for b := range cols {
			vec[b] = cols[b][i]
		}
		mx, mn := vec[0], vec[0]
		for _, w := range vec[1:] {
			if w > mx {
				mx = w
			}
			if w < mn {
				mn = w
			}
		}
		truth += mx - mn
	}
	const runs = 400
	covered := 0
	var sumVarHat, sumEst, sumEstSq float64
	for run := 0; run < runs; run++ {
		a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: uint64(run) + 1}
		d := buildDispersed(a, 20, keys, cols)
		est, se := d.RangeLSet(nil).EstimateWithStdErr(nil)
		if math.Abs(est-truth) <= 2*se {
			covered++
		}
		sumEst += est
		sumEstSq += est * est
		sumVarHat += se * se
	}
	if frac := float64(covered) / runs; frac < 0.85 {
		t.Fatalf("conservative 2σ coverage %v below 0.85", frac)
	}
	// Conservativeness: mean variance estimate at or above empirical.
	n := float64(runs)
	empVar := sumEstSq/n - (sumEst/n)*(sumEst/n)
	if sumVarHat/n < 0.8*empVar {
		t.Fatalf("L1 variance estimate %v not conservative vs empirical %v", sumVarHat/n, empVar)
	}
}

func TestVarianceZeroWhenCertain(t *testing.T) {
	rng := rand.New(rand.NewSource(229))
	keys, cols := testData(20, rng)
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 5}
	d := buildDispersed(a, 50, keys, cols) // k ≥ |I| ⇒ p = 1 everywhere
	if _, se := d.Max(nil).EstimateWithStdErr(nil); se != 0 {
		t.Fatalf("full-coverage standard error = %v, want 0", se)
	}
}

func TestVarianceOfAccessor(t *testing.T) {
	s := NewAWSummary(2)
	s.SetWithProb("a", 10, 0.5)
	s.SetWithProb("b", 3, 1.0) // certain: no variance entry
	s.Set("c", 2)              // no probability tracked
	if got := s.VarianceOf("a"); got != 100*0.5 {
		t.Fatalf("VarianceOf(a) = %v, want 50", got)
	}
	if s.VarianceOf("b") != 0 || s.VarianceOf("c") != 0 || s.VarianceOf("zz") != 0 {
		t.Fatal("unexpected variance entries")
	}
	est, se := s.EstimateWithStdErr(nil)
	if est != 15 || math.Abs(se-math.Sqrt(50)) > 1e-12 {
		t.Fatalf("EstimateWithStdErr = %v, %v", est, se)
	}
}

func TestTopKeys(t *testing.T) {
	s := NewAWSummary(4)
	s.Set("low", 1)
	s.Set("high", 100)
	s.Set("mid", 10)
	s.Set("tie", 10)
	top := s.TopKeys(3)
	if len(top) != 3 || top[0] != "high" {
		t.Fatalf("TopKeys = %v", top)
	}
	// Deterministic tiebreak by key name.
	if top[1] != "mid" || top[2] != "tie" {
		t.Fatalf("TopKeys tiebreak = %v", top)
	}
	if got := s.TopKeys(10); len(got) != 4 {
		t.Fatalf("TopKeys over-length = %v", got)
	}
}

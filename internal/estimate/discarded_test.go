package estimate

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"coordsample/internal/dataset"
	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

// TestGridUnbiasednessTotalsSharedSeed integrates the adjusted total and
// pair-L1 weight of a target key over its shared seed u on a fine grid,
// holding all other ranks fixed — exact integration over the
// rank-conditioning subspace, as in TestGridUnbiasednessSharedSeed. Both
// the union-threshold and per-sketch-threshold (discarded-samples) totals
// must integrate to w1+w2, and the discarded pair L1 to |w1−w2|. The same
// grid validates the explicit variance estimator: the integral of v̂ must
// match the integral of a² minus f² (Var[a] on the subspace), and the
// discarded total's variance must not exceed the union total's (uniform
// dominance under shared seed).
func TestGridUnbiasednessTotalsSharedSeed(t *testing.T) {
	keys := []string{"X", "A", "B", "C", "D"}
	cols := [][]float64{
		{6, 10, 5, 2, 0},
		{3, 0, 5, 8, 4},
	}
	otherU := []float64{0.9, 0.55, 0.3, 0.7}
	const k = 2
	const N = 20000
	const wantTotal, wantL1 = 9.0, 3.0

	for _, family := range []rank.Family{rank.IPPS, rank.EXP} {
		var sumU, sumD, sumL1 float64
		var sqU, sqD, varU, varD float64
		for step := 0; step < N; step++ {
			u := (float64(step) + 0.5) / N
			sketches := make([]*sketch.BottomK, len(cols))
			for b := range cols {
				bld := sketch.NewBottomKBuilder(k)
				bld.Offer("X", family.Quantile(cols[b][0], u), cols[b][0])
				for j, key := range keys[1:] {
					bld.Offer(key, family.Quantile(cols[b][j+1], otherU[j]), cols[b][j+1])
				}
				sketches[b] = bld.Sketch()
			}
			d := NewDispersed(rank.Assigner{Family: family, Mode: rank.SharedSeed, Seed: 1}, sketches)
			tu := d.TotalUnion(nil)
			td := d.TotalDiscarded(nil)
			au, ad := tu.AdjustedWeight("X"), td.AdjustedWeight("X")
			sumU += au
			sumD += ad
			sqU += au * au
			sqD += ad * ad
			varU += tu.VarianceOf("X")
			varD += td.VarianceOf("X")
			sumL1 += d.RangeDiscarded(nil).AdjustedWeight("X")
		}
		check := func(name string, got, want float64) {
			t.Helper()
			if math.Abs(got-want) > 0.01*math.Abs(want)+1e-6 {
				t.Fatalf("%v/%s: integral = %v, want %v", family, name, got, want)
			}
		}
		check("total-union", sumU/N, wantTotal)
		check("total-discarded", sumD/N, wantTotal)
		check("L1-discarded", sumL1/N, wantL1)
		// E[v̂] = Var[a] = E[a²] − f² on the conditioning subspace. The
		// second moments are exact grid integrals of the same estimator, so
		// a tight relative tolerance applies.
		check("vhat-union", varU/N, sqU/N-wantTotal*wantTotal)
		check("vhat-discarded", varD/N, sqD/N-wantTotal*wantTotal)
		if varD > varU*(1+1e-9) {
			t.Fatalf("%v: discarded total variance %v exceeds union %v (dominance violated)",
				family, varD/N, varU/N)
		}
	}
}

// TestGridUnbiasednessTotalsIndependent repeats the exact-integration test
// over the 2-D seed grid of the target key under independent ranks.
func TestGridUnbiasednessTotalsIndependent(t *testing.T) {
	keys := []string{"X", "A", "B", "C", "D"}
	cols := [][]float64{
		{6, 10, 5, 2, 0},
		{3, 0, 5, 8, 4},
	}
	otherU := [][]float64{
		{0.9, 0.55, 0.3, 0.7},
		{0.2, 0.85, 0.6, 0.45},
	}
	const k = 2
	const N = 300
	family := rank.IPPS

	var sumU, sumD, sumL1, sqD, varD float64
	for s1 := 0; s1 < N; s1++ {
		u1 := (float64(s1) + 0.5) / N
		bld0 := sketch.NewBottomKBuilder(k)
		bld0.Offer("X", family.Quantile(cols[0][0], u1), cols[0][0])
		for j, key := range keys[1:] {
			bld0.Offer(key, family.Quantile(cols[0][j+1], otherU[0][j]), cols[0][j+1])
		}
		s0 := bld0.Sketch()
		for s2 := 0; s2 < N; s2++ {
			u2 := (float64(s2) + 0.5) / N
			bld1 := sketch.NewBottomKBuilder(k)
			bld1.Offer("X", family.Quantile(cols[1][0], u2), cols[1][0])
			for j, key := range keys[1:] {
				bld1.Offer(key, family.Quantile(cols[1][j+1], otherU[1][j]), cols[1][j+1])
			}
			d := NewDispersed(rank.Assigner{Family: family, Mode: rank.Independent, Seed: 1},
				[]*sketch.BottomK{s0, bld1.Sketch()})
			sumU += d.TotalUnion(nil).AdjustedWeight("X")
			td := d.TotalDiscarded(nil)
			ad := td.AdjustedWeight("X")
			sumD += ad
			sqD += ad * ad
			varD += td.VarianceOf("X")
			sumL1 += d.RangeDiscarded(nil).AdjustedWeight("X")
		}
	}
	total := float64(N * N)
	check := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 0.05*math.Abs(want)+1e-6 {
			t.Fatalf("independent/%s: integral = %v, want %v", name, got, want)
		}
	}
	check("total-union", sumU/total, 9)
	check("total-discarded", sumD/total, 9)
	check("L1-discarded", sumL1/total, 3)
	check("vhat-discarded", varD/total, sqD/total-81)
}

// TestGridTotalsPartialSupport pins the partial-support case the paper's
// top-ℓ templates cannot express: a key with weight in only one of the two
// assignments still has a positive total and L1, and both total estimators
// must remain unbiased for it (its missing part contributes a correct zero,
// not a discarded key).
func TestGridTotalsPartialSupport(t *testing.T) {
	keys := []string{"X", "A", "B", "C", "D"}
	cols := [][]float64{
		{6, 10, 5, 2, 0},
		{0, 0, 5, 8, 4}, // X has no weight in assignment 1
	}
	otherU := []float64{0.9, 0.55, 0.3, 0.7}
	const k = 2
	const N = 20000

	for _, family := range []rank.Family{rank.IPPS, rank.EXP} {
		var sumU, sumD, sumL1 float64
		for step := 0; step < N; step++ {
			u := (float64(step) + 0.5) / N
			sketches := make([]*sketch.BottomK, len(cols))
			for b := range cols {
				bld := sketch.NewBottomKBuilder(k)
				bld.Offer("X", family.Quantile(cols[b][0], u), cols[b][0])
				for j, key := range keys[1:] {
					bld.Offer(key, family.Quantile(cols[b][j+1], otherU[j]), cols[b][j+1])
				}
				sketches[b] = bld.Sketch()
			}
			d := NewDispersed(rank.Assigner{Family: family, Mode: rank.SharedSeed, Seed: 1}, sketches)
			sumU += d.TotalUnion(nil).AdjustedWeight("X")
			sumD += d.TotalDiscarded(nil).AdjustedWeight("X")
			sumL1 += d.RangeDiscarded(nil).AdjustedWeight("X")
		}
		check := func(name string, got, want float64) {
			t.Helper()
			if math.Abs(got-want) > 0.01*want+1e-6 {
				t.Fatalf("%v/%s: integral = %v, want %v", family, name, got, want)
			}
		}
		check("total-union", sumU/N, 6)
		check("total-discarded", sumD/N, 6)
		check("L1-discarded", sumL1/N, 6)
	}
}

// disjointData builds a two-assignment data set with strongly disjoint
// supports — the regime where the per-sketch thresholds differ most from
// the union threshold and the discarded samples carry the most information:
// 40% of keys live only in assignment 0, 40% only in assignment 1, 20% in
// both, with lognormal weights.
func disjointData(n int, rng *rand.Rand) ([]string, [][]float64) {
	keys := make([]string, n)
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	for i := range keys {
		keys[i] = "key-" + itoa(i)
		w := math.Exp(rng.NormFloat64())
		switch {
		case i%5 < 2:
			cols[0][i] = w
		case i%5 < 4:
			cols[1][i] = w
		default:
			cols[0][i] = w
			cols[1][i] = w * (0.5 + rng.Float64())
		}
	}
	return keys, cols
}

// TestMonteCarloTotalsSharedSeed runs the full hashing pipeline over many
// independent hash seeds: both totals, the discarded pair L1, and a
// predicate-restricted total must be unbiased for shared-seed ranks.
func TestMonteCarloTotalsSharedSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	keys, cols := testData(60, rng)
	R := []int{0, 1, 2}
	pair := []int{0, 2}
	const k = 15
	const trials = 2500

	pred := func(key string) bool { return len(key) > 0 && (key[len(key)-1]-'0')%2 == 0 }
	predTruth := 0.0
	for i, key := range keys {
		if pred(key) {
			predTruth += cols[0][i] + cols[1][i] + cols[2][i]
		}
	}
	cases := []struct {
		name  string
		truth float64
		est   func(d *Dispersed) float64
	}{
		{"total-union", truthOf(keys, cols, func(v []float64) float64 { return dataset.SumR(v, nil) }),
			func(d *Dispersed) float64 { return d.TotalUnion(R).Estimate(nil) }},
		{"total-discarded", truthOf(keys, cols, func(v []float64) float64 { return dataset.SumR(v, nil) }),
			func(d *Dispersed) float64 { return d.TotalDiscarded(R).Estimate(nil) }},
		{"total-discarded-pred", predTruth,
			func(d *Dispersed) float64 { return d.TotalDiscarded(R).Estimate(pred) }},
		{"L1-discarded-pair", truthOf(keys, cols, func(v []float64) float64 { return dataset.RangeR(v, pair) }),
			func(d *Dispersed) float64 { return d.RangeDiscarded(pair).Estimate(nil) }},
	}
	for _, family := range []rank.Family{rank.IPPS, rank.EXP} {
		for _, c := range cases {
			c := c
			runMonteCarlo(t, family.String()+"/"+c.name, trials, c.truth, func(seed uint64) float64 {
				a := rank.Assigner{Family: family, Mode: rank.SharedSeed, Seed: seed}
				return c.est(buildDispersed(a, k, keys, cols))
			})
		}
	}
}

// TestMonteCarloTotalsIndependent repeats the pipeline unbiasedness checks
// for independent ranks.
func TestMonteCarloTotalsIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	keys, cols := testData(60, rng)
	R := []int{0, 1, 2}
	pair := []int{1, 2}
	const k = 25
	const trials = 2500

	cases := []struct {
		name  string
		truth float64
		est   func(d *Dispersed) float64
	}{
		{"total-union", truthOf(keys, cols, func(v []float64) float64 { return dataset.SumR(v, nil) }),
			func(d *Dispersed) float64 { return d.TotalUnion(R).Estimate(nil) }},
		{"total-discarded", truthOf(keys, cols, func(v []float64) float64 { return dataset.SumR(v, nil) }),
			func(d *Dispersed) float64 { return d.TotalDiscarded(R).Estimate(nil) }},
		{"L1-discarded-pair", truthOf(keys, cols, func(v []float64) float64 { return dataset.RangeR(v, pair) }),
			func(d *Dispersed) float64 { return d.RangeDiscarded(pair).Estimate(nil) }},
	}
	for _, c := range cases {
		c := c
		runMonteCarlo(t, "independent/"+c.name, trials, c.truth, func(seed uint64) float64 {
			a := rank.Assigner{Family: rank.IPPS, Mode: rank.Independent, Seed: seed}
			return c.est(buildDispersed(a, k, keys, cols))
		})
	}
}

// TestDiscardedDominatesUnion measures the paired mean squared error of the
// two total estimators across hash seeds on disjoint-support data — the
// empirical form of the shared-seed dominance argument in discarded.go. The
// discarded estimator must achieve a strictly lower MSE, and the reported
// per-key variance estimates must order the same way.
func TestDiscardedDominatesUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	keys, cols := disjointData(80, rng)
	truth := truthOf(keys, cols, func(v []float64) float64 { return dataset.SumR(v, nil) })
	const k = 12
	const trials = 800

	for _, mode := range []rank.Coordination{rank.SharedSeed, rank.Independent} {
		var mseU, mseD, varU, varD float64
		for trial := 0; trial < trials; trial++ {
			a := rank.Assigner{Family: rank.IPPS, Mode: mode, Seed: uint64(trial) + 1}
			d := buildDispersed(a, k, keys, cols)
			tu, td := d.TotalUnion(nil), d.TotalDiscarded(nil)
			eu := tu.Estimate(nil) - truth
			ed := td.Estimate(nil) - truth
			mseU += eu * eu
			mseD += ed * ed
			_, seU := tu.EstimateWithStdErr(nil)
			_, seD := td.EstimateWithStdErr(nil)
			varU += seU * seU
			varD += seD * seD
		}
		if mseD >= mseU {
			t.Errorf("%v: discarded MSE %v not below union MSE %v on disjoint supports",
				mode, mseD/trials, mseU/trials)
		}
		if varD >= varU {
			t.Errorf("%v: discarded reported variance %v not below union %v",
				mode, varD/trials, varU/trials)
		}
		t.Logf("%v: MSE union %.4g discarded %.4g (ratio %.3f), reported var ratio %.3f",
			mode, mseU/trials, mseD/trials, mseD/mseU, varD/varU)
	}
}

// TestExactWhenKCoversSetDiscarded: when k covers every key, the sketches
// are lossless and every estimator must return the exact aggregate — the
// discarded family included. JaccardDiscarded must equal the exact weighted
// Jaccard similarity in that regime.
func TestExactWhenKCoversSetDiscarded(t *testing.T) {
	keys := []string{"a", "b", "c", "d", "e"}
	cols := [][]float64{
		{4, 0, 2, 7, 1},
		{2, 3, 2, 0, 5},
	}
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 9}
	d := buildDispersed(a, len(keys)+1, keys, cols)

	sumTruth := truthOf(keys, cols, func(v []float64) float64 { return dataset.SumR(v, nil) })
	l1Truth := truthOf(keys, cols, func(v []float64) float64 { return dataset.RangeR(v, nil) })
	minTruth := truthOf(keys, cols, func(v []float64) float64 { return dataset.MinR(v, nil) })
	maxTruth := truthOf(keys, cols, func(v []float64) float64 { return dataset.MaxR(v, nil) })

	if got := d.TotalDiscarded(nil).Estimate(nil); math.Abs(got-sumTruth) > 1e-9 {
		t.Errorf("total-discarded = %v, want %v", got, sumTruth)
	}
	if got := d.TotalUnion(nil).Estimate(nil); math.Abs(got-sumTruth) > 1e-9 {
		t.Errorf("total-union = %v, want %v", got, sumTruth)
	}
	if got := d.RangeDiscarded(nil).Estimate(nil); math.Abs(got-l1Truth) > 1e-9 {
		t.Errorf("L1-discarded = %v, want %v", got, l1Truth)
	}
	want := minTruth / maxTruth
	if got := d.JaccardDiscarded(nil, nil); math.Abs(got-want) > 1e-9 {
		t.Errorf("jaccard-discarded = %v, want %v", got, want)
	}
}

// summariesEqualBits compares two summaries for byte-exact equality of
// their keys, adjusted weights, and variance estimates.
func summariesEqualBits(a, b AWSummary) bool {
	if a.Len() != b.Len() {
		return false
	}
	for _, key := range a.Keys() {
		if math.Float64bits(a.AdjustedWeight(key)) != math.Float64bits(b.AdjustedWeight(key)) {
			return false
		}
		if math.Float64bits(a.VarianceOf(key)) != math.Float64bits(b.VarianceOf(key)) {
			return false
		}
	}
	return true
}

// TestEstimatorFamilyDispatch pins the estimator families to the Dispersed
// methods they dispatch to, bit for bit, and the discarded family to the
// classic one on the kinds where the l-set estimators are already optimal.
func TestEstimatorFamilyDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys, cols := testData(50, rng)
	a := rank.Assigner{Family: rank.EXP, Mode: rank.SharedSeed, Seed: 0xD15C}
	d := buildDispersed(a, 10, keys, cols)
	pair := []int{0, 2}

	cases := []struct {
		name string
		est  Estimator
		f    AggFunc
		want AWSummary
	}{
		{"aw/single", AWEstimator, SingleOf(1), d.Single(1)},
		{"aw/max", AWEstimator, MaxOf(), d.Max(nil)},
		{"aw/min", AWEstimator, MinOf(pair...), d.MinLSet(pair)},
		{"aw/L1", AWEstimator, RangeOf(), d.RangeLSet(nil)},
		{"aw/lth", AWEstimator, LthLargestOf(2), d.LthLargest(nil, 2)},
		{"aw/total", AWEstimator, TotalOf(), d.TotalUnion(nil)},
		{"discarded/single", DiscardedEstimator, SingleOf(1), d.Single(1)},
		{"discarded/max", DiscardedEstimator, MaxOf(), d.Max(nil)},
		{"discarded/min", DiscardedEstimator, MinOf(), d.MinLSet(nil)},
		{"discarded/lth", DiscardedEstimator, LthLargestOf(2), d.LthLargest(nil, 2)},
		{"discarded/L1-pair", DiscardedEstimator, RangeOf(pair...), d.RangeDiscarded(pair)},
		{"discarded/L1-fallback", DiscardedEstimator, RangeOf(), d.RangeLSet(nil)},
		{"discarded/total", DiscardedEstimator, TotalOf(), d.TotalDiscarded(nil)},
	}
	for _, c := range cases {
		if got := c.est.Summary(d, c.f); !summariesEqualBits(got, c.want) {
			t.Errorf("%s: summary differs from the dispatched method", c.name)
		}
	}
}

// TestParseEstimator covers name resolution, the empty-string default, and
// the typed unknown-name error front ends dispatch on.
func TestParseEstimator(t *testing.T) {
	for name, want := range map[string]Estimator{
		"":          AWEstimator,
		"aw":        AWEstimator,
		"discarded": DiscardedEstimator,
	} {
		got, err := ParseEstimator(name)
		if err != nil || got != want {
			t.Errorf("ParseEstimator(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	_, err := ParseEstimator("bogus")
	var unknown *UnknownEstimatorError
	if !errors.As(err, &unknown) || unknown.Name != "bogus" {
		t.Fatalf("ParseEstimator(bogus) error = %v, want *UnknownEstimatorError", err)
	}
	if AWEstimator.Name() != "aw" || DiscardedEstimator.Name() != "discarded" {
		t.Fatalf("estimator names drifted: %q, %q", AWEstimator.Name(), DiscardedEstimator.Name())
	}
}

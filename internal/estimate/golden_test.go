package estimate

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"coordsample/internal/hashing"
	"coordsample/internal/rank"
)

// The golden corpus pins the exact bits of every AW-summary the estimator
// suite produces over fixed seeds. It was generated from the pre-refactor
// monolithic SSetTopL/LSetTopL combiners; the refactored estimators (sample
// view + pluggable Estimator) must reproduce every adjusted weight, every
// per-key variance estimate, and every Estimate(nil) sum bit-for-bit.
// Regenerate only for a deliberate, documented estimator change:
//
//	go test ./internal/estimate -run TestAWGoldens -update-goldens
var updateGoldens = flag.Bool("update-goldens", false, "rewrite testdata/aw_goldens.json from the current estimators")

// goldenSummary is the byte-exact serialization of one AW-summary: per-key
// IEEE-754 bits of the adjusted weight and the variance estimate, plus the
// bits of the deterministic full-population estimate.
type goldenSummary struct {
	Keys     map[string][2]string `json:"keys"` // key -> [weight bits, var bits] as %016x
	Estimate string               `json:"estimate"`
	StdErr   string               `json:"stderr"`
}

func summaryGolden(aw AWSummary) goldenSummary {
	g := goldenSummary{Keys: make(map[string][2]string, aw.Len())}
	for _, key := range aw.Keys() {
		g.Keys[key] = [2]string{
			fmt.Sprintf("%016x", math.Float64bits(aw.AdjustedWeight(key))),
			fmt.Sprintf("%016x", math.Float64bits(aw.VarianceOf(key))),
		}
	}
	est, se := aw.EstimateWithStdErr(nil)
	g.Estimate = fmt.Sprintf("%016x", math.Float64bits(est))
	g.StdErr = fmt.Sprintf("%016x", math.Float64bits(se))
	return g
}

// goldenDataset builds the fixed three-assignment corpus: 120 keys whose
// weights are a deterministic hash mix with heavy skew, zero weights, and
// partially disjoint supports — every structural case the estimators branch
// on (keys in all sketches, some sketches, one sketch; ties broken by key).
func goldenDataset() (keys []string, cols [][]float64) {
	const n, w = 120, 3
	cols = make([][]float64, w)
	for b := range cols {
		cols[b] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%03d", i)
		keys = append(keys, key)
		for b := 0; b < w; b++ {
			h := hashing.Hash64(uint64(b)+0xBEEF, key)
			u := hashing.Unit(h)
			switch {
			case b == 1 && i%5 == 0:
				// Disjoint-support slice: weight only in assignments 0 and 2.
				cols[b][i] = 0
			case b == 2 && i%7 == 0:
				cols[b][i] = 0
			case i%11 == 0:
				// Heavy keys: three orders of magnitude above the bulk.
				cols[b][i] = 1000 * (1 + u)
			default:
				cols[b][i] = 1 + 10*u
			}
		}
	}
	return keys, cols
}

// goldenAggregates enumerates every aggregate the estimator suite answers,
// as name -> builder over a dispersed summary.
func goldenAggregates(d *Dispersed) map[string]func() AWSummary {
	aggs := map[string]func() AWSummary{
		"single/0":   func() AWSummary { return d.Single(0) },
		"single/2":   func() AWSummary { return d.Single(2) },
		"max/all":    func() AWSummary { return d.Max(nil) },
		"max/01":     func() AWSummary { return d.Max([]int{0, 1}) },
		"minl/all":   func() AWSummary { return d.MinLSet(nil) },
		"minl/12":    func() AWSummary { return d.MinLSet([]int{1, 2}) },
		"mins/all":   func() AWSummary { return d.MinSSet(nil) },
		"rangel/all": func() AWSummary { return d.RangeLSet(nil) },
		"rangel/02":  func() AWSummary { return d.RangeLSet([]int{0, 2}) },
		"ranges/all": func() AWSummary { return d.RangeSSet(nil) },
	}
	if d.Assigner().Mode.Consistent() {
		// Top-ℓ identification with 1 < ℓ < |R| needs consistent ranks.
		aggs["lth2/all"] = func() AWSummary { return d.LthLargest(nil, 2) }
	}
	return aggs
}

// TestAWGoldens locks the AW estimator family to the pre-refactor bits:
// for every (family, mode, k) configuration and every aggregate, the
// produced summary must match testdata/aw_goldens.json byte for byte.
func TestAWGoldens(t *testing.T) {
	keys, cols := goldenDataset()
	got := make(map[string]goldenSummary)
	for _, family := range []rank.Family{rank.IPPS, rank.EXP} {
		for _, mode := range []rank.Coordination{rank.SharedSeed, rank.Independent} {
			for _, k := range []int{12, 48} {
				a := rank.Assigner{Family: family, Mode: mode, Seed: 0x5EED}
				d := buildDispersed(a, k, keys, cols)
				for name, build := range goldenAggregates(d) {
					id := fmt.Sprintf("%v/%v/k=%d/%s", family, mode, k, name)
					got[id] = summaryGolden(build())
				}
			}
		}
	}

	path := filepath.Join("testdata", "aw_goldens.json")
	if *updateGoldens {
		ids := make([]string, 0, len(got))
		for id := range got {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		ordered := make(map[string]goldenSummary, len(got))
		for _, id := range ids {
			ordered[id] = got[id]
		}
		data, err := json.MarshalIndent(ordered, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d goldens to %s", len(got), path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading goldens (regenerate with -update-goldens): %v", err)
	}
	var want map[string]goldenSummary
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden corpus has %d summaries, current code produced %d", len(want), len(got))
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			t.Errorf("%s: aggregate no longer produced", id)
			continue
		}
		if g.Estimate != w.Estimate {
			t.Errorf("%s: estimate bits %s, want %s", id, g.Estimate, w.Estimate)
		}
		if g.StdErr != w.StdErr {
			t.Errorf("%s: stderr bits %s, want %s", id, g.StdErr, w.StdErr)
		}
		if len(g.Keys) != len(w.Keys) {
			t.Errorf("%s: %d keys, want %d", id, len(g.Keys), len(w.Keys))
		}
		for key, wb := range w.Keys {
			gb, ok := g.Keys[key]
			if !ok {
				t.Errorf("%s: key %q missing from summary", id, key)
				continue
			}
			if gb != wb {
				t.Errorf("%s: key %q bits %v, want %v", id, key, gb, wb)
			}
		}
	}
}

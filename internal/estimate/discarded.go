package estimate

import (
	"coordsample/internal/rank"
)

// This file implements the discarded-samples estimators of "Leveraging
// Discarded Samples for Tighter Estimation of Multiple-Set Aggregates"
// (Cohen & Kaplan, arXiv:0903.0625) over the cross-assignment SampleView.
//
// The classic multiple-assignment estimators (Section 7 of the VLDB paper,
// awfamily.go) first derive a *union* sketch: every per-assignment
// observation is conditioned on the single union threshold
// rMinK = min_{b∈R} r^(b)_k(I∖{i}), and observations with rank above rMinK —
// samples that one sketch retained but the union conditioning discards —
// contribute nothing. The discarded-samples insight is that for aggregates
// that decompose into per-assignment parts, each part can instead be
// conditioned on its *own* sketch's threshold r^(b)_k(I∖{i}) ≥ rMinK,
// keeping every retained sample. Larger conditioning thresholds mean larger
// inclusion probabilities, and since Var[a_b] = w_b²(1/p_b − 1) is
// decreasing in p_b, every part's variance shrinks.
//
// Concretely, for the total f(i) = Σ_{b∈R} w^(b)(i):
//
//	classic   a(i) = Σ_b w_b·1{r^(b)(i) < rMinK} / F_{w_b}(rMinK)
//	discarded a(i) = Σ_b w_b·1{r^(b)(i) < T_b}   / F_{w_b}(T_b),  T_b = r^(b)_k(I∖{i})
//
// Both are unbiased (each part is a standard rank-conditioning estimator;
// linearity does the rest). Under shared-seed coordination the dominance is
// uniform, not just per part: with a single seed u the part indicators are
// nested intervals {u < p_b}, so
//
//	E[a²] = Σ_b Σ_b' w_b w_b' / max(p_b, p_b')
//
// which is monotone increasing as any p_b decreases — the discarded
// estimator's E[a²] is ≤ the classic one's on every dataset, with equality
// only when all thresholds coincide. Under independent ranks the parts are
// independent and the per-part variance reduction stands alone.
//
// For the extreme-value aggregates (max, min, ℓ-th largest) the l-set
// estimators of Section 7.2 already condition each observation on its own
// sketch's threshold — their determination region is exactly the
// discarded-samples one (for max under shared seed,
// F_w(min_b T_b) = min_b F_w(T_b), so the s-set and per-sketch regions even
// coincide). The discarded family therefore reuses the l-set estimators for
// those kinds; what it adds is the decomposition-based kinds below.
//
// For the pair L1 difference |w^(b1)(i) − w^(b2)(i)| the identity
// |x − y| = x + y − 2·min(x, y) turns the range into total − 2·min, whose
// total part benefits from per-sketch conditioning while the min part uses
// the (already optimal) l-set min — strictly tighter than max − min
// whenever the two thresholds differ (e.g. partially disjoint supports,
// where the classic max estimator pays the other sketch's lower threshold
// for keys the other assignment never saw). Per-key entries may be
// negative, exactly as documented for Sub; the estimate stays unbiased.

// totalThresholds selects how the per-assignment parts of a total are
// conditioned: the classic union threshold, or each sketch's own.
type totalThresholds int

const (
	unionThreshold totalThresholds = iota
	perSketchThresholds
)

// totalParts is the shared core of TotalUnion and TotalDiscarded: the
// per-assignment-part sum estimator for f(i) = Σ_{b∈R} w^(b)(i), with the
// part conditioning chosen by th.
//
// The per-key variance estimate is the unbiased
//
//	v̂(i) = a(i)² − Σ_b Σ_b' w_b w_b' · 1{both parts selected} / q_bb'
//
// where q_bb' = P[both parts selected] = min(p_b, p_b') under shared seed
// (nested intervals) and p_b·p_b' (b ≠ b', diagonal p_b) under independent
// ranks: E[v̂] = E[a²] − Σ_bb' w_b w_b' = Var[a]. It is pointwise
// nonnegative: a(i)² expands to Σ w_b w_b'/(p_b p_b') over selected pairs,
// and q_bb' ≥ p_b·p_b' in both modes (min(p_b,p_b') ≥ p_b·p_b' for
// probabilities), so each subtracted term is at most the matching term of
// a(i)². Under independent ranks the off-diagonal terms cancel exactly and
// v̂ reduces to the familiar Σ_b a_b²(1−p_b). A tiny negative from float
// rounding is clamped to zero.
func totalParts(v *SampleView, th totalThresholds) AWSummary {
	mode := v.assigner.Mode
	if mode != rank.SharedSeed && mode != rank.Independent {
		panic("estimate: total estimation requires shared-seed or independent ranks")
	}
	shared := mode == rank.SharedSeed
	family := v.assigner.Family
	type part struct{ w, p float64 }
	out := NewAWSummary(0)
	parts := make([]part, 0, v.NumAssignments())
	for _, row := range v.rows {
		rMinK := row.MinThreshold()
		parts = parts[:0]
		a := 0.0
		for _, o := range row.Obs {
			tau := o.Threshold
			if th == unionThreshold {
				tau = rMinK
			}
			if !o.In || !(o.Rank < tau) {
				continue
			}
			p := family.CDF(o.Weight, tau)
			if p <= 0 {
				continue
			}
			p = clampP(p)
			a += o.Weight / p
			parts = append(parts, part{o.Weight, p})
		}
		if len(parts) == 0 {
			continue
		}
		vhat := a * a
		for i, x := range parts {
			for j, y := range parts {
				// q = P[parts i and j both selected]: nested intervals under
				// shared seed; independent events otherwise, except that a
				// part always co-occurs with itself (q = p on the diagonal).
				q := x.p * y.p
				if shared {
					q = min(x.p, y.p)
				} else if i == j {
					q = x.p
				}
				vhat -= x.w * y.w / q
			}
		}
		if vhat < 0 {
			vhat = 0 // float rounding; the estimator is pointwise nonnegative
		}
		out.setWithVar(row.Key, a, vhat)
	}
	return out.finalized()
}

// TotalUnion returns the classic adjusted weights for the total
// f = w^(sumR): every per-assignment part is conditioned on the union
// threshold r^(minR)_k(I∖{i}), discarding samples whose rank exceeds it —
// the estimator implied by the VLDB paper's union-sketch derivations.
// Unbiased for both shared-seed and independent ranks.
func (d *Dispersed) TotalUnion(R []int) AWSummary {
	return totalParts(d.View(R), unionThreshold)
}

// TotalDiscarded returns the discarded-samples adjusted weights for the
// total f = w^(sumR) (arXiv:0903.0625): each per-assignment part is
// conditioned on its own sketch's threshold, keeping every retained sample.
// Unbiased, and under shared-seed coordination it dominates TotalUnion on
// every dataset (see the file comment for the E[a²] monotonicity argument).
func (d *Dispersed) TotalDiscarded(R []int) AWSummary {
	return totalParts(d.View(R), perSketchThresholds)
}

// RangeDiscarded returns the discarded-samples adjusted weights for the L1
// difference f = w^(L1 R). For a pair it applies
// |w^(b1)−w^(b2)| = w^(b1)+w^(b2) − 2·w^(min): the total part is the
// per-sketch-threshold TotalDiscarded and the min part the l-set min, so
// the combination is unbiased and tighter than max − min whenever the two
// conditioning thresholds differ. For |R| ≠ 2 the L1 range max − min does
// not decompose into per-assignment parts, and the estimator falls back to
// the l-set RangeLSet.
func (d *Dispersed) RangeDiscarded(R []int) AWSummary {
	R = d.checkR(R)
	if len(R) != 2 {
		return d.RangeLSet(R)
	}
	return subScaled(d.TotalDiscarded(R), d.MinLSet(R), 2)
}

// JaccardDiscarded estimates the weighted Jaccard similarity
// Σ w^(minR) / Σ w^(maxR) over the selected subpopulation. For a pair it
// uses Σ w^(maxR) = Σ w^(sumR) − Σ w^(minR) with the discarded-samples
// total in the denominator; for |R| ≠ 2 it falls back to the classic
// min/max ratio. Clamped to [0, 1] with the same 0/0 → 1 empty-
// subpopulation convention as JaccardSSet.
func (d *Dispersed) JaccardDiscarded(R []int, pred func(string) bool) float64 {
	R = d.checkR(R)
	mn := d.MinLSet(R).Estimate(pred)
	var mx float64
	if len(R) == 2 {
		mx = d.TotalDiscarded(R).Estimate(pred) - mn
	} else {
		mx = d.Max(R).Estimate(pred)
	}
	if mx <= 0 {
		return 1
	}
	j := mn / mx
	if j < 0 {
		return 0
	}
	if j > 1 {
		return 1
	}
	return j
}

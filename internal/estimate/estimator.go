package estimate

import "fmt"

// Estimator is a pluggable estimation strategy: a named family of
// estimators that turn a dispersed summary (through its cross-assignment
// SampleView) into the AW-summary of one aggregate. The two built-in
// families are AWEstimator (the VLDB paper's s-set/l-set template
// estimators) and DiscardedEstimator (arXiv:0903.0625's discarded-samples
// estimators); both are stateless and safe for concurrent use.
//
// Name is the family's stable identifier — it appears in query parameters
// (GET /query?est=...), CLI flags (-estimator), and memoization cache keys,
// so two distinct estimators must never share a name.
//
// Summary panics on structurally invalid input (out-of-range assignment,
// duplicate R, invalid ℓ), mirroring the Dispersed methods it dispatches
// to; front ends validate user-supplied parameters before calling it.
type Estimator interface {
	Name() string
	Summary(d *Dispersed, f AggFunc) AWSummary
}

// awFamily dispatches each aggregate kind to the classic template
// estimator the query front ends have always used: the l-set estimators
// for the extreme-value kinds (they dominate the s-set variants,
// Lemma 5.1) and the union-threshold part sum for totals.
type awFamily struct{}

func (awFamily) Name() string { return "aw" }

func (awFamily) Summary(d *Dispersed, f AggFunc) AWSummary {
	switch f.Kind {
	case Single:
		return d.Single(f.B)
	case Max:
		return d.Max(f.R)
	case Min:
		return d.MinLSet(f.R)
	case Range:
		return d.RangeLSet(f.R)
	case LthLargest:
		return d.LthLargest(f.R, f.L)
	case Total:
		return d.TotalUnion(f.R)
	}
	panic("estimate: unknown aggregate kind " + f.Kind.String())
}

// discardedFamily dispatches to the discarded-samples estimators where the
// aggregate decomposes into per-assignment parts (Total always, Range for
// pairs) and to the identical-in-value classic estimators elsewhere: the
// l-set extreme-value estimators already condition every observation on its
// own sketch's threshold, so for max/min/ℓ-th-largest and single-assignment
// sums there is nothing left to recover (see discarded.go).
type discardedFamily struct{}

func (discardedFamily) Name() string { return "discarded" }

func (discardedFamily) Summary(d *Dispersed, f AggFunc) AWSummary {
	switch f.Kind {
	case Single:
		return d.Single(f.B)
	case Max:
		return d.Max(f.R)
	case Min:
		return d.MinLSet(f.R)
	case Range:
		return d.RangeDiscarded(f.R)
	case LthLargest:
		return d.LthLargest(f.R, f.L)
	case Total:
		return d.TotalDiscarded(f.R)
	}
	panic("estimate: unknown aggregate kind " + f.Kind.String())
}

// AWEstimator and DiscardedEstimator are the two built-in estimator
// families, selectable end to end (library, CLIs, HTTP server).
var (
	AWEstimator        Estimator = awFamily{}
	DiscardedEstimator Estimator = discardedFamily{}
)

// EstimatorNames lists the recognized estimator names for usage messages.
const EstimatorNames = "aw, discarded"

// UnknownEstimatorError reports an estimator name ParseEstimator does not
// recognize; front ends dispatch on it with errors.As to map the failure to
// a usage error (HTTP 400, CLI flag error) rather than an internal one.
type UnknownEstimatorError struct {
	Name string
}

func (e *UnknownEstimatorError) Error() string {
	return fmt.Sprintf("unknown estimator %q (want one of %s)", e.Name, EstimatorNames)
}

// ParseEstimator resolves an estimator name from a query parameter or CLI
// flag. The empty string selects the default AW family, so front ends can
// pass an absent parameter straight through. Unknown names return an
// *UnknownEstimatorError.
func ParseEstimator(name string) (Estimator, error) {
	switch name {
	case "", "aw":
		return AWEstimator, nil
	case "discarded":
		return DiscardedEstimator, nil
	}
	return nil, &UnknownEstimatorError{Name: name}
}

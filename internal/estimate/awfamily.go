package estimate

import (
	"fmt"
	"slices"

	"coordsample/internal/rank"
)

// This file holds the paper's adjusted-weight template estimators
// (Section 7), re-expressed over the cross-assignment SampleView. The float
// operation order is deliberately identical to the pre-refactor monolithic
// combiners — TestAWGoldens pins every produced summary bit for bit, so any
// reordering of comparisons, multiplications, or sorts here is a test
// failure, not a refactor.

// topLCandidate is one known (weight, assignment) observation of a key: the
// raw material of top-ℓ selection. b is the original assignment index (used
// by TopLFunc and the deterministic tiebreak), j the position in the view's
// R (used for threshold lookups).
type topLCandidate struct {
	w float64
	b int
	j int
}

// sortTopL orders candidates by descending weight, breaking exact weight
// ties by ascending assignment index so selection is deterministic. Shared
// by the s-set and l-set templates.
func sortTopL(prime []topLCandidate) {
	slices.SortFunc(prime, func(x, y topLCandidate) int {
		switch {
		case x.w > y.w:
			return -1
		case x.w < y.w:
			return 1
		default:
			return x.b - y.b
		}
	})
}

// takeTopL copies the identified top-ℓ out of the sorted candidate list.
func takeTopL(prime []topLCandidate, l int) (topW []float64, topB []int) {
	topW = make([]float64, l)
	topB = make([]int, l)
	for t := 0; t < l; t++ {
		topW[t] = prime[t].w
		topB[t] = prime[t].b
	}
	return topW, topB
}

// emitTopL is the shared summary-assembly epilogue of the s-set and l-set
// templates: evaluate f on the identified top-ℓ and record the adjusted
// weight f/p when the inclusion probability is valid and the aggregate is
// positive (zero-valued aggregates carry no information — a(i) = 0 either
// way — so they are simply not stored).
func emitTopL(out AWSummary, key string, topW []float64, topB []int, p float64, f TopLFunc) {
	if p <= 0 {
		return
	}
	if v := f(topW, topB); v > 0 {
		out.SetWithProb(key, v/clampP(p), clampP(p))
	}
}

// checkTopL validates the ℓ parameter against the view width.
func checkTopL(v *SampleView, l int) {
	if l < 1 || l > v.NumAssignments() {
		panic(fmt.Sprintf("estimate: ℓ=%d out of range for |R|=%d", l, v.NumAssignments()))
	}
}

// awSingle is the single-assignment RC/HT estimator over a one-assignment
// view: p = F_w(threshold) on the conditioning subspace.
func awSingle(v *SampleView) AWSummary {
	if v.NumAssignments() != 1 {
		panic("estimate: awSingle needs a single-assignment view")
	}
	family := v.assigner.Family
	out := NewAWSummary(len(v.rows))
	for _, row := range v.rows {
		o := row.Obs[0]
		if !o.In {
			continue
		}
		p := family.CDF(o.Weight, o.Threshold)
		if p > 0 {
			out.SetWithProb(row.Key, o.Weight/p, p)
		}
	}
	return out.finalized()
}

// awSSetTopL applies the s-set template estimator (Section 7.1) for a top-ℓ
// dependent aggregate over the view. The selection admits key i when at
// least ℓ assignments have rank below r^(minR)_k(I∖{i}); consistency of
// ranks then guarantees those are the ℓ largest weights (Lemma 7.2). For
// independent ranks only ℓ = |R| (min-dependence) is valid, since top-ℓ
// identification needs consistency.
func awSSetTopL(v *SampleView, l int, f TopLFunc) AWSummary {
	checkTopL(v, l)
	mode := v.assigner.Mode
	if !mode.Consistent() && l != v.NumAssignments() {
		panic("estimate: s-set top-ℓ estimation with independent ranks requires ℓ=|R| (min-dependence)")
	}
	family := v.assigner.Family
	out := NewAWSummary(0)
	for _, row := range v.rows {
		// r^(minR)_k(I∖{i}): constant on the conditioning subspace.
		rMinK := row.MinThreshold()
		// R'(i) = {b ∈ R : r^(b)(i) < r^(minR)_k(I∖{i})}. Membership in R'
		// implies membership in the sketch (rMinK is at most every
		// per-assignment threshold by definition of the min), so weights of
		// R' are always known.
		var prime []topLCandidate
		for j, o := range row.Obs {
			if o.In && o.Rank < rMinK {
				prime = append(prime, topLCandidate{o.Weight, v.r[j], j})
			}
		}
		if len(prime) < l {
			continue
		}
		sortTopL(prime)
		topW, topB := takeTopL(prime, l)
		var p float64
		if mode.Consistent() {
			// p = F_{w^(ℓth-largest R)(i)}(r^(minR)_k(I∖{i})).
			p = family.CDF(topW[l-1], rMinK)
		} else {
			// Min-dependence, independent ranks: the per-assignment events
			// r^(b)(i) < rMinK are independent.
			p = 1.0
			for _, c := range prime {
				p *= family.CDF(c.w, rMinK)
			}
		}
		emitTopL(out, row.Key, topW, topB, p, f)
	}
	return out.finalized()
}

// awLSetTopL applies the l-set template estimator (Section 7.2) for a top-ℓ
// dependent aggregate over the view. The selection admits key i when it
// appears in at least ℓ sketches and the per-assignment seeds certify that
// every assignment outside the identified top-ℓ has weight below the ℓ-th
// largest. Closed-form inclusion probabilities exist for shared-seed
// (Eq. 13) and independent (Eq. 14) ranks.
func awLSetTopL(v *SampleView, l int, f TopLFunc) AWSummary {
	checkTopL(v, l)
	mode := v.assigner.Mode
	if mode != rank.SharedSeed && mode != rank.Independent {
		panic("estimate: l-set estimation requires shared-seed or independent ranks")
	}
	family := v.assigner.Family
	out := NewAWSummary(0)
	for _, row := range v.rows {
		var prime []topLCandidate
		for j, o := range row.Obs {
			if o.In {
				prime = append(prime, topLCandidate{o.Weight, v.r[j], j})
			}
		}
		if len(prime) < l {
			continue
		}
		sortTopL(prime)
		topW, topB := takeTopL(prime, l)
		topJ := make([]int, l)
		inTop := make(map[int]bool, l)
		for t := 0; t < l; t++ {
			topJ[t] = prime[t].j
			inTop[prime[t].b] = true
		}
		wl := topW[l-1]

		// Seed upper-bound checks for assignments outside the top-ℓ (only
		// needed when ℓ < |R|): u^(b)(i) < F_{wℓ}(r^(b)_k(I∖{i})) certifies
		// w^(b)(i) < wℓ for unsketched assignments.
		selected := true
		for j, o := range row.Obs {
			if inTop[v.r[j]] {
				continue
			}
			if !(v.Seed01(row.Key, j) < family.CDF(wl, o.Threshold)) {
				selected = false
				break
			}
		}
		if !selected {
			continue
		}

		var p float64
		if mode == rank.SharedSeed {
			p = 1.0
			for t := 0; t < l; t++ {
				if q := family.CDF(topW[t], row.Obs[topJ[t]].Threshold); q < p {
					p = q
				}
			}
			for j, o := range row.Obs {
				if inTop[v.r[j]] {
					continue
				}
				if q := family.CDF(wl, o.Threshold); q < p {
					p = q
				}
			}
		} else {
			p = 1.0
			for t := 0; t < l; t++ {
				p *= family.CDF(topW[t], row.Obs[topJ[t]].Threshold)
			}
			for j, o := range row.Obs {
				if inTop[v.r[j]] {
					continue
				}
				p *= family.CDF(wl, o.Threshold)
			}
		}
		emitTopL(out, row.Key, topW, topB, p, f)
	}
	return out.finalized()
}

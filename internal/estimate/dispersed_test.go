package estimate

import (
	"math"
	"math/rand"
	"testing"

	"coordsample/internal/dataset"
	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

// buildDispersed sketches every assignment of the columnar data with the
// given assigner — the dispersed pipeline in miniature.
func buildDispersed(a rank.Assigner, k int, keys []string, cols [][]float64) *Dispersed {
	sketches := make([]*sketch.BottomK, len(cols))
	for b := range cols {
		bld := sketch.NewBottomKBuilder(k)
		for i, key := range keys {
			w := cols[b][i]
			bld.Offer(key, a.Rank(key, b, w), w)
		}
		sketches[b] = bld.Sketch()
	}
	return NewDispersed(a, sketches)
}

// TestGridUnbiasednessSharedSeed integrates the adjusted weight of a target
// key over its seed u on a fine grid, holding all other ranks fixed — i.e.
// exact integration over the rank-conditioning subspace Ω(i, r^{−i}). The
// template estimator theory says the integral equals f(i) for max, min, and
// L1, for both rank families. This validates the inclusion-probability
// formulas without Monte-Carlo noise.
func TestGridUnbiasednessSharedSeed(t *testing.T) {
	keys := []string{"X", "A", "B", "C", "D"}
	cols := [][]float64{
		{6, 10, 5, 2, 0},
		{3, 0, 5, 8, 4},
	}
	otherU := []float64{0.9, 0.55, 0.3, 0.7}
	const k = 2
	const N = 20000

	for _, family := range []rank.Family{rank.IPPS, rank.EXP} {
		var sumMax, sumMinS, sumMinL, sumL1 float64
		for step := 0; step < N; step++ {
			u := (float64(step) + 0.5) / N
			sketches := make([]*sketch.BottomK, len(cols))
			for b := range cols {
				bld := sketch.NewBottomKBuilder(k)
				bld.Offer("X", family.Quantile(cols[b][0], u), cols[b][0])
				for j, key := range keys[1:] {
					bld.Offer(key, family.Quantile(cols[b][j+1], otherU[j]), cols[b][j+1])
				}
				sketches[b] = bld.Sketch()
			}
			d := NewDispersed(rank.Assigner{Family: family, Mode: rank.SharedSeed, Seed: 1}, sketches)
			sumMax += d.Max(nil).AdjustedWeight("X")
			sumMinS += d.MinSSet(nil).AdjustedWeight("X")
			sumMinL += d.MinLSet(nil).AdjustedWeight("X")
			sumL1 += d.RangeLSet(nil).AdjustedWeight("X")
		}
		check := func(name string, got, want float64) {
			t.Helper()
			if math.Abs(got-want) > 0.01*want+1e-6 {
				t.Fatalf("%v/%s: integral = %v, want %v", family, name, got, want)
			}
		}
		check("max", sumMax/N, 6)
		check("min-s", sumMinS/N, 3)
		check("min-l", sumMinL/N, 3)
		check("L1", sumL1/N, 3)
	}
}

// TestGridUnbiasednessIndependent does the same over the 2-D seed grid of a
// target key under independent ranks, for the min estimators (both s-set and
// l-set forms are defined for independent sketches).
func TestGridUnbiasednessIndependent(t *testing.T) {
	keys := []string{"X", "A", "B", "C", "D"}
	cols := [][]float64{
		{6, 10, 5, 2, 0},
		{3, 0, 5, 8, 4},
	}
	otherU := [][]float64{
		{0.9, 0.55, 0.3, 0.7},
		{0.2, 0.85, 0.6, 0.45},
	}
	const k = 2
	const N = 300
	family := rank.IPPS

	var sumMinS, sumMinL float64
	for s1 := 0; s1 < N; s1++ {
		u1 := (float64(s1) + 0.5) / N
		// Assignment-0 sketch depends only on u1; build it once per u1.
		bld0 := sketch.NewBottomKBuilder(k)
		bld0.Offer("X", family.Quantile(cols[0][0], u1), cols[0][0])
		for j, key := range keys[1:] {
			bld0.Offer(key, family.Quantile(cols[0][j+1], otherU[0][j]), cols[0][j+1])
		}
		s0 := bld0.Sketch()
		for s2 := 0; s2 < N; s2++ {
			u2 := (float64(s2) + 0.5) / N
			bld1 := sketch.NewBottomKBuilder(k)
			bld1.Offer("X", family.Quantile(cols[1][0], u2), cols[1][0])
			for j, key := range keys[1:] {
				bld1.Offer(key, family.Quantile(cols[1][j+1], otherU[1][j]), cols[1][j+1])
			}
			d := NewDispersed(rank.Assigner{Family: family, Mode: rank.Independent, Seed: 1},
				[]*sketch.BottomK{s0, bld1.Sketch()})
			sumMinS += d.MinSSet(nil).AdjustedWeight("X")
			sumMinL += d.MinLSet(nil).AdjustedWeight("X")
		}
	}
	total := float64(N * N)
	if got := sumMinS / total; math.Abs(got-3) > 0.05 {
		t.Fatalf("independent min-s integral = %v, want 3", got)
	}
	if got := sumMinL / total; math.Abs(got-3) > 0.05 {
		t.Fatalf("independent min-l integral = %v, want 3", got)
	}
}

// testData builds a moderately skewed 3-assignment data set with zero
// weights sprinkled in.
func testData(n int, rng *rand.Rand) ([]string, [][]float64) {
	keys := make([]string, n)
	cols := make([][]float64, 3)
	for b := range cols {
		cols[b] = make([]float64, n)
	}
	for i := range keys {
		keys[i] = "key-" + itoa(i)
		base := math.Exp(rng.NormFloat64())
		for b := range cols {
			if rng.Float64() < 0.25 {
				continue // zero weight in this assignment
			}
			cols[b][i] = base * (0.5 + rng.Float64())
		}
	}
	return keys, cols
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func truthOf(keys []string, cols [][]float64, f func(vec []float64) float64) float64 {
	total := 0.0
	vec := make([]float64, len(cols))
	for i := range keys {
		for b := range cols {
			vec[b] = cols[b][i]
		}
		total += f(vec)
	}
	return total
}

// runMonteCarlo estimates Σf over many independent hash seeds and asserts
// that the sample mean is within 4.5 standard errors of the truth.
func runMonteCarlo(t *testing.T, name string, trials int, truth float64, one func(seed uint64) float64) {
	t.Helper()
	var sum, sumSq float64
	for trial := 0; trial < trials; trial++ {
		v := one(uint64(trial) + 1)
		sum += v
		sumSq += v * v
	}
	n := float64(trials)
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	se := math.Sqrt(variance / n)
	if math.Abs(mean-truth) > 4.5*se+1e-9*math.Abs(truth)+1e-12 {
		t.Fatalf("%s: mean %v, truth %v, se %v (%.1fσ off)", name, mean, truth, se, math.Abs(mean-truth)/se)
	}
}

func TestMonteCarloUnbiasedSharedSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	keys, cols := testData(60, rng)
	R := []int{0, 1, 2}
	const k = 15
	const trials = 2500

	cases := []struct {
		name  string
		truth float64
		est   func(d *Dispersed) AWSummary
	}{
		{"max", truthOf(keys, cols, func(v []float64) float64 { return dataset.MaxR(v, nil) }),
			func(d *Dispersed) AWSummary { return d.Max(R) }},
		{"min-s", truthOf(keys, cols, func(v []float64) float64 { return dataset.MinR(v, nil) }),
			func(d *Dispersed) AWSummary { return d.MinSSet(R) }},
		{"min-l", truthOf(keys, cols, func(v []float64) float64 { return dataset.MinR(v, nil) }),
			func(d *Dispersed) AWSummary { return d.MinLSet(R) }},
		{"L1-s", truthOf(keys, cols, func(v []float64) float64 { return dataset.RangeR(v, nil) }),
			func(d *Dispersed) AWSummary { return d.RangeSSet(R) }},
		{"L1-l", truthOf(keys, cols, func(v []float64) float64 { return dataset.RangeR(v, nil) }),
			func(d *Dispersed) AWSummary { return d.RangeLSet(R) }},
		{"2nd-largest-l", truthOf(keys, cols, func(v []float64) float64 { return dataset.LthLargestR(v, nil, 2) }),
			func(d *Dispersed) AWSummary { return d.LthLargest(R, 2) }},
		{"2nd-largest-s", truthOf(keys, cols, func(v []float64) float64 { return dataset.LthLargestR(v, nil, 2) }),
			func(d *Dispersed) AWSummary {
				return d.SSetTopL(R, 2, func(w []float64, _ []int) float64 { return w[len(w)-1] })
			}},
		{"single-1", truthOf(keys, cols, func(v []float64) float64 { return v[1] }),
			func(d *Dispersed) AWSummary { return d.Single(1) }},
	}
	for _, family := range []rank.Family{rank.IPPS, rank.EXP} {
		for _, c := range cases {
			c := c
			runMonteCarlo(t, family.String()+"/"+c.name, trials, c.truth, func(seed uint64) float64 {
				a := rank.Assigner{Family: family, Mode: rank.SharedSeed, Seed: seed}
				return c.est(buildDispersed(a, k, keys, cols)).Estimate(nil)
			})
		}
	}
}

func TestMonteCarloUnbiasedIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	keys, cols := testData(60, rng)
	R := []int{0, 1, 2}
	const k = 25
	const trials = 3000

	minTruth := truthOf(keys, cols, func(v []float64) float64 { return dataset.MinR(v, nil) })
	maxTruth := truthOf(keys, cols, func(v []float64) float64 { return dataset.MaxR(v, nil) })

	cases := []struct {
		name  string
		truth float64
		est   func(d *Dispersed) AWSummary
	}{
		{"min-s", minTruth, func(d *Dispersed) AWSummary { return d.MinSSet(R) }},
		{"min-l", minTruth, func(d *Dispersed) AWSummary { return d.MinLSet(R) }},
		// Known-seeds extensions for independent sketches:
		{"max-l", maxTruth, func(d *Dispersed) AWSummary { return d.Max(R) }},
		{"2nd-largest-l", truthOf(keys, cols, func(v []float64) float64 { return dataset.LthLargestR(v, nil, 2) }),
			func(d *Dispersed) AWSummary { return d.LthLargest(R, 2) }},
	}
	for _, c := range cases {
		c := c
		runMonteCarlo(t, "independent/"+c.name, trials, c.truth, func(seed uint64) float64 {
			a := rank.Assigner{Family: rank.IPPS, Mode: rank.Independent, Seed: seed}
			return c.est(buildDispersed(a, k, keys, cols)).Estimate(nil)
		})
	}
}

func TestSubpopulationEstimates(t *testing.T) {
	// Predicates chosen a posteriori must also be unbiased: select ~half the
	// keys by identifier.
	rng := rand.New(rand.NewSource(5))
	keys, cols := testData(60, rng)
	pred := func(key string) bool { return len(key)%2 == 0 }
	truth := 0.0
	vec := make([]float64, 3)
	for i, key := range keys {
		if !pred(key) {
			continue
		}
		for b := range cols {
			vec[b] = cols[b][i]
		}
		truth += dataset.RangeR(vec, nil)
	}
	runMonteCarlo(t, "subpop-L1", 2500, truth, func(seed uint64) float64 {
		a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: seed}
		return buildDispersed(a, 15, keys, cols).RangeLSet(nil).Estimate(pred)
	})
}

func TestLemma73AtLeastKMinus1MaxKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	keys, cols := testData(80, rng)
	for trial := 0; trial < 30; trial++ {
		a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: uint64(trial) + 1}
		k := 2 + trial%10
		d := buildDispersed(a, k, keys, cols)
		if got := d.Max(nil).Len(); got < k-1 {
			t.Fatalf("trial %d: only %d keys with positive a^max, want ≥ %d", trial, got, k-1)
		}
	}
}

func TestLemma75L1Nonnegative(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		keys, cols := testData(50, rng)
		for _, family := range []rank.Family{rank.IPPS, rank.EXP} {
			a := rank.Assigner{Family: family, Mode: rank.SharedSeed, Seed: uint64(trial)*2 + 1}
			d := buildDispersed(a, 8, keys, cols)
			for _, aw := range []AWSummary{d.RangeSSet(nil), d.RangeLSet(nil)} {
				for _, key := range aw.Keys() {
					if v := aw.AdjustedWeight(key); v < -1e-9 {
						t.Fatalf("trial %d %v: a^L1(%s) = %v < 0", trial, family, key, v)
					}
				}
			}
		}
	}
}

func TestLemma51SSetDominatedByLSet(t *testing.T) {
	// The l-set selection is a superset of the s-set selection, and on keys
	// selected by both, the l-set inclusion probability is at least the
	// s-set one — so a_l ≤ a_s pointwise.
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 30; trial++ {
		keys, cols := testData(50, rng)
		a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: uint64(trial) + 1}
		d := buildDispersed(a, 8, keys, cols)
		s := d.MinSSet(nil)
		l := d.MinLSet(nil)
		for _, key := range s.Keys() {
			as, al := s.AdjustedWeight(key), l.AdjustedWeight(key)
			if al == 0 {
				t.Fatalf("trial %d: key %s selected by s-set but not l-set", trial, key)
			}
			if al > as+1e-9 {
				t.Fatalf("trial %d: a_l(%s) = %v > a_s = %v", trial, key, al, as)
			}
		}
	}
}

func TestExactWhenKCoversSet(t *testing.T) {
	// With k ≥ |I| every threshold is +Inf, every inclusion probability is
	// 1, and all estimators are exact.
	rng := rand.New(rand.NewSource(23))
	keys, cols := testData(30, rng)
	vec := make([]float64, 3)
	for _, mode := range []rank.Coordination{rank.SharedSeed, rank.Independent} {
		a := rank.Assigner{Family: rank.EXP, Mode: mode, Seed: 99}
		d := buildDispersed(a, 64, keys, cols)
		maxAW := d.Max(nil)
		minAW := d.MinLSet(nil)
		for i, key := range keys {
			for b := range cols {
				vec[b] = cols[b][i]
			}
			if want := dataset.MaxR(vec, nil); math.Abs(maxAW.AdjustedWeight(key)-want) > 1e-9 {
				t.Fatalf("%v: a^max(%s) = %v, want exactly %v", mode, key, maxAW.AdjustedWeight(key), want)
			}
			if want := dataset.MinR(vec, nil); math.Abs(minAW.AdjustedWeight(key)-want) > 1e-9 {
				t.Fatalf("%v: a^min(%s) = %v, want exactly %v", mode, key, minAW.AdjustedWeight(key), want)
			}
		}
	}
}

func TestUniformMinBaselineUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	keys, cols := testData(60, rng)
	truth := truthOf(keys, cols, func(v []float64) float64 { return dataset.MinR(v, nil) })
	const k = 20
	runMonteCarlo(t, "uniform-min", 4000, truth, func(seed uint64) float64 {
		a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: seed}
		sketches := make([]*sketch.BottomK, len(cols))
		for b := range cols {
			bld := sketch.NewBottomKBuilder(k)
			for i, key := range keys {
				if w := cols[b][i]; w > 0 {
					// Rank drawn with unit weight; true weight carried along.
					bld.Offer(key, a.Rank(key, b, 1), w)
				}
			}
			sketches[b] = bld.Sketch()
		}
		return UniformMin(rank.IPPS, sketches, nil).Estimate(nil)
	})
}

func TestJaccardSSet(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	keys, cols := testData(80, rng)
	var sumMin, sumMax float64
	vec := make([]float64, 3)
	for i := range keys {
		for b := range cols {
			vec[b] = cols[b][i]
		}
		sumMin += dataset.MinR(vec, nil)
		sumMax += dataset.MaxR(vec, nil)
	}
	want := sumMin / sumMax
	// Ratio estimators are biased but consistent; average over seeds with a
	// loose tolerance.
	total := 0.0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: uint64(trial) + 1}
		total += buildDispersed(a, 30, keys, cols).JaccardSSet(nil, nil)
	}
	if got := total / trials; math.Abs(got-want) > 0.1 {
		t.Fatalf("Jaccard mean = %v, want ≈ %v", got, want)
	}
}

func TestDispersedValidation(t *testing.T) {
	keys := []string{"a", "b"}
	cols := [][]float64{{1, 2}, {3, 4}}
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1}
	d := buildDispersed(a, 2, keys, cols)

	assertPanics(t, func() { NewDispersed(a, nil) })
	assertPanics(t, func() { d.SSetTopL([]int{0, 1}, 0, topLMax) })
	assertPanics(t, func() { d.SSetTopL([]int{0, 1}, 3, topLMax) })
	assertPanics(t, func() { d.checkR([]int{0, 0}) })
	assertPanics(t, func() { d.checkR([]int{7}) })
	assertPanics(t, func() { d.checkR([]int{}) })

	ind := rank.Assigner{Family: rank.IPPS, Mode: rank.Independent, Seed: 1}
	di := buildDispersed(ind, 2, keys, cols)
	// s-set top-ℓ with ℓ < |R| requires consistent ranks.
	assertPanics(t, func() { di.SSetTopL([]int{0, 1}, 1, topLMax) })

	if d.NumAssignments() != 2 {
		t.Fatal("NumAssignments")
	}
	if d.Assigner() != a {
		t.Fatal("Assigner accessor")
	}
	if d.Sketch(0) == nil {
		t.Fatal("Sketch accessor")
	}
	if got := d.DistinctKeys(nil); got != 2 {
		t.Fatalf("DistinctKeys = %d", got)
	}
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestVarianceOrderingCoordVsIndependent(t *testing.T) {
	// The headline claim (Figure 3): the variance of the min estimator over
	// independent sketches is far larger than over coordinated sketches.
	// Measured via mean squared error of the total-min estimate.
	rng := rand.New(rand.NewSource(53))
	keys, cols := testData(120, rng)
	truth := truthOf(keys, cols, func(v []float64) float64 { return dataset.MinR(v, nil) })
	const k = 15
	const trials = 400
	mse := func(mode rank.Coordination) float64 {
		total := 0.0
		for trial := 0; trial < trials; trial++ {
			a := rank.Assigner{Family: rank.IPPS, Mode: mode, Seed: uint64(trial) + 1}
			got := buildDispersed(a, k, keys, cols).MinLSet(nil).Estimate(nil)
			total += (got - truth) * (got - truth)
		}
		return total / trials
	}
	coord, ind := mse(rank.SharedSeed), mse(rank.Independent)
	if ind < 2*coord {
		t.Fatalf("independent MSE (%v) should far exceed coordinated MSE (%v)", ind, coord)
	}
}

// TestRangeLSetKeepsMinOnlyKeys exercises the case the Sub fix exists
// for: under Independent ranks the max estimator (LSetTopL with ℓ=1)
// applies a seed-certification check to in-sketch assignments outside the
// identified top that the min estimator (ℓ=|R|, no outside assignments)
// never applies, so a key can be selected by min but not by max. Its
// negative contribution must survive into RangeLSet; before the fix it was
// silently dropped, biasing the L1 estimate upward by exactly that weight.
func TestRangeLSetKeepsMinOnlyKeys(t *testing.T) {
	// k=1 sketches of a 2-assignment set where only "X" is retained. The
	// ranks are injected directly (as the grid tests do), so the
	// hash-derived certification seed Seed01("X", b) is independent of
	// them and a certifying-failure seed can be found by search.
	build := func(seed uint64) *Dispersed {
		bld0 := sketch.NewBottomKBuilder(1)
		bld0.Offer("X", 0.02, 5)
		bld0.Offer("Y0", 0.06, 1)
		bld1 := sketch.NewBottomKBuilder(1)
		bld1.Offer("X", 0.01, 3)
		bld1.Offer("Y1", 0.05, 1)
		a := rank.Assigner{Family: rank.IPPS, Mode: rank.Independent, Seed: seed}
		return NewDispersed(a, []*sketch.BottomK{bld0.Sketch(), bld1.Sketch()})
	}
	// Max's certification for the outside-the-top assignment 1 requires
	// u^(1)(X) < F_5(r_1^{(1)}(I∖{X})) = F_5(0.05) = 0.25.
	var d *Dispersed
	found := false
	for seed := uint64(1); seed <= 200; seed++ {
		a := rank.Assigner{Family: rank.IPPS, Mode: rank.Independent, Seed: seed}
		if a.Seed01("X", 1) >= 0.25 {
			d, found = build(seed), true
			break
		}
	}
	if !found {
		t.Fatal("no seed with a failing certification in 200 tries (p≈0.75 each)")
	}

	mx := d.Max(nil)
	mn := d.MinLSet(nil)
	if mx.AdjustedWeight("X") != 0 {
		t.Fatal("setup broken: X passed the max certification")
	}
	if mn.AdjustedWeight("X") <= 0 {
		t.Fatal("setup broken: X not selected by the min estimator")
	}

	rl := d.RangeLSet(nil)
	if got, want := rl.AdjustedWeight("X"), -mn.AdjustedWeight("X"); got != want {
		t.Fatalf("min-only key contribution = %v, want %v (dropped before the Sub fix)", got, want)
	}
	if got, want := rl.Estimate(nil), mx.Estimate(nil)-mn.Estimate(nil); got != want {
		t.Fatalf("RangeLSet estimate %v != max−min %v", got, want)
	}
}

// TestRangeLSetUnbiasedIndependent is the Monte-Carlo unbiasedness
// regression for the L1 estimator under Independent ranks: the mean over
// many hash seeds must approach the true L1 distance. (The 2009 paper
// evaluates SharedSeed most heavily; this pins the independent baseline,
// whose estimate mixes positive and negative per-key terms.)
func TestRangeLSetUnbiasedIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 60
	keys := make([]string, n)
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	var truth float64
	for i := range keys {
		keys[i] = "key-" + itoa(i)
		cols[0][i] = math.Exp(rng.NormFloat64())
		cols[1][i] = cols[0][i] * math.Exp(0.3*rng.NormFloat64())
		truth += math.Abs(cols[0][i] - cols[1][i])
	}
	var sum float64
	const seeds = 3000
	for seed := 1; seed <= seeds; seed++ {
		a := rank.Assigner{Family: rank.IPPS, Mode: rank.Independent, Seed: uint64(seed)}
		sum += buildDispersed(a, 10, keys, cols).RangeLSet(nil).Estimate(nil)
	}
	mean := sum / seeds
	if math.Abs(mean-truth) > 0.06*truth {
		t.Fatalf("mean L1 estimate %v over %d seeds too far from truth %v", mean, seeds, truth)
	}
}

// TestJaccardSSetClamped: the ratio of two noisy unbiased estimates can
// exceed 1, but the reported similarity never may — and a clamping case
// must actually occur to prove the test bites.
func TestJaccardSSetClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 30
	keys := make([]string, n)
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	for i := range keys {
		keys[i] = "key-" + itoa(i)
		cols[0][i] = math.Exp(rng.NormFloat64())
		cols[1][i] = cols[0][i] * math.Exp(0.1*rng.NormFloat64())
	}
	clampedSomewhere := false
	for seed := uint64(1); seed <= 400; seed++ {
		a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: seed}
		d := buildDispersed(a, 4, keys, cols)
		j := d.JaccardSSet(nil, nil)
		if j < 0 || j > 1 {
			t.Fatalf("seed %d: Jaccard %v outside [0,1]", seed, j)
		}
		mx := d.Max(nil).Estimate(nil)
		if mx > 0 && d.MinSSet(nil).Estimate(nil)/mx > 1 {
			if j != 1 {
				t.Fatalf("seed %d: raw ratio > 1 not clamped (got %v)", seed, j)
			}
			clampedSomewhere = true
		}
	}
	if !clampedSomewhere {
		t.Fatal("no seed produced a ratio > 1; the clamp was never exercised")
	}
}

package estimate

import (
	"math"
	"testing"

	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

// TestExtremeWeightMagnitudes drives the full estimator suite with weights
// spanning ~600 orders of magnitude: estimates must stay finite and
// non-NaN, and estimators must remain well-defined.
func TestExtremeWeightMagnitudes(t *testing.T) {
	keys := []string{"tiny", "small", "one", "big", "huge", "zero-a", "zero-b"}
	cols := [][]float64{
		{1e-300, 1e-30, 1, 1e30, 1e300, 0, 1},
		{1e-299, 1e-31, 2, 1e29, 1e299, 1, 0},
	}
	for _, family := range []rank.Family{rank.IPPS, rank.EXP} {
		for _, mode := range []rank.Coordination{rank.SharedSeed, rank.Independent} {
			a := rank.Assigner{Family: family, Mode: mode, Seed: 9}
			d := buildDispersed(a, 3, keys, cols)
			for name, aw := range map[string]AWSummary{
				"max":   d.Max(nil),
				"min-l": d.MinLSet(nil),
				"min-s": d.MinSSet(nil), // valid for independent too (min-dependence)
			} {
				for _, key := range aw.Keys() {
					v := aw.AdjustedWeight(key)
					if math.IsNaN(v) {
						t.Fatalf("%v/%v %s: NaN adjusted weight for %s", family, mode, name, key)
					}
				}
				got := aw.Estimate(nil)
				if math.IsNaN(got) {
					t.Fatalf("%v/%v %s: NaN estimate", family, mode, name)
				}
			}
		}
	}
}

// TestBinaryKeys verifies arbitrary byte sequences work as keys end to end.
func TestBinaryKeys(t *testing.T) {
	keys := []string{"\x00\x01\x02", "\xff\xfe", "日本語キー", "tab\tkey", "", "new\nline"}
	cols := [][]float64{
		{5, 10, 15, 20, 25, 30},
		{30, 25, 20, 15, 10, 5},
	}
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 3}
	d := buildDispersed(a, 10, keys, cols)
	// k ≥ |I| ⇒ exact: Σ max = 30+25+20+20+25+30.
	if got := d.Max(nil).Estimate(nil); math.Abs(got-150) > 1e-9 {
		t.Fatalf("binary-key max estimate = %v, want 150", got)
	}
	c := buildColocated(a, 10, keys, cols)
	if got := c.Inclusive(MinOf()).Estimate(nil); math.Abs(got-(5+10+15+15+10+5)) > 1e-9 {
		t.Fatalf("binary-key min estimate = %v", got)
	}
}

// TestDuplicateKeyDetection: violating the pre-aggregation contract in a way
// that leaves two copies in the retained sample must panic loudly.
func TestDuplicateKeyDetection(t *testing.T) {
	b := sketch.NewBottomKBuilder(4)
	b.Offer("dup", 0.1, 1)
	b.Offer("dup", 0.2, 1)
	assertPanics(t, func() { b.Sketch() })

	p := sketch.NewPoissonBuilder(0.5)
	p.Offer("dup", 0.1, 1)
	p.Offer("dup", 0.2, 1)
	assertPanics(t, func() { p.Sketch() })

	// Duplicates evicted from the sample are indistinguishable from
	// distinct keys and go undetected — documenting the boundary.
	ok := sketch.NewBottomKBuilder(1)
	ok.Offer("dup", 0.1, 1)
	ok.Offer("dup", 0.9, 1) // rejected from the bottom-1 sample
	s := ok.Sketch()
	if s.Size() != 1 {
		t.Fatalf("size = %d", s.Size())
	}
}

// TestSingleKeyDataset: the degenerate one-key universe must estimate
// exactly under every mode.
func TestSingleKeyDataset(t *testing.T) {
	keys := []string{"only"}
	cols := [][]float64{{7}, {3}}
	for _, mode := range []rank.Coordination{rank.SharedSeed, rank.Independent} {
		a := rank.Assigner{Family: rank.IPPS, Mode: mode, Seed: 1}
		d := buildDispersed(a, 2, keys, cols)
		if got := d.Max(nil).Estimate(nil); got != 7 {
			t.Fatalf("%v: max = %v", mode, got)
		}
		if got := d.MinLSet(nil).Estimate(nil); got != 3 {
			t.Fatalf("%v: min = %v", mode, got)
		}
		if got := d.RangeLSet(nil).Estimate(nil); got != 4 {
			t.Fatalf("%v: L1 = %v", mode, got)
		}
	}
}

// TestAllZeroAssignment: an assignment with no positive weights must not
// derail multiple-assignment estimation over the remaining ones.
func TestAllZeroAssignment(t *testing.T) {
	keys := []string{"a", "b", "c"}
	cols := [][]float64{
		{1, 2, 3},
		{0, 0, 0}, // dead assignment
	}
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 2}
	d := buildDispersed(a, 5, keys, cols)
	if got := d.Max(nil).Estimate(nil); math.Abs(got-6) > 1e-9 {
		t.Fatalf("max over dead assignment = %v, want 6", got)
	}
	if got := d.MinLSet(nil).Estimate(nil); got != 0 {
		t.Fatalf("min over dead assignment = %v, want 0", got)
	}
	if got := d.Single(1).Estimate(nil); got != 0 {
		t.Fatalf("dead single = %v, want 0", got)
	}
}

// TestPoissonConstructorsInPackage exercises the Poisson summary
// constructors directly (they are otherwise covered via internal/core).
func TestPoissonConstructorsInPackage(t *testing.T) {
	keys := []string{"a", "b", "c", "d"}
	cols := [][]float64{{1, 2, 3, 4}, {4, 3, 2, 1}}
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 4}
	sketches := make([]*sketch.Poisson, 2)
	vectors := make(map[string][]float64)
	for b := range cols {
		pb := sketch.NewPoissonBuilder(math.Inf(1)) // sample everything
		for i, key := range keys {
			pb.Offer(key, a.Rank(key, b, cols[b][i]), cols[b][i])
		}
		sketches[b] = pb.Sketch()
	}
	for i, key := range keys {
		vectors[key] = []float64{cols[0][i], cols[1][i]}
	}
	d := NewDispersedPoisson(a, sketches)
	if got := d.Max(nil).Estimate(nil); got != 4+3+3+4 {
		t.Fatalf("Poisson dispersed max = %v", got)
	}
	c := NewColocatedPoisson(a, sketches, func(key string) []float64 { return vectors[key] })
	if got := c.Inclusive(MinOf()).Estimate(nil); got != 1+2+2+1 {
		t.Fatalf("Poisson colocated min = %v", got)
	}
	if p := c.InclusionProbabilityFor("a", []float64{1, 4}); p != 1 {
		t.Fatalf("τ=+Inf inclusion probability = %v", p)
	}
	assertPanics(t, func() { c.InclusionProbabilityFor("a", []float64{1}) })
}

// TestJaccardSSetEmptyMax covers the zero-max edge: similarity defined as 1.
func TestJaccardSSetEmptyMax(t *testing.T) {
	keys := []string{"a"}
	cols := [][]float64{{1}, {1}}
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1}
	d := buildDispersed(a, 2, keys, cols)
	never := func(string) bool { return false }
	if got := d.JaccardSSet(nil, never); got != 1 {
		t.Fatalf("empty-subpopulation Jaccard = %v, want 1", got)
	}
	if got := d.JaccardSSet(nil, nil); got != 1 {
		t.Fatalf("identical-assignment Jaccard = %v, want 1", got)
	}
}

package estimate

import (
	"math"
	"math/rand"
	"testing"

	"coordsample/internal/dataset"
	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

// buildColocated runs the colocated pipeline: rank vectors per key, one
// bottom-k sketch per assignment, full vectors attached to union keys.
func buildColocated(a rank.Assigner, k int, keys []string, cols [][]float64) *Colocated {
	builders := make([]*sketch.BottomKBuilder, len(cols))
	for b := range builders {
		builders[b] = sketch.NewBottomKBuilder(k)
	}
	vec := make([]float64, len(cols))
	ranks := make([]float64, len(cols))
	vectors := make(map[string][]float64, len(keys))
	for i, key := range keys {
		for b := range cols {
			vec[b] = cols[b][i]
		}
		a.RankVectorInto(ranks, key, vec)
		for b := range cols {
			builders[b].Offer(key, ranks[b], vec[b])
		}
		vectors[key] = append([]float64(nil), vec...)
	}
	sketches := make([]*sketch.BottomK, len(cols))
	for b := range builders {
		sketches[b] = builders[b].Sketch()
	}
	return NewColocated(a, sketches, func(key string) []float64 { return vectors[key] })
}

// TestColocatedGridSharedSeed integrates the inclusive adjusted weight of a
// target key over its shared seed u, with all other ranks fixed: the
// integral must equal f(i) exactly for every aggregate (Eq. 6 validation).
func TestColocatedGridSharedSeed(t *testing.T) {
	keys := []string{"X", "A", "B", "C", "D"}
	cols := [][]float64{
		{6, 10, 5, 2, 0},
		{3, 0, 5, 8, 4},
	}
	otherU := []float64{0.9, 0.55, 0.3, 0.7}
	const k = 2
	const N = 20000
	vectors := map[string][]float64{
		"X": {6, 3}, "A": {10, 0}, "B": {5, 5}, "C": {2, 8}, "D": {0, 4},
	}
	for _, family := range []rank.Family{rank.IPPS, rank.EXP} {
		fs := []struct {
			name string
			f    AggFunc
			want float64
		}{
			{"max", MaxOf(), 6},
			{"min", MinOf(), 3},
			{"L1", RangeOf(), 3},
			{"single0", SingleOf(0), 6},
			{"single1", SingleOf(1), 3},
		}
		sums := make([]float64, len(fs))
		for step := 0; step < N; step++ {
			u := (float64(step) + 0.5) / N
			sketches := make([]*sketch.BottomK, len(cols))
			for b := range cols {
				bld := sketch.NewBottomKBuilder(k)
				bld.Offer("X", family.Quantile(vectors["X"][b], u), vectors["X"][b])
				for j, key := range keys[1:] {
					bld.Offer(key, family.Quantile(vectors[key][b], otherU[j]), vectors[key][b])
				}
				sketches[b] = bld.Sketch()
			}
			c := NewColocated(rank.Assigner{Family: family, Mode: rank.SharedSeed, Seed: 1},
				sketches, func(key string) []float64 { return vectors[key] })
			for fi, fc := range fs {
				sums[fi] += c.Inclusive(fc.f).AdjustedWeight("X")
			}
		}
		for fi, fc := range fs {
			got := sums[fi] / N
			if math.Abs(got-fc.want) > 0.01*fc.want+1e-6 {
				t.Fatalf("%v/%s: integral = %v, want %v", family, fc.name, got, fc.want)
			}
		}
	}
}

// TestColocatedGridIndependent validates Eq. (5) over the 2-D seed grid.
func TestColocatedGridIndependent(t *testing.T) {
	vectors := map[string][]float64{
		"X": {6, 3}, "A": {10, 0}, "B": {5, 5}, "C": {2, 8}, "D": {0, 4},
	}
	otherU := [][]float64{
		{0.9, 0.55, 0.3, 0.7},
		{0.2, 0.85, 0.6, 0.45},
	}
	others := []string{"A", "B", "C", "D"}
	const k = 2
	const N = 300
	family := rank.IPPS

	var sumMax, sumMin float64
	for s1 := 0; s1 < N; s1++ {
		u1 := (float64(s1) + 0.5) / N
		bld0 := sketch.NewBottomKBuilder(k)
		bld0.Offer("X", family.Quantile(vectors["X"][0], u1), vectors["X"][0])
		for j, key := range others {
			bld0.Offer(key, family.Quantile(vectors[key][0], otherU[0][j]), vectors[key][0])
		}
		s0 := bld0.Sketch()
		for s2 := 0; s2 < N; s2++ {
			u2 := (float64(s2) + 0.5) / N
			bld1 := sketch.NewBottomKBuilder(k)
			bld1.Offer("X", family.Quantile(vectors["X"][1], u2), vectors["X"][1])
			for j, key := range others {
				bld1.Offer(key, family.Quantile(vectors[key][1], otherU[1][j]), vectors[key][1])
			}
			c := NewColocated(rank.Assigner{Family: family, Mode: rank.Independent, Seed: 1},
				[]*sketch.BottomK{s0, bld1.Sketch()},
				func(key string) []float64 { return vectors[key] })
			sumMax += c.Inclusive(MaxOf()).AdjustedWeight("X")
			sumMin += c.Inclusive(MinOf()).AdjustedWeight("X")
		}
	}
	total := float64(N * N)
	if got := sumMax / total; math.Abs(got-6) > 0.05 {
		t.Fatalf("independent inclusive max integral = %v, want 6", got)
	}
	if got := sumMin / total; math.Abs(got-3) > 0.05 {
		t.Fatalf("independent inclusive min integral = %v, want 3", got)
	}
}

// TestColocatedGridIndependentDifferences validates the A_ℓ decomposition of
// Section 6 over the 2-D grid of the gap variables (d_1, d_2): the target
// key's rank vector is r^(low) = d_1, r^(high) = min(d_1, d_2).
func TestColocatedGridIndependentDifferences(t *testing.T) {
	vectors := map[string][]float64{
		"X": {6, 3}, "A": {10, 0}, "B": {5, 5}, "C": {2, 8}, "D": {0, 4},
	}
	others := []string{"A", "B", "C", "D"}
	// Fixed independent-differences rank vectors for the other keys,
	// generated once from a real assigner so they lie in the support.
	aOthers := rank.Assigner{Family: rank.EXP, Mode: rank.IndependentDifferences, Seed: 7}
	otherRanks := make(map[string][]float64, len(others))
	for _, key := range others {
		otherRanks[key] = aOthers.RankVector(key, vectors[key])
	}
	// X's weights: assignment 1 has the low weight (3), assignment 0 the
	// high (6). Gaps: Δ1 = 3, Δ2 = 3.
	const d1W, d2W = 3.0, 3.0
	const k = 2
	const N = 300

	var sumMax, sumMin, sumL1 float64
	for s1 := 0; s1 < N; s1++ {
		v1 := (float64(s1) + 0.5) / N
		d1 := -math.Log1p(-v1) / d1W
		for s2 := 0; s2 < N; s2++ {
			v2 := (float64(s2) + 0.5) / N
			d2 := -math.Log1p(-v2) / d2W
			xRanks := []float64{math.Min(d1, d2), d1} // high weight gets the min
			sketches := make([]*sketch.BottomK, 2)
			for b := 0; b < 2; b++ {
				bld := sketch.NewBottomKBuilder(k)
				bld.Offer("X", xRanks[b], vectors["X"][b])
				for _, key := range others {
					bld.Offer(key, otherRanks[key][b], vectors[key][b])
				}
				sketches[b] = bld.Sketch()
			}
			c := NewColocated(rank.Assigner{Family: rank.EXP, Mode: rank.IndependentDifferences, Seed: 7},
				sketches, func(key string) []float64 { return vectors[key] })
			sumMax += c.Inclusive(MaxOf()).AdjustedWeight("X")
			sumMin += c.Inclusive(MinOf()).AdjustedWeight("X")
			sumL1 += c.Inclusive(RangeOf()).AdjustedWeight("X")
		}
	}
	total := float64(N * N)
	if got := sumMax / total; math.Abs(got-6) > 0.06 {
		t.Fatalf("indep-diff inclusive max integral = %v, want 6", got)
	}
	if got := sumMin / total; math.Abs(got-3) > 0.04 {
		t.Fatalf("indep-diff inclusive min integral = %v, want 3", got)
	}
	if got := sumL1 / total; math.Abs(got-3) > 0.04 {
		t.Fatalf("indep-diff inclusive L1 integral = %v, want 3", got)
	}
}

func TestColocatedMonteCarloAllModes(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	keys, cols := testData(60, rng)
	const k = 15
	const trials = 2000

	truthMax := truthOf(keys, cols, func(v []float64) float64 { return dataset.MaxR(v, nil) })
	truthMin := truthOf(keys, cols, func(v []float64) float64 { return dataset.MinR(v, nil) })
	truthS1 := truthOf(keys, cols, func(v []float64) float64 { return v[1] })

	type mc struct {
		name   string
		mode   rank.Coordination
		family rank.Family
		f      AggFunc
		truth  float64
	}
	cases := []mc{
		{"shared/max", rank.SharedSeed, rank.IPPS, MaxOf(), truthMax},
		{"shared/min", rank.SharedSeed, rank.IPPS, MinOf(), truthMin},
		{"shared/single", rank.SharedSeed, rank.IPPS, SingleOf(1), truthS1},
		{"independent/max", rank.Independent, rank.IPPS, MaxOf(), truthMax},
		{"independent/single", rank.Independent, rank.IPPS, SingleOf(1), truthS1},
		{"indep-diff/max", rank.IndependentDifferences, rank.EXP, MaxOf(), truthMax},
		{"indep-diff/min", rank.IndependentDifferences, rank.EXP, MinOf(), truthMin},
		{"indep-diff/single", rank.IndependentDifferences, rank.EXP, SingleOf(1), truthS1},
	}
	for _, c := range cases {
		c := c
		runMonteCarlo(t, "colocated/"+c.name, trials, c.truth, func(seed uint64) float64 {
			a := rank.Assigner{Family: c.family, Mode: c.mode, Seed: seed}
			return buildColocated(a, k, keys, cols).Inclusive(c.f).Estimate(nil)
		})
	}
}

func TestGenericConsistentUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	keys, cols := testData(60, rng)
	truth := truthOf(keys, cols, func(v []float64) float64 { return dataset.MaxR(v, nil) })
	runMonteCarlo(t, "generic-consistent/max", 2500, truth, func(seed uint64) float64 {
		a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: seed}
		return buildColocated(a, 15, keys, cols).GenericConsistent(MaxOf()).Estimate(nil)
	})
}

func TestInclusiveDominatesPlainPerKey(t *testing.T) {
	// Lemma 8.2 mechanics: the inclusive estimator's inclusion probability is
	// at least the plain RC probability for every key in the sketch of b, so
	// a_inclusive ≤ a_plain pointwise.
	rng := rand.New(rand.NewSource(71))
	keys, cols := testData(60, rng)
	for trial := 0; trial < 20; trial++ {
		for _, mode := range []rank.Coordination{rank.SharedSeed, rank.Independent} {
			a := rank.Assigner{Family: rank.IPPS, Mode: mode, Seed: uint64(trial) + 1}
			c := buildColocated(a, 10, keys, cols)
			for b := range cols {
				plain := c.Plain(b)
				incl := c.Inclusive(SingleOf(b))
				for _, key := range plain.Keys() {
					ap, ai := plain.AdjustedWeight(key), incl.AdjustedWeight(key)
					if ai > ap+1e-9 {
						t.Fatalf("trial %d %v b=%d: inclusive a(%s)=%v > plain %v", trial, mode, b, key, ai, ap)
					}
				}
			}
		}
	}
}

func TestSharedSeedSmallerSummaryThanIndependent(t *testing.T) {
	// Theorem 4.2: shared-seed coordination minimizes the expected number of
	// distinct keys. Check the averages over many seeds.
	rng := rand.New(rand.NewSource(73))
	keys, cols := testData(150, rng)
	const k = 20
	const trials = 60
	mean := func(mode rank.Coordination, family rank.Family) float64 {
		total := 0
		for trial := 0; trial < trials; trial++ {
			a := rank.Assigner{Family: family, Mode: mode, Seed: uint64(trial) + 1}
			total += buildColocated(a, k, keys, cols).DistinctKeys()
		}
		return float64(total) / trials
	}
	shared := mean(rank.SharedSeed, rank.IPPS)
	indep := mean(rank.Independent, rank.IPPS)
	if shared >= indep {
		t.Fatalf("shared-seed summary size %v should be below independent %v", shared, indep)
	}
	// Independent-differences is also consistent and should beat independent.
	indiff := mean(rank.IndependentDifferences, rank.EXP)
	indepEXP := mean(rank.Independent, rank.EXP)
	if indiff >= indepEXP {
		t.Fatalf("indep-diff summary size %v should be below independent %v", indiff, indepEXP)
	}
}

func TestEstimateWhereVectorPredicate(t *testing.T) {
	// Vector predicates (only expressible on colocated summaries) — e.g.
	// "keys whose assignment-0 weight at least doubled in assignment 1".
	rng := rand.New(rand.NewSource(79))
	keys, cols := testData(60, rng)
	pred := func(_ string, vec []float64) bool { return vec[1] >= 2*vec[0] }
	truth := 0.0
	vec := make([]float64, 3)
	for i := range keys {
		for b := range cols {
			vec[b] = cols[b][i]
		}
		if pred("", vec) {
			truth += vec[1]
		}
	}
	runMonteCarlo(t, "vec-pred", 2500, truth, func(seed uint64) float64 {
		a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: seed}
		return buildColocated(a, 15, keys, cols).EstimateWhere(SingleOf(1), pred)
	})
}

func TestColocatedAccessorsAndValidation(t *testing.T) {
	keys := []string{"a", "b", "c"}
	cols := [][]float64{{1, 2, 3}, {4, 5, 6}}
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 1}
	c := buildColocated(a, 2, keys, cols)

	if c.NumAssignments() != 2 {
		t.Fatal("NumAssignments")
	}
	if c.DistinctKeys() < 2 || c.DistinctKeys() > 3 {
		t.Fatalf("DistinctKeys = %d", c.DistinctKeys())
	}
	if got := len(c.Keys()); got != c.DistinctKeys() {
		t.Fatalf("Keys length %d", got)
	}
	if vec, ok := c.Vector(c.Keys()[0]); !ok || len(vec) != 2 {
		t.Fatal("Vector accessor")
	}
	if _, ok := c.Vector("zzz"); ok {
		t.Fatal("Vector should miss unknown key")
	}
	if c.Sketch(1) == nil {
		t.Fatal("Sketch accessor")
	}
	assertPanics(t, func() { c.InclusionProbability("zzz") })
	assertPanics(t, func() { NewColocated(a, nil, nil) })
	assertPanics(t, func() {
		NewColocated(a, []*sketch.BottomK{c.Sketch(0).(*sketch.BottomK)}, func(string) []float64 { return []float64{1, 2, 3} })
	})
	ind := rank.Assigner{Family: rank.IPPS, Mode: rank.Independent, Seed: 1}
	ci := buildColocated(ind, 2, keys, cols)
	assertPanics(t, func() { ci.GenericConsistent(MaxOf()) })
}

func TestColocatedExactWhenKCoversSet(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	keys, cols := testData(25, rng)
	vec := make([]float64, 3)
	for _, mode := range []struct {
		m rank.Coordination
		f rank.Family
	}{{rank.SharedSeed, rank.IPPS}, {rank.Independent, rank.IPPS}, {rank.IndependentDifferences, rank.EXP}} {
		a := rank.Assigner{Family: mode.f, Mode: mode.m, Seed: 3}
		c := buildColocated(a, 50, keys, cols)
		aw := c.Inclusive(RangeOf())
		for i, key := range keys {
			for b := range cols {
				vec[b] = cols[b][i]
			}
			want := dataset.RangeR(vec, nil)
			if math.Abs(aw.AdjustedWeight(key)-want) > 1e-9 {
				t.Fatalf("%v: a^L1(%s) = %v, want exactly %v", mode.m, key, aw.AdjustedWeight(key), want)
			}
		}
	}
}

func TestInclusionProbabilityOrdering(t *testing.T) {
	// For identical thresholds, 1 − Π(1−F_b) ≥ max_b F_b: the independent
	// inclusive probability is at least the shared-seed one. (It does not
	// mean independent is better — its combined summary is larger for the
	// same k.)
	rng := rand.New(rand.NewSource(89))
	keys, cols := testData(60, rng)
	aS := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 11}
	cS := buildColocated(aS, 10, keys, cols)
	for _, key := range cS.Keys() {
		vec, _ := cS.Vector(key)
		pShared := cS.InclusionProbability(key)
		// Recompute Eq. (5) with the same thresholds.
		q := 1.0
		for b := range cols {
			q *= 1 - rank.IPPS.CDF(vec[b], cS.Sketch(b).RankExcluding(key))
		}
		if pInd := 1 - q; pInd < pShared-1e-12 {
			t.Fatalf("key %s: independent-form p %v < shared-seed p %v", key, pInd, pShared)
		}
	}
}

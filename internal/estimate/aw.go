// Package estimate implements the paper's estimators (Sections 5–7): the
// Horvitz–Thompson and Rank-Conditioning single-assignment estimators, the
// inclusive estimators for colocated summaries (Section 6), and the s-set and
// l-set estimators for dispersed summaries (Section 7), for all coordination
// modes and both rank families.
//
// Every estimator produces an adjusted-weights summary (AW-summary): a map
// from sampled keys to nonnegative adjusted f-weights a^(f)(i) with
// E[a^(f)(i)] = f(i) (keys outside the summary implicitly have a = 0). A
// subpopulation aggregate Σ_{i: d(i)} f(i) is then estimated by summing the
// adjusted weights of sampled keys that satisfy the predicate d — which may
// be chosen after the summary was built.
package estimate

import (
	"fmt"
	"math"
	"slices"

	"coordsample/internal/dataset"
)

// AWSummary holds adjusted f-weights for the sampled keys, together with
// per-key variance estimates when the producing estimator supplied inclusion
// probabilities. The zero value is an empty summary.
type AWSummary struct {
	weights map[string]float64
	vars    map[string]float64
	// sorted is the deterministic-summation key order, built once by the
	// producing estimator (finalized). Keys are never deleted, so the cache
	// is current exactly when its length matches the map's; a key added
	// after finalization simply falls back to sorting per estimate.
	sorted []string
}

// NewAWSummary creates an empty summary with capacity hint n.
func NewAWSummary(n int) AWSummary {
	return AWSummary{
		weights: make(map[string]float64, n),
		vars:    make(map[string]float64, n),
	}
}

// Set assigns adjusted weight a to key. Nonpositive values are dropped (they
// are equivalent to the implicit zero).
func (s AWSummary) Set(key string, a float64) {
	if a > 0 {
		s.weights[key] = a
	}
}

// SetWithProb assigns adjusted weight a to key along with the inclusion
// probability p that produced it (a = f/p). It records the per-key variance
// estimator a²(1−p), whose conditional expectation is exactly
// VAR[a(i) | r^(−i)] = f(i)²(1/p − 1): summed over a subpopulation it
// estimates the query variance under the zero-covariance property
// (Conjecture 8.1, proved for the single-assignment RC estimators).
func (s AWSummary) SetWithProb(key string, a, p float64) {
	if a <= 0 {
		return
	}
	s.weights[key] = a
	if p > 0 && p < 1 {
		s.vars[key] = a * a * (1 - p)
	}
}

// setWithVar records a positive adjusted weight together with an explicitly
// computed per-key variance estimate. SetWithProb's a²(1−p) formula assumes
// a single inclusion event; estimators whose a(i) is a sum of parts with
// correlated inclusion events (the discarded-samples total, whose parts are
// conditioned on different thresholds) compute the unbiased variance
// estimate themselves and record it here.
func (s AWSummary) setWithVar(key string, a, v float64) {
	if a <= 0 {
		return
	}
	s.weights[key] = a
	if v > 0 {
		s.vars[key] = v
	}
}

// VarianceOf returns the per-key variance estimate recorded for key (zero
// when the key is absent, was included with certainty, or the producing
// estimator did not track probabilities).
func (s AWSummary) VarianceOf(key string) float64 { return s.vars[key] }

// AdjustedWeight returns a^(f)(key), zero when the key is not in the summary.
func (s AWSummary) AdjustedWeight(key string) float64 { return s.weights[key] }

// Len returns the number of keys with positive adjusted weight.
func (s AWSummary) Len() int { return len(s.weights) }

// Keys returns the summarized keys in sorted order.
func (s AWSummary) Keys() []string {
	keys := make([]string, 0, len(s.weights))
	for k := range s.weights {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// finalized returns the summary with its sorted key order precomputed, so
// the estimate methods sort once per summary instead of once per call.
// Every estimator calls it on the fully populated summary it returns.
func (s AWSummary) finalized() AWSummary {
	s.sorted = s.Keys()
	return s
}

// sortedKeys returns the deterministic summation order, reusing the
// finalized cache when it is still current.
func (s AWSummary) sortedKeys() []string {
	if s.sorted != nil && len(s.sorted) == len(s.weights) {
		return s.sorted
	}
	return s.Keys()
}

// neumaierSum accumulates float64 values with Neumaier's improved
// Kahan–Babuška compensation: the rounding error of every addition is
// captured in a running compensation term, so the result is nearly exact
// regardless of magnitude ordering or cancellation.
type neumaierSum struct{ sum, comp float64 }

func (n *neumaierSum) add(x float64) {
	t := n.sum + x
	if math.Abs(n.sum) >= math.Abs(x) {
		n.comp += (n.sum - t) + x
	} else {
		n.comp += (x - t) + n.sum
	}
	n.sum = t
}

func (n *neumaierSum) value() float64 { return n.sum + n.comp }

// Estimate returns the unbiased estimate of Σ_{i: d(i)} f(i): the sum of
// adjusted weights over sampled keys selected by pred (nil selects all).
//
// The sum is taken in sorted key order with Neumaier compensation, so the
// result is deterministic — bit-identical across calls, runs, and
// processes for the same summary — rather than wobbling in the last ulp
// with Go's randomized map iteration order. This is what lets a combiner
// process reproduce an in-process estimate exactly (see cmd/cws-merge).
func (s AWSummary) Estimate(pred dataset.Pred) float64 {
	var total neumaierSum
	for _, key := range s.sortedKeys() {
		if pred == nil || pred(key) {
			total.add(s.weights[key])
		}
	}
	return total.value()
}

// EstimateWithStdErr returns the unbiased estimate of Σ_{i: d(i)} f(i)
// together with an estimated standard error, computed from the per-key
// variance estimators a(i)²(1−p_i). The variance estimator is unbiased per
// key; summing across keys is exact under zero covariances (Conjecture 8.1)
// and empirically accurate for all the estimators in this package. For L1
// summaries produced by Sub the reported error is conservative (an upper
// bound: Lemma 8.6 shows the max/min cross-term only reduces variance).
// Like Estimate, both sums are deterministic (sorted order, Neumaier
// compensation).
func (s AWSummary) EstimateWithStdErr(pred dataset.Pred) (estimate, stderr float64) {
	var total, variance neumaierSum
	for _, key := range s.sortedKeys() {
		if pred == nil || pred(key) {
			total.add(s.weights[key])
			variance.add(s.vars[key])
		}
	}
	return total.value(), math.Sqrt(variance.value())
}

// EstimateScaled returns the unbiased estimate of Σ_{i: d(i)} h(i) for a
// secondary numeric function h with h(i) > 0 ⇒ f(i) > 0, via the standard
// ratio trick Σ a(i)·h(i)/f(i) (Section 3). scale(key) must return
// h(key)/f(key) computed from the auxiliary attributes stored with the key.
// Deterministic like Estimate (sorted order, Neumaier compensation).
func (s AWSummary) EstimateScaled(pred dataset.Pred, scale func(key string) float64) float64 {
	var total neumaierSum
	for _, key := range s.sortedKeys() {
		if pred == nil || pred(key) {
			total.add(s.weights[key] * scale(key))
		}
	}
	return total.value()
}

// Sub returns the per-key difference summary a − b. It implements Eq. (17):
// a^(L1 R)(i) = a^(maxR)(i) − a^(minR)(i). For consistent rank assignments
// Lemma 7.5 guarantees the differences are nonnegative; for independent
// ranks individual entries may be negative, and are kept so that the sum
// estimator remains unbiased. That includes keys present only in b: a key
// selected by the min estimator but not the max estimator contributes its
// full negative adjusted weight 0 − b(i). (Dropping such keys, as an
// earlier revision did, biases every difference estimate upward by
// E[b(i) · 1{i ∉ a-selection}].) Per-key variance estimates are combined
// as the sum of the operands' — a conservative upper bound, since by the
// Lemma 8.6 decomposition the max/min cross-term only subtracts.
func Sub(a, b AWSummary) AWSummary {
	return subScaled(a, b, 1)
}

// subScaled returns the per-key linear combination a − scale·b, the shared
// core of Sub (scale 1) and the discarded-samples pair L1 decomposition
// a^(sumR) − 2·a^(minR) (scale 2). Negative entries are kept, exactly as in
// Sub; per-key variances combine conservatively as var(a) + scale²·var(b).
func subScaled(a, b AWSummary, scale float64) AWSummary {
	out := NewAWSummary(a.Len())
	for key, av := range a.weights {
		if d := av - scale*b.weights[key]; d != 0 {
			out.weights[key] = d
			if v := a.vars[key] + scale*scale*b.vars[key]; v > 0 {
				out.vars[key] = v
			}
		}
	}
	for key, bv := range b.weights {
		if _, ok := a.weights[key]; ok {
			continue // handled above
		}
		out.weights[key] = -scale * bv
		if v := scale * scale * b.vars[key]; v > 0 {
			out.vars[key] = v
		}
	}
	return out.finalized()
}

// TopKeys returns up to n sampled keys in decreasing order of adjusted
// weight — the "representative keys" use case the paper contrasts with
// non-sample sketches (Section 2): heavy contributors to the aggregate,
// with their unbiased weight estimates.
func (s AWSummary) TopKeys(n int) []string {
	keys := make([]string, 0, len(s.weights))
	for k := range s.weights {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b string) int {
		wa, wb := s.weights[a], s.weights[b]
		switch {
		case wa > wb:
			return -1
		case wa < wb:
			return 1
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	})
	if len(keys) > n {
		keys = keys[:n]
	}
	return keys
}

// Kind enumerates the built-in aggregate functions over a key's weight
// vector.
type Kind int

const (
	// Single is f(i) = w^(b)(i), a single-assignment weighted sum.
	Single Kind = iota
	// Max is f(i) = w^(maxR)(i); sums are max-dominance norms.
	Max
	// Min is f(i) = w^(minR)(i); sums are min-dominance norms.
	Min
	// Range is f(i) = w^(L1 R)(i) = w^(maxR)(i) − w^(minR)(i).
	Range
	// LthLargest is f(i) = w^(ℓth-largest R)(i); quantiles over assignments.
	LthLargest
	// Total is f(i) = w^(sumR)(i) = Σ_{b∈R} w^(b)(i), the total weight
	// across the assignments of R — e.g. total traffic of a flow across
	// time periods. Unlike the other multi-assignment kinds it is a sum of
	// per-assignment parts, which is what lets the discarded-samples
	// estimator condition each part on its own sketch's threshold.
	Total
)

// String names the aggregate kind.
func (k Kind) String() string {
	switch k {
	case Single:
		return "single"
	case Max:
		return "max"
	case Min:
		return "min"
	case Range:
		return "L1"
	case LthLargest:
		return "lth-largest"
	case Total:
		return "total"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AggFunc identifies an aggregate f over weight vectors. R lists the relevant
// assignments (nil means all); B is the assignment for Single; L is the rank
// for LthLargest (1-based from the top).
type AggFunc struct {
	Kind Kind
	B    int
	R    []int
	L    int
}

// SingleOf, MaxOf, MinOf, RangeOf, TotalOf, and LthLargestOf are
// convenience constructors.
func SingleOf(b int) AggFunc   { return AggFunc{Kind: Single, B: b} }
func MaxOf(R ...int) AggFunc   { return AggFunc{Kind: Max, R: normR(R)} }
func MinOf(R ...int) AggFunc   { return AggFunc{Kind: Min, R: normR(R)} }
func RangeOf(R ...int) AggFunc { return AggFunc{Kind: Range, R: normR(R)} }
func TotalOf(R ...int) AggFunc { return AggFunc{Kind: Total, R: normR(R)} }
func LthLargestOf(l int, R ...int) AggFunc {
	return AggFunc{Kind: LthLargest, L: l, R: normR(R)}
}

func normR(R []int) []int {
	if len(R) == 0 {
		return nil
	}
	return R
}

// Eval computes f on a full weight vector (colocated evaluation).
func (f AggFunc) Eval(vec []float64) float64 {
	switch f.Kind {
	case Single:
		return vec[f.B]
	case Max:
		return dataset.MaxR(vec, f.R)
	case Min:
		return dataset.MinR(vec, f.R)
	case Range:
		return dataset.RangeR(vec, f.R)
	case LthLargest:
		return dataset.LthLargestR(vec, f.R, f.L)
	case Total:
		return dataset.SumR(vec, f.R)
	default:
		panic("estimate: unknown aggregate kind")
	}
}

// Relevant returns the relevant assignment list of f, expanding nil R to all
// of 0..numAssignments−1 (or {B} for Single).
func (f AggFunc) Relevant(numAssignments int) []int {
	if f.Kind == Single {
		return []int{f.B}
	}
	if f.R != nil {
		return f.R
	}
	R := make([]int, numAssignments)
	for b := range R {
		R[b] = b
	}
	return R
}

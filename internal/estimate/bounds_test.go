package estimate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"coordsample/internal/dataset"
	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

// TestMixedSketchSizes verifies the paper's remark that the derivations
// extend to bottom-k^(b) sketches with different sizes per assignment: a
// dispersed summary with k = {8, 20, 14} stays unbiased.
func TestMixedSketchSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	keys, cols := testData(60, rng)
	ksizes := []int{8, 20, 14}
	truthMin := truthOf(keys, cols, func(v []float64) float64 { return dataset.MinR(v, nil) })
	truthMax := truthOf(keys, cols, func(v []float64) float64 { return dataset.MaxR(v, nil) })

	build := func(seed uint64) *Dispersed {
		a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: seed}
		sketches := make([]*sketch.BottomK, len(cols))
		for b := range cols {
			bld := sketch.NewBottomKBuilder(ksizes[b])
			for i, key := range keys {
				bld.Offer(key, a.Rank(key, b, cols[b][i]), cols[b][i])
			}
			sketches[b] = bld.Sketch()
		}
		return NewDispersed(a, sketches)
	}
	runMonteCarlo(t, "mixed-k/min-l", 2500, truthMin, func(seed uint64) float64 {
		return build(seed).MinLSet(nil).Estimate(nil)
	})
	runMonteCarlo(t, "mixed-k/max", 2500, truthMax, func(seed uint64) float64 {
		return build(seed).Max(nil).Estimate(nil)
	})
}

// TestLemma74ProbabilityRatio checks p^max/p^min ≤ w^max/w^min for both
// families across random weights and thresholds — the inequality behind the
// nonnegativity of the L1 estimator.
func TestLemma74ProbabilityRatio(t *testing.T) {
	f := func(wMaxRaw, wMinRaw, tauRaw uint32) bool {
		wMin := 0.001 + float64(wMinRaw%100000)/100
		wMax := wMin + float64(wMaxRaw%100000)/100
		tau := 1e-6 + float64(tauRaw%1000000)/1e4
		for _, fam := range []rank.Family{rank.IPPS, rank.EXP} {
			pMax := fam.CDF(wMax, tau)
			pMin := fam.CDF(wMin, tau)
			if pMin == 0 {
				continue
			}
			if pMax/pMin > wMax/wMin*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestLemma84MaxDominatesDirectSketch: the dispersed max estimator's
// per-key variance is at most that of an RC estimator applied to a direct
// bottom-k sketch of (I, w^maxR) built from the r^(minR) ranks (Lemma 8.4).
// Verified per realized run by comparing inclusion probabilities.
func TestLemma84MaxDominatesDirectSketch(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	keys, cols := testData(80, rng)
	numAsg := len(cols)
	for trial := 0; trial < 25; trial++ {
		a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: uint64(trial) + 1}
		k := 5 + trial%10
		d := buildDispersed(a, k, keys, cols)

		// Direct bottom-k sketch of (I, w^maxR) under r^(minR) (Lemma 4.1).
		direct := sketch.NewBottomKBuilder(k)
		vec := make([]float64, numAsg)
		for i, key := range keys {
			for b := range cols {
				vec[b] = cols[b][i]
			}
			ranks := a.RankVector(key, vec)
			direct.Offer(key, rank.MinRank(ranks, nil), dataset.MaxR(vec, nil))
		}
		ds := direct.Sketch()

		for i, key := range keys {
			for b := range cols {
				vec[b] = cols[b][i]
			}
			wMax := dataset.MaxR(vec, nil)
			if wMax == 0 {
				continue
			}
			// Dispersed-summary inclusion probability for the max estimator.
			rMinK := math.Inf(1)
			for b := 0; b < numAsg; b++ {
				if tau := d.Sketch(b).RankExcluding(key); tau < rMinK {
					rMinK = tau
				}
			}
			pSummary := rank.IPPS.CDF(wMax, rMinK)
			pDirect := rank.IPPS.CDF(wMax, ds.RankExcluding(key))
			if pSummary < pDirect-1e-12 {
				t.Fatalf("trial %d key %s: summary p %v below direct-sketch p %v",
					trial, key, pSummary, pDirect)
			}
		}
	}
}

// TestSigmaVBoundSingleAssignment checks the analytic bound
// ΣV[a^(b)] ≤ w(I)²/(k−2) for the RC bottom-k estimator, using the exact
// conditional variance per run.
func TestSigmaVBoundSingleAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	n := 200
	keys := make([]string, n)
	weights := make([]float64, n)
	total := 0.0
	for i := range keys {
		keys[i] = "k" + itoa(i)
		weights[i] = math.Exp(rng.NormFloat64() * 2)
		total += weights[i]
	}
	for _, k := range []int{5, 15, 40} {
		bound := total * total / float64(k-2)
		for trial := 0; trial < 10; trial++ {
			a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: uint64(trial)*13 + 1}
			bld := sketch.NewBottomKBuilder(k)
			for i, key := range keys {
				bld.Offer(key, a.Rank(key, 0, weights[i]), weights[i])
			}
			s := bld.Sketch()
			sv := 0.0
			for i, key := range keys {
				p := rank.IPPS.CDF(weights[i], s.RankExcluding(key))
				if p > 0 && p < 1 {
					sv += weights[i] * weights[i] * (1/p - 1)
				}
			}
			// The bound holds in expectation over rank assignments; per-run
			// realizations concentrate well below it for IPPS ranks, and a
			// 2× slack keeps the test robust.
			if sv > 2*bound {
				t.Fatalf("k=%d trial %d: conditional ΣV %v breaches 2×bound %v", k, trial, sv, bound)
			}
		}
	}
}

// TestLemma83ColocatedVarianceIdentities: per key, VAR[a^min] =
// min_b VAR[a^(b)], VAR[a^max] = max_b VAR[a^(b)], and
// VAR[a^L1] ≤ VAR[a^max] for the inclusive estimators, which share one
// inclusion probability per key.
func TestLemma83ColocatedVarianceIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	keys, cols := testData(60, rng)
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 77}
	c := buildColocated(a, 12, keys, cols)
	for _, key := range c.Keys() {
		vec, _ := c.Vector(key)
		p := c.InclusionProbability(key)
		if p <= 0 || p >= 1 {
			continue
		}
		varOf := func(f float64) float64 { return f * f * (1/p - 1) }
		wMin, wMax := dataset.MinR(vec, nil), dataset.MaxR(vec, nil)
		minSingle, maxSingle := math.Inf(1), 0.0
		for b := range vec {
			v := varOf(vec[b])
			if v < minSingle {
				minSingle = v
			}
			if v > maxSingle {
				maxSingle = v
			}
		}
		if got := varOf(wMin); math.Abs(got-minSingle) > 1e-9*maxSingle {
			t.Fatalf("key %s: VAR[min] %v != min_b VAR[b] %v", key, got, minSingle)
		}
		if got := varOf(wMax); math.Abs(got-maxSingle) > 1e-9*maxSingle {
			t.Fatalf("key %s: VAR[max] %v != max_b VAR[b] %v", key, got, maxSingle)
		}
		if varOf(wMax-wMin) > varOf(wMax)+1e-12 {
			t.Fatalf("key %s: VAR[L1] above VAR[max]", key)
		}
	}
}

// TestQuickStreamEquivalence drives the bottom-k stream builder with
// quick-generated inputs against the sort-based oracle.
func TestQuickStreamEquivalence(t *testing.T) {
	f := func(raw []uint32, kRaw uint8) bool {
		k := int(kRaw%20) + 1
		b := sketch.NewBottomKBuilder(k)
		type item struct {
			key  string
			rank float64
		}
		var items []item
		for i, r := range raw {
			it := item{key: "q" + itoa(i), rank: float64(r%100000) / 100000}
			items = append(items, it)
			b.Offer(it.key, it.rank, 1)
		}
		s := b.Sketch()
		// Oracle: sort by (rank, key).
		for i := 0; i < len(items); i++ {
			for j := i + 1; j < len(items); j++ {
				if items[j].rank < items[i].rank ||
					(items[j].rank == items[i].rank && items[j].key < items[i].key) {
					items[i], items[j] = items[j], items[i]
				}
			}
		}
		want := len(items)
		if want > k {
			want = k
		}
		if s.Size() != want {
			return false
		}
		for i := 0; i < want; i++ {
			if s.Entries()[i].Key != items[i].key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

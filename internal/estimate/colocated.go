package estimate

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

// Colocated is a summary of colocated-weights data (Section 6): the set of
// keys included in at least one of the |W| embedded bottom-k sketches,
// together with each included key's full weight vector (readily available in
// the colocated model) and the per-assignment rank thresholds.
type Colocated struct {
	assigner rank.Assigner
	sketches []AssignmentSketch
	keys     []string
	vectors  [][]float64
	index    map[string]int
}

// VecPred selects a subpopulation using the key and its full weight vector —
// the richer predicates the colocated model supports.
type VecPred func(key string, vec []float64) bool

// NewColocated builds a colocated summary from per-assignment bottom-k
// sketches and a source of full weight vectors for the union keys. vectors
// is called once per distinct sampled key and must return the key's complete
// weight vector (one entry per assignment).
func NewColocated(assigner rank.Assigner, sketches []*sketch.BottomK, vectors func(key string) []float64) *Colocated {
	views := make([]AssignmentSketch, len(sketches))
	for b, s := range sketches {
		views[b] = s
	}
	return NewColocatedFromSketches(assigner, views, vectors)
}

// NewColocatedPoisson builds a colocated summary whose embedded samples are
// Poisson-τ^(b) sketches; the inclusive-estimator expressions are obtained
// by substituting τ^(b) for r^(b)_k(I∖{i}) (Section 6).
func NewColocatedPoisson(assigner rank.Assigner, sketches []*sketch.Poisson, vectors func(key string) []float64) *Colocated {
	views := make([]AssignmentSketch, len(sketches))
	for b, s := range sketches {
		views[b] = s
	}
	return NewColocatedFromSketches(assigner, views, vectors)
}

// NewColocatedFromSketches builds a colocated summary from arbitrary
// per-assignment sketch views.
func NewColocatedFromSketches(assigner rank.Assigner, sketches []AssignmentSketch, vectors func(key string) []float64) *Colocated {
	if len(sketches) == 0 {
		panic("estimate: colocated summary needs at least one sketch")
	}
	set := make(map[string]bool)
	for _, s := range sketches {
		for _, e := range s.Entries() {
			set[e.Key] = true
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	c := &Colocated{
		assigner: assigner,
		sketches: sketches,
		keys:     keys,
		vectors:  make([][]float64, len(keys)),
		index:    make(map[string]int, len(keys)),
	}
	for i, key := range keys {
		vec := vectors(key)
		if len(vec) != len(sketches) {
			panic(fmt.Sprintf("estimate: weight vector for %q has %d entries, want %d", key, len(vec), len(sketches)))
		}
		c.vectors[i] = vec
		c.index[key] = i
	}
	return c
}

// NumAssignments returns |W|.
func (c *Colocated) NumAssignments() int { return len(c.sketches) }

// Assigner returns the rank assigner the embedded sketches were built with.
func (c *Colocated) Assigner() rank.Assigner { return c.assigner }

// DistinctKeys returns the number of distinct keys in the combined summary.
func (c *Colocated) DistinctKeys() int { return len(c.keys) }

// Keys returns the summarized keys in sorted order (shared slice).
func (c *Colocated) Keys() []string { return c.keys }

// Vector returns the stored weight vector of a summarized key.
func (c *Colocated) Vector(key string) ([]float64, bool) {
	if i, ok := c.index[key]; ok {
		return c.vectors[i], true
	}
	return nil, false
}

// Sketch returns the embedded bottom-k sketch of assignment b.
func (c *Colocated) Sketch(b int) AssignmentSketch { return c.sketches[b] }

// InclusionProbability returns p(i, r^(−i)) — the probability, conditioned
// on the ranks of all other keys, that key i enters the combined summary
// (Eq. 4). The expressions depend on the coordination mode: Eq. (5) for
// independent ranks, Eq. (6) for shared-seed, and the A_ℓ decomposition for
// independent-differences (Section 6).
func (c *Colocated) InclusionProbability(key string) float64 {
	i, ok := c.index[key]
	if !ok {
		panic(fmt.Sprintf("estimate: key %q not in summary", key))
	}
	return c.inclusionProbability(key, c.vectors[i])
}

// InclusionProbabilityFor computes p(i, r^(−i)) for an arbitrary key with
// the given full weight vector — including keys that were not sampled, whose
// conditioning thresholds are the k-th smallest ranks. Evaluation harnesses
// use this to compute the exact conditional variance Σ_i f(i)²(1/p_i − 1)
// of the inclusive estimators from one realized rank assignment.
func (c *Colocated) InclusionProbabilityFor(key string, vec []float64) float64 {
	if len(vec) != len(c.sketches) {
		panic("estimate: weight vector length mismatch")
	}
	return c.inclusionProbability(key, vec)
}

func (c *Colocated) inclusionProbability(key string, vec []float64) float64 {
	family := c.assigner.Family
	taus := make([]float64, len(c.sketches))
	for b, s := range c.sketches {
		taus[b] = s.RankExcluding(key)
	}
	switch c.assigner.Mode {
	case rank.Independent:
		q := 1.0
		for b, w := range vec {
			q *= 1 - family.CDF(w, taus[b])
		}
		return clampP(1 - q)
	case rank.SharedSeed:
		p := 0.0
		for b, w := range vec {
			if f := family.CDF(w, taus[b]); f > p {
				p = f
			}
		}
		return clampP(p)
	case rank.IndependentDifferences:
		return clampP(indepDiffInclusion(family, vec, taus))
	default:
		panic("estimate: unknown coordination mode")
	}
}

// indepDiffInclusion computes p = Σ_ℓ Pr[A_ℓ] for independent-differences
// ranks: sort the weight vector ascending, let Δ_j be the consecutive weight
// gaps and M_j the suffix maximum of the thresholds in sorted order; then
// Pr[A_ℓ] = Π_{j<ℓ}(1 − F_{Δ_j}(M_j))·F_{Δ_ℓ}(M_ℓ) with A_ℓ the event that
// ℓ is the first index whose gap variable falls below its suffix threshold.
func indepDiffInclusion(family rank.Family, vec, taus []float64) float64 {
	if family != rank.EXP {
		panic("estimate: independent-differences requires EXP ranks")
	}
	h := len(vec)
	order := make([]int, h)
	for j := range order {
		order[j] = j
	}
	slices.SortFunc(order, func(x, y int) int { return cmp.Compare(vec[x], vec[y]) })

	// Suffix maxima of thresholds in sorted order.
	M := make([]float64, h)
	suffix := math.Inf(-1)
	for j := h - 1; j >= 0; j-- {
		if t := taus[order[j]]; t > suffix {
			suffix = t
		}
		M[j] = suffix
	}
	p := 0.0
	survive := 1.0 // Π_{j<ℓ} (1 − F_{Δ_j}(M_j))
	prev := 0.0
	for j := 0; j < h; j++ {
		delta := vec[order[j]] - prev
		prev = vec[order[j]]
		fj := family.CDF(delta, M[j])
		p += survive * fj
		survive *= 1 - fj
	}
	return p
}

// Inclusive computes the inclusive estimator of Section 6 for aggregate f:
// every key in the combined summary receives a^(f)(i) = f(i)/p(i, r^(−i)).
// This is the most inclusive template selection and therefore dominates, per
// key, every other template estimator on the same summary (Lemma 5.1) —
// including the plain single-sketch RC estimator (Lemma 8.2).
func (c *Colocated) Inclusive(f AggFunc) AWSummary {
	out := NewAWSummary(len(c.keys))
	for i, key := range c.keys {
		v := f.Eval(c.vectors[i])
		if v <= 0 {
			continue
		}
		p := c.inclusionProbability(key, c.vectors[i])
		if p > 0 {
			out.SetWithProb(key, v/p, p)
		}
	}
	return out.finalized()
}

// EstimateWhere returns the inclusive estimate of Σ_{i: d(i)} f(i) for a
// vector predicate d, exploiting the full weight vectors stored with the
// summary.
func (c *Colocated) EstimateWhere(f AggFunc, pred VecPred) float64 {
	total := 0.0
	for i, key := range c.keys {
		if pred != nil && !pred(key, c.vectors[i]) {
			continue
		}
		v := f.Eval(c.vectors[i])
		if v <= 0 {
			continue
		}
		p := c.inclusionProbability(key, c.vectors[i])
		if p > 0 {
			total += v / p
		}
	}
	return total
}

// GenericConsistent is the generic estimator for consistent ranks (Eq. 7):
// selection requires min_{b∈R} r^(b)(i) below r^(minR)_k(I∖{i}), and
// p = F_{w^(maxR)(i)}(r^(minR)_k(I∖{i})). Simpler but weaker than Inclusive
// (less inclusive selection ⇒ no smaller variance, Lemma 5.1); provided for
// the ablation comparison.
func (c *Colocated) GenericConsistent(f AggFunc) AWSummary {
	if !c.assigner.Mode.Consistent() {
		panic("estimate: generic-consistent estimator requires consistent ranks")
	}
	family := c.assigner.Family
	R := f.Relevant(len(c.sketches))
	out := NewAWSummary(len(c.keys))
	for i, key := range c.keys {
		v := f.Eval(c.vectors[i])
		if v <= 0 {
			continue
		}
		rMinK := math.Inf(1)
		for _, b := range R {
			if t := c.sketches[b].RankExcluding(key); t < rMinK {
				rMinK = t
			}
		}
		selected := false
		for _, b := range R {
			if e, ok := c.sketches[b].Lookup(key); ok && e.Rank < rMinK {
				selected = true
				break
			}
		}
		if !selected {
			continue
		}
		wMax := 0.0
		for _, b := range R {
			if w := c.vectors[i][b]; w > wMax {
				wMax = w
			}
		}
		p := family.CDF(wMax, rMinK)
		if p > 0 {
			out.SetWithProb(key, v/clampP(p), clampP(p))
		}
	}
	return out.finalized()
}

// Plain returns the plain single-sketch estimator for assignment b (RC for
// bottom-k samples, HT for Poisson samples), using only the keys of the
// embedded sample of b — the baseline the inclusive estimator is compared
// against in Section 9.3.
func (c *Colocated) Plain(b int) AWSummary {
	s := c.sketches[b]
	out := NewAWSummary(len(s.Entries()))
	for _, e := range s.Entries() {
		p := c.assigner.Family.CDF(e.Weight, s.RankExcluding(e.Key))
		if p > 0 {
			out.SetWithProb(e.Key, e.Weight/p, p)
		}
	}
	return out.finalized()
}

package cliquery

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"

	"coordsample/internal/dataset"
	"coordsample/internal/estimate"
)

// HTTPParams is the parsed query-string vocabulary of GET /query, shared
// by the single-node server and the cluster scatter-gather router so both
// front ends accept the identical parameter grammar and dispatch through
// the same AnswerVia path.
type HTTPParams struct {
	Agg    string             // query name (required)
	B      int                // assignment index for "sum" (default 0)
	L      int                // ℓ for "lth" (default 1)
	R      []int              // assignment subset (nil = all)
	Prefix string             // raw key-prefix predicate ("" = none)
	Pred   dataset.Pred       // compiled Prefix (nil = all keys)
	Est    estimate.Estimator // estimator family (default AW)
	Epochs string             // raw epoch-window selector ("" = cumulative)
}

// ParseHTTPParams parses the GET /query parameters against n assignments.
// Error messages are client-facing (they travel in 400 bodies).
func ParseHTTPParams(q url.Values, n int) (HTTPParams, error) {
	var p HTTPParams
	p.Agg = q.Get("agg")
	if p.Agg == "" {
		return p, fmt.Errorf("missing agg parameter (want one of %s)", Queries)
	}
	var err error
	if p.B, err = intParam(q.Get("b"), 0); err != nil {
		return p, fmt.Errorf("bad b parameter: %w", err)
	}
	if p.L, err = intParam(q.Get("l"), 1); err != nil {
		return p, fmt.Errorf("bad l parameter: %w", err)
	}
	if p.R, err = ParseR(q.Get("R"), n); err != nil {
		return p, fmt.Errorf("bad R parameter: %w", err)
	}
	if p.Prefix = q.Get("prefix"); p.Prefix != "" {
		prefix := p.Prefix
		p.Pred = func(key string) bool { return strings.HasPrefix(key, prefix) }
	}
	if p.Est, err = estimate.ParseEstimator(q.Get("est")); err != nil {
		return p, fmt.Errorf("bad est parameter: %w", err)
	}
	p.Epochs = q.Get("epochs")
	return p, nil
}

// intParam parses an optional integer parameter.
func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

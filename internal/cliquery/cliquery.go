// Package cliquery dispatches the query vocabulary shared by the
// cws-sketch and cws-merge command-line tools onto a dispersed summary, so
// both binaries answer identically-named queries identically — which is
// what makes "query at the site" and "query shipped files at the
// combiner" directly comparable.
package cliquery

import (
	"fmt"
	"strconv"
	"strings"

	"coordsample/internal/dataset"
	"coordsample/internal/estimate"
)

// Queries lists the supported query names for usage messages.
const Queries = "sum, min, max, L1, lth, jaccard"

// ParseR parses a comma-separated assignment subset against n assignments;
// the empty string selects all (nil).
func ParseR(s string, n int) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var R []int
	for _, part := range strings.Split(s, ",") {
		b, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || b < 0 || b >= n {
			return nil, fmt.Errorf("invalid assignment index %q", part)
		}
		R = append(R, b)
	}
	return R, nil
}

// Answer evaluates the named query over the summary restricted to pred
// (nil selects all keys): "sum" (single assignment b), "min"/"max"
// dominance, "L1" difference, "lth" (ℓ-th largest, ℓ = l), or "jaccard"
// (clamped min/max ratio, 1 by convention for an empty subpopulation). It
// returns a human-readable label alongside the estimate.
func Answer(d *estimate.Dispersed, query string, b int, R []int, l int, pred dataset.Pred) (string, float64, error) {
	nR := len(R)
	if R == nil {
		nR = d.NumAssignments()
	}
	switch query {
	case "sum":
		if b < 0 || b >= d.NumAssignments() {
			return "", 0, fmt.Errorf("assignment index %d out of range (have %d assignments)", b, d.NumAssignments())
		}
		return fmt.Sprintf("sum b=%d", b), d.Single(b).Estimate(pred), nil
	case "min":
		return "min-dominance", d.MinLSet(R).Estimate(pred), nil
	case "max":
		return "max-dominance", d.Max(R).Estimate(pred), nil
	case "L1":
		return "L1 difference", d.RangeLSet(R).Estimate(pred), nil
	case "lth":
		if l < 1 || l > nR {
			return "", 0, fmt.Errorf("-l %d out of range for |R|=%d", l, nR)
		}
		return fmt.Sprintf("%d-th largest", l), d.LthLargest(R, l).Estimate(pred), nil
	case "jaccard":
		mx := d.Max(R).Estimate(pred)
		if mx <= 0 {
			// 0/0 convention: an empty subpopulation is identical to itself.
			return "weighted Jaccard", 1, nil
		}
		j := d.MinLSet(R).Estimate(pred) / mx
		if j < 0 {
			j = 0
		} else if j > 1 {
			j = 1
		}
		return "weighted Jaccard", j, nil
	default:
		return "", 0, fmt.Errorf("unknown query %q (want one of %s)", query, Queries)
	}
}

// Package cliquery dispatches the query vocabulary shared by every query
// front end — the cws-sketch and cws-merge command-line tools and the
// cws-serve HTTP server — onto a dispersed summary, so all of them answer
// identically-named queries identically. That single dispatch path is what
// makes "query at the site", "query shipped files at the combiner", and
// "query the live server" directly comparable: the same query over the
// same sketches yields the bit-identical estimate everywhere.
//
// Answering a query has two phases with very different costs: building the
// AW-summary for the aggregate (runs an estimator over the union of the
// sketches' keys) and evaluating the subpopulation sum over it (a cached,
// deterministic summation). The SummaryBuilder hook separates them so a
// resident process can memoize phase one per frozen snapshot — every
// front end still funnels through AnswerVia, keeping one query path.
package cliquery

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"coordsample/internal/dataset"
	"coordsample/internal/estimate"
)

// Queries lists the supported query names for usage messages.
const Queries = "sum, total, min, max, L1, lth, jaccard"

// ParseR parses a comma-separated assignment subset against n assignments;
// the empty string selects all (nil). Duplicate indices are rejected here —
// the estimators treat R as a set and panic on duplicates, which must
// surface as a parse error, not a crash, when R comes from a CLI flag or a
// query parameter.
func ParseR(s string, n int) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var R []int
	seen := make(map[int]bool)
	for _, part := range strings.Split(s, ",") {
		b, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || b < 0 || b >= n {
			return nil, fmt.Errorf("invalid assignment index %q", part)
		}
		if seen[b] {
			return nil, fmt.Errorf("duplicate assignment index %d in %q", b, s)
		}
		seen[b] = true
		R = append(R, b)
	}
	return R, nil
}

// ParseEpochRange parses an epoch-range selector as accepted by the
// server's ?epochs= query parameter and cws-merge's -epochs flag: "3..7"
// selects epochs 3 through 7 inclusive, a bare "5" selects epoch 5 alone.
// Epochs are 1-based (epoch n is published by the n-th freeze); whether
// the range is still retained is the callee's check, not the parser's.
func ParseEpochRange(s string) (lo, hi int, err error) {
	first, second, ranged := strings.Cut(s, "..")
	lo, err = strconv.Atoi(strings.TrimSpace(first))
	if err == nil && ranged {
		hi, err = strconv.Atoi(strings.TrimSpace(second))
	} else if err == nil {
		hi = lo
	}
	if err != nil || lo < 1 || hi < lo {
		return 0, 0, fmt.Errorf("invalid epoch range %q (want \"lo..hi\" with 1 <= lo <= hi, or a single epoch)", s)
	}
	return lo, hi, nil
}

// SummaryBuilder supplies the AW-summary for one aggregate. key canonically
// identifies the aggregate (query name plus its b/R/ℓ parameters — never the
// subpopulation predicate, which is applied later); build constructs the
// summary from the dispersed estimators. The pass-through builder is Direct;
// a resident server installs a snapshot-scoped memo instead, so repeated
// queries against one frozen snapshot rebuild nothing.
type SummaryBuilder func(key string, build func() estimate.AWSummary) estimate.AWSummary

// Direct is the memoization-free SummaryBuilder: it builds the summary on
// every call. The one-shot command-line tools use it.
func Direct(key string, build func() estimate.AWSummary) estimate.AWSummary { return build() }

// aggKey canonicalizes an aggregate identity for SummaryBuilder memoization.
// The estimator family name is part of the key: a memoizing server must
// never serve an AW-family summary for a discarded-family query (or vice
// versa), even though some kinds coincide in value. A nil R and an
// explicitly enumerated all-assignments R select the same estimator, but
// callers pass one form consistently per process, so the textual form is
// canonical enough — a conservative key can only cause an extra build,
// never a wrong reuse.
func aggKey(est, query string, R []int, extra int) string {
	var sb strings.Builder
	sb.WriteString(est)
	sb.WriteByte('/')
	sb.WriteString(query)
	sb.WriteByte('/')
	sb.WriteString(strconv.Itoa(extra))
	sb.WriteString("/R=")
	for i, b := range R {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(b))
	}
	if R == nil {
		sb.WriteString("all")
	}
	return sb.String()
}

// Answer evaluates the named query over the summary restricted to pred
// (nil selects all keys): "sum" (single assignment b), "total" (sum across
// the assignments of R), "min"/"max" dominance, "L1" difference, "lth"
// (ℓ-th largest, ℓ = l), or "jaccard" (clamped ratio, 1 by convention for
// an empty subpopulation), using the estimator family est (nil selects the
// default AW family). It returns a human-readable label, the estimate, and
// the estimated standard error (NaN for jaccard, a ratio of estimates with
// no unbiased variance estimator).
func Answer(d *estimate.Dispersed, query string, b int, R []int, l int, pred dataset.Pred, est estimate.Estimator) (string, float64, float64, error) {
	return AnswerVia(d, query, b, R, l, pred, est, Direct)
}

// AnswerVia is Answer with an explicit SummaryBuilder: every AW-summary the
// query needs is obtained through via, letting the caller cache summaries
// across calls that share a frozen snapshot. The estimate for a given
// summary and predicate is deterministic (sorted-order Neumaier summation),
// so memoizing the summary cannot change any answer.
func AnswerVia(d *estimate.Dispersed, query string, b int, R []int, l int, pred dataset.Pred, est estimate.Estimator, via SummaryBuilder) (string, float64, float64, error) {
	if est == nil {
		est = estimate.AWEstimator
	}
	nR := len(R)
	if R == nil {
		nR = d.NumAssignments()
	}
	// summarize obtains one aggregate's summary through the builder, keyed
	// by estimator family + aggregate identity.
	summarize := func(query string, extra int, f estimate.AggFunc) estimate.AWSummary {
		return via(aggKey(est.Name(), query, R, extra), func() estimate.AWSummary { return est.Summary(d, f) })
	}
	withErr := func(label string, aw estimate.AWSummary) (string, float64, float64, error) {
		v, se := aw.EstimateWithStdErr(pred)
		return label, v, se, nil
	}
	switch query {
	case "sum":
		if b < 0 || b >= d.NumAssignments() {
			return "", 0, 0, fmt.Errorf("assignment index %d out of range (have %d assignments)", b, d.NumAssignments())
		}
		aw := via(aggKey(est.Name(), "sum", nil, b), func() estimate.AWSummary { return est.Summary(d, estimate.SingleOf(b)) })
		return withErr(fmt.Sprintf("sum b=%d", b), aw)
	case "total":
		return withErr("total weight", summarize("total", 0, estimate.TotalOf(R...)))
	case "min":
		return withErr("min-dominance", summarize("min", 0, estimate.MinOf(R...)))
	case "max":
		return withErr("max-dominance", summarize("max", 0, estimate.MaxOf(R...)))
	case "L1":
		return withErr("L1 difference", summarize("L1", 0, estimate.RangeOf(R...)))
	case "lth":
		if l < 1 || l > nR {
			return "", 0, 0, fmt.Errorf("-l %d out of range for |R|=%d", l, nR)
		}
		return withErr(fmt.Sprintf("%d-th largest", l), summarize("lth", l, estimate.LthLargestOf(l, R...)))
	case "jaccard":
		// The numerator reuses the "min" query's summary. The denominator is
		// Σ w^(maxR): directly for the classic family (sharing the "max"
		// summary); via Σ w^(sumR) − Σ w^(minR) when a discarded-samples
		// total is available for the subset (sharing the "total" summary) —
		// that is the tighter union-size denominator of arXiv:0903.0625.
		mn := summarize("min", 0, estimate.MinOf(R...)).Estimate(pred)
		var mx float64
		if est.Name() == estimate.DiscardedEstimator.Name() && nR == 2 {
			mx = summarize("total", 0, estimate.TotalOf(R...)).Estimate(pred) - mn
		} else {
			mx = summarize("max", 0, estimate.MaxOf(R...)).Estimate(pred)
		}
		if mx <= 0 {
			// 0/0 convention: an empty subpopulation is identical to itself.
			return "weighted Jaccard", 1, math.NaN(), nil
		}
		j := mn / mx
		if j < 0 {
			j = 0
		} else if j > 1 {
			j = 1
		}
		return "weighted Jaccard", j, math.NaN(), nil
	default:
		return "", 0, 0, fmt.Errorf("unknown query %q (want one of %s)", query, Queries)
	}
}

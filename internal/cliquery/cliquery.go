// Package cliquery dispatches the query vocabulary shared by every query
// front end — the cws-sketch and cws-merge command-line tools and the
// cws-serve HTTP server — onto a dispersed summary, so all of them answer
// identically-named queries identically. That single dispatch path is what
// makes "query at the site", "query shipped files at the combiner", and
// "query the live server" directly comparable: the same query over the
// same sketches yields the bit-identical estimate everywhere.
//
// Answering a query has two phases with very different costs: building the
// AW-summary for the aggregate (runs an estimator over the union of the
// sketches' keys) and evaluating the subpopulation sum over it (a cached,
// deterministic summation). The SummaryBuilder hook separates them so a
// resident process can memoize phase one per frozen snapshot — every
// front end still funnels through AnswerVia, keeping one query path.
package cliquery

import (
	"fmt"
	"strconv"
	"strings"

	"coordsample/internal/dataset"
	"coordsample/internal/estimate"
)

// Queries lists the supported query names for usage messages.
const Queries = "sum, min, max, L1, lth, jaccard"

// ParseR parses a comma-separated assignment subset against n assignments;
// the empty string selects all (nil). Duplicate indices are rejected here —
// the estimators treat R as a set and panic on duplicates, which must
// surface as a parse error, not a crash, when R comes from a CLI flag or a
// query parameter.
func ParseR(s string, n int) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var R []int
	seen := make(map[int]bool)
	for _, part := range strings.Split(s, ",") {
		b, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || b < 0 || b >= n {
			return nil, fmt.Errorf("invalid assignment index %q", part)
		}
		if seen[b] {
			return nil, fmt.Errorf("duplicate assignment index %d in %q", b, s)
		}
		seen[b] = true
		R = append(R, b)
	}
	return R, nil
}

// ParseEpochRange parses an epoch-range selector as accepted by the
// server's ?epochs= query parameter and cws-merge's -epochs flag: "3..7"
// selects epochs 3 through 7 inclusive, a bare "5" selects epoch 5 alone.
// Epochs are 1-based (epoch n is published by the n-th freeze); whether
// the range is still retained is the callee's check, not the parser's.
func ParseEpochRange(s string) (lo, hi int, err error) {
	first, second, ranged := strings.Cut(s, "..")
	lo, err = strconv.Atoi(strings.TrimSpace(first))
	if err == nil && ranged {
		hi, err = strconv.Atoi(strings.TrimSpace(second))
	} else if err == nil {
		hi = lo
	}
	if err != nil || lo < 1 || hi < lo {
		return 0, 0, fmt.Errorf("invalid epoch range %q (want \"lo..hi\" with 1 <= lo <= hi, or a single epoch)", s)
	}
	return lo, hi, nil
}

// SummaryBuilder supplies the AW-summary for one aggregate. key canonically
// identifies the aggregate (query name plus its b/R/ℓ parameters — never the
// subpopulation predicate, which is applied later); build constructs the
// summary from the dispersed estimators. The pass-through builder is Direct;
// a resident server installs a snapshot-scoped memo instead, so repeated
// queries against one frozen snapshot rebuild nothing.
type SummaryBuilder func(key string, build func() estimate.AWSummary) estimate.AWSummary

// Direct is the memoization-free SummaryBuilder: it builds the summary on
// every call. The one-shot command-line tools use it.
func Direct(key string, build func() estimate.AWSummary) estimate.AWSummary { return build() }

// aggKey canonicalizes an aggregate identity for SummaryBuilder memoization.
// A nil R and an explicitly enumerated all-assignments R select the same
// estimator, but callers pass one form consistently per process, so the
// textual form is canonical enough — a conservative key can only cause an
// extra build, never a wrong reuse.
func aggKey(query string, R []int, extra int) string {
	var sb strings.Builder
	sb.WriteString(query)
	sb.WriteByte('/')
	sb.WriteString(strconv.Itoa(extra))
	sb.WriteString("/R=")
	for i, b := range R {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(b))
	}
	if R == nil {
		sb.WriteString("all")
	}
	return sb.String()
}

// Answer evaluates the named query over the summary restricted to pred
// (nil selects all keys): "sum" (single assignment b), "min"/"max"
// dominance, "L1" difference, "lth" (ℓ-th largest, ℓ = l), or "jaccard"
// (clamped min/max ratio, 1 by convention for an empty subpopulation). It
// returns a human-readable label alongside the estimate.
func Answer(d *estimate.Dispersed, query string, b int, R []int, l int, pred dataset.Pred) (string, float64, error) {
	return AnswerVia(d, query, b, R, l, pred, Direct)
}

// AnswerVia is Answer with an explicit SummaryBuilder: every AW-summary the
// query needs is obtained through via, letting the caller cache summaries
// across calls that share a frozen snapshot. The estimate for a given
// summary and predicate is deterministic (sorted-order Neumaier summation),
// so memoizing the summary cannot change any answer.
func AnswerVia(d *estimate.Dispersed, query string, b int, R []int, l int, pred dataset.Pred, via SummaryBuilder) (string, float64, error) {
	nR := len(R)
	if R == nil {
		nR = d.NumAssignments()
	}
	switch query {
	case "sum":
		if b < 0 || b >= d.NumAssignments() {
			return "", 0, fmt.Errorf("assignment index %d out of range (have %d assignments)", b, d.NumAssignments())
		}
		aw := via(aggKey("sum", nil, b), func() estimate.AWSummary { return d.Single(b) })
		return fmt.Sprintf("sum b=%d", b), aw.Estimate(pred), nil
	case "min":
		aw := via(aggKey("min", R, 0), func() estimate.AWSummary { return d.MinLSet(R) })
		return "min-dominance", aw.Estimate(pred), nil
	case "max":
		aw := via(aggKey("max", R, 0), func() estimate.AWSummary { return d.Max(R) })
		return "max-dominance", aw.Estimate(pred), nil
	case "L1":
		aw := via(aggKey("L1", R, 0), func() estimate.AWSummary { return d.RangeLSet(R) })
		return "L1 difference", aw.Estimate(pred), nil
	case "lth":
		if l < 1 || l > nR {
			return "", 0, fmt.Errorf("-l %d out of range for |R|=%d", l, nR)
		}
		aw := via(aggKey("lth", R, l), func() estimate.AWSummary { return d.LthLargest(R, l) })
		return fmt.Sprintf("%d-th largest", l), aw.Estimate(pred), nil
	case "jaccard":
		// Same max and min-l-set summaries the "max" and "min" queries use,
		// so a memoizing builder shares them across all three.
		mx := via(aggKey("max", R, 0), func() estimate.AWSummary { return d.Max(R) }).Estimate(pred)
		if mx <= 0 {
			// 0/0 convention: an empty subpopulation is identical to itself.
			return "weighted Jaccard", 1, nil
		}
		mn := via(aggKey("min", R, 0), func() estimate.AWSummary { return d.MinLSet(R) }).Estimate(pred)
		j := mn / mx
		if j < 0 {
			j = 0
		} else if j > 1 {
			j = 1
		}
		return "weighted Jaccard", j, nil
	default:
		return "", 0, fmt.Errorf("unknown query %q (want one of %s)", query, Queries)
	}
}

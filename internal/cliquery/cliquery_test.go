package cliquery

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"coordsample/internal/estimate"
	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

func buildSummary(t *testing.T) *estimate.Dispersed {
	t.Helper()
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 9}
	rng := rand.New(rand.NewSource(4))
	sketches := make([]*sketch.BottomK, 2)
	for b := range sketches {
		bld := sketch.NewBottomKBuilder(32)
		for i := 0; i < 300; i++ {
			key := "key-" + strconv.Itoa(i)
			w := math.Exp(rng.NormFloat64())
			bld.Offer(key, a.Rank(key, b, w), w)
		}
		sketches[b] = bld.Sketch()
	}
	return estimate.NewDispersed(a, sketches)
}

func TestAnswerDispatch(t *testing.T) {
	d := buildSummary(t)
	for _, q := range []string{"sum", "min", "max", "L1", "lth", "jaccard"} {
		label, v, err := Answer(d, q, 0, nil, 1, nil)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if label == "" || math.IsNaN(v) {
			t.Fatalf("%s: label %q value %v", q, label, v)
		}
	}
	// The dispatch must agree with the direct estimator calls.
	if _, v, _ := Answer(d, "L1", 0, nil, 1, nil); v != d.RangeLSet(nil).Estimate(nil) {
		t.Fatal("L1 dispatch diverges from RangeLSet")
	}
	if _, v, _ := Answer(d, "lth", 0, nil, 2, nil); v != d.LthLargest(nil, 2).Estimate(nil) {
		t.Fatal("lth dispatch diverges from LthLargest")
	}
	pred := func(key string) bool { return strings.HasSuffix(key, "1") }
	if _, v, _ := Answer(d, "max", 0, []int{1}, 1, pred); v != d.Max([]int{1}).Estimate(pred) {
		t.Fatal("predicate/R not forwarded")
	}
}

func TestAnswerErrors(t *testing.T) {
	d := buildSummary(t)
	for _, tc := range []struct {
		q    string
		b, l int
	}{
		{"nope", 0, 1},
		{"sum", 5, 1},
		{"sum", -1, 1},
		{"lth", 0, 0},
		{"lth", 0, 3},
	} {
		if _, _, err := Answer(d, tc.q, tc.b, nil, tc.l, nil); err == nil {
			t.Fatalf("%+v: expected error", tc)
		}
	}
}

func TestParseR(t *testing.T) {
	if R, err := ParseR("", 3); err != nil || R != nil {
		t.Fatalf("empty: %v %v", R, err)
	}
	R, err := ParseR("2, 0", 3)
	if err != nil || len(R) != 2 || R[0] != 2 || R[1] != 0 {
		t.Fatalf("parse: %v %v", R, err)
	}
	for _, bad := range []string{"x", "3", "-1", "1,,2"} {
		if _, err := ParseR(bad, 3); err == nil {
			t.Fatalf("%q: expected error", bad)
		}
	}
}

package cliquery

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"coordsample/internal/estimate"
	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

func buildSummary(t *testing.T) *estimate.Dispersed {
	t.Helper()
	a := rank.Assigner{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: 9}
	rng := rand.New(rand.NewSource(4))
	sketches := make([]*sketch.BottomK, 2)
	for b := range sketches {
		bld := sketch.NewBottomKBuilder(32)
		for i := 0; i < 300; i++ {
			key := "key-" + strconv.Itoa(i)
			w := math.Exp(rng.NormFloat64())
			bld.Offer(key, a.Rank(key, b, w), w)
		}
		sketches[b] = bld.Sketch()
	}
	return estimate.NewDispersed(a, sketches)
}

func TestAnswerDispatch(t *testing.T) {
	d := buildSummary(t)
	for _, q := range []string{"sum", "total", "min", "max", "L1", "lth", "jaccard"} {
		label, v, stderr, err := Answer(d, q, 0, nil, 1, nil, nil)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if label == "" || math.IsNaN(v) {
			t.Fatalf("%s: label %q value %v", q, label, v)
		}
		// Every query but the ratio reports an estimated standard error.
		if q == "jaccard" {
			if !math.IsNaN(stderr) {
				t.Fatalf("jaccard: stderr %v, want NaN (ratio has no unbiased variance estimator)", stderr)
			}
		} else if math.IsNaN(stderr) || stderr < 0 {
			t.Fatalf("%s: stderr %v, want a finite nonnegative value", q, stderr)
		}
	}
	// The dispatch must agree with the direct estimator calls.
	if _, v, _, _ := Answer(d, "L1", 0, nil, 1, nil, nil); v != d.RangeLSet(nil).Estimate(nil) {
		t.Fatal("L1 dispatch diverges from RangeLSet")
	}
	if _, v, _, _ := Answer(d, "lth", 0, nil, 2, nil, nil); v != d.LthLargest(nil, 2).Estimate(nil) {
		t.Fatal("lth dispatch diverges from LthLargest")
	}
	if _, v, _, _ := Answer(d, "total", 0, nil, 1, nil, nil); v != d.TotalUnion(nil).Estimate(nil) {
		t.Fatal("total dispatch diverges from TotalUnion")
	}
	pred := func(key string) bool { return strings.HasSuffix(key, "1") }
	if _, v, _, _ := Answer(d, "max", 0, []int{1}, 1, pred, nil); v != d.Max([]int{1}).Estimate(pred) {
		t.Fatal("predicate/R not forwarded")
	}
}

// TestAnswerEstimatorDispatch: the est argument selects the family. The
// discarded family must change the answers that per-sketch conditioning
// tightens (total, L1 on a pair) and agree where the families coincide.
func TestAnswerEstimatorDispatch(t *testing.T) {
	d := buildSummary(t)
	disc := estimate.DiscardedEstimator
	if _, v, _, _ := Answer(d, "total", 0, nil, 1, nil, disc); v != d.TotalDiscarded(nil).Estimate(nil) {
		t.Fatal("discarded total dispatch diverges from TotalDiscarded")
	}
	if _, v, _, _ := Answer(d, "L1", 0, nil, 1, nil, disc); v != d.RangeDiscarded(nil).Estimate(nil) {
		t.Fatal("discarded L1 dispatch diverges from RangeDiscarded")
	}
	if _, v, _, _ := Answer(d, "min", 0, nil, 1, nil, disc); v != d.MinLSet(nil).Estimate(nil) {
		t.Fatal("discarded min must coincide with the l-set estimator")
	}
	// Discarded jaccard composes min/(total − min) on a pair.
	_, j, _, err := Answer(d, "jaccard", 0, nil, 1, nil, disc)
	if err != nil {
		t.Fatal(err)
	}
	mn := d.MinLSet(nil).Estimate(nil)
	tot := d.TotalDiscarded(nil).Estimate(nil)
	if want := mn / (tot - mn); j != want && !(j == 0 && want < 0) && !(j == 1 && want > 1) {
		t.Fatalf("discarded jaccard = %v, want clamp(%v)", j, want)
	}
}

func TestAnswerErrors(t *testing.T) {
	d := buildSummary(t)
	for _, tc := range []struct {
		q    string
		b, l int
	}{
		{"nope", 0, 1},
		{"sum", 5, 1},
		{"sum", -1, 1},
		{"lth", 0, 0},
		{"lth", 0, 3},
	} {
		if _, _, _, err := Answer(d, tc.q, tc.b, nil, tc.l, nil, nil); err == nil {
			t.Fatalf("%+v: expected error", tc)
		}
	}
}

// TestAnswerViaMemoization: AnswerVia obtains every summary through the
// SummaryBuilder with a stable canonical key, never rebuilds what the
// builder returns, and gives bit-identical answers whether or not the
// builder memoizes. jaccard must share the max/min keys with the
// same-named queries.
func TestAnswerViaMemoization(t *testing.T) {
	d := buildSummary(t)
	cache := make(map[string]estimate.AWSummary)
	builds := make(map[string]int)
	memo := func(key string, build func() estimate.AWSummary) estimate.AWSummary {
		if aw, ok := cache[key]; ok {
			return aw
		}
		builds[key]++
		aw := build()
		cache[key] = aw
		return aw
	}

	queries := []struct {
		q string
		l int
	}{{"sum", 1}, {"total", 1}, {"min", 1}, {"max", 1}, {"L1", 1}, {"lth", 2}, {"jaccard", 1}}
	// Two passes: pass 2 must hit the memo for everything.
	for pass := 0; pass < 2; pass++ {
		for _, tc := range queries {
			_, got, _, err := AnswerVia(d, tc.q, 0, nil, tc.l, nil, nil, memo)
			if err != nil {
				t.Fatal(err)
			}
			_, want, _, err := Answer(d, tc.q, 0, nil, tc.l, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s (pass %d): memoized %v != direct %v", tc.q, pass, got, want)
			}
		}
	}
	for key, n := range builds {
		if n != 1 {
			t.Errorf("aggregate %q built %d times, want 1", key, n)
		}
	}
	// sum+total+min+max+L1+lth: jaccard reuses min and max, adding nothing.
	if len(builds) != 6 {
		t.Errorf("built %d distinct aggregates %v, want 6 (jaccard must share max/min)", len(builds), builds)
	}
	// The discarded family's jaccard reuses the min and total summaries it
	// already built for the same-named queries — and its memo keys must be
	// disjoint from the AW family's, so the same walk doubles the key count.
	before := len(builds)
	for pass := 0; pass < 2; pass++ {
		for _, tc := range queries {
			if _, _, _, err := AnswerVia(d, tc.q, 0, nil, tc.l, nil, estimate.DiscardedEstimator, memo); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(builds) != 2*before {
		t.Errorf("after the discarded-family pass: %d distinct aggregates %v, want %d (families must not share memo entries)",
			len(builds), builds, 2*before)
	}
}

// TestAnswerViaKeyDistinguishesParameters: different b, R, or ℓ must not
// collide in the memo key space.
func TestAnswerViaKeyDistinguishesParameters(t *testing.T) {
	d := buildSummary(t)
	seen := make(map[string]bool)
	record := func(key string, build func() estimate.AWSummary) estimate.AWSummary {
		if seen[key] {
			t.Errorf("memo key %q reused across different aggregates", key)
		}
		seen[key] = true
		return build()
	}
	calls := []struct {
		q    string
		b, l int
		R    []int
	}{
		{"sum", 0, 1, nil},
		{"sum", 1, 1, nil},
		{"min", 0, 1, nil},
		{"min", 0, 1, []int{0}},
		{"min", 0, 1, []int{1}},
		{"lth", 0, 1, nil},
		{"lth", 0, 2, nil},
	}
	for _, c := range calls {
		if _, _, _, err := AnswerVia(d, c.q, c.b, c.R, c.l, nil, nil, record); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != len(calls) {
		t.Fatalf("%d distinct keys for %d distinct aggregates: %v", len(seen), len(calls), seen)
	}
}

func TestParseEpochRange(t *testing.T) {
	for _, tc := range []struct {
		in     string
		lo, hi int
	}{
		{"3..7", 3, 7},
		{"5", 5, 5},
		{"1..1", 1, 1},
		{" 2 .. 4 ", 2, 4},
	} {
		lo, hi, err := ParseEpochRange(tc.in)
		if err != nil || lo != tc.lo || hi != tc.hi {
			t.Errorf("ParseEpochRange(%q) = %d..%d, %v; want %d..%d", tc.in, lo, hi, err, tc.lo, tc.hi)
		}
	}
	for _, bad := range []string{"", "0", "7..3", "0..2", "a..b", "1..", "..4", "1..2..3", "-1"} {
		if _, _, err := ParseEpochRange(bad); err == nil {
			t.Errorf("ParseEpochRange(%q): expected error", bad)
		}
	}
}

func TestParseR(t *testing.T) {
	if R, err := ParseR("", 3); err != nil || R != nil {
		t.Fatalf("empty: %v %v", R, err)
	}
	R, err := ParseR("2, 0", 3)
	if err != nil || len(R) != 2 || R[0] != 2 || R[1] != 0 {
		t.Fatalf("parse: %v %v", R, err)
	}
	// Duplicates must be a parse error: the estimators treat R as a set
	// and panic on them, which a CLI flag or query parameter must never
	// reach.
	for _, bad := range []string{"x", "3", "-1", "1,,2", "0,0", "1,2,1"} {
		if _, err := ParseR(bad, 3); err == nil {
			t.Fatalf("%q: expected error", bad)
		}
	}
}

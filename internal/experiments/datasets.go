package experiments

import (
	"coordsample/internal/datagen"
	"coordsample/internal/dataset"
)

// workloads bundles the generated datasets for one Options value. Generation
// is deterministic, so experiments that share a scale share identical data.
type workloads struct {
	opts Options

	ip1Flows []datagen.Flow
	ip2Flows []datagen.Flow
	ratings  *dataset.Dataset
	stocks   []datagen.StockDay
}

func newWorkloads(opts Options) *workloads {
	return &workloads{opts: opts}
}

func (w *workloads) ip1() []datagen.Flow {
	if w.ip1Flows == nil {
		w.ip1Flows = datagen.IPTrace(datagen.DefaultIPConfig1().Scale(w.opts.Scale))
	}
	return w.ip1Flows
}

func (w *workloads) ip2() []datagen.Flow {
	if w.ip2Flows == nil {
		w.ip2Flows = datagen.IPTrace(datagen.DefaultIPConfig2().Scale(w.opts.Scale))
	}
	return w.ip2Flows
}

func (w *workloads) netflix() *dataset.Dataset {
	if w.ratings == nil {
		w.ratings = datagen.Ratings(datagen.DefaultRatingsConfig().Scale(w.opts.Scale))
	}
	return w.ratings
}

func (w *workloads) stockTable() []datagen.StockDay {
	if w.stocks == nil {
		w.stocks = datagen.Stocks(datagen.DefaultStocksConfig().Scale(w.opts.Scale))
	}
	return w.stocks
}

// ip1Dispersed returns IP dataset1 in the dispersed model for the given key
// and weight attribute (two periods).
func (w *workloads) ip1Dispersed(key datagen.IPKey, weight datagen.IPWeight) *dataset.Dataset {
	return datagen.DispersedIP(w.ip1(), key, weight)
}

// ip2Dispersed returns IP dataset2 (four hourly assignments).
func (w *workloads) ip2Dispersed(key datagen.IPKey, weight datagen.IPWeight) *dataset.Dataset {
	return datagen.DispersedIP(w.ip2(), key, weight)
}

// ip1Colocated returns the colocated IP dataset1 for period 0.
func (w *workloads) ip1Colocated(key datagen.IPKey, weights []datagen.IPWeight) *dataset.Dataset {
	return datagen.ColocatedIP(w.ip1(), key, 0, weights)
}

// ip2ColocatedHour3 returns the colocated IP dataset2 for hour 3 (index 2),
// matching the paper's "Hour3" colocated workload.
func (w *workloads) ip2ColocatedHour3(key datagen.IPKey, weights []datagen.IPWeight) *dataset.Dataset {
	return datagen.ColocatedIP(w.ip2(), key, 2, weights)
}

// stocksDispersed returns the dispersed stocks dataset for one attribute
// across all 23 trading days.
func (w *workloads) stocksDispersed(attr datagen.StockAttr) *dataset.Dataset {
	return datagen.DispersedStocks(w.stockTable(), attr)
}

// stocksColocated returns the colocated stocks dataset for day 0
// (October 1), as in Figure 11.
func (w *workloads) stocksColocated() *dataset.Dataset {
	return datagen.ColocatedStocks(w.stockTable(), 0)
}

// firstR returns {0, 1, …, n−1}.
func firstR(n int) []int {
	R := make([]int, n)
	for i := range R {
		R[i] = i
	}
	return R
}

// capKs drops sweep values that exceed the number of keys (small-scale runs).
func capKs(ks []int, numKeys int) []int {
	out := make([]int, 0, len(ks))
	for _, k := range ks {
		if k < numKeys {
			out = append(out, k)
		}
	}
	if len(out) == 0 {
		k := numKeys / 2
		if k < 1 {
			k = 1
		}
		out = []int{k}
	}
	return out
}

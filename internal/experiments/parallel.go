package experiments

import (
	"runtime"
	"sync"
)

// parallelRuns evaluates fn for each run index concurrently and returns the
// per-run result vectors in run order, so that downstream accumulation is
// deterministic regardless of scheduling. fn must be safe for concurrent
// invocation (each run builds its own summaries from its own seed).
func parallelRuns(runs int, fn func(run int) []float64) [][]float64 {
	out := make([][]float64, runs)
	workers := runtime.GOMAXPROCS(0)
	if workers > runs {
		workers = runs
	}
	if workers <= 1 {
		for run := 0; run < runs; run++ {
			out[run] = fn(run)
		}
		return out
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for run := range work {
				out[run] = fn(run)
			}
		}()
	}
	for run := 0; run < runs; run++ {
		work <- run
	}
	close(work)
	wg.Wait()
	return out
}

// sumRuns folds per-run vectors into their componentwise sum (in run order,
// keeping floating-point results deterministic).
func sumRuns(results [][]float64) []float64 {
	if len(results) == 0 {
		return nil
	}
	total := make([]float64, len(results[0]))
	for _, vec := range results {
		for i, v := range vec {
			total[i] += v
		}
	}
	return total
}

package experiments

import (
	"fmt"
	"math"

	"coordsample/internal/datagen"
	"coordsample/internal/dataset"
	"coordsample/internal/estimate"
	"coordsample/internal/rank"
	"coordsample/internal/sketch"
)

// dispersedCombo names one dataset × key × weight × R panel of the dispersed
// evaluation figures.
type dispersedCombo struct {
	name string
	ds   func(w *workloads) *dataset.Dataset
	R    []int // nil means all assignments of the dataset
}

func ip1Combos() []dispersedCombo {
	return []dispersedCombo{
		{"IP1 destIP/4tuples", func(w *workloads) *dataset.Dataset {
			return w.ip1Dispersed(datagen.KeyDstIP, datagen.WeightFlows)
		}, nil},
		{"IP1 destIP/bytes", func(w *workloads) *dataset.Dataset {
			return w.ip1Dispersed(datagen.KeyDstIP, datagen.WeightBytes)
		}, nil},
		{"IP1 srcIP+destIP/packets", func(w *workloads) *dataset.Dataset {
			return w.ip1Dispersed(datagen.KeySrcDst, datagen.WeightPackets)
		}, nil},
		{"IP1 srcIP+destIP/bytes", func(w *workloads) *dataset.Dataset {
			return w.ip1Dispersed(datagen.KeySrcDst, datagen.WeightBytes)
		}, nil},
	}
}

func ip2Combos() []dispersedCombo {
	return []dispersedCombo{
		{"IP2 destIP/bytes hours{1,2}", func(w *workloads) *dataset.Dataset {
			return w.ip2Dispersed(datagen.KeyDstIP, datagen.WeightBytes)
		}, []int{0, 1}},
		{"IP2 destIP/bytes hours{1-4}", func(w *workloads) *dataset.Dataset {
			return w.ip2Dispersed(datagen.KeyDstIP, datagen.WeightBytes)
		}, nil},
		{"IP2 4tuple/bytes hours{1,2}", func(w *workloads) *dataset.Dataset {
			return w.ip2Dispersed(datagen.Key4Tuple, datagen.WeightBytes)
		}, []int{0, 1}},
		{"IP2 4tuple/bytes hours{1-4}", func(w *workloads) *dataset.Dataset {
			return w.ip2Dispersed(datagen.Key4Tuple, datagen.WeightBytes)
		}, nil},
	}
}

func netflixCombos() []dispersedCombo {
	months := func(n int) []int { return firstR(n) }
	return []dispersedCombo{
		{"Netflix months{1,2}", func(w *workloads) *dataset.Dataset { return w.netflix() }, months(2)},
		{"Netflix months{1-6}", func(w *workloads) *dataset.Dataset { return w.netflix() }, months(6)},
		{"Netflix months{1-12}", func(w *workloads) *dataset.Dataset { return w.netflix() }, nil},
	}
}

func stocksCombos(attr datagen.StockAttr) []dispersedCombo {
	mk := func(n int) dispersedCombo {
		return dispersedCombo{
			name: fmt.Sprintf("Stocks %s days{1-%d}", attr, n),
			ds:   func(w *workloads) *dataset.Dataset { return w.stocksDispersed(attr) },
			R:    firstR(n),
		}
	}
	return []dispersedCombo{mk(2), mk(5), mk(10), mk(15), mk(23)}
}

func comboR(c dispersedCombo, ds *dataset.Dataset) []int {
	if c.R != nil {
		return c.R
	}
	return ds.AllAssignments()
}

// pickSingles selects up to four representative assignment indexes for the
// per-assignment curves (the paper plots a handful for wide R).
func pickSingles(n int) []int {
	if n <= 4 {
		return firstR(n)
	}
	return []int{0, 1, n / 2, n - 1}
}

func fmtRatio(num, den float64) string {
	if den == 0 {
		return "inf"
	}
	r := num / den
	if math.IsInf(r, 0) || r > 1e6 {
		return fsci(r)
	}
	return ffix(r)
}

// ratioTable renders the Figure 3 series for one combo.
func ratioTable(title string, points []dispersedPoint) Table {
	t := Table{Title: title, Columns: []string{"k", "SV[ind-min]", "SV[coord-min-l]", "ratio"}}
	for _, p := range points {
		t.AddRow(fmt.Sprint(p.K), fsci(p.IndMin), fsci(p.MinL), fmtRatio(p.IndMin, p.MinL))
	}
	return t
}

// svTables renders the Figures 4–7 panels for one combo: absolute ΣV and
// normalized nΣV of ind-min, per-assignment singles, and the coordinated
// min-l/max/L1-l estimators.
func svTables(title string, points []dispersedPoint, names []string) []Table {
	singles := pickSingles(len(names))
	cols := []string{"k", "ind-min"}
	for _, b := range singles {
		cols = append(cols, names[b])
	}
	cols = append(cols, "coord-min-l", "coord-max", "coord-L1-l")

	abs := Table{Title: title + " — sum of square errors (ΣV)", Columns: cols}
	norm := Table{Title: title + " — normalized (nΣV)", Columns: cols}
	for _, p := range points {
		row := []string{fmt.Sprint(p.K), fsci(p.IndMin)}
		nrow := []string{fmt.Sprint(p.K), fsci(p.NIndMin)}
		for _, b := range singles {
			row = append(row, fsci(p.Singles[b]))
			nrow = append(nrow, fsci(p.NSingles[b]))
		}
		row = append(row, fsci(p.MinL), fsci(p.Max), fsci(p.L1L))
		nrow = append(nrow, fsci(p.NMinL), fsci(p.NMax), fsci(p.NL1L))
		abs.Rows = append(abs.Rows, row)
		norm.Rows = append(norm.Rows, nrow)
	}
	return []Table{abs, norm}
}

// slRatioTable renders the Figure 8 series for one combo.
func slRatioTable(title string, points []dispersedPoint) Table {
	t := Table{Title: title, Columns: []string{"k", "min-s/min-l", "L1-s/L1-l"}}
	for _, p := range points {
		t.AddRow(fmt.Sprint(p.K), fmtRatio(p.MinS, p.MinL), fmtRatio(p.L1S, p.L1L))
	}
	return t
}

func runDispersedFigure(opts Options, combos []dispersedCombo, render func(string, []dispersedPoint, []string) []Table) Result {
	opts = opts.WithDefaults()
	w := newWorkloads(opts)
	var res Result
	for _, c := range combos {
		ds := c.ds(w)
		R := comboR(c, ds)
		points := dispersedSweep(ds, R, opts.Ks, opts.Runs, opts.Seed)
		names := make([]string, len(R))
		for j, b := range R {
			names[j] = ds.AssignmentNames()[b]
		}
		res.Tables = append(res.Tables, render(c.name, points, names)...)
	}
	return res
}

func allDispersedCombos() []dispersedCombo {
	var combos []dispersedCombo
	combos = append(combos, ip1Combos()...)
	combos = append(combos, ip2Combos()...)
	combos = append(combos, netflixCombos()...)
	combos = append(combos, stocksCombos(datagen.High)...)
	combos = append(combos, stocksCombos(datagen.Volume)...)
	return combos
}

func init() {
	register(Experiment{
		ID: "fig1", Paper: "Figure 1",
		Desc: "Worked example: weighted set, IPPS ranks, Poisson and bottom-k samples with AW-summaries",
		Run:  runFig1,
	})
	register(Experiment{
		ID: "fig2", Paper: "Figure 2",
		Desc: "Worked example: three weight assignments, shared-seed vs independent ranks, bottom-3 samples",
		Run:  runFig2,
	})
	register(Experiment{
		ID: "fig3", Paper: "Figure 3",
		Desc: "ΣV[min,independent]/ΣV[min,coordinated l-set] vs k on all five datasets",
		Run: func(opts Options) Result {
			return runDispersedFigure(opts, allDispersedCombos(),
				func(title string, points []dispersedPoint, _ []string) []Table {
					return []Table{ratioTable(title, points)}
				})
		},
	})
	register(Experiment{
		ID: "fig4", Paper: "Figure 4",
		Desc: "IP dataset1 dispersed: ΣV and nΣV of ind-min, per-period, coord min-l/max/L1-l",
		Run: func(opts Options) Result {
			return runDispersedFigure(opts, ip1Combos(), svTables)
		},
	})
	register(Experiment{
		ID: "fig5", Paper: "Figure 5",
		Desc: "IP dataset2 dispersed: ΣV and nΣV across hour subsets",
		Run: func(opts Options) Result {
			return runDispersedFigure(opts, ip2Combos(), svTables)
		},
	})
	register(Experiment{
		ID: "fig6", Paper: "Figure 6",
		Desc: "Netflix dispersed: ΣV and nΣV across month subsets",
		Run: func(opts Options) Result {
			return runDispersedFigure(opts, netflixCombos(), svTables)
		},
	})
	register(Experiment{
		ID: "fig7", Paper: "Figure 7",
		Desc: "Stocks dispersed (high, volume): ΣV and nΣV across trading-day subsets",
		Run: func(opts Options) Result {
			combos := append(stocksCombos(datagen.High), stocksCombos(datagen.Volume)...)
			return runDispersedFigure(opts, combos, svTables)
		},
	})
	register(Experiment{
		ID: "fig8", Paper: "Figure 8",
		Desc: "ΣV ratio of s-set to l-set estimators for min and L1 on all datasets",
		Run: func(opts Options) Result {
			return runDispersedFigure(opts, allDispersedCombos(),
				func(title string, points []dispersedPoint, _ []string) []Table {
					return []Table{slRatioTable(title, points)}
				})
		},
	})
	register(Experiment{
		ID: "fig9", Paper: "Figure 9",
		Desc: "IP dataset1 colocated: inclusive/plain ΣV ratios (coordinated and independent)",
		Run: func(opts Options) Result {
			return runColocatedRatioFigure(opts, []colocatedCombo{
				{"IP1 colocated destIP", func(w *workloads) *dataset.Dataset {
					return w.ip1Colocated(datagen.KeyDstIP,
						[]datagen.IPWeight{datagen.WeightBytes, datagen.WeightPackets, datagen.WeightFlows, datagen.WeightUniform})
				}},
				{"IP1 colocated 4tuple", func(w *workloads) *dataset.Dataset {
					return w.ip1Colocated(datagen.Key4Tuple,
						[]datagen.IPWeight{datagen.WeightBytes, datagen.WeightPackets, datagen.WeightUniform})
				}},
			})
		},
	})
	register(Experiment{
		ID: "fig10", Paper: "Figure 10",
		Desc: "IP dataset2 colocated (hour 3): inclusive/plain ΣV ratios",
		Run: func(opts Options) Result {
			return runColocatedRatioFigure(opts, []colocatedCombo{
				{"IP2 colocated destIP hour3", func(w *workloads) *dataset.Dataset {
					return w.ip2ColocatedHour3(datagen.KeyDstIP,
						[]datagen.IPWeight{datagen.WeightBytes, datagen.WeightPackets, datagen.WeightFlows, datagen.WeightUniform})
				}},
				{"IP2 colocated 4tuple hour3", func(w *workloads) *dataset.Dataset {
					return w.ip2ColocatedHour3(datagen.Key4Tuple,
						[]datagen.IPWeight{datagen.WeightBytes, datagen.WeightPackets, datagen.WeightUniform})
				}},
			})
		},
	})
	register(Experiment{
		ID: "fig11", Paper: "Figure 11",
		Desc: "Stocks colocated (Oct 1, six attributes): inclusive/plain ΣV ratios",
		Run: func(opts Options) Result {
			return runColocatedRatioFigure(opts, []colocatedCombo{
				{"Stocks colocated Oct 1", func(w *workloads) *dataset.Dataset { return w.stocksColocated() }},
			})
		},
	})
	register(Experiment{
		ID: "fig12", Paper: "Figure 12",
		Desc: "IP dataset1 destIP: nΣV vs combined sample size (plain/inclusive × coord/ind)",
		Run: func(opts Options) Result {
			return runSizeFigure(opts, colocatedCombo{"IP1 destIP", func(w *workloads) *dataset.Dataset {
				return w.ip1Colocated(datagen.KeyDstIP,
					[]datagen.IPWeight{datagen.WeightBytes, datagen.WeightPackets, datagen.WeightFlows, datagen.WeightUniform})
			}})
		},
	})
	register(Experiment{
		ID: "fig13", Paper: "Figure 13",
		Desc: "IP dataset1 4tuple: nΣV vs combined sample size",
		Run: func(opts Options) Result {
			return runSizeFigure(opts, colocatedCombo{"IP1 4tuple", func(w *workloads) *dataset.Dataset {
				return w.ip1Colocated(datagen.Key4Tuple,
					[]datagen.IPWeight{datagen.WeightBytes, datagen.WeightPackets, datagen.WeightUniform})
			}})
		},
	})
	register(Experiment{
		ID: "fig14", Paper: "Figure 14",
		Desc: "IP dataset2 destIP hour3: nΣV vs combined sample size",
		Run: func(opts Options) Result {
			return runSizeFigure(opts, colocatedCombo{"IP2 destIP hour3", func(w *workloads) *dataset.Dataset {
				return w.ip2ColocatedHour3(datagen.KeyDstIP,
					[]datagen.IPWeight{datagen.WeightBytes, datagen.WeightPackets, datagen.WeightFlows, datagen.WeightUniform})
			}})
		},
	})
	register(Experiment{
		ID: "fig15", Paper: "Figure 15",
		Desc: "IP dataset2 4tuple hour3: nΣV vs combined sample size",
		Run: func(opts Options) Result {
			return runSizeFigure(opts, colocatedCombo{"IP2 4tuple hour3", func(w *workloads) *dataset.Dataset {
				return w.ip2ColocatedHour3(datagen.Key4Tuple,
					[]datagen.IPWeight{datagen.WeightBytes, datagen.WeightPackets, datagen.WeightFlows, datagen.WeightUniform})
			}})
		},
	})
	register(Experiment{
		ID: "fig16", Paper: "Figure 16",
		Desc: "Stocks colocated: nΣV vs combined sample size (high, volume)",
		Run: func(opts Options) Result {
			return runSizeFigure(opts, colocatedCombo{"Stocks Oct 1", func(w *workloads) *dataset.Dataset {
				return w.stocksColocated()
			}})
		},
	})
	register(Experiment{
		ID: "fig17", Paper: "Figure 17",
		Desc: "Sharing index of coordinated vs independent summaries on all colocated datasets",
		Run:  runFig17,
	})
}

// colocatedCombo names one colocated dataset panel.
type colocatedCombo struct {
	name string
	ds   func(w *workloads) *dataset.Dataset
}

func runColocatedRatioFigure(opts Options, combos []colocatedCombo) Result {
	opts = opts.WithDefaults()
	w := newWorkloads(opts)
	var res Result
	for _, c := range combos {
		ds := c.ds(w)
		points := colocatedRatioSweep(ds, opts.Ks, opts.Runs, opts.Seed)
		names := ds.AssignmentNames()
		coord := Table{Title: c.name + " — ΣV[inclusive,coord]/ΣV[plain]", Columns: append([]string{"k"}, names...)}
		ind := Table{Title: c.name + " — ΣV[inclusive,indep]/ΣV[plain]", Columns: append([]string{"k"}, names...)}
		for _, p := range points {
			rc := []string{fmt.Sprint(p.K)}
			ri := []string{fmt.Sprint(p.K)}
			for b := range names {
				rc = append(rc, ffix(p.RatioCoord[b]))
				ri = append(ri, ffix(p.RatioInd[b]))
			}
			coord.Rows = append(coord.Rows, rc)
			ind.Rows = append(ind.Rows, ri)
		}
		res.Tables = append(res.Tables, coord, ind)
	}
	return res
}

func runSizeFigure(opts Options, c colocatedCombo) Result {
	opts = opts.WithDefaults()
	w := newWorkloads(opts)
	ds := c.ds(w)
	points := sizeTradeoffSweep(ds, opts.Ks, opts.Runs, opts.Seed)
	names := ds.AssignmentNames()
	var res Result
	for b, name := range names {
		t := Table{
			Title: fmt.Sprintf("%s — %s: nΣV vs combined sample size", c.name, name),
			Columns: []string{"k", "size(coord)", "size(ind)",
				"plain,coord", "plain,ind", "incl,coord", "incl,ind"},
		}
		for _, p := range points {
			t.AddRow(fmt.Sprint(p.K), fint(p.SizeCoord), fint(p.SizeInd),
				fsci(p.NPlainCoord[b]), fsci(p.NPlainInd[b]),
				fsci(p.NInclusiveCoord[b]), fsci(p.NInclusiveInd[b]))
		}
		res.Tables = append(res.Tables, t)
	}
	return res
}

func runFig17(opts Options) Result {
	opts = opts.WithDefaults()
	w := newWorkloads(opts)
	combos := []colocatedCombo{
		{"IP1 destIP (4 assignments)", func(w *workloads) *dataset.Dataset {
			return w.ip1Colocated(datagen.KeyDstIP,
				[]datagen.IPWeight{datagen.WeightBytes, datagen.WeightPackets, datagen.WeightFlows, datagen.WeightUniform})
		}},
		{"IP1 4tuple (3 assignments)", func(w *workloads) *dataset.Dataset {
			return w.ip1Colocated(datagen.Key4Tuple,
				[]datagen.IPWeight{datagen.WeightBytes, datagen.WeightPackets, datagen.WeightUniform})
		}},
		{"Stocks (6 assignments)", func(w *workloads) *dataset.Dataset { return w.stocksColocated() }},
		{"IP2 destIP (4 assignments)", func(w *workloads) *dataset.Dataset {
			return w.ip2ColocatedHour3(datagen.KeyDstIP,
				[]datagen.IPWeight{datagen.WeightBytes, datagen.WeightPackets, datagen.WeightFlows, datagen.WeightUniform})
		}},
		{"IP2 4tuple (4 assignments)", func(w *workloads) *dataset.Dataset {
			return w.ip2ColocatedHour3(datagen.Key4Tuple,
				[]datagen.IPWeight{datagen.WeightBytes, datagen.WeightPackets, datagen.WeightFlows, datagen.WeightUniform})
		}},
	}
	var res Result
	for _, c := range combos {
		ds := c.ds(w)
		points := sharingSweep(ds, opts.Ks, opts.Runs, opts.Seed)
		t := Table{Title: "Sharing index — " + c.name, Columns: []string{"k", "coordinated", "independent"}}
		for _, p := range points {
			t.AddRow(fmt.Sprint(p.K), ffix(p.IndexCoord), ffix(p.IndexInd))
		}
		res.Tables = append(res.Tables, t)
	}
	return res
}

// runFig1 regenerates the Figure 1 worked example from the library's own
// machinery (ranks transcribed from the paper; see the note on the r(i3)
// typo in internal/sketch tests).
func runFig1(Options) Result {
	keys := []string{"i1", "i2", "i3", "i4", "i5", "i6"}
	weights := []float64{20, 10, 12, 20, 10, 10}
	ranks := []float64{0.011, 0.075, 0.0583, 0.046, 0.055, 0.037}

	var res Result
	base := Table{Title: "Weighted set and rank assignment", Columns: append([]string{"row"}, keys...)}
	wRow := []string{"w(i)"}
	rRow := []string{"r(i)"}
	for i := range keys {
		wRow = append(wRow, fmt.Sprint(weights[i]))
		rRow = append(rRow, fmt.Sprint(ranks[i]))
	}
	base.Rows = append(base.Rows, wRow, rRow)
	res.Tables = append(res.Tables, base)

	for k := 1; k <= 3; k++ {
		tau := sketch.SolveTau(rank.IPPS, weights, float64(k))
		pb := sketch.NewPoissonBuilder(tau)
		bb := sketch.NewBottomKBuilder(k)
		for i, key := range keys {
			pb.Offer(key, ranks[i], weights[i])
			bb.Offer(key, ranks[i], weights[i])
		}
		ps := pb.Sketch()
		bs := bb.Sketch()
		paw := estimate.PoissonHT(ps, rank.IPPS)
		baw := estimate.BottomKRC(bs, rank.IPPS)

		t := Table{Title: fmt.Sprintf("k=%d: Poisson (τ=%.4f) and bottom-k (r_{k+1}=%.4f) AW-summaries", k, tau, bs.Threshold()),
			Columns: append([]string{"summary"}, keys...)}
		pRow := []string{"Poisson a(i)"}
		bRow := []string{"bottom-k a(i)"}
		for _, key := range keys {
			pRow = append(pRow, fmt.Sprintf("%.2f", paw.AdjustedWeight(key)))
			bRow = append(bRow, fmt.Sprintf("%.2f", baw.AdjustedWeight(key)))
		}
		t.Rows = append(t.Rows, pRow, bRow)
		res.Tables = append(res.Tables, t)
	}
	return res
}

// runFig2 regenerates the Figure 2 worked example: consistent shared-seed
// ranks computed from the published seeds, and the resulting bottom-3
// samples per assignment.
func runFig2(Options) Result {
	keys := []string{"i1", "i2", "i3", "i4", "i5", "i6"}
	u := []float64{0.22, 0.75, 0.07, 0.92, 0.55, 0.37}
	weights := [][]float64{
		{15, 0, 10, 5, 10, 10},
		{20, 10, 12, 20, 0, 10},
		{10, 15, 15, 0, 15, 10},
	}
	var res Result
	t := Table{Title: "Consistent shared-seed IPPS ranks (computed as u(i)/w(b)(i))",
		Columns: append([]string{"assignment"}, keys...)}
	samples := Table{Title: "Bottom-3 samples per assignment", Columns: []string{"assignment", "sample"}}
	for b := range weights {
		row := []string{fmt.Sprintf("w(%d)", b+1)}
		bb := sketch.NewBottomKBuilder(3)
		for i, key := range keys {
			r := rank.IPPS.Quantile(weights[b][i], u[i])
			if math.IsInf(r, 1) {
				row = append(row, "+inf")
			} else {
				row = append(row, fmt.Sprintf("%.4f", r))
			}
			bb.Offer(key, r, weights[b][i])
		}
		t.Rows = append(t.Rows, row)
		s := bb.Sketch()
		names := ""
		for j, e := range s.Entries() {
			if j > 0 {
				names += ", "
			}
			names += e.Key
		}
		samples.AddRow(fmt.Sprintf("w(%d)", b+1), names)
	}
	res.Tables = append(res.Tables, t, samples)
	return res
}

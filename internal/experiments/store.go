package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"time"

	"coordsample/internal/core"
	"coordsample/internal/rank"
	"coordsample/internal/server"
	"coordsample/internal/sketch"
	"coordsample/internal/store"
)

func init() {
	register(Experiment{
		ID:    "store",
		Paper: "not from the paper",
		Desc:  "durable epoch store: freeze-persist overhead vs a memory-only server, recovery time vs epoch count, and epoch-range query latency; every answer verified bit-identical",
		Run:   runStore,
	})
}

// storeEpochStream builds epochs of disjoint-key offers (the server's
// pre-aggregation contract across epochs) with heavy-tailed weights and
// per-assignment churn.
func storeEpochStream(opts Options, epochs int) [][]server.Offer {
	perEpoch := int(12000 * opts.Scale)
	if perEpoch < 200 {
		perEpoch = 200
	}
	rng := rand.New(rand.NewSource(int64(opts.Seed)))
	chunks := make([][]server.Offer, epochs)
	key := 0
	for e := range chunks {
		for i := 0; i < perEpoch; i++ {
			k := fmt.Sprintf("key-%08d", key)
			key++
			base := math.Exp(rng.NormFloat64() * 2)
			if rng.Float64() < 0.85 {
				chunks[e] = append(chunks[e], server.Offer{Assignment: 0, Key: k, Weight: base * (0.5 + rng.Float64())})
			}
			if rng.Float64() < 0.85 {
				chunks[e] = append(chunks[e], server.Offer{Assignment: 1, Key: k, Weight: base * (0.5 + rng.Float64())})
			}
		}
	}
	return chunks
}

// offlineL1 runs the in-process dispersed pipeline over the chunks and
// returns the L1-difference estimate — the bit-identity reference.
func offlineL1(cfg core.Config, chunks [][]server.Offer) float64 {
	sketchers := []*core.AssignmentSketcher{
		core.NewAssignmentSketcher(cfg, 0),
		core.NewAssignmentSketcher(cfg, 1),
	}
	for _, chunk := range chunks {
		for _, o := range chunk {
			sketchers[o.Assignment].Offer(o.Key, o.Weight)
		}
	}
	d, err := core.CombineDispersed(cfg, []*sketch.BottomK{sketchers[0].Sketch(), sketchers[1].Sketch()})
	if err != nil {
		panic(err)
	}
	return d.RangeLSet(nil).Estimate(nil)
}

// epochSketchSets freezes each chunk into a per-assignment sketch set
// (the store's append unit) without a server.
func epochSketchSets(cfg core.Config, chunks [][]server.Offer) [][]*sketch.BottomK {
	sets := make([][]*sketch.BottomK, len(chunks))
	for e, chunk := range chunks {
		sketchers := []*core.AssignmentSketcher{
			core.NewAssignmentSketcher(cfg, 0),
			core.NewAssignmentSketcher(cfg, 1),
		}
		for _, o := range chunk {
			sketchers[o.Assignment].Offer(o.Key, o.Weight)
		}
		sets[e] = []*sketch.BottomK{sketchers[0].Sketch(), sketchers[1].Sketch()}
	}
	return sets
}

// runStore measures the durable epoch store end to end: what persistence
// adds to a freeze, how long recovery takes as the epoch count grows (with
// and without compaction), and what an epoch-range ("time travel") query
// costs cold vs memoized. Every measured configuration re-verifies
// bit-identity against the offline pipeline.
func runStore(opts Options) Result {
	opts = opts.WithDefaults()
	k := 1024
	cfg := core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: opts.Seed, K: k}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards := 4
	if opts.Shards > 0 {
		shards = opts.Shards
	}
	const epochs = 8
	chunks := storeEpochStream(opts, epochs)
	offers := 0
	for _, c := range chunks {
		offers += len(c)
	}
	refL1 := offlineL1(cfg, chunks)

	baseDir, err := os.MkdirTemp("", "cws-store-bench-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(baseDir)

	// --- Table 1: freeze-persist overhead ---
	t1 := Table{
		Title: fmt.Sprintf("freeze+persist overhead, %d offers in %d epochs, k=%d, %d shards, %d workers/assignment",
			offers, epochs, k, shards, workers),
		Columns: []string{"mode", "freeze_total", "freeze_mean", "disk_bytes", "identical"},
	}
	for _, durable := range []bool{false, true} {
		scfg := server.Config{Sample: cfg, Assignments: 2, Shards: shards, Workers: workers, Retain: epochs}
		var st *store.Store
		if durable {
			st, err = store.Open(store.Config{Dir: baseDir + "/persist", Retain: epochs, Sample: cfg, Assignments: 2})
			if err != nil {
				panic(err)
			}
			scfg.Store = st
		}
		srv, err := server.New(scfg)
		if err != nil {
			panic(err)
		}
		var freezeTotal time.Duration
		for _, chunk := range chunks {
			body, err := json.Marshal(map[string]any{"offers": chunk})
			if err != nil {
				panic(err)
			}
			req, _ := http.NewRequest(http.MethodPost, "/offer", bytes.NewReader(body))
			srv.ServeHTTP(newDiscardWriter(false), req)
			freq, _ := http.NewRequest(http.MethodPost, "/freeze", nil)
			start := time.Now()
			srv.ServeHTTP(newDiscardWriter(false), freq)
			freezeTotal += time.Since(start)
		}
		identical := serverL1(srv, "/query?agg=L1") == refL1
		srv.Close()
		mode, disk := "memory", "-"
		if durable {
			mode = "durable"
			disk = fmt.Sprintf("%d", st.DiskBytes())
			st.Close()
		}
		t1.AddRow(mode,
			freezeTotal.Round(time.Microsecond).String(),
			(freezeTotal / epochs).Round(time.Microsecond).String(),
			disk, fmt.Sprintf("%v", identical))
	}

	// --- Table 2: recovery time vs epoch count ---
	t2 := Table{
		Title:   "recovery (store.Open) time vs acknowledged epoch count; 'identical' re-verifies the recovered cumulative L1 against the offline pipeline",
		Columns: []string{"epochs", "retain", "segments", "disk_bytes", "recover", "identical"},
	}
	recoverySweep := []struct{ epochs, retain int }{
		{4, 4}, {16, 16}, {64, 64}, {64, 8},
	}
	for i, rc := range recoverySweep {
		recOpts := opts
		recOpts.Scale = opts.Scale / 4 // recovery epochs are smaller: the sweep goes to 64 of them
		recChunks := storeEpochStream(recOpts, rc.epochs)
		dir := fmt.Sprintf("%s/recover-%d", baseDir, i)
		st, err := store.Open(store.Config{Dir: dir, Retain: rc.retain, Sample: cfg, Assignments: 2})
		if err != nil {
			panic(err)
		}
		for _, set := range epochSketchSets(cfg, recChunks) {
			if _, err := st.AppendEpoch(set); err != nil {
				panic(err)
			}
		}
		st.Close()

		start := time.Now()
		st, err = store.Open(store.Config{Dir: dir, Retain: rc.retain, Sample: cfg, Assignments: 2})
		if err != nil {
			panic(err)
		}
		recover := time.Since(start)
		cum, err := core.CombineDispersed(cfg, st.Cumulative())
		if err != nil {
			panic(err)
		}
		identical := cum.RangeLSet(nil).Estimate(nil) == offlineL1(cfg, recChunks)
		segments := len(st.Retained())
		if st.CompactedThrough() > 0 {
			segments++
		}
		disk := st.DiskBytes()
		st.Close()
		t2.AddRow(fmt.Sprintf("%d", rc.epochs), fmt.Sprintf("%d", rc.retain),
			fmt.Sprintf("%d", segments), fmt.Sprintf("%d", disk),
			recover.Round(time.Microsecond).String(), fmt.Sprintf("%v", identical))
	}

	// --- Table 3: epoch-range query latency ---
	t3 := Table{
		Title:   "epoch-range (time-travel) query latency over the durable server: q_cold builds the window merge + AW-summary, q_warm hits the snapshot memo",
		Columns: []string{"window", "q_cold", "q_warm", "identical"},
	}
	st, err := store.Open(store.Config{Dir: baseDir + "/persist", Retain: epochs, Sample: cfg, Assignments: 2})
	if err != nil {
		panic(err)
	}
	srv, err := server.New(server.Config{Sample: cfg, Assignments: 2, Shards: shards, Workers: workers, Store: st})
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	defer st.Close()
	const warmQueries = 50
	for _, win := range []struct{ lo, hi int }{{3, 6}, {1, epochs}, {5, 5}} {
		path := fmt.Sprintf("/query?agg=L1&epochs=%d..%d", win.lo, win.hi)
		winRef := offlineL1(cfg, chunks[win.lo-1:win.hi])
		start := time.Now()
		est := serverL1(srv, path)
		cold := time.Since(start)
		identical := est == winRef
		var warm time.Duration
		for i := 0; i < warmQueries; i++ {
			start = time.Now()
			est = serverL1(srv, path)
			warm += time.Since(start)
			identical = identical && est == winRef
		}
		t3.AddRow(fmt.Sprintf("%d..%d", win.lo, win.hi),
			cold.Round(time.Microsecond).String(),
			(warm / warmQueries).Round(time.Microsecond).String(),
			fmt.Sprintf("%v", identical))
	}

	return Result{Tables: []Table{t1, t2, t3}}
}

// serverL1 runs one GET against the server's handler and returns the
// estimate field.
func serverL1(srv *server.Server, path string) float64 {
	req, _ := http.NewRequest(http.MethodGet, path, nil)
	w := newDiscardWriter(true)
	srv.ServeHTTP(w, req)
	var resp struct {
		Estimate float64 `json:"estimate"`
		Error    string  `json:"error"`
	}
	if err := json.Unmarshal(w.body.Bytes(), &resp); err != nil {
		panic(fmt.Sprintf("store experiment: bad query response %q: %v", w.body.String(), err))
	}
	if resp.Error != "" {
		panic("store experiment: query failed: " + resp.Error)
	}
	return resp.Estimate
}

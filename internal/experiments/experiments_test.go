package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// tinyOpts keeps smoke tests fast: small datasets, few runs, small ks.
func tinyOpts() Options {
	return Options{Scale: 0.04, Runs: 6, Ks: []int{10, 40}, Seed: 7}
}

func TestRegistryComplete(t *testing.T) {
	wantIDs := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17",
		"table2", "table_ip2", "table3", "table4",
		"unweighted", "jaccard",
		"ablation_family", "ablation_sketch", "ablation_fixedk", "ablation_generic",
		"sharding", "serve", "ingest", "store", "estimators",
		"scale", "loadtest", "cluster",
	}
	for _, id := range wantIDs {
		if _, ok := Find(id); !ok {
			t.Fatalf("experiment %q not registered", id)
		}
	}
	if len(Registry()) != len(wantIDs) {
		ids := make([]string, 0)
		for _, e := range Registry() {
			ids = append(ids, e.ID)
		}
		t.Fatalf("registry has %d experiments, want %d: %v", len(Registry()), len(wantIDs), ids)
	}
	// Registry is sorted and every entry has metadata.
	prev := ""
	for _, e := range Registry() {
		if e.ID <= prev {
			t.Fatalf("registry not sorted at %q", e.ID)
		}
		prev = e.ID
		if e.Paper == "" || e.Desc == "" || e.Run == nil {
			t.Fatalf("experiment %q missing metadata", e.ID)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("Find should miss unknown IDs")
	}
}

func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("slow smoke test")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			res := e.Run(tinyOpts())
			if len(res.Tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tab := range res.Tables {
				if tab.Title == "" || len(tab.Columns) == 0 {
					t.Fatalf("%s produced a malformed table", e.ID)
				}
				if len(tab.Rows) == 0 {
					t.Fatalf("%s: table %q has no rows", e.ID, tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Fatalf("%s: table %q row width %d != %d columns", e.ID, tab.Title, len(row), len(tab.Columns))
					}
				}
			}
			var sb strings.Builder
			res.Write(&sb)
			if !strings.Contains(sb.String(), "## ") {
				t.Fatalf("%s render missing headers", e.ID)
			}
		})
	}
}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

func TestFig3QualitativeShape(t *testing.T) {
	// The headline result: independent-sketch min variance exceeds the
	// coordinated one, by a growing factor as |R| grows. Check on the
	// Netflix panels (months {1,2} vs {1-6}).
	opts := Options{Scale: 0.06, Runs: 12, Ks: []int{20}, Seed: 11}
	w := newWorkloads(opts.WithDefaults())
	ds := w.netflix()
	p2 := dispersedSweep(ds, firstR(2), opts.Ks, opts.Runs, opts.Seed)
	p6 := dispersedSweep(ds, firstR(6), opts.Ks, opts.Runs, opts.Seed)
	r2 := p2[0].IndMin / p2[0].MinL
	r6 := p6[0].IndMin / p6[0].MinL
	if r2 < 1 {
		t.Fatalf("months{1,2}: independent/coordinated ΣV ratio %v < 1", r2)
	}
	if r6 < r2 {
		t.Fatalf("ratio should grow with |R|: {1,2}=%v {1-6}=%v", r2, r6)
	}
}

func TestFig9QualitativeShape(t *testing.T) {
	// Inclusive estimators must beat plain ones: ratios below 1.
	opts := tinyOpts()
	w := newWorkloads(opts.WithDefaults())
	ds := w.stocksColocated()
	points := colocatedRatioSweep(ds, []int{30}, 10, 3)
	for b, r := range points[0].RatioCoord {
		if r >= 1.05 {
			t.Fatalf("coordinated inclusive/plain ratio for weight %d is %v; want < 1", b, r)
		}
	}
	for b, r := range points[0].RatioInd {
		if r >= 1.05 {
			t.Fatalf("independent inclusive/plain ratio for weight %d is %v; want < 1", b, r)
		}
	}
}

func TestFig17QualitativeShape(t *testing.T) {
	// Coordinated sharing index must be below independent, and both within
	// [1/|W|, 1] (allowing small-sample noise at the edges).
	opts := tinyOpts()
	w := newWorkloads(opts.WithDefaults())
	ds := w.stocksColocated()
	points := sharingSweep(ds, []int{20, 60}, 8, 5)
	for _, p := range points {
		if p.IndexCoord > p.IndexInd {
			t.Fatalf("k=%d: coordinated index %v above independent %v", p.K, p.IndexCoord, p.IndexInd)
		}
		lo := 1.0/float64(ds.NumAssignments()) - 0.05
		if p.IndexCoord < lo || p.IndexInd > 1.01 {
			t.Fatalf("k=%d: indexes out of range: %v %v", p.K, p.IndexCoord, p.IndexInd)
		}
	}
}

func TestFig8QualitativeShape(t *testing.T) {
	// s-set variance is at least l-set variance (Lemma 5.1): ratios ≥ ~1.
	opts := tinyOpts()
	w := newWorkloads(opts.WithDefaults())
	ds := w.netflix()
	points := dispersedSweep(ds, firstR(3), []int{20}, 15, 13)
	if points[0].MinS < 0.95*points[0].MinL {
		t.Fatalf("ΣV[min-s]=%v below ΣV[min-l]=%v", points[0].MinS, points[0].MinL)
	}
	if points[0].L1S < 0.9*points[0].L1L {
		t.Fatalf("ΣV[L1-s]=%v below ΣV[L1-l]=%v", points[0].L1S, points[0].L1L)
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "demo", Columns: []string{"a", "bbb"}}
	tab.AddRow("1", "2")
	var sb strings.Builder
	tab.Write(&sb)
	out := sb.String()
	if !strings.HasPrefix(out, "## demo\n") {
		t.Fatalf("bad header: %q", out)
	}
	if !strings.Contains(out, "a  bbb") || !strings.Contains(out, "1  2") {
		t.Fatalf("bad column alignment: %q", out)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.Scale != 1 || o.Runs != 25 || len(o.Ks) == 0 || o.Seed == 0 {
		t.Fatalf("defaults not applied: %+v", o)
	}
	o2 := Options{Scale: 0.5, Runs: 3, Ks: []int{5}, Seed: 9}.WithDefaults()
	if o2.Scale != 0.5 || o2.Runs != 3 || o2.Ks[0] != 5 || o2.Seed != 9 {
		t.Fatalf("explicit options overridden: %+v", o2)
	}
}

func TestCapKs(t *testing.T) {
	if got := capKs([]int{10, 100, 1000}, 150); len(got) != 2 {
		t.Fatalf("capKs = %v", got)
	}
	if got := capKs([]int{1000}, 10); len(got) != 1 || got[0] != 5 {
		t.Fatalf("capKs fallback = %v", got)
	}
}

func TestUnweightedQualitative(t *testing.T) {
	opts := Options{Scale: 0.05, Runs: 15, Ks: []int{25}, Seed: 3}
	w := newWorkloads(opts.WithDefaults())
	ds := w.ip1Dispersed(0, 0) // destIP, bytes
	points := uniformBaselineSweep(ds, []int{0, 1}, opts.Ks, opts.Runs, opts.Seed)
	if points[0].UniformSV < points[0].WeightedSV {
		t.Fatalf("uniform baseline ΣV %v below weighted %v on skewed data",
			points[0].UniformSV, points[0].WeightedSV)
	}
}

var _ = parse // helper retained for table-content assertions in extensions

package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"coordsample/internal/core"
	"coordsample/internal/hashing"
	"coordsample/internal/rank"
	"coordsample/internal/server"
	"coordsample/internal/sketch"
)

func init() {
	register(Experiment{
		ID:    "ingest",
		Paper: "not from the paper",
		Desc:  "threshold-pruned ingest fast path: offers/s and allocs/offer vs shards, against the single-stream per-offer baseline; frozen sketches verified bit-identical",
		Run:   runIngest,
	})
}

// ingestRuns caps the measurement repetitions: each repetition streams the
// whole workload through fresh (terminal) sketchers, so the sweep cost
// grows linearly and a handful of passes already gives a stable best-of.
func ingestRuns(opts Options) int {
	if opts.Runs < 5 {
		return opts.Runs
	}
	return 5
}

// ingestColumn is one assignment's aggregated stream, flattened out of the
// dataset so the measured loops pay no accessor overhead.
type ingestColumn struct {
	keys    []string
	weights []float64
}

// legacySketcher reimplements the PR-3 sharded ingest path, preserved here
// as the experiment's "before" measurement: a second hash per offer for
// seed-free shard routing, every offer shipped through the batched channels
// in a freshly allocated batch, and the full rank computation (key hash +
// quantile) in the worker. The threshold-pruned fast path in package shard
// replaced it; this copy keeps the before/after comparison honest and
// reproducible.
type legacySketcher struct {
	assigner   rank.Assigner
	assignment int
	shards     int
	builders   []*sketch.BottomKBuilder
	chans      []chan []legacyItem
	pending    [][]legacyItem
	wg         sync.WaitGroup
}

type legacyItem struct {
	key    string
	weight float64
	shard  int32
}

const legacyBatch = 256

func newLegacySketcher(cfg core.Config, assignment, shards, workers int) *legacySketcher {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}
	a := cfg.Assigner()
	s := &legacySketcher{
		assigner:   a,
		assignment: assignment,
		shards:     shards,
		builders:   make([]*sketch.BottomKBuilder, shards),
		chans:      make([]chan []legacyItem, workers),
		pending:    make([][]legacyItem, workers),
	}
	fp := a.Fingerprint(assignment, cfg.K)
	for i := range s.builders {
		s.builders[i] = sketch.NewBottomKBuilderWithFingerprint(cfg.K, fp)
	}
	for w := range s.chans {
		s.chans[w] = make(chan []legacyItem, 4)
		s.pending[w] = make([]legacyItem, 0, legacyBatch)
	}
	s.wg.Add(workers)
	for w := 0; w < workers; w++ {
		ch := s.chans[w]
		go func() {
			defer s.wg.Done()
			for batch := range ch {
				for _, it := range batch {
					r := s.assigner.Rank(it.key, s.assignment, it.weight)
					s.builders[it.shard].Offer(it.key, r, it.weight)
				}
			}
		}()
	}
	return s
}

func (s *legacySketcher) Offer(key string, weight float64) {
	if weight <= 0 {
		return
	}
	sh := int(hashing.ShardHash(key) % uint64(s.shards))
	w := sh % len(s.chans)
	s.pending[w] = append(s.pending[w], legacyItem{key: key, weight: weight, shard: int32(sh)})
	if len(s.pending[w]) == legacyBatch {
		s.chans[w] <- s.pending[w]
		s.pending[w] = make([]legacyItem, 0, legacyBatch)
	}
}

func (s *legacySketcher) Sketch() *sketch.BottomK {
	for w, batch := range s.pending {
		if len(batch) > 0 {
			s.chans[w] <- batch
		}
		s.pending[w] = nil
		close(s.chans[w])
	}
	s.wg.Wait()
	parts := make([]*sketch.BottomK, s.shards)
	for i, b := range s.builders {
		parts[i] = b.Sketch()
	}
	merged, err := sketch.Merge(parts...)
	if err != nil {
		panic(err)
	}
	return merged
}

// runIngest measures the producer-side cost of bottom-k ingestion on the
// serve benchmark workload: the PR-3 per-offer baseline (hash + quantile +
// builder call for every offer, via the single-stream AssignmentSketcher)
// against the threshold-pruned sharded fast path (hash once, admission
// bound, pooled batches) and the hash-once-per-key vector front-end. Every
// fast-path configuration's frozen sketches are verified bit-identical —
// entries, r_k, r_{k+1} — to the single-stream builder's, for both
// dispersed coordination modes.
func runIngest(opts Options) Result {
	opts = opts.WithDefaults()
	ds := serveDataset(opts)
	k := 1024
	if m := ds.NumKeys() / 4; k > m && m >= 1 {
		k = m
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shardSweep := []int{1, 2, 7, 16}
	if opts.Shards > 0 {
		shardSweep = []int{opts.Shards}
	}
	runs := ingestRuns(opts)

	numAsg := ds.NumAssignments()
	cols := make([]ingestColumn, numAsg)
	offered := 0
	for b := 0; b < numAsg; b++ {
		col := ds.Column(b)
		for i := 0; i < ds.NumKeys(); i++ {
			if col[i] > 0 {
				cols[b].keys = append(cols[b].keys, ds.Key(i))
				cols[b].weights = append(cols[b].weights, col[i])
				offered++
			}
		}
	}
	// The vector path offers whole rows; precompute them once.
	vecKeys := make([]string, ds.NumKeys())
	vecs := make([][]float64, ds.NumKeys())
	for i := range vecKeys {
		vecKeys[i] = ds.Key(i)
		vecs[i] = make([]float64, numAsg)
		ds.WeightVectorInto(vecs[i], i)
	}

	t := Table{
		Title: fmt.Sprintf("ingest fast path, %d offers (%d keys × %d assignments), k=%d, %d workers/assignment, best of %d runs; speedup is vs the PR-3 sharded path at the same shard count",
			offered, ds.NumKeys(), numAsg, k, workers, runs),
		Columns: []string{"mode", "path", "shards", "offers/s", "allocs/offer", "speedup", "identical"},
	}

	// measure streams the workload runs times through fresh sketchers (run
	// constructs its own — sharded pipelines are terminal), returning the
	// best throughput, the minimum allocations per offer across runs (the
	// first pass pays pool and stack warmup), and one run's frozen sketches.
	measure := func(run func() []*sketch.BottomK) (float64, float64, []*sketch.BottomK) {
		best := time.Duration(1<<63 - 1)
		minAllocs := float64(1 << 62)
		var frozen []*sketch.BottomK
		for r := 0; r < runs; r++ {
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			start := time.Now()
			sk := run()
			elapsed := time.Since(start)
			runtime.ReadMemStats(&m1)
			if elapsed < best {
				best = elapsed
			}
			if a := float64(m1.Mallocs-m0.Mallocs) / float64(offered); a < minAllocs {
				minAllocs = a
			}
			frozen = sk
		}
		return float64(offered) / best.Seconds(), minAllocs, frozen
	}

	identicalSketches := func(got, want []*sketch.BottomK) bool {
		for b := range want {
			g, w := got[b], want[b]
			if g.KthRank() != w.KthRank() || g.Threshold() != w.Threshold() || len(g.Entries()) != len(w.Entries()) {
				return false
			}
			for i, e := range w.Entries() {
				if g.Entries()[i] != e {
					return false
				}
			}
		}
		return true
	}

	for _, mode := range []rank.Coordination{rank.SharedSeed, rank.Independent} {
		cfg := core.Config{Family: rank.IPPS, Mode: mode, Seed: opts.Seed, K: k}

		baseRate, baseAllocs, baseSketches := measure(func() []*sketch.BottomK {
			frozen := make([]*sketch.BottomK, numAsg)
			for b := 0; b < numAsg; b++ {
				sk := core.NewAssignmentSketcher(cfg, b)
				for i, key := range cols[b].keys {
					sk.Offer(key, cols[b].weights[i])
				}
				frozen[b] = sk.Sketch()
			}
			return frozen
		})
		t.AddRow(mode.String(), "single-stream", "-", fsci(baseRate), fmt.Sprintf("%.3f", baseAllocs), "-", "ref")

		for _, shards := range shardSweep {
			legacyRate, legacyAllocs, legacyFrozen := measure(func() []*sketch.BottomK {
				out := make([]*sketch.BottomK, numAsg)
				for b := 0; b < numAsg; b++ {
					sk := newLegacySketcher(cfg, b, shards, workers)
					for i, key := range cols[b].keys {
						sk.Offer(key, cols[b].weights[i])
					}
					out[b] = sk.Sketch()
				}
				return out
			})
			t.AddRow(mode.String(), "sharded-pr3", fmt.Sprintf("%d", shards), fsci(legacyRate),
				fmt.Sprintf("%.3f", legacyAllocs), "1.00x",
				fmt.Sprintf("%v", identicalSketches(legacyFrozen, baseSketches)))

			rate, allocs, frozen := measure(func() []*sketch.BottomK {
				out := make([]*sketch.BottomK, numAsg)
				for b := 0; b < numAsg; b++ {
					sk := core.NewShardedSketcher(cfg, b, shards, workers)
					for i, key := range cols[b].keys {
						sk.Offer(key, cols[b].weights[i])
					}
					out[b] = sk.Sketch()
				}
				return out
			})
			t.AddRow(mode.String(), "sharded-pruned", fmt.Sprintf("%d", shards), fsci(rate),
				fmt.Sprintf("%.3f", allocs), fmt.Sprintf("%.2fx", rate/legacyRate),
				fmt.Sprintf("%v", identicalSketches(frozen, baseSketches)))

			vrate, vallocs, vfrozen := measure(func() []*sketch.BottomK {
				m := core.NewMultiSketcher(cfg, numAsg, shards, workers)
				for i, key := range vecKeys {
					m.OfferVector(key, vecs[i])
				}
				return m.Sketches()
			})
			t.AddRow(mode.String(), "vector-hash-once", fmt.Sprintf("%d", shards), fsci(vrate),
				fmt.Sprintf("%.3f", vallocs), fmt.Sprintf("%.2fx", vrate/legacyRate),
				fmt.Sprintf("%v", identicalSketches(vfrozen, baseSketches)))
		}
	}
	return Result{Tables: []Table{t, runIngestServer(opts, cols, offered, k, workers, shardSweep, runs)}}
}

// runIngestServer measures the serving system's ingest lanes end to end
// through the HTTP handler: the PR-3 baseline path (POST /offer JSON
// batches — the lane BENCH_serve.json recorded at ~0.8M offers/s) against
// the streaming POST /ingest lanes (NDJSON and the binary framing), which
// decode into reused observation buffers and feed the hash-once,
// threshold-pruned sketchers. After each measured stream the epoch is
// frozen and an L1 query must equal the offline pipeline's answer exactly.
func runIngestServer(opts Options, cols []ingestColumn, offered, k, workers int, shardSweep []int, runs int) Table {
	cfg := core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: opts.Seed, K: k}

	// Pre-encode each lane's request bodies once; encoding cost belongs to
	// the client, not the measured server.
	const jsonBatch = 512
	var jsonBodies [][]byte
	batch := make([]server.Offer, 0, jsonBatch)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		body, err := json.Marshal(map[string]any{"offers": batch})
		if err != nil {
			panic(err)
		}
		jsonBodies = append(jsonBodies, body)
		batch = batch[:0]
	}
	var ndjson bytes.Buffer
	enc := json.NewEncoder(&ndjson)
	var binBody []byte
	for b := 0; b < len(cols); b++ {
		for i, key := range cols[b].keys {
			o := server.Offer{Assignment: b, Key: key, Weight: cols[b].weights[i]}
			batch = append(batch, o)
			if len(batch) == jsonBatch {
				flush()
			}
			if err := enc.Encode(o); err != nil {
				panic(err)
			}
			binBody = server.AppendBinaryOffer(binBody, o.Assignment, o.Key, o.Weight)
		}
	}
	flush()

	type lane struct {
		name        string
		run         func(srv *server.Server)
		contentType string
	}
	post := func(srv *server.Server, path, contentType string, body []byte) {
		req, _ := http.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		srv.ServeHTTP(newDiscardWriter(false), req)
	}
	lanes := []lane{
		{name: "http-offer-json (pr3)", run: func(srv *server.Server) {
			for _, body := range jsonBodies {
				post(srv, "/offer", "application/json", body)
			}
		}},
		{name: "http-ingest-ndjson", run: func(srv *server.Server) {
			post(srv, "/ingest", "application/x-ndjson", ndjson.Bytes())
		}},
		{name: "http-ingest-binary", run: func(srv *server.Server) {
			post(srv, "/ingest", server.ContentTypeBinaryIngest, binBody)
		}},
	}

	refL1 := func() float64 {
		sketches := make([]*sketch.BottomK, len(cols))
		for b := range cols {
			sk := core.NewAssignmentSketcher(cfg, b)
			for i, key := range cols[b].keys {
				sk.Offer(key, cols[b].weights[i])
			}
			sketches[b] = sk.Sketch()
		}
		d, err := core.CombineDispersed(cfg, sketches)
		if err != nil {
			panic(err)
		}
		return d.RangeLSet(nil).Estimate(nil)
	}()

	t := Table{
		Title: fmt.Sprintf("server ingest lanes (HTTP handler end to end), %d offers, k=%d, %d workers/assignment, best of %d runs; speedup is vs the PR-3 /offer JSON lane at the same shard count",
			offered, k, workers, runs),
		Columns: []string{"shards", "lane", "offers/s", "allocs/offer", "speedup", "identical"},
	}
	for _, shards := range shardSweep {
		var jsonRate float64
		for _, ln := range lanes {
			best := time.Duration(1<<63 - 1)
			minAllocs := float64(1 << 62)
			identical := true
			for r := 0; r < runs; r++ {
				srv, err := server.New(server.Config{Sample: cfg, Assignments: len(cols), Shards: shards, Workers: workers})
				if err != nil {
					panic(err)
				}
				var m0, m1 runtime.MemStats
				runtime.ReadMemStats(&m0)
				start := time.Now()
				ln.run(srv)
				elapsed := time.Since(start)
				runtime.ReadMemStats(&m1)
				post(srv, "/freeze", "", nil)
				req, _ := http.NewRequest(http.MethodGet, "/query?agg=L1", nil)
				w := newDiscardWriter(true)
				srv.ServeHTTP(w, req)
				var resp struct {
					Estimate float64 `json:"estimate"`
				}
				if err := json.Unmarshal(w.body.Bytes(), &resp); err != nil {
					panic(fmt.Sprintf("ingest experiment: bad query response %q: %v", w.body.String(), err))
				}
				identical = identical && resp.Estimate == refL1
				srv.Close()
				if elapsed < best {
					best = elapsed
				}
				if a := float64(m1.Mallocs-m0.Mallocs) / float64(offered); a < minAllocs {
					minAllocs = a
				}
			}
			rate := float64(offered) / best.Seconds()
			if ln.name == lanes[0].name {
				jsonRate = rate
			}
			t.AddRow(fmt.Sprintf("%d", shards), ln.name, fsci(rate), fmt.Sprintf("%.3f", minAllocs),
				fmt.Sprintf("%.2fx", rate/jsonRate), fmt.Sprintf("%v", identical))
		}
	}
	return t
}

package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"coordsample/internal/core"
	"coordsample/internal/obs"
	"coordsample/internal/rank"
	"coordsample/internal/server"
	"coordsample/internal/sketch"
)

// overloadInflight is the deliberately tiny admission bound of the
// Options.Overload loadtest mode: with far more client connections than
// admitted ingests, most requests are shed and must be retried.
const overloadInflight = 2

// Overload-mode clients stream each chunk as a paced chunked upload
// (overloadPiece bytes every overloadPace) instead of one buffered body.
// The admission bound counts requests that HOLD a slot, and a handler
// only holds one for longer than its own CPU time when it parks waiting
// for body bytes: a fully-buffered loopback upload sits complete in the
// kernel socket buffer before the handler runs, so handlers finish
// back-to-back and the inflight count never accumulates (on a single-core
// host it literally cannot exceed the running handler). Slow producers
// are the scenario shedding exists for — requests piling up on the lanes
// while their bodies trickle in — so the overload load shape models them.
const (
	overloadPiece = 4096
	overloadPace  = 500 * time.Microsecond
)

func init() {
	register(Experiment{
		ID:    "loadtest",
		Paper: "not from the paper",
		Desc:  "network load test: concurrent keep-alive binary /ingest connections against a live cws-serve (in-process over real TCP by default, -addr targets an external one); answers verified against the offline pipeline",
		Run:   runLoadtest,
	})
}

// loadClient is one load-generator connection: its own Transport capped at
// one TCP connection, so conns clients ≍ conns keep-alive sockets.
func newLoadClient() *http.Client {
	return &http.Client{Transport: &http.Transport{MaxConnsPerHost: 1}}
}

// runLoadtest drives concurrent streaming /ingest clients — each holding
// one keep-alive TCP connection and sequentially POSTing binary-framed
// chunks of its disjoint stream partition — against a live cws-serve over
// real sockets. By default each connection-count cell gets a fresh
// in-process server on an ephemeral 127.0.0.1 port (GOMAXPROCS lanes, so
// concurrent requests offer in parallel); with Options.Addr the same
// client fleet targets an external cws-serve instead (one cell; the
// freeze-and-verify step runs only when the target starts at epoch 0,
// since verification needs the server to hold exactly this stream).
func runLoadtest(opts Options) Result {
	opts = opts.WithDefaults()
	ds := serveDataset(opts)
	k := 1024
	if m := ds.NumKeys() / 4; k > m && m >= 1 {
		k = m
	}
	cols, offered := flattenColumns(ds)
	numAsg := len(cols)
	cfg := core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: opts.Seed, K: k}

	refL1 := func() float64 {
		sketches := make([]*sketch.BottomK, numAsg)
		for b := range cols {
			sk := core.NewAssignmentSketcher(cfg, b)
			for i, key := range cols[b].keys {
				sk.Offer(key, cols[b].weights[i])
			}
			sketches[b] = sk.Sketch()
		}
		d, err := core.CombineDispersed(cfg, sketches)
		if err != nil {
			panic(err)
		}
		return d.RangeLSet(nil).Estimate(nil)
	}()

	connsSweep := []int{1, 4, 16, 64}
	if opts.Conns > 0 {
		connsSweep = []int{opts.Conns}
	}
	external := opts.Addr != ""
	if external && opts.Conns <= 0 {
		// One cell against an external server: its epoch advances per cell,
		// so sweeping would re-offer the same keys into later epochs.
		connsSweep = []int{4}
	}

	title := fmt.Sprintf("network load test, %d offers (%d keys × %d assignments) streamed over binary /ingest, k=%d, %d-offer chunks per request",
		offered, ds.NumKeys(), numAsg, k, loadChunk)
	if opts.Overload {
		title += fmt.Sprintf(" — OVERLOAD: server admits %d concurrent ingests, clients honor 429 Retry-After", overloadInflight)
	}
	t := Table{
		Title:   title,
		Columns: []string{"conns", "offers/s", "MB/s", "req_p50", "req_p95", "req_p99", "sheds(429)", "freeze", "identical"},
	}
	for _, conns := range connsSweep {
		t.AddRow(runLoadCell(opts, cfg, cols, offered, numAsg, conns, refL1)...)
	}
	return Result{Tables: []Table{t}}
}

// loadChunk is the per-request chunk size of the streamed partitions:
// large enough that request overhead is amortized, small enough that one
// stream is many requests over its keep-alive connection.
const loadChunk = 8192

// runLoadCell measures one connection-count cell and returns its table row.
func runLoadCell(opts Options, cfg core.Config, cols []ingestColumn, offered, numAsg, conns int, refL1 float64) []string {
	// Partition the stream round-robin across clients and pre-encode each
	// client's chunked request bodies; encoding cost belongs to the load
	// generator, not the measured server.
	chunks := make([][][]byte, conns)
	bodies := make([][]byte, conns)
	counts := make([]int, conns)
	n := 0
	for b := range cols {
		for i, key := range cols[b].keys {
			c := n % conns
			bodies[c] = server.AppendBinaryOffer(bodies[c], b, key, cols[b].weights[i])
			counts[c]++
			if counts[c]%loadChunk == 0 {
				chunks[c] = append(chunks[c], bodies[c])
				bodies[c] = nil
			}
			n++
		}
	}
	for c := range bodies {
		if len(bodies[c]) > 0 {
			chunks[c] = append(chunks[c], bodies[c])
		}
	}
	totalBytes := 0
	for c := range chunks {
		for _, chunk := range chunks[c] {
			totalBytes += len(chunk)
		}
	}

	base, shutdown := loadTarget(opts, cfg, numAsg)
	defer shutdown()
	verify := true
	if opts.Addr != "" {
		verify = healthzEpoch(base) == 0
	}

	var wg sync.WaitGroup
	errs := make([]error, conns)
	sheds := make([]int, conns)
	// One lock-free histogram shared by every client goroutine: the
	// client-observed per-request ingest latency, sheds included (a shed
	// round trip is latency the client paid).
	reqHist := &obs.Histogram{}
	start := time.Now()
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := newLoadClient()
			rng := rand.New(rand.NewSource(int64(opts.Seed) + int64(c)))
			for _, chunk := range chunks[c] {
				for {
					rs := time.Now()
					resp, err := postChunk(client, base, chunk, opts.Overload)
					reqHist.Record(time.Since(rs))
					if err != nil {
						errs[c] = err
						return
					}
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						break
					}
					if resp.StatusCode != http.StatusTooManyRequests {
						errs[c] = fmt.Errorf("POST /ingest: status %d", resp.StatusCode)
						return
					}
					// Shed: honor Retry-After with full jitter (a fleet of
					// clients retrying in lockstep would just collide again).
					sheds[c]++
					after, err := strconv.Atoi(resp.Header.Get("Retry-After"))
					if err != nil || after < 1 {
						after = 1
					}
					time.Sleep(time.Duration(rng.Int63n(int64(time.Duration(after) * time.Second))))
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	totalSheds := 0
	for _, s := range sheds {
		totalSheds += s
	}
	for _, err := range errs {
		if err != nil {
			panic(fmt.Sprintf("loadtest: %v", err))
		}
	}

	freeze, identical := "-", "unverified"
	if verify {
		client := newLoadClient()
		fs := time.Now()
		resp, err := client.Post(base+"/freeze", "application/json", nil)
		if err != nil {
			panic(fmt.Sprintf("loadtest: freeze: %v", err))
		}
		resp.Body.Close()
		freeze = time.Since(fs).Round(time.Microsecond).String()
		qresp, err := client.Get(base + "/query?agg=L1")
		if err != nil {
			panic(fmt.Sprintf("loadtest: query: %v", err))
		}
		var out struct {
			Estimate float64 `json:"estimate"`
		}
		err = json.NewDecoder(qresp.Body).Decode(&out)
		qresp.Body.Close()
		if err != nil {
			panic(fmt.Sprintf("loadtest: decoding query response: %v", err))
		}
		identical = fmt.Sprintf("%v", out.Estimate == refL1)
	}

	row := []string{
		fmt.Sprintf("%d", conns),
		fsci(float64(offered) / elapsed.Seconds()),
		fmt.Sprintf("%.1f", float64(totalBytes)/(1<<20)/elapsed.Seconds()),
	}
	row = append(row, pctCols(reqHist)...)
	return append(row,
		fmt.Sprintf("%d", totalSheds),
		freeze,
		identical,
	)
}

// postChunk sends one pre-encoded chunk to /ingest. The normal mode posts
// the chunk as a single buffered body; overload mode streams it as a paced
// chunked upload so the handler holds its admission slot while parked on
// body reads (see the overloadPiece comment). A shed (429) aborts the
// stream mid-body — the server closes the connection under the client, the
// writer goroutine exits on the pipe error, and the retry reconnects.
func postChunk(client *http.Client, base string, chunk []byte, overload bool) (*http.Response, error) {
	if !overload {
		return client.Post(base+"/ingest", server.ContentTypeBinaryIngest, bytes.NewReader(chunk))
	}
	pr, pw := io.Pipe()
	go func() {
		for b := chunk; len(b) > 0; {
			n := overloadPiece
			if n > len(b) {
				n = len(b)
			}
			if _, err := pw.Write(b[:n]); err != nil {
				return // shed mid-stream: transport closed the body
			}
			b = b[n:]
			time.Sleep(overloadPace)
		}
		pw.Close()
	}()
	req, err := http.NewRequest("POST", base+"/ingest", pr)
	if err != nil {
		pr.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", server.ContentTypeBinaryIngest)
	return client.Do(req)
}

// loadTarget returns the base URL to drive and its shutdown function:
// Options.Addr verbatim for an external server, otherwise a fresh
// in-process server listening on a real ephemeral TCP port.
func loadTarget(opts Options, cfg core.Config, numAsg int) (string, func()) {
	if opts.Addr != "" {
		return "http://" + opts.Addr, func() {}
	}
	maxInflight := 0
	if opts.Overload {
		maxInflight = overloadInflight
	}
	srv, err := server.New(server.Config{Sample: cfg, Assignments: numAsg, Shards: 8, Workers: opts.Workers, Lanes: 0, MaxInflight: maxInflight})
	if err != nil {
		panic(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("loadtest: %v", err))
	}
	httpSrv := &http.Server{Handler: srv}
	go func() { _ = httpSrv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() {
		httpSrv.Close()
		srv.Close()
	}
}

// healthzEpoch reads the target's current epoch; -1 on any failure.
func healthzEpoch(base string) int {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	var out struct {
		Epoch int `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return -1
	}
	return out.Epoch
}

package experiments

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"coordsample/internal/core"
	"coordsample/internal/dataset"
	"coordsample/internal/rank"
	"coordsample/internal/server"
	"coordsample/internal/sketch"
	"coordsample/internal/store"
)

func init() {
	register(Experiment{
		ID:    "scale",
		Paper: "not from the paper",
		Desc:  "multi-core scaling: core-affine lane ingest, parallel freeze, and durable (parallel-persist) freeze across a gomaxprocs × shards sweep; every cell's frozen sketches verified bit-identical to the single-stream builder",
		Run:   runScale,
	})
}

// flattenColumns flattens the dataset into per-assignment aggregated
// streams, so the measured loops pay no accessor overhead.
func flattenColumns(ds *dataset.Dataset) ([]ingestColumn, int) {
	cols := make([]ingestColumn, ds.NumAssignments())
	offered := 0
	for b := 0; b < ds.NumAssignments(); b++ {
		col := ds.Column(b)
		for i := 0; i < ds.NumKeys(); i++ {
			if col[i] > 0 {
				cols[b].keys = append(cols[b].keys, ds.Key(i))
				cols[b].weights = append(cols[b].weights, col[i])
				offered++
			}
		}
	}
	return cols, offered
}

// runScale measures how the ingest→freeze→persist pipeline scales with
// schedulable cores. Each cell pins GOMAXPROCS to p and uses p ingest
// lanes (one producer goroutine per lane, round-robin partition of the
// stream) over p workers: lane ingest throughput, in-memory freeze
// latency (parallel per-assignment Sketch + merge), and durable freeze
// latency (freeze + parallel segment encode + fsync'd persist through the
// epoch store, end to end over the HTTP handler). Speedups are vs the
// p=1 cell at the same shard count. The correctness column is the
// experiment's point: however many cores, lanes, and workers a cell used,
// its frozen sketches must be bit-identical — entries, r_k, r_{k+1} — to
// the single-stream builder's.
func runScale(opts Options) Result {
	opts = opts.WithDefaults()
	ds := serveDataset(opts)
	k := 1024
	if m := ds.NumKeys() / 4; k > m && m >= 1 {
		k = m
	}
	cols, offered := flattenColumns(ds)
	numAsg := len(cols)
	cfg := core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: opts.Seed, K: k}
	runs := ingestRuns(opts)

	// Single-stream reference: the bit-identity oracle for every cell.
	ref := make([]*sketch.BottomK, numAsg)
	for b := 0; b < numAsg; b++ {
		sk := core.NewAssignmentSketcher(cfg, b)
		for i, key := range cols[b].keys {
			sk.Offer(key, cols[b].weights[i])
		}
		ref[b] = sk.Sketch()
	}

	// Pre-encode the binary /ingest body once for the durable-freeze cells.
	var binBody []byte
	for b := range cols {
		for i, key := range cols[b].keys {
			binBody = server.AppendBinaryOffer(binBody, b, key, cols[b].weights[i])
		}
	}

	identicalSketches := func(got []*sketch.BottomK) bool {
		for b := range ref {
			g, w := got[b], ref[b]
			if g.KthRank() != w.KthRank() || g.Threshold() != w.Threshold() || len(g.Entries()) != len(w.Entries()) {
				return false
			}
			for i, e := range w.Entries() {
				if g.Entries()[i] != e {
					return false
				}
			}
		}
		return true
	}

	procsSweep := []int{1, 2, 4, 8, 16}
	shardSweep := []int{4, 16}
	if opts.Shards > 0 {
		shardSweep = []int{opts.Shards}
	}
	origProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(origProcs)

	t := Table{
		Title: fmt.Sprintf("multi-core scaling, %d offers (%d keys × %d assignments), k=%d, lanes=workers=gomaxprocs, best of %d runs; speedup is vs the gomaxprocs=1 cell at the same shard count; this machine has %d hardware thread(s) — cells above that timeshare cores and measure overhead, not speedup",
			offered, ds.NumKeys(), numAsg, k, runs, runtime.NumCPU()),
		Columns: []string{"gomaxprocs", "shards", "offers/s", "ingest_speedup", "freeze", "freeze_speedup", "durable_freeze", "identical"},
	}

	for _, shards := range shardSweep {
		var baseIngest, baseFreeze float64 // p=1 seconds, the speedup denominators
		for _, p := range procsSweep {
			runtime.GOMAXPROCS(p)
			bestIngest := time.Duration(1<<63 - 1)
			bestFreeze := time.Duration(1<<63 - 1)
			var frozen []*sketch.BottomK
			for r := 0; r < runs; r++ {
				m := core.NewMultiSketcherLanes(cfg, numAsg, shards, p, p)
				mlanes := m.Lanes()
				start := time.Now()
				var wg sync.WaitGroup
				for j := range mlanes {
					wg.Add(1)
					go func(j int) {
						defer wg.Done()
						ml := mlanes[j]
						for b := range cols {
							keys, weights := cols[b].keys, cols[b].weights
							for i := j; i < len(keys); i += len(mlanes) {
								ml.Offer(b, keys[i], weights[i])
							}
						}
					}(j)
				}
				wg.Wait()
				if d := time.Since(start); d < bestIngest {
					bestIngest = d
				}
				start = time.Now()
				sk := m.Sketches()
				if d := time.Since(start); d < bestFreeze {
					bestFreeze = d
				}
				frozen = sk
			}

			// Durable freeze: the same freeze through the serving layer with
			// an attached store — parallel per-assignment freeze, parallel
			// segment encode, fsync'd manifest append, all inside the
			// acknowledged POST /freeze.
			durable := func() time.Duration {
				dir, err := os.MkdirTemp("", "cws-scale-*")
				if err != nil {
					panic(err)
				}
				defer os.RemoveAll(dir)
				st, err := store.Open(store.Config{Dir: dir, Retain: 2, Sample: cfg, Assignments: numAsg})
				if err != nil {
					panic(err)
				}
				defer st.Close()
				srv, err := server.New(server.Config{Sample: cfg, Assignments: numAsg, Shards: shards, Workers: p, Lanes: p, Store: st})
				if err != nil {
					panic(err)
				}
				defer srv.Close()
				req, _ := http.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(binBody))
				req.Header.Set("Content-Type", server.ContentTypeBinaryIngest)
				srv.ServeHTTP(newDiscardWriter(false), req)
				freezeReq, _ := http.NewRequest(http.MethodPost, "/freeze", nil)
				start := time.Now()
				srv.ServeHTTP(newDiscardWriter(false), freezeReq)
				return time.Since(start)
			}()

			ingestSec, freezeSec := bestIngest.Seconds(), bestFreeze.Seconds()
			if p == procsSweep[0] {
				baseIngest, baseFreeze = ingestSec, freezeSec
			}
			t.AddRow(
				fmt.Sprintf("%d", p),
				fmt.Sprintf("%d", shards),
				fsci(float64(offered)/ingestSec),
				fmt.Sprintf("%.2fx", baseIngest/ingestSec),
				bestFreeze.Round(time.Microsecond).String(),
				fmt.Sprintf("%.2fx", baseFreeze/freezeSec),
				durable.Round(time.Microsecond).String(),
				fmt.Sprintf("%v", identicalSketches(frozen)),
			)
		}
	}
	return Result{Tables: []Table{t}}
}

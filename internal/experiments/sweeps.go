package experiments

import (
	"coordsample/internal/core"
	"coordsample/internal/dataset"
	"coordsample/internal/estimate"
	"coordsample/internal/evalstats"
	"coordsample/internal/hashing"
	"coordsample/internal/rank"
)

// dispersedPoint holds ΣV measurements for the full dispersed estimator
// suite at one sample size k: the coordinated estimators (min s-set/l-set,
// max, L1 s-set/l-set), the independent-sketches min, and the
// single-assignment estimators a^(b).
type dispersedPoint struct {
	K                                 int
	IndMin, MinL, MinS, Max, L1L, L1S float64 // ΣV
	NIndMin, NMinL, NMinS, NMax, NL1L float64 // nΣV
	NL1S                              float64
	Singles                           []float64 // ΣV of a^(b)
	NSingles                          []float64
}

// dispersedSweep measures the dispersed estimator suite on assignments R of
// ds across the k sweep. Per run, each coordinated summary is built once and
// every estimator is evaluated from it.
func dispersedSweep(ds *dataset.Dataset, R []int, ks []int, runs int, seed uint64) []dispersedPoint {
	sub := ds.Restrict(R)
	all := firstR(sub.NumAssignments())
	truthMax := evalstats.TruthOf(sub, estimate.MaxOf())
	truthMin := evalstats.TruthOf(sub, estimate.MinOf())
	truthL1 := evalstats.TruthOf(sub, estimate.RangeOf())
	truthSingles := make([]evalstats.Truth, len(all))
	for b := range all {
		truthSingles[b] = evalstats.TruthOf(sub, estimate.SingleOf(b))
	}

	ks = capKs(ks, sub.NumKeys())
	points := make([]dispersedPoint, 0, len(ks))
	for ki, k := range ks {
		k := k
		// Conditional-variance measurement (see internal/evalstats): exact
		// per-run ΣV given the realized conditioning thresholds, unbiased
		// for ΣV[a] and immune to the error censoring that makes empirical
		// squared error unusable for independent sketches with large |R|.
		results := parallelRuns(runs, func(run int) []float64 {
			runSeed := hashing.Mix64(seed + uint64(ki)*1e6 + uint64(run) + 1)
			cc := core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: runSeed, K: k}
			cv := evalstats.CondVarDispersed(sub, core.SummarizeDispersed(cc, sub))
			ci := core.Config{Family: rank.IPPS, Mode: rank.Independent, Seed: runSeed, K: k}
			indMin := evalstats.CondVarIndependentMin(sub, core.SummarizeDispersed(ci, sub))
			vec := []float64{cv.Max, cv.MinL, cv.MinS, cv.L1L, cv.L1S, indMin}
			return append(vec, cv.Singles...)
		})
		totals := sumRuns(results)
		seMax, seMinL, seMinS, seL1L, seL1S, seIndMin := totals[0], totals[1], totals[2], totals[3], totals[4], totals[5]
		seSingles := totals[6:]
		n := float64(runs)
		p := dispersedPoint{
			K:      k,
			IndMin: seIndMin / n, MinL: seMinL / n, MinS: seMinS / n,
			Max: seMax / n, L1L: seL1L / n, L1S: seL1S / n,
		}
		norm := func(sv float64, t evalstats.Truth) float64 {
			if t.SumF == 0 {
				return 0
			}
			return sv / (t.SumF * t.SumF)
		}
		p.NIndMin = norm(p.IndMin, truthMin)
		p.NMinL = norm(p.MinL, truthMin)
		p.NMinS = norm(p.MinS, truthMin)
		p.NMax = norm(p.Max, truthMax)
		p.NL1L = norm(p.L1L, truthL1)
		p.NL1S = norm(p.L1S, truthL1)
		p.Singles = make([]float64, len(all))
		p.NSingles = make([]float64, len(all))
		for b := range all {
			p.Singles[b] = seSingles[b] / n
			p.NSingles[b] = norm(p.Singles[b], truthSingles[b])
		}
		points = append(points, p)
	}
	return points
}

// colocatedRatioPoint holds, for one k, the per-weight-assignment ΣV ratios
// of the inclusive estimators to the plain single-sketch estimator
// (Figures 9–11).
type colocatedRatioPoint struct {
	K          int
	RatioCoord []float64 // ΣV[a_c^(b)]/ΣV[a_p^(b)]
	RatioInd   []float64 // ΣV[a_i^(b)]/ΣV[a_p^(b)]
}

func colocatedRatioSweep(ds *dataset.Dataset, ks []int, runs int, seed uint64) []colocatedRatioPoint {
	w := ds.NumAssignments()
	truths := make([]evalstats.Truth, w)
	for b := 0; b < w; b++ {
		truths[b] = evalstats.TruthOf(ds, estimate.SingleOf(b))
	}
	ks = capKs(ks, ds.NumKeys())
	points := make([]colocatedRatioPoint, 0, len(ks))
	for ki, k := range ks {
		k := k
		results := parallelRuns(runs, func(run int) []float64 {
			runSeed := hashing.Mix64(seed + uint64(ki)*1e6 + uint64(run) + 1)
			cc := core.SummarizeColocated(core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: runSeed, K: k}, ds)
			ci := core.SummarizeColocated(core.Config{Family: rank.IPPS, Mode: rank.Independent, Seed: runSeed, K: k}, ds)
			vec := make([]float64, 3*w)
			for b := 0; b < w; b++ {
				incl, plain := evalstats.CondVarColocated(ds, cc, b)
				inclInd, _ := evalstats.CondVarColocated(ds, ci, b)
				vec[b], vec[w+b], vec[2*w+b] = plain, incl, inclInd
			}
			return vec
		})
		totals := sumRuns(results)
		sePlain, seCoord, seInd := totals[:w], totals[w:2*w], totals[2*w:]
		p := colocatedRatioPoint{K: k, RatioCoord: make([]float64, w), RatioInd: make([]float64, w)}
		for b := 0; b < w; b++ {
			if sePlain[b] > 0 {
				p.RatioCoord[b] = seCoord[b] / sePlain[b]
				p.RatioInd[b] = seInd[b] / sePlain[b]
			}
		}
		points = append(points, p)
	}
	return points
}

// sizePoint holds the variance-versus-storage tradeoff at one k
// (Figures 12–16): mean combined summary size and per-weight nΣV for the
// four estimator/summary variants.
type sizePoint struct {
	K                  int
	SizeCoord, SizeInd float64
	NPlainCoord        []float64 // plain RC, coordinated summary
	NPlainInd          []float64 // plain RC, independent summary
	NInclusiveCoord    []float64
	NInclusiveInd      []float64
}

func sizeTradeoffSweep(ds *dataset.Dataset, ks []int, runs int, seed uint64) []sizePoint {
	w := ds.NumAssignments()
	truths := make([]evalstats.Truth, w)
	for b := 0; b < w; b++ {
		truths[b] = evalstats.TruthOf(ds, estimate.SingleOf(b))
	}
	ks = capKs(ks, ds.NumKeys())
	points := make([]sizePoint, 0, len(ks))
	for ki, k := range ks {
		k := k
		results := parallelRuns(runs, func(run int) []float64 {
			runSeed := hashing.Mix64(seed + uint64(ki)*1e6 + uint64(run) + 1)
			cc := core.SummarizeColocated(core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: runSeed, K: k}, ds)
			ci := core.SummarizeColocated(core.Config{Family: rank.IPPS, Mode: rank.Independent, Seed: runSeed, K: k}, ds)
			vec := make([]float64, 2+4*w)
			vec[0], vec[1] = float64(cc.DistinctKeys()), float64(ci.DistinctKeys())
			for b := 0; b < w; b++ {
				inclC, plainC := evalstats.CondVarColocated(ds, cc, b)
				inclI, plainI := evalstats.CondVarColocated(ds, ci, b)
				vec[2+b], vec[2+w+b], vec[2+2*w+b], vec[2+3*w+b] = plainC, plainI, inclC, inclI
			}
			return vec
		})
		totals := sumRuns(results)
		sizeC, sizeI := totals[0], totals[1]
		sePC, sePI := totals[2:2+w], totals[2+w:2+2*w]
		seIC, seII := totals[2+2*w:2+3*w], totals[2+3*w:]
		n := float64(runs)
		p := sizePoint{
			K: k, SizeCoord: sizeC / n, SizeInd: sizeI / n,
			NPlainCoord: make([]float64, w), NPlainInd: make([]float64, w),
			NInclusiveCoord: make([]float64, w), NInclusiveInd: make([]float64, w),
		}
		for b := 0; b < w; b++ {
			denom := truths[b].SumF * truths[b].SumF
			if denom == 0 {
				continue
			}
			p.NPlainCoord[b] = sePC[b] / n / denom
			p.NPlainInd[b] = sePI[b] / n / denom
			p.NInclusiveCoord[b] = seIC[b] / n / denom
			p.NInclusiveInd[b] = seII[b] / n / denom
		}
		points = append(points, p)
	}
	return points
}

// sharingPoint holds the mean sharing index at one k for coordinated and
// independent summaries (Figure 17).
type sharingPoint struct {
	K                    int
	IndexCoord, IndexInd float64
}

func sharingSweep(ds *dataset.Dataset, ks []int, runs int, seed uint64) []sharingPoint {
	w := ds.NumAssignments()
	ks = capKs(ks, ds.NumKeys())
	points := make([]sharingPoint, 0, len(ks))
	for ki, k := range ks {
		var dc, di float64
		for run := 0; run < runs; run++ {
			runSeed := hashing.Mix64(seed + uint64(ki)*1e6 + uint64(run) + 1)
			cc := core.SummarizeColocated(core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: runSeed, K: k}, ds)
			ci := core.SummarizeColocated(core.Config{Family: rank.IPPS, Mode: rank.Independent, Seed: runSeed, K: k}, ds)
			dc += float64(cc.DistinctKeys())
			di += float64(ci.DistinctKeys())
		}
		n := float64(runs)
		points = append(points, sharingPoint{
			K:          k,
			IndexCoord: evalstats.SharingIndex(int(dc/n), k, w),
			IndexInd:   evalstats.SharingIndex(int(di/n), k, w),
		})
	}
	return points
}

// uniformBaselinePoint compares the weighted coordinated min estimator with
// the unit-weight baseline of Section 9.2 at one k.
type uniformBaselinePoint struct {
	K                     int
	WeightedSV, UniformSV float64
}

func uniformBaselineSweep(ds *dataset.Dataset, R []int, ks []int, runs int, seed uint64) []uniformBaselinePoint {
	sub := ds.Restrict(R)
	ks = capKs(ks, sub.NumKeys())
	points := make([]uniformBaselinePoint, 0, len(ks))
	for ki, k := range ks {
		var seW, seU float64
		for run := 0; run < runs; run++ {
			runSeed := hashing.Mix64(seed + uint64(ki)*1e6 + uint64(run) + 1)
			cfg := core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: runSeed, K: k}
			seW += evalstats.CondVarDispersed(sub, core.SummarizeDispersed(cfg, sub)).MinL
			seU += evalstats.CondVarUniformMin(sub, rank.IPPS, core.SummarizeUniformBaseline(cfg, sub))
		}
		points = append(points, uniformBaselinePoint{K: k, WeightedSV: seW / float64(runs), UniformSV: seU / float64(runs)})
	}
	return points
}

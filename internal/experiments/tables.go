package experiments

import (
	"fmt"

	"coordsample/internal/datagen"
	"coordsample/internal/dataset"
)

func init() {
	register(Experiment{
		ID: "table2", Paper: "Table 2",
		Desc: "IP dataset1 dispersed sums: Σw1, Σw2, Σmax, Σmin, ΣL1 per key/weight combo",
		Run:  runTable2,
	})
	register(Experiment{
		ID: "table_ip2", Paper: "IP dataset2 in-text tables",
		Desc: "Hourly distinct keys and byte totals; min/max/L1 sums for hour subsets",
		Run:  runTableIP2,
	})
	register(Experiment{
		ID: "table3", Paper: "Table 3",
		Desc: "Netflix: distinct movies and total ratings per month; min/max/L1 for month subsets",
		Run:  runTable3,
	})
	register(Experiment{
		ID: "table4", Paper: "Table 4",
		Desc: "Stocks: daily totals of the six attributes; min/max/L1 for day subsets",
		Run:  runTable4,
	})
}

func multiSums(t *Table, label string, ds *dataset.Dataset, R []int) {
	t.AddRow(label,
		fsci(ds.SumMin(R, nil)),
		fsci(ds.SumMax(R, nil)),
		fsci(ds.SumRange(R, nil)))
}

func runTable2(opts Options) Result {
	opts = opts.WithDefaults()
	w := newWorkloads(opts)
	combos := []struct {
		label  string
		key    datagen.IPKey
		weight datagen.IPWeight
	}{
		{"destIP, 4tuple", datagen.KeyDstIP, datagen.WeightFlows},
		{"destIP, bytes", datagen.KeyDstIP, datagen.WeightBytes},
		{"srcIP+destIP, packets", datagen.KeySrcDst, datagen.WeightPackets},
		{"srcIP+destIP, bytes", datagen.KeySrcDst, datagen.WeightBytes},
	}
	t := Table{Title: "IP dataset1 (synthetic): dispersed weight totals",
		Columns: []string{"key, weight", "Σw(1)", "Σw(2)", "Σmax{1,2}", "Σmin{1,2}", "ΣL1{1,2}"}}
	for _, c := range combos {
		ds := w.ip1Dispersed(c.key, c.weight)
		R := []int{0, 1}
		t.AddRow(c.label,
			fsci(ds.Total(0)), fsci(ds.Total(1)),
			fsci(ds.SumMax(R, nil)), fsci(ds.SumMin(R, nil)), fsci(ds.SumRange(R, nil)))
	}
	return Result{Tables: []Table{t}}
}

func runTableIP2(opts Options) Result {
	opts = opts.WithDefaults()
	w := newWorkloads(opts)
	var res Result

	hours := Table{Title: "IP dataset2 (synthetic): per-hour distinct keys and byte totals",
		Columns: []string{"hours", "destIP keys", "4tuple keys", "bytes"}}
	dsD := w.ip2Dispersed(datagen.KeyDstIP, datagen.WeightBytes)
	ds4 := w.ip2Dispersed(datagen.Key4Tuple, datagen.WeightBytes)
	for h := 0; h < 4; h++ {
		hours.AddRow(fmt.Sprint(h+1),
			fmt.Sprint(dsD.SupportSize(h)), fmt.Sprint(ds4.SupportSize(h)), fsci(dsD.Total(h)))
	}
	for _, R := range [][]int{{0, 1}, {0, 1, 2, 3}} {
		label := fmt.Sprintf("%v", rplus(R))
		bytes := 0.0
		for _, h := range R {
			bytes += dsD.Total(h)
		}
		hours.AddRow(label,
			fmt.Sprint(dsD.DistinctKeys(R)), fmt.Sprint(ds4.DistinctKeys(R)), fsci(bytes))
	}
	res.Tables = append(res.Tables, hours)

	sums := Table{Title: "IP dataset2 (synthetic): multi-assignment byte sums",
		Columns: []string{"key / hours", "Σmin", "Σmax", "ΣL1"}}
	multiSums(&sums, "destIP {1,2}", dsD, []int{0, 1})
	multiSums(&sums, "destIP {1-4}", dsD, []int{0, 1, 2, 3})
	multiSums(&sums, "4tuple {1,2}", ds4, []int{0, 1})
	multiSums(&sums, "4tuple {1-4}", ds4, []int{0, 1, 2, 3})
	res.Tables = append(res.Tables, sums)
	return res
}

func rplus(R []int) []int {
	out := make([]int, len(R))
	for i, b := range R {
		out[i] = b + 1
	}
	return out
}

func runTable3(opts Options) Result {
	opts = opts.WithDefaults()
	ds := newWorkloads(opts).netflix()
	var res Result

	months := Table{Title: "Netflix (synthetic): per-month distinct movies and total ratings",
		Columns: []string{"month", "movies", "ratings"}}
	for m := 0; m < ds.NumAssignments(); m++ {
		months.AddRow(fmt.Sprint(m+1), fmt.Sprint(ds.SupportSize(m)), fsci(ds.Total(m)))
	}
	res.Tables = append(res.Tables, months)

	sums := Table{Title: "Netflix (synthetic): multi-assignment rating sums",
		Columns: []string{"months", "Σmin", "Σmax", "ΣL1"}}
	multiSums(&sums, "{1,2}", ds, firstR(2))
	multiSums(&sums, "{1-6}", ds, firstR(6))
	multiSums(&sums, "{1-12}", ds, firstR(12))
	res.Tables = append(res.Tables, sums)
	return res
}

func runTable4(opts Options) Result {
	opts = opts.WithDefaults()
	w := newWorkloads(opts)
	table := w.stockTable()
	var res Result

	days := len(table[0].Attrs)
	daily := Table{Title: "Stocks (synthetic): daily totals per attribute",
		Columns: []string{"attr"}}
	for d := 0; d < days; d++ {
		daily.Columns = append(daily.Columns, fmt.Sprint(d+1))
	}
	for _, attr := range datagen.AllStockAttrs() {
		row := []string{attr.String()}
		for d := 0; d < days; d++ {
			total := 0.0
			for _, r := range table {
				total += r.Attrs[d][attr]
			}
			row = append(row, fsci(total))
		}
		daily.Rows = append(daily.Rows, row)
	}
	res.Tables = append(res.Tables, daily)

	sums := Table{Title: "Stocks (synthetic): multi-day min/max/L1 sums",
		Columns: []string{"attr / days", "Σmin", "Σmax", "ΣL1"}}
	for _, attr := range []datagen.StockAttr{datagen.High, datagen.Volume} {
		ds := w.stocksDispersed(attr)
		for _, n := range []int{2, 5, 10, 15, 23} {
			multiSums(&sums, fmt.Sprintf("%s 1-%d", attr, n), ds, firstR(n))
		}
	}
	res.Tables = append(res.Tables, sums)
	return res
}

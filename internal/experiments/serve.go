package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"runtime"
	"time"

	"coordsample/internal/core"
	"coordsample/internal/dataset"
	"coordsample/internal/obs"
	"coordsample/internal/rank"
	"coordsample/internal/server"
)

// pctCols renders a latency histogram's p50/p95/p99 as table cells — the
// percentile columns the serving-layer BENCH rows record instead of
// mean-only timings.
func pctCols(h *obs.Histogram) []string {
	s := h.Snapshot()
	return []string{
		s.P50().Round(time.Microsecond).String(),
		s.P95().Round(time.Microsecond).String(),
		s.P99().Round(time.Microsecond).String(),
	}
}

func init() {
	register(Experiment{
		ID:    "serve",
		Paper: "not from the paper",
		Desc:  "online server: HTTP ingest throughput, freeze cost, and query latency vs shards; answers verified against the offline pipeline",
		Run:   runServe,
	})
}

// serveDataset sizes the ingest stream for the HTTP measurement: JSON
// encode/decode dominates per-offer cost, so it is smaller than the raw
// sharding benchmark's dataset.
func serveDataset(opts Options) *dataset.Dataset {
	n := int(120000 * opts.Scale)
	if n < 1000 {
		n = 1000
	}
	rng := rand.New(rand.NewSource(int64(opts.Seed)))
	bld := dataset.NewBuilder("period1", "period2")
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%08d", i)
		base := math.Exp(rng.NormFloat64() * 2)
		if rng.Float64() < 0.85 {
			bld.Add(0, key, base*(0.5+rng.Float64()))
		}
		if rng.Float64() < 0.85 {
			bld.Add(1, key, base*(0.5+rng.Float64()))
		}
	}
	return bld.Build()
}

// discardWriter is a minimal http.ResponseWriter for driving the server's
// handler without a network or the httptest package (which has no place in
// a shipped binary). The response body is captured only when keep is set.
type discardWriter struct {
	header http.Header
	status int
	keep   bool
	body   bytes.Buffer
}

func newDiscardWriter(keep bool) *discardWriter {
	return &discardWriter{header: make(http.Header), status: http.StatusOK, keep: keep}
}

func (w *discardWriter) Header() http.Header { return w.header }
func (w *discardWriter) WriteHeader(c int)   { w.status = c }
func (w *discardWriter) Write(p []byte) (int, error) {
	if w.keep {
		return w.body.Write(p)
	}
	return len(p), nil
}

// runServe measures the serving layer end to end through its HTTP handler:
// batched JSON ingest throughput and freeze cost across a shard sweep, and
// the cold (estimator build) vs warm (snapshot cache) latency of an L1
// query. Every configuration's answer is verified equal to the offline
// pipeline's — the freeze-and-swap machinery must never change an estimate.
func runServe(opts Options) Result {
	opts = opts.WithDefaults()
	ds := serveDataset(opts)
	k := 1024
	if m := ds.NumKeys() / 4; k > m && m >= 1 {
		k = m
	}
	cfg := core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: opts.Seed, K: k}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shardSweep := []int{1, 2, 4, 8}
	if opts.Shards > 0 {
		shardSweep = []int{opts.Shards}
	}

	// Pre-marshal the ingest stream into POST /offer bodies of 512 offers,
	// so marshalling cost is not attributed to the server.
	const batchSize = 512
	var bodies [][]byte
	batch := make([]server.Offer, 0, batchSize)
	offered := 0
	flush := func() {
		if len(batch) == 0 {
			return
		}
		body, err := json.Marshal(map[string]any{"offers": batch})
		if err != nil {
			panic(err)
		}
		bodies = append(bodies, body)
		batch = batch[:0]
	}
	for b := 0; b < ds.NumAssignments(); b++ {
		col := ds.Column(b)
		for i := 0; i < ds.NumKeys(); i++ {
			if col[i] > 0 {
				batch = append(batch, server.Offer{Assignment: b, Key: ds.Key(i), Weight: col[i]})
				offered++
				if len(batch) == batchSize {
					flush()
				}
			}
		}
	}
	flush()

	refL1 := core.SummarizeDispersed(cfg, ds).RangeLSet(nil).Estimate(nil)

	t := Table{
		Title: fmt.Sprintf("online serving, %d offers in %d-offer batches, %d keys × %d assignments, k=%d, %d workers/assignment",
			offered, batchSize, ds.NumKeys(), ds.NumAssignments(), k, workers),
		Columns: []string{"shards", "ingest", "offers/s", "offer_p50", "offer_p99", "freeze", "q_cold", "q_p50", "q_p95", "q_p99", "identical"},
	}
	const warmQueries = 50
	for _, shards := range shardSweep {
		srv, err := server.New(server.Config{Sample: cfg, Assignments: ds.NumAssignments(), Shards: shards, Workers: workers})
		if err != nil {
			panic(err)
		}
		defer srv.Close() // release the re-armed epoch's workers after the sweep
		post := func(path string, body []byte) {
			req, _ := http.NewRequest(http.MethodPost, path, bytes.NewReader(body))
			srv.ServeHTTP(newDiscardWriter(false), req)
		}
		offerHist := &obs.Histogram{}
		start := time.Now()
		for _, body := range bodies {
			rs := time.Now()
			post("/offer", body)
			offerHist.Record(time.Since(rs))
		}
		ingest := time.Since(start)
		start = time.Now()
		post("/freeze", nil)
		freeze := time.Since(start)

		getL1 := func() (time.Duration, float64) {
			req, _ := http.NewRequest(http.MethodGet, "/query?agg=L1", nil)
			w := newDiscardWriter(true)
			s := time.Now()
			srv.ServeHTTP(w, req)
			d := time.Since(s)
			var resp struct {
				Estimate float64 `json:"estimate"`
			}
			if err := json.Unmarshal(w.body.Bytes(), &resp); err != nil {
				panic(fmt.Sprintf("serve experiment: bad query response %q: %v", w.body.String(), err))
			}
			return d, resp.Estimate
		}
		cold, est := getL1()
		identical := est == refL1
		queryHist := &obs.Histogram{}
		for i := 0; i < warmQueries; i++ {
			d, e := getL1()
			queryHist.Record(d)
			identical = identical && e == refL1
		}

		offerPct := pctCols(offerHist)
		row := []string{
			fmt.Sprintf("%d", shards),
			ingest.Round(time.Microsecond).String(),
			fsci(float64(offered) / ingest.Seconds()),
			offerPct[0], offerPct[2],
			freeze.Round(time.Microsecond).String(),
			cold.Round(time.Microsecond).String(),
		}
		row = append(row, pctCols(queryHist)...)
		row = append(row, fmt.Sprintf("%v", identical))
		t.AddRow(row...)
	}
	return Result{Tables: []Table{t}}
}

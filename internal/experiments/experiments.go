// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 9) on the synthetic datasets of internal/datagen. Each
// experiment is registered under the ID used in DESIGN.md's per-experiment
// index and emits plain-text tables with the same rows/series the paper
// plots. Absolute numbers differ (synthetic data, scaled sizes); the shapes
// — who wins, by how many orders of magnitude, and how gaps evolve with k
// and |R| — are the reproduction targets recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"slices"
	"strings"
)

// Options control dataset scale and measurement effort. Zero values select
// defaults.
type Options struct {
	// Scale multiplies the default dataset sizes (1.0 reproduces the scaled
	// defaults in DESIGN.md; the paper's raw sizes correspond to ~30×).
	Scale float64
	// Runs is the number of sampling repetitions per measured point (the
	// paper uses 25–200).
	Runs int
	// Ks overrides the sample-size sweep.
	Ks []int
	// Seed drives all sampling randomness.
	Seed uint64
	// Workers caps the worker pool of experiments that manage their own
	// concurrency (the sharding experiment's ingestion workers); 0 means
	// GOMAXPROCS. cws-bench additionally applies -workers process-wide via
	// GOMAXPROCS, which bounds the parallel sampling repetitions too.
	Workers int
	// Shards fixes the shard count of the sharding experiment; 0 sweeps a
	// default set of shard counts.
	Shards int
	// Conns fixes the client-connection count of the loadtest experiment;
	// 0 sweeps a default set.
	Conns int
	// Addr points the loadtest experiment at an already-running cws-serve
	// (host:port) instead of an in-process server. Answers are verified
	// against the offline pipeline only when the target starts at epoch 0.
	Addr string
	// Peers is the member count of the cluster experiment (0 = 3).
	Peers int
	// Overload runs the loadtest experiment against a server with a
	// deliberately tiny ingest-admission bound, so most requests are shed
	// with 429 + Retry-After; clients honor the backoff and the sheds
	// column records how much work was pushed back. The identical column
	// still verifies no acknowledged offer was lost.
	Overload bool
}

// WithDefaults fills unset fields.
func (o Options) WithDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Runs <= 0 {
		o.Runs = 25
	}
	if len(o.Ks) == 0 {
		o.Ks = []int{10, 32, 100, 316, 1000}
	}
	if o.Seed == 0 {
		o.Seed = 0xC0FFEE
	}
	return o
}

// Table is one plain-text result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Write renders the table with aligned columns.
func (t Table) Write(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "## %s\n", t.Title)
	header := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		header[i] = pad(c, widths[i])
	}
	fmt.Fprintln(w, strings.Join(header, "  "))
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, cell := range row {
			cells[i] = pad(cell, widths[i])
		}
		fmt.Fprintln(w, strings.Join(cells, "  "))
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Result is the output of one experiment.
type Result struct {
	Tables []Table
}

// Write renders all tables.
func (r Result) Write(w io.Writer) {
	for _, t := range r.Tables {
		t.Write(w)
	}
}

// Experiment is a registered reproduction target.
type Experiment struct {
	// ID is the registry key (e.g. "fig3", "table2").
	ID string
	// Paper names the reproduced artifact (e.g. "Figure 3").
	Paper string
	// Desc summarizes what is measured.
	Desc string
	// Run executes the experiment.
	Run func(Options) Result
}

var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// Registry lists all experiments sorted by ID.
func Registry() []Experiment {
	out := append([]Experiment(nil), registry...)
	slices.SortFunc(out, func(a, b Experiment) int { return strings.Compare(a.ID, b.ID) })
	return out
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// fsci formats a measurement in compact scientific notation.
func fsci(v float64) string { return fmt.Sprintf("%.3e", v) }

// ffix formats a small ratio/index.
func ffix(v float64) string { return fmt.Sprintf("%.4f", v) }

// fint formats an integer-valued float.
func fint(v float64) string { return fmt.Sprintf("%.1f", v) }

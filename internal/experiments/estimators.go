package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"coordsample/internal/core"
	"coordsample/internal/dataset"
	"coordsample/internal/estimate"
	"coordsample/internal/evalstats"
	"coordsample/internal/hashing"
	"coordsample/internal/rank"
)

func init() {
	register(Experiment{
		ID:    "estimators",
		Paper: "arXiv:0903.0625 (discarded samples; companion to the paper's RC estimators)",
		Desc:  "AW vs discarded-sample estimator families: empirical nMSE of total and pair L1 across k × assignments × skew, with the AW column re-verified byte-identical to the legacy estimator paths",
		Run:   runEstimators,
	})
}

// estimatorDataset builds a churned multi-assignment dataset: each key
// appears in each assignment independently with probability 0.6, with
// lognormal weights of the given skew. The partial support is the point —
// keys outside an assignment's support are exactly where the union
// threshold discards per-assignment samples that the discarded-samples
// estimators put back to work.
func estimatorDataset(numKeys, numAsg int, sigma float64, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, numAsg)
	for b := range names {
		names[b] = fmt.Sprintf("w%d", b)
	}
	bld := dataset.NewBuilder(names...)
	for i := 0; i < numKeys; i++ {
		key := fmt.Sprintf("key-%06d", i)
		base := math.Exp(rng.NormFloat64() * sigma)
		for b := 0; b < numAsg; b++ {
			if rng.Float64() < 0.6 {
				bld.Add(b, key, base*(0.5+rng.Float64()))
			}
		}
	}
	return bld.Build()
}

// estimatorSummariesIdentical reports whether the AW family's answer through
// the Estimator seam is byte-identical (keys, adjusted weights, variances)
// to the legacy Dispersed method it re-expresses.
func estimatorSummariesIdentical(got, want estimate.AWSummary) bool {
	gk, wk := got.Keys(), want.Keys()
	if len(gk) != len(wk) {
		return false
	}
	for i, key := range gk {
		if key != wk[i] {
			return false
		}
		if math.Float64bits(got.AdjustedWeight(key)) != math.Float64bits(want.AdjustedWeight(key)) ||
			math.Float64bits(got.VarianceOf(key)) != math.Float64bits(want.VarianceOf(key)) {
			return false
		}
	}
	return true
}

// runEstimators measures the two estimator families on the same sketches:
// per run, one shared-seed dispersed summary is built and both families
// answer the cross-assignment total and the pair L1 from it, so every MSE
// gap is attributable to the estimator alone. Errors are normalized by the
// exact answer squared (nMSE = MSE / truth²). The "aw=legacy" column gates
// the refactor: the AW family routed through the Estimator interface must
// reproduce the pre-refactor estimator paths byte for byte in every run.
func runEstimators(opts Options) Result {
	opts = opts.WithDefaults()
	numKeys := int(5000 * opts.Scale)
	if numKeys < 50 {
		numKeys = 50
	}
	var res Result
	for _, combo := range []struct {
		name  string
		asg   int
		sigma float64
	}{
		{"mild skew σ=0.5", 2, 0.5},
		{"heavy skew σ=2", 2, 2},
		{"mild skew σ=0.5", 4, 0.5},
		{"heavy skew σ=2", 4, 2},
	} {
		ds := estimatorDataset(numKeys, combo.asg, combo.sigma, int64(opts.Seed)+int64(combo.asg))
		pair := []int{0, 1}
		truthTotal := evalstats.TruthOf(ds, estimate.TotalOf())
		truthL1 := evalstats.TruthOf(ds.Restrict(pair), estimate.RangeOf())
		tbl := Table{
			Title: fmt.Sprintf("estimators: %s, |W|=%d, %d keys (total over all, L1 over {0,1})",
				combo.name, combo.asg, ds.NumKeys()),
			Columns: []string{"k", "total nMSE aw", "total nMSE disc", "disc/aw", "L1 nMSE aw", "L1 nMSE disc", "disc/aw", "aw=legacy"},
		}
		for ki, k := range capKs(opts.Ks, ds.NumKeys()) {
			results := parallelRuns(opts.Runs, func(run int) []float64 {
				runSeed := hashing.Mix64(opts.Seed + uint64(combo.asg)*1e9 + uint64(ki)*1e6 + uint64(run) + 1)
				cfg := core.Config{Family: rank.IPPS, Mode: rank.SharedSeed, Seed: runSeed, K: k}
				d := core.SummarizeDispersed(cfg, ds)
				totAW := estimate.AWEstimator.Summary(d, estimate.TotalOf()).Estimate(nil)
				totD := estimate.DiscardedEstimator.Summary(d, estimate.TotalOf()).Estimate(nil)
				l1AW := estimate.AWEstimator.Summary(d, estimate.RangeOf(0, 1)).Estimate(nil)
				l1D := estimate.DiscardedEstimator.Summary(d, estimate.RangeOf(0, 1)).Estimate(nil)
				identical := 1.0
				for _, c := range []struct{ seam, legacy estimate.AWSummary }{
					{estimate.AWEstimator.Summary(d, estimate.TotalOf()), d.TotalUnion(nil)},
					{estimate.AWEstimator.Summary(d, estimate.RangeOf(0, 1)), d.RangeLSet(pair)},
					{estimate.AWEstimator.Summary(d, estimate.MinOf()), d.MinLSet(nil)},
					{estimate.AWEstimator.Summary(d, estimate.MaxOf()), d.Max(nil)},
					{estimate.AWEstimator.Summary(d, estimate.SingleOf(0)), d.Single(0)},
				} {
					if !estimatorSummariesIdentical(c.seam, c.legacy) {
						identical = 0
					}
				}
				sq := func(x float64) float64 { return x * x }
				return []float64{
					sq(totAW - truthTotal.SumF), sq(totD - truthTotal.SumF),
					sq(l1AW - truthL1.SumF), sq(l1D - truthL1.SumF),
					identical,
				}
			})
			totals := sumRuns(results)
			n := float64(opts.Runs)
			norm := func(se, truth float64) float64 {
				if truth == 0 {
					return 0
				}
				return se / n / (truth * truth)
			}
			nTotAW := norm(totals[0], truthTotal.SumF)
			nTotD := norm(totals[1], truthTotal.SumF)
			nL1AW := norm(totals[2], truthL1.SumF)
			nL1D := norm(totals[3], truthL1.SumF)
			ratio := func(d, a float64) string {
				if a == 0 {
					return "-"
				}
				return ffix(d / a)
			}
			tbl.AddRow(fmt.Sprintf("%d", k),
				fsci(nTotAW), fsci(nTotD), ratio(nTotD, nTotAW),
				fsci(nL1AW), fsci(nL1D), ratio(nL1D, nL1AW),
				fmt.Sprintf("%v", totals[4] == n))
		}
		res.Tables = append(res.Tables, tbl)
	}
	return res
}
